// Quickstart: spin up a 200-node AVMON deployment in the simulator, let
// the availability monitoring overlay discover itself, then inspect one
// node's pinging set (who monitors it), target set (whom it monitors),
// and verify a reported monitor the way any third party would.
//
// Build & run:   ./examples/quickstart   (no arguments)
#include <iostream>

#include "experiments/scenario.hpp"
#include "stats/table_printer.hpp"

int main() {
  using namespace avmon;

  // 1. Describe the deployment: 200 nodes, no churn, paper-default
  //    protocol settings (cvs = 4*N^0.25, K = log2 N, 1-minute periods).
  experiments::Scenario scenario;
  scenario.model = churn::Model::kStat;
  scenario.stableSize = 200;
  scenario.warmup = 15 * kMinute;
  scenario.horizon = 45 * kMinute;
  scenario.hashName = "md5";  // the paper's hash
  scenario.seed = 7;

  // 2. Run it.
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  std::cout << "AVMON quickstart: N=" << runner.effectiveN()
            << ", K=" << runner.config().k << ", cvs=" << runner.config().cvs
            << " (" << runner.config().cvs << " coarse-view entries/node)\n\n";

  // 3. Discovery worked: control nodes found monitors within ~a minute.
  std::cout << "Control nodes that discovered a monitor: "
            << stats::TablePrinter::num(100 * runner.discoveredFraction(1), 1)
            << "%\n";
  const auto delays = runner.discoveryDelaysSeconds(1);
  double sum = 0;
  for (double d : delays) sum += d;
  if (!delays.empty()) {
    std::cout << "Average time to first monitor: "
              << stats::TablePrinter::num(sum / delays.size(), 1) << " s\n\n";
  }

  // 4. Inspect one node.
  const NodeId someone = runner.measuredIds().front();
  const AvmonNode& node = runner.node(someone);
  std::cout << "Node " << someone.toString() << ":\n"
            << "  monitored by " << node.pingingSet().size()
            << " nodes (PS), monitors " << node.targetSet().size()
            << " nodes (TS), coarse view " << node.coarseView().size()
            << " entries\n";

  // 5. Verifiability: ask the node to report monitors under an
  //    "l out of K" policy, then check each against the public scheme —
  //    no trust in the node required.
  hash::Md5HashFunction md5;
  HashMonitorSelector verifier(md5, runner.config().k, runner.effectiveN());
  std::cout << "  reported monitors (l=3 policy):\n";
  for (const NodeId& m : node.reportMonitors(3)) {
    std::cout << "    " << m.toString() << " -> verifies: "
              << (verifier.isMonitor(m, someone) ? "yes" : "NO (forged!)")
              << "\n";
  }

  // 6. Availability queries go to the monitors, not the node itself.
  for (const NodeId& m : node.reportMonitors(1)) {
    if (const auto est = runner.node(m).availabilityEstimateOf(someone)) {
      std::cout << "  monitor " << m.toString() << " estimates availability "
                << stats::TablePrinter::num(*est, 3) << "\n";
    }
  }
  return 0;
}
