// Availability-based replica selection — the motivating application from
// Godfrey et al. (SIGCOMM 2006) cited in the paper's introduction: with
// per-node availability histories, "smart" replica placement beats
// availability-agnostic placement.
//
// Uses the replication::place strategies over candidates whose
// availabilities come from live AVMON monitors in a churned simulation,
// scoring each placement by its TRUE group availability.
#include <iostream>
#include <unordered_map>
#include <vector>

#include "experiments/scenario.hpp"
#include "replication/replica_planner.hpp"
#include "stats/table_printer.hpp"

int main() {
  using namespace avmon;

  experiments::Scenario scenario;
  scenario.model = churn::Model::kSynth;  // 20%/hour churn
  scenario.stableSize = 300;
  scenario.warmup = 30 * kMinute;
  scenario.horizon = 5 * kHour;
  scenario.forgetful = false;  // favor estimation accuracy for placement
  scenario.seed = 99;
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  // Candidates carry *queried* availability (what the monitors report);
  // ground truth is kept aside for scoring.
  std::vector<replication::Candidate> candidates;
  // lint:allow(per-node-alloc, example tool's one-shot scoring table; not a simulator probe path)
  std::unordered_map<NodeId, double> truth;
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    double sum = 0;
    std::size_t reporters = 0;
    const std::vector<NodeId> monitors = sortedIds(node.pingingSet());
    for (const NodeId& m : monitors) {
      if (const auto est = runner.node(m).availabilityEstimateOf(nt.id)) {
        sum += *est;
        ++reporters;
      }
    }
    if (reporters == 0) continue;
    candidates.push_back({nt.id, sum / static_cast<double>(reporters)});
    truth[nt.id] = nt.availability(scenario.warmup, scenario.horizon);
  }
  std::cout << "Candidates with monitored availability: " << candidates.size()
            << "\n\n";

  const auto trueGroupAvailability =
      [&](const std::vector<replication::Candidate>& replicas) {
        std::vector<replication::Candidate> actual;
        for (const auto& r : replicas) actual.push_back({r.id, truth[r.id]});
        return replication::groupAvailability(actual);
      };

  stats::TablePrinter table(
      "Replica placement: true P(at least one replica up) per strategy");
  table.setHeader({"replicas R", "most-available", "random-above-bar(0.7)",
                   "random", "provisioning rule"});

  for (std::size_t r : {1u, 2u, 3u, 5u}) {
    std::unordered_map<std::string, double> scores;
    for (replication::Strategy strategy :
         {replication::Strategy::kMostAvailable,
          replication::Strategy::kRandomAboveBar,
          replication::Strategy::kRandom}) {
      double sum = 0;
      constexpr int kDraws = 100;
      Rng rng(7);
      for (int d = 0; d < kDraws; ++d) {
        sum += trueGroupAvailability(
            replication::place(candidates, r, strategy, rng, 0.7));
      }
      scores[replication::strategyName(strategy)] = sum / kDraws;
    }
    // For context: how many average-availability replicas the closed-form
    // provisioning rule says you need for 99% group availability.
    double meanAvail = 0;
    for (const auto& c : candidates) meanAvail += c.availability;
    meanAvail /= static_cast<double>(candidates.size());
    table.addRow({std::to_string(r),
                  stats::TablePrinter::num(scores["most-available"], 4),
                  stats::TablePrinter::num(scores["random-above-bar"], 4),
                  stats::TablePrinter::num(scores["random"], 4),
                  "r(0.99)=" + std::to_string(replication::replicasNeeded(
                                   meanAvail, 0.99))});
  }
  table.print(std::cout);
  std::cout
      << "Availability-informed placement beats random once R >= 2. Note "
         "the R=1 winner's curse: argmax over noisy estimates can pick a "
         "briefly-observed node whose few pings were all answered — the "
         "random-above-bar strategy is robust to it, which is exactly why "
         "Godfrey et al. recommend randomized choice among good-enough "
         "candidates over strict argmax.\n";
  return 0;
}
