// Availability-dependent multicast — the AVCast use case (Pongthawornkamol
// & Gupta, SRDS 2006) that AVMON's monitor-selection scheme originates
// from: build an overlay multicast tree where each receiver picks its
// parent by monitored availability, and compare expected delivery
// reliability against availability-agnostic (random) parent choice.
//
// Uses the multicast::OverlayTree library; availabilities come from live
// AVMON monitors in a churned simulation.
#include <iostream>
#include <vector>

#include "experiments/scenario.hpp"
#include "multicast/overlay_tree.hpp"
#include "stats/table_printer.hpp"

int main() {
  using namespace avmon;

  experiments::Scenario scenario;
  scenario.model = churn::Model::kSynth;
  scenario.stableSize = 300;
  scenario.warmup = 30 * kMinute;
  scenario.horizon = 5 * kHour;
  scenario.forgetful = false;
  scenario.seed = 2006;
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  // Member list: every node with at least one reporting monitor; the
  // member's availability is what its AVMON monitors report (verifiable,
  // not self-claimed).
  std::vector<multicast::Member> members;
  members.push_back({NodeId::fromIndex(9999999), 1.0});  // the source
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    double sum = 0;
    std::size_t reporters = 0;
    const std::vector<NodeId> monitors = sortedIds(node.pingingSet());
    for (const NodeId& m : monitors) {
      if (const auto est = runner.node(m).availabilityEstimateOf(nt.id)) {
        sum += *est;
        ++reporters;
      }
    }
    if (reporters == 0) continue;
    members.push_back({nt.id, sum / static_cast<double>(reporters)});
  }
  std::cout << "Multicast members with monitored availability: "
            << members.size() - 1 << "\n\n";

  stats::TablePrinter table(
      "Overlay multicast: mean delivery probability and fraction of "
      "receivers meeting 50% reliability");
  table.setHeader({"parent policy", "fanout", "mean delivery",
                   "meet >=0.5", "advantage vs random"});

  for (std::size_t fanout : {2u, 4u, 8u}) {
    double baseline = 0;
    for (multicast::ParentPolicy policy :
         {multicast::ParentPolicy::kRandom,
          multicast::ParentPolicy::kMostAvailable,
          multicast::ParentPolicy::kBestPath}) {
      // Average over several attach orders with paired seeds.
      double mean = 0, meet = 0;
      constexpr int kTrees = 30;
      for (std::uint64_t seed = 0; seed < kTrees; ++seed) {
        Rng rng(seed);
        const auto tree = multicast::OverlayTree::build(
            members, policy, fanout, rng, /*maxChildren=*/8);
        mean += tree.meanDeliveryProbability();
        meet += tree.fractionMeeting(0.5);
      }
      mean /= kTrees;
      meet /= kTrees;
      if (policy == multicast::ParentPolicy::kRandom) baseline = mean;
      table.addRow({multicast::policyName(policy), std::to_string(fanout),
                    stats::TablePrinter::num(mean, 4),
                    stats::TablePrinter::num(meet, 4),
                    "+" + stats::TablePrinter::num(mean - baseline, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "Availability-aware parent selection (fed by AVMON histories) "
               "raises end-to-end delivery probability; best-path beats the "
               "myopic policy on deep trees.\n";
  return 0;
}
