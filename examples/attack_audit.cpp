// Attack audit: what selfishness and collusion can and cannot do.
//
//  1. Self-reporting baseline: a selfish node inflates its availability
//     freely — nothing to verify against.
//  2. AVMON "l out of K" reporting: a node must name its monitors and any
//     third party verifies each against the public consistency condition;
//     forged monitor lists (colluders) are rejected outright.
//  3. Overreporting colluders inside AVMON: even when attackers DO pass
//     verification (they genuinely satisfy the hash condition), a victim
//     needs enough of its ~K random monitors to be colluders to move its
//     PS-averaged availability — which the Section 4.3 analysis makes
//     probabilistically negligible.
#include <cmath>
#include <iostream>

#include "analysis/formulas.hpp"
#include "baselines/self_report.hpp"
#include "experiments/scenario.hpp"
#include "stats/table_printer.hpp"

int main() {
  using namespace avmon;

  // --- 1. Self-reporting fails trivially -------------------------------
  std::cout << "[1] Self-reporting baseline\n";
  baselines::SelfReportNode liar(NodeId::fromIndex(1));
  liar.join(0);
  liar.leave(6 * kMinute);  // actually up 10% of the hour
  liar.setSelfish(true);
  std::cout << "    actual availability:   "
            << stats::TablePrinter::num(liar.trueAvailability(kHour), 2)
            << "\n    reported availability: "
            << stats::TablePrinter::num(liar.reportedAvailability(kHour), 2)
            << "   <- unverifiable, accepted at face value\n\n";

  // --- 2. AVMON verification rejects forged monitor lists --------------
  std::cout << "[2] AVMON l-out-of-K verification\n";
  experiments::Scenario scenario;
  scenario.model = churn::Model::kSynth;
  scenario.stableSize = 250;
  scenario.warmup = 30 * kMinute;
  scenario.horizon = 3 * kHour;
  scenario.hashName = "md5";
  scenario.seed = 1337;
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  hash::Md5HashFunction md5;
  HashMonitorSelector verifier(md5, runner.config().k, runner.effectiveN());

  const NodeId victim = runner.measuredIds().front();
  const auto honest = runner.node(victim).reportMonitors(3);
  std::size_t acceptedHonest = 0;
  for (const NodeId& m : honest)
    acceptedHonest += verifier.isMonitor(m, victim) ? 1 : 0;
  std::cout << "    honest report: " << acceptedHonest << "/" << honest.size()
            << " monitors verified\n";

  // A selfish node instead names three random "friends" as its monitors.
  std::size_t acceptedForged = 0;
  for (std::uint32_t f = 0; f < 3; ++f) {
    const NodeId friendId = NodeId::fromIndex(900 + f);
    acceptedForged += verifier.isMonitor(friendId, victim) ? 1 : 0;
  }
  std::cout << "    forged report (3 arbitrary friends): " << acceptedForged
            << "/3 pass verification -> report rejected\n\n";

  // --- 3. Colluders who do pass the condition barely matter ------------
  std::cout << "[3] Collusion analysis (Section 4.3)\n";
  stats::TablePrinter table(
      "P(no colluder lands in a node's pinging set), K = log2 N");
  table.setHeader({"N", "K", "colluders C", "P(PS clean)"});
  for (std::size_t n : {1000u, 100000u, 1000000u}) {
    const unsigned k = defaultK(n);
    for (std::size_t c : {3u, 10u}) {
      table.addRow({std::to_string(n), std::to_string(k), std::to_string(c),
                    stats::TablePrinter::num(
                        analysis::probNoColluderInPS(n, k, c), 5)});
    }
  }
  table.print(std::cout);
  std::cout << "A constant-size collusion ring cannot pollute pinging sets "
               "as the system grows: monitors are chosen by hash, not by "
               "the monitored node.\n";
  return 0;
}
