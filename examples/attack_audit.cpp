// Attack audit: what selfishness and collusion can and cannot do.
//
// The whole audit is driven through the declarative experiment path: ONE
// spec arms the same collusion coalition against the self-report baseline
// and AVMON, and the shared adversary layer (experiments/adversary.hpp)
// measures what the coalition actually controls in each scheme.
//
//  1. Under self-reporting a coalition member inflates its own record for
//     free — nothing to verify against. Under AVMON the same coalition
//     moves neither its own records nor its victims': monitors are chosen
//     by hash, and a victim is eclipsed only if EVERY hash-selected
//     monitor happens to be a colluder.
//  2. AVMON "l out of K" reporting: a node must name its monitors and any
//     third party verifies each against the public consistency condition;
//     forged monitor lists are rejected outright.
//  3. The Section 4.3 closed forms make the eclipse event probabilistically
//     negligible as the system grows.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/formulas.hpp"
#include "experiments/adversary.hpp"
#include "experiments/metrics.hpp"
#include "experiments/spec.hpp"
#include "stats/table_printer.hpp"

namespace {

/// Mean |estimated - actual| over the cohort's OWN availability records —
/// how far the cohort moved what the system believes about the cohort.
std::optional<double> cohortRecordError(
    const avmon::experiments::ScenarioRunner& runner,
    const std::vector<avmon::NodeId>& cohort) {
  using namespace avmon;
  double sum = 0.0;
  std::size_t count = 0;
  for (const trace::NodeTrace& nt : runner.schedule().nodes()) {
    if (std::find(cohort.begin(), cohort.end(), nt.id) == cohort.end())
      continue;
    if (const auto acc =
            experiments::alignedAccuracyOf(runner.protocol(), nt)) {
      sum += std::fabs(acc->estimated - acc->actual);
      ++count;
    }
  }
  if (count == 0) return std::nullopt;
  return sum / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace avmon;
  using namespace avmon::experiments;

  // --- 1. The same adversary budget against both schemes ---------------
  // Same world, same seed, same resolved coalition — the protocol axis is
  // the only thing that varies.
  const std::string specText =
      "protocol = self_report, avmon\n"
      "model = SYNTH\n"
      "n = 250\n"
      "horizon_min = 150\n"
      "warmup_min = 30\n"
      "seed = 1337\n"
      "hash = md5\n"
      "attack.collusion = 4\n"
      "attack.victims = 5\n";
  std::cout << "[1] One spec, two schemes, one coalition:\n\n"
            << specText << "\n";
  const SweepSpec sweep = SweepSpec::parse(specText);

  stats::TablePrinter audit("What the coalition actually controls");
  audit.setHeader({"scheme", "own records |err|", "victims eclipsed",
                   "victim records |err|"});

  std::vector<std::unique_ptr<ScenarioRunner>> runners;
  SummaryTableSink sink(std::cout);
  for (const Scenario& scenario : sweep.expand()) {
    runners.push_back(std::make_unique<ScenarioRunner>(scenario));
    ScenarioRunner& runner = *runners.back();
    runner.run();
    sink.add(collectMetrics(runner));

    const ResolvedAdversary& adversary = runner.adversary();
    const auto outcomes =
        victimOutcomes(runner.protocol(), adversary, runner.schedule());
    std::size_t eclipsed = 0;
    double victimErr = 0.0;
    std::size_t victimReporters = 0;
    for (const VictimOutcome& v : outcomes) {
      eclipsed += v.eclipsed ? 1 : 0;
      if (v.estimateAbsError) {
        victimErr += *v.estimateAbsError;
        ++victimReporters;
      }
    }
    const auto ownErr = cohortRecordError(runner, adversary.colluders);
    audit.addRow(
        {scenario.protocol,
         ownErr ? stats::TablePrinter::num(*ownErr, 3) : "n/a",
         std::to_string(eclipsed) + "/" + std::to_string(outcomes.size()),
         victimReporters != 0
             ? stats::TablePrinter::num(victimErr / victimReporters, 3)
             : "n/a"});
  }
  sink.close();
  audit.print(std::cout);
  std::cout << "Self-reporting hands the coalition its own records for free "
               "(reported 100%, actual far below); AVMON's hash-selected "
               "monitors leave the same coalition nothing to move.\n\n";

  // --- 2. AVMON verification rejects forged monitor lists --------------
  std::cout << "[2] AVMON l-out-of-K verification\n";
  const auto avmonIt =
      std::find_if(runners.begin(), runners.end(), [](const auto& r) {
        return r->scenario().protocol == "avmon";
      });
  const ScenarioRunner& avmonRun = **avmonIt;

  hash::Md5HashFunction md5;
  HashMonitorSelector verifier(md5, avmonRun.config().k,
                               avmonRun.effectiveN());

  const NodeId victim = avmonRun.measuredIds().front();
  const auto honest = avmonRun.node(victim).reportMonitors(3);
  std::size_t acceptedHonest = 0;
  for (const NodeId& m : honest)
    acceptedHonest += verifier.isMonitor(m, victim) ? 1 : 0;
  std::cout << "    honest report: " << acceptedHonest << "/" << honest.size()
            << " monitors verified\n";

  // A selfish node instead names three random "friends" as its monitors.
  std::size_t acceptedForged = 0;
  for (std::uint32_t f = 0; f < 3; ++f) {
    const NodeId friendId = NodeId::fromIndex(900 + f);
    acceptedForged += verifier.isMonitor(friendId, victim) ? 1 : 0;
  }
  std::cout << "    forged report (3 arbitrary friends): " << acceptedForged
            << "/3 pass verification -> report rejected\n\n";

  // --- 3. Colluders who do pass the condition barely matter ------------
  std::cout << "[3] Collusion analysis (Section 4.3)\n";
  stats::TablePrinter table(
      "P(no colluder lands in a node's pinging set), K = log2 N");
  table.setHeader({"N", "K", "colluders C", "P(PS clean)"});
  for (std::size_t n : {1000u, 100000u, 1000000u}) {
    const unsigned k = defaultK(n);
    for (std::size_t c : {3u, 10u}) {
      table.addRow({std::to_string(n), std::to_string(k), std::to_string(c),
                    stats::TablePrinter::num(
                        analysis::probNoColluderInPS(n, k, c), 5)});
    }
  }
  table.print(std::cout);
  std::cout << "A constant-size collusion ring cannot pollute pinging sets "
               "as the system grows: monitors are chosen by hash, not by "
               "the monitored node.\n";
  return 0;
}
