// System-level property tests: statistical invariants the paper's
// analysis (Sections 4.1, 4.3) promises, checked over full simulated runs
// and parameter sweeps. Multi-run sweeps fan out through the
// ParallelScenarioRunner so that wall time on a multi-core machine is the
// slowest run, not the sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "analysis/formulas.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

Scenario propScenario(std::size_t n, std::uint64_t seed) {
  Scenario s;
  s.model = churn::Model::kStat;
  s.stableSize = n;
  s.horizon = 2 * kHour;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = seed;
  s.hashName = "splitmix64";
  return s;
}

double meanOf(const std::vector<double>& v) {
  double sum = 0;
  for (double d : v) sum += d;
  return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
}

// -- pinging-set size distribution (Section 4.3) ---------------------------

const std::vector<std::size_t>& psSweepSizes() {
  static const std::vector<std::size_t> sizes{100, 300, 600};
  return sizes;
}

class PsSizeSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  static void SetUpTestSuite() {
    std::vector<Scenario> scenarios;
    for (std::size_t n : psSweepSizes()) {
      Scenario s = propScenario(n, 7);
      s.horizon = 3 * kHour;  // long enough to discover most of each PS
      scenarios.push_back(s);
    }
    runners_ = new std::vector<std::unique_ptr<ScenarioRunner>>(
        ParallelScenarioRunner().runAll(scenarios));
  }

  static void TearDownTestSuite() {
    delete runners_;
    runners_ = nullptr;
  }

  static const ScenarioRunner& runnerFor(std::size_t n) {
    for (std::size_t i = 0; i < psSweepSizes().size(); ++i) {
      if (psSweepSizes()[i] == n) return *(*runners_)[i];
    }
    throw std::logic_error("unknown sweep size");
  }

 private:
  static std::vector<std::unique_ptr<ScenarioRunner>>* runners_;
};

std::vector<std::unique_ptr<ScenarioRunner>>* PsSizeSweep::runners_ = nullptr;

TEST_P(PsSizeSweep, DiscoveredPsSizesApproachKAndStayBounded) {
  const std::size_t n = GetParam();
  const ScenarioRunner& runner = runnerFor(n);

  const unsigned k = runner.config().k;
  double total = 0;
  std::size_t counted = 0, maxPs = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    const auto& node = runner.node(nt.id);
    if (node.memoryEntries() == 0) continue;
    total += static_cast<double>(node.pingingSet().size());
    maxPs = std::max(maxPs, node.pingingSet().size());
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  const double meanPs = total / static_cast<double>(counted);

  // E|PS| = K; discovery is incomplete at any finite time, so expect the
  // mean in a generous band around K.
  EXPECT_GT(meanPs, 0.4 * k) << "N=" << n;
  EXPECT_LT(meanPs, 1.6 * k) << "N=" << n;

  // Balls-and-bins: max |PS| is O(log N) w.h.p. — allow 5x slack over K.
  EXPECT_LE(maxPs, 5 * k) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, PsSizeSweep,
                         ::testing::Values<std::size_t>(100, 300, 600));

// -- discovery time scaling (Section 4.1) ----------------------------------

TEST(DiscoveryScaling, LargerCvsDiscoversFaster) {
  // E[D] ≈ N/cvs²: quadrupling cvs should cut discovery time hard. Both
  // configurations run concurrently; the collected means merge by index.
  constexpr std::size_t kN = 400;
  std::vector<Scenario> scenarios;
  for (std::size_t cvs : {std::size_t{5}, std::size_t{20}}) {
    Scenario s = propScenario(kN, 11);
    AvmonConfig cfg = AvmonConfig::paperDefaults(kN);
    cfg.cvs = cvs;
    s.configOverride = cfg;
    scenarios.push_back(s);
  }
  const std::vector<double> means = ParallelScenarioRunner().map<double>(
      scenarios, [](ScenarioRunner& runner) {
        const auto delays = runner.discoveryDelaysSeconds(1);
        EXPECT_FALSE(delays.empty());
        return meanOf(delays);
      });
  ASSERT_EQ(means.size(), 2u);
  EXPECT_LT(means[1], means[0]);  // cvs=20 beats cvs=5
}

TEST(DiscoveryScaling, DiscoveredFractionGrowsWithTime) {
  constexpr std::size_t kN = 300;
  Scenario shortRun = propScenario(kN, 13);
  shortRun.horizon = shortRun.warmup + 2 * kMinute;
  Scenario longRun = propScenario(kN, 13);
  longRun.horizon = longRun.warmup + 60 * kMinute;

  const auto runners =
      ParallelScenarioRunner().runAll({shortRun, longRun});
  EXPECT_GE(runners[1]->discoveredFraction(3), runners[0]->discoveredFraction(3));
  EXPECT_GT(runners[1]->discoveredFraction(1), 0.9);
}

// -- l-out-of-K supportability (Section 4.3) -------------------------------

TEST(LOutOfK, MostNodesCanReportThreeMonitors) {
  // With K = log2(N) ≈ 9 and enough run time, an "l=3 out of K" policy is
  // satisfiable for the overwhelming majority of nodes.
  Scenario s = propScenario(500, 17);
  s.horizon = 4 * kHour;
  ScenarioRunner runner(s);
  runner.run();

  std::size_t satisfied = 0, total = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    const auto& node = runner.node(nt.id);
    if (node.memoryEntries() == 0) continue;
    ++total;
    satisfied += node.reportMonitors(3).size() == 3 ? 1 : 0;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(satisfied) / static_cast<double>(total), 0.8);
}

// -- rejoin weight semantics (Figure 1) ------------------------------------

TEST(JoinWeights, QuickRejoinSpreadsFewerJoinsThanBirth) {
  // A node that rejoins after a short downtime sends JOIN with weight
  // min(cvs, downtime/periods) — far fewer coarse-view additions than the
  // full-weight birth JOIN.
  Scenario s = propScenario(300, 19);
  s.model = churn::Model::kSynth;  // natural leaves/rejoins
  s.horizon = 4 * kHour;
  ScenarioRunner runner(s);
  runner.run();

  std::uint64_t received = 0, adds = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    received += runner.node(nt.id).metrics().joinsReceived;
    adds += runner.node(nt.id).metrics().joinAdds;
  }
  // Sanity on the weighted-spread mechanism: adds can never exceed
  // receptions, and both are nonzero in a churned system.
  EXPECT_GT(received, 0u);
  EXPECT_GE(received, adds);
}

// -- forgetful pinging variants ---------------------------------------------

TEST(ForgetfulVariants, EwmaVariantAlsoSuppresses) {
  Scenario s = propScenario(200, 23);
  s.model = churn::Model::kSynthBD;
  s.horizon = 4 * kHour;
  s.forgetful = true;
  s.forgetfulEwma = true;
  ScenarioRunner runner(s);
  runner.run();

  std::uint64_t suppressed = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    suppressed += runner.node(nt.id).metrics().forgetfulSuppressed;
  }
  EXPECT_GT(suppressed, 0u);
}

TEST(ForgetfulVariants, EwmaConfigValidation) {
  AvmonConfig cfg = AvmonConfig::paperDefaults(100);
  cfg.forgetful.ewmaAlpha = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.forgetful.ewmaAlpha = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.forgetful.ewmaAlpha = 1.0;
  EXPECT_NO_THROW(cfg.validate());
}

// -- load balance (property 5) ----------------------------------------------

TEST(LoadBalance, ComputationSpreadIsTight) {
  Scenario s = propScenario(400, 29);
  s.horizon = 2 * kHour;
  ScenarioRunner runner(s);
  runner.run();

  const auto comps = runner.computationsPerSecond();
  ASSERT_GT(comps.size(), 10u);
  const double mean = meanOf(comps);
  ASSERT_GT(mean, 0.0);
  // No measured node does more than 3x the average work.
  for (double c : comps) EXPECT_LT(c, 3.0 * mean);
}

TEST(LoadBalance, NoSelfMonitoringEver) {
  Scenario s = propScenario(300, 31);
  s.model = churn::Model::kSynthBD;
  s.horizon = 3 * kHour;
  ScenarioRunner runner(s);
  runner.run();

  for (const auto& nt : runner.schedule().nodes()) {
    const auto& node = runner.node(nt.id);
    EXPECT_FALSE(node.pingingSet().count(node.id()));
    EXPECT_FALSE(node.targetSet().count(node.id()));
    for (const NodeId& cv : node.coarseView()) EXPECT_NE(cv, node.id());
  }
}

}  // namespace
}  // namespace avmon::experiments
