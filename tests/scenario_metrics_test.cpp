// ScenarioRunner metric plumbing: measured-set overrides, accuracy
// alignment, bandwidth normalization, probe helpers, and the golden-hash
// determinism regression for the simulator core.
#include <gtest/gtest.h>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"
#include "golden_hash.hpp"

namespace avmon::experiments {
namespace {

Scenario tiny(churn::Model model) {
  Scenario s;
  s.model = model;
  s.stableSize = 120;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 314;
  s.hashName = "splitmix64";
  return s;
}

TEST(ScenarioMetricsTest, MeasuredSetOverrideAll) {
  Scenario s = tiny(churn::Model::kStat);
  s.measured = MeasuredSet::kAll;
  ScenarioRunner runner(s);
  EXPECT_EQ(runner.measuredIds().size(), runner.schedule().nodes().size());
}

TEST(ScenarioMetricsTest, MeasuredSetOverrideControl) {
  Scenario s = tiny(churn::Model::kStat);
  s.measured = MeasuredSet::kControlGroup;
  ScenarioRunner runner(s);
  EXPECT_EQ(runner.measuredIds().size(), 12u);  // 10% of 120
}

TEST(ScenarioMetricsTest, MeasuredSetBornAfterWarmupOnStatIsControlOnly) {
  // In STAT the only nodes born after warm-up are the control group.
  Scenario s = tiny(churn::Model::kStat);
  s.measured = MeasuredSet::kBornAfterWarmup;
  ScenarioRunner runner(s);
  EXPECT_EQ(runner.measuredIds().size(), 12u);
}

TEST(ScenarioMetricsTest, MaxBandwidthNodeIsConsistent) {
  ScenarioRunner runner(tiny(churn::Model::kStat));
  runner.run();
  const NodeId top = runner.maxBandwidthNode();
  EXPECT_FALSE(top.isNil());
  // The reported node must exist and be probe-able.
  EXPECT_NO_THROW(runner.node(top));
}

TEST(ScenarioMetricsTest, MutableNodeAllowsAttackInjectionMidRun) {
  Scenario s = tiny(churn::Model::kStat);
  ScenarioRunner runner(s);
  runner.run();
  const NodeId someone = runner.measuredIds().front();
  runner.mutableNode(someone).setOverreporting(true);
  // The lie is visible through the estimate API for any target it has.
  const auto& node = runner.node(someone);
  if (!node.targetSet().empty()) {
    const NodeId target = node.targetSet().begin()->first;
    EXPECT_DOUBLE_EQ(*node.availabilityEstimateOf(target), 1.0);
  }
}

TEST(ScenarioMetricsTest, AccuracyEstimatesAreAligned) {
  // In a STAT run every node is always up: both the estimate and the
  // aligned actual must be exactly 1.
  Scenario s = tiny(churn::Model::kStat);
  ScenarioRunner runner(s);
  runner.run();
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/false);
  ASSERT_FALSE(acc.empty());
  for (const auto& a : acc) {
    EXPECT_DOUBLE_EQ(a.estimated, 1.0) << a.id.toString();
    EXPECT_DOUBLE_EQ(a.actual, 1.0) << a.id.toString();
    EXPECT_GT(a.reporters, 0u);
  }
}

TEST(ScenarioMetricsTest, BandwidthSamplesArePositiveAndFinite) {
  ScenarioRunner runner(tiny(churn::Model::kSynth));
  runner.run();
  for (double bps : runner.outgoingBytesPerSecond()) {
    EXPECT_GT(bps, 0.0);
    EXPECT_LT(bps, 10000.0);
  }
}

TEST(ScenarioMetricsTest, DiscoveredFractionCountsOnlyJoiners) {
  // OV has nodes that never come up inside a short horizon; the fraction
  // must be computed over nodes that joined, so a healthy run scores high.
  Scenario s = tiny(churn::Model::kOvernet);
  s.horizon = 2 * kHour;
  ScenarioRunner runner(s);
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.8);
}

TEST(ScenarioMetricsTest, UselessPingsOnlyCountMonitors) {
  ScenarioRunner runner(tiny(churn::Model::kStat));
  runner.run();
  // STAT: nobody is ever absent, so useless pings are ~0 for everyone.
  for (double upm : runner.uselessPingsPerMinute()) {
    EXPECT_LT(upm, 0.05);
  }
}

TEST(ScenarioMetricsTest, EffectiveNOverridesForTraceModels) {
  EXPECT_EQ(ScenarioRunner(tiny(churn::Model::kPlanetLab)).effectiveN(), 239u);
  EXPECT_EQ(ScenarioRunner(tiny(churn::Model::kOvernet)).effectiveN(), 550u);
  EXPECT_EQ(ScenarioRunner(tiny(churn::Model::kStat)).effectiveN(), 120u);
}

// Scheduler-determinism regression. These fingerprints (summaries,
// accuracy table, and per-node CSV rows — see golden_hash.hpp) must
// survive every scheduler, transport, or harness rewrite bit-for-bit. If
// a change legitimately alters protocol behaviour (not just performance),
// recapture by printing the hashes below — but that is an experiment
// semantics change and the PR must say so.
//
// History: the original values were captured from the pre-calendar-queue
// core (PR 2 tree) and survived the PR 3 scheduler overhaul unchanged.
// The sharded-execution PR re-pinned both lanes: the harness now runs
// every scenario through the windowed ShardedSimulator with deferred RPC
// on by default (both legs latency-modeled as events), network randomness
// comes from per-sender streams, and bootstrap picks are precomputed from
// the trace — an experiment-semantics change, declared as such. The
// deferred values below are additionally pinned shard-count-independent
// by sharded_sim_test (S ∈ {1, 2, 3, 8} reproduce them bit-for-bit).
struct Golden {
  const char* name;
  std::uint64_t summary;
  std::uint64_t perNode;
};

TEST(ScenarioMetricsTest, SeededRunsMatchGoldenHashes) {
  const Golden expected[] = {
      {"STAT", 0x2653aa83f642c8d3ULL, 0x674ecc991fa11d54ULL},
      {"SYNTH-BD", 0x37267d9d4ef4b133ULL, 0x5ab61f715a0c9788ULL},
      {"SYNTH+drop", 0x47d1ee3fb99937f8ULL, 0xfa08521512dcc9f8ULL},
  };

  // Running the three worlds through the parallel harness also pins the
  // pool's determinism to the same golden values.
  const auto runners = ParallelScenarioRunner().runAll(goldenScenarios());
  ASSERT_EQ(runners.size(), 3u);
  for (std::size_t i = 0; i < runners.size(); ++i) {
    EXPECT_EQ(summaryHash(*runners[i]), expected[i].summary)
        << expected[i].name << " summary metrics drifted";
    EXPECT_EQ(perNodeHash(*runners[i]), expected[i].perNode)
        << expected[i].name << " per-node metrics drifted";
  }
}

TEST(ScenarioMetricsTest, StreamingObservationKeepsGoldenHashes) {
  // The streaming metrics pipeline pauses the sharded world at every
  // metric-window barrier mid-run. Reproducing both pinned fingerprints
  // proves the barriers are pure observation: execution, RNG draws, and
  // per-node state are bit-identical to an uninterrupted run. (The
  // streamed summaries themselves are pinned shard-count-independent by
  // streaming_test.)
  Scenario s = goldenScenarios()[0];
  s.metrics.window = 60 * kSecond;
  s.shards = 2;
  ScenarioRunner runner(s);
  runner.run();
  EXPECT_EQ(summaryHash(runner), 0x2653aa83f642c8d3ULL);
  EXPECT_EQ(perNodeHash(runner), 0x674ecc991fa11d54ULL);
}

TEST(ScenarioMetricsTest, InstantaneousLaneMatchesGoldenHashes) {
  // The collapsed-RTT lane (deferredRpc = false, single shard) stays a
  // supported configuration with its own pinned fingerprints, so both RPC
  // models keep their determinism guarantee.
  const Golden expected[] = {
      {"STAT", 0x47ac229ee0c42b6cULL, 0x9712459a4c0ea1e3ULL},
      {"SYNTH-BD", 0x6db21d6933954152ULL, 0x602ed824d4ea7ba3ULL},
      {"SYNTH+drop", 0xb5fe4d09049e6d15ULL, 0x51d3f95cd60321c9ULL},
  };

  auto scenarios = goldenScenarios();
  for (Scenario& s : scenarios) {
    s.deferredRpc = false;
    s.shards = 1;
  }
  const auto runners = ParallelScenarioRunner().runAll(scenarios);
  ASSERT_EQ(runners.size(), 3u);
  for (std::size_t i = 0; i < runners.size(); ++i) {
    EXPECT_EQ(summaryHash(*runners[i]), expected[i].summary)
        << expected[i].name << " summary metrics drifted (instantaneous)";
    EXPECT_EQ(perNodeHash(*runners[i]), expected[i].perNode)
        << expected[i].name << " per-node metrics drifted (instantaneous)";
  }
}

}  // namespace
}  // namespace avmon::experiments
