// Adversary layer (experiments/adversary.hpp): deterministic cohort
// resolution, correlated-burst trace rewriting, the collusion/amnesia node
// behaviors they arm, and the Section 4.3 cross-validation — simulated
// coalition pollution rates must track analysis::probSystemCollusionFree.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/formulas.hpp"
#include "avmon/config.hpp"
#include "avmon/monitor_selector.hpp"
#include "churn/churn_model.hpp"
#include "experiments/adversary.hpp"
#include "experiments/scenario.hpp"
#include "golden_hash.hpp"
#include "hash/hash_function.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::experiments {
namespace {

trace::AvailabilityTrace synthTrace(std::size_t n, std::uint64_t seed) {
  churn::WorkloadParams params;
  params.stableSize = n;
  params.horizon = 2 * kHour;
  params.controlJoinTime = 30 * kMinute;
  params.seed = seed;
  return churn::generate(churn::Model::kSynth, params);
}

Scenario attackScenario(std::uint32_t collusion, std::uint32_t victims,
                        double forgetful) {
  Scenario s;
  s.attack.collusion = collusion;
  s.attack.victims = victims;
  s.attack.forgetfulFraction = forgetful;
  s.seed = 424242;
  return s;
}

// ---- resolveAdversary ----

TEST(ResolveAdversaryTest, IsDeterministicDisjointAndSized) {
  const auto trace = synthTrace(200, 7);
  const Scenario s = attackScenario(5, 3, 0.0);

  const ResolvedAdversary a = resolveAdversary(s, trace);
  const ResolvedAdversary b = resolveAdversary(s, trace);
  EXPECT_EQ(a.colluders, b.colluders);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.amnesiacs, b.amnesiacs);

  EXPECT_EQ(a.colluders.size(), 5u);
  EXPECT_EQ(a.victims.size(), 3u);
  EXPECT_TRUE(a.enabled());
  for (const NodeId& c : a.colluders) {
    EXPECT_TRUE(a.isColluder(c));
    EXPECT_FALSE(a.isVictim(c)) << "coalition and victims must be disjoint";
  }
  for (const NodeId& v : a.victims) EXPECT_TRUE(a.isVictim(v));
}

TEST(ResolveAdversaryTest, NoAttackKeysResolveToEmptyCohorts) {
  const auto trace = synthTrace(50, 3);
  const ResolvedAdversary a = resolveAdversary(Scenario{}, trace);
  EXPECT_TRUE(a.colluders.empty());
  EXPECT_TRUE(a.victims.empty());
  EXPECT_TRUE(a.amnesiacs.empty());
  EXPECT_FALSE(a.enabled());
}

TEST(ResolveAdversaryTest, CollusionDefaultsToOneVictimAndClamps) {
  const auto trace = synthTrace(40, 5);
  const std::size_t population = trace.nodes().size();

  // victims = 0 with collusion > 0 means one victim.
  const ResolvedAdversary one =
      resolveAdversary(attackScenario(2, 0, 0.0), trace);
  EXPECT_EQ(one.victims.size(), 1u);
  EXPECT_EQ(one.colluders.size(), 2u);

  // Oversized asks clamp to what the population can supply, keeping the
  // cohorts disjoint.
  const ResolvedAdversary big = resolveAdversary(
      attackScenario(10000, 10000, 0.0), trace);
  EXPECT_EQ(big.victims.size(), population - 1);
  EXPECT_GE(big.colluders.size(), 1u);
  EXPECT_LE(big.colluders.size() + big.victims.size(), population);
}

TEST(ResolveAdversaryTest, ForgetfulCohortIsDeterministicFraction) {
  const auto trace = synthTrace(300, 11);
  const std::size_t population = trace.nodes().size();

  const ResolvedAdversary half =
      resolveAdversary(attackScenario(0, 0, 0.5), trace);
  EXPECT_EQ(half.amnesiacs,
            resolveAdversary(attackScenario(0, 0, 0.5), trace).amnesiacs);
  EXPECT_NEAR(static_cast<double>(half.amnesiacs.size()) / population, 0.5,
              0.15);
  EXPECT_TRUE(half.enabled());

  const ResolvedAdversary all =
      resolveAdversary(attackScenario(0, 0, 1.0), trace);
  EXPECT_EQ(all.amnesiacs.size(), population);
}

TEST(ResolveAdversaryTest, CohortsVaryWithSeed) {
  const auto trace = synthTrace(200, 7);
  Scenario a = attackScenario(5, 3, 0.0);
  Scenario b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(resolveAdversary(a, trace).colluders,
            resolveAdversary(b, trace).colluders);
}

// ---- applyBursts ----

TEST(ApplyBurstsTest, FullFractionBurstClipsEverySession) {
  auto trace = synthTrace(120, 13);
  const SimTime at = 40 * kMinute;
  const SimDuration duration = 10 * kMinute;
  applyBursts(trace, {{at, duration, 1.0}}, /*seed=*/99);

  std::string why;
  EXPECT_TRUE(trace.validate(&why)) << why;
  for (const auto& nt : trace.nodes()) {
    EXPECT_DOUBLE_EQ(nt.availability(at, at + duration), 0.0) << "node was "
        << "up inside the burst window";
  }
  EXPECT_EQ(trace.aliveCount(at), 0u);
  EXPECT_EQ(trace.aliveCount(at + duration / 2), 0u);
}

TEST(ApplyBurstsTest, EmptyBurstListIsIdentity) {
  const auto before = synthTrace(80, 17);
  auto after = before;
  applyBursts(after, {}, /*seed=*/5);
  ASSERT_EQ(after.nodes().size(), before.nodes().size());
  for (std::size_t i = 0; i < before.nodes().size(); ++i) {
    EXPECT_EQ(after.nodes()[i].sessions.size(),
              before.nodes()[i].sessions.size());
    for (std::size_t j = 0; j < before.nodes()[i].sessions.size(); ++j) {
      EXPECT_EQ(after.nodes()[i].sessions[j], before.nodes()[i].sessions[j]);
    }
  }
}

TEST(ApplyBurstsTest, PartialBurstIsDeterministicAndLeavesSurvivors) {
  auto a = synthTrace(200, 19);
  auto b = synthTrace(200, 19);
  const SimTime at = kHour;
  const SimDuration duration = 5 * kMinute;
  applyBursts(a, {{at, duration, 0.4}}, /*seed=*/7);
  applyBursts(b, {{at, duration, 0.4}}, /*seed=*/7);

  std::size_t downA = 0;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].sessions.size(), b.nodes()[i].sessions.size());
    if (a.nodes()[i].availability(at, at + duration) == 0.0) ++downA;
  }
  // The cluster covers ceil(fraction * n) members; everyone else keeps
  // whatever schedule churn gave them, so some nodes must still be up.
  EXPECT_GE(downA, static_cast<std::size_t>(0.4 * a.nodes().size()));
  EXPECT_GT(a.aliveCount(at + duration / 2), 0u);
}

// ---- armed node behaviors ----

TEST(AdversaryBehaviorTest, CollusionLiesOnlyAboutVictims) {
  Scenario s;
  s.model = churn::Model::kSynth;
  s.stableSize = 120;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.seed = 2024;
  ScenarioRunner runner(s);
  runner.run();

  // Enlist a node with a non-empty target set and make one target a
  // victim: the estimate for the victim snaps to the coalition lie while
  // other targets keep their honest history estimates.
  const NodeId* monitorId = nullptr;
  for (const auto& nt : runner.schedule().nodes()) {
    if (runner.node(nt.id).targetSet().size() >= 2) {
      monitorId = &nt.id;
      break;
    }
  }
  ASSERT_NE(monitorId, nullptr);
  AvmonNode& monitor = runner.mutableNode(*monitorId);

  const auto& ts = monitor.targetSet();
  const NodeId victim = ts.begin()->first;
  NodeId other;
  for (const auto& entry : ts) {
    if (entry.first != victim) other = entry.first;
  }
  ASSERT_NE(other, victim);
  const auto honestVictim = monitor.availabilityEstimateOf(victim);
  const auto honestOther = monitor.availabilityEstimateOf(other);
  ASSERT_TRUE(honestVictim.has_value());
  ASSERT_TRUE(honestOther.has_value());

  auto victims = std::make_shared<std::unordered_set<NodeId>>();
  victims->insert(victim);
  monitor.setCollusion(victims);
  EXPECT_EQ(monitor.availabilityEstimateOf(victim), 1.0);
  EXPECT_EQ(monitor.availabilityEstimateOf(other), honestOther);

  monitor.setCollusion(nullptr);  // leaving the coalition restores honesty
  EXPECT_EQ(monitor.availabilityEstimateOf(victim), honestVictim);
}

TEST(AdversaryBehaviorTest, AmnesiaWipesPersistentStateOnLeave) {
  Scenario s;
  s.model = churn::Model::kSynth;
  s.stableSize = 100;
  s.horizon = kHour;
  s.warmup = 20 * kMinute;
  s.seed = 31;

  Scenario forgetfulTwin = s;
  forgetfulTwin.attack.forgetfulFraction = 1.0;

  ScenarioRunner honest(s);
  honest.run();
  ScenarioRunner wiped(forgetfulTwin);
  wiped.run();

  // Every node's final lifecycle event by the horizon is a leave, so a
  // universally forgetful population ends the run with no persistent
  // state anywhere — while the honest twin retains plenty.
  std::size_t honestEntries = 0;
  for (const auto& nt : honest.schedule().nodes()) {
    const AvmonNode& node = honest.node(nt.id);
    honestEntries += node.coarseView().size() + node.pingingSet().size() +
                     node.targetSet().size();
  }
  EXPECT_GT(honestEntries, 0u);

  EXPECT_EQ(wiped.adversary().amnesiacs.size(),
            wiped.schedule().nodes().size());
  for (const auto& nt : wiped.schedule().nodes()) {
    const AvmonNode& node = wiped.node(nt.id);
    if (node.isAlive()) continue;  // end-of-horizon stragglers keep state
    EXPECT_TRUE(node.coarseView().empty()) << nt.id.toString();
    EXPECT_TRUE(node.pingingSet().empty()) << nt.id.toString();
    EXPECT_TRUE(node.targetSet().empty()) << nt.id.toString();
  }
}

// ---- end-to-end determinism with an armed adversary ----

TEST(AdversaryDeterminismTest, AttackRunIsShardInvariant) {
  Scenario s;
  s.model = churn::Model::kSynth;
  s.stableSize = 120;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.seed = 321;
  s.attack.collusion = 6;
  s.attack.victims = 4;
  s.attack.forgetfulFraction = 0.2;

  std::uint64_t summary1 = 0, perNode1 = 0;
  std::vector<NodeId> colluders1;
  for (const unsigned shards : {1u, 3u}) {
    Scenario shardCopy = s;
    shardCopy.shards = shards;
    ScenarioRunner runner(shardCopy);
    runner.run();
    if (shards == 1) {
      summary1 = summaryHash(runner);
      perNode1 = perNodeHash(runner);
      colluders1 = runner.adversary().colluders;
      EXPECT_EQ(colluders1.size(), 6u);
    } else {
      EXPECT_EQ(summaryHash(runner), summary1);
      EXPECT_EQ(perNodeHash(runner), perNode1);
      EXPECT_EQ(runner.adversary().colluders, colluders1);
    }
  }
}

// ---- Section 4.3 cross-validation (paper formulas vs the harness) ----

TEST(CollusionMathTest, PollutionRateTracksProbSystemCollusionFree) {
  // Many independently-resolved coalitions against the real selection
  // hash: the fraction of (coalition, victim-set) draws where NO colluder
  // satisfies the consistency condition for any victim must match the
  // closed form (1 - K/N)^(C*V) from Section 4.3.
  constexpr std::size_t kN = 400;
  constexpr std::uint32_t kColluders = 4;
  constexpr std::uint32_t kVictims = 6;
  constexpr int kTrials = 400;

  // Always-up population: cohort resolution only needs the node list.
  std::vector<trace::NodeTrace> nodes(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    nodes[i].id = NodeId::fromIndex(static_cast<std::uint32_t>(i));
    nodes[i].sessions = {{0, kHour}};
  }
  const trace::AvailabilityTrace trace(kHour, std::move(nodes));

  const auto hashFn = hash::makeHashFunction("splitmix64");
  const unsigned k = defaultK(kN);
  const HashMonitorSelector selector(*hashFn, k, kN);

  int cleanTrials = 0;
  for (int t = 0; t < kTrials; ++t) {
    Scenario s = attackScenario(kColluders, kVictims, 0.0);
    s.seed = 1000 + static_cast<std::uint64_t>(t);
    const ResolvedAdversary adversary = resolveAdversary(s, trace);
    ASSERT_EQ(adversary.colluders.size(), kColluders);
    ASSERT_EQ(adversary.victims.size(), kVictims);
    bool polluted = false;
    for (const NodeId& c : adversary.colluders) {
      for (const NodeId& v : adversary.victims) {
        polluted = polluted || selector.isMonitor(c, v);
      }
    }
    cleanTrials += polluted ? 0 : 1;
  }

  const double measured =
      static_cast<double>(cleanTrials) / static_cast<double>(kTrials);
  const double analytic = analysis::probSystemCollusionFree(
      kN, k, static_cast<std::size_t>(kColluders) * kVictims);
  // 400 Bernoulli trials at p ~ 0.6: sigma ~ 0.025, so 0.1 is ~4 sigma —
  // CI-stable while still falsifying a wrong exponent or wrong K.
  EXPECT_NEAR(measured, analytic, 0.1);
  // The per-victim form must bound the system form from above.
  EXPECT_GT(analysis::probNoColluderInPS(kN, k, kColluders), analytic);
}

}  // namespace
}  // namespace avmon::experiments
