// Shuffle-policy tests: the CYCLON-style swap alternative keeps all
// protocol invariants, still discovers monitors, and conserves the
// system-wide pointer population far more tightly than union-sample.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "avmon/node.hpp"
#include "common/rng.hpp"
#include "experiments/scenario.hpp"
#include "hash/hash_function.hpp"

namespace avmon {
namespace {

experiments::Scenario swapScenario(ShufflePolicy policy) {
  experiments::Scenario s;
  s.model = churn::Model::kStat;
  s.stableSize = 200;
  s.horizon = 2 * kHour;
  s.warmup = 30 * kMinute;
  s.seed = 55;
  s.hashName = "splitmix64";
  AvmonConfig cfg = AvmonConfig::paperDefaults(200);
  cfg.shuffle = policy;
  s.configOverride = cfg;
  return s;
}

TEST(ShufflePolicyTest, NamesAreStable) {
  EXPECT_EQ(shufflePolicyName(ShufflePolicy::kUnionSample), "union-sample");
  EXPECT_EQ(shufflePolicyName(ShufflePolicy::kSwap), "swap");
}

TEST(ShufflePolicyTest, SwapStillDiscoversMonitors) {
  experiments::ScenarioRunner runner(swapScenario(ShufflePolicy::kSwap));
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.85);
}

TEST(ShufflePolicyTest, SwapKeepsViewInvariants) {
  experiments::ScenarioRunner runner(swapScenario(ShufflePolicy::kSwap));
  runner.run();
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    EXPECT_LE(node.coarseView().size(), runner.config().cvs);
    std::unordered_set<NodeId> unique(node.coarseView().begin(),
                                      node.coarseView().end());
    EXPECT_EQ(unique.size(), node.coarseView().size());
    for (const NodeId& n : node.coarseView()) EXPECT_NE(n, node.id());
  }
}

TEST(ShufflePolicyTest, SwapBalancesIndegreeBetterThanUnionSample) {
  // Indegree = number of coarse views holding a node. Swap conserves
  // pointers, so the indegree distribution should have a smaller maximum
  // than union-sample's random-walk drift in a static system.
  const auto maxIndegree = [](ShufflePolicy policy) {
    experiments::ScenarioRunner runner(swapScenario(policy));
    runner.run();
    std::unordered_map<NodeId, std::size_t> indegree;
    for (const auto& nt : runner.schedule().nodes()) {
      for (const NodeId& held : runner.node(nt.id).coarseView()) {
        ++indegree[held];
      }
    }
    std::size_t maxIn = 0;
    for (const auto& [id, count] : indegree) maxIn = std::max(maxIn, count);
    return maxIn;
  };

  const std::size_t swapMax = maxIndegree(ShufflePolicy::kSwap);
  const std::size_t unionMax = maxIndegree(ShufflePolicy::kUnionSample);
  EXPECT_LE(swapMax, unionMax + 5);  // swap never meaningfully worse
}

TEST(ShufflePolicyTest, SwapSurvivesChurn) {
  experiments::Scenario s = swapScenario(ShufflePolicy::kSwap);
  s.model = churn::Model::kSynthBD;
  s.horizon = 3 * kHour;
  experiments::ScenarioRunner runner(s);
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.6);
}

}  // namespace
}  // namespace avmon
