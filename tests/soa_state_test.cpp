// Struct-of-arrays state-table proof layer (the memory-diet tentpole).
//
// Two guarantees:
//  * The probe mirror is EXACT: after a run, every NodeStateTable row
//    equals the corresponding AvmonNode object's state — container sizes,
//    counters, liveness, and the k=1 discovery delay answered off the
//    firstJoin/firstDiscovery columns. If a mutation path ever forgets to
//    publishState(), this cross-check catches it on the paper workloads.
//  * The SoA layout changed the metric path, not the metrics: the golden
//    summary and per-node fingerprints are bit-identical at S ∈ {1, 2, 8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "avmon/node.hpp"
#include "experiments/protocols/avmon_protocol.hpp"
#include "experiments/scenario.hpp"
#include "experiments/spec.hpp"
#include "golden_hash.hpp"

namespace avmon::experiments {
namespace {

void expectTableMatchesObjects(const ScenarioRunner& runner) {
  const auto* proto = dynamic_cast<const AvmonProtocol*>(&runner.protocol());
  ASSERT_NE(proto, nullptr);
  const soa::NodeStateTable& table = proto->stateTable();
  const auto& nodes = runner.schedule().nodes();
  ASSERT_GE(table.size(), nodes.size());
  for (const auto& nt : nodes) {
    const std::uint32_t slot = runner.world().globalIndexOf(nt.id);
    ASSERT_LT(slot, table.size());
    const AvmonNode& node = runner.node(nt.id);
    EXPECT_EQ(table.alive[slot] != 0, node.isAlive()) << "slot " << slot;
    EXPECT_EQ(table.cvSize[slot], node.coarseView().size());
    EXPECT_EQ(table.psSize[slot], node.pingingSet().size());
    EXPECT_EQ(table.tsSize[slot], node.targetSet().size());
    EXPECT_EQ(table.hashChecks[slot], node.metrics().hashChecks);
    EXPECT_EQ(table.uselessPings[slot], node.metrics().uselessPings);

    // Probes answered off the table == probes answered off the object.
    EXPECT_EQ(proto->memoryEntries(nt.id),
              node.coarseView().size() + node.pingingSet().size() +
                  node.targetSet().size());
    EXPECT_EQ(proto->isMonitoring(nt.id), !node.targetSet().empty());
    const std::optional<SimDuration> tableDelay = proto->discoveryDelay(nt.id, 1);
    const std::optional<SimDuration> objectDelay = node.discoveryDelay(1);
    EXPECT_EQ(tableDelay.has_value(), objectDelay.has_value());
    if (tableDelay && objectDelay) {
      EXPECT_EQ(*tableDelay, *objectDelay);
    }
  }
}

// Every golden workload, single shard: the mirror is exact row by row.
TEST(SoaStateTest, TableMatchesObjectStateAfterRun) {
  for (const Scenario& s : goldenScenarios()) {
    ScenarioRunner runner(s);
    runner.run();
    expectTableMatchesObjects(runner);
  }
}

// Same exactness when the population is partitioned across shards (each
// shard's nodes publish into the one shared table at disjoint slots).
TEST(SoaStateTest, TableMatchesObjectStateWhenSharded) {
  Scenario s = goldenScenarios().front();
  s.shards = 8;
  ScenarioRunner runner(s);
  runner.run();
  expectTableMatchesObjects(runner);
}

// The memory diet is metric-invisible: summary and per-node fingerprints
// are bit-identical for S ∈ {1, 2, 8} on the pinned STAT workload.
TEST(SoaStateTest, GoldenFingerprintsIdenticalAcrossShardCounts) {
  const Scenario base = goldenScenarios().front();
  std::optional<std::uint64_t> refSummary, refPerNode;
  for (const unsigned shards : {1u, 2u, 8u}) {
    Scenario s = base;
    s.shards = shards;
    ScenarioRunner runner(s);
    runner.run();
    const std::uint64_t summary = summaryHash(runner);
    const std::uint64_t perNode = perNodeHash(runner);
    if (!refSummary) {
      refSummary = summary;
      refPerNode = perNode;
    } else {
      EXPECT_EQ(summary, *refSummary) << "shards=" << shards;
      EXPECT_EQ(perNode, *refPerNode) << "shards=" << shards;
    }
  }
}

// The million-node scenario family, golden-pinned at CI scale. This is
// examples/specs/million_node_smoke.spec built in code — STAT, compact
// histories, cvs/k override, sharded, streaming-only metrics — which
// differs from the full million_node.spec ONLY in n. The full-scale
// fingerprint (0xe68f9db28835e840 at N = 10^6) is reported by
// `bench_sim_core --million` and recorded in BENCH_simcore.json; this
// pin catches any drift in the machinery both specs share.
TEST(SoaStateTest, MillionNodeSmokeFingerprintPinned) {
  Scenario s;
  s.model = churn::Model::kStat;
  s.stableSize = 20000;
  s.horizon = 3 * kMinute;
  s.warmup = 1 * kMinute;
  s.seed = 1000003;
  s.hashName = "splitmix64";
  s.configOverride = cvsKOverride(s.model, s.stableSize, /*cvs=*/4, /*k=*/1);
  s.shards = 4;
  s.history = "compact";
  s.metrics.window = kMinute;
  s.metrics.reducers = {"summary"};
  ScenarioRunner runner(s);
  runner.run();
  EXPECT_EQ(summaryHash(runner), 0xae92f15b08ba8fbaULL);
  EXPECT_EQ(perNodeHash(runner), 0x524362948a712bd5ULL);
}

}  // namespace
}  // namespace avmon::experiments
