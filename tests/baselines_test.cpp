// Baseline scheme tests: Broadcast, Central, Self-report, DHT ring — and
// the property violations the paper attributes to them.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "baselines/broadcast.hpp"
#include "baselines/central.hpp"
#include "baselines/dht_ring.hpp"
#include "baselines/self_report.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"

namespace avmon::baselines {
namespace {

// ---- Broadcast ----

class BroadcastFixture : public ::testing::Test {
 protected:
  BroadcastFixture()
      : selector_(md5_, 8, 64), net_(sim_, sim::NetworkConfig{}, Rng(3)) {}

  void makeNodes(std::size_t count) {
    const auto directory = [this] {
      std::vector<NodeId> alive;
      for (const auto& n : nodes_) {
        if (n->isAlive()) alive.push_back(n->id());
      }
      return alive;
    };
    for (std::size_t i = 0; i < count; ++i) {
      nodes_.push_back(std::make_unique<BroadcastNode>(
          NodeId::fromIndex(static_cast<std::uint32_t>(i)), selector_, sim_,
          net_, directory));
    }
  }

  hash::Md5HashFunction md5_;
  HashMonitorSelector selector_;
  sim::Simulator sim_;
  sim::Network net_;
  std::vector<std::unique_ptr<BroadcastNode>> nodes_;
};

TEST_F(BroadcastFixture, JoinersLearnFullMembership) {
  makeNodes(30);
  for (auto& n : nodes_) n->join();
  sim_.runUntil(kMinute);
  for (const auto& n : nodes_) {
    EXPECT_EQ(n->membership().size(), nodes_.size() - 1) << n->id().toString();
  }
}

TEST_F(BroadcastFixture, MonitorsMatchSelectorExactly) {
  makeNodes(40);
  for (auto& n : nodes_) n->join();
  sim_.runUntil(kMinute);

  for (const auto& x : nodes_) {
    for (const auto& y : nodes_) {
      if (x->id() == y->id()) continue;
      EXPECT_EQ(x->pingingSet().count(y->id()),
                selector_.isMonitor(y->id(), x->id()));
      EXPECT_EQ(x->targetSet().count(y->id()),
                selector_.isMonitor(x->id(), y->id()));
    }
  }
}

TEST_F(BroadcastFixture, DiscoveryIsNearInstant) {
  makeNodes(40);
  for (auto& n : nodes_) n->join();
  sim_.runUntil(kMinute);
  for (const auto& n : nodes_) {
    if (const auto d = n->firstMonitorDelay()) {
      EXPECT_LE(*d, kSecond);  // one broadcast latency
    }
  }
}

TEST_F(BroadcastFixture, MemoryIsOrderN) {
  makeNodes(50);
  for (auto& n : nodes_) n->join();
  sim_.runUntil(kMinute);
  for (const auto& n : nodes_) {
    EXPECT_GE(n->memoryEntries(), nodes_.size() - 1);
  }
}

TEST_F(BroadcastFixture, JoinCostIsOrderNMessages) {
  makeNodes(30);
  for (auto& n : nodes_) n->join();
  sim_.runUntil(kMinute);
  // The last joiner alone sent >= N-1 presence messages.
  const auto traffic = net_.traffic(nodes_.back()->id());
  EXPECT_GE(traffic.messagesSent, nodes_.size() - 1);
}

// ---- Central ----

TEST(CentralTest, ServerMonitorsEveryRegisteredMember) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetworkConfig{}, Rng(4));
  const NodeId serverId = NodeId::fromIndex(1000);
  CentralServer server(serverId, sim, net, kMinute);
  server.start();

  std::vector<std::unique_ptr<CentralMember>> members;
  for (std::uint32_t i = 0; i < 20; ++i) {
    members.push_back(std::make_unique<CentralMember>(
        NodeId::fromIndex(i), serverId, net));
    members.back()->join();
  }
  sim.runUntil(30 * kMinute);

  EXPECT_EQ(server.memberCount(), 20u);
  for (const auto& m : members) {
    EXPECT_DOUBLE_EQ(server.estimateOf(m->id()), 1.0);
  }
}

TEST(CentralTest, EstimateTracksDowntime) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetworkConfig{}, Rng(4));
  const NodeId serverId = NodeId::fromIndex(1000);
  CentralServer server(serverId, sim, net, kMinute);
  server.start();

  CentralMember m(NodeId::fromIndex(1), serverId, net);
  m.join();
  sim.runUntil(10 * kMinute);
  m.leave();
  sim.runUntil(20 * kMinute);

  const double est = server.estimateOf(m.id());
  EXPECT_GT(est, 0.2);
  EXPECT_LT(est, 0.8);
}

TEST(CentralTest, ServerLoadIsOrderNPerPeriod) {
  sim::Simulator sim;
  sim::Network net(sim, sim::NetworkConfig{}, Rng(4));
  const NodeId serverId = NodeId::fromIndex(1000);
  CentralServer server(serverId, sim, net, kMinute);
  server.start();

  std::vector<std::unique_ptr<CentralMember>> members;
  for (std::uint32_t i = 0; i < 50; ++i) {
    members.push_back(std::make_unique<CentralMember>(
        NodeId::fromIndex(i), serverId, net));
    members.back()->join();
  }
  sim.runUntil(10 * kMinute + kSecond);
  // ~10 periods × 50 members: the load-balance failure in one number.
  EXPECT_GE(server.pingsSent(), 450u);
}

// ---- Self-report ----

TEST(SelfReportTest, HonestNodeReportsTruth) {
  SelfReportNode n(NodeId::fromIndex(1));
  n.join(0);
  n.leave(60);
  n.join(120);
  // At t=180: up 60+60 of 180.
  EXPECT_NEAR(n.trueAvailability(180), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(n.reportedAvailability(180), 2.0 / 3.0, 1e-9);
}

TEST(SelfReportTest, SelfishNodeLiesFreely) {
  SelfReportNode n(NodeId::fromIndex(2));
  n.join(0);
  n.leave(10);
  n.setSelfish(true);
  // Actual availability is 10%, reported is 100% — the failure mode that
  // motivates AVMON's randomness requirement.
  EXPECT_NEAR(n.trueAvailability(100), 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(n.reportedAvailability(100), 1.0);
}

TEST(SelfReportTest, NeverJoinedIsZero) {
  SelfReportNode n(NodeId::fromIndex(3));
  EXPECT_DOUBLE_EQ(n.trueAvailability(1000), 0.0);
}

// ---- DHT ring ----

class DhtFixture : public ::testing::Test {
 protected:
  DhtFixture() : ring_(md5_, 5) {
    for (std::uint32_t i = 0; i < 100; ++i) {
      ids_.push_back(NodeId::fromIndex(i));
      ring_.join(ids_.back());
    }
  }
  hash::Md5HashFunction md5_;
  DhtRing ring_;
  std::vector<NodeId> ids_;
};

TEST_F(DhtFixture, PingingSetHasKMembers) {
  for (const NodeId& id : ids_) {
    const auto ps = ring_.replicaSet(id);
    EXPECT_EQ(ps.size(), 5u);
    EXPECT_EQ(std::count(ps.begin(), ps.end(), id), 0);
  }
}

TEST_F(DhtFixture, JoinNearTargetChangesMonitorSet) {
  // The consistency violation: a churn event (new node joining) displaces
  // an existing monitor of an unrelated node.
  const NodeId victim = ids_[0];
  const auto before = ring_.replicaSet(victim);

  std::size_t changes = 0;
  for (std::uint32_t i = 100; i < 400; ++i) {
    const NodeId fresh = NodeId::fromIndex(i);
    ring_.join(fresh);
    const auto after = ring_.replicaSet(victim);
    if (after != before) ++changes;
    ring_.leave(fresh);
  }
  EXPECT_GT(changes, 0u);  // some joins landed inside the replica window
}

TEST_F(DhtFixture, AvmonSelectionIsChurnImmuneWhereDhtIsNot) {
  // Contrast property: under the same churn, AVMON's hash-based relation
  // between two fixed nodes never changes (it ignores membership).
  HashMonitorSelector avmon(md5_, 5, 100);
  const NodeId a = ids_[1], b = ids_[2];
  const bool verdict = avmon.isMonitor(a, b);
  for (std::uint32_t i = 100; i < 200; ++i) {
    ring_.join(NodeId::fromIndex(i));  // churn that would perturb the DHT
    EXPECT_EQ(avmon.isMonitor(a, b), verdict);
  }
}

TEST_F(DhtFixture, MonitorsAreCorrelatedAcrossTargets) {
  // Randomness violation 3(b): monitors of x are ring-adjacent, so pairs
  // of them co-occur in other pinging sets far more often than random.
  std::size_t cooccur = 0, trials = 0;
  for (std::size_t i = 0; i + 1 < ids_.size(); ++i) {
    const auto ps = ring_.replicaSet(ids_[i]);
    if (ps.size() < 2) continue;
    // Check whether the first two monitors of ids_[i] appear together in
    // any other node's pinging set.
    for (std::size_t j = 0; j < ids_.size(); ++j) {
      if (j == i) continue;
      const auto other = ring_.replicaSet(ids_[j]);
      const bool hasA = std::find(other.begin(), other.end(), ps[0]) != other.end();
      const bool hasB = std::find(other.begin(), other.end(), ps[1]) != other.end();
      ++trials;
      if (hasA && hasB) ++cooccur;
    }
  }
  ASSERT_GT(trials, 0u);
  const double rate = static_cast<double>(cooccur) / static_cast<double>(trials);
  // Under uncorrelated selection the co-occurrence rate would be ~(K/N)²
  // = 0.25%; ring adjacency makes it over an order of magnitude higher.
  EXPECT_GT(rate, 0.025);
}

TEST_F(DhtFixture, LeaveRemovesFromRing) {
  const NodeId gone = ids_[10];
  ring_.leave(gone);
  EXPECT_EQ(ring_.size(), 99u);
  for (const NodeId& id : ids_) {
    if (id == gone) continue;
    const auto ps = ring_.replicaSet(id);
    EXPECT_EQ(std::count(ps.begin(), ps.end(), gone), 0);
  }
}

TEST_F(DhtFixture, SmallRingReturnsFewerMonitors) {
  DhtRing tiny(md5_, 5);
  tiny.join(ids_[0]);
  tiny.join(ids_[1]);
  EXPECT_EQ(tiny.replicaSet(ids_[0]).size(), 1u);
}

}  // namespace
}  // namespace avmon::baselines
