// MD5 / SHA-1 / hash-function interface tests, including the official RFC
// test vectors both digests must reproduce bit-exactly.
#include <gtest/gtest.h>

#include <cstring>
#include "common/byte_span.hpp"
#include <string>

#include "hash/hash_function.hpp"
#include "hash/md5.hpp"
#include "hash/sha1.hpp"

namespace avmon::hash {
namespace {

ByteSpan bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// --- RFC 1321 Appendix A.5 test suite ---

struct Md5Vector {
  const char* message;
  const char* digest;
};

class Md5VectorTest : public ::testing::TestWithParam<Md5Vector> {};

TEST_P(Md5VectorTest, MatchesRfc1321) {
  const auto& [message, digest] = GetParam();
  EXPECT_EQ(Md5::toHex(Md5::digest(bytes(message))), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1321, Md5VectorTest,
    ::testing::Values(
        Md5Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Md5Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Md5Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Md5Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Md5Vector{"abcdefghijklmnopqrstuvwxyz",
                  "c3fcd3d76192e4007dfb496cca67e13b"},
        Md5Vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                  "56789",
                  "d174ab98d277d9f5a5611c2c9f419d9f"},
        Md5Vector{"1234567890123456789012345678901234567890123456789012345678"
                  "9012345678901234567890",
                  "57edf4a22be3c955ac49da2e2107b67a"}));

// --- RFC 3174 / FIPS 180-1 SHA-1 vectors ---

struct Sha1Vector {
  const char* message;
  const char* digest;
};

class Sha1VectorTest : public ::testing::TestWithParam<Sha1Vector> {};

TEST_P(Sha1VectorTest, MatchesRfc3174) {
  const auto& [message, digest] = GetParam();
  EXPECT_EQ(Sha1::toHex(Sha1::digest(bytes(message))), digest);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc3174, Sha1VectorTest,
    ::testing::Values(
        Sha1Vector{"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
        Sha1Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                   "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        Sha1Vector{"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
        Sha1Vector{"The quick brown fox jumps over the lazy dog",
                   "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"}));

TEST(Md5Test, MillionAs) {
  // RFC 1321 long-message vector, exercised incrementally to cover the
  // buffered update path with uneven chunk sizes.
  Md5 ctx;
  const std::string chunk(617, 'a');  // deliberately not a divisor of 64
  std::size_t sent = 0;
  while (sent < 1000000) {
    const std::size_t take = std::min<std::size_t>(chunk.size(), 1000000 - sent);
    ctx.update(bytes(chunk.substr(0, take)));
    sent += take;
  }
  EXPECT_EQ(Md5::toHex(ctx.finalize()), "7707d6ae4e027c70eea2a935c2296f21");
}

TEST(Sha1Test, MillionAs) {
  Sha1 ctx;
  const std::string chunk(977, 'a');
  std::size_t sent = 0;
  while (sent < 1000000) {
    const std::size_t take = std::min<std::size_t>(chunk.size(), 1000000 - sent);
    ctx.update(bytes(chunk.substr(0, take)));
    sent += take;
  }
  EXPECT_EQ(Sha1::toHex(ctx.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Md5Test, IncrementalEqualsOneShot) {
  const std::string msg = "The quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Md5 ctx;
    ctx.update(bytes(msg.substr(0, split)));
    ctx.update(bytes(msg.substr(split)));
    EXPECT_EQ(ctx.finalize(), Md5::digest(bytes(msg))) << "split=" << split;
  }
}

TEST(HashFunctionTest, FactoryKnowsAllNames) {
  for (const char* name : {"md5", "sha1", "splitmix64"}) {
    const auto fn = makeHashFunction(name);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name(), name);
  }
  EXPECT_THROW(makeHashFunction("crc32"), std::invalid_argument);
}

TEST(HashFunctionTest, NormalizedIsInUnitInterval) {
  for (const char* name : {"md5", "sha1", "splitmix64"}) {
    const auto fn = makeHashFunction(name);
    for (std::uint32_t i = 0; i < 200; ++i) {
      const std::uint8_t data[4] = {
          static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i >> 8),
          static_cast<std::uint8_t>(i * 7), static_cast<std::uint8_t>(i * 13)};
      const double v = fn->normalized(data);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(HashFunctionTest, Digest64MatchesMd5Prefix) {
  // digest64 must be exactly the big-endian first 8 bytes of the digest —
  // the paper's "first 64 bits returned considered".
  Md5HashFunction fn;
  const std::string msg = "avmon";
  const Md5::Digest full = Md5::digest(bytes(msg));
  std::uint64_t expect = 0;
  for (int i = 0; i < 8; ++i) expect = (expect << 8) | full[i];
  EXPECT_EQ(fn.digest64(bytes(msg)), expect);
}

TEST(HashFunctionTest, RoughlyUniformOverBuckets) {
  // Property: normalized hashes of structured (sequential) inputs should
  // spread evenly — the randomness property the selection scheme needs.
  for (const char* name : {"md5", "sha1", "splitmix64"}) {
    const auto fn = makeHashFunction(name);
    constexpr int kBuckets = 16;
    constexpr int kSamples = 4096;
    int counts[kBuckets] = {};
    for (std::uint32_t i = 0; i < kSamples; ++i) {
      std::uint8_t data[4];
      std::memcpy(data, &i, sizeof(data));
      const double v = fn->normalized(data);
      counts[static_cast<int>(v * kBuckets)]++;
    }
    const double expected = static_cast<double>(kSamples) / kBuckets;
    for (int b = 0; b < kBuckets; ++b) {
      EXPECT_GT(counts[b], expected * 0.7) << name << " bucket " << b;
      EXPECT_LT(counts[b], expected * 1.3) << name << " bucket " << b;
    }
  }
}

}  // namespace
}  // namespace avmon::hash
