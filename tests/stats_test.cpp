// Summary, CDF, and table printer tests.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/rng.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table_printer.hpp"

namespace avmon::stats {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(SummaryTest, MergeEqualsSequential) {
  Rng rng(77);
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniformReal(-5, 20);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(CdfTest, EmptyIsSafe) {
  Cdf cdf({});
  EXPECT_EQ(cdf.count(), 0u);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10), 0.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 0.0);
  EXPECT_TRUE(cdf.curve(10).empty());
}

TEST(CdfTest, FractionAtOrBelow) {
  Cdf cdf({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1), 0.2);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(3), 0.6);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(100), 1.0);
}

TEST(CdfTest, Percentiles) {
  Cdf cdf({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(cdf.percentile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.percentile(0.0), 10.0);
}

TEST(CdfTest, CurveIsMonotoneAndEndsAtOne) {
  Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniformReal(0, 100));
  Cdf cdf(std::move(samples));
  const auto curve = cdf.curve(32);
  ASSERT_EQ(curve.size(), 32u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GE(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CdfTest, PercentileOneReturnsMaxForAllSizes) {
  for (std::size_t n : {1u, 2u, 3u, 7u, 100u}) {
    std::vector<double> samples;
    for (std::size_t i = 0; i < n; ++i)
      samples.push_back(0.1 * static_cast<double>(i + 1));
    Cdf cdf(std::move(samples));
    EXPECT_DOUBLE_EQ(cdf.percentile(1.0), cdf.max()) << "n=" << n;
    // Values that creep past 1.0 through accumulated rounding still clamp.
    EXPECT_DOUBLE_EQ(cdf.percentile(1.0 + 1e-15), cdf.max()) << "n=" << n;
  }
}

TEST(CdfTest, SingleSamplePercentileIsTotal) {
  Cdf cdf({42.0});
  for (double p : {-1.0, 0.0, 1e-300, 0.5, 1.0, 1.5,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN()}) {
    EXPECT_DOUBLE_EQ(cdf.percentile(p), 42.0) << "p=" << p;
  }
}

TEST(CdfTest, CurveEndsExactlyAtMaxAndOne) {
  // lo + (hi - lo) rounds below hi for these values; the endpoint must still
  // be emitted as (hi, 1.0), not a near-miss x whose F(x) excludes the max.
  Cdf cdf({0.1, 0.2, 0.30000000000000004});
  const auto curve = cdf.curve(7);
  ASSERT_EQ(curve.size(), 7u);
  EXPECT_DOUBLE_EQ(curve.back().first, cdf.max());
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CdfTest, IdenticalSamplesCollapse) {
  Cdf cdf({7, 7, 7});
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].first, 7.0);
  EXPECT_DOUBLE_EQ(curve[0].second, 1.0);
}

TEST(TablePrinterTest, AlignsColumnsAndPrintsTitle) {
  TablePrinter t("Figure X: demo");
  t.setHeader({"model", "N", "value"});
  t.addRow({"STAT", "100", "1.5"});
  t.addRow({"SYNTH-BD", "2000", "0.25"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("== Figure X: demo =="), std::string::npos);
  EXPECT_NE(s.find("SYNTH-BD"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("----"), std::string::npos);
  // Columns aligned: "N" column starts at the same offset in both rows.
  const auto l1 = s.find("STAT");
  const auto l2 = s.find("SYNTH-BD");
  ASSERT_NE(l1, std::string::npos);
  ASSERT_NE(l2, std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

}  // namespace
}  // namespace avmon::stats
