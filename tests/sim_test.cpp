// Discrete-event simulator and network model tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "sim/inline_action.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.runUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, TiesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(42, [&order, i] { order.push_back(i); });
  }
  sim.runUntil(42);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  SimTime observed = -1;
  sim.at(50, [&] {
    sim.at(10, [&] { observed = sim.now(); });  // "in the past"
  });
  sim.runUntil(100);
  EXPECT_EQ(observed, 50);
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(21, [&] { ++fired; });
  sim.runUntil(20);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  sim.at(1, [&] {
    ++depth;
    sim.after(1, [&] {
      ++depth;
      sim.after(1, [&] { ++depth; });
    });
  });
  sim.runUntil(10);
  EXPECT_EQ(depth, 3);
}

TEST(SimulatorTest, EveryRepeatsUntilCancelled) {
  Simulator sim;
  int count = 0;
  sim.every(10, 10, [&] {
    ++count;
    return count < 5;
  });
  sim.runUntil(1000);
  EXPECT_EQ(count, 5);
}

TEST(SimulatorTest, EveryHonorsPeriod) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.every(5, 7, [&] {
    fires.push_back(sim.now());
    return fires.size() < 4;
  });
  sim.runUntil(100);
  EXPECT_EQ(fires, (std::vector<SimTime>{5, 12, 19, 26}));
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] { ++fired; });
  sim.at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

// ---- calendar-queue internals (two-tier ordering) ----

TEST(SimulatorTest, SameInstantFifoSpansBothTiers) {
  // Two events land at T while T is beyond the ring window (overflow
  // tier); after the window slides over T they are promoted, and a third
  // event is then scheduled at T directly into its bucket. All three must
  // run in original scheduling order.
  Simulator sim;
  constexpr SimTime kT = 10'000;  // > kBucketCount from time 0
  static_assert(kT >= static_cast<SimTime>(Simulator::kBucketCount));
  std::vector<int> order;
  sim.at(kT, [&] { order.push_back(1); });
  sim.at(kT, [&] { order.push_back(2); });
  EXPECT_EQ(sim.overflowEvents(), 2u);

  // Slide the window: an executed event at 3000 puts kT inside
  // [3000, 3000 + kBucketCount) and triggers promotion.
  sim.at(3'000, [&] { order.push_back(0); });
  sim.runUntil(3'000);
  EXPECT_EQ(sim.overflowEvents(), 0u);

  sim.at(kT, [&] { order.push_back(3); });  // direct bucket insert
  sim.runUntil(kT);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SimulatorTest, FarFutureEventsPromoteAndFireOnTime) {
  Simulator sim;
  SimTime firedAt = -1;
  sim.at(2 * kHour, [&] { firedAt = sim.now(); });
  EXPECT_EQ(sim.overflowEvents(), 1u);
  sim.runUntil(3 * kHour);
  EXPECT_EQ(firedAt, 2 * kHour);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorTest, GlobalOrderMatchesStableSortAcrossTiers) {
  // Randomized workload spanning both tiers: execution order must equal a
  // stable sort by time (stability = scheduling order for ties).
  Simulator sim;
  Rng rng(2024);
  constexpr int kEvents = 2'000;
  std::vector<SimTime> when(kEvents);
  std::vector<int> fired;
  for (int i = 0; i < kEvents; ++i) {
    // Mix of bucket-window times and far-future overflow times, with
    // plenty of exact collisions.
    when[i] = static_cast<SimTime>(rng.below(40'000));
    sim.at(when[i], [&fired, i] { fired.push_back(i); });
  }
  sim.runUntil(50'000);

  std::vector<int> expected(kEvents);
  for (int i = 0; i < kEvents; ++i) expected[i] = i;
  std::stable_sort(expected.begin(), expected.end(),
                   [&](int a, int b) { return when[a] < when[b]; });
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(sim.executedEvents(), static_cast<std::uint64_t>(kEvents));
}

TEST(SimulatorTest, EveryCancellationLeavesNoPendingEvent) {
  Simulator sim;
  int count = 0;
  sim.every(10, 10, [&] {
    ++count;
    return count < 3;
  });
  sim.runUntil(1'000);
  EXPECT_EQ(count, 3);
  // The cancelled periodic chain reschedules nothing further.
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorTest, PendingPlusExecutedEqualsScheduled) {
  Simulator sim;
  std::uint64_t scheduled = 0;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const SimTime t = static_cast<SimTime>(rng.below(20'000));
    sim.at(t, [&sim, &scheduled, &rng] {
      // Half the events spawn a follow-up, some into the overflow tier.
      if (rng.chance(0.5)) {
        sim.after(static_cast<SimDuration>(rng.below(30'000)), [] {});
        ++scheduled;
      }
    });
    ++scheduled;
  }
  while (sim.pendingEvents() > 0) {
    EXPECT_EQ(sim.executedEvents() + sim.pendingEvents(), scheduled);
    sim.step();
  }
  EXPECT_EQ(sim.executedEvents(), scheduled);
}

TEST(SimulatorTest, PastSchedulingAfterBoundedRunStillFires) {
  // After runUntil(until) the clock sits at `until`; scheduling at or
  // before it must clamp to now and fire on the next run.
  Simulator sim;
  sim.runUntil(5'000);
  EXPECT_EQ(sim.now(), 5'000);
  SimTime observed = -1;
  sim.at(1'000, [&] { observed = sim.now(); });  // "in the past"
  sim.runUntil(5'000);
  EXPECT_EQ(observed, 5'000);
}

// ---- InlineAction ----

TEST(InlineActionTest, SmallCapturesStayInline) {
  struct Small {
    void* a;
    std::uint64_t b[4];
    void operator()() {}
  };
  static_assert(InlineAction::kInlineCapacity >= 48);
  EXPECT_TRUE(InlineAction::storedInline<Small>());
}

TEST(InlineActionTest, LargeCapturesFallBackToHeapAndStillRun) {
  std::array<char, 200> big{};
  big[0] = 42;
  int result = 0;
  auto lambda = [big, &result] { result = big[0]; };
  EXPECT_FALSE(InlineAction::storedInline<decltype(lambda)>());
  InlineAction action(std::move(lambda));
  ASSERT_TRUE(static_cast<bool>(action));
  action();
  EXPECT_EQ(result, 42);
}

TEST(InlineActionTest, MoveTransfersOwnership) {
  auto counter = std::make_shared<int>(0);
  InlineAction a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);  // original + stored copy
  InlineAction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(counter.use_count(), 2);   // no duplicate made by the move
  b();
  EXPECT_EQ(*counter, 1);
  b.reset();
  EXPECT_FALSE(static_cast<bool>(b));
  EXPECT_EQ(counter.use_count(), 1);  // stored copy destroyed
}

TEST(InlineActionTest, MoveAssignReplacesExisting) {
  int first = 0, second = 0;
  InlineAction a([&first] { ++first; });
  InlineAction b([&second] { ++second; });
  a = std::move(b);
  a();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

// ---- network ----

class RecordingEndpoint final : public Endpoint {
 public:
  void onMessage(const NodeId& from, const Message& message) override {
    froms.push_back(from);
    if (const auto* text = std::get_if<TextMessage>(&message))
      messages.push_back(text->text);
  }
  std::vector<NodeId> froms;
  std::vector<std::string> messages;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_, NetworkConfig{}, Rng(5)) {}

  Simulator sim_;
  Network net_;
  RecordingEndpoint a_, b_;
  NodeId idA_{NodeId::fromIndex(1)};
  NodeId idB_{NodeId::fromIndex(2)};
};

TEST_F(NetworkTest, DeliversToUpNode) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  net_.send(idA_, idB_, TextMessage{"hello", 10});
  sim_.runUntil(kSecond);
  ASSERT_EQ(b_.messages.size(), 1u);
  EXPECT_EQ(b_.messages[0], "hello");
  EXPECT_EQ(b_.froms[0], idA_);
  EXPECT_EQ(net_.delivered(), 1u);
}

TEST_F(NetworkTest, DropsToDownNode) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);  // B stays down
  net_.send(idA_, idB_, TextMessage{"hello", 10});
  sim_.runUntil(kSecond);
  EXPECT_TRUE(b_.messages.empty());
  EXPECT_EQ(net_.lost(), 1u);
}

TEST_F(NetworkTest, DropsIfTargetGoesDownBeforeDelivery) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  net_.send(idA_, idB_, TextMessage{"hello", 10});
  net_.setUp(idB_, false);  // goes down before the latency elapses
  sim_.runUntil(kSecond);
  EXPECT_TRUE(b_.messages.empty());
}

TEST_F(NetworkTest, ChargesSenderBytesImmediately) {
  net_.attach(idA_, a_);
  net_.setUp(idA_, true);
  net_.send(idA_, idB_, TextMessage{"x", 42});
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 42u);
  EXPECT_EQ(net_.traffic(idA_).messagesSent, 1u);
}

TEST_F(NetworkTest, RpcReachesUpNode) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  const auto response = net_.call(idA_, idB_, CvFetchRequest{8, 16});
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(std::holds_alternative<CvFetchResponse>(*response));
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 8u);
  EXPECT_EQ(net_.traffic(idB_).bytesSent, 16u);  // response charged to target
}

TEST_F(NetworkTest, RpcTimesOutOnDownNode) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  EXPECT_FALSE(net_.call(idA_, idB_, CvFetchRequest{8, 16}).has_value());
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 8u);  // request wasted
  EXPECT_EQ(net_.traffic(idB_).bytesSent, 0u);
}

TEST_F(NetworkTest, RpcTimesOutOnDetachedNode) {
  net_.attach(idA_, a_);
  net_.setUp(idA_, true);
  EXPECT_FALSE(net_.call(idA_, idB_, CvFetchRequest{8, 16}).has_value());
}

TEST_F(NetworkTest, ExchangeReturnsConcreteResponseType) {
  // An endpoint that actually serves CV fetches; exchange() hands the
  // caller the typed response, no variant handling at the call site.
  class ViewServer final : public Endpoint {
   public:
    void onMessage(const NodeId&, const Message&) override {}
    RpcResponse onRpc(const NodeId&, const RpcRequest& request) override {
      if (std::holds_alternative<CvFetchRequest>(request)) {
        return CvFetchResponse{{NodeId::fromIndex(7), NodeId::fromIndex(9)}};
      }
      return Endpoint::onRpc(NodeId{}, request);
    }
  } server;
  net_.attach(idA_, a_);
  net_.attach(idB_, server);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);

  const auto fetch = net_.exchange(idA_, idB_, CvFetchRequest{8, 16});
  ASSERT_TRUE(fetch.has_value());
  ASSERT_EQ(fetch->view.size(), 2u);
  EXPECT_EQ(fetch->view[0], NodeId::fromIndex(7));

  // The default Endpoint::onRpc acks with an *empty* response of the
  // matching type, so exchange() stays total against plain endpoints.
  const auto probe = net_.exchange(idB_, idA_, CvFetchRequest{8, 16});
  ASSERT_TRUE(probe.has_value());
  EXPECT_TRUE(probe->view.empty());
  EXPECT_TRUE(net_.exchange(idB_, idA_, PingRequest{8}).has_value());
}

TEST_F(NetworkTest, MessageWireSizeLivesWithTheType) {
  EXPECT_EQ(wireBytes(Message(JoinMessage{idA_, 3})), JoinMessage::kBytes);
  EXPECT_EQ(wireBytes(Message(NotifyMessage{idA_, idB_})),
            NotifyMessage::kBytes);
  EXPECT_EQ(wireBytes(Message(ForceAddMessage{idA_})), ForceAddMessage::kBytes);
  EXPECT_EQ(wireBytes(Message(TextMessage{"x", 42})), 42u);
  EXPECT_EQ(requestWireBytes(RpcRequest(CvFetchRequest{8, 136})), 8u);
  EXPECT_EQ(responseWireBytes(RpcRequest(CvFetchRequest{8, 136})), 136u);
  EXPECT_EQ(requestWireBytes(RpcRequest(SwapRequest{{}, 8, 5})), 40u);
}

TEST_F(NetworkTest, TrafficCountersSurviveDetachAndReattach) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  net_.send(idA_, idB_, TextMessage{"one", 10});
  net_.detach(idA_);
  // Counters belong to the node id, not the endpoint object.
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 10u);
  EXPECT_EQ(net_.traffic(idA_).messagesSent, 1u);

  RecordingEndpoint reborn;
  net_.attach(idA_, reborn);
  net_.setUp(idA_, true);
  net_.send(idA_, idB_, TextMessage{"two", 5});
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 15u);
  EXPECT_EQ(net_.traffic(idA_).messagesSent, 2u);
  // And the reattached endpoint receives traffic again.
  net_.send(idB_, idA_, TextMessage{"back", 4});
  sim_.runUntil(kSecond);
  ASSERT_EQ(reborn.messages.size(), 1u);
  EXPECT_EQ(reborn.messages[0], "back");
}

TEST_F(NetworkTest, CallAsyncInstantaneousModeMatchesCall) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  std::optional<RpcResponse> result;
  bool fired = false;
  net_.callAsync(idA_, idB_, PingRequest{8}, [&](auto r) {
    fired = true;
    result = std::move(r);
  });
  // With deferredRpc off the handler runs before callAsync returns.
  EXPECT_TRUE(fired);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 8u);
  EXPECT_EQ(net_.traffic(idB_).bytesSent, 8u);
}

TEST_F(NetworkTest, DeferredRpcDeliversAfterBothLegs) {
  NetworkConfig cfg;
  cfg.minLatency = 10;
  cfg.maxLatency = 20;
  cfg.deferredRpc = true;
  Network net(sim_, cfg, Rng(11));
  net.attach(idA_, a_);
  net.attach(idB_, b_);
  net.setUp(idA_, true);
  net.setUp(idB_, true);

  SimTime completedAt = -1;
  bool gotResponse = false;
  net.callAsync(idA_, idB_, PingRequest{8}, [&](auto r) {
    gotResponse = r.has_value();
    completedAt = sim_.now();
  });
  EXPECT_EQ(completedAt, -1);  // nothing fires synchronously
  // Request charged up front; response charged when the target serves it.
  EXPECT_EQ(net.traffic(idA_).bytesSent, 8u);
  sim_.runUntil(kSecond);
  EXPECT_TRUE(gotResponse);
  EXPECT_GE(completedAt, 2 * 10);  // two legs, each >= minLatency
  EXPECT_LE(completedAt, 2 * 20);  // and <= maxLatency
  EXPECT_EQ(net.traffic(idB_).bytesSent, 8u);
}

TEST_F(NetworkTest, DeferredRpcLateResponseBecomesTimeout) {
  // A round trip that outlives rpcTimeout is a timeout to the caller even
  // though the target served it (and spent its response bytes).
  NetworkConfig cfg;
  cfg.minLatency = 150;
  cfg.maxLatency = 150;
  cfg.rpcTimeout = 200;
  cfg.deferredRpc = true;
  Network net(sim_, cfg, Rng(13));
  net.attach(idA_, a_);
  net.attach(idB_, b_);
  net.setUp(idA_, true);
  net.setUp(idB_, true);

  SimTime completedAt = -1;
  bool gotResponse = true;
  net.callAsync(idA_, idB_, PingRequest{8}, [&](auto r) {
    gotResponse = r.has_value();
    completedAt = sim_.now();
  });
  sim_.runUntil(kSecond);
  EXPECT_FALSE(gotResponse);
  EXPECT_EQ(completedAt, 200);  // exactly the caller's deadline
  EXPECT_EQ(net.traffic(idB_).bytesSent, 8u);  // response leg was produced
}

TEST_F(NetworkTest, DeferredRpcTimesOutOnDownTarget) {
  NetworkConfig cfg;
  cfg.deferredRpc = true;
  Network net(sim_, cfg, Rng(12));
  net.attach(idA_, a_);
  net.attach(idB_, b_);
  net.setUp(idA_, true);  // B stays down

  SimTime completedAt = -1;
  bool gotResponse = true;
  net.callAsync(idA_, idB_, CvFetchRequest{8, 16}, [&](auto r) {
    gotResponse = r.has_value();
    completedAt = sim_.now();
  });
  sim_.runUntil(kMinute);
  EXPECT_FALSE(gotResponse);
  // The caller waits out the timeout (measured from when the request
  // left, not from when its loss was discovered); only the request leg
  // is charged.
  EXPECT_EQ(completedAt, cfg.rpcTimeout);
  EXPECT_EQ(net.traffic(idA_).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB_).bytesSent, 0u);
}

TEST_F(NetworkTest, DetachDropsFutureDelivery) {
  net_.attach(idA_, a_);
  net_.attach(idB_, b_);
  net_.setUp(idA_, true);
  net_.setUp(idB_, true);
  net_.send(idA_, idB_, TextMessage{"bye", 4});
  net_.detach(idB_);
  sim_.runUntil(kSecond);
  EXPECT_TRUE(b_.messages.empty());
}

TEST_F(NetworkTest, ResetTrafficZeroesCounters) {
  net_.attach(idA_, a_);
  net_.setUp(idA_, true);
  net_.send(idA_, idB_, TextMessage{"x", 42});
  net_.resetTraffic();
  EXPECT_EQ(net_.traffic(idA_).bytesSent, 0u);
  EXPECT_EQ(net_.traffic(idA_).messagesSent, 0u);
}

TEST_F(NetworkTest, LatencyWithinConfiguredBounds) {
  NetworkConfig cfg;
  cfg.minLatency = 10;
  cfg.maxLatency = 20;
  Network net(sim_, cfg, Rng(6));
  net.attach(idA_, a_);
  net.attach(idB_, b_);
  net.setUp(idA_, true);
  net.setUp(idB_, true);

  std::vector<SimTime> deliveries;
  for (int i = 0; i < 50; ++i) {
    sim_.at(i * 100, [&, i] {
      net.send(idA_, idB_, TextMessage{"m", 1});
    });
  }
  // Record delivery times via a probe endpoint.
  class Probe final : public Endpoint {
   public:
    explicit Probe(Simulator& s, std::vector<SimTime>& v) : sim(s), out(v) {}
    void onMessage(const NodeId&, const Message&) override {
      out.push_back(sim.now());
    }
    Simulator& sim;
    std::vector<SimTime>& out;
  } probe(sim_, deliveries);
  net.attach(idB_, probe);
  net.setUp(idB_, true);

  sim_.runUntil(100 * 100);
  ASSERT_EQ(deliveries.size(), 50u);
  for (std::size_t i = 0; i < deliveries.size(); ++i) {
    const SimTime latency = deliveries[i] - static_cast<SimTime>(i) * 100;
    EXPECT_GE(latency, 10);
    EXPECT_LE(latency, 20);
  }
}

TEST_F(NetworkTest, IsUpReflectsAttachAndState) {
  EXPECT_FALSE(net_.isUp(idA_));
  net_.attach(idA_, a_);
  EXPECT_FALSE(net_.isUp(idA_));  // attached but down
  net_.setUp(idA_, true);
  EXPECT_TRUE(net_.isUp(idA_));
  net_.setUp(idA_, false);
  EXPECT_FALSE(net_.isUp(idA_));
}

}  // namespace
}  // namespace avmon::sim
