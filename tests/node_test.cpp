// AvmonNode protocol tests: join spreading, coarse-view maintenance,
// monitor discovery, NOTIFY verification, monitoring pings, forgetful
// pinging, PR2, and reporting.
#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <vector>

#include "avmon/node.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon {
namespace {

/// A tiny in-memory cluster of AvmonNodes with a shared bootstrap oracle.
class Cluster {
 public:
  Cluster(std::size_t count, AvmonConfig config,
          const std::string& hashName = "md5", std::uint64_t seed = 1)
      : hash_(hash::makeHashFunction(hashName)),
        selector_(*hash_, config.k, config.systemSize),
        net_(sim_, sim::NetworkConfig{}, Rng(seed)),
        rootRng_(seed) {
    const auto bootstrap = [this](const NodeId& self) {
      for (int i = 0; i < 4; ++i) {
        if (alive_.empty()) return NodeId{};
        const NodeId pick = alive_[rootRng_.index(alive_.size())];
        if (pick != self) return pick;
      }
      return NodeId{};
    };
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId id = NodeId::fromIndex(static_cast<std::uint32_t>(i));
      nodes_.push_back(std::make_unique<AvmonNode>(
          id, config, selector_, sim_, net_, bootstrap, rootRng_.fork()));
    }
  }

  void joinAll() {
    for (auto& n : nodes_) join(*n, true);
  }

  void join(AvmonNode& n, bool first) {
    n.join(first);
    alive_.push_back(n.id());
  }

  void leave(AvmonNode& n) {
    n.leave();
    alive_.erase(std::remove(alive_.begin(), alive_.end(), n.id()), alive_.end());
  }

  AvmonNode& node(std::size_t i) { return *nodes_[i]; }
  std::size_t size() const { return nodes_.size(); }
  sim::Simulator& sim() { return sim_; }
  sim::Network& net() { return net_; }
  const MonitorSelector& selector() const { return selector_; }

 private:
  sim::Simulator sim_;
  std::unique_ptr<hash::HashFunction> hash_;
  HashMonitorSelector selector_;
  sim::Network net_;
  Rng rootRng_;
  std::vector<NodeId> alive_;
  std::vector<std::unique_ptr<AvmonNode>> nodes_;
};

AvmonConfig smallConfig(std::size_t n) {
  AvmonConfig cfg = AvmonConfig::paperDefaults(n);
  cfg.protocolPeriod = 10 * kSecond;   // faster rounds keep tests quick
  cfg.monitoringPeriod = 10 * kSecond;
  cfg.forgetful.tau = 30 * kSecond;
  return cfg;
}

TEST(NodeTest, JoinPopulatesCoarseViews) {
  const AvmonConfig cfg = smallConfig(60);
  Cluster c(60, cfg);
  c.joinAll();
  c.sim().runUntil(5 * kMinute);

  // An expected cvs other nodes should know each node; check that coarse
  // views are non-trivially populated and within the size bound.
  std::size_t total = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& cv = c.node(i).coarseView();
    EXPECT_LE(cv.size(), cfg.cvs);
    total += cv.size();
  }
  EXPECT_GT(total, c.size());  // well more than one entry each on average
}

TEST(NodeTest, CoarseViewNeverContainsSelf) {
  Cluster c(40, smallConfig(40));
  c.joinAll();
  c.sim().runUntil(10 * kMinute);
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (const NodeId& n : c.node(i).coarseView()) {
      EXPECT_NE(n, c.node(i).id());
    }
  }
}

TEST(NodeTest, CoarseViewHasNoDuplicates) {
  Cluster c(40, smallConfig(40));
  c.joinAll();
  c.sim().runUntil(10 * kMinute);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& cv = c.node(i).coarseView();
    std::unordered_set<NodeId> unique(cv.begin(), cv.end());
    EXPECT_EQ(unique.size(), cv.size());
  }
}

TEST(NodeTest, DiscoversMonitorsMatchingSelector) {
  const AvmonConfig cfg = smallConfig(50);
  Cluster c(50, cfg);
  c.joinAll();
  c.sim().runUntil(30 * kMinute);

  // Every PS/TS entry must satisfy the consistency condition — NOTIFYs are
  // re-verified, so no non-monitor can ever be installed.
  std::size_t psTotal = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const AvmonNode& node = c.node(i);
    for (const NodeId& m : node.pingingSet()) {
      EXPECT_TRUE(c.selector().isMonitor(m, node.id()));
      ++psTotal;
    }
    for (const auto& [t, rec] : node.targetSet()) {
      EXPECT_TRUE(c.selector().isMonitor(node.id(), t));
    }
  }
  EXPECT_GT(psTotal, 0u);  // discovery actually happened
}

TEST(NodeTest, PsAndTsAreInverseRelations) {
  Cluster c(50, smallConfig(50));
  c.joinAll();
  c.sim().runUntil(30 * kMinute);

  // If u ∈ PS(v) was installed at v, then v ∈ TS(u) should (eventually)
  // be installed at u, since NOTIFY goes to both ends. Allow slack for
  // messages in flight at the horizon.
  std::size_t matched = 0, checked = 0;
  for (std::size_t vi = 0; vi < c.size(); ++vi) {
    const AvmonNode& v = c.node(vi);
    for (const NodeId& u : v.pingingSet()) {
      ++checked;
      for (std::size_t ui = 0; ui < c.size(); ++ui) {
        if (c.node(ui).id() == u &&
            c.node(ui).targetSet().count(v.id())) {
          ++matched;
          break;
        }
      }
    }
  }
  ASSERT_GT(checked, 0u);
  EXPECT_GE(static_cast<double>(matched) / static_cast<double>(checked), 0.9);
}

TEST(NodeTest, DiscoveryDelayIsRecordedInOrder) {
  Cluster c(60, smallConfig(60));
  c.joinAll();
  c.sim().runUntil(30 * kMinute);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const AvmonNode& node = c.node(i);
    const auto d1 = node.discoveryDelay(1);
    const auto d2 = node.discoveryDelay(2);
    if (d1 && d2) {
      EXPECT_LE(*d1, *d2);
    }
    if (!d1) {
      EXPECT_FALSE(d2.has_value());
    }
    EXPECT_FALSE(node.discoveryDelay(0).has_value());
    EXPECT_FALSE(node.discoveryDelay(1000).has_value());
  }
}

TEST(NodeTest, DeadNodeEventuallyLeavesCoarseViews) {
  const AvmonConfig cfg = smallConfig(40);
  Cluster c(40, cfg);
  c.joinAll();
  c.sim().runUntil(10 * kMinute);

  const NodeId victim = c.node(0).id();
  c.leave(c.node(0));
  // Theorem 2: after O(cvs·log N) periods the dead entry is gone w.h.p.
  c.sim().runUntil(10 * kMinute + 60 * cfg.protocolPeriod);

  std::size_t holders = 0;
  for (std::size_t i = 1; i < c.size(); ++i) {
    for (const NodeId& n : c.node(i).coarseView()) {
      if (n == victim) ++holders;
    }
  }
  EXPECT_LE(holders, 2u);  // essentially purged
}

TEST(NodeTest, LeaveStopsActivity) {
  Cluster c(30, smallConfig(30));
  c.joinAll();
  c.sim().runUntil(5 * kMinute);
  AvmonNode& n = c.node(0);
  c.leave(n);
  const auto checksAtLeave = n.metrics().hashChecks;
  c.sim().runUntil(15 * kMinute);
  EXPECT_EQ(n.metrics().hashChecks, checksAtLeave);
  EXPECT_FALSE(n.isAlive());
}

TEST(NodeTest, RejoinResumesActivityWithoutDuplicateTimers) {
  const AvmonConfig cfg = smallConfig(30);
  Cluster c(30, cfg);
  c.joinAll();
  c.sim().runUntil(5 * kMinute);

  AvmonNode& n = c.node(0);
  c.leave(n);
  c.sim().runUntil(6 * kMinute);
  c.join(n, false);
  c.sim().runUntil(20 * kMinute);
  EXPECT_TRUE(n.isAlive());

  // With a 10 s protocol period over 14 minutes alive, the node performs
  // ~84 protocol ticks. Duplicate timers would double the CV fetch count.
  EXPECT_LE(n.metrics().cvFetches, 5 * kMinute / cfg.protocolPeriod +
                                       14 * kMinute / cfg.protocolPeriod + 5);
}

TEST(NodeTest, PersistentStateSurvivesLeave) {
  Cluster c(50, smallConfig(50));
  c.joinAll();
  c.sim().runUntil(20 * kMinute);
  AvmonNode& n = c.node(0);
  const auto psBefore = n.pingingSet().size();
  const auto tsBefore = n.targetSet().size();
  c.leave(n);
  c.sim().runUntil(25 * kMinute);
  EXPECT_EQ(n.pingingSet().size(), psBefore);
  EXPECT_EQ(n.targetSet().size(), tsBefore);
}

TEST(NodeTest, MonitoringPingsRecordAvailability) {
  Cluster c(50, smallConfig(50));
  c.joinAll();
  c.sim().runUntil(30 * kMinute);

  // Someone must have monitored someone by now; all targets stayed up, so
  // estimates must be 1.0.
  std::size_t estimates = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (const auto& [target, rec] : c.node(i).targetSet()) {
      if (rec.history->sampleCount() == 0) continue;
      EXPECT_DOUBLE_EQ(rec.history->estimate(), 1.0);
      ++estimates;
    }
  }
  EXPECT_GT(estimates, 0u);
}

TEST(NodeTest, AvailabilityEstimateReflectsDowntime) {
  const AvmonConfig cfg = smallConfig(50);
  Cluster c(50, cfg);
  c.joinAll();
  c.sim().runUntil(20 * kMinute);

  // Find a monitored node, take it down for a stretch, and confirm its
  // monitors' estimates drop below 1.
  AvmonNode* target = nullptr;
  AvmonNode* monitor = nullptr;
  for (std::size_t i = 0; i < c.size() && monitor == nullptr; ++i) {
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (c.node(j).targetSet().count(c.node(i).id())) {
        target = &c.node(i);
        monitor = &c.node(j);
        break;
      }
    }
  }
  ASSERT_NE(monitor, nullptr);

  c.leave(*target);
  c.sim().runUntil(25 * kMinute);
  c.join(*target, false);
  c.sim().runUntil(30 * kMinute);

  const auto est = monitor->availabilityEstimateOf(target->id());
  ASSERT_TRUE(est.has_value());
  EXPECT_LT(*est, 1.0);
  EXPECT_GT(*est, 0.3);
}

TEST(NodeTest, OverreporterClaimsFullAvailability) {
  Cluster c(50, smallConfig(50));
  c.joinAll();
  c.sim().runUntil(20 * kMinute);

  for (std::size_t j = 0; j < c.size(); ++j) {
    AvmonNode& monitor = c.node(j);
    if (monitor.targetSet().empty()) continue;
    const NodeId target = monitor.targetSet().begin()->first;
    monitor.setOverreporting(true);
    EXPECT_DOUBLE_EQ(*monitor.availabilityEstimateOf(target), 1.0);
    monitor.setOverreporting(false);
    return;
  }
  FAIL() << "no monitoring relation formed";
}

TEST(NodeTest, ReportMonitorsHonorsPolicyBound) {
  Cluster c(60, smallConfig(60));
  c.joinAll();
  c.sim().runUntil(30 * kMinute);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const AvmonNode& n = c.node(i);
    const auto reported = n.reportMonitors(2);
    EXPECT_LE(reported.size(), 2u);
    // Verifiability: every reported monitor must check out.
    for (const NodeId& m : reported) {
      EXPECT_TRUE(c.selector().isMonitor(m, n.id()));
    }
  }
}

TEST(NodeTest, ForgetfulPingingSuppressesPingsToDeadTargets) {
  AvmonConfig cfg = smallConfig(40);
  cfg.forgetful.enabled = true;
  Cluster c(40, cfg);
  c.joinAll();
  c.sim().runUntil(20 * kMinute);

  // Kill a monitored node for good; monitors should start suppressing.
  AvmonNode* target = nullptr;
  for (std::size_t i = 0; i < c.size() && target == nullptr; ++i) {
    for (std::size_t j = 0; j < c.size(); ++j) {
      if (c.node(j).targetSet().count(c.node(i).id())) {
        target = &c.node(i);
        break;
      }
    }
  }
  ASSERT_NE(target, nullptr);
  c.leave(*target);
  c.sim().runUntil(90 * kMinute);

  std::uint64_t suppressed = 0;
  for (std::size_t j = 0; j < c.size(); ++j) {
    suppressed += c.node(j).metrics().forgetfulSuppressed;
  }
  EXPECT_GT(suppressed, 0u);
}

TEST(NodeTest, NonForgetfulKeepsPinging) {
  AvmonConfig cfg = smallConfig(40);
  cfg.forgetful.enabled = false;
  Cluster c(40, cfg);
  c.joinAll();
  c.sim().runUntil(20 * kMinute);
  for (std::size_t j = 0; j < c.size(); ++j) {
    EXPECT_EQ(c.node(j).metrics().forgetfulSuppressed, 0u);
  }
}

TEST(NodeTest, MemoryEntriesIsSumOfSets) {
  Cluster c(40, smallConfig(40));
  c.joinAll();
  c.sim().runUntil(20 * kMinute);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const AvmonNode& n = c.node(i);
    EXPECT_EQ(n.memoryEntries(),
              n.coarseView().size() + n.pingingSet().size() +
                  n.targetSet().size());
  }
}

TEST(NodeTest, HashCheckRateMatchesAnalyticalOrder) {
  // Computation C = O(cvs²) per protocol period: the per-tick check count
  // should be within a small constant of 2·(cvs+2)².
  const AvmonConfig cfg = smallConfig(80);
  Cluster c(80, cfg);
  c.joinAll();
  c.sim().runUntil(30 * kMinute);

  const double ticks = toSeconds(25 * kMinute) /
                       toSeconds(cfg.protocolPeriod);  // conservative floor
  const double bound = 2.0 * static_cast<double>((cfg.cvs + 2) * (cfg.cvs + 2));
  for (std::size_t i = 0; i < c.size(); ++i) {
    const double perTick =
        static_cast<double>(c.node(i).metrics().hashChecks) / ticks;
    EXPECT_LT(perTick, bound * 1.6) << "node " << i;
  }
}

TEST(NodeTest, Pr2ReadvertisesUnpingedNodes) {
  AvmonConfig cfg = smallConfig(30);
  cfg.pr2 = true;
  Cluster c(30, cfg);
  c.joinAll();
  c.sim().runUntil(40 * kMinute);
  // PR2 is a liveness optimization: the run must simply work, and nodes
  // with monitors must have received pings (so PR2 force-adds fired or
  // weren't needed). Sanity: system made discoveries.
  std::size_t ps = 0;
  for (std::size_t i = 0; i < c.size(); ++i) ps += c.node(i).pingingSet().size();
  EXPECT_GT(ps, 0u);
}

TEST(NodeTest, IsolatedNodeSurvivesEmptyWorld) {
  // A single node with nobody to bootstrap from must not crash or loop.
  const AvmonConfig cfg = smallConfig(10);
  Cluster c(1, cfg);
  c.join(c.node(0), true);
  c.sim().runUntil(10 * kMinute);
  EXPECT_TRUE(c.node(0).isAlive());
  EXPECT_TRUE(c.node(0).coarseView().empty());
  EXPECT_TRUE(c.node(0).pingingSet().empty());
}

}  // namespace
}  // namespace avmon
