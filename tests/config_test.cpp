// AvmonConfig and cvs-variant tests.
#include <gtest/gtest.h>

#include "avmon/config.hpp"

namespace avmon {
namespace {

TEST(VariantTest, NamesAreStable) {
  EXPECT_EQ(variantName(CvsVariant::kLogN), "logN");
  EXPECT_EQ(variantName(CvsVariant::kOptimalMD), "MD");
  EXPECT_EQ(variantName(CvsVariant::kOptimalMDC), "MDC");
  EXPECT_EQ(variantName(CvsVariant::kOptimalDC), "DC");
  EXPECT_EQ(variantName(CvsVariant::kPaperEval), "4*MDC");
}

TEST(VariantTest, PaperNumbersAtOneMillion) {
  // Section 4.2 "In practice": N = 1M gives cvs = ⁴√N ≈ 32, K = log2 N = 20.
  EXPECT_EQ(cvsForVariant(CvsVariant::kOptimalMDC, 1000000), 32u);
  EXPECT_EQ(defaultK(1000000), 20u);
}

TEST(VariantTest, PaperNumbersAtTwoThousand) {
  // Section 5.1: N = 2000 gives K = 11, cvs = 4·⁴√N ≈ 27.
  EXPECT_EQ(defaultK(2000), 11u);
  EXPECT_EQ(cvsForVariant(CvsVariant::kPaperEval, 2000), 27u);
}

TEST(VariantTest, MdGrowsFasterThanMdc) {
  for (std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    EXPECT_GE(cvsForVariant(CvsVariant::kOptimalMD, n),
              cvsForVariant(CvsVariant::kOptimalMDC, n))
        << "N=" << n;
  }
}

TEST(VariantTest, DcEqualsMdc) {
  for (std::size_t n : {64u, 500u, 2000u, 50000u}) {
    EXPECT_EQ(cvsForVariant(CvsVariant::kOptimalDC, n),
              cvsForVariant(CvsVariant::kOptimalMDC, n));
  }
}

TEST(VariantTest, MinimumCvsIsTwo) {
  EXPECT_GE(cvsForVariant(CvsVariant::kOptimalMDC, 2), 2u);
  EXPECT_GE(cvsForVariant(CvsVariant::kLogN, 2), 2u);
}

TEST(ConfigTest, PaperDefaultsValidate) {
  for (std::size_t n : {100u, 239u, 550u, 2000u}) {
    const AvmonConfig cfg = AvmonConfig::paperDefaults(n);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.systemSize, n);
    EXPECT_EQ(cfg.k, defaultK(n));
    EXPECT_EQ(cfg.cvs, cvsForVariant(CvsVariant::kPaperEval, n));
    EXPECT_EQ(cfg.protocolPeriod, kMinute);
    EXPECT_EQ(cfg.monitoringPeriod, kMinute);
    EXPECT_TRUE(cfg.forgetful.enabled);
    EXPECT_EQ(cfg.forgetful.tau, 2 * kMinute);
    EXPECT_DOUBLE_EQ(cfg.forgetful.c, 1.0);
  }
}

TEST(ConfigTest, ValidateRejectsBadFields) {
  AvmonConfig cfg = AvmonConfig::paperDefaults(1000);
  cfg.systemSize = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AvmonConfig::paperDefaults(1000);
  cfg.k = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AvmonConfig::paperDefaults(1000);
  cfg.protocolPeriod = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AvmonConfig::paperDefaults(1000);
  cfg.forgetful.c = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  cfg = AvmonConfig::paperDefaults(1000);
  cfg.bytesPerEntry = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// Parameterized sweep: forVariant must produce a valid config across sizes.
class VariantSweepTest
    : public ::testing::TestWithParam<std::tuple<CvsVariant, std::size_t>> {};

TEST_P(VariantSweepTest, ProducesValidConfig) {
  const auto [variant, n] = GetParam();
  const AvmonConfig cfg = AvmonConfig::forVariant(variant, n);
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_GE(cfg.cvs, 2u);
  EXPECT_GE(cfg.k, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAndSizes, VariantSweepTest,
    ::testing::Combine(
        ::testing::Values(CvsVariant::kLogN, CvsVariant::kOptimalMD,
                          CvsVariant::kOptimalMDC, CvsVariant::kOptimalDC,
                          CvsVariant::kPaperEval),
        ::testing::Values<std::size_t>(10, 100, 1000, 100000, 1000000)));

}  // namespace
}  // namespace avmon
