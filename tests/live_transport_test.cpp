// In-process loopback suite for the live-wire lane: two LiveTransports on
// ephemeral UDP ports exercising the full Transport surface — one-way
// delivery, typed exchanges, the retry/timeout ladder mapping failures to
// the same empty-optional the simulated lane produces, and the responder's
// duplicate-suppressing reply cache.
#include <cstdint>
#include <optional>
#include <vector>

#include "gtest/gtest.h"
#include "common/node_id.hpp"
#include "net/live_transport.hpp"
#include "net/udp_socket.hpp"
#include "net/wall_clock.hpp"
#include "net/wire_codec.hpp"
#include "sim/message.hpp"
#include "sim/rpc.hpp"
#include "sim/transport.hpp"

namespace {

using avmon::NodeId;
using namespace avmon::net;
namespace sim = avmon::sim;

constexpr std::uint32_t kLoopback = 0x7F000001;

/// Records everything it sees; answers CvFetch with a fixed view.
class RecordingEndpoint : public sim::Endpoint {
 public:
  void onMessage(const NodeId& from, const sim::Message& message) override {
    (void)from;
    messages.push_back(message);
  }

  sim::RpcResponse onRpc(const NodeId& from,
                         const sim::RpcRequest& request) override {
    (void)from;
    rpcCount += 1;
    if (std::holds_alternative<sim::CvFetchRequest>(request)) {
      sim::CvFetchResponse response;
      response.view = view;
      return sim::RpcResponse(response);
    }
    return sim::RpcResponse(sim::PingResponse{});
  }

  std::vector<sim::Message> messages;
  std::vector<NodeId> view;
  int rpcCount = 0;
};

/// Fast-failing retry ladder so timeout tests stay quick.
LiveConfig quickConfig() {
  LiveConfig config;
  config.retryMax = 2;
  config.retryBaseMs = 5;
  config.retryCapMs = 20;
  return config;
}

/// Pumps both transports until `done` or the wall deadline.
template <class Pred>
bool pumpUntil(LiveTransport& a, LiveTransport& b, Pred done,
               std::int64_t deadlineMs = 5000) {
  const std::int64_t start = wallNowMs();
  while (!done()) {
    if (wallNowMs() - start > deadlineMs) return false;
    a.poll(1);
    b.poll(1);
  }
  return true;
}

struct Pair {
  Pair() : a(quickConfig()), b(quickConfig()) {
    EXPECT_TRUE(a.open(NodeId(kLoopback, 0)));
    EXPECT_TRUE(b.open(NodeId(kLoopback, 0)));
    a.attach(a.local(), endpointA);
    b.attach(b.local(), endpointB);
    a.setUp(a.local(), true);
    b.setUp(b.local(), true);
  }

  LiveTransport a;
  LiveTransport b;
  RecordingEndpoint endpointA;
  RecordingEndpoint endpointB;
};

TEST(LiveTransportTest, OneWayMessageIsDeliveredWithFieldsIntact) {
  Pair p;
  const sim::NotifyMessage notify{NodeId(1, 2), NodeId(3, 4)};
  p.a.send(p.a.local(), p.b.local(), sim::Message(notify));
  ASSERT_TRUE(pumpUntil(p.a, p.b,
                        [&] { return !p.endpointB.messages.empty(); }));
  const auto& got = std::get<sim::NotifyMessage>(p.endpointB.messages.front());
  EXPECT_EQ(got.monitor, notify.monitor);
  EXPECT_EQ(got.target, notify.target);
  EXPECT_EQ(p.a.traffic().bytesSent, notify.wireBytes());
}

TEST(LiveTransportTest, TypedExchangeCompletesWithResponse) {
  Pair p;
  p.endpointB.view = {NodeId(9, 9), NodeId(8, 8)};
  std::optional<sim::CvFetchResponse> result;
  bool fired = false;
  p.a.exchangeAsync(p.a.local(), p.b.local(), sim::CvFetchRequest{8, 16},
                    [&](std::optional<sim::CvFetchResponse> response) {
                      result = std::move(response);
                      fired = true;
                    });
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] { return fired; }));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->view, p.endpointB.view);
  // Declared-byte accounting mirrors the simulated lane: request leg on
  // the caller, response leg on the responder.
  EXPECT_EQ(p.a.traffic().bytesSent, 8u);
  EXPECT_EQ(p.b.traffic().bytesSent, 16u);
  EXPECT_EQ(p.a.counters().rpcCalls, 1u);
  EXPECT_EQ(p.b.counters().rpcServed, 1u);
}

TEST(LiveTransportTest, DownTargetTimesOutWithEmptyOptional) {
  Pair p;
  p.b.setUp(p.b.local(), false);
  bool fired = false;
  std::optional<sim::PingResponse> result;
  p.a.exchangeAsync(p.a.local(), p.b.local(), sim::PingRequest{8},
                    [&](std::optional<sim::PingResponse> response) {
                      result = response;
                      fired = true;
                    });
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] { return fired; }));
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(p.a.counters().rpcTimeouts, 1u);
  // The ladder retransmitted before giving up (retryMax = 2 attempts).
  EXPECT_EQ(p.a.counters().rpcRetries, 1u);
  // Request leg still charged — timeouts cost the caller, as in the sim.
  EXPECT_EQ(p.a.traffic().bytesSent, 8u);
}

TEST(LiveTransportTest, UnreachablePortTimesOutWithoutCrashing) {
  LiveTransport a(quickConfig());
  RecordingEndpoint endpoint;
  ASSERT_TRUE(a.open(NodeId(kLoopback, 0)));
  a.attach(a.local(), endpoint);
  a.setUp(a.local(), true);
  bool fired = false;
  // Nobody is bound on the target port; loopback may answer with ICMP
  // refusals, which UDP sendto/recv surface as errors we must absorb.
  const NodeId nowhere(kLoopback, 1);
  a.exchangeAsync(a.local(), nowhere, sim::PingRequest{8},
                  [&](std::optional<sim::PingResponse> response) {
                    EXPECT_FALSE(response.has_value());
                    fired = true;
                  });
  const std::int64_t start = wallNowMs();
  while (!fired && wallNowMs() - start < 5000) a.poll(1);
  EXPECT_TRUE(fired);
}

TEST(LiveTransportTest, MessagesToADownNodeAreDroppedSilently) {
  Pair p;
  p.b.setUp(p.b.local(), false);
  p.a.send(p.a.local(), p.b.local(), sim::Message(sim::PresenceMessage{
                                         p.a.local()}));
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] {
    return p.b.counters().messagesDropped > 0;
  }));
  EXPECT_TRUE(p.endpointB.messages.empty());
}

TEST(LiveTransportTest, ReplyCacheAnswersRetransmissionsWithoutReserving) {
  Pair p;
  // Impersonate a caller whose first response "was lost": send the same
  // encoded request twice through a raw socket. The endpoint must serve
  // once; the second answer must come from the reply cache.
  UdpSocket raw;
  ASSERT_TRUE(raw.open(NodeId(kLoopback, 0)));
  const auto frame =
      encodeRequest(raw.local(), 77, sim::RpcRequest(sim::PingRequest{8}));
  ASSERT_TRUE(raw.sendTo(p.b.local(), frame.data(), frame.size()));
  ASSERT_TRUE(raw.sendTo(p.b.local(), frame.data(), frame.size()));
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] {
    return p.b.counters().duplicateRequests >= 1;
  }));
  EXPECT_EQ(p.endpointB.rpcCount, 1);
  EXPECT_EQ(p.b.counters().rpcServed, 1u);

  // Both answers (original + cached) arrive back, byte-identical.
  std::uint8_t buf[kMaxFrameBytes];
  int responses = 0;
  const std::int64_t start = wallNowMs();
  while (responses < 2 && wallNowMs() - start < 5000) {
    if (!raw.waitReadable(1)) continue;
    while (auto datagram = raw.recvFrom(buf, sizeof(buf))) {
      const auto decoded = decodeFrame(buf, datagram->size);
      ASSERT_TRUE(decoded);
      EXPECT_EQ(decoded->kind, FrameKind::kRpcResponse);
      EXPECT_EQ(decoded->callId, 77u);
      responses += 1;
    }
  }
  EXPECT_EQ(responses, 2);
}

TEST(LiveTransportTest, GarbageDatagramsAreCountedAndDropped) {
  Pair p;
  UdpSocket raw;
  ASSERT_TRUE(raw.open(NodeId(kLoopback, 0)));
  const std::uint8_t junk[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  ASSERT_TRUE(raw.sendTo(p.b.local(), junk, sizeof(junk)));
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] {
    return p.b.counters().decodeFailures >= 1;
  }));
  EXPECT_TRUE(p.endpointB.messages.empty());
  EXPECT_EQ(p.endpointB.rpcCount, 0);
}

TEST(LiveTransportTest, LateResponseAfterTimeoutIsIgnored) {
  // Settle a call by timeout, then hand-deliver the "late" response frame;
  // the handler must not fire twice and nothing may crash.
  Pair p;
  p.b.setUp(p.b.local(), false);
  int fires = 0;
  p.a.exchangeAsync(p.a.local(), p.b.local(), sim::PingRequest{8},
                    [&](std::optional<sim::PingResponse>) { fires += 1; });
  ASSERT_TRUE(pumpUntil(p.a, p.b, [&] { return fires == 1; }));

  UdpSocket raw;
  ASSERT_TRUE(raw.open(NodeId(kLoopback, 0)));
  const auto late = encodeResponse(p.b.local(), 1,
                                   sim::RpcResponse(sim::PingResponse{}));
  ASSERT_TRUE(raw.sendTo(p.a.local(), late.data(), late.size()));
  const std::int64_t start = wallNowMs();
  while (wallNowMs() - start < 50) p.a.poll(1);
  EXPECT_EQ(fires, 1);
}

}  // namespace
