// Trace player and churn-model registry tests.
#include <gtest/gtest.h>

#include <vector>

#include "churn/churn_model.hpp"
#include "churn/trace_player.hpp"
#include "sim/simulator.hpp"

namespace avmon::churn {
namespace {

struct Event {
  enum Kind { kJoin, kRejoin, kLeave, kDeath } kind;
  NodeId id;
  SimTime when;
};

class RecordingListener final : public LifecycleListener {
 public:
  explicit RecordingListener(sim::Simulator& sim) : sim_(sim) {}

  void onJoin(const NodeId& id, bool firstJoin) override {
    events.push_back({firstJoin ? Event::kJoin : Event::kRejoin, id, sim_.now()});
  }
  void onLeave(const NodeId& id) override {
    events.push_back({Event::kLeave, id, sim_.now()});
  }
  void onDeath(const NodeId& id) override {
    events.push_back({Event::kDeath, id, sim_.now()});
  }

  std::vector<Event> events;

 private:
  sim::Simulator& sim_;
};

TEST(TracePlayerTest, EmitsJoinLeaveDeathAtScheduledTimes) {
  trace::AvailabilityTrace tr(100 * kMinute, {});
  trace::NodeTrace n;
  n.id = NodeId::fromIndex(1);
  n.birth = 0;
  n.sessions = {{5 * kMinute, 10 * kMinute}, {20 * kMinute, 30 * kMinute}};
  n.death = 30 * kMinute;
  tr.add(n);

  sim::Simulator sim;
  RecordingListener listener(sim);
  TracePlayer player(sim, tr);
  player.schedule(listener);
  sim.runUntil(tr.horizon());

  ASSERT_EQ(listener.events.size(), 5u);
  EXPECT_EQ(listener.events[0].kind, Event::kJoin);
  EXPECT_EQ(listener.events[0].when, 5 * kMinute);
  EXPECT_EQ(listener.events[1].kind, Event::kLeave);
  EXPECT_EQ(listener.events[1].when, 10 * kMinute);
  EXPECT_EQ(listener.events[2].kind, Event::kRejoin);  // not the first join
  EXPECT_EQ(listener.events[2].when, 20 * kMinute);
  EXPECT_EQ(listener.events[3].kind, Event::kLeave);
  EXPECT_EQ(listener.events[4].kind, Event::kDeath);
  EXPECT_EQ(listener.events[4].when, 30 * kMinute);
}

TEST(TracePlayerTest, FirstJoinFlagOnlyOnFirstSession) {
  trace::AvailabilityTrace tr(kHour, {});
  trace::NodeTrace n;
  n.id = NodeId::fromIndex(2);
  n.sessions = {{0, kMinute}, {2 * kMinute, 3 * kMinute}, {4 * kMinute, 5 * kMinute}};
  tr.add(n);

  sim::Simulator sim;
  RecordingListener listener(sim);
  TracePlayer player(sim, tr);
  player.schedule(listener);
  sim.runUntil(tr.horizon());

  int firstJoins = 0, rejoins = 0;
  for (const Event& e : listener.events) {
    firstJoins += e.kind == Event::kJoin ? 1 : 0;
    rejoins += e.kind == Event::kRejoin ? 1 : 0;
  }
  EXPECT_EQ(firstJoins, 1);
  EXPECT_EQ(rejoins, 2);
}

TEST(ChurnModelTest, NamesAreThePaperLabels) {
  EXPECT_EQ(modelName(Model::kStat), "STAT");
  EXPECT_EQ(modelName(Model::kSynth), "SYNTH");
  EXPECT_EQ(modelName(Model::kSynthBD), "SYNTH-BD");
  EXPECT_EQ(modelName(Model::kSynthBD2), "SYNTH-BD2");
  EXPECT_EQ(modelName(Model::kPlanetLab), "PL");
  EXPECT_EQ(modelName(Model::kOvernet), "OV");
}

TEST(ChurnModelTest, EffectiveStableSizeMatchesPaper) {
  WorkloadParams p;
  p.stableSize = 2000;
  EXPECT_EQ(effectiveStableSize(Model::kStat, p), 2000u);
  EXPECT_EQ(effectiveStableSize(Model::kSynthBD, p), 2000u);
  EXPECT_EQ(effectiveStableSize(Model::kPlanetLab, p), 239u);
  EXPECT_EQ(effectiveStableSize(Model::kOvernet, p), 550u);
}

TEST(ChurnModelTest, Bd2DoublesBirthRate) {
  WorkloadParams p;
  p.stableSize = 500;
  p.horizon = 48 * kHour;
  p.seed = 11;
  const auto bd = generate(Model::kSynthBD, p);
  const auto bd2 = generate(Model::kSynthBD2, p);
  const auto bornBd = bd.bornBy(p.horizon) - 2 * p.stableSize;
  const auto bornBd2 = bd2.bornBy(p.horizon) - 2 * p.stableSize;
  EXPECT_NEAR(static_cast<double>(bornBd2),
              2.0 * static_cast<double>(bornBd),
              0.5 * static_cast<double>(bornBd));
}

TEST(ChurnModelTest, StatHasControlGroupSynthBDDoesNot) {
  WorkloadParams p;
  p.stableSize = 100;
  p.horizon = 2 * kHour;
  p.controlFraction = 0.1;

  // Bind the traces to locals: nodes() returns a reference into the trace,
  // so iterating a temporary's nodes() would read freed memory.
  std::size_t statControls = 0;
  const auto statTrace = generate(Model::kStat, p);
  for (const auto& n : statTrace.nodes()) statControls += n.isControl ? 1 : 0;
  EXPECT_EQ(statControls, 10u);

  std::size_t bdControls = 0;
  const auto bdTrace = generate(Model::kSynthBD, p);
  for (const auto& n : bdTrace.nodes()) bdControls += n.isControl ? 1 : 0;
  EXPECT_EQ(bdControls, 0u);  // implicit control group (born after warm-up)
}

TEST(ChurnModelTest, AllModelsProduceValidTraces) {
  WorkloadParams p;
  p.stableSize = 80;
  p.horizon = 3 * kHour;
  p.seed = 21;
  for (Model m : {Model::kStat, Model::kSynth, Model::kSynthBD,
                  Model::kSynthBD2, Model::kPlanetLab, Model::kOvernet}) {
    const auto tr = generate(m, p);
    std::string why;
    EXPECT_TRUE(tr.validate(&why)) << modelName(m) << ": " << why;
    EXPECT_GT(tr.nodes().size(), 0u) << modelName(m);
  }
}

}  // namespace
}  // namespace avmon::churn
