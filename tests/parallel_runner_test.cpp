// ParallelScenarioRunner: deterministic fan-out of scenario runs across a
// worker pool — results must merge in input order and be bit-identical
// regardless of thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"
#include "golden_hash.hpp"

namespace avmon::experiments {
namespace {

Scenario tiny(churn::Model model, std::uint64_t seed, std::size_t n = 80) {
  Scenario s;
  s.model = model;
  s.stableSize = n;
  s.horizon = 45 * kMinute;
  s.warmup = 15 * kMinute;
  s.controlFraction = 0.1;
  s.seed = seed;
  s.hashName = "splitmix64";
  return s;
}

TEST(ParallelForIndexTest, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  for (auto& h : hits) h.store(0);
  parallelForIndex(kCount, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForIndexTest, ZeroCountIsANoop) {
  bool touched = false;
  parallelForIndex(0, 4, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelForIndexTest, PropagatesTheFirstException) {
  EXPECT_THROW(
      parallelForIndex(8, 4,
                       [](std::size_t i) {
                         if (i % 2 == 1) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ParallelForIndexTest, SerialPathPropagatesToo) {
  EXPECT_THROW(parallelForIndex(3, 1,
                                [](std::size_t i) {
                                  if (i == 2) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
}

TEST(ParallelScenarioRunnerTest, RunAllPreservesInputOrder) {
  // Three different system sizes: each completed runner must sit at the
  // index of the scenario that produced it.
  const std::vector<Scenario> scenarios = {
      tiny(churn::Model::kStat, 1, 60), tiny(churn::Model::kStat, 2, 90),
      tiny(churn::Model::kStat, 3, 120)};
  const auto runners = ParallelScenarioRunner(3).runAll(scenarios);
  ASSERT_EQ(runners.size(), 3u);
  EXPECT_EQ(runners[0]->effectiveN(), 60u);
  EXPECT_EQ(runners[1]->effectiveN(), 90u);
  EXPECT_EQ(runners[2]->effectiveN(), 120u);
  for (const auto& r : runners) {
    EXPECT_GT(r->discoveredFraction(1), 0.0);
  }
}

TEST(ParallelScenarioRunnerTest, ResultsIndependentOfThreadCount) {
  // The determinism contract of the pool: worker count and scheduling must
  // not leak into results. Fingerprints cover every metric the harness
  // reports, per node.
  const std::vector<Scenario> scenarios = {
      tiny(churn::Model::kStat, 5), tiny(churn::Model::kSynth, 6),
      tiny(churn::Model::kSynthBD, 7), tiny(churn::Model::kSynth, 8)};
  const auto fingerprint = [](ScenarioRunner& r) {
    return std::pair<std::uint64_t, std::uint64_t>(summaryHash(r),
                                                   perNodeHash(r));
  };
  using Prints = std::vector<std::pair<std::uint64_t, std::uint64_t>>;
  const Prints serial =
      ParallelScenarioRunner(1).map<std::pair<std::uint64_t, std::uint64_t>>(
          scenarios, fingerprint);
  const Prints pooled =
      ParallelScenarioRunner(4).map<std::pair<std::uint64_t, std::uint64_t>>(
          scenarios, fingerprint);
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelScenarioRunnerTest, MapCollectsInInputOrder) {
  const std::vector<Scenario> scenarios = {tiny(churn::Model::kStat, 1, 50),
                                           tiny(churn::Model::kStat, 1, 100)};
  const auto sizes = ParallelScenarioRunner().map<std::size_t>(
      scenarios,
      [](ScenarioRunner& r) { return r.schedule().nodes().size(); });
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_LT(sizes[0], sizes[1]);
}

TEST(ParallelScenarioRunnerTest, ConstructionFailurePropagates) {
  // An invalid protocol configuration throws inside the worker; the pool
  // must surface it to the caller.
  Scenario bad = tiny(churn::Model::kStat, 1);
  AvmonConfig cfg = AvmonConfig::paperDefaults(80);
  cfg.k = 0;  // invalid: K must be positive
  bad.configOverride = cfg;
  ParallelScenarioRunner pool(2);
  EXPECT_THROW(pool.runAll({tiny(churn::Model::kStat, 2), bad}),
               std::invalid_argument);
}

}  // namespace
}  // namespace avmon::experiments
