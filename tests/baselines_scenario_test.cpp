// The four baseline schemes driven through the shared ScenarioRunner via
// the protocol registry — the paper's head-to-head comparisons (Table 1,
// Sections 5-6) measured by the same harness and MetricSet as AVMON.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "experiments/metrics.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/protocols/central_protocol.hpp"
#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

Scenario smallScenario(const std::string& protocol, churn::Model model) {
  Scenario s;
  s.protocol = protocol;
  s.model = model;
  s.stableSize = 100;
  s.horizon = 80 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 21;
  s.hashName = "splitmix64";
  return s;
}

// ---- broadcast through the shared runner ----

TEST(BaselinesScenarioTest, BroadcastDiscoveryIsNearInstant) {
  ScenarioRunner runner(smallScenario("broadcast", churn::Model::kStat));
  runner.run();
  const auto delays = runner.discoveryDelaysSeconds(1);
  ASSERT_FALSE(delays.empty());
  for (double d : delays) EXPECT_LT(d, 1.0);  // one broadcast latency
  EXPECT_DOUBLE_EQ(runner.discoveredFraction(1), 1.0);
}

TEST(BaselinesScenarioTest, BroadcastMemoryIsOrderN) {
  ScenarioRunner runner(smallScenario("broadcast", churn::Model::kStat));
  runner.run();
  const auto entries = runner.memoryEntries(/*measuredOnly=*/false);
  ASSERT_FALSE(entries.empty());
  double sum = 0;
  for (double e : entries) sum += e;
  // Full membership (~N) plus PS/TS.
  EXPECT_GT(sum / static_cast<double>(entries.size()), 90.0);
}

TEST(BaselinesScenarioTest, BroadcastJoinCostIsOrderNBytes) {
  // warmup = 0 keeps the t = 0 join broadcasts inside the traffic window:
  // node i's presence goes to the i-1 earlier joiners (mean ~N/2 x 10 B),
  // and the whole population joins inside one horizon.
  Scenario s = smallScenario("broadcast", churn::Model::kStat);
  s.warmup = 0;
  ScenarioRunner runner(s);
  runner.run();
  std::uint64_t total = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    total += runner.trafficOf(nt.id).bytesSent;
  }
  // >= N * (N-1)/2 * 10 B of presence traffic.
  EXPECT_GT(total, 100u * 99u / 2u * 10u);
}

TEST(BaselinesScenarioTest, BroadcastSurvivesChurn) {
  ScenarioRunner runner(smallScenario("broadcast", churn::Model::kSynth));
  runner.run();
  EXPECT_GT(runner.world().delivered(), 0u);
  EXPECT_FALSE(runner.discoveryDelaysSeconds(1).empty());
}

TEST(BaselinesScenarioTest, BroadcastHashChecksFeedComputationMetric) {
  ScenarioRunner runner(smallScenario("broadcast", churn::Model::kStat));
  runner.run();
  const auto cps = runner.computationsPerSecond();
  ASSERT_FALSE(cps.empty());
  for (double c : cps) EXPECT_GT(c, 0.0);
}

// ---- central through the shared runner ----

TEST(BaselinesScenarioTest, CentralServerCarriesTheLoad) {
  ScenarioRunner runner(smallScenario("central", churn::Model::kStat));
  runner.run();
  // The server is the bandwidth hot spot (O(N) pings per period)...
  EXPECT_EQ(runner.maxBandwidthNode(), CentralProtocol::kServerId);
  // ...and the memory tail: everyone else holds one entry.
  const auto entries = runner.memoryEntries(/*measuredOnly=*/false);
  ASSERT_FALSE(entries.empty());
  const double maxEntries = *std::max_element(entries.begin(), entries.end());
  EXPECT_GE(maxEntries, 100.0);  // the member table
  std::size_t ones = 0;
  for (double e : entries) ones += e == 1.0;
  EXPECT_GE(ones, 99u);  // the members
}

TEST(BaselinesScenarioTest, CentralDiscoversEveryMemberQuickly) {
  ScenarioRunner runner(smallScenario("central", churn::Model::kStat));
  runner.run();
  EXPECT_DOUBLE_EQ(runner.discoveredFraction(1), 1.0);
  for (double d : runner.discoveryDelaysSeconds(1)) {
    EXPECT_LT(d, 1.0);  // one registration message latency
  }
}

TEST(BaselinesScenarioTest, CentralAccuracyIsExactOnStat) {
  ScenarioRunner runner(smallScenario("central", churn::Model::kStat));
  runner.run();
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/true);
  ASSERT_FALSE(acc.empty());
  for (const auto& a : acc) {
    EXPECT_DOUBLE_EQ(a.estimated, 1.0) << a.id.toString();
    EXPECT_DOUBLE_EQ(a.actual, 1.0) << a.id.toString();
    EXPECT_EQ(a.reporters, 1u);  // PS(x) = {server}
  }
}

TEST(BaselinesScenarioTest, CentralCountsUselessPingsUnderChurn) {
  ScenarioRunner runner(smallScenario("central", churn::Model::kSynth));
  runner.run();
  // The server keeps pinging down/departed registrants: useless pings
  // land on exactly one node (the server).
  const auto upm = runner.uselessPingsPerMinute();
  ASSERT_EQ(upm.size(), 1u);
  EXPECT_GT(upm[0], 0.0);
}

// ---- self-report through the shared runner ----

TEST(BaselinesScenarioTest, SelfReportDiscoveryIsFreeAndMemoryIsOne) {
  ScenarioRunner runner(smallScenario("self_report", churn::Model::kStat));
  runner.run();
  EXPECT_DOUBLE_EQ(runner.discoveredFraction(1), 1.0);
  for (double d : runner.discoveryDelaysSeconds(1)) EXPECT_DOUBLE_EQ(d, 0.0);
  for (double e : runner.memoryEntries(false)) EXPECT_DOUBLE_EQ(e, 1.0);
  // No protocol messages at all.
  EXPECT_EQ(runner.world().delivered(), 0u);
}

TEST(BaselinesScenarioTest, SelfReportHonestNodesAreExact) {
  ScenarioRunner runner(smallScenario("self_report", churn::Model::kSynth));
  runner.run();
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/false);
  ASSERT_FALSE(acc.empty());
  for (const auto& a : acc) {
    EXPECT_NEAR(a.estimated, a.actual, 1e-9) << a.id.toString();
  }
}

TEST(BaselinesScenarioTest, SelfReportSelfishNodesLieUndetectably) {
  // The scheme's failure mode: overreporters claim 100% and nothing in
  // the system can contradict them (contrast with AVMON's Figure 20).
  Scenario s = smallScenario("self_report", churn::Model::kSynth);
  s.overreportFraction = 0.5;
  ScenarioRunner runner(s);
  runner.run();
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/false);
  ASSERT_FALSE(acc.empty());
  std::size_t liars = 0;
  for (const auto& a : acc) {
    if (a.estimated == 1.0 && a.actual < 0.999) ++liars;
  }
  EXPECT_GT(liars, 0u);
}

// ---- DHT ring through the shared runner ----

TEST(BaselinesScenarioTest, DhtRingDiscoversReplicaSets) {
  ScenarioRunner runner(smallScenario("dht_ring", churn::Model::kStat));
  runner.run();
  EXPECT_DOUBLE_EQ(runner.discoveredFraction(1), 1.0);
  // The selection layer is omniscient: discovery is instantaneous once
  // the ring has members.
  for (double d : runner.discoveryDelaysSeconds(1)) EXPECT_DOUBLE_EQ(d, 0.0);
  // K-th monitor too (K = log2 100 = 7 successors exist at N = 100).
  EXPECT_GT(runner.discoveryDelaysSeconds(runner.config().k).size(), 0u);
}

TEST(BaselinesScenarioTest, DhtRingMemoryIsPsPlusTs) {
  ScenarioRunner runner(smallScenario("dht_ring", churn::Model::kStat));
  runner.run();
  const auto entries = runner.memoryEntries(false);
  ASSERT_FALSE(entries.empty());
  double sum = 0;
  for (double e : entries) sum += e;
  // ~K successors + ~K nodes it serves as replica for.
  const double mean = sum / static_cast<double>(entries.size());
  EXPECT_GT(mean, static_cast<double>(runner.config().k));
  EXPECT_LT(mean, 4.0 * static_cast<double>(runner.config().k));
}

// ---- the head-to-head path itself ----

TEST(BaselinesScenarioTest, AllFiveProtocolsOneComparisonTable) {
  // The acceptance shape of the redesign: every registered protocol runs
  // the same workload through the same runner, snapshots into the same
  // MetricSet, and one sink prints one comparison table.
  std::vector<Scenario> scenarios;
  for (const char* protocol :
       {"avmon", "broadcast", "central", "dht_ring", "self_report"}) {
    Scenario s = smallScenario(protocol, churn::Model::kStat);
    s.stableSize = 60;
    s.horizon = 60 * kMinute;
    s.warmup = 20 * kMinute;
    scenarios.push_back(s);
  }
  const auto metricSets =
      ParallelScenarioRunner(2).map<MetricSet>(
          scenarios,
          [](ScenarioRunner& runner) { return collectMetrics(runner); });
  ASSERT_EQ(metricSets.size(), 5u);

  std::ostringstream out;
  SummaryTableSink sink(out);
  for (const MetricSet& set : metricSets) {
    EXPECT_FALSE(set.memoryEntries.empty()) << set.protocol;
    // Same trace everywhere: 60 stable + 6 control nodes, one row each.
    EXPECT_EQ(set.perNode.size(), 66u) << set.protocol;
    sink.add(set);
  }
  sink.close();

  const std::string table = out.str();
  EXPECT_NE(table.find("protocol comparison"), std::string::npos);
  for (const char* protocol :
       {"avmon", "broadcast", "central", "dht_ring", "self_report"}) {
    EXPECT_NE(table.find(protocol), std::string::npos) << protocol;
  }
}

TEST(BaselinesScenarioTest, NodeProbeIsAvmonOnly) {
  ScenarioRunner runner(smallScenario("self_report", churn::Model::kStat));
  runner.run();
  EXPECT_THROW(runner.node(runner.measuredIds().front()), std::logic_error);
}

TEST(BaselinesScenarioTest, BaselinesRejectSharding) {
  Scenario s = smallScenario("central", churn::Model::kStat);
  s.shards = 2;
  EXPECT_THROW(ScenarioRunner{s}, std::invalid_argument);
}

TEST(BaselinesScenarioTest, PoolShardOverrideClampsToProtocolLimit) {
  // One shardsPerScenario override across a mixed sweep: AVMON worlds
  // shard, single-shard baselines are clamped instead of rejected.
  std::vector<Scenario> scenarios;
  for (const char* protocol : {"avmon", "broadcast"}) {
    Scenario s = smallScenario(protocol, churn::Model::kStat);
    s.stableSize = 40;
    s.horizon = 40 * kMinute;
    s.warmup = 15 * kMinute;
    scenarios.push_back(s);
  }
  const auto runners =
      ParallelScenarioRunner(2, /*shardsPerScenario=*/2).runAll(scenarios);
  ASSERT_EQ(runners.size(), 2u);
  EXPECT_EQ(runners[0]->world().shardCount(), 2u);  // avmon sharded
  EXPECT_EQ(runners[1]->world().shardCount(), 1u);  // broadcast clamped
}

TEST(BaselinesScenarioTest, BaselinesRunOnBothRpcLanes) {
  // deferredRpc on (harness default) and off must both work at one shard
  // for every baseline — the central scheme's synchronous exchanges and
  // the broadcast one-way traffic ride the same transport either way.
  for (const char* protocol :
       {"broadcast", "central", "dht_ring", "self_report"}) {
    for (const bool deferred : {true, false}) {
      Scenario s = smallScenario(protocol, churn::Model::kSynth);
      s.stableSize = 40;
      s.horizon = 45 * kMinute;
      s.warmup = 15 * kMinute;
      s.deferredRpc = deferred;
      ScenarioRunner runner(s);
      runner.run();
      EXPECT_GE(runner.discoveredFraction(1), 0.5)
          << protocol << " deferred=" << deferred;
    }
  }
}

}  // namespace
}  // namespace avmon::experiments
