// Availability-predictor tests: per-predictor behaviour plus offline
// evaluation against synthetic schedules with known structure.
#include <gtest/gtest.h>

#include "predict/evaluation.hpp"
#include "predict/predictors.hpp"
#include "trace/generators.hpp"

namespace avmon::predict {
namespace {

TEST(RightNowTest, TracksLastSample) {
  RightNowPredictor p;
  EXPECT_FALSE(p.predictUp(0));  // no evidence: down
  p.observe(1, true);
  EXPECT_TRUE(p.predictUp(100));
  p.observe(2, false);
  EXPECT_FALSE(p.predictUp(100));
  EXPECT_GT(p.confidence(100), 0.5);
}

TEST(SaturatingCounterTest, NeedsRepeatedEvidenceToFlip) {
  SaturatingCounterPredictor p(2);  // states 0..3, starts at 1 (down-ish)
  p.observe(0, true);
  p.observe(1, true);  // counter 3
  EXPECT_TRUE(p.predictUp(2));
  p.observe(2, false);  // counter 2: still up (hysteresis)
  EXPECT_TRUE(p.predictUp(3));
  p.observe(3, false);  // counter 1: flips down
  EXPECT_FALSE(p.predictUp(4));
}

TEST(SaturatingCounterTest, SaturatesAtBounds) {
  SaturatingCounterPredictor p(2);
  for (int i = 0; i < 100; ++i) p.observe(i, true);
  EXPECT_EQ(p.counter(), p.max());
  for (int i = 0; i < 100; ++i) p.observe(100 + i, false);
  EXPECT_EQ(p.counter(), 0u);
}

TEST(SaturatingCounterTest, RejectsBadBits) {
  EXPECT_THROW(SaturatingCounterPredictor p(0), std::invalid_argument);
  EXPECT_THROW(SaturatingCounterPredictor p(17), std::invalid_argument);
}

TEST(SaturatingCounterTest, ConfidenceGrowsTowardSaturation) {
  SaturatingCounterPredictor p(3);
  const double undecided = p.confidence(0);
  for (int i = 0; i < 10; ++i) p.observe(i, true);
  EXPECT_GT(p.confidence(0), undecided);
}

TEST(HistoryCountsTest, LearnsDiurnalPattern) {
  // Node up 08:00-20:00, down otherwise, every day for a week.
  HistoryCountsPredictor p(kHour);
  for (int day = 0; day < 7; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const SimTime t = day * kDay + hour * kHour + 30 * kMinute;
      p.observe(t, hour >= 8 && hour < 20);
    }
  }
  // Forecast a fresh day.
  EXPECT_TRUE(p.predictUp(10 * kDay + 12 * kHour));   // noon: up
  EXPECT_FALSE(p.predictUp(10 * kDay + 3 * kHour));   // 3 am: down
  EXPECT_GT(p.confidence(10 * kDay + 12 * kHour), 0.9);
}

TEST(HistoryCountsTest, NoEvidenceIsConservative) {
  HistoryCountsPredictor p(kHour);
  EXPECT_FALSE(p.predictUp(5 * kHour));
  EXPECT_DOUBLE_EQ(p.confidence(5 * kHour), 0.5);
}

TEST(HistoryCountsTest, RejectsBadSlotLength) {
  EXPECT_THROW(HistoryCountsPredictor p(0), std::invalid_argument);
  EXPECT_THROW(HistoryCountsPredictor p(2 * kDay), std::invalid_argument);
}

TEST(LinearEwmaTest, ConvergesToSteadySignal) {
  LinearEwmaPredictor p(0.2);
  for (int i = 0; i < 50; ++i) p.observe(i, true);
  EXPECT_TRUE(p.predictUp(100));
  EXPECT_GT(p.confidence(100), 0.9);
  for (int i = 0; i < 50; ++i) p.observe(100 + i, false);
  EXPECT_FALSE(p.predictUp(200));
}

TEST(LinearEwmaTest, RejectsBadAlpha) {
  EXPECT_THROW(LinearEwmaPredictor p(0.0), std::invalid_argument);
  EXPECT_THROW(LinearEwmaPredictor p(1.5), std::invalid_argument);
}

TEST(PredictorFactoryTest, BuildsAllAndRejectsUnknown) {
  for (const char* name : {"right-now", "saturating-counter",
                           "history-counts", "linear-ewma"}) {
    EXPECT_EQ(makePredictor(name)->name(), name);
  }
  EXPECT_THROW(makePredictor("oracle"), std::invalid_argument);
}

TEST(ReplayTest, FeedsHistoryInOrder) {
  history::RawHistory h;
  h.record(1, true);
  h.record(2, true);
  h.record(3, false);
  RightNowPredictor p;
  replay(p, h);
  EXPECT_FALSE(p.predictUp(10));  // last sample was down
}

// ---- offline evaluation ----

TEST(EvaluationTest, PerfectOnStaticNode) {
  trace::NodeTrace node;
  node.id = NodeId::fromIndex(1);
  node.sessions = {{0, 10 * kHour}};

  RightNowPredictor p;
  EvalConfig cfg;
  cfg.samplePeriod = kMinute;
  cfg.horizon = 10 * kMinute;
  cfg.trainUntil = kHour;
  const Score s = evaluate(p, node, 10 * kHour, cfg);
  ASSERT_GT(s.predictions, 0u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 1.0);
}

TEST(EvaluationTest, HistoryCountsBeatsRightNowOnDiurnal) {
  // Build a strongly diurnal trace: up 09:00-21:00 daily.
  trace::NodeTrace node;
  node.id = NodeId::fromIndex(2);
  for (int day = 0; day < 4; ++day) {
    node.sessions.push_back(
        {day * kDay + 9 * kHour, day * kDay + 21 * kHour});
  }
  const SimTime end = 4 * kDay;

  EvalConfig cfg;
  cfg.samplePeriod = 10 * kMinute;
  cfg.horizon = 6 * kHour;  // long horizon: state will have flipped
  cfg.trainUntil = kDay;    // one day of training

  HistoryCountsPredictor diurnal(kHour);
  const Score sd = evaluate(diurnal, node, end, cfg);
  RightNowPredictor naive;
  const Score sn = evaluate(naive, node, end, cfg);

  EXPECT_GT(sd.accuracy(), 0.9);
  EXPECT_GT(sd.accuracy(), sn.accuracy());
}

TEST(EvaluationTest, EvaluateAllAggregatesOverTrace) {
  trace::SynthParams params;
  params.stableSize = 30;
  params.horizon = 12 * kHour;
  params.seed = 4;
  const auto tr = trace::generateSynth(params);

  EvalConfig cfg;
  cfg.samplePeriod = 5 * kMinute;
  cfg.horizon = 30 * kMinute;
  cfg.trainUntil = 2 * kHour;

  const auto scores = evaluateAll(
      {"right-now", "saturating-counter", "linear-ewma"}, tr, cfg);
  ASSERT_EQ(scores.size(), 3u);
  for (const Score& s : scores) {
    EXPECT_GT(s.predictions, 100u) << s.predictor;
    // Any sane predictor beats a coin on sticky exponential sessions.
    EXPECT_GT(s.accuracy(), 0.55) << s.predictor;
  }
}

}  // namespace
}  // namespace avmon::predict
