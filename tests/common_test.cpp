// NodeId and Rng unit/property tests.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace avmon {
namespace {

TEST(NodeIdTest, RoundTripsThroughBytes) {
  const NodeId id(0xC0A80101u, 8080);  // 192.168.1.1:8080
  EXPECT_EQ(NodeId::fromBytes(id.toBytes()), id);
}

TEST(NodeIdTest, BytesAreBigEndian) {
  const NodeId id(0x01020304u, 0x0506);
  const auto b = id.toBytes();
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
  EXPECT_EQ(b[4], 0x05);
  EXPECT_EQ(b[5], 0x06);
}

TEST(NodeIdTest, WireRoundTripPropertyOverRandomIds) {
  // Both directions: id -> bytes -> id and bytes -> id -> bytes, across
  // random ids and the corners of the (ip, port) space.
  Rng rng(11);
  std::vector<NodeId> ids = {
      NodeId(),                        // nil
      NodeId(0xFFFFFFFFu, 0xFFFF),     // all-ones
      NodeId(0, 0xFFFF),               // ip floor, port ceiling
      NodeId(0xFFFFFFFFu, 0),          // ip ceiling, port floor
      NodeId(0x7FFFFFFFu, 0x8000),     // sign-bit boundaries
  };
  for (int i = 0; i < 1000; ++i) {
    ids.emplace_back(static_cast<std::uint32_t>(rng.below(1ull << 32)),
                     static_cast<std::uint16_t>(rng.below(1ull << 16)));
  }
  for (const NodeId& id : ids) {
    const auto bytes = id.toBytes();
    const NodeId back = NodeId::fromBytes(bytes);
    EXPECT_EQ(back, id) << id.toString();
    EXPECT_EQ(back.toBytes(), bytes) << id.toString();
  }
}

TEST(NodeIdTest, ToStringFormatsDottedQuad) {
  EXPECT_EQ(NodeId(0xC0A80101u, 8080).toString(), "192.168.1.1:8080");
  EXPECT_EQ(NodeId().toString(), "0.0.0.0:0");
}

TEST(NodeIdTest, NilDetection) {
  EXPECT_TRUE(NodeId().isNil());
  EXPECT_FALSE(NodeId(1, 0).isNil());
  EXPECT_FALSE(NodeId(0, 1).isNil());
}

TEST(NodeIdTest, FromIndexIsInjectiveForSimulationSizes) {
  std::set<NodeId> seen;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(NodeId::fromIndex(i)).second) << "index " << i;
  }
}

TEST(NodeIdTest, OrderingIsTotal) {
  const NodeId a(1, 1), b(1, 2), c(2, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(NodeIdTest, StdHashSpreadsDenseIndices) {
  // Synthetic simulation ids are dense; the hash must still spread them.
  std::unordered_set<std::size_t> buckets;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    buckets.insert(std::hash<NodeId>{}(NodeId::fromIndex(i)) % 256);
  }
  EXPECT_GT(buckets.size(), 200u);  // near-all buckets touched
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependentOfParent) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child's stream must not reproduce the parent's.
  Rng parentCopy = parent;
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == parentCopy()) ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(RngTest, SuccessiveForksDiffer) {
  Rng parent(7);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1() == c2()) ? 1 : 0;
  EXPECT_LE(same, 1);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, Uniform01Bounds) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, Uniform01MeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.03);  // mean = 1/rate
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacement) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  const auto s = rng.sample(v, 3);
  ASSERT_EQ(s.size(), 3u);
  std::set<int> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(RngTest, SampleMoreThanSizeReturnsAll) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3};
  const auto s = rng.sample(v, 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_DOUBLE_EQ(toSeconds(1500), 1.5);
  EXPECT_DOUBLE_EQ(toMinutes(90 * kSecond), 1.5);
}

}  // namespace
}  // namespace avmon
