// Property tests on the Section 4 formulas, including verifying the
// optimality derivations numerically over the integer neighborhood.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/formulas.hpp"
#include "analysis/table1.hpp"

namespace avmon::analysis {
namespace {

TEST(FormulaTest, PairCheckProbabilityInUnitInterval) {
  for (std::size_t n : {100u, 1000u, 100000u}) {
    for (std::size_t cvs : {2u, 10u, 50u}) {
      const double p = pairCheckProbabilityPerRound(cvs, n);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(FormulaTest, DiscoveryTimeDecreasesWithCvs) {
  for (std::size_t n : {1000u, 10000u}) {
    double prev = expectedDiscoveryRounds(2, n);
    for (std::size_t cvs = 3; cvs * cvs < n; ++cvs) {
      const double cur = expectedDiscoveryRounds(cvs, n);
      EXPECT_LT(cur, prev) << "cvs=" << cvs << " N=" << n;
      prev = cur;
    }
  }
}

TEST(FormulaTest, ApproximationMatchesExactForSmallCvs) {
  // E[D] ≈ N/cvs² when cvs = o(√N): at cvs = ⁴√N the two must agree well.
  for (std::size_t n : {10000u, 1000000u}) {
    const std::size_t cvs = cvsOptimalMDC(n);
    const double exact = expectedDiscoveryRounds(cvs, n);
    const double approx = expectedDiscoveryRoundsApprox(cvs, n);
    EXPECT_NEAR(exact / approx, 1.0, 0.05) << "N=" << n;
  }
}

TEST(FormulaTest, PaperDiscoveryNumberAtOneMillion) {
  // Section 4.2 "In practice": N=1M, cvs=32 ⇒ E[D] ≈ 1000 protocol periods.
  EXPECT_NEAR(expectedDiscoveryRounds(32, 1000000), 1000.0, 30.0);
}

TEST(FormulaTest, OptimalMdMinimizesObjective) {
  // The derivation says cvs* = ∛(2N); check that no integer neighbor (or
  // any point in a wide sweep) beats it.
  for (std::size_t n : {500u, 2000u, 100000u}) {
    const std::size_t star = cvsOptimalMD(n);
    const double best = objectiveMD(star, n);
    for (std::size_t cvs = 2; cvs < 4 * star; ++cvs) {
      EXPECT_GE(objectiveMD(cvs, n) + 1.0, best)
          << "cvs=" << cvs << " beats MD optimum at N=" << n;
    }
  }
}

TEST(FormulaTest, OptimalMdcMinimizesObjective) {
  for (std::size_t n : {500u, 2000u, 100000u}) {
    const std::size_t star = cvsOptimalMDC(n);
    const double best = objectiveMDC(star, n);
    for (std::size_t cvs = 2; cvs < 6 * star; ++cvs) {
      EXPECT_GE(objectiveMDC(cvs, n) + 1.0, best)
          << "cvs=" << cvs << " beats MDC optimum at N=" << n;
    }
  }
}

TEST(FormulaTest, OptimalValuesMatchClosedForms) {
  EXPECT_EQ(cvsOptimalMD(1000000), static_cast<std::size_t>(
                                       std::llround(std::cbrt(2000000.0))));
  EXPECT_EQ(cvsOptimalMDC(1000000), 32u);
  EXPECT_EQ(cvsOptimalDC(1000000), cvsOptimalMDC(1000000));
}

TEST(FormulaTest, JoinSpreadIsLogarithmic) {
  EXPECT_DOUBLE_EQ(joinSpreadRounds(32), 5.0);
  EXPECT_DOUBLE_EQ(joinSpreadRounds(2), 1.0);
  EXPECT_GT(joinSpreadRounds(1000), joinSpreadRounds(100));
}

TEST(FormulaTest, DuplicateJoinsVanishForSmallCvs) {
  // cvs = o(√N) ⇒ expected duplicates per period is o(1).
  EXPECT_LT(expectedDuplicateJoins(32, 1000000), 0.01);
  EXPECT_LT(expectedDuplicateJoins(27, 2000), 1.0);
}

TEST(FormulaTest, DeadEntryDeletionGrowsWithCvsAndN) {
  EXPECT_GT(deadEntryDeletionRounds(20, 1000), deadEntryDeletionRounds(10, 1000));
  EXPECT_GT(deadEntryDeletionRounds(10, 100000), deadEntryDeletionRounds(10, 1000));
}

TEST(FormulaTest, SomeMonitorUpProbability) {
  // 1-(1-a)^K: with a = 0.5 and K = 10, failure chance is 2^-10.
  EXPECT_NEAR(probSomeMonitorUp(10, 0.5), 1.0 - std::pow(2.0, -10.0), 1e-12);
  EXPECT_DOUBLE_EQ(probSomeMonitorUp(5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(probSomeMonitorUp(5, 0.0), 0.0);
  // Monotone in K.
  EXPECT_GT(probSomeMonitorUp(20, 0.3), probSomeMonitorUp(5, 0.3));
}

TEST(FormulaTest, KForLOutOfKMatchesPaperRule) {
  // K = (l+1)·log2(N).
  EXPECT_EQ(kForLOutOfK(1024, 1), 20u);
  EXPECT_EQ(kForLOutOfK(1024, 2), 30u);
  EXPECT_GE(kForLOutOfK(2, 1), 1u);
}

TEST(FormulaTest, CollusionResilienceApproachesOne) {
  // With K = O(log N) and C constant, pollution probability vanishes.
  const double p1k = probNoColluderInPS(1000, 10, 3);
  const double p1m = probNoColluderInPS(1000000, 20, 3);
  EXPECT_GT(p1m, p1k);
  EXPECT_GT(p1m, 0.9999);
  // Degenerate: many colluders at tiny N do pollute.
  EXPECT_LT(probNoColluderInPS(100, 10, 50), 0.01);
}

TEST(FormulaTest, SystemWideCollusionFreedom) {
  // D = o(N/log N) colluding pairs leave the system clean w.h.p.
  EXPECT_GT(probSystemCollusionFree(1000000, 20, 1000), 0.97);
  EXPECT_LT(probSystemCollusionFree(1000, 10, 1000), 0.01);
}

TEST(Table1Test, HasFiveRowsWithExpectedOrdering) {
  const auto rows = table1(1000000, 100);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].approach, "Broadcast (AVCast)");

  // Broadcast memory is N; all AVMON variants are far below.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].memoryEntries, rows[0].memoryEntries / 100.0);
  }

  // MD discovers faster than MDC (larger cvs), but costs more memory.
  const auto& md = rows[3];
  const auto& mdc = rows[4];
  EXPECT_LT(md.discoveryRounds, mdc.discoveryRounds);
  EXPECT_GT(md.memoryEntries, mdc.memoryEntries);
}

TEST(Table1Test, ConcreteValuesAtPaperScale) {
  const auto rows = table1(1000000, 32);
  // Optimal-MDC row: memory ≈ 32, discovery ≈ √N = 1000, compute ≈ √N.
  const auto& mdc = rows[4];
  EXPECT_NEAR(mdc.memoryEntries, 32.0, 1.0);
  EXPECT_NEAR(mdc.discoveryRounds, 1000.0, 40.0);
  EXPECT_NEAR(mdc.computationsPerRound, 1024.0, 70.0);
}

}  // namespace
}  // namespace avmon::analysis
