// Sharded-execution proof layer: SPSC hand-off queue units, window-barrier
// ordering, cross-shard deferred RPC, and the headline property — for a
// fixed seed and scenario, EVERY shard count reproduces the single-shard
// metrics bit-for-bit (summaries, accuracy table, and per-node CSV rows).
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "experiments/scenario.hpp"
#include "golden_hash.hpp"
#include "sim/shard_queue.hpp"
#include "sim/sharded_simulator.hpp"

namespace avmon::sim {
namespace {

// ---------------------------------------------------------------- queue

TEST(ShardQueueTest, FifoAcrossChunkBoundaries) {
  SpscHandoffQueue<int, 4> q;  // tiny chunks force several hand-overs
  for (int i = 0; i < 37; ++i) q.push(i);
  std::vector<int> out;
  EXPECT_EQ(q.drainInto(out), 37u);
  ASSERT_EQ(out.size(), 37u);
  for (int i = 0; i < 37; ++i) EXPECT_EQ(out[i], i);
  EXPECT_TRUE(q.empty());
}

TEST(ShardQueueTest, DrainPicksUpLaterPushes) {
  SpscHandoffQueue<int, 8> q;
  std::vector<int> out;
  q.push(1);
  q.drainInto(out);
  q.push(2);
  q.push(3);
  q.drainInto(out);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(ShardQueueTest, ConcurrentProducerConsumerKeepsOrderAndCount) {
  constexpr int kItems = 200000;
  SpscHandoffQueue<int, 64> q;
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) q.push(i);
  });
  std::vector<int> out;
  out.reserve(kItems);
  while (out.size() < kItems) {
    q.drainInto(out);
  }
  producer.join();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i) << "FIFO order broken";
  }
}

// ------------------------------------------------------------ sub-worlds

class RecordingEndpoint final : public Endpoint {
 public:
  explicit RecordingEndpoint(Simulator& sim) : sim_(sim) {}

  void onMessage(const NodeId& from, const Message& message) override {
    std::string text;
    if (const auto* t = std::get_if<TextMessage>(&message)) text = t->text;
    received.push_back({sim_.now(), from, text});
  }

  struct Record {
    SimTime at;
    NodeId from;
    std::string text;
  };
  std::vector<Record> received;

 private:
  Simulator& sim_;
};

ShardedSimulator::Config fixedLatencyConfig(std::size_t shards,
                                            SimDuration latency) {
  ShardedSimulator::Config cfg;
  cfg.shards = shards;
  cfg.net.minLatency = latency;
  cfg.net.maxLatency = latency;  // deterministic due times for assertions
  cfg.net.deferredRpc = true;
  cfg.netSeed = 7;
  return cfg;
}

TEST(ShardedSimulatorTest, RegistersRoundRobinAndResolvesHomes) {
  ShardedSimulator world(fixedLatencyConfig(3, 10));
  const NodeId a = NodeId::fromIndex(1), b = NodeId::fromIndex(2),
               c = NodeId::fromIndex(3), d = NodeId::fromIndex(4);
  EXPECT_EQ(world.registerNode(a), 0u);
  EXPECT_EQ(world.registerNode(b), 1u);
  EXPECT_EQ(world.registerNode(c), 2u);
  EXPECT_EQ(world.registerNode(d), 3u);
  EXPECT_EQ(world.shardOf(a), 0u);
  EXPECT_EQ(world.shardOf(b), 1u);
  EXPECT_EQ(world.shardOf(c), 2u);
  EXPECT_EQ(world.shardOf(d), 0u);  // wraps
  EXPECT_EQ(&world.simFor(a), &world.simOf(0));
  EXPECT_EQ(&world.netFor(c), &world.netOf(2));
  EXPECT_EQ(world.windowLength(), 10);
}

TEST(ShardedSimulatorTest, CrossShardMessageLandsAfterItsSendWindow) {
  ShardedSimulator world(fixedLatencyConfig(2, 10));
  const NodeId a = NodeId::fromIndex(1), b = NodeId::fromIndex(2);
  world.registerNode(a);  // shard 0
  world.registerNode(b);  // shard 1
  RecordingEndpoint ea(world.simOf(0)), eb(world.simOf(1));
  world.netOf(0).attach(a, ea);
  world.netOf(1).attach(b, eb);
  world.netOf(0).setUp(a, true);
  world.netOf(1).setUp(b, true);

  // Send at t = 3 (mid-window 0): due at exactly 13 — inside window 1,
  // inserted at the barrier between the windows, never mid-window.
  world.simOf(0).at(3, [&] { world.netOf(0).send(a, b, TextMessage{"x", 1}); });
  world.runUntil(100);

  ASSERT_EQ(eb.received.size(), 1u);
  EXPECT_EQ(eb.received[0].at, 13);
  EXPECT_EQ(eb.received[0].from, a);
  EXPECT_GE(world.handoffsCarried(), 1u);
  EXPECT_EQ(world.delivered(), 1u);
  EXPECT_EQ(world.now(), 100);
}

TEST(ShardedSimulatorTest, SameInstantDeliveriesRunInSenderKeyOrder) {
  // Three senders on three shards all hit the same target at the same
  // instant; execution order must follow the global sender index — the
  // shard-count-invariant key — not thread timing or queue arrival.
  ShardedSimulator world(fixedLatencyConfig(4, 10));
  const NodeId t = NodeId::fromIndex(10);
  const NodeId s1 = NodeId::fromIndex(11), s2 = NodeId::fromIndex(12),
               s3 = NodeId::fromIndex(13);
  world.registerNode(t);   // index 0, shard 0
  world.registerNode(s1);  // index 1, shard 1
  world.registerNode(s2);  // index 2, shard 2
  world.registerNode(s3);  // index 3, shard 3
  RecordingEndpoint et(world.simOf(0));
  RecordingEndpoint e1(world.simOf(1)), e2(world.simOf(2)), e3(world.simOf(3));
  world.netOf(0).attach(t, et);
  world.netOf(1).attach(s1, e1);
  world.netOf(2).attach(s2, e2);
  world.netOf(3).attach(s3, e3);
  world.netOf(0).setUp(t, true);
  world.netOf(1).setUp(s1, true);
  world.netOf(2).setUp(s2, true);
  world.netOf(3).setUp(s3, true);

  // Highest-index sender schedules first; all sends happen at t = 5, all
  // deliveries land at t = 15.
  world.simOf(3).at(5, [&] { world.netOf(3).send(s3, t, TextMessage{"c", 1}); });
  world.simOf(2).at(5, [&] { world.netOf(2).send(s2, t, TextMessage{"b", 1}); });
  world.simOf(1).at(5, [&] { world.netOf(1).send(s1, t, TextMessage{"a", 1}); });
  world.runUntil(50);

  ASSERT_EQ(et.received.size(), 3u);
  EXPECT_EQ(et.received[0].text, "a");  // sender index 1
  EXPECT_EQ(et.received[1].text, "b");  // sender index 2
  EXPECT_EQ(et.received[2].text, "c");  // sender index 3
  for (const auto& r : et.received) EXPECT_EQ(r.at, 15);
}

TEST(ShardedSimulatorTest, SameShardTrafficAlsoRidesTheHandoffLayer) {
  // A message between two nodes of the SAME shard still crosses the
  // barrier layer — insertion order at a destination can never depend on
  // which shard the sender happens to share with it.
  ShardedSimulator world(fixedLatencyConfig(2, 10));
  const NodeId a = NodeId::fromIndex(1), b = NodeId::fromIndex(2);
  world.registerNode(a);                 // shard 0
  world.registerNode(NodeId::fromIndex(9));  // pad index 1 → shard 1
  world.registerNode(b);                 // index 2 → shard 0 (same as a)
  RecordingEndpoint ea(world.simOf(0)), eb(world.simOf(0));
  world.netOf(0).attach(a, ea);
  world.netOf(0).attach(b, eb);
  world.netOf(0).setUp(a, true);
  world.netOf(0).setUp(b, true);

  world.simOf(0).at(0, [&] { world.netOf(0).send(a, b, TextMessage{"m", 1}); });
  world.runUntil(40);

  ASSERT_EQ(eb.received.size(), 1u);
  EXPECT_EQ(eb.received[0].at, 10);
  EXPECT_GE(world.handoffsCarried(), 1u);
}

TEST(ShardedSimulatorTest, DeferredRpcCrossesShardsAndBack) {
  ShardedSimulator world(fixedLatencyConfig(2, 10));
  const NodeId a = NodeId::fromIndex(1), b = NodeId::fromIndex(2);
  world.registerNode(a);
  world.registerNode(b);
  RecordingEndpoint ea(world.simOf(0)), eb(world.simOf(1));
  world.netOf(0).attach(a, ea);
  world.netOf(1).attach(b, eb);
  world.netOf(0).setUp(a, true);
  world.netOf(1).setUp(b, true);

  std::optional<SimTime> completedAt;
  bool gotResponse = false;
  world.simOf(0).at(0, [&] {
    world.netOf(0).callAsync(a, b, PingRequest{8},
                             [&](std::optional<RpcResponse> r) {
                               completedAt = world.simOf(0).now();
                               gotResponse = r.has_value();
                             });
  });
  world.runUntil(kSecond);

  ASSERT_TRUE(completedAt.has_value());
  EXPECT_TRUE(gotResponse);
  EXPECT_EQ(*completedAt, 20);  // request leg 10 ms + response leg 10 ms
  // Request charged to the caller, response to the responder.
  EXPECT_EQ(world.netOf(0).traffic(a).bytesSent, 8u);
  EXPECT_GT(world.netOf(1).traffic(b).bytesSent, 0u);
}

TEST(ShardedSimulatorTest, DeferredRpcToDownNodeTimesOutAtExactDeadline) {
  ShardedSimulator world(fixedLatencyConfig(2, 10));
  const NodeId a = NodeId::fromIndex(1), b = NodeId::fromIndex(2);
  world.registerNode(a);
  world.registerNode(b);
  RecordingEndpoint ea(world.simOf(0)), eb(world.simOf(1));
  world.netOf(0).attach(a, ea);
  world.netOf(1).attach(b, eb);
  world.netOf(0).setUp(a, true);  // b stays down

  std::optional<SimTime> completedAt;
  bool gotResponse = true;
  world.simOf(0).at(0, [&] {
    world.netOf(0).callAsync(a, b, PingRequest{8},
                             [&](std::optional<RpcResponse> r) {
                               completedAt = world.simOf(0).now();
                               gotResponse = r.has_value();
                             });
  });
  world.runUntil(kSecond);

  ASSERT_TRUE(completedAt.has_value());
  EXPECT_FALSE(gotResponse);
  EXPECT_EQ(*completedAt, NetworkConfig{}.rpcTimeout);
  EXPECT_EQ(world.netOf(1).traffic(b).bytesSent, 0u);  // never served
}

TEST(ShardedSimulatorTest, ForcedThreadPoolMatchesSerialExecution) {
  // Config::threads = 4 forces the spin-barrier worker pool even on a
  // single-core host (threads = 0 would collapse to one worker there), so
  // the barrier/drain phases run on real threads in every environment —
  // and under TSan this validates their happens-before edges. The pooled
  // run must reproduce the serial run exactly.
  auto runWorld = [](unsigned threads) {
    ShardedSimulator::Config cfg = fixedLatencyConfig(4, 10);
    cfg.net.maxLatency = 40;  // varied latencies → real cross-window traffic
    cfg.threads = threads;
    ShardedSimulator world(cfg);
    std::vector<NodeId> ids;
    std::vector<std::unique_ptr<RecordingEndpoint>> endpoints;
    for (std::uint32_t i = 0; i < 8; ++i) {
      const NodeId id = NodeId::fromIndex(100 + i);
      world.registerNode(id);
      const std::size_t shard = world.shardOf(id);
      endpoints.push_back(
          std::make_unique<RecordingEndpoint>(world.simOf(shard)));
      world.netOf(shard).attach(id, *endpoints.back());
      world.netOf(shard).setUp(id, true);
      ids.push_back(id);
    }
    // Every node bombards every other node across several windows.
    for (std::uint32_t i = 0; i < 8; ++i) {
      const std::size_t shard = world.shardOf(ids[i]);
      world.simOf(shard).at(0, [&world, &ids, i, shard] {
        for (int round = 0; round < 20; ++round) {
          for (std::uint32_t j = 0; j < 8; ++j) {
            if (j == i) continue;
            world.netOf(shard).send(ids[i], ids[j],
                                    TextMessage{std::to_string(i), 1});
          }
        }
      });
    }
    world.runUntil(kSecond);
    // Fingerprint the observable outcome: per-endpoint arrival streams.
    std::uint64_t fp = 1469598103934665603ULL;
    const auto mix = [&fp](std::uint64_t x) {
      for (int b = 0; b < 8; ++b) {
        fp ^= (x >> (8 * b)) & 0xFF;
        fp *= 1099511628211ULL;
      }
    };
    for (const auto& ep : endpoints) {
      mix(ep->received.size());
      for (const auto& r : ep->received) {
        mix(static_cast<std::uint64_t>(r.at));
        mix((static_cast<std::uint64_t>(r.from.ip()) << 16) | r.from.port());
      }
    }
    return std::pair<std::uint64_t, unsigned>(fp, world.workerThreads());
  };

  const auto serial = runWorld(1);
  const auto pooled = runWorld(4);
  EXPECT_EQ(serial.second, 1u);
  EXPECT_EQ(pooled.second, 4u);  // the pool really spun up
  EXPECT_EQ(pooled.first, serial.first);
}

TEST(ShardedSimulatorTest, IdleStretchesAreSkippedInOneHop) {
  ShardedSimulator world(fixedLatencyConfig(2, 10));
  const NodeId a = NodeId::fromIndex(1);
  world.registerNode(a);
  // One far-future event; the driver must not grind through the ~6000
  // empty windows in between.
  bool fired = false;
  world.simOf(0).at(kMinute, [&] { fired = true; });
  world.runUntil(kMinute + 5);
  EXPECT_TRUE(fired);
  EXPECT_LT(world.windowsRun(), 50u);
}

}  // namespace
}  // namespace avmon::sim

// --------------------------------------------------------------- property

namespace avmon::experiments {
namespace {

// The tentpole guarantee: for a fixed seed and scenario, metrics are
// bit-identical for EVERY shard count — the partition changes wall-clock
// time, never results. Verified over the same three seeded workloads the
// golden-hash regression pins (STAT, SYNTH-BD, SYNTH with injected
// drops + RPC timeouts), across S ∈ {1, 2, 3, 8}.
TEST(ShardedScenarioTest, ShardCountNeverChangesMetrics) {
  for (const Scenario& base : goldenScenarios()) {
    std::optional<std::uint64_t> refSummary, refPerNode;
    for (const unsigned shards : {1u, 2u, 3u, 8u}) {
      Scenario s = base;
      s.shards = shards;
      ScenarioRunner runner(s);
      runner.run();
      const std::uint64_t summary = summaryHash(runner);
      const std::uint64_t perNode = perNodeHash(runner);
      if (!refSummary) {
        refSummary = summary;
        refPerNode = perNode;
      } else {
        EXPECT_EQ(summary, *refSummary)
            << "summary metrics drifted at shards=" << shards;
        EXPECT_EQ(perNode, *refPerNode)
            << "per-node metrics drifted at shards=" << shards;
      }
    }
  }
}

TEST(ShardedScenarioTest, InstantaneousModeRequiresSingleShard) {
  Scenario s;
  s.deferredRpc = false;
  s.shards = 4;
  EXPECT_THROW(ScenarioRunner{s}, std::invalid_argument);
}

}  // namespace
}  // namespace avmon::experiments
