// Fixture suite for the avmon_lint determinism checker: every rule is
// proven live by a known-bad snippet that must trigger, proven quiet by an
// annotated twin that must pass, and the real tree is asserted clean — so
// the tier-1 gate cannot silently stop enforcing a rule.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.hpp"

namespace {

using avmon::lint::Finding;
using avmon::lint::Linter;

std::vector<Finding> lintSnippetAt(const std::string& name,
                                   const std::string& code) {
  Linter linter;
  linter.addSource(name, code);
  return linter.run();
}

std::vector<Finding> lintSnippet(const std::string& code) {
  return lintSnippetAt("snippet.cpp", code);
}

bool hasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const auto& f : findings) {
    if (f.rule == rule) return true;
  }
  return false;
}

std::string dump(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) out += avmon::lint::formatFinding(f) + "\n";
  return out;
}

// The annotation marker, assembled so this file's own comments and string
// literals never read as annotations for the scanner.
std::string allow(const std::string& rule, const std::string& reason) {
  return std::string("// lint:") + "allow(" + rule + ", " + reason + ")";
}

// ---------------------------------------------------------------- unordered

TEST(LintUnorderedIterTest, RangeForOverUnorderedMapTriggers) {
  const auto f = lintSnippet(R"cpp(
    #include <unordered_map>
    void f() {
      std::unordered_map<int, int> m;
      for (const auto& [k, v] : m) { (void)k; (void)v; }
    }
  )cpp");
  EXPECT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
}

TEST(LintUnorderedIterTest, AnnotatedRangeForPasses) {
  const auto f = lintSnippet(
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  " + allow("unordered-iter", "order-insensitive aggregate") + "\n"
      "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnorderedIterTest, BeginIterationTriggers) {
  const auto f = lintSnippet(R"cpp(
    #include <unordered_set>
    #include <vector>
    std::vector<int> f() {
      std::unordered_set<int> s;
      return std::vector<int>(s.begin(), s.end());
    }
  )cpp");
  EXPECT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
}

TEST(LintUnorderedIterTest, AliasDeclarationTriggers) {
  const auto f = lintSnippet(R"cpp(
    #include <unordered_set>
    using CoarseView = std::unordered_set<int>;
    void f() {
      CoarseView cv;
      for (int x : cv) (void)x;
    }
  )cpp");
  EXPECT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
}

TEST(LintUnorderedIterTest, AccessorReturningUnorderedTriggersAcrossFiles) {
  Linter linter;
  linter.addSource("node.hpp", R"cpp(
    #include <unordered_set>
    class Node {
     public:
      const std::unordered_set<int>& pingingSet() const { return ps_; }
     private:
      std::unordered_set<int> ps_;
    };
  )cpp");
  linter.addSource("use.cpp", R"cpp(
    #include "node.hpp"
    int f(const Node& node) {
      int sum = 0;
      for (int x : node.pingingSet()) sum += x;
      return sum;
    }
  )cpp");
  const auto f = linter.run();
  ASSERT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
  // The finding must land in the USING file, not the declaring header.
  for (const auto& finding : f) {
    if (finding.rule == "unordered-iter") EXPECT_EQ(finding.file, "use.cpp");
  }
}

TEST(LintUnorderedIterTest, AutoBoundAccessorResultTriggers) {
  Linter linter;
  linter.addSource("node.hpp", R"cpp(
    #include <unordered_set>
    class Node {
     public:
      const std::unordered_set<int>& pingingSet() const { return ps_; }
     private:
      std::unordered_set<int> ps_;
    };
  )cpp");
  linter.addSource("use.cpp", R"cpp(
    #include "node.hpp"
    #include <vector>
    std::vector<int> f(const Node& node) {
      const auto& ps = node.pingingSet();
      return std::vector<int>(ps.begin(), ps.end());
    }
  )cpp");
  const auto f = linter.run();
  EXPECT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
}

TEST(LintUnorderedIterTest, MemberDeclaredInHeaderTriggersInCpp) {
  Linter linter;
  linter.addSource("state.hpp", R"cpp(
    #include <unordered_map>
    struct State {
      std::unordered_map<int, double> table_;
      void tick();
    };
  )cpp");
  linter.addSource("state.cpp", R"cpp(
    #include "state.hpp"
    void State::tick() {
      for (auto& [k, v] : table_) v += 1.0;
    }
  )cpp");
  const auto f = linter.run();
  EXPECT_TRUE(hasRule(f, "unordered-iter")) << dump(f);
}

TEST(LintUnorderedIterTest, LookupsAndVectorIterationPass) {
  const auto f = lintSnippet(R"cpp(
    #include <unordered_map>
    #include <vector>
    int f() {
      std::unordered_map<int, int> m;
      std::vector<int> v{1, 2, 3};
      int sum = 0;
      for (int x : v) sum += x;             // vector: fine
      if (m.count(1) > 0) sum += m.at(1);   // lookups: fine
      const auto it = m.find(2);
      if (it != m.end()) sum += it->second;
      return sum;
    }
  )cpp");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintUnorderedIterTest, HeaderParameterNameDoesNotLeakIntoIncluders) {
  Linter linter;
  // A header whose function signature names a parameter `ids` must not
  // taint a same-named local vector in a file that includes it.
  linter.addSource("util.hpp", R"cpp(
    #include <unordered_set>
    #include <vector>
    std::vector<int> sorted(const std::unordered_set<int>& ids);
  )cpp");
  linter.addSource("use.cpp", R"cpp(
    #include "util.hpp"
    int f() {
      std::vector<int> ids{3, 1, 2};
      int sum = 0;
      for (int x : ids) sum += x;
      return sum;
    }
  )cpp");
  const auto f = linter.run();
  EXPECT_TRUE(f.empty()) << dump(f);
}

// ------------------------------------------------------------- entropy/time

TEST(LintEntropyTest, RandomDeviceTriggersAndAnnotatedPasses) {
  const auto bad = lintSnippet(R"cpp(
    #include <random>
    unsigned f() { std::random_device rd; return rd(); }
  )cpp");
  EXPECT_TRUE(hasRule(bad, "random-device")) << dump(bad);

  const auto ok = lintSnippet(
      "#include <random>\n"
      "unsigned f() {\n"
      "  " + allow("random-device", "CLI tool seeding only") + "\n"
      "  std::random_device rd;\n"
      "  return rd();\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

TEST(LintEntropyTest, CRandTriggersAndAnnotatedPasses) {
  const auto bad = lintSnippet(R"cpp(
    #include <cstdlib>
    int f() { std::srand(42); return std::rand(); }
  )cpp");
  EXPECT_TRUE(hasRule(bad, "c-rand")) << dump(bad);

  const auto ok = lintSnippet(
      "#include <cstdlib>\n"
      "int f() {\n"
      "  " + allow("c-rand", "exercising the legacy baseline on purpose") +
      "\n"
      "  return std::rand();\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

TEST(LintWallClockTest, ChronoClockAndTimeCallTrigger) {
  const auto clock = lintSnippet(R"cpp(
    #include <chrono>
    long f() {
      return std::chrono::steady_clock::now().time_since_epoch().count();
    }
  )cpp");
  EXPECT_TRUE(hasRule(clock, "wall-clock")) << dump(clock);

  const auto ctime = lintSnippet(R"cpp(
    #include <ctime>
    long f() { return static_cast<long>(time(nullptr)); }
  )cpp");
  EXPECT_TRUE(hasRule(ctime, "wall-clock")) << dump(ctime);
}

TEST(LintWallClockTest, MemberNamedTimeAndAnnotationPass) {
  // x.time() is a member call, not the C library clock.
  const auto member = lintSnippet(R"cpp(
    struct Event { long time() const { return t_; } long t_ = 0; };
    long f(const Event& e) { return e.time(); }
  )cpp");
  EXPECT_TRUE(member.empty()) << dump(member);

  // The annotated twin must sit in a sanctioned tree: wall-clock allows
  // are directory-scoped (see LintScopedAllowTest below).
  const auto ok = lintSnippetAt(
      "bench/snippet.cpp",
      "#include <chrono>\n"
      "long f() {\n"
      "  " + allow("wall-clock", "bench harness self-timing only") + "\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

TEST(LintScopedAllowTest, WallClockAllowIsSanctionedInsideTheLiveLane) {
  const std::string code =
      "#include <chrono>\n"
      "long f() {\n"
      "  " + allow("wall-clock", "live lane drives retries off wall time") +
      "\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  for (const char* name :
       {"src/net/wall_clock.hpp", "tools/avmon_node.cpp",
        "tools/avmon_live.cpp", "bench/common.hpp"}) {
    const auto f = lintSnippetAt(name, code);
    EXPECT_TRUE(f.empty()) << name << ":\n" << dump(f);
  }
}

TEST(LintScopedAllowTest, WallClockAllowOutsideTheScopeIsItselfAFinding) {
  const std::string code =
      "#include <chrono>\n"
      "long f() {\n"
      "  " + allow("wall-clock", "a perfectly reasoned excuse") + "\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  // The simulated lane stays wall-clock-free even with a reason attached:
  // the allow still suppresses the wall-clock hit (no silent sites), but
  // the annotation itself reports scoped-allow.
  for (const char* name :
       {"src/sim/simulator.cpp", "src/avmon/node.cpp",
        "src/experiments/scenario.cpp", "tools/avmon_sim.cpp"}) {
    const auto f = lintSnippetAt(name, code);
    EXPECT_FALSE(hasRule(f, "wall-clock")) << name << ":\n" << dump(f);
    EXPECT_TRUE(hasRule(f, "scoped-allow")) << name << ":\n" << dump(f);
  }
}

TEST(LintScopedAllowTest, OtherRulesAreNotDirectoryScoped) {
  // The scope policy is wall-clock-specific: an unordered-iter allow in
  // simulator code stays a plain reasoned suppression.
  const auto f = lintSnippetAt(
      "src/sim/network.cpp",
      "#include <unordered_map>\n"
      "void f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  " + allow("unordered-iter", "order-insensitive aggregate") + "\n"
      "  for (const auto& [k, v] : m) { (void)k; (void)v; }\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintScopedAllowTest, StaleWallClockAllowOutsideScopeReportsStaleOnly) {
  // An allow that suppresses nothing is stale, not scope-violating — the
  // scope check applies to annotations that actually fired.
  const auto f = lintSnippetAt(
      "src/sim/simulator.cpp",
      allow("wall-clock", "nothing here reads a clock") + "\nint x;\n");
  EXPECT_TRUE(hasRule(f, "stale-allow")) << dump(f);
  EXPECT_FALSE(hasRule(f, "scoped-allow")) << dump(f);
}

TEST(LintGetenvTest, GetenvTriggersAndAnnotatedPasses) {
  const auto bad = lintSnippet(R"cpp(
    #include <cstdlib>
    const char* f() { return std::getenv("HOME"); }
  )cpp");
  EXPECT_TRUE(hasRule(bad, "getenv")) << dump(bad);

  const auto ok = lintSnippet(
      "#include <cstdlib>\n"
      "const char* f() {\n"
      "  " + allow("getenv", "operator scale knob, read once at startup") +
      "\n"
      "  return std::getenv(\"AVMON_BENCH_SCALE\");\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

// ------------------------------------------------------------ pointer keys

TEST(LintPtrKeyTest, PointerKeyedMapAndSetTrigger) {
  const auto mapCase = lintSnippet(R"cpp(
    #include <map>
    struct Node;
    std::map<Node*, int> ranks;
  )cpp");
  EXPECT_TRUE(hasRule(mapCase, "ptr-key-order")) << dump(mapCase);

  const auto setCase = lintSnippet(R"cpp(
    #include <set>
    struct Node;
    std::set<const Node*> seen;
  )cpp");
  EXPECT_TRUE(hasRule(setCase, "ptr-key-order")) << dump(setCase);
}

TEST(LintPtrKeyTest, PointerHashTriggersValuePointerPasses) {
  const auto hashCase = lintSnippet(R"cpp(
    #include <functional>
    struct Node;
    std::size_t f(Node* n) { return std::hash<Node*>{}(n); }
  )cpp");
  EXPECT_TRUE(hasRule(hashCase, "ptr-key-order")) << dump(hashCase);

  // A pointer VALUE (not key) is fine: iteration order is still the key's.
  const auto valueCase = lintSnippet(R"cpp(
    #include <map>
    struct Node;
    std::map<int, Node*> byIndex;
  )cpp");
  EXPECT_TRUE(valueCase.empty()) << dump(valueCase);
}

TEST(LintPtrKeyTest, AnnotatedPointerKeyPasses) {
  const auto ok = lintSnippet(
      "#include <map>\n"
      "struct Node;\n"
      + allow("ptr-key-order", "debug-only dump, order never observable") +
      "\n"
      "std::map<Node*, int> ranks;\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

// ----------------------------------------------------------- random engine

TEST(LintEngineTest, UnseededEnginesTriggerSeededPasses) {
  const auto plain = lintSnippet(R"cpp(
    #include <random>
    std::mt19937 gen;
  )cpp");
  EXPECT_TRUE(hasRule(plain, "unseeded-mt19937")) << dump(plain);

  const auto braced = lintSnippet(R"cpp(
    #include <random>
    unsigned f() { std::mt19937_64 gen{}; return unsigned(gen()); }
  )cpp");
  EXPECT_TRUE(hasRule(braced, "unseeded-mt19937")) << dump(braced);

  const auto seeded = lintSnippet(R"cpp(
    #include <random>
    unsigned f(unsigned seed) { std::mt19937 gen(seed); return unsigned(gen()); }
  )cpp");
  EXPECT_TRUE(seeded.empty()) << dump(seeded);
}

TEST(LintEngineTest, AnnotatedUnseededEnginePasses) {
  const auto ok = lintSnippet(
      "#include <random>\n"
      + allow("unseeded-mt19937", "distribution shape test, value-free") +
      "\n"
      "std::mt19937 gen;\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

// ------------------------------------------------------- per-node alloc

TEST(LintPerNodeAllocTest, LocalNodeIdMapTriggers) {
  const auto f = lintSnippet(R"cpp(
    #include <unordered_map>
    struct NodeId;
    void probe() {
      std::unordered_map<NodeId, double> estimates;
    }
  )cpp");
  EXPECT_TRUE(hasRule(f, "per-node-alloc")) << dump(f);

  const auto qualified = lintSnippet(R"cpp(
    #include <map>
    namespace avmon { struct NodeId; }
    void scan() {
      std::map<avmon::NodeId, int> byId;
    }
  )cpp");
  EXPECT_TRUE(hasRule(qualified, "per-node-alloc")) << dump(qualified);
}

TEST(LintPerNodeAllocTest, MembersParametersAndViewsPass) {
  // A member is a long-lived design choice, not probe scratch.
  const auto member = lintSnippet(R"cpp(
    #include <unordered_map>
    struct NodeId;
    class Registry {
      std::unordered_map<NodeId, int> slots_;
    };
  )cpp");
  EXPECT_FALSE(hasRule(member, "per-node-alloc")) << dump(member);

  // Reference parameters and views allocate nothing.
  const auto param = lintSnippet(R"cpp(
    #include <unordered_set>
    struct NodeId;
    int count(const std::unordered_set<NodeId>& ids);
    void f(const std::unordered_set<NodeId>& ids) {
      const std::unordered_set<NodeId>& view = ids;
      (void)view;
    }
  )cpp");
  EXPECT_FALSE(hasRule(param, "per-node-alloc")) << dump(param);

  // Other key types are out of scope for this rule.
  const auto otherKey = lintSnippet(R"cpp(
    #include <unordered_map>
    void f() {
      std::unordered_map<int, int> m;
      (void)m;
    }
  )cpp");
  EXPECT_FALSE(hasRule(otherKey, "per-node-alloc")) << dump(otherKey);
}

TEST(LintPerNodeAllocTest, AnnotatedLocalPasses) {
  const auto ok = lintSnippet(
      "#include <unordered_map>\n"
      "struct NodeId;\n"
      "void resolve() {\n"
      "  " +
      allow("per-node-alloc", "bounded by victim count, built once") +
      "\n"
      "  std::unordered_map<NodeId, int> byId;\n"
      "}\n");
  EXPECT_TRUE(ok.empty()) << dump(ok);
}

TEST(LintPerNodeAllocTest, RuleIsAdvisory) {
  EXPECT_TRUE(avmon::lint::isAdvisoryRule("per-node-alloc"));
  EXPECT_FALSE(avmon::lint::isAdvisoryRule("unordered-iter"));
  EXPECT_FALSE(avmon::lint::isAdvisoryRule("no-such-rule"));
}

// ----------------------------------------------------------- meta rules

TEST(LintMetaTest, UnknownRuleInAnnotationReportsBadAllow) {
  const auto f = lintSnippet(allow("no-such-rule", "whatever") + "\nint x;\n");
  EXPECT_TRUE(hasRule(f, "bad-allow")) << dump(f);
}

TEST(LintMetaTest, MissingReasonReportsBadAllow) {
  const auto f = lintSnippet(
      std::string("// lint:") + "allow(unordered-iter)\nint x;\n");
  EXPECT_TRUE(hasRule(f, "bad-allow")) << dump(f);
}

TEST(LintMetaTest, EmptyReasonReportsBadAllow) {
  const auto f = lintSnippet(allow("unordered-iter", "") + "\nint x;\n");
  EXPECT_TRUE(hasRule(f, "bad-allow")) << dump(f);
}

TEST(LintMetaTest, UselessAnnotationReportsStaleAllow) {
  const auto f = lintSnippet(
      allow("unordered-iter", "nothing here to suppress") + "\nint x;\n");
  EXPECT_TRUE(hasRule(f, "stale-allow")) << dump(f);
}

TEST(LintMetaTest, AnnotationCoversSameAndNextLineOnly) {
  // Two lines below the annotation: NOT covered; both the finding and the
  // stale annotation must surface.
  const auto f = lintSnippet(
      "#include <random>\n"
      + allow("random-device", "too far away") + "\n"
      "int pad;\n"
      "std::random_device rd;\n");
  EXPECT_TRUE(hasRule(f, "random-device")) << dump(f);
  EXPECT_TRUE(hasRule(f, "stale-allow")) << dump(f);
}

// ------------------------------------------------------------ lexer hygiene

TEST(LintLexerTest, CommentsAndStringsAreNotCode) {
  const auto f = lintSnippet(R"cpp(
    // std::random_device rd; time(nullptr); getenv("X");
    /* for (auto& kv : someUnorderedMap) {} */
    const char* s = "std::rand() time(nullptr) getenv";
    int x = 1;
  )cpp");
  EXPECT_TRUE(f.empty()) << dump(f);
}

TEST(LintLexerTest, ReportIsSortedAndFormatted) {
  const auto f = lintSnippet(
      "#include <random>\n"
      "std::random_device a;\n"
      "std::random_device b;\n");
  ASSERT_EQ(f.size(), 2u) << dump(f);
  EXPECT_LT(f[0].line, f[1].line);
  EXPECT_EQ(avmon::lint::formatFinding(f[0]),
            "snippet.cpp:2: [random-device] std::random_device draws entropy "
            "from the host");
}

// ------------------------------------------------------------- whole tree

TEST(LintTreeTest, FullTreeIsClean) {
  Linter linter;
  std::string error;
  const std::string root = AVMON_SOURCE_DIR;
  for (const char* dir : {"/src", "/tools", "/bench", "/examples"}) {
    ASSERT_TRUE(linter.addTree(root + dir, &error)) << error;
  }
  const auto findings = linter.run();
  EXPECT_TRUE(findings.empty())
      << "unannotated determinism hazards:\n" << dump(findings);
}

}  // namespace
