// Wire-codec property suite: every closed-variant alternative survives
// encode→decode bit-exactly, and no mutation of a valid frame — truncation,
// flipped bytes, garbage of any length — can crash the decoder or slip
// through the checksum silently.
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "net/wire_codec.hpp"

namespace {

using avmon::NodeId;
using avmon::Rng;
using namespace avmon::net;
namespace sim = avmon::sim;

NodeId randomId(Rng& rng) {
  return NodeId(static_cast<std::uint32_t>(rng()),
                static_cast<std::uint16_t>(rng.below(65536)));
}

std::vector<NodeId> randomIds(Rng& rng, std::size_t count) {
  std::vector<NodeId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(randomId(rng));
  return out;
}

// ---------------------------------------------------------- message round-trip

TEST(WireCodecTest, EveryMessageAlternativeRoundTripsExactly) {
  Rng rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    const NodeId sender = randomId(rng);

    const sim::JoinMessage join{randomId(rng),
                                static_cast<int>(rng.below(1000)) - 500};
    auto bytes = encodeMessage(sender, sim::Message(join));
    auto frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    EXPECT_EQ(frame->kind, FrameKind::kOneWay);
    EXPECT_EQ(frame->sender, sender);
    EXPECT_EQ(frame->callId, 0u);
    {
      const auto& m = std::get<sim::JoinMessage>(*frame->message);
      EXPECT_EQ(m.origin, join.origin);
      EXPECT_EQ(m.weight, join.weight);
    }

    const sim::NotifyMessage notify{randomId(rng), randomId(rng)};
    bytes = encodeMessage(sender, sim::Message(notify));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    {
      const auto& m = std::get<sim::NotifyMessage>(*frame->message);
      EXPECT_EQ(m.monitor, notify.monitor);
      EXPECT_EQ(m.target, notify.target);
    }

    const sim::ForceAddMessage forceAdd{randomId(rng)};
    bytes = encodeMessage(sender, sim::Message(forceAdd));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    EXPECT_EQ(std::get<sim::ForceAddMessage>(*frame->message).origin,
              forceAdd.origin);

    const sim::PresenceMessage presence{randomId(rng)};
    bytes = encodeMessage(sender, sim::Message(presence));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    EXPECT_EQ(std::get<sim::PresenceMessage>(*frame->message).origin,
              presence.origin);

    const sim::RegisterMessage reg{randomId(rng)};
    bytes = encodeMessage(sender, sim::Message(reg));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    EXPECT_EQ(std::get<sim::RegisterMessage>(*frame->message).origin,
              reg.origin);

    sim::TextMessage text;
    text.bytes = rng.below(100000);
    const std::size_t len = rng.below(200);
    for (std::size_t i = 0; i < len; ++i) {
      text.text.push_back(static_cast<char>(rng.below(256)));
    }
    bytes = encodeMessage(sender, sim::Message(text));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->message);
    {
      const auto& m = std::get<sim::TextMessage>(*frame->message);
      EXPECT_EQ(m.text, text.text);
      EXPECT_EQ(m.bytes, text.bytes);
    }
  }
}

// ------------------------------------------------------ request round-trip

TEST(WireCodecTest, EveryRequestAlternativeRoundTripsExactly) {
  Rng rng(43);
  for (int iter = 0; iter < 200; ++iter) {
    const NodeId sender = randomId(rng);
    const std::uint64_t callId = rng();

    sim::PingRequest ping{rng.below(4096)};
    auto bytes = encodeRequest(sender, callId, sim::RpcRequest(ping));
    auto frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->request);
    EXPECT_EQ(frame->kind, FrameKind::kRpcRequest);
    EXPECT_EQ(frame->sender, sender);
    EXPECT_EQ(frame->callId, callId);
    EXPECT_EQ(std::get<sim::PingRequest>(*frame->request).pingBytes,
              ping.pingBytes);

    sim::CvFetchRequest fetch{rng.below(4096), rng.below(4096)};
    bytes = encodeRequest(sender, callId, sim::RpcRequest(fetch));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->request);
    {
      const auto& q = std::get<sim::CvFetchRequest>(*frame->request);
      EXPECT_EQ(q.pingBytes, fetch.pingBytes);
      EXPECT_EQ(q.responseBudgetBytes, fetch.responseBudgetBytes);
    }

    sim::SwapRequest swap;
    swap.offered = randomIds(rng, rng.below(64));
    swap.entryBytes = rng.below(64);
    swap.budgetEntries = rng.below(64);
    bytes = encodeRequest(sender, callId, sim::RpcRequest(swap));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->request);
    {
      const auto& q = std::get<sim::SwapRequest>(*frame->request);
      EXPECT_EQ(q.offered, swap.offered);
      EXPECT_EQ(q.entryBytes, swap.entryBytes);
      EXPECT_EQ(q.budgetEntries, swap.budgetEntries);
    }

    sim::MonitorPingRequest monitor{rng.below(4096)};
    bytes = encodeRequest(sender, callId, sim::RpcRequest(monitor));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->request);
    EXPECT_EQ(std::get<sim::MonitorPingRequest>(*frame->request).pingBytes,
              monitor.pingBytes);
  }
}

// ----------------------------------------------------- response round-trip

TEST(WireCodecTest, EveryResponseAlternativeRoundTripsExactly) {
  Rng rng(44);
  for (int iter = 0; iter < 200; ++iter) {
    const NodeId sender = randomId(rng);
    const std::uint64_t callId = rng();

    auto bytes =
        encodeResponse(sender, callId, sim::RpcResponse(sim::PingResponse{}));
    auto frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->response);
    EXPECT_EQ(frame->kind, FrameKind::kRpcResponse);
    EXPECT_EQ(frame->callId, callId);
    EXPECT_TRUE(std::holds_alternative<sim::PingResponse>(*frame->response));

    sim::CvFetchResponse fetch;
    fetch.view = randomIds(rng, rng.below(64));
    bytes = encodeResponse(sender, callId, sim::RpcResponse(fetch));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->response);
    EXPECT_EQ(std::get<sim::CvFetchResponse>(*frame->response).view,
              fetch.view);

    sim::SwapResponse swap;
    swap.given = randomIds(rng, rng.below(64));
    bytes = encodeResponse(sender, callId, sim::RpcResponse(swap));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->response);
    EXPECT_EQ(std::get<sim::SwapResponse>(*frame->response).given, swap.given);

    sim::MonitorPingResponse ack{rng.chance(0.5)};
    bytes = encodeResponse(sender, callId, sim::RpcResponse(ack));
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->response);
    EXPECT_EQ(std::get<sim::MonitorPingResponse>(*frame->response).acknowledged,
              ack.acknowledged);
  }
}

// ------------------------------------------------------ control round-trip

TEST(WireCodecTest, ControlCommandsRoundTrip) {
  Rng rng(45);
  const NodeId sender = randomId(rng);

  ControlJoin join;
  join.firstJoin = false;
  join.bootstrap = randomId(rng);
  auto bytes = encodeControl(sender, 7, ControlCommand(join));
  auto frame = decodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame && frame->control);
  EXPECT_EQ(frame->kind, FrameKind::kControl);
  EXPECT_EQ(frame->callId, 7u);
  {
    const auto& c = std::get<ControlJoin>(*frame->control);
    EXPECT_EQ(c.firstJoin, join.firstJoin);
    EXPECT_EQ(c.bootstrap, join.bootstrap);
  }

  for (const auto& command :
       {ControlCommand(ControlLeave{}), ControlCommand(ControlPing{}),
        ControlCommand(ControlStart{})}) {
    bytes = encodeControl(sender, 9, command);
    frame = decodeFrame(bytes.data(), bytes.size());
    ASSERT_TRUE(frame && frame->control);
    EXPECT_EQ(frame->control->index(), command.index());
  }

  bytes = encodeControlAck(sender, 11);
  frame = decodeFrame(bytes.data(), bytes.size());
  ASSERT_TRUE(frame);
  EXPECT_EQ(frame->kind, FrameKind::kControlAck);
  EXPECT_EQ(frame->callId, 11u);
  EXPECT_FALSE(frame->message || frame->request || frame->response ||
               frame->control);
}

// ----------------------------------------------------------------- rejection

std::vector<std::uint8_t> sampleFrame(Rng& rng) {
  sim::SwapRequest swap;
  swap.offered = randomIds(rng, 5);
  swap.entryBytes = 8;
  swap.budgetEntries = 5;
  return encodeRequest(randomId(rng), rng(), sim::RpcRequest(swap));
}

TEST(WireCodecTest, EveryTruncationOfAValidFrameIsRejected) {
  Rng rng(46);
  const auto bytes = sampleFrame(rng);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decodeFrame(bytes.data(), len)) << "prefix length " << len;
  }
  EXPECT_TRUE(decodeFrame(bytes.data(), bytes.size()));
}

TEST(WireCodecTest, EverySingleByteCorruptionIsRejected) {
  // Any one-byte flip lands in either the header checks or the FNV
  // checksum; nothing corrupt may decode.
  Rng rng(47);
  auto bytes = sampleFrame(rng);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] ^= 0x5A;
    EXPECT_FALSE(decodeFrame(corrupt.data(), corrupt.size())) << "byte " << i;
  }
}

TEST(WireCodecTest, TrailingBytesAreRejected) {
  Rng rng(48);
  auto bytes = sampleFrame(rng);
  bytes.push_back(0);
  EXPECT_FALSE(decodeFrame(bytes.data(), bytes.size()));
}

TEST(WireCodecTest, ForeignVersionIsRejected) {
  Rng rng(49);
  auto bytes = sampleFrame(rng);
  bytes[2] = kWireVersion + 1;
  EXPECT_FALSE(decodeFrame(bytes.data(), bytes.size()));
}

TEST(WireCodecTest, RandomGarbageNeverDecodesOrCrashes) {
  // Fuzz-style loop: random buffers of random lengths. The checksum makes
  // an accidental decode astronomically unlikely; mostly this asserts the
  // bounds-checked reader never reads past the buffer (the ASan job runs
  // this suite too).
  Rng rng(50);
  std::vector<std::uint8_t> buf;
  for (int iter = 0; iter < 5000; ++iter) {
    buf.resize(rng.below(128));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    EXPECT_FALSE(decodeFrame(buf.data(), buf.size()));
  }
}

TEST(WireCodecTest, GarbageWithAValidHeaderPrefixIsStillRejected) {
  // Harder fuzz: start from a real frame, then overwrite the payload with
  // garbage and fix nothing — the checksum must catch it.
  Rng rng(51);
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = sampleFrame(rng);
    const std::size_t flips = 1 + rng.below(8);
    for (std::size_t f = 0; f < flips; ++f) {
      bytes[kHeaderBytes + rng.below(bytes.size() - kHeaderBytes)] ^=
          static_cast<std::uint8_t>(1 + rng.below(255));
    }
    EXPECT_FALSE(decodeFrame(bytes.data(), bytes.size()));
  }
}

TEST(WireCodecTest, UnknownTagWithFixedChecksumIsToleratedNotUB) {
  // A *future* alternative: valid header, valid checksum, unknown payload
  // tag. Old receivers must drop it cleanly (nullopt), not crash — that is
  // the forward-compatibility contract.
  Rng rng(52);
  auto bytes = encodeMessage(randomId(rng), sim::Message(sim::PresenceMessage{
                                                randomId(rng)}));
  bytes[kHeaderBytes] = 200;  // tag nobody speaks
  // Re-seal the checksum so only the tag is "wrong".
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 10; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x01000193u;
  }
  bytes[6] = static_cast<std::uint8_t>(h >> 24);
  bytes[7] = static_cast<std::uint8_t>(h >> 16);
  bytes[8] = static_cast<std::uint8_t>(h >> 8);
  bytes[9] = static_cast<std::uint8_t>(h);
  EXPECT_FALSE(decodeFrame(bytes.data(), bytes.size()));
}

TEST(WireCodecTest, IdCountFieldCannotDriveOversizedAllocation) {
  // A SwapRequest whose count field claims more ids than the buffer holds
  // must reject before any allocation sized by the count.
  Rng rng(53);
  sim::SwapRequest swap;
  swap.offered = randomIds(rng, 2);
  auto bytes = encodeRequest(randomId(rng), 1, sim::RpcRequest(swap));
  // Payload layout: tag(1) entryBytes(4) budgetEntries(4) count(2) ids...
  bytes[kHeaderBytes + 9] = 0xFF;
  bytes[kHeaderBytes + 10] = 0xFF;
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 10; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x01000193u;
  }
  bytes[6] = static_cast<std::uint8_t>(h >> 24);
  bytes[7] = static_cast<std::uint8_t>(h >> 16);
  bytes[8] = static_cast<std::uint8_t>(h >> 8);
  bytes[9] = static_cast<std::uint8_t>(h);
  EXPECT_FALSE(decodeFrame(bytes.data(), bytes.size()));
}

}  // namespace
