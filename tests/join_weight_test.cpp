// Join-weight semantics (Figure 1): a freshly born node spreads a JOIN of
// weight cvs; a node rejoining after downtime d spreads weight
// min(cvs, d/protocolPeriod) — it only replaces the coarse-view entries
// that the once-per-period pinging deleted while it was gone.
#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <vector>

#include "avmon/node.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon {
namespace {

class JoinWeightFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kCount = 50;

  JoinWeightFixture()
      : config_(makeConfig()),
        selector_(hashFn_, config_.k, config_.systemSize),
        net_(sim_, sim::NetworkConfig{}, Rng(9)),
        root_(10) {
    const auto bootstrap = [this](const NodeId& self) {
      for (int i = 0; i < 4; ++i) {
        if (alive_.empty()) return NodeId{};
        const NodeId pick = alive_[root_.index(alive_.size())];
        if (pick != self) return pick;
      }
      return NodeId{};
    };
    for (std::size_t i = 0; i < kCount; ++i) {
      nodes_.push_back(std::make_unique<AvmonNode>(
          NodeId::fromIndex(static_cast<std::uint32_t>(i)), config_,
          selector_, sim_, net_, bootstrap, root_.fork()));
    }
  }

  static AvmonConfig makeConfig() {
    AvmonConfig cfg = AvmonConfig::paperDefaults(kCount);
    cfg.protocolPeriod = 10 * kSecond;
    cfg.monitoringPeriod = 10 * kSecond;
    return cfg;
  }

  void joinAll() {
    for (auto& n : nodes_) {
      n->join(true);
      alive_.push_back(n->id());
    }
  }

  std::uint64_t totalJoinAdds() const {
    std::uint64_t adds = 0;
    for (const auto& n : nodes_) adds += n->metrics().joinAdds;
    return adds;
  }

  AvmonConfig config_;
  sim::Simulator sim_;
  hash::SplitMix64HashFunction hashFn_;
  HashMonitorSelector selector_;
  sim::Network net_;
  Rng root_;
  std::vector<NodeId> alive_;
  std::vector<std::unique_ptr<AvmonNode>> nodes_;
};

TEST_F(JoinWeightFixture, BirthJoinAddsUpToCvsEntries) {
  joinAll();
  sim_.runUntil(20 * kMinute);

  const std::uint64_t before = totalJoinAdds();
  // A brand-new node is born.
  auto fresh = std::make_unique<AvmonNode>(
      NodeId::fromIndex(1000), config_, selector_, sim_, net_,
      [this](const NodeId&) { return alive_[0]; }, root_.fork());
  fresh->join(true);
  sim_.runUntil(20 * kMinute + 5 * kSecond);  // before any protocol tick

  const std::uint64_t adds = totalJoinAdds() - before;
  EXPECT_GT(adds, config_.cvs / 2);  // most of the weight lands
  EXPECT_LE(adds, config_.cvs);      // never more than the initial weight
}

TEST_F(JoinWeightFixture, QuickRejoinSpreadsProportionallyToDowntime) {
  joinAll();
  sim_.runUntil(20 * kMinute);

  AvmonNode& bouncer = *nodes_[0];
  bouncer.leave();
  alive_.erase(std::remove(alive_.begin(), alive_.end(), bouncer.id()), alive_.end());

  // Down for exactly 3 protocol periods.
  sim_.runUntil(20 * kMinute + 3 * config_.protocolPeriod);
  const std::uint64_t before = totalJoinAdds();
  bouncer.join(false);
  alive_.push_back(bouncer.id());
  sim_.runUntil(20 * kMinute + 3 * config_.protocolPeriod + 5 * kSecond);

  // Rejoin weight = min(cvs, 3) = 3: at most 3 coarse views gain it via
  // the JOIN (the inherit-view shuffle does not count as joinAdds).
  EXPECT_LE(totalJoinAdds() - before, 3u);
}

TEST_F(JoinWeightFixture, LongDowntimeRestoresFullWeight) {
  joinAll();
  sim_.runUntil(20 * kMinute);

  AvmonNode& bouncer = *nodes_[0];
  bouncer.leave();
  alive_.erase(std::remove(alive_.begin(), alive_.end(), bouncer.id()), alive_.end());

  // Down far longer than cvs periods: weight is capped at cvs again.
  sim_.runUntil(20 * kMinute + 3 * static_cast<SimDuration>(config_.cvs) *
                                    config_.protocolPeriod);
  const std::uint64_t before = totalJoinAdds();
  bouncer.join(false);
  alive_.push_back(bouncer.id());
  sim_.runUntil(sim_.now() + 5 * kSecond);

  // Adds never exceed the JOIN weight; the *total* representation (stale
  // surviving pointers + fresh JOIN adds) lands back near cvs — the
  // protocol's steady-state target of "expected cvs views know x".
  EXPECT_LE(totalJoinAdds() - before, config_.cvs);
  std::size_t holders = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    for (const NodeId& id : nodes_[i]->coarseView()) {
      if (id == bouncer.id()) {
        ++holders;
        break;
      }
    }
  }
  EXPECT_GE(holders, config_.cvs / 2);
  // No tight upper bound here: at this toy scale cvs is not o(sqrt N), so
  // stale pointers can replicate via shuffling well beyond cvs before the
  // once-per-period pinging reaps them (Section 4.1's regime assumption).
  EXPECT_LE(holders, nodes_.size());
}

}  // namespace
}  // namespace avmon
