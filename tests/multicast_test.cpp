// Overlay multicast tree tests: structure invariants, delivery-probability
// math, degree caps, and the availability-aware-beats-random property.
#include <gtest/gtest.h>

#include <vector>

#include "multicast/overlay_tree.hpp"

namespace avmon::multicast {
namespace {

std::vector<Member> uniformMembers(std::size_t n, double availability) {
  std::vector<Member> m;
  for (std::uint32_t i = 0; i < n; ++i) {
    m.push_back({NodeId::fromIndex(i), availability});
  }
  return m;
}

TEST(OverlayTreeTest, RejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_THROW(OverlayTree::build({}, ParentPolicy::kRandom, 2, rng),
               std::invalid_argument);
  EXPECT_THROW(
      OverlayTree::build(uniformMembers(3, 0.5), ParentPolicy::kRandom, 0, rng),
      std::invalid_argument);
}

TEST(OverlayTreeTest, SingleMemberIsRootOnly) {
  Rng rng(1);
  const auto tree =
      OverlayTree::build(uniformMembers(1, 0.5), ParentPolicy::kRandom, 2, rng);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.parent(tree.root()).has_value());
  EXPECT_DOUBLE_EQ(tree.meanDeliveryProbability(), 1.0);
}

TEST(OverlayTreeTest, EveryNonRootHasParentAndFiniteDepth) {
  Rng rng(2);
  const auto members = uniformMembers(50, 0.8);
  const auto tree = OverlayTree::build(members, ParentPolicy::kRandom, 3, rng);
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_TRUE(tree.parent(members[i].id).has_value());
    const auto d = tree.depth(members[i].id);
    ASSERT_TRUE(d.has_value());
    EXPECT_GE(*d, 1u);
    EXPECT_LT(*d, members.size());
  }
  EXPECT_EQ(tree.depth(tree.root()), 0u);
}

TEST(OverlayTreeTest, DepthIsParentDepthPlusOne) {
  Rng rng(3);
  const auto members = uniformMembers(40, 0.9);
  const auto tree =
      OverlayTree::build(members, ParentPolicy::kMostAvailable, 4, rng);
  for (std::size_t i = 1; i < members.size(); ++i) {
    const auto parent = tree.parent(members[i].id);
    ASSERT_TRUE(parent.has_value());
    EXPECT_EQ(*tree.depth(members[i].id), *tree.depth(*parent) + 1);
  }
}

TEST(OverlayTreeTest, DeliveryProbabilityIsAncestorProduct) {
  // Deterministic chain: fanout 1 forces attachment to... fanout 1 picks
  // one random candidate, so build a 3-member tree and verify manually.
  std::vector<Member> members = {{NodeId::fromIndex(0), 0.5},
                                 {NodeId::fromIndex(1), 0.4},
                                 {NodeId::fromIndex(2), 0.3}};
  Rng rng(4);
  const auto tree = OverlayTree::build(members, ParentPolicy::kRandom, 1, rng);
  for (std::size_t i = 1; i < members.size(); ++i) {
    // Walk ancestors and multiply availabilities.
    double expect = 1.0;
    auto cur = tree.parent(members[i].id);
    while (cur) {
      for (const Member& m : members) {
        if (m.id == *cur) expect *= m.availability;
      }
      cur = tree.parent(*cur);
    }
    EXPECT_NEAR(tree.deliveryProbability(members[i].id), expect, 1e-12);
  }
}

TEST(OverlayTreeTest, UnknownIdQueriesAreSafe) {
  Rng rng(5);
  const auto tree =
      OverlayTree::build(uniformMembers(10, 0.7), ParentPolicy::kRandom, 2, rng);
  const NodeId ghost = NodeId::fromIndex(999);
  EXPECT_FALSE(tree.parent(ghost).has_value());
  EXPECT_FALSE(tree.depth(ghost).has_value());
  EXPECT_DOUBLE_EQ(tree.deliveryProbability(ghost), 0.0);
  EXPECT_EQ(tree.childCount(ghost), 0u);
}

TEST(OverlayTreeTest, DegreeCapIsRespected) {
  Rng rng(6);
  const auto members = uniformMembers(100, 0.9);
  const auto tree = OverlayTree::build(members, ParentPolicy::kMostAvailable,
                                       8, rng, /*maxChildren=*/2);
  for (const Member& m : members) {
    EXPECT_LE(tree.childCount(m.id), 2u) << m.id.toString();
  }
}

TEST(OverlayTreeTest, FractionMeetingIsMonotone) {
  Rng rng(7);
  const auto tree = OverlayTree::build(uniformMembers(60, 0.9),
                                       ParentPolicy::kBestPath, 3, rng);
  EXPECT_GE(tree.fractionMeeting(0.1), tree.fractionMeeting(0.5));
  EXPECT_GE(tree.fractionMeeting(0.5), tree.fractionMeeting(0.95));
  EXPECT_DOUBLE_EQ(tree.fractionMeeting(0.0), 1.0);
}

TEST(OverlayTreeTest, AvailabilityAwareBeatsRandomOnSkewedMembers) {
  // Half reliable (0.95), half flaky (0.3): availability-aware parent
  // selection should put flaky nodes at the leaves and win on mean
  // delivery probability.
  std::vector<Member> members;
  members.push_back({NodeId::fromIndex(0), 1.0});  // source
  for (std::uint32_t i = 1; i <= 120; ++i) {
    members.push_back({NodeId::fromIndex(i), i % 2 == 0 ? 0.95 : 0.3});
  }

  double smartSum = 0, randomSum = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng a(seed), b(seed);
    smartSum += OverlayTree::build(members, ParentPolicy::kBestPath, 4, a)
                    .meanDeliveryProbability();
    randomSum += OverlayTree::build(members, ParentPolicy::kRandom, 4, b)
                     .meanDeliveryProbability();
  }
  EXPECT_GT(smartSum, randomSum);
}

TEST(OverlayTreeTest, BestPathBeatsOrMatchesMostAvailable) {
  // kBestPath accounts for ancestor chains, so on deep trees it should be
  // at least competitive with the myopic kMostAvailable.
  std::vector<Member> members;
  members.push_back({NodeId::fromIndex(0), 1.0});
  for (std::uint32_t i = 1; i <= 150; ++i) {
    members.push_back(
        {NodeId::fromIndex(i), 0.3 + 0.65 * ((i * 7) % 10) / 10.0});
  }
  double bestPath = 0, mostAvail = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng a(seed), b(seed);
    bestPath += OverlayTree::build(members, ParentPolicy::kBestPath, 4, a)
                    .meanDeliveryProbability();
    mostAvail +=
        OverlayTree::build(members, ParentPolicy::kMostAvailable, 4, b)
            .meanDeliveryProbability();
  }
  EXPECT_GE(bestPath, mostAvail * 0.95);
}

TEST(PolicyNameTest, AllNamed) {
  EXPECT_EQ(policyName(ParentPolicy::kRandom), "random");
  EXPECT_EQ(policyName(ParentPolicy::kMostAvailable), "most-available");
  EXPECT_EQ(policyName(ParentPolicy::kBestPath), "best-path");
}

}  // namespace
}  // namespace avmon::multicast
