// Cross-model invariant sweep: every churn model × several seeds, one
// compact scenario each, asserting the protocol's universal invariants.
// This is the broad-coverage safety net; figure-specific behaviour lives
// in the dedicated tests and benches.
//
// All twelve worlds are built once, up front, through the
// ParallelScenarioRunner — on a multi-core machine the sweep's wall time
// is the slowest single run, not the sum.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

using SweepParam = std::tuple<churn::Model, std::uint64_t>;

const std::vector<SweepParam>& sweepParams() {
  static const std::vector<SweepParam> params = [] {
    std::vector<SweepParam> out;
    for (churn::Model model :
         {churn::Model::kStat, churn::Model::kSynth, churn::Model::kSynthBD,
          churn::Model::kSynthBD2, churn::Model::kPlanetLab,
          churn::Model::kOvernet}) {
      for (std::uint64_t seed : {1ull, 42ull}) out.emplace_back(model, seed);
    }
    return out;
  }();
  return params;
}

Scenario sweepScenario(const SweepParam& param) {
  Scenario s;
  s.model = std::get<0>(param);
  s.stableSize = 120;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = std::get<1>(param);
  s.hashName = "splitmix64";
  return s;
}

class ModelSeedSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static void SetUpTestSuite() {
    std::vector<Scenario> scenarios;
    scenarios.reserve(sweepParams().size());
    for (const SweepParam& p : sweepParams()) {
      scenarios.push_back(sweepScenario(p));
    }
    // Pool capped at 4 to match the suite's PROCESSORS declaration in
    // tests/CMakeLists.txt, so `ctest -j` can pack the schedule honestly.
    runners_ = new std::vector<std::unique_ptr<ScenarioRunner>>(
        ParallelScenarioRunner(4).runAll(scenarios));
  }

  static void TearDownTestSuite() {
    delete runners_;
    runners_ = nullptr;
  }

  static const ScenarioRunner& runnerFor(const SweepParam& param) {
    for (std::size_t i = 0; i < sweepParams().size(); ++i) {
      if (sweepParams()[i] == param) return *(*runners_)[i];
    }
    throw std::logic_error("unknown sweep parameter");
  }

 private:
  static std::vector<std::unique_ptr<ScenarioRunner>>* runners_;
};

std::vector<std::unique_ptr<ScenarioRunner>>* ModelSeedSweep::runners_ =
    nullptr;

TEST_P(ModelSeedSweep, UniversalInvariantsHold) {
  const auto [model, seed] = GetParam();
  const ScenarioRunner& runner = runnerFor(GetParam());

  // The generated schedule is internally consistent.
  std::string why;
  ASSERT_TRUE(runner.schedule().validate(&why)) << why;

  hash::SplitMix64HashFunction hashFn;
  HashMonitorSelector selector(hashFn, runner.config().k, runner.effectiveN());

  std::size_t totalPs = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);

    // Coarse view: bounded, unique, never self.
    EXPECT_LE(node.coarseView().size(), runner.config().cvs);
    std::unordered_set<NodeId> unique(node.coarseView().begin(),
                                      node.coarseView().end());
    EXPECT_EQ(unique.size(), node.coarseView().size());
    EXPECT_FALSE(unique.count(node.id()));

    // PS/TS: sound (verified against the public scheme), never self.
    for (const NodeId& m : node.pingingSet()) {
      ASSERT_TRUE(selector.isMonitor(m, node.id()))
          << churn::modelName(model) << " seed " << seed;
    }
    for (const auto& [t, rec] : node.targetSet()) {
      ASSERT_TRUE(selector.isMonitor(node.id(), t));
      ASSERT_NE(rec.history, nullptr);
    }
    totalPs += node.pingingSet().size();

    // Memory identity.
    EXPECT_EQ(node.memoryEntries(),
              node.coarseView().size() + node.pingingSet().size() +
                  node.targetSet().size());
  }
  // The system did discover monitoring relations under every model.
  EXPECT_GT(totalPs, 0u) << churn::modelName(model);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSeedSweep,
    ::testing::Combine(
        ::testing::Values(churn::Model::kStat, churn::Model::kSynth,
                          churn::Model::kSynthBD, churn::Model::kSynthBD2,
                          churn::Model::kPlanetLab, churn::Model::kOvernet),
        ::testing::Values<std::uint64_t>(1, 42)),
    [](const ::testing::TestParamInfo<ModelSeedSweep::ParamType>& info) {
      std::string name = churn::modelName(std::get<0>(info.param)) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace avmon::experiments
