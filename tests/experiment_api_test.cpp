// The protocol-agnostic experiment API: protocol registry, declarative
// scenario specs (round-trip property), sweep expansion determinism,
// Scenario::validate(), and the metrics sinks' stream-failure contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "experiments/metrics.hpp"
#include "experiments/protocol_registry.hpp"
#include "experiments/scenario.hpp"
#include "experiments/spec.hpp"
#include "experiments/streaming/reducer_registry.hpp"

namespace avmon::experiments {
namespace {

// ---- registry ----

TEST(ProtocolRegistryTest, EnumeratesAllFiveProtocols) {
  const auto names = ProtocolRegistry::instance().names();
  const std::vector<std::string> expected = {"avmon", "broadcast", "central",
                                             "dht_ring", "self_report"};
  EXPECT_EQ(names, expected);
}

TEST(ProtocolRegistryTest, CreateInstantiatesEveryRegisteredProtocol) {
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const auto protocol = ProtocolRegistry::instance().create(name);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->name(), name);
  }
}

TEST(ProtocolRegistryTest, UnknownNameListsKnownProtocols) {
  try {
    ProtocolRegistry::instance().create("gossipmon");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gossipmon"), std::string::npos);
    EXPECT_NE(what.find("avmon"), std::string::npos);
    EXPECT_NE(what.find("self_report"), std::string::npos);
  }
}

TEST(ProtocolRegistryTest, DuplicateRegistrationThrows) {
  EXPECT_THROW(ProtocolRegistry::instance().add(
                   {"avmon", "dup", 1, [] { return nullptr; }}),
               std::invalid_argument);
}

TEST(ProtocolRegistryTest, OnlyAvmonIsMultiShard) {
  for (const std::string& name : ProtocolRegistry::instance().names()) {
    const ProtocolFactory* f = ProtocolRegistry::instance().find(name);
    ASSERT_NE(f, nullptr) << name;
    EXPECT_EQ(f->maxShards, name == "avmon" ? 0u : 1u) << name;
  }
}

// ---- spec round-trip ----

bool faultsEqual(const sim::FaultPlan& a, const sim::FaultPlan& b) {
  if (a.partitions.size() != b.partitions.size() ||
      a.bursts.size() != b.bursts.size() ||
      a.latencyWindows.size() != b.latencyWindows.size())
    return false;
  for (std::size_t i = 0; i < a.partitions.size(); ++i) {
    if (a.partitions[i].start != b.partitions[i].start ||
        a.partitions[i].end != b.partitions[i].end ||
        a.partitions[i].groups != b.partitions[i].groups)
      return false;
  }
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    if (a.bursts[i].at != b.bursts[i].at ||
        a.bursts[i].duration != b.bursts[i].duration ||
        a.bursts[i].fraction != b.bursts[i].fraction)
      return false;
  }
  for (std::size_t i = 0; i < a.latencyWindows.size(); ++i) {
    if (a.latencyWindows[i].start != b.latencyWindows[i].start ||
        a.latencyWindows[i].end != b.latencyWindows[i].end ||
        a.latencyWindows[i].minLatency != b.latencyWindows[i].minLatency ||
        a.latencyWindows[i].maxLatency != b.latencyWindows[i].maxLatency)
      return false;
  }
  return a.geo.regions == b.geo.regions && a.geo.intraMin == b.geo.intraMin &&
         a.geo.intraMax == b.geo.intraMax && a.geo.interMin == b.geo.interMin &&
         a.geo.interMax == b.geo.interMax;
}

bool scenarioEquals(const Scenario& a, const Scenario& b) {
  const bool configEqual =
      a.configOverride.has_value() == b.configOverride.has_value() &&
      (!a.configOverride || (a.configOverride->cvs == b.configOverride->cvs &&
                             a.configOverride->k == b.configOverride->k));
  return a.protocol == b.protocol && a.model == b.model &&
         a.stableSize == b.stableSize && a.horizon == b.horizon &&
         a.warmup == b.warmup && a.controlFraction == b.controlFraction &&
         a.seed == b.seed && a.hashName == b.hashName && configEqual &&
         a.pr2 == b.pr2 && a.forgetful == b.forgetful &&
         a.forgetfulEwma == b.forgetfulEwma &&
         a.overreportFraction == b.overreportFraction &&
         a.messageDropProbability == b.messageDropProbability &&
         a.rpcFailProbability == b.rpcFailProbability &&
         a.measured == b.measured && a.shards == b.shards &&
         a.deferredRpc == b.deferredRpc &&
         a.metrics.window == b.metrics.window &&
         a.metrics.reducers == b.metrics.reducers &&
         a.metrics.quantiles == b.metrics.quantiles &&
         faultsEqual(a.faults, b.faults) &&
         a.attack.collusion == b.attack.collusion &&
         a.attack.victims == b.attack.victims &&
         a.attack.forgetfulFraction == b.attack.forgetfulFraction &&
         a.shuffle == b.shuffle && a.notifyDedupMax == b.notifyDedupMax &&
         a.transport == b.transport && a.udp == b.udp;
}

TEST(ScenarioSpecTest, DefaultScenarioRoundTrips) {
  const Scenario s;
  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_TRUE(scenarioEquals(s, back));
  EXPECT_EQ(s.toSpec(), back.toSpec());
}

TEST(ScenarioSpecTest, RoundTripIsFixedPointProperty) {
  // Pseudo-randomized scenarios over every spec-representable axis:
  // parse(serialize(s)) must reproduce s, and serialize must be a fixed
  // point from the first iteration on.
  const churn::Model models[] = {churn::Model::kStat, churn::Model::kSynth,
                                 churn::Model::kSynthBD,
                                 churn::Model::kSynthBD2,
                                 churn::Model::kPlanetLab,
                                 churn::Model::kOvernet};
  const char* hashes[] = {"md5", "sha1", "splitmix64"};
  const MeasuredSet measured[] = {
      MeasuredSet::kAuto, MeasuredSet::kControlGroup,
      MeasuredSet::kBornAfterWarmup, MeasuredSet::kAll};
  const auto protocols = ProtocolRegistry::instance().names();

  std::uint64_t x = 0x9E3779B97F4A7C15ULL;
  const auto nextRand = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  for (int i = 0; i < 200; ++i) {
    Scenario s;
    s.protocol = protocols[nextRand() % protocols.size()];
    s.model = models[nextRand() % 6];
    s.stableSize = 1 + nextRand() % 5000;
    s.horizon = 1 + static_cast<SimDuration>(nextRand() % (5 * kHour));
    s.warmup = static_cast<SimTime>(nextRand() % (2 * kHour));
    s.controlFraction = static_cast<double>(nextRand() % 1000) / 999.0;
    s.seed = nextRand();
    s.hashName = hashes[nextRand() % 3];
    s.pr2 = nextRand() % 2 == 0;
    s.forgetful = nextRand() % 2 == 0;
    s.forgetfulEwma = nextRand() % 2 == 0;
    s.overreportFraction = static_cast<double>(nextRand() % 100) / 99.0;
    s.messageDropProbability = static_cast<double>(nextRand() % 100) / 99.0;
    s.rpcFailProbability = 1.0 / static_cast<double>(1 + nextRand() % 7);
    s.measured = measured[nextRand() % 4];
    s.shards = static_cast<unsigned>(nextRand() % 9);
    s.deferredRpc = nextRand() % 2 == 0;
    if (nextRand() % 3 == 0) {
      s.transport = TransportKind::kUdp;
      s.udp.portBase = static_cast<std::uint16_t>(1024 + nextRand() % 60000);
      s.udp.retryMax = 1 + static_cast<std::uint32_t>(nextRand() % 6);
      s.udp.backoffMs = 1 + static_cast<std::uint32_t>(nextRand() % 200);
      s.udp.backoffCapMs =
          s.udp.backoffMs * (1 + static_cast<std::uint32_t>(nextRand() % 8));
      s.udp.timeScale = static_cast<double>(1 + nextRand() % 120);
    }
    s.metrics.window =
        nextRand() % 3 == 0 ? 0 : static_cast<SimDuration>(nextRand() % kHour);
    if (nextRand() % 2 == 0) {
      s.metrics.reducers.clear();
      const auto reducers = streaming::ReducerRegistry::instance().names();
      for (const std::string& r : reducers) {
        if (nextRand() % 2 == 0) s.metrics.reducers.push_back(r);
      }
    }
    if (nextRand() % 3 == 0) {
      s.metrics.quantiles.clear();
      const std::size_t count = 1 + nextRand() % 4;
      for (std::size_t q = 0; q < count; ++q) {
        s.metrics.quantiles.push_back(
            static_cast<double>(1 + nextRand() % 999) / 1000.0);
      }
    }
    // Fault schedule and adversary keys (all optional; absent by default).
    if (nextRand() % 3 == 0) {
      const std::size_t count = 1 + nextRand() % 3;
      for (std::size_t p = 0; p < count; ++p) {
        sim::PartitionWindow w;
        w.start = static_cast<SimTime>(nextRand() % kHour);
        w.end = w.start + 1000 * (1 + static_cast<SimDuration>(nextRand() % 3600));
        w.groups = 2 + static_cast<std::uint32_t>(nextRand() % 6);
        s.faults.partitions.push_back(w);
      }
    }
    if (nextRand() % 3 == 0) {
      sim::BurstSpec b;
      b.at = static_cast<SimTime>(nextRand() % kHour);
      b.duration = 1000 * (1 + static_cast<SimDuration>(nextRand() % 600));
      b.fraction = static_cast<double>(1 + nextRand() % 99) / 99.0;
      s.faults.bursts.push_back(b);
    }
    if (nextRand() % 3 == 0) {
      sim::LatencyWindow w;
      w.start = static_cast<SimTime>(nextRand() % kHour);
      w.end = w.start + 1000 * (1 + static_cast<SimDuration>(nextRand() % 3600));
      w.minLatency = 1 + static_cast<SimDuration>(nextRand() % 100);
      w.maxLatency = w.minLatency + static_cast<SimDuration>(nextRand() % 400);
      s.faults.latencyWindows.push_back(w);
    }
    if (nextRand() % 3 == 0) {
      s.faults.geo.regions = 2 + static_cast<std::uint32_t>(nextRand() % 7);
      s.faults.geo.intraMin = 1 + static_cast<SimDuration>(nextRand() % 20);
      s.faults.geo.intraMax =
          s.faults.geo.intraMin + static_cast<SimDuration>(nextRand() % 30);
      s.faults.geo.interMin = 1 + static_cast<SimDuration>(nextRand() % 100);
      s.faults.geo.interMax =
          s.faults.geo.interMin + static_cast<SimDuration>(nextRand() % 200);
    }
    if (nextRand() % 3 == 0) {
      s.attack.collusion = 1 + static_cast<std::uint32_t>(nextRand() % 12);
      s.attack.victims = static_cast<std::uint32_t>(nextRand() % 8);
    }
    if (nextRand() % 3 == 0) {
      s.attack.forgetfulFraction =
          static_cast<double>(1 + nextRand() % 99) / 99.0;
    }
    if (nextRand() % 3 == 0) {
      s.shuffle = nextRand() % 2 == 0 ? avmon::ShufflePolicy::kUnionSample
                                      : avmon::ShufflePolicy::kSwap;
    }
    if (nextRand() % 3 == 0) {
      s.notifyDedupMax = 1 + static_cast<std::uint32_t>(nextRand() % 64);
    }

    const std::string spec1 = s.toSpec();
    const Scenario s2 = Scenario::fromSpec(spec1);
    const std::string spec2 = s2.toSpec();
    EXPECT_TRUE(scenarioEquals(s, s2)) << "iteration " << i << "\n" << spec1;
    EXPECT_EQ(spec1, spec2) << "iteration " << i;
  }
}

TEST(ScenarioSpecTest, CvsAndKOverridesRoundTrip) {
  const std::string spec =
      "model = SYNTH\nn = 500\nhorizon_min = 90\nwarmup_min = 30\n"
      "cvs = 30\nk = 7\n";
  const Scenario s = Scenario::fromSpec(spec);
  ASSERT_TRUE(s.configOverride.has_value());
  EXPECT_EQ(s.configOverride->cvs, 30u);
  EXPECT_EQ(s.configOverride->k, 7u);
  // Everything but the pinned knobs keeps paper defaults for N=500.
  const AvmonConfig defaults = AvmonConfig::paperDefaults(500);
  EXPECT_EQ(s.configOverride->protocolPeriod, defaults.protocolPeriod);

  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_TRUE(scenarioEquals(s, back));
  EXPECT_EQ(s.toSpec(), back.toSpec());
}

TEST(ScenarioSpecTest, CommentsAndBlankLinesAreIgnored) {
  const Scenario s = Scenario::fromSpec(
      "# a comment line\n\n  model = SYNTH-BD  # trailing comment\n"
      "\t n\t=\t250 \n");
  EXPECT_EQ(s.model, churn::Model::kSynthBD);
  EXPECT_EQ(s.stableSize, 250u);
}

TEST(ScenarioSpecTest, MillisecondPrecisionSurvives) {
  Scenario s;
  s.horizon = 90 * kMinute + 123;  // not minute-aligned
  s.warmup = 30 * kMinute;
  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_EQ(back.horizon, s.horizon);
  EXPECT_EQ(back.warmup, s.warmup);
  EXPECT_NE(s.toSpec().find("horizon_ms"), std::string::npos);
  EXPECT_NE(s.toSpec().find("warmup_min"), std::string::npos);
}

TEST(ScenarioSpecTest, ErrorsNameTheOffendingLine) {
  const auto expectError = [](const std::string& spec,
                              const std::string& fragment) {
    try {
      SweepSpec::parse(spec);
      FAIL() << "expected invalid_argument for:\n" << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expectError("bogus_key = 1\n", "unknown key 'bogus_key'");
  expectError("model = STAT\nmodel = SYNTH\n", "duplicate key");
  expectError("model STAT\n", "expected 'key = value'");
  expectError("n = twelve\n", "unsigned integer");
  expectError("model = FOO\n", "unknown model");
  expectError("measured = sometimes\n", "measured");
  expectError("pr2 = maybe\n", "boolean");
  expectError("faults.partition = 600\n", "t0:t1:groups");
  expectError("faults.burst = 100:60\n", "t:duration:fraction");
  expectError("faults.latency = 0:60:30\n", "t0:t1:min_ms:max_ms");
  expectError("faults.geo = 4:5:20\n", "regions:intra_min_ms");
  expectError("shuffle = shake\n", "union-sample|swap");
  // The scalar `overreport` and the sweep axis `attack.overreport` both
  // drive overreportFraction — naming both is ambiguous, not a merge.
  expectError("overreport = 0.1\nattack.overreport = 0.2, 0.4\n", "sweep");
}

TEST(ScenarioSpecTest, FromSpecRejectsSweeps) {
  EXPECT_THROW(Scenario::fromSpec("seed = 1, 2\n"), std::invalid_argument);
}

TEST(ScenarioSpecTest, StreamingMetricsKeysParseAndStayOptional) {
  const Scenario s = Scenario::fromSpec(
      "model = STAT\nn = 100\nmetrics.window = 45.5\n"
      "metrics.reducers = summary, traffic\n"
      "metrics.quantiles = 0.25, 0.9\n");
  EXPECT_EQ(s.metrics.window, static_cast<SimDuration>(45500));
  EXPECT_TRUE(s.metrics.enabled());
  ASSERT_EQ(s.metrics.reducers.size(), 2u);
  EXPECT_EQ(s.metrics.reducers[0], "summary");
  EXPECT_EQ(s.metrics.reducers[1], "traffic");
  ASSERT_EQ(s.metrics.quantiles.size(), 2u);
  EXPECT_EQ(s.metrics.quantiles[0], 0.25);
  EXPECT_EQ(s.metrics.quantiles[1], 0.9);
  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_TRUE(scenarioEquals(s, back));

  // Pre-streaming specs serialize byte-unchanged: no metrics.* keys appear
  // unless a scenario opted in.
  EXPECT_EQ(Scenario{}.toSpec().find("metrics."), std::string::npos);
  EXPECT_FALSE(Scenario{}.metrics.enabled());
}

TEST(ScenarioSpecTest, TransportKeysParseRoundTripAndStayOptional) {
  const Scenario s = Scenario::fromSpec(
      "model = STAT\nn = 120\ntransport = udp\n"
      "udp.port_base = 43000\nudp.retry_max = 3\n"
      "udp.backoff_ms = 25\nudp.backoff_cap_ms = 400\n"
      "udp.time_scale = 30\n");
  EXPECT_EQ(s.transport, TransportKind::kUdp);
  EXPECT_EQ(s.udp.portBase, 43000);
  EXPECT_EQ(s.udp.retryMax, 3u);
  EXPECT_EQ(s.udp.backoffMs, 25u);
  EXPECT_EQ(s.udp.backoffCapMs, 400u);
  EXPECT_DOUBLE_EQ(s.udp.timeScale, 30.0);
  EXPECT_NO_THROW(s.validate());

  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_TRUE(scenarioEquals(s, back));
  EXPECT_EQ(s.toSpec(), back.toSpec());

  // Pre-live specs serialize byte-unchanged: no transport/udp keys appear
  // unless a scenario opted into the live lane.
  const std::string defaults = Scenario{}.toSpec();
  EXPECT_EQ(defaults.find("transport"), std::string::npos);
  EXPECT_EQ(defaults.find("udp."), std::string::npos);
}

TEST(ScenarioValidateTest, UdpKeysUnderSimTransportAreRejected) {
  // Non-default udp.* configuration on a sim spec is dead configuration —
  // almost certainly a live spec missing `transport = udp`.
  Scenario s;
  s.udp.portBase = 43000;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  try {
    s.validate();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("transport = udp"),
              std::string::npos);
  }
}

TEST(ScenarioValidateTest, LiveLaneChecksItsOwnKnobs) {
  Scenario live;
  live.transport = TransportKind::kUdp;
  EXPECT_NO_THROW(live.validate());

  Scenario s = live;
  s.udp.portBase = 80;  // privileged range
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = live;
  s.udp.retryMax = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = live;
  s.udp.backoffCapMs = 10;  // below backoff_ms = 50
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = live;
  s.udp.timeScale = 0.0;
  EXPECT_THROW(s.validate(), std::invalid_argument);

  s = live;
  s.shards = 4;  // sharding is a sim-lane concept
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ScenarioValidateTest, RunnerRefusesLiveSpecs) {
  // ScenarioRunner executes the simulated lane only; a valid udp spec must
  // be routed through tools/avmon_live instead of silently simulated.
  Scenario s;
  s.transport = TransportKind::kUdp;
  s.stableSize = 20;
  EXPECT_NO_THROW(s.validate());
  EXPECT_THROW(ScenarioRunner runner(s), std::invalid_argument);
}

TEST(ScenarioSpecTest, FaultAndAttackKeysParseRoundTripAndStayOptional) {
  const Scenario s = Scenario::fromSpec(
      "model = SYNTH\nn = 200\n"
      "faults.partition = 2400:3000:2; 3600:3900:4\n"
      "faults.burst = 2700:300:0.25\n"
      "faults.latency = 1800:2400:30:300\n"
      "faults.geo = 4:5:20:50:150\n"
      "attack.collusion = 6\nattack.victims = 4\n"
      "attack.forgetful = 0.2\n");
  ASSERT_EQ(s.faults.partitions.size(), 2u);
  EXPECT_EQ(s.faults.partitions[0].start, 2400 * kSecond);
  EXPECT_EQ(s.faults.partitions[0].end, 3000 * kSecond);
  EXPECT_EQ(s.faults.partitions[0].groups, 2u);
  EXPECT_EQ(s.faults.partitions[1].groups, 4u);
  ASSERT_EQ(s.faults.bursts.size(), 1u);
  EXPECT_EQ(s.faults.bursts[0].at, 2700 * kSecond);
  EXPECT_EQ(s.faults.bursts[0].duration, 300 * kSecond);
  EXPECT_DOUBLE_EQ(s.faults.bursts[0].fraction, 0.25);
  ASSERT_EQ(s.faults.latencyWindows.size(), 1u);
  EXPECT_EQ(s.faults.latencyWindows[0].minLatency, 30);
  EXPECT_EQ(s.faults.latencyWindows[0].maxLatency, 300);
  EXPECT_EQ(s.faults.geo.regions, 4u);
  EXPECT_EQ(s.faults.geo.interMax, 150);
  EXPECT_EQ(s.attack.collusion, 6u);
  EXPECT_EQ(s.attack.victims, 4u);
  EXPECT_DOUBLE_EQ(s.attack.forgetfulFraction, 0.2);
  EXPECT_NO_THROW(s.validate());

  const Scenario back = Scenario::fromSpec(s.toSpec());
  EXPECT_TRUE(scenarioEquals(s, back));
  EXPECT_EQ(s.toSpec(), back.toSpec());

  // Pre-fault specs serialize byte-unchanged: no fault/attack keys appear
  // unless a scenario armed them, so every historical spec (and golden
  // fingerprint) is untouched.
  const std::string defaults = Scenario{}.toSpec();
  EXPECT_EQ(defaults.find("faults."), std::string::npos);
  EXPECT_EQ(defaults.find("attack."), std::string::npos);
  EXPECT_TRUE(Scenario{}.faults.empty());
  EXPECT_FALSE(Scenario{}.attack.enabled());
}

TEST(ScenarioSpecTest, FormatDoubleIsShortestExact) {
  EXPECT_EQ(formatDouble(0.1), "0.1");
  EXPECT_EQ(formatDouble(0.0), "0");
  EXPECT_EQ(formatDouble(1.0), "1");
  const double awkward = 1.0 / 3.0;
  EXPECT_EQ(std::stod(formatDouble(awkward)), awkward);
}

// ---- sweep expansion ----

TEST(SweepSpecTest, ExpansionCountAndOrderAreDeterministic) {
  const std::string text =
      "protocol = avmon, broadcast\n"
      "model = STAT, SYNTH\n"
      "n = 50, 80\n"
      "seed = 1, 2, 3\n"
      "drop = 0, 0.05\n"
      "horizon_min = 60\nwarmup_min = 20\n";
  const SweepSpec sweep = SweepSpec::parse(text);
  EXPECT_EQ(sweep.pointCount(), 2u * 2u * 2u * 3u * 2u);
  const auto scenarios = sweep.expand();
  ASSERT_EQ(scenarios.size(), 48u);

  // Nested order: protocol > model > n > seed > drop (drop innermost).
  EXPECT_EQ(scenarios[0].protocol, "avmon");
  EXPECT_EQ(scenarios[0].model, churn::Model::kStat);
  EXPECT_EQ(scenarios[0].stableSize, 50u);
  EXPECT_EQ(scenarios[0].seed, 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].messageDropProbability, 0.0);
  EXPECT_DOUBLE_EQ(scenarios[1].messageDropProbability, 0.05);
  EXPECT_EQ(scenarios[2].seed, 2u);
  EXPECT_EQ(scenarios[6].stableSize, 80u);
  EXPECT_EQ(scenarios[12].model, churn::Model::kSynth);
  EXPECT_EQ(scenarios[24].protocol, "broadcast");
  EXPECT_EQ(scenarios[47].protocol, "broadcast");
  EXPECT_EQ(scenarios[47].seed, 3u);

  // Same text, same expansion — bit for bit.
  const auto again = SweepSpec::parse(text).expand();
  ASSERT_EQ(again.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_TRUE(scenarioEquals(scenarios[i], again[i])) << i;
    EXPECT_EQ(scenarios[i].toSpec(), again[i].toSpec()) << i;
  }
}

TEST(SweepSpecTest, AttackOverreportIsTheInnermostSweepAxis) {
  const SweepSpec sweep = SweepSpec::parse(
      "model = STAT\nn = 60\nseed = 1, 2\n"
      "attack.overreport = 0, 0.5\n");
  EXPECT_EQ(sweep.pointCount(), 4u);
  const auto scenarios = sweep.expand();
  ASSERT_EQ(scenarios.size(), 4u);
  // Nested order: ... > seed > drop > overreport (overreport innermost).
  EXPECT_EQ(scenarios[0].seed, 1u);
  EXPECT_DOUBLE_EQ(scenarios[0].overreportFraction, 0.0);
  EXPECT_DOUBLE_EQ(scenarios[1].overreportFraction, 0.5);
  EXPECT_EQ(scenarios[1].seed, 1u);
  EXPECT_EQ(scenarios[2].seed, 2u);
  EXPECT_DOUBLE_EQ(scenarios[3].overreportFraction, 0.5);

  // The scalar spelling feeds the same field as a one-point axis.
  const auto scalar = SweepSpec::parse("model = STAT\nn = 60\n"
                                       "overreport = 0.3\n")
                          .expand();
  ASSERT_EQ(scalar.size(), 1u);
  EXPECT_DOUBLE_EQ(scalar[0].overreportFraction, 0.3);
}

TEST(SweepSpecTest, AbsentAxesDefaultToSingletons) {
  const SweepSpec sweep = SweepSpec::parse("model = SYNTH\nn = 77\n");
  EXPECT_EQ(sweep.pointCount(), 1u);
  const auto scenarios = sweep.expand();
  ASSERT_EQ(scenarios.size(), 1u);
  EXPECT_EQ(scenarios[0].protocol, "avmon");
  EXPECT_EQ(scenarios[0].stableSize, 77u);
}

// ---- validate ----

TEST(ScenarioValidateTest, DefaultIsValid) {
  EXPECT_NO_THROW(Scenario{}.validate());
}

TEST(ScenarioValidateTest, ActionableErrors) {
  const auto expectError = [](const std::function<void(Scenario&)>& mutate,
                              const std::string& fragment) {
    Scenario s;
    mutate(s);
    try {
      s.validate();
      FAIL() << "expected invalid_argument containing '" << fragment << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expectError([](Scenario& s) { s.protocol = "nope"; }, "unknown protocol");
  expectError([](Scenario& s) { s.stableSize = 0; }, "stableSize");
  expectError([](Scenario& s) { s.horizon = 0; }, "horizon");
  expectError([](Scenario& s) { s.warmup = s.horizon; }, "warmup");
  expectError([](Scenario& s) { s.hashName = "crc32"; }, "unknown hash");
  expectError([](Scenario& s) { s.controlFraction = 1.5; },
              "controlFraction");
  expectError([](Scenario& s) { s.messageDropProbability = -0.1; },
              "messageDropProbability");
  expectError(
      [](Scenario& s) {
        s.deferredRpc = false;
        s.shards = 4;
      },
      "instantaneous RPC");
  expectError(
      [](Scenario& s) {
        s.protocol = "broadcast";
        s.shards = 2;
      },
      "shared global state");
  expectError([](Scenario& s) { s.metrics.window = -1; }, "metrics.window");
  expectError([](Scenario& s) { s.metrics.reducers = {"nope"}; },
              "unknown reducer");
  expectError([](Scenario& s) { s.metrics.quantiles = {1.5}; },
              "metrics.quantiles");
  expectError([](Scenario& s) { s.faults.partitions.push_back({600, 500, 2}); },
              "partition window must end after it starts");
  expectError([](Scenario& s) { s.faults.bursts.push_back({100, 60, 1.5}); },
              "burst fraction");
  expectError(
      [](Scenario& s) { s.faults.latencyWindows.push_back({0, 600, 300, 30}); },
      "latency window band");
  expectError(
      [](Scenario& s) {
        s.faults.geo.regions = 1;
        s.faults.geo.intraMin = s.faults.geo.intraMax = 5;
        s.faults.geo.interMin = s.faults.geo.interMax = 50;
      },
      "at least 2 regions");
  expectError([](Scenario& s) { s.attack.forgetfulFraction = 1.5; },
              "attack.forgetful");
  expectError([](Scenario& s) { s.attack.victims = 3; }, "attack.collusion");
  expectError([](Scenario& s) { s.notifyDedupMax = 0; }, "notify_dedup_max");
}

TEST(ScenarioValidateTest, TraceModelsIgnoreStableSize) {
  Scenario s;
  s.model = churn::Model::kPlanetLab;
  s.stableSize = 0;
  EXPECT_NO_THROW(s.validate());
}

TEST(ScenarioValidateTest, RunnerValidatesOnConstruction) {
  Scenario s;
  s.protocol = "no_such_scheme";
  EXPECT_THROW(ScenarioRunner{s}, std::invalid_argument);
}

// ---- metrics sinks ----

MetricSet tinySet(const std::string& protocol, std::uint64_t seed) {
  MetricSet set;
  set.protocol = protocol;
  set.model = "STAT";
  set.hashName = "splitmix64";
  set.effectiveN = 10;
  set.seed = seed;
  set.discoverySeconds = {1.0, 2.0, 3.0};
  set.discoveredFraction = 1.0;
  set.memoryEntries = {5.0, 6.0};
  set.outgoingBytesPerSecond = {10.0};
  set.perNode.push_back({NodeId::fromIndex(0), 100, 10, 5, 42, 0, 1.5});
  return set;
}

TEST(MetricsSinkTest, CsvSinkReportsStreamFailureOnClose) {
  CsvSink sink("/nonexistent-dir-for-avmon-test/prefix");
  sink.add(tinySet("avmon", 1));
  try {
    sink.close();
    FAIL() << "expected runtime_error for unwritable CSV target";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-for-avmon-test"),
              std::string::npos)
        << e.what();
  }
}

TEST(MetricsSinkTest, CsvSinkWritesAllFilesAndPerNodeRows) {
  const std::string prefix = ::testing::TempDir() + "avmon_csv_sink";
  CsvSink sink(prefix);
  sink.add(tinySet("avmon", 1));
  sink.close();
  ASSERT_EQ(sink.writtenFiles().size(), 4u);
  for (const std::string& path : sink.writtenFiles()) {
    std::ifstream f(path);
    EXPECT_TRUE(f.good()) << path;
    std::remove(path.c_str());
  }
  // Single-run sweeps keep the historical file names.
  EXPECT_EQ(sink.writtenFiles()[0], prefix + ".discovery.csv");
}

TEST(MetricsSinkTest, MultiRunCsvFilesAreKeyedByRunLabel) {
  const std::string prefix = ::testing::TempDir() + "avmon_csv_multi";
  CsvSink sink(prefix);
  sink.add(tinySet("avmon", 1));
  sink.add(tinySet("broadcast", 1));
  sink.close();
  ASSERT_EQ(sink.writtenFiles().size(), 8u);
  EXPECT_NE(sink.writtenFiles()[0].find("avmon-STAT"), std::string::npos);
  EXPECT_NE(sink.writtenFiles()[4].find("broadcast-STAT"),
            std::string::npos);
  for (const std::string& path : sink.writtenFiles()) {
    std::remove(path.c_str());
  }
}

TEST(MetricsSinkTest, JsonSinkReportsStreamFailureOnClose) {
  JsonSink sink("/nonexistent-dir-for-avmon-test/metrics.json");
  sink.add(tinySet("avmon", 1));
  EXPECT_THROW(sink.close(), std::runtime_error);
}

TEST(MetricsSinkTest, JsonSinkEmitsOneObjectPerRun) {
  const std::string path = ::testing::TempDir() + "avmon_metrics.json";
  JsonSink sink(path);
  sink.add(tinySet("avmon", 1));
  sink.add(tinySet("central", 2));
  sink.close();
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buffer;
  buffer << f.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"protocol\": \"avmon\""), std::string::npos);
  EXPECT_NE(json.find("\"protocol\": \"central\""), std::string::npos);
  EXPECT_NE(json.find("\"first_monitor_discovery_s\""), std::string::npos);
  EXPECT_NE(json.find("\"discovered_fraction\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsSinkTest, SummaryTableSinkPrintsComparisonForMultipleRuns) {
  std::ostringstream out;
  SummaryTableSink sink(out);
  sink.add(tinySet("avmon", 1));
  sink.add(tinySet("broadcast", 1));
  sink.close();
  const std::string text = out.str();
  EXPECT_NE(text.find("protocol comparison"), std::string::npos);
  EXPECT_NE(text.find("avmon"), std::string::npos);
  EXPECT_NE(text.find("broadcast"), std::string::npos);
}

TEST(MetricsSinkTest, SummaryTableSinkSingleRunHasNoComparison) {
  std::ostringstream out;
  SummaryTableSink sink(out);
  sink.add(tinySet("avmon", 1));
  sink.close();
  EXPECT_EQ(out.str().find("protocol comparison"), std::string::npos);
}

// ---- --spec reproduces flag-built scenarios ----

TEST(ScenarioSpecTest, SpecReproducesFlagEquivalentScenario) {
  // The flag path of avmon_sim builds this scenario; its spec twin must
  // be indistinguishable, which (by the pinned determinism guarantees)
  // makes the metrics identical too.
  Scenario flags;
  flags.hashName = "md5";
  flags.model = churn::Model::kSynth;
  flags.stableSize = 300;
  flags.warmup = 30 * kMinute;
  flags.horizon = flags.warmup + 90 * kMinute;
  flags.seed = 7;
  flags.messageDropProbability = 0.01;

  const Scenario spec = Scenario::fromSpec(
      "model = SYNTH\nn = 300\nhorizon_min = 120\nwarmup_min = 30\n"
      "seed = 7\nhash = md5\ndrop = 0.01\n");
  EXPECT_TRUE(scenarioEquals(flags, spec));
  EXPECT_EQ(flags.toSpec(), spec.toSpec());
}

}  // namespace
}  // namespace avmon::experiments
