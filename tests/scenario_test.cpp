// Integration tests: full scenarios through the experiment harness,
// checking the headline behaviours the paper's evaluation reports.
//
// Every world these tests assert on is built once in SetUpTestSuite via
// the ParallelScenarioRunner (one Simulator + Network + RNG per worker;
// results land in input order), so the suite's wall time on a multi-core
// machine is the slowest single scenario instead of the sum of all.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

Scenario baseScenario(churn::Model model, std::size_t n) {
  Scenario s;
  s.model = model;
  s.stableSize = n;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 42;
  s.hashName = "splitmix64";  // fast; selection shape is hash-agnostic
  return s;
}

// Index of each prebuilt, completed run in the suite's shared batch.
enum RunTag : std::size_t {
  kStat150,
  kSynth150,
  kStat200,
  kSynth120,
  kForgetfulOn,
  kForgetfulOff,
  kSynth150Long,
  kOverreport,
  kStat60,
  kSynth100A,
  kSynth100B,  // identical twin of kSynth100A for the determinism check
  kPlanetLab,
  kOvernet,
  kStat100Pr2,
  kRunCount,
};

std::vector<Scenario> allScenarios() {
  std::vector<Scenario> s(kRunCount);
  s[kStat150] = baseScenario(churn::Model::kStat, 150);
  s[kSynth150] = baseScenario(churn::Model::kSynth, 150);
  s[kStat200] = baseScenario(churn::Model::kStat, 200);
  s[kSynth120] = baseScenario(churn::Model::kSynth, 120);

  s[kForgetfulOn] = baseScenario(churn::Model::kSynthBD, 150);
  s[kForgetfulOn].horizon = 3 * kHour;
  s[kForgetfulOn].forgetful = true;
  s[kForgetfulOff] = s[kForgetfulOn];
  s[kForgetfulOff].forgetful = false;

  s[kSynth150Long] = baseScenario(churn::Model::kSynth, 150);
  s[kSynth150Long].horizon = 4 * kHour;
  s[kSynth150Long].forgetful = false;

  s[kOverreport] = baseScenario(churn::Model::kSynth, 200);
  s[kOverreport].horizon = 3 * kHour;
  s[kOverreport].overreportFraction = 0.1;
  s[kOverreport].forgetful = false;

  s[kStat60] = baseScenario(churn::Model::kStat, 60);
  s[kSynth100A] = baseScenario(churn::Model::kSynth, 100);
  s[kSynth100B] = s[kSynth100A];

  s[kPlanetLab] = baseScenario(churn::Model::kPlanetLab, 0);
  s[kPlanetLab].horizon = 2 * kHour;
  s[kOvernet] = baseScenario(churn::Model::kOvernet, 0);
  s[kOvernet].horizon = 2 * kHour;

  s[kStat100Pr2] = baseScenario(churn::Model::kStat, 100);
  s[kStat100Pr2].pr2 = true;
  return s;
}

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Pool capped at 4 to match the suite's PROCESSORS declaration in
    // tests/CMakeLists.txt, so `ctest -j` can pack the schedule honestly.
    runners_ = new std::vector<std::unique_ptr<ScenarioRunner>>(
        ParallelScenarioRunner(4).runAll(allScenarios()));
  }

  static void TearDownTestSuite() {
    delete runners_;
    runners_ = nullptr;
  }

  static ScenarioRunner& runner(RunTag which) { return *(*runners_)[which]; }

 private:
  static std::vector<std::unique_ptr<ScenarioRunner>>* runners_;
};

std::vector<std::unique_ptr<ScenarioRunner>>* ScenarioTest::runners_ = nullptr;

TEST_F(ScenarioTest, StatDiscoveryIsFast) {
  // Paper Figure 3: average discovery of the first monitor stays below one
  // protocol period (1 minute).
  const auto delays = runner(kStat150).discoveryDelaysSeconds(1);
  ASSERT_FALSE(delays.empty());
  double sum = 0;
  for (double d : delays) sum += d;
  EXPECT_LT(sum / static_cast<double>(delays.size()), 150.0);
  EXPECT_GT(runner(kStat150).discoveredFraction(1), 0.85);
}

TEST_F(ScenarioTest, ControlGroupIsTenPercent) {
  // Construction-only probe (the measured set exists before run()).
  ScenarioRunner fresh(baseScenario(churn::Model::kStat, 150));
  EXPECT_EQ(fresh.measuredIds().size(), 15u);
}

TEST_F(ScenarioTest, SynthDiscoveryUnaffectedByChurn) {
  EXPECT_GT(runner(kSynth150).discoveredFraction(1), 0.8);
}

TEST_F(ScenarioTest, SynthBDMeasuresNodesBornAfterWarmup) {
  Scenario s = baseScenario(churn::Model::kSynthBD, 200);
  s.horizon = 3 * kHour;
  ScenarioRunner fresh(s);
  for (const NodeId& id : fresh.measuredIds()) {
    bool found = false;
    for (const auto& nt : fresh.schedule().nodes()) {
      if (nt.id == id) {
        EXPECT_GE(nt.birth, s.warmup);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(ScenarioTest, MemoryStaysNearExpectedValue) {
  // Paper Figure 9: |CV|+|PS|+|TS| ≈ cvs + 2K.
  const auto& cfg = runner(kStat200).config();
  const double expected =
      static_cast<double>(cfg.cvs) + 2.0 * static_cast<double>(cfg.k);
  const auto entries = runner(kStat200).memoryEntries(/*measuredOnly=*/false);
  ASSERT_FALSE(entries.empty());
  double sum = 0;
  for (double e : entries) sum += e;
  const double mean = sum / static_cast<double>(entries.size());
  EXPECT_GT(mean, expected * 0.5);
  EXPECT_LT(mean, expected * 1.5);
}

TEST_F(ScenarioTest, ComputationRateMatchesAnalyticalOrder) {
  // Paper Figure 7: per-minute checks close to 2·cvs²; per second that is
  // 2·cvs²/60.
  const auto& cfg = runner(kStat200).config();
  const double perSecond =
      2.0 * static_cast<double>(cfg.cvs * cfg.cvs) / 60.0;
  for (double c : runner(kStat200).computationsPerSecond()) {
    EXPECT_LT(c, perSecond * 2.5);
  }
}

TEST_F(ScenarioTest, EveryInstalledMonitorSatisfiesTheCondition) {
  // System-wide soundness: the runner's nodes never install an unverified
  // monitor, under churn included.
  const ScenarioRunner& r = runner(kSynth120);
  hash::SplitMix64HashFunction hashFn;
  HashMonitorSelector selector(hashFn, r.config().k, r.effectiveN());
  for (const auto& nt : r.schedule().nodes()) {
    const AvmonNode& node = r.node(nt.id);
    for (const NodeId& m : node.pingingSet()) {
      EXPECT_TRUE(selector.isMonitor(m, node.id()));
    }
  }
}

TEST_F(ScenarioTest, ForgetfulReducesUselessPings) {
  const auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  // Paper Figure 18: forgetful pinging reduces useless pings sharply.
  EXPECT_LT(mean(runner(kForgetfulOn).uselessPingsPerMinute()),
            mean(runner(kForgetfulOff).uselessPingsPerMinute()));
}

TEST_F(ScenarioTest, AvailabilityEstimatesTrackTruthWithoutForgetting) {
  // Paper Figure 17: non-forgetful estimation is accurate.
  const auto acc = runner(kSynth150Long).availabilityAccuracy(
      /*measuredOnly=*/true);
  ASSERT_FALSE(acc.empty());
  double err = 0;
  for (const auto& a : acc) err += std::abs(a.estimated - a.actual);
  EXPECT_LT(err / static_cast<double>(acc.size()), 0.15);
}

TEST_F(ScenarioTest, OverreportersSkewOnlyFewNodes) {
  // Paper Figure 20: the fraction of nodes whose PS-averaged estimate is
  // off by > 0.2 stays small even with 10% attackers.
  const auto acc = runner(kOverreport).availabilityAccuracy(
      /*measuredOnly=*/false);
  ASSERT_FALSE(acc.empty());
  std::size_t affected = 0;
  for (const auto& a : acc) {
    if (std::abs(a.estimated - a.actual) > 0.2) ++affected;
  }
  EXPECT_LT(static_cast<double>(affected) / static_cast<double>(acc.size()),
            0.25);
}

TEST_F(ScenarioTest, BandwidthIsModest) {
  // Paper Section 5.1: ~(K+cvs)·8B per minute per node, plus NOTIFYs.
  const auto bps = runner(kStat200).outgoingBytesPerSecond();
  ASSERT_FALSE(bps.empty());
  for (double b : bps) {
    EXPECT_LT(b, 200.0);  // far below even dial-up; sanity ceiling
  }
}

TEST_F(ScenarioTest, RunTwiceThrows) {
  // The batch already ran this world; a second run() must refuse.
  EXPECT_THROW(runner(kStat60).run(), std::logic_error);
}

TEST_F(ScenarioTest, DeterministicAcrossRuns) {
  // The twin runs executed on (potentially) different pool workers; same
  // seed must still mean the same world.
  EXPECT_EQ(runner(kSynth100A).discoveryDelaysSeconds(1),
            runner(kSynth100B).discoveryDelaysSeconds(1));
  EXPECT_EQ(runner(kSynth100A).memoryEntries(false),
            runner(kSynth100B).memoryEntries(false));
}

TEST_F(ScenarioTest, TraceModelsRunEndToEnd) {
  EXPECT_GT(runner(kPlanetLab).discoveredFraction(1), 0.5)
      << churn::modelName(churn::Model::kPlanetLab);
  EXPECT_GT(runner(kOvernet).discoveredFraction(1), 0.5)
      << churn::modelName(churn::Model::kOvernet);
}

TEST_F(ScenarioTest, Pr2VariantRuns) {
  EXPECT_GT(runner(kStat100Pr2).discoveredFraction(1), 0.8);
}

}  // namespace
}  // namespace avmon::experiments
