// Integration tests: full scenarios through the experiment harness,
// checking the headline behaviours the paper's evaluation reports.
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

Scenario baseScenario(churn::Model model, std::size_t n) {
  Scenario s;
  s.model = model;
  s.stableSize = n;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 42;
  s.hashName = "splitmix64";  // fast; selection shape is hash-agnostic
  return s;
}

TEST(ScenarioTest, StatDiscoveryIsFast) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 150));
  runner.run();

  // Paper Figure 3: average discovery of the first monitor stays below one
  // protocol period (1 minute).
  const auto delays = runner.discoveryDelaysSeconds(1);
  ASSERT_FALSE(delays.empty());
  double sum = 0;
  for (double d : delays) sum += d;
  EXPECT_LT(sum / static_cast<double>(delays.size()), 150.0);
  EXPECT_GT(runner.discoveredFraction(1), 0.85);
}

TEST(ScenarioTest, ControlGroupIsTenPercent) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 150));
  EXPECT_EQ(runner.measuredIds().size(), 15u);
}

TEST(ScenarioTest, SynthDiscoveryUnaffectedByChurn) {
  ScenarioRunner runner(baseScenario(churn::Model::kSynth, 150));
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.8);
}

TEST(ScenarioTest, SynthBDMeasuresNodesBornAfterWarmup) {
  Scenario s = baseScenario(churn::Model::kSynthBD, 200);
  s.horizon = 3 * kHour;
  ScenarioRunner runner(s);
  for (const NodeId& id : runner.measuredIds()) {
    bool found = false;
    for (const auto& nt : runner.schedule().nodes()) {
      if (nt.id == id) {
        EXPECT_GE(nt.birth, s.warmup);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ScenarioTest, MemoryStaysNearExpectedValue) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 200));
  runner.run();

  // Paper Figure 9: |CV|+|PS|+|TS| ≈ cvs + 2K.
  const auto& cfg = runner.config();
  const double expected =
      static_cast<double>(cfg.cvs) + 2.0 * static_cast<double>(cfg.k);
  const auto entries = runner.memoryEntries(/*measuredOnly=*/false);
  ASSERT_FALSE(entries.empty());
  double sum = 0;
  for (double e : entries) sum += e;
  const double mean = sum / static_cast<double>(entries.size());
  EXPECT_GT(mean, expected * 0.5);
  EXPECT_LT(mean, expected * 1.5);
}

TEST(ScenarioTest, ComputationRateMatchesAnalyticalOrder) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 200));
  runner.run();

  // Paper Figure 7: per-minute checks close to 2·cvs²; per second that is
  // 2·cvs²/60.
  const auto& cfg = runner.config();
  const double perSecond =
      2.0 * static_cast<double>(cfg.cvs * cfg.cvs) / 60.0;
  for (double c : runner.computationsPerSecond()) {
    EXPECT_LT(c, perSecond * 2.5);
  }
}

TEST(ScenarioTest, EveryInstalledMonitorSatisfiesTheCondition) {
  ScenarioRunner runner(baseScenario(churn::Model::kSynth, 120));
  runner.run();

  // System-wide soundness: the runner's nodes never install an unverified
  // monitor, under churn included.
  hash::SplitMix64HashFunction hashFn;
  HashMonitorSelector selector(hashFn, runner.config().k, runner.effectiveN());
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    for (const NodeId& m : node.pingingSet()) {
      EXPECT_TRUE(selector.isMonitor(m, node.id()));
    }
  }
}

TEST(ScenarioTest, ForgetfulReducesUselessPings) {
  Scenario with = baseScenario(churn::Model::kSynthBD, 150);
  with.horizon = 3 * kHour;
  with.forgetful = true;
  ScenarioRunner withRunner(with);
  withRunner.run();

  Scenario without = with;
  without.forgetful = false;
  ScenarioRunner withoutRunner(without);
  withoutRunner.run();

  const auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  // Paper Figure 18: forgetful pinging reduces useless pings sharply.
  EXPECT_LT(mean(withRunner.uselessPingsPerMinute()),
            mean(withoutRunner.uselessPingsPerMinute()));
}

TEST(ScenarioTest, AvailabilityEstimatesTrackTruthWithoutForgetting) {
  Scenario s = baseScenario(churn::Model::kSynth, 150);
  s.horizon = 4 * kHour;
  s.forgetful = false;
  ScenarioRunner runner(s);
  runner.run();

  // Paper Figure 17: non-forgetful estimation is accurate.
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/true);
  ASSERT_FALSE(acc.empty());
  double err = 0;
  for (const auto& a : acc) err += std::abs(a.estimated - a.actual);
  EXPECT_LT(err / static_cast<double>(acc.size()), 0.15);
}

TEST(ScenarioTest, OverreportersSkewOnlyFewNodes) {
  Scenario s = baseScenario(churn::Model::kSynth, 200);
  s.horizon = 3 * kHour;
  s.overreportFraction = 0.1;
  s.forgetful = false;
  ScenarioRunner runner(s);
  runner.run();

  // Paper Figure 20: the fraction of nodes whose PS-averaged estimate is
  // off by > 0.2 stays small even with 10% attackers.
  const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/false);
  ASSERT_FALSE(acc.empty());
  std::size_t affected = 0;
  for (const auto& a : acc) {
    if (std::abs(a.estimated - a.actual) > 0.2) ++affected;
  }
  EXPECT_LT(static_cast<double>(affected) / static_cast<double>(acc.size()),
            0.25);
}

TEST(ScenarioTest, BandwidthIsModest) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 200));
  runner.run();

  // Paper Section 5.1: ~(K+cvs)·8B per minute per node, plus NOTIFYs.
  const auto bps = runner.outgoingBytesPerSecond();
  ASSERT_FALSE(bps.empty());
  for (double b : bps) {
    EXPECT_LT(b, 200.0);  // far below even dial-up; sanity ceiling
  }
}

TEST(ScenarioTest, RunTwiceThrows) {
  ScenarioRunner runner(baseScenario(churn::Model::kStat, 60));
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(ScenarioTest, DeterministicAcrossRuns) {
  const Scenario s = baseScenario(churn::Model::kSynth, 100);
  ScenarioRunner a(s), b(s);
  a.run();
  b.run();
  EXPECT_EQ(a.discoveryDelaysSeconds(1), b.discoveryDelaysSeconds(1));
  EXPECT_EQ(a.memoryEntries(false), b.memoryEntries(false));
}

TEST(ScenarioTest, TraceModelsRunEndToEnd) {
  for (churn::Model m : {churn::Model::kPlanetLab, churn::Model::kOvernet}) {
    Scenario s = baseScenario(m, 0);
    s.horizon = 2 * kHour;
    ScenarioRunner runner(s);
    runner.run();
    EXPECT_GT(runner.discoveredFraction(1), 0.5) << churn::modelName(m);
  }
}

TEST(ScenarioTest, Pr2VariantRuns) {
  Scenario s = baseScenario(churn::Model::kStat, 100);
  s.pr2 = true;
  ScenarioRunner runner(s);
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.8);
}

}  // namespace
}  // namespace avmon::experiments
