// Replica-planner tests: strategy behaviour, provisioning math, and the
// smart-beats-agnostic property that motivates availability monitoring.
#include <gtest/gtest.h>

#include <algorithm>

#include "replication/replica_planner.hpp"

namespace avmon::replication {
namespace {

std::vector<Candidate> makeCandidates() {
  std::vector<Candidate> c;
  for (std::uint32_t i = 0; i < 20; ++i) {
    c.push_back({NodeId::fromIndex(i), 0.05 * static_cast<double>(i)});
  }
  return c;  // availabilities 0.00 .. 0.95
}

TEST(PlaceTest, MostAvailablePicksTop) {
  Rng rng(1);
  const auto replicas = place(makeCandidates(), 3, Strategy::kMostAvailable, rng);
  ASSERT_EQ(replicas.size(), 3u);
  EXPECT_DOUBLE_EQ(replicas[0].availability, 0.95);
  EXPECT_DOUBLE_EQ(replicas[1].availability, 0.90);
  EXPECT_DOUBLE_EQ(replicas[2].availability, 0.85);
}

TEST(PlaceTest, RandomReturnsDistinctNodes) {
  Rng rng(2);
  const auto replicas = place(makeCandidates(), 5, Strategy::kRandom, rng);
  ASSERT_EQ(replicas.size(), 5u);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    for (std::size_t j = i + 1; j < replicas.size(); ++j) {
      EXPECT_NE(replicas[i].id, replicas[j].id);
    }
  }
}

TEST(PlaceTest, AboveBarRespectsBarWhenPossible) {
  Rng rng(3);
  const auto replicas =
      place(makeCandidates(), 2, Strategy::kRandomAboveBar, rng, 0.8);
  ASSERT_EQ(replicas.size(), 2u);
  for (const Candidate& c : replicas) EXPECT_GE(c.availability, 0.8);
}

TEST(PlaceTest, AboveBarFallsBackWhenBarTooHigh) {
  Rng rng(4);
  // Nobody clears 0.99; must still return r replicas.
  const auto replicas =
      place(makeCandidates(), 4, Strategy::kRandomAboveBar, rng, 0.99);
  EXPECT_EQ(replicas.size(), 4u);
}

TEST(PlaceTest, FewCandidatesReturnsAll) {
  Rng rng(5);
  std::vector<Candidate> two = {{NodeId::fromIndex(1), 0.5},
                                {NodeId::fromIndex(2), 0.6}};
  EXPECT_EQ(place(two, 5, Strategy::kRandom, rng).size(), 2u);
}

TEST(GroupAvailabilityTest, MatchesClosedForm) {
  std::vector<Candidate> r = {{NodeId::fromIndex(1), 0.5},
                              {NodeId::fromIndex(2), 0.5}};
  EXPECT_DOUBLE_EQ(groupAvailability(r), 0.75);
  r.push_back({NodeId::fromIndex(3), 1.0});
  EXPECT_DOUBLE_EQ(groupAvailability(r), 1.0);
  EXPECT_DOUBLE_EQ(groupAvailability({}), 0.0);
}

TEST(ReplicasNeededTest, MatchesProvisioningRule) {
  // 1-(1-0.5)^r >= 0.99  =>  r >= log(0.01)/log(0.5) = 6.64 -> 7.
  EXPECT_EQ(replicasNeeded(0.5, 0.99), 7u);
  // Highly available nodes need few replicas.
  EXPECT_EQ(replicasNeeded(0.95, 0.99), 2u);
  EXPECT_THROW(replicasNeeded(0.0, 0.9), std::invalid_argument);
  EXPECT_THROW(replicasNeeded(1.0, 0.9), std::invalid_argument);
  EXPECT_THROW(replicasNeeded(0.5, 1.0), std::invalid_argument);
}

TEST(ReplicasNeededTest, MonotoneInTargetAndAvailability) {
  EXPECT_GE(replicasNeeded(0.5, 0.999), replicasNeeded(0.5, 0.9));
  EXPECT_GE(replicasNeeded(0.3, 0.99), replicasNeeded(0.8, 0.99));
}

TEST(RepairRateTest, LinearInReplicasAndChurn) {
  EXPECT_DOUBLE_EQ(expectedRepairsPerHour(3, 0.2), 0.6);
  EXPECT_DOUBLE_EQ(expectedRepairsPerHour(0, 0.2), 0.0);
  EXPECT_THROW(expectedRepairsPerHour(3, -1.0), std::invalid_argument);
}

TEST(StrategyComparisonTest, SmartBeatsRandomOnSkewedPopulations) {
  // The Godfrey-et-al. property: with heterogeneous availabilities,
  // informed placement dominates random placement for every r.
  Rng rng(7);
  const auto candidates = makeCandidates();
  for (std::size_t r : {1u, 2u, 3u}) {
    Rng smartRng(10), randomRng(10);
    const double smart = groupAvailability(
        place(candidates, r, Strategy::kMostAvailable, smartRng));
    // Average random over draws.
    double randomSum = 0;
    for (int d = 0; d < 100; ++d) {
      randomSum += groupAvailability(
          place(candidates, r, Strategy::kRandom, randomRng));
    }
    EXPECT_GT(smart, randomSum / 100.0) << "r=" << r;
  }
}

TEST(StrategyNameTest, AllNamed) {
  EXPECT_EQ(strategyName(Strategy::kRandom), "random");
  EXPECT_EQ(strategyName(Strategy::kMostAvailable), "most-available");
  EXPECT_EQ(strategyName(Strategy::kRandomAboveBar), "random-above-bar");
}

}  // namespace
}  // namespace avmon::replication
