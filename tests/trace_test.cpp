// Availability-trace representation, generators, and CSV I/O tests.
#include <gtest/gtest.h>

#include <sstream>

#include "trace/availability_trace.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace avmon::trace {
namespace {

NodeTrace simpleNode() {
  NodeTrace t;
  t.id = NodeId::fromIndex(7);
  t.birth = 0;
  t.sessions = {{10, 20}, {30, 50}};
  return t;
}

TEST(NodeTraceTest, UpAtRespectsSessions) {
  const NodeTrace t = simpleNode();
  EXPECT_FALSE(t.upAt(5));
  EXPECT_TRUE(t.upAt(10));
  EXPECT_TRUE(t.upAt(19));
  EXPECT_FALSE(t.upAt(20));  // half-open interval
  EXPECT_FALSE(t.upAt(25));
  EXPECT_TRUE(t.upAt(40));
  EXPECT_FALSE(t.upAt(50));
}

TEST(NodeTraceTest, AvailabilityIsUpFraction) {
  const NodeTrace t = simpleNode();
  // Sessions cover 10+20=30 time units within [0,50).
  EXPECT_DOUBLE_EQ(t.availability(0, 50), 0.6);
  EXPECT_DOUBLE_EQ(t.availability(10, 20), 1.0);
  EXPECT_DOUBLE_EQ(t.availability(20, 30), 0.0);
  EXPECT_DOUBLE_EQ(t.availability(0, 0), 0.0);  // empty window
}

TEST(NodeTraceTest, FirstJoinAndUpTime) {
  const NodeTrace t = simpleNode();
  ASSERT_TRUE(t.firstJoin().has_value());
  EXPECT_EQ(*t.firstJoin(), 10);
  EXPECT_EQ(t.totalUpTime(), 30);

  NodeTrace empty;
  EXPECT_FALSE(empty.firstJoin().has_value());
  EXPECT_EQ(empty.totalUpTime(), 0);
}

TEST(AvailabilityTraceTest, AliveCountAndBornBy) {
  AvailabilityTrace tr(100, {});
  NodeTrace a = simpleNode();
  NodeTrace b;
  b.id = NodeId::fromIndex(8);
  b.birth = 15;
  b.sessions = {{15, 100}};
  tr.add(a);
  tr.add(b);

  EXPECT_EQ(tr.aliveCount(5), 0u);
  EXPECT_EQ(tr.aliveCount(16), 2u);
  EXPECT_EQ(tr.aliveCount(25), 1u);
  EXPECT_EQ(tr.bornBy(0), 1u);
  EXPECT_EQ(tr.bornBy(15), 2u);
}

TEST(AvailabilityTraceTest, ValidateCatchesBadSessions) {
  AvailabilityTrace tr(100, {});
  NodeTrace bad;
  bad.id = NodeId::fromIndex(1);
  bad.sessions = {{20, 10}};  // inverted
  tr.add(bad);
  std::string why;
  EXPECT_FALSE(tr.validate(&why));
  EXPECT_NE(why.find("inverted"), std::string::npos);
}

TEST(AvailabilityTraceTest, ValidateCatchesOverlap) {
  AvailabilityTrace tr(100, {});
  NodeTrace bad;
  bad.id = NodeId::fromIndex(1);
  bad.sessions = {{10, 30}, {20, 40}};
  tr.add(bad);
  EXPECT_FALSE(tr.validate());
}

TEST(AvailabilityTraceTest, ValidateCatchesSessionAfterDeath) {
  AvailabilityTrace tr(100, {});
  NodeTrace bad;
  bad.id = NodeId::fromIndex(1);
  bad.death = 25;
  bad.sessions = {{10, 30}};
  tr.add(bad);
  EXPECT_FALSE(tr.validate());
}

TEST(AvailabilityTraceTest, QuantizeRoundsAndMerges) {
  AvailabilityTrace tr(1000, {});
  NodeTrace n;
  n.id = NodeId::fromIndex(1);
  n.sessions = {{12, 18}, {22, 35}};  // grain 10: [10,20) and [20,40) -> merge
  tr.add(n);
  tr.quantize(10);
  ASSERT_EQ(tr.nodes()[0].sessions.size(), 1u);
  EXPECT_EQ(tr.nodes()[0].sessions[0], (Interval{10, 40}));
  EXPECT_TRUE(tr.validate());
}

// ---- generators ----

TEST(GeneratorTest, StatAllNodesAlwaysUp) {
  SynthParams p;
  p.stableSize = 50;
  p.horizon = 10 * kMinute;
  p.controlFraction = 0.0;
  const AvailabilityTrace tr = generateStat(p);
  ASSERT_EQ(tr.nodes().size(), 50u);
  EXPECT_TRUE(tr.validate());
  for (const NodeTrace& n : tr.nodes()) {
    EXPECT_DOUBLE_EQ(n.availability(0, p.horizon), 1.0);
  }
}

TEST(GeneratorTest, StatControlGroupJoinsAtControlTime) {
  SynthParams p;
  p.stableSize = 100;
  p.horizon = 2 * kHour;
  p.controlFraction = 0.1;
  p.controlJoinTime = kHour;
  const AvailabilityTrace tr = generateStat(p);
  ASSERT_EQ(tr.nodes().size(), 110u);
  std::size_t controls = 0;
  for (const NodeTrace& n : tr.nodes()) {
    if (!n.isControl) continue;
    ++controls;
    EXPECT_EQ(n.birth, kHour);
    ASSERT_TRUE(n.firstJoin());
    EXPECT_EQ(*n.firstJoin(), kHour);
  }
  EXPECT_EQ(controls, 10u);
}

TEST(GeneratorTest, SynthKeepsStableAliveCount) {
  SynthParams p;
  p.stableSize = 300;
  p.churnPerHour = 0.2;
  p.horizon = 12 * kHour;
  p.seed = 99;
  const AvailabilityTrace tr = generateSynth(p);
  EXPECT_TRUE(tr.validate());
  // Base population is 2N; alive count should hover near N.
  const double mean = tr.meanAliveCount(kHour, p.horizon, 10 * kMinute);
  EXPECT_NEAR(mean, 300.0, 300.0 * 0.15);
}

TEST(GeneratorTest, SynthHasNoBirthsOrDeathsByDefault) {
  SynthParams p;
  p.stableSize = 100;
  p.horizon = 6 * kHour;
  const AvailabilityTrace tr = generateSynth(p);
  for (const NodeTrace& n : tr.nodes()) {
    EXPECT_EQ(n.birth, 0);
    EXPECT_FALSE(n.death.has_value());
  }
}

TEST(GeneratorTest, SynthBDBirthsMatchRate) {
  SynthParams p;
  p.stableSize = 500;
  p.birthDeathPerDay = 0.2;
  p.horizon = 48 * kHour;
  p.seed = 7;
  const AvailabilityTrace tr = generateSynth(p);
  EXPECT_TRUE(tr.validate());
  // N_longterm after 2 days ≈ 2N + 2*0.2*N (paper: 2809 for N=2000 at 1x;
  // our population bookkeeping: base 2N plus 0.4N born).
  const double born = static_cast<double>(tr.nodes().size());
  EXPECT_NEAR(born, 2 * 500 + 0.4 * 500, 80.0);

  std::size_t deaths = 0;
  for (const NodeTrace& n : tr.nodes()) deaths += n.death.has_value() ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(deaths), 0.4 * 500, 80.0);
}

TEST(GeneratorTest, SynthChurnRateIsAsConfigured) {
  SynthParams p;
  p.stableSize = 400;
  p.churnPerHour = 0.2;
  p.horizon = 10 * kHour;
  p.seed = 3;
  const AvailabilityTrace tr = generateSynth(p);
  // Count leave events (session ends) per hour in steady state: expect
  // churnPerHour * N ≈ 80/hour.
  std::size_t leaves = 0;
  for (const NodeTrace& n : tr.nodes()) {
    for (const Interval& s : n.sessions) {
      if (s.end > kHour && s.end < p.horizon) ++leaves;
    }
  }
  const double perHour = static_cast<double>(leaves) / 9.0;
  EXPECT_NEAR(perHour, 80.0, 20.0);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  SynthParams p;
  p.stableSize = 100;
  p.birthDeathPerDay = 0.2;
  p.horizon = 4 * kHour;
  p.seed = 1234;
  const AvailabilityTrace a = generateSynth(p);
  const AvailabilityTrace b = generateSynth(p);
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].sessions, b.nodes()[i].sessions);
  }
}

TEST(GeneratorTest, PlanetLabLikeShape) {
  PlanetLabParams p;
  p.horizon = 24 * kHour;
  const AvailabilityTrace tr = generatePlanetLabLike(p);
  EXPECT_TRUE(tr.validate());
  EXPECT_EQ(tr.nodes().size(), 239u);
  for (const NodeTrace& n : tr.nodes()) {
    EXPECT_EQ(n.birth, 0);
    EXPECT_FALSE(n.death.has_value());
  }
  // High mean availability, PlanetLab-like.
  const double avail = tr.meanAvailability(0, p.horizon);
  EXPECT_GT(avail, 0.75);
  EXPECT_LT(avail, 0.98);
}

TEST(GeneratorTest, OvernetLikeShape) {
  OvernetParams p;
  p.horizon = 48 * kHour;
  p.seed = 5;
  const AvailabilityTrace tr = generateOvernetLike(p);
  EXPECT_TRUE(tr.validate());
  // Stable alive count near 550.
  const double mean = tr.meanAliveCount(2 * kHour, p.horizon, kHour);
  EXPECT_NEAR(mean, 550.0, 550.0 * 0.2);
  // N_longterm after 2 days ≈ 1320 (paper: 1319).
  EXPECT_NEAR(static_cast<double>(tr.bornBy(p.horizon)), 1320.0, 150.0);
  // All transitions quantized to 20 minutes.
  for (const NodeTrace& n : tr.nodes()) {
    for (const Interval& s : n.sessions) {
      EXPECT_EQ(s.start % (20 * kMinute), 0) << n.id.toString();
      EXPECT_EQ(s.end % (20 * kMinute), 0) << n.id.toString();
    }
  }
}

// ---- CSV I/O ----

TEST(TraceIoTest, RoundTrips) {
  SynthParams p;
  p.stableSize = 40;
  p.birthDeathPerDay = 0.3;
  p.horizon = 6 * kHour;
  p.controlFraction = 0.1;
  const AvailabilityTrace original = generateSynth(p);

  std::stringstream buf;
  saveCsv(original, buf);
  const AvailabilityTrace loaded = loadCsv(buf);

  EXPECT_EQ(loaded.horizon(), original.horizon());
  ASSERT_EQ(loaded.nodes().size(), original.nodes().size());
  for (std::size_t i = 0; i < loaded.nodes().size(); ++i) {
    const NodeTrace& a = original.nodes()[i];
    const NodeTrace& b = loaded.nodes()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.birth, b.birth);
    EXPECT_EQ(a.death, b.death);
    EXPECT_EQ(a.isControl, b.isControl);
    EXPECT_EQ(a.sessions, b.sessions);
  }
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream buf("not-a-trace,100\n");
  EXPECT_THROW(loadCsv(buf), std::runtime_error);
}

TEST(TraceIoTest, RejectsEmptyInput) {
  std::stringstream buf("");
  EXPECT_THROW(loadCsv(buf), std::runtime_error);
}

TEST(TraceIoTest, RejectsMalformedSession) {
  std::stringstream buf("avmon-trace-v1,100\n1,2,0,-1,0,1020\n");
  EXPECT_THROW(loadCsv(buf), std::runtime_error);
}

}  // namespace
}  // namespace avmon::trace
