// Streaming metrics pipeline: sketch-algebra properties (exactness,
// associativity, partition independence), the quantile rank-error bound,
// the ReducerRegistry contract, and the lane-equivalence regression — the
// streamed summary reproduces the materialized scan exactly and is
// bit-identical across every shard count on the golden workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "experiments/parallel_runner.hpp"
#include "experiments/scenario.hpp"
#include "experiments/streaming/collector.hpp"
#include "experiments/streaming/exact_sum.hpp"
#include "experiments/streaming/online_stats.hpp"
#include "experiments/streaming/quantile_sketch.hpp"
#include "experiments/streaming/reducer_registry.hpp"
#include "golden_hash.hpp"
#include "stats/cdf.hpp"

namespace avmon::experiments::streaming {
namespace {

// ---------------------------------------------------------------- ExactSum

TEST(ExactSumTest, MatchesIntegerScaledReference) {
  // Samples of the form k * 2^-20 sum exactly in 64-bit integer space, so
  // the accumulated value has a closed-form exact answer to compare with.
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::int64_t> coeff(-(std::int64_t{1} << 36),
                                                    std::int64_t{1} << 36);
  ExactSum sum;
  std::int64_t exact = 0;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t k = coeff(rng);
    exact += k;
    sum.add(std::ldexp(static_cast<double>(k), -20));
  }
  EXPECT_EQ(sum.value(), std::ldexp(static_cast<double>(exact), -20));
}

TEST(ExactSumTest, SurvivesCatastrophicCancellation) {
  // A naive (or Kahan) accumulator loses the 1.0 entirely.
  ExactSum sum;
  sum.add(1.0);
  sum.add(1e308);
  sum.add(-1e308);
  EXPECT_EQ(sum.value(), 1.0);

  ExactSum tiny;
  tiny.add(1e16);
  tiny.add(1.0);
  tiny.add(-1e16);
  EXPECT_EQ(tiny.value(), 1.0);
}

TEST(ExactSumTest, RepresentsSubnormalsExactly) {
  const double d = std::numeric_limits<double>::denorm_min();
  ExactSum sum;
  sum.add(d);
  sum.add(d);
  sum.add(d);
  EXPECT_EQ(sum.value(), std::ldexp(3.0, -1074));
}

TEST(ExactSumTest, OrderAndPartitionIndependent) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> mag(-1e6, 1e6);
  std::vector<double> samples(500);
  for (double& s : samples) s = mag(rng) * std::exp2(static_cast<int>(rng() % 40) - 20);

  ExactSum sequential;
  for (double s : samples) sequential.add(s);

  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(samples.begin(), samples.end(), rng);
    // Random partition into up to 8 sub-accumulators, merged in order.
    std::vector<ExactSum> parts(1 + rng() % 8);
    for (double s : samples) parts[rng() % parts.size()].add(s);
    ExactSum merged;
    for (const ExactSum& p : parts) merged.merge(p);
    EXPECT_TRUE(merged == sequential) << "trial " << trial;
    EXPECT_EQ(merged.value(), sequential.value());
  }
}

TEST(ExactSumTest, NonFiniteInputPoisons) {
  ExactSum sum;
  sum.add(1.0);
  sum.add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(sum.nonFinite());
  EXPECT_TRUE(std::isnan(sum.value()));

  // Poison propagates through merge.
  ExactSum clean;
  clean.add(2.0);
  clean.merge(sum);
  EXPECT_TRUE(clean.nonFinite());
}

// ------------------------------------------------------------- OnlineStats

TEST(OnlineStatsTest, MatchesDirectFormulas) {
  OnlineStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 4.0);
  EXPECT_EQ(stats.mean(), 2.5);
  // Sample variance via the documented (Σx² - (Σx)²/n) / (n-1) — every
  // intermediate is exactly representable for these inputs.
  EXPECT_DOUBLE_EQ(stats.variance(), (30.0 - 100.0 / 4) / 3);
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt((30.0 - 100.0 / 4) / 3));
}

TEST(OnlineStatsTest, EmptyIsAllZero) {
  const OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, MergePartitionIndependent) {
  std::mt19937_64 rng(13);
  std::lognormal_distribution<double> dist(0.0, 2.0);
  std::vector<double> samples(400);
  for (double& s : samples) s = dist(rng);

  OnlineStats sequential;
  for (double s : samples) sequential.add(s);

  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(samples.begin(), samples.end(), rng);
    std::vector<OnlineStats> parts(1 + rng() % 8);
    for (double s : samples) parts[rng() % parts.size()].add(s);
    OnlineStats merged;
    for (const OnlineStats& p : parts) merged.merge(p);
    EXPECT_TRUE(merged == sequential) << "trial " << trial;
    EXPECT_EQ(merged.mean(), sequential.mean());
    EXPECT_EQ(merged.variance(), sequential.variance());
  }
}

// ---------------------------------------------------------- QuantileSketch

TEST(QuantileSketchTest, MergePartitionIndependent) {
  std::mt19937_64 rng(17);
  std::lognormal_distribution<double> dist(1.0, 3.0);
  std::vector<double> samples(600);
  for (double& s : samples) {
    s = dist(rng);
    if (rng() % 4 == 0) s = -s;  // exercise the mirrored histogram
    if (rng() % 16 == 0) s = 0.0;
  }

  QuantileSketch sequential;
  for (double s : samples) sequential.add(s);

  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(samples.begin(), samples.end(), rng);
    std::vector<QuantileSketch> parts(1 + rng() % 8);
    for (double s : samples) parts[rng() % parts.size()].add(s);
    QuantileSketch merged;
    for (const QuantileSketch& p : parts) merged.merge(p);
    EXPECT_TRUE(merged == sequential) << "trial " << trial;
  }
}

TEST(QuantileSketchTest, RankErrorBoundAgainstExactCdf) {
  // |quantile(phi) - q| <= |q| / kSubBins for the true ceil-rank sample
  // quantile q — the documented relative bound of the log-histogram.
  std::mt19937_64 rng(19);
  std::lognormal_distribution<double> dist(0.0, 2.5);
  for (const bool negate : {false, true}) {
    QuantileSketch sketch;
    std::vector<double> samples(2000);
    for (double& s : samples) {
      s = negate ? -dist(rng) : dist(rng);
      sketch.add(s);
    }
    const stats::Cdf cdf(samples);
    for (double phi = 0.01; phi < 1.0; phi += 0.01) {
      const double q = cdf.percentile(phi);
      const double v = sketch.quantile(phi);
      EXPECT_LE(std::abs(v - q),
                std::abs(q) / QuantileSketch::kSubBins + 1e-12)
          << "phi=" << phi << " negate=" << negate;
    }
  }
}

// The flat sorted-vector storage keeps a canonical form: any insertion
// order of the same multiset yields the identical sketch (operator== over
// the bin vectors), so shard partitioning can never reorder state.
TEST(QuantileSketchTest, InsertOrderNeverChangesState) {
  std::vector<double> values;
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> mantissa(0.5, 1.0);
  std::uniform_int_distribution<int> exponent(-20, 19);
  for (int i = 0; i < 400; ++i) {
    const double magnitude = std::ldexp(mantissa(rng), exponent(rng));
    values.push_back(i % 7 == 0 ? 0.0 : (i % 3 == 0 ? -magnitude : magnitude));
  }
  QuantileSketch forward;
  for (double v : values) forward.add(v);
  QuantileSketch backward;
  for (auto it = values.rbegin(); it != values.rend(); ++it) backward.add(*it);
  QuantileSketch interleaved;
  for (std::size_t i = 0; i < values.size(); i += 2) interleaved.add(values[i]);
  for (std::size_t i = 1; i < values.size(); i += 2) interleaved.add(values[i]);
  EXPECT_TRUE(backward == forward);
  EXPECT_TRUE(interleaved == forward);
  for (double phi : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(backward.quantile(phi), forward.quantile(phi));
  }
}

TEST(QuantileSketchTest, ResultClampedToObservedRange) {
  QuantileSketch sketch;
  sketch.add(3.0);
  sketch.add(5.0);
  for (double phi = 0.0; phi <= 1.0; phi += 0.125) {
    const double v = sketch.quantile(phi);
    EXPECT_GE(v, 3.0);
    EXPECT_LE(v, 5.0);
  }
}

TEST(QuantileSketchTest, EmptyAndZeroStreams) {
  const QuantileSketch empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  QuantileSketch zeros;
  for (int i = 0; i < 5; ++i) zeros.add(0.0);
  EXPECT_EQ(zeros.quantile(0.5), 0.0);
  EXPECT_EQ(zeros.count(), 5u);
}

// --------------------------------------------------------- ReducerRegistry

TEST(ReducerRegistryTest, BuiltinsAreRegistered) {
  auto& registry = ReducerRegistry::instance();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "summary");
  EXPECT_EQ(names[1], "traffic");
  EXPECT_EQ(names[2], "discovery");
  EXPECT_FALSE(registry.find("summary")->windowed);
  EXPECT_TRUE(registry.find("traffic")->windowed);
  EXPECT_TRUE(registry.find("discovery")->windowed);
  EXPECT_EQ(registry.create("summary")->name(), "summary");
}

TEST(ReducerRegistryTest, UnknownNameThrowsListingKnown) {
  try {
    ReducerRegistry::instance().create("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("summary"), std::string::npos);
  }
}

TEST(ReducerRegistryTest, DuplicateAndMalformedRegistrationsThrow) {
  auto& registry = ReducerRegistry::instance();
  EXPECT_THROW(registry.add({"summary", "dup", false, makeSummaryReducer}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"", "anon", false, makeSummaryReducer}),
               std::invalid_argument);
  EXPECT_THROW(registry.add({"nofactory", "x", false, nullptr}),
               std::invalid_argument);
}

// --------------------------------------------------- lane equivalence

// Extends the golden regime of scenario_metrics_test / sharded_sim_test to
// the streamed lane: on the STAT and SYNTH-BD golden workloads the
// streaming pipeline must (a) leave protocol execution bit-identical (the
// pinned summary fingerprints still hold with metric barriers inserted),
// (b) produce the same StreamedSummary at S = 1, 2, 3, 8, and (c) agree
// with the materialized sample vectors exactly on count/min/max/mean.
TEST(StreamingLaneTest, StreamedSummariesMatchMaterializedAcrossShards) {
  const auto golden = goldenScenarios();
  struct Pinned {
    const char* name;
    std::size_t goldenIndex;
    std::uint64_t summaryHashValue;
  };
  const Pinned pinned[] = {
      {"STAT", 0, 0x2653aa83f642c8d3ULL},
      {"SYNTH-BD", 1, 0x37267d9d4ef4b133ULL},
  };
  const unsigned shardCounts[] = {1, 2, 3, 8};

  std::vector<Scenario> scenarios;
  for (const Pinned& p : pinned) {
    for (const unsigned s : shardCounts) {
      Scenario sc = golden[p.goldenIndex];
      sc.shards = s;
      sc.metrics.window = 60 * kSecond;  // all reducers, windowed path on
      scenarios.push_back(sc);
    }
    // Materialized control: same workload, streaming off.
    Scenario control = golden[p.goldenIndex];
    control.shards = 2;
    scenarios.push_back(control);
  }
  // Pool capped at 4 to match the suite's PROCESSORS hint in CMakeLists.
  const auto runners = ParallelScenarioRunner(4).runAll(scenarios);
  ASSERT_EQ(runners.size(), 10u);

  for (std::size_t w = 0; w < 2; ++w) {
    const Pinned& p = pinned[w];
    const std::size_t base = w * 5;
    const ScenarioRunner& control = *runners[base + 4];
    ASSERT_EQ(control.streamingCollector(), nullptr);

    const StreamingCollector* first = runners[base]->streamingCollector();
    ASSERT_NE(first, nullptr);
    const StreamedSummary& summary = first->summary();

    for (std::size_t i = 0; i < 4; ++i) {
      const ScenarioRunner& run = *runners[base + i];
      // (a) observation only: pinned execution fingerprint unchanged.
      EXPECT_EQ(summaryHash(run), p.summaryHashValue)
          << p.name << " S=" << shardCounts[i]
          << ": metric barriers perturbed execution";
      // (b) bit-identical streamed state across shard counts.
      const StreamedSummary& s = run.streamingCollector()->summary();
      EXPECT_TRUE(s.discoverySeconds == summary.discoverySeconds);
      EXPECT_TRUE(s.memoryEntries == summary.memoryEntries);
      EXPECT_TRUE(s.outgoingBytesPerSecond == summary.outgoingBytesPerSecond);
      EXPECT_TRUE(s.uselessPingsPerMinute == summary.uselessPingsPerMinute);
      EXPECT_TRUE(s.computationsPerSecond == summary.computationsPerSecond);
      EXPECT_TRUE(s.accuracyAbsError == summary.accuracyAbsError);
      EXPECT_EQ(s.joined, summary.joined);
      EXPECT_EQ(s.found, summary.found);
      // Windowed time-series rows are partition-invariant too.
      const auto& wref = first->windows();
      const auto& wrun = run.streamingCollector()->windows();
      ASSERT_EQ(wrun.size(), wref.size());
      for (std::size_t r = 0; r < wref.size(); ++r) {
        EXPECT_EQ(wrun[r].windowStart, wref[r].windowStart);
        EXPECT_EQ(wrun[r].windowEnd, wref[r].windowEnd);
        ASSERT_EQ(wrun[r].columns.size(), wref[r].columns.size());
        for (std::size_t c = 0; c < wref[r].columns.size(); ++c) {
          EXPECT_EQ(wrun[r].columns[c].first, wref[r].columns[c].first);
          EXPECT_EQ(wrun[r].columns[c].second, wref[r].columns[c].second);
        }
      }
    }

    // (c) exact agreement with the materialized sample vectors.
    const auto expectMatches = [&](const StreamedMetric& m,
                                   std::vector<double> samples) {
      ASSERT_EQ(m.stats.count(), samples.size());
      if (samples.empty()) return;
      const auto [lo, hi] =
          std::minmax_element(samples.begin(), samples.end());
      EXPECT_EQ(m.stats.min(), *lo);
      EXPECT_EQ(m.stats.max(), *hi);
      ExactSum exact;
      for (double x : samples) exact.add(x);
      EXPECT_EQ(m.stats.mean(),
                exact.value() / static_cast<double>(samples.size()));
    };
    expectMatches(summary.discoverySeconds, control.discoveryDelaysSeconds(1));
    expectMatches(summary.memoryEntries,
                  control.memoryEntries(/*measuredOnly=*/false));
    expectMatches(summary.outgoingBytesPerSecond,
                  control.outgoingBytesPerSecond());
    expectMatches(summary.uselessPingsPerMinute,
                  control.uselessPingsPerMinute());
    expectMatches(summary.computationsPerSecond,
                  control.computationsPerSecond());

    const auto accuracy =
        control.availabilityAccuracy(/*measuredOnly=*/true);
    std::vector<double> absErrors;
    absErrors.reserve(accuracy.size());
    for (const auto& a : accuracy) {
      absErrors.push_back(std::abs(a.estimated - a.actual));
    }
    expectMatches(summary.accuracyAbsError, absErrors);
    EXPECT_EQ(summary.discoveredFraction(), control.discoveredFraction(1))
        << p.name;
  }
}

// Memory regression guard for the streamed lane (the million-node diet):
// retained metric state must be O(shards x reducers), never O(N). The old
// horizon accuracy scan materialized a per-node estimate map inside
// finish(); the window-incremental probes replaced it, and this test keeps
// it dead — quadrupling the population may not grow the collector's
// retained bytes more than the sketches' bin spread (a few hundred bytes),
// and the absolute footprint stays under a flat ceiling no million-node
// run could meet with any per-node container left on the path.
TEST(StreamingLaneTest, CollectorStateIsPopulationIndependent) {
  const auto streamedStateBytes = [](std::size_t stableSize) {
    Scenario s = goldenScenarios().front();  // STAT
    s.stableSize = stableSize;
    s.horizon = 45 * kMinute;
    s.warmup = 15 * kMinute;
    s.shards = 2;
    s.metrics.window = 60 * kSecond;  // all reducers, windowed path on
    ScenarioRunner runner(s);
    runner.run();
    const StreamingCollector* collector = runner.streamingCollector();
    EXPECT_NE(collector, nullptr);
    return collector == nullptr ? std::size_t{0} : collector->stateBytes();
  };
  const std::size_t small = streamedStateBytes(60);
  const std::size_t large = streamedStateBytes(240);
  EXPECT_LT(large, small + 2048u)
      << "streamed metric state grew with N — a per-node container is back "
         "on the probe path";
  EXPECT_LT(large, 65536u) << "collector footprint exceeds the flat ceiling";
}

}  // namespace
}  // namespace avmon::experiments::streaming
