// Monitor-selection scheme tests: the paper's six properties that concern
// selection — consistency, verifiability, randomness (uniformity and
// non-correlation) — plus expected pinging-set size.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "avmon/monitor_selector.hpp"
#include "hash/hash_function.hpp"

namespace avmon {
namespace {

class SelectorTest : public ::testing::Test {
 protected:
  hash::Md5HashFunction md5_;
};

TEST_F(SelectorTest, RejectsBadParameters) {
  EXPECT_THROW(HashMonitorSelector(md5_, 0, 100), std::invalid_argument);
  EXPECT_THROW(HashMonitorSelector(md5_, 5, 1), std::invalid_argument);
}

TEST_F(SelectorTest, NeverSelfMonitor) {
  HashMonitorSelector sel(md5_, 50, 100);  // huge K/N to stress it
  for (std::uint32_t i = 0; i < 500; ++i) {
    const NodeId id = NodeId::fromIndex(i);
    EXPECT_FALSE(sel.isMonitor(id, id));
  }
}

TEST_F(SelectorTest, ConsistencyVerdictNeverChanges) {
  // The core Consistency property: the verdict is a pure function of the
  // two ids — repeated queries, in any order, agree.
  HashMonitorSelector sel(md5_, 10, 1000);
  const NodeId a = NodeId::fromIndex(3), b = NodeId::fromIndex(8);
  const bool first = sel.isMonitor(a, b);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sel.isMonitor(a, b), first);
}

TEST_F(SelectorTest, VerifiabilityThirdPartyAgrees) {
  // Any third party computing the same scheme reaches the same verdict.
  hash::Md5HashFunction otherInstance;
  HashMonitorSelector sel1(md5_, 10, 1000);
  HashMonitorSelector sel2(otherInstance, 10, 1000);
  for (std::uint32_t i = 0; i < 50; ++i) {
    for (std::uint32_t j = 0; j < 50; ++j) {
      const NodeId a = NodeId::fromIndex(i), b = NodeId::fromIndex(j);
      EXPECT_EQ(sel1.isMonitor(a, b), sel2.isMonitor(a, b));
    }
  }
}

TEST_F(SelectorTest, DirectionalityMatters) {
  // y ∈ PS(x) does not imply x ∈ PS(y): the hash covers the ordered pair.
  HashMonitorSelector sel(md5_, 300, 1000);  // high rate to find examples
  int asymmetric = 0;
  for (std::uint32_t i = 0; i < 60 && asymmetric == 0; ++i) {
    for (std::uint32_t j = i + 1; j < 60; ++j) {
      const NodeId a = NodeId::fromIndex(i), b = NodeId::fromIndex(j);
      if (sel.isMonitor(a, b) != sel.isMonitor(b, a)) {
        ++asymmetric;
        break;
      }
    }
  }
  EXPECT_GT(asymmetric, 0);
}

TEST_F(SelectorTest, ExpectedPingingSetSizeIsK) {
  // Randomness/uniformity: over a population of N nodes, |PS(x)| ≈ K.
  constexpr std::size_t kN = 1000;
  constexpr unsigned kK = 10;
  HashMonitorSelector sel(md5_, kK, kN);

  std::vector<NodeId> ids;
  ids.reserve(kN);
  for (std::uint32_t i = 0; i < kN; ++i) ids.push_back(NodeId::fromIndex(i));

  double totalPs = 0;
  for (std::size_t x = 0; x < 200; ++x) {  // sample of targets
    std::size_t ps = 0;
    for (std::size_t y = 0; y < kN; ++y) {
      if (x == y) continue;
      ps += sel.isMonitor(ids[y], ids[x]) ? 1 : 0;
    }
    totalPs += static_cast<double>(ps);
  }
  const double meanPs = totalPs / 200.0;
  EXPECT_NEAR(meanPs, static_cast<double>(kK), 1.0);
}

TEST_F(SelectorTest, ThresholdIsExactlyKOverN) {
  const std::pair<unsigned, std::size_t> cases[] = {
      {1, 2}, {10, 1000}, {17, 131072}, {50, 100}, {1000, 1000}};
  for (const auto& [k, n] : cases) {
    HashMonitorSelector sel(md5_, k, n);
    EXPECT_DOUBLE_EQ(sel.threshold(),
                     static_cast<double>(k) / static_cast<double>(n))
        << "K=" << k << " N=" << n;
    EXPECT_EQ(sel.k(), k);
    EXPECT_EQ(sel.systemSize(), n);
  }
}

TEST_F(SelectorTest, HashPointStaysInUnitInterval) {
  HashMonitorSelector sel(md5_, 10, 1000);
  for (std::uint32_t i = 0; i < 60; ++i) {
    for (std::uint32_t j = 0; j < 60; ++j) {
      const double h = sel.hashPoint(NodeId::fromIndex(i), NodeId::fromIndex(j));
      EXPECT_GE(h, 0.0);
      EXPECT_LT(h, 1.0);
    }
  }
}

TEST_F(SelectorTest, NeverSelfMonitorEvenWithSaturatedThreshold) {
  // K >= N drives the threshold to >= 1, so the hash condition holds for
  // every pair — the explicit self-exclusion must still win.
  HashMonitorSelector sel(md5_, 2000, 1000);
  ASSERT_GE(sel.threshold(), 1.0);
  for (std::uint32_t i = 0; i < 200; ++i) {
    const NodeId id = NodeId::fromIndex(i);
    EXPECT_FALSE(sel.isMonitor(id, id));
    EXPECT_TRUE(sel.isMonitor(id, NodeId::fromIndex(i + 1)));
  }
}

TEST_F(SelectorTest, HashPointMatchesThresholdDecision) {
  HashMonitorSelector sel(md5_, 10, 1000);
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::uint32_t j = 0; j < 40; ++j) {
      if (i == j) continue;
      const NodeId a = NodeId::fromIndex(i), b = NodeId::fromIndex(j);
      EXPECT_EQ(sel.isMonitor(a, b), sel.hashPoint(a, b) <= sel.threshold());
    }
  }
}

TEST_F(SelectorTest, NonCorrelationAcrossTargets) {
  // Randomness condition 3(b): membership of y in PS(x) says nothing about
  // membership in PS(w). Estimate P(y∈PS(w) | y∈PS(x)) and compare with
  // the unconditional rate K/N.
  constexpr std::size_t kN = 2000;
  constexpr unsigned kK = 40;  // higher rate for statistical power
  HashMonitorSelector sel(md5_, kK, kN);

  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kN; ++i) ids.push_back(NodeId::fromIndex(i));
  const NodeId x = ids[0], w = ids[1];

  std::size_t inX = 0, inBoth = 0;
  for (std::size_t y = 2; y < kN; ++y) {
    const bool mx = sel.isMonitor(ids[y], x);
    const bool mw = sel.isMonitor(ids[y], w);
    inX += mx ? 1 : 0;
    inBoth += (mx && mw) ? 1 : 0;
  }
  ASSERT_GT(inX, 0u);
  const double conditional =
      static_cast<double>(inBoth) / static_cast<double>(inX);
  const double unconditional = static_cast<double>(kK) / kN;
  // Conditional rate should be close to unconditional (no correlation).
  EXPECT_LT(conditional, unconditional * 5 + 0.05);
}

TEST_F(SelectorTest, UniformAcrossCandidates) {
  // Randomness condition 3(a): every node is picked as monitor with the
  // same likelihood. Count how often each of a fixed candidate set lands
  // in pinging sets across many targets; counts should concentrate.
  constexpr std::size_t kN = 500;
  constexpr unsigned kK = 25;
  HashMonitorSelector sel(md5_, kK, kN);

  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kN; ++i) ids.push_back(NodeId::fromIndex(i));

  std::vector<int> monitorCount(kN, 0);
  for (std::size_t x = 0; x < kN; ++x) {
    for (std::size_t y = 0; y < kN; ++y) {
      if (x == y) continue;
      if (sel.isMonitor(ids[y], ids[x])) ++monitorCount[y];
    }
  }
  // Each candidate expects K·(N-1)/N ≈ 25 appearances, binomial stddev ≈ 5.
  for (std::size_t y = 0; y < kN; ++y) {
    EXPECT_GT(monitorCount[y], 2) << "node " << y << " starved";
    EXPECT_LT(monitorCount[y], 60) << "node " << y << " overloaded";
  }
}

TEST_F(SelectorTest, MemoizedMatchesInner) {
  HashMonitorSelector inner(md5_, 10, 500);
  MemoizedMonitorSelector memo(inner);
  for (std::uint32_t i = 0; i < 30; ++i) {
    for (std::uint32_t j = 0; j < 30; ++j) {
      const NodeId a = NodeId::fromIndex(i), b = NodeId::fromIndex(j);
      EXPECT_EQ(memo.isMonitor(a, b), inner.isMonitor(a, b));
      EXPECT_EQ(memo.isMonitor(a, b), inner.isMonitor(a, b));  // cached path
    }
  }
  EXPECT_GT(memo.cacheSize(), 0u);
}

// Same selection properties must hold for every hash backend.
class SelectorHashParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectorHashParamTest, ExpectedSetSizeHoldsForAllHashes) {
  const auto fn = hash::makeHashFunction(GetParam());
  constexpr std::size_t kN = 800;
  constexpr unsigned kK = 12;
  HashMonitorSelector sel(*fn, kK, kN);

  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kN; ++i) ids.push_back(NodeId::fromIndex(i));
  double total = 0;
  for (std::size_t x = 0; x < 100; ++x) {
    std::size_t ps = 0;
    for (std::size_t y = 0; y < kN; ++y) {
      if (x != y && sel.isMonitor(ids[y], ids[x])) ++ps;
    }
    total += static_cast<double>(ps);
  }
  EXPECT_NEAR(total / 100.0, static_cast<double>(kK), 2.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllHashes, SelectorHashParamTest,
                         ::testing::Values("md5", "sha1", "splitmix64"));

}  // namespace
}  // namespace avmon
