// Proof layer for the debug-mode shard-race sentinel (det_checks.hpp):
// cross-shard Rng draws and off-shard schedule() calls must abort with a
// "determinism sentinel" diagnostic while a window phase is in flight, and
// every legitimate pattern — setup, owner-scoped work, sanctioned barrier
// activity, whole sharded runs — must pass untouched. The whole suite
// skips when the sentinel is compiled out (default builds); CI runs it
// under -DAVMON_DET_CHECKS=ON.
#include <gtest/gtest.h>

#include <string>

#include "common/det_checks.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

#ifndef AVMON_DET_CHECKS

TEST(DetSentinelTest, SentinelCompiledOut) {
  GTEST_SKIP() << "built without AVMON_DET_CHECKS; sentinel is compiled out";
}

#else  // AVMON_DET_CHECKS

namespace avmon::sim {
namespace {

constexpr char kDiagnostic[] = "determinism sentinel";

// Death tests fork; keep them safe next to any thread the fixture spawned.
class DetSentinelDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GTEST_FLAG_SET(death_test_style, "threadsafe");
  }
};

// Counts deliveries so the clean-run test can assert traffic flowed.
class CountingEndpoint final : public Endpoint {
 public:
  void onMessage(const NodeId&, const Message&) override { ++received; }
  int received = 0;
};

ShardedSimulator::Config twoShardConfig() {
  ShardedSimulator::Config cfg;
  cfg.shards = 2;
  cfg.net.minLatency = 10;
  cfg.net.maxLatency = 10;
  cfg.net.deferredRpc = true;
  cfg.netSeed = 7;
  cfg.threads = 1;  // all phases on this thread: death tests stay simple
  return cfg;
}

// ------------------------------------------------------ primitive checks

TEST(DetSentinelTest, UnboundRngDrawsFreely) {
  Rng rng(1);
  det::Domain other;
  det::PhaseScope phase{other};  // someone else's world is busy
  (void)rng();                   // untagged object: always legal
  SUCCEED();
}

TEST(DetSentinelTest, BoundRngPassesOutsidePhaseAndUnderOwnerScope) {
  det::Domain domain;
  Rng rng(1);
  rng.detTag.bind(&domain, 0);
  (void)rng();  // no phase in flight: setup/probe access is legal
  det::PhaseScope phase{domain};
  {
    det::ShardScope scope(&domain, 0);
    (void)rng();  // owning shard scope: legal mid-phase
  }
  {
    det::SanctionScope sanction;
    (void)rng();  // sanctioned barrier work: legal anywhere
  }
  SUCCEED();
}

TEST_F(DetSentinelDeathTest, UnscopedDrawDuringPhaseAborts) {
  det::Domain domain;
  Rng rng(1);
  rng.detTag.bind(&domain, 0);
  det::PhaseScope phase{domain};
  EXPECT_DEATH((void)rng(), kDiagnostic);
}

TEST_F(DetSentinelDeathTest, WrongShardScopeAborts) {
  det::Domain domain;
  Rng rng(1);
  rng.detTag.bind(&domain, 0);
  det::ShardScope scope(&domain, 1);  // holding the NEIGHBOUR's shard
  EXPECT_DEATH((void)rng(), kDiagnostic);
}

TEST(DetSentinelTest, ForkInheritsBindingCopyDrawsUnderOwnerScope) {
  det::Domain domain;
  Rng rng(1);
  rng.detTag.bind(&domain, 3);
  Rng child = rng.fork();
  det::PhaseScope phase{domain};
  det::ShardScope scope(&domain, 3);
  (void)child();  // fork copies the tag: still shard 3's stream
  SUCCEED();
}

// --------------------------------------------------- integration: world

TEST_F(DetSentinelDeathTest, CrossShardRngDrawInsideEventAborts) {
  ShardedSimulator world(twoShardConfig());
  const NodeId a = NodeId::fromIndex(1);  // index 0 -> shard 0
  const NodeId b = NodeId::fromIndex(2);  // index 1 -> shard 1
  world.registerNode(a);
  world.registerNode(b);
  Rng foreign(1);
  // Model a node on shard 1: its rng is bound like shard 1's simulator.
  AVMON_DET_BIND_LIKE(foreign.detTag, world.simOf(1).detTag);
  // ...but an event running on shard 0 reaches over and draws from it.
  world.simOf(0).at(3, [&] { (void)foreign(); });
  EXPECT_DEATH(world.runUntil(100), kDiagnostic);
}

TEST_F(DetSentinelDeathTest, OffShardScheduleInsideEventAborts) {
  ShardedSimulator world(twoShardConfig());
  const NodeId a = NodeId::fromIndex(1);
  const NodeId b = NodeId::fromIndex(2);
  world.registerNode(a);
  world.registerNode(b);
  // An event on shard 0 schedules directly into shard 1's calendar —
  // exactly the race the hand-off queues exist to prevent.
  world.simOf(0).at(3, [&] { world.simOf(1).at(50, [] {}); });
  EXPECT_DEATH(world.runUntil(100), kDiagnostic);
}

TEST(DetSentinelTest, ShardedTrafficRunsCleanWithChecksOn) {
  ShardedSimulator world(twoShardConfig());
  const NodeId a = NodeId::fromIndex(1);
  const NodeId b = NodeId::fromIndex(2);
  world.registerNode(a);
  world.registerNode(b);
  CountingEndpoint ea, eb;
  world.netOf(0).attach(a, ea);
  world.netOf(1).attach(b, eb);
  world.netOf(0).setUp(a, true);
  world.netOf(1).setUp(b, true);
  for (SimTime t = 1; t <= 41; t += 10) {
    world.simOf(0).at(t, [&] {
      world.netOf(0).send(a, b, TextMessage{"ping", 1});
    });
    world.simOf(1).at(t, [&] {
      world.netOf(1).send(b, a, TextMessage{"pong", 1});
    });
  }
  world.runUntil(200);  // owner-scoped phases: every check passes
  EXPECT_EQ(ea.received, 5);
  EXPECT_EQ(eb.received, 5);
  EXPECT_GT(world.windowsRun(), 0u);
}

TEST(DetSentinelTest, SetupAndPostRunProbesPassFromMainThread) {
  ShardedSimulator world(twoShardConfig());
  const NodeId a = NodeId::fromIndex(1);
  const NodeId b = NodeId::fromIndex(2);
  world.registerNode(a);
  world.registerNode(b);
  CountingEndpoint ea, eb;
  world.netOf(0).attach(a, ea);
  world.netOf(1).attach(b, eb);
  world.netOf(0).setUp(a, true);
  world.netOf(1).setUp(b, true);
  world.simOf(0).at(3, [&] {
    world.netOf(0).send(a, b, TextMessage{"x", 1});
  });
  world.runUntil(100);
  // Between runs no phase is in flight: unscoped main-thread access to
  // bound shard state (schedule, send, counters) is legal.
  world.simOf(1).at(150, [] {});
  world.netOf(0).send(a, b, TextMessage{"y", 1});
  world.runUntil(300);
  EXPECT_EQ(eb.received, 2);
}

}  // namespace
}  // namespace avmon::sim

#endif  // AVMON_DET_CHECKS
