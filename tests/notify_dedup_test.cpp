// NOTIFY deduplication: with dedup on (default) a node reports each
// discovered pair once; with dedup off it re-notifies on every fetch that
// rediscovers the pair (Figure 2 as literally written). Either way the
// installed monitoring relations are identical — NOTIFY is idempotent.
//
// The cache behind it is the generational NotifyDedupCache: two epochs,
// lookups consult both, rotation at half capacity — so hot pairs survive
// the eviction events that used to wipe the whole set.
#include <gtest/gtest.h>

#include <algorithm>

#include <memory>
#include <vector>

#include "avmon/node.hpp"
#include "avmon/notify_dedup.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon {
namespace {

struct MiniCluster {
  explicit MiniCluster(AvmonConfig cfg, std::uint64_t seed = 3)
      : config(std::move(cfg)),
        selector(hashFn, config.k, config.systemSize),
        net(sim, sim::NetworkConfig{}, Rng(seed)),
        root(seed + 1) {}

  void spawn(std::size_t count) {
    const auto bootstrap = [this](const NodeId& self) {
      for (int i = 0; i < 4; ++i) {
        if (alive.empty()) return NodeId{};
        const NodeId pick = alive[root.index(alive.size())];
        if (pick != self) return pick;
      }
      return NodeId{};
    };
    for (std::size_t i = 0; i < count; ++i) {
      nodes.push_back(std::make_unique<AvmonNode>(
          NodeId::fromIndex(static_cast<std::uint32_t>(i)), config, selector,
          sim, net, bootstrap, root.fork()));
      nodes.back()->join(true);
      alive.push_back(nodes.back()->id());
    }
  }

  std::uint64_t totalNotifies() const {
    std::uint64_t n = 0;
    for (const auto& node : nodes) n += node->metrics().notifiesSent;
    return n;
  }

  std::size_t totalPs() const {
    std::size_t n = 0;
    for (const auto& node : nodes) n += node->pingingSet().size();
    return n;
  }

  AvmonConfig config;
  sim::Simulator sim;
  hash::SplitMix64HashFunction hashFn;
  HashMonitorSelector selector;
  sim::Network net;
  Rng root;
  std::vector<NodeId> alive;
  std::vector<std::unique_ptr<AvmonNode>> nodes;
};

AvmonConfig dedupConfig(bool dedup) {
  AvmonConfig cfg = AvmonConfig::paperDefaults(60);
  cfg.protocolPeriod = 10 * kSecond;
  cfg.monitoringPeriod = 10 * kSecond;
  cfg.notifyDedup = dedup;
  return cfg;
}

TEST(NotifyDedupTest, DedupSendsFarFewerNotifies) {
  MiniCluster with(dedupConfig(true));
  with.spawn(60);
  with.sim.runUntil(40 * kMinute);

  MiniCluster without(dedupConfig(false), 3);  // same seed: same topology
  without.spawn(60);
  without.sim.runUntil(40 * kMinute);

  EXPECT_LT(with.totalNotifies() * 3, without.totalNotifies());
}

TEST(NotifyDedupTest, InstalledRelationsAreEquivalent) {
  MiniCluster with(dedupConfig(true));
  with.spawn(60);
  with.sim.runUntil(40 * kMinute);

  MiniCluster without(dedupConfig(false), 3);
  without.spawn(60);
  without.sim.runUntil(40 * kMinute);

  // Same seed, same trajectory of views — discovery outcomes must agree
  // closely (dedup only suppresses redundant re-sends).
  const double a = static_cast<double>(with.totalPs());
  const double b = static_cast<double>(without.totalPs());
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  EXPECT_NEAR(a / b, 1.0, 0.25);
}

TEST(NotifyDedupTest, SteadyStateNotifyRateDropsToZero) {
  MiniCluster c(dedupConfig(true));
  c.spawn(50);
  c.sim.runUntil(60 * kMinute);
  const std::uint64_t early = c.totalNotifies();
  c.sim.runUntil(90 * kMinute);
  const std::uint64_t late = c.totalNotifies() - early;
  // All pairs discovered long ago: the last half hour should add almost
  // no NOTIFY traffic.
  EXPECT_LT(late, early / 5);
}

TEST(NotifyDedupTest, CacheStaysBoundedUnderLongRuns) {
  AvmonConfig cfg = dedupConfig(true);
  cfg.notifyDedupMax = 64;  // far below the pairs a 60-node run discovers
  MiniCluster c(cfg);
  c.spawn(60);
  c.sim.runUntil(60 * kMinute);

  std::size_t maxSeen = 0;
  for (const auto& node : c.nodes) {
    maxSeen = std::max(maxSeen, node->notifyDedupCacheSize());
    EXPECT_LE(node->notifyDedupCacheSize(), cfg.notifyDedupMax);
  }
  EXPECT_GT(maxSeen, 0u);  // the cache is actually in use
}

TEST(NotifyDedupTest, LeaveClearsSessionStateAndRejoinStillDedups) {
  MiniCluster c(dedupConfig(true));
  c.spawn(40);
  c.sim.runUntil(30 * kMinute);

  AvmonNode& bouncer = *c.nodes[0];
  ASSERT_GT(bouncer.notifyDedupCacheSize(), 0u);

  bouncer.leave();
  EXPECT_EQ(bouncer.notifyDedupCacheSize(), 0u);

  c.sim.runUntil(35 * kMinute);
  bouncer.join(false);
  c.sim.runUntil(65 * kMinute);

  // The rejoined session runs the discovery loop again: the cache refills
  // from empty and dedup keeps steady-state NOTIFY traffic flat.
  EXPECT_GT(bouncer.notifyDedupCacheSize(), 0u);
  const std::uint64_t afterWarmup = c.totalNotifies();
  c.sim.runUntil(95 * kMinute);
  EXPECT_LT(c.totalNotifies() - afterWarmup, afterWarmup / 5);
}

// ---- NotifyDedupCache unit behaviour (generational eviction) ----

TEST(NotifyDedupCacheTest, InsertReportsNewVsDuplicate) {
  NotifyDedupCache cache(16);
  EXPECT_TRUE(cache.insert(1));
  EXPECT_TRUE(cache.insert(2));
  EXPECT_FALSE(cache.insert(1));  // already notified
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_FALSE(cache.contains(3));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(NotifyDedupCacheTest, RecentInsertsSurviveOneRotation) {
  // Capacity 8 → epochs of 4. The first rotation must NOT forget the keys
  // that triggered it (they move to the previous epoch); only the second
  // rotation ages them out.
  NotifyDedupCache cache(8);
  for (std::uint64_t k = 1; k <= 4; ++k) EXPECT_TRUE(cache.insert(k));
  // Epoch rotated at the 4th insert; all four keys must still dedup.
  for (std::uint64_t k = 1; k <= 4; ++k) EXPECT_FALSE(cache.insert(k));

  for (std::uint64_t k = 5; k <= 8; ++k) EXPECT_TRUE(cache.insert(k));
  // Second rotation: the first generation is gone, the second survives.
  for (std::uint64_t k = 1; k <= 4; ++k) EXPECT_FALSE(cache.contains(k));
  for (std::uint64_t k = 5; k <= 8; ++k) EXPECT_TRUE(cache.contains(k));
}

TEST(NotifyDedupCacheTest, HotKeysSurviveRepeatedRotations) {
  // A key that keeps being rediscovered is re-registered in the current
  // epoch on every hit, so no amount of cold churn ages it out — the
  // periodic re-NOTIFY burst of the old reset-on-full scheme is gone.
  NotifyDedupCache cache(8);  // epochs of 4: plenty of rotations below
  EXPECT_TRUE(cache.insert(99));
  for (std::uint64_t k = 0; k < 40; ++k) {
    cache.insert(1000 + k);          // cold churn driving rotations
    EXPECT_FALSE(cache.insert(99));  // the hot key is never forgotten
  }
}

TEST(NotifyDedupCacheTest, SizeNeverExceedsBound) {
  constexpr std::size_t kBound = 64;
  NotifyDedupCache cache(kBound);
  std::size_t maxSeen = 0;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    cache.insert(k * 2654435761ULL);
    maxSeen = std::max(maxSeen, cache.size());
    ASSERT_LE(cache.size(), kBound);
  }
  EXPECT_GT(maxSeen, kBound / 2);  // the cache actually fills up
}

TEST(NotifyDedupCacheTest, TinyCapacityStillWorks) {
  NotifyDedupCache cache(1);
  EXPECT_TRUE(cache.insert(7));
  EXPECT_FALSE(cache.insert(7));  // remembered across the forced rotation
  EXPECT_LE(cache.size(), 1u);
  EXPECT_TRUE(cache.insert(8));
  EXPECT_LE(cache.size(), 1u);
}

TEST(NotifyDedupCacheTest, ClearDropsBothGenerations) {
  NotifyDedupCache cache(8);
  for (std::uint64_t k = 1; k <= 6; ++k) cache.insert(k);  // spans epochs
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (std::uint64_t k = 1; k <= 6; ++k) EXPECT_FALSE(cache.contains(k));
}

TEST(NotifyDedupTest, HotPairsKeepDedupingAcrossEvictionEvents) {
  // End-to-end version of the generational property: with a cache far
  // smaller than the discovered-pair population, eviction events keep
  // happening — yet NOTIFY traffic must stay well below the no-dedup
  // rate, because the hot pairs rediscovered every period remain cached
  // in the surviving epoch.
  AvmonConfig cfg = dedupConfig(true);
  cfg.notifyDedupMax = 64;
  MiniCluster tiny(cfg);
  tiny.spawn(60);
  tiny.sim.runUntil(60 * kMinute);

  MiniCluster unbounded(dedupConfig(true), 3);  // same seed, default bound
  unbounded.spawn(60);
  unbounded.sim.runUntil(60 * kMinute);

  MiniCluster off(dedupConfig(false), 3);
  off.spawn(60);
  off.sim.runUntil(60 * kMinute);

  // Bounded-cache traffic exceeds the unbounded ideal (re-NOTIFYs after
  // epochs age out) but stays far below the dedup-off firehose.
  EXPECT_GE(tiny.totalNotifies(), unbounded.totalNotifies());
  EXPECT_LT(tiny.totalNotifies() * 2, off.totalNotifies());
}

}  // namespace
}  // namespace avmon
