// Failure-injection tests: the paper assumes reliable channels, but a
// robust implementation must degrade gracefully when JOIN/NOTIFY messages
// drop or RPCs time out spuriously — discovery still completes (losses
// are repaired by later gossip rounds), and no invariant breaks.
#include <gtest/gtest.h>

#include "experiments/scenario.hpp"

namespace avmon::experiments {
namespace {

Scenario lossyScenario(double drop, double rpcFail) {
  Scenario s;
  s.model = churn::Model::kStat;
  s.stableSize = 150;
  s.horizon = 2 * kHour;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 77;
  s.hashName = "splitmix64";
  s.messageDropProbability = drop;
  s.rpcFailProbability = rpcFail;
  return s;
}

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, DiscoveryStillCompletesUnderMessageLoss) {
  ScenarioRunner runner(lossyScenario(GetParam(), 0.0));
  runner.run();
  // Losses delay NOTIFYs but later rounds re-discover: most control
  // nodes still find a monitor within the run.
  EXPECT_GT(runner.discoveredFraction(1), 0.7) << "drop=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossSweep,
                         ::testing::Values(0.05, 0.15, 0.30));

TEST(ResilienceTest, RpcTimeoutsSlowButDontBreakDiscovery) {
  ScenarioRunner runner(lossyScenario(0.0, 0.2));
  runner.run();
  EXPECT_GT(runner.discoveredFraction(1), 0.7);
}

TEST(ResilienceTest, InvariantsHoldUnderCombinedFaults) {
  Scenario s = lossyScenario(0.2, 0.2);
  s.model = churn::Model::kSynthBD;  // faults plus churn
  ScenarioRunner runner(s);
  runner.run();

  hash::SplitMix64HashFunction hashFn;
  HashMonitorSelector selector(hashFn, runner.config().k, runner.effectiveN());
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    // Soundness: even under faults, nothing unverified is installed.
    for (const NodeId& m : node.pingingSet()) {
      ASSERT_TRUE(selector.isMonitor(m, node.id()));
    }
    EXPECT_LE(node.coarseView().size(), runner.config().cvs);
  }
}

TEST(ResilienceTest, RpcFaultsDontCorruptCoarseViewBound) {
  // Spurious ping timeouts cause healthy entries to be dropped — views
  // shrink but must recover via shuffling, never exceed cvs, and never
  // contain the node itself.
  Scenario s = lossyScenario(0.0, 0.3);
  ScenarioRunner runner(s);
  runner.run();
  std::size_t nonEmpty = 0;
  for (const auto& nt : runner.schedule().nodes()) {
    const AvmonNode& node = runner.node(nt.id);
    EXPECT_LE(node.coarseView().size(), runner.config().cvs);
    for (const NodeId& n : node.coarseView()) EXPECT_NE(n, node.id());
    nonEmpty += node.coarseView().empty() ? 0 : 1;
  }
  // The overlay survives: the vast majority of nodes keep a live view.
  EXPECT_GT(nonEmpty, runner.schedule().nodes().size() * 8 / 10);
}

TEST(ResilienceTest, LossDegradesGracefullyNotCliff) {
  // Heavier loss should not collapse discovery to zero — check the trend
  // is gradual between 0% and 30% loss.
  double clean = 0, lossy = 0;
  {
    ScenarioRunner runner(lossyScenario(0.0, 0.0));
    runner.run();
    clean = runner.discoveredFraction(1);
  }
  {
    ScenarioRunner runner(lossyScenario(0.3, 0.0));
    runner.run();
    lossy = runner.discoveredFraction(1);
  }
  EXPECT_GT(clean, 0.9);
  EXPECT_GT(lossy, clean * 0.75);
}

}  // namespace
}  // namespace avmon::experiments
