// Golden-hash helper for the scheduler-determinism regression tests.
//
// Folds every metric a completed ScenarioRunner exposes — the summary
// vectors, the accuracy table, and a per-node "CSV" row in schedule order —
// into one FNV-1a fingerprint. Any change to event ordering, RNG draw
// order, or metric arithmetic moves the hash; identical seeded runs are
// bit-identical and reproduce it exactly. scenario_metrics_test pins the
// current values per RPC lane (they must survive every scheduler /
// transport / harness rewrite), and sharded_sim_test additionally proves
// them identical for every shard count of the sharded simulator.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "experiments/scenario.hpp"

namespace avmon::experiments {

class MetricsFingerprint {
 public:
  void mix(std::uint64_t x) noexcept {
    // 64-bit FNV-1a over the 8 bytes of x.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (x >> (8 * i)) & 0xFF;
      hash_ *= 1099511628211ULL;
    }
  }

  void mixDouble(double d) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }

  void mixVector(const std::vector<double>& v) noexcept {
    mix(v.size());
    for (double d : v) mixDouble(d);
  }

  std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV offset basis
};

/// Fingerprint of everything a run reports: summary metric vectors, the
/// availability-accuracy table, and one row per node in schedule order.
inline std::uint64_t summaryHash(const ScenarioRunner& runner) {
  MetricsFingerprint fp;

  fp.mixVector(runner.discoveryDelaysSeconds(1));
  fp.mixVector(runner.discoveryDelaysSeconds(3));
  fp.mixDouble(runner.discoveredFraction(1));
  fp.mixVector(runner.computationsPerSecond());
  fp.mixVector(runner.memoryEntries(/*measuredOnly=*/false));
  fp.mixVector(runner.outgoingBytesPerSecond());
  fp.mixVector(runner.uselessPingsPerMinute());

  const auto accuracy = runner.availabilityAccuracy(/*measuredOnly=*/true);
  fp.mix(accuracy.size());
  for (const auto& a : accuracy) {
    fp.mix((static_cast<std::uint64_t>(a.id.ip()) << 16) | a.id.port());
    fp.mixDouble(a.estimated);
    fp.mixDouble(a.actual);
    fp.mix(a.reporters);
  }
  return fp.value();
}

/// Fingerprint of the per-node CSV: id, traffic counters, protocol
/// counters, and state sizes for every node, in schedule order.
inline std::uint64_t perNodeHash(const ScenarioRunner& runner) {
  MetricsFingerprint fp;
  const auto& nodes = runner.schedule().nodes();
  fp.mix(nodes.size());
  for (const auto& nt : nodes) {
    const AvmonNode& node = runner.node(nt.id);
    fp.mix((static_cast<std::uint64_t>(nt.id.ip()) << 16) | nt.id.port());
    const NodeMetrics& m = node.metrics();
    fp.mix(m.hashChecks);
    fp.mix(m.notifiesSent);
    fp.mix(m.joinsForwarded);
    fp.mix(m.joinsReceived);
    fp.mix(m.joinAdds);
    fp.mix(m.cvFetches);
    fp.mix(m.monitoringPingsSent);
    fp.mix(m.uselessPings);
    fp.mix(m.forgetfulSuppressed);
    fp.mix(node.coarseView().size());
    fp.mix(node.pingingSet().size());
    fp.mix(node.targetSet().size());
    if (const auto d = node.discoveryDelay(1)) {
      fp.mix(static_cast<std::uint64_t>(*d));
    } else {
      fp.mix(0xFFFFFFFFFFFFFFFFULL);
    }
  }
  return fp.value();
}

/// The three seeded workloads the golden test pins: STAT, SYNTH-BD, and
/// SYNTH with injected network faults (drops + RPC timeouts).
inline std::vector<Scenario> goldenScenarios() {
  Scenario stat;
  stat.model = churn::Model::kStat;
  stat.stableSize = 120;
  stat.horizon = 90 * kMinute;
  stat.warmup = 30 * kMinute;
  stat.controlFraction = 0.1;
  stat.seed = 314;
  stat.hashName = "splitmix64";

  Scenario synthBd = stat;
  synthBd.model = churn::Model::kSynthBD;
  synthBd.seed = 271;

  Scenario synthDrop = stat;
  synthDrop.model = churn::Model::kSynth;
  synthDrop.seed = 99;
  synthDrop.messageDropProbability = 0.05;
  synthDrop.rpcFailProbability = 0.02;

  return {stat, synthBd, synthDrop};
}

}  // namespace avmon::experiments
