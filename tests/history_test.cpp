// Availability-history store tests (raw / recent / aged / compact).
#include <gtest/gtest.h>

#include "churn/churn_model.hpp"
#include "history/availability_history.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::history {
namespace {

bool upAt(const trace::NodeTrace& nt, SimTime t) {
  for (const trace::Interval& s : nt.sessions) {
    if (s.start <= t && t < s.end) return true;
  }
  return false;
}

TEST(RawHistoryTest, EstimateIsUpFraction) {
  RawHistory h;
  EXPECT_DOUBLE_EQ(h.estimate(), 0.0);
  h.record(1, true);
  h.record(2, true);
  h.record(3, false);
  h.record(4, true);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.75);
  EXPECT_EQ(h.sampleCount(), 4u);
}

TEST(RawHistoryTest, WindowedEstimate) {
  RawHistory h;
  for (SimTime t = 0; t < 10; ++t) h.record(t, t >= 5);
  EXPECT_DOUBLE_EQ(h.estimateWindow(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(h.estimateWindow(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(h.estimateWindow(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(h.estimateWindow(20, 30), 0.0);  // empty window
}

TEST(RawHistoryTest, KeepsFullSampleLog) {
  RawHistory h;
  h.record(10, true);
  h.record(20, false);
  ASSERT_EQ(h.samples().size(), 2u);
  EXPECT_EQ(h.samples()[0].when, 10);
  EXPECT_TRUE(h.samples()[0].up);
  EXPECT_FALSE(h.samples()[1].up);
}

TEST(RecentHistoryTest, SlidingWindowEvictsOldest) {
  RecentHistory h(3);
  h.record(1, false);
  h.record(2, false);
  h.record(3, true);
  EXPECT_NEAR(h.estimate(), 1.0 / 3.0, 1e-12);
  h.record(4, true);  // evicts the first false
  EXPECT_NEAR(h.estimate(), 2.0 / 3.0, 1e-12);
  h.record(5, true);  // evicts the second false
  EXPECT_DOUBLE_EQ(h.estimate(), 1.0);
  EXPECT_EQ(h.sampleCount(), 3u);
}

TEST(RecentHistoryTest, RejectsZeroCapacity) {
  EXPECT_THROW(RecentHistory h(0), std::invalid_argument);
}

TEST(AgedHistoryTest, ConvergesTowardRecentValue) {
  AgedHistory h(0.5);
  h.record(1, true);
  EXPECT_DOUBLE_EQ(h.estimate(), 1.0);  // first sample initializes
  h.record(2, false);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.5);
  h.record(3, false);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.25);
  for (int i = 0; i < 30; ++i) h.record(10 + i, false);
  EXPECT_LT(h.estimate(), 0.01);
}

TEST(AgedHistoryTest, RejectsBadAlpha) {
  EXPECT_THROW(AgedHistory h(0.0), std::invalid_argument);
  EXPECT_THROW(AgedHistory h(-1.0), std::invalid_argument);
  EXPECT_THROW(AgedHistory h(1.5), std::invalid_argument);
  EXPECT_NO_THROW(AgedHistory h(1.0));
}

TEST(CompactHistoryTest, ExtendsPureRunsAndCoalescesOldest) {
  CompactHistory h(2);
  h.record(1, true);
  h.record(2, true);
  EXPECT_EQ(h.runs().size(), 1u);
  h.record(3, false);
  EXPECT_EQ(h.runs().size(), 2u);
  h.record(4, true);  // third run — the two oldest coalesce into one
  ASSERT_EQ(h.runs().size(), 2u);
  EXPECT_EQ(h.runs()[0].first, 1);
  EXPECT_EQ(h.runs()[0].last, 3);
  EXPECT_EQ(h.runs()[0].total, 3u);
  EXPECT_EQ(h.runs()[0].up, 2u);
  EXPECT_EQ(h.runs()[1].total, 1u);
  // Coarsening never touches the headline counters.
  EXPECT_EQ(h.sampleCount(), 4u);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.75);
}

TEST(CompactHistoryTest, MixedRunIsNeverExtended) {
  CompactHistory h(2);
  h.record(1, true);
  h.record(2, false);
  h.record(3, true);  // coalesce -> runs_[0] mixed {t1..t2}
  h.record(4, true);  // extends the pure tail run, not the mixed head
  ASSERT_EQ(h.runs().size(), 2u);
  EXPECT_EQ(h.runs()[0].total, 2u);
  EXPECT_EQ(h.runs()[1].total, 2u);
  EXPECT_EQ(h.runs()[1].up, 2u);
}

TEST(CompactHistoryTest, RejectsBudgetBelowTwo) {
  EXPECT_THROW(CompactHistory h(0), std::invalid_argument);
  EXPECT_THROW(CompactHistory h(1), std::invalid_argument);
  EXPECT_NO_THROW(CompactHistory h(2));
}

TEST(CompactHistoryTest, SampleSpanMatchesRaw) {
  RawHistory raw;
  CompactHistory compact(4);
  EXPECT_FALSE(compact.sampleSpan().has_value());
  for (SimTime t = 5; t <= 95; t += 10) {
    const bool up = (t / 10) % 3 != 0;
    raw.record(t, up);
    compact.record(t, up);
  }
  ASSERT_TRUE(compact.sampleSpan().has_value());
  EXPECT_EQ(compact.sampleSpan()->first, raw.sampleSpan()->first);
  EXPECT_EQ(compact.sampleSpan()->last, raw.sampleSpan()->last);
}

// The satellite equivalence suite: on sample streams drawn from the
// paper's four synthetic churn models, the compact store's estimate,
// sample count, and span are IDENTICAL to RawHistory's (bit-for-bit —
// both divide the same integer counters) even with a run budget far below
// the sample count, while the run table stays within budget.
class CompactEquivalenceTest : public ::testing::TestWithParam<churn::Model> {
};

TEST_P(CompactEquivalenceTest, MatchesRawOnChurnSignals) {
  churn::WorkloadParams workload;
  workload.stableSize = 40;
  workload.horizon = 4 * kHour;
  workload.controlFraction = 0.2;
  workload.controlJoinTime = 30 * kMinute;
  workload.seed = 7;
  const trace::AvailabilityTrace trace =
      churn::generate(GetParam(), workload);
  const SimDuration period = 2 * kMinute;
  constexpr std::size_t kBudget = 2;  // tightest legal budget
  std::size_t coarsened = 0;
  for (const trace::NodeTrace& nt : trace.nodes()) {
    RawHistory raw;
    CompactHistory compact(kBudget);
    std::size_t rawRuns = 0;  // maximal same-value spans of the stream
    bool prev = false;
    for (SimTime t = 0; t <= workload.horizon; t += period) {
      const bool up = upAt(nt, t);
      if (rawRuns == 0 || up != prev) ++rawRuns;
      prev = up;
      raw.record(t, up);
      compact.record(t, up);
    }
    ASSERT_EQ(compact.sampleCount(), raw.sampleCount());
    EXPECT_DOUBLE_EQ(compact.estimate(), raw.estimate());
    ASSERT_TRUE(compact.sampleSpan().has_value());
    EXPECT_EQ(compact.sampleSpan()->first, raw.sampleSpan()->first);
    EXPECT_EQ(compact.sampleSpan()->last, raw.sampleSpan()->last);
    ASSERT_LE(compact.runs().size(), compact.maxRuns());
    if (rawRuns > compact.maxRuns()) ++coarsened;
  }
  // The budget must actually bind somewhere, or the suite proves nothing.
  // STAT is exempt: its streams have at most two runs (a control node's
  // pre-join gap, then up forever), which is exactly the budget.
  if (GetParam() != churn::Model::kStat) EXPECT_GT(coarsened, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperChurnModels, CompactEquivalenceTest,
                         ::testing::Values(churn::Model::kStat,
                                           churn::Model::kSynth,
                                           churn::Model::kSynthBD,
                                           churn::Model::kSynthBD2));

TEST(HistoryFactoryTest, BuildsAllStyles) {
  EXPECT_EQ(makeHistory("raw")->name(), "raw");
  EXPECT_EQ(makeHistory("recent")->name(), "recent");
  EXPECT_EQ(makeHistory("aged")->name(), "aged");
  EXPECT_EQ(makeHistory("compact")->name(), "compact");
  EXPECT_THROW(makeHistory("bogus"), std::invalid_argument);
}

TEST(HistoryFactoryTest, HonorsParameters) {
  const auto recent = makeHistory("recent", 7);
  auto* r = dynamic_cast<RecentHistory*>(recent.get());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->capacity(), 7u);

  const auto aged = makeHistory("aged", 0.25);
  auto* a = dynamic_cast<AgedHistory*>(aged.get());
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->alpha(), 0.25);

  const auto compact = makeHistory("compact", 6);
  auto* c = dynamic_cast<CompactHistory*>(compact.get());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->maxRuns(), 6u);
  const auto unparam = makeHistory("compact");
  auto* d = dynamic_cast<CompactHistory*>(unparam.get());
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->maxRuns(), CompactHistory::kDefaultMaxRuns);
}

// Property: all stores agree on a constant signal.
class HistoryAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HistoryAgreementTest, ConstantSignalEstimatesExactly) {
  for (bool value : {true, false}) {
    const auto h = makeHistory(GetParam());
    for (SimTime t = 0; t < 100; ++t) h->record(t, value);
    EXPECT_DOUBLE_EQ(h->estimate(), value ? 1.0 : 0.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, HistoryAgreementTest,
                         ::testing::Values("raw", "recent", "aged"));

}  // namespace
}  // namespace avmon::history
