// Availability-history store tests (raw / recent / aged).
#include <gtest/gtest.h>

#include "history/availability_history.hpp"

namespace avmon::history {
namespace {

TEST(RawHistoryTest, EstimateIsUpFraction) {
  RawHistory h;
  EXPECT_DOUBLE_EQ(h.estimate(), 0.0);
  h.record(1, true);
  h.record(2, true);
  h.record(3, false);
  h.record(4, true);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.75);
  EXPECT_EQ(h.sampleCount(), 4u);
}

TEST(RawHistoryTest, WindowedEstimate) {
  RawHistory h;
  for (SimTime t = 0; t < 10; ++t) h.record(t, t >= 5);
  EXPECT_DOUBLE_EQ(h.estimateWindow(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(h.estimateWindow(5, 10), 1.0);
  EXPECT_DOUBLE_EQ(h.estimateWindow(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(h.estimateWindow(20, 30), 0.0);  // empty window
}

TEST(RawHistoryTest, KeepsFullSampleLog) {
  RawHistory h;
  h.record(10, true);
  h.record(20, false);
  ASSERT_EQ(h.samples().size(), 2u);
  EXPECT_EQ(h.samples()[0].when, 10);
  EXPECT_TRUE(h.samples()[0].up);
  EXPECT_FALSE(h.samples()[1].up);
}

TEST(RecentHistoryTest, SlidingWindowEvictsOldest) {
  RecentHistory h(3);
  h.record(1, false);
  h.record(2, false);
  h.record(3, true);
  EXPECT_NEAR(h.estimate(), 1.0 / 3.0, 1e-12);
  h.record(4, true);  // evicts the first false
  EXPECT_NEAR(h.estimate(), 2.0 / 3.0, 1e-12);
  h.record(5, true);  // evicts the second false
  EXPECT_DOUBLE_EQ(h.estimate(), 1.0);
  EXPECT_EQ(h.sampleCount(), 3u);
}

TEST(RecentHistoryTest, RejectsZeroCapacity) {
  EXPECT_THROW(RecentHistory h(0), std::invalid_argument);
}

TEST(AgedHistoryTest, ConvergesTowardRecentValue) {
  AgedHistory h(0.5);
  h.record(1, true);
  EXPECT_DOUBLE_EQ(h.estimate(), 1.0);  // first sample initializes
  h.record(2, false);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.5);
  h.record(3, false);
  EXPECT_DOUBLE_EQ(h.estimate(), 0.25);
  for (int i = 0; i < 30; ++i) h.record(10 + i, false);
  EXPECT_LT(h.estimate(), 0.01);
}

TEST(AgedHistoryTest, RejectsBadAlpha) {
  EXPECT_THROW(AgedHistory h(0.0), std::invalid_argument);
  EXPECT_THROW(AgedHistory h(-1.0), std::invalid_argument);
  EXPECT_THROW(AgedHistory h(1.5), std::invalid_argument);
  EXPECT_NO_THROW(AgedHistory h(1.0));
}

TEST(HistoryFactoryTest, BuildsAllStyles) {
  EXPECT_EQ(makeHistory("raw")->name(), "raw");
  EXPECT_EQ(makeHistory("recent")->name(), "recent");
  EXPECT_EQ(makeHistory("aged")->name(), "aged");
  EXPECT_THROW(makeHistory("bogus"), std::invalid_argument);
}

TEST(HistoryFactoryTest, HonorsParameters) {
  const auto recent = makeHistory("recent", 7);
  auto* r = dynamic_cast<RecentHistory*>(recent.get());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->capacity(), 7u);

  const auto aged = makeHistory("aged", 0.25);
  auto* a = dynamic_cast<AgedHistory*>(aged.get());
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->alpha(), 0.25);
}

// Property: all stores agree on a constant signal.
class HistoryAgreementTest : public ::testing::TestWithParam<const char*> {};

TEST_P(HistoryAgreementTest, ConstantSignalEstimatesExactly) {
  for (bool value : {true, false}) {
    const auto h = makeHistory(GetParam());
    for (SimTime t = 0; t < 100; ++t) h->record(t, value);
    EXPECT_DOUBLE_EQ(h->estimate(), value ? 1.0 : 0.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStyles, HistoryAgreementTest,
                         ::testing::Values("raw", "recent", "aged"));

}  // namespace
}  // namespace avmon::history
