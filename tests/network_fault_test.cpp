// Fault-model tests for the simulated network: injected message drops and
// RPC timeouts behave statistically as configured and account bytes the
// way the bandwidth figures expect — all through the typed message/RPC
// transport API. The second half injects the same faults across shard
// boundaries of a ShardedSimulator: drops, latency spikes, and node churn
// landing exactly on a window barrier mid-flight.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {
namespace {

class CountingEndpoint final : public Endpoint {
 public:
  void onMessage(const NodeId&, const Message&) override { ++received; }
  int received = 0;
};

TEST(NetworkFaultTest, DropProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 0.5;
  Network net(sim, cfg, Rng(1));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    net.send(idA, idB, TextMessage{"m", 1});
  }
  sim.runUntil(kSecond);
  EXPECT_NEAR(static_cast<double>(b.received) / kSends, 0.5, 0.05);
  // Dropped messages still count as lost for diagnostics.
  EXPECT_EQ(net.lost() + static_cast<std::uint64_t>(b.received), kSends);
}

TEST(NetworkFaultTest, DroppedSendsStillChargeSender) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 1.0;
  Network net(sim, cfg, Rng(2));

  CountingEndpoint a;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.setUp(idA, true);
  net.send(idA, idB, TextMessage{"m", 42});
  EXPECT_EQ(net.traffic(idA).bytesSent, 42u);
}

TEST(NetworkFaultTest, DropProbabilityAppliesToEveryMessageType) {
  // The drop roll happens at the transport, before dispatch — a protocol
  // JOIN is as droppable as a harness payload.
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 1.0;
  Network net(sim, cfg, Rng(7));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);
  net.send(idA, idB, JoinMessage{idA, 3});
  net.send(idA, idB, NotifyMessage{idA, idB});
  net.send(idA, idB, ForceAddMessage{idA});
  sim.runUntil(kSecond);
  EXPECT_EQ(b.received, 0);
  EXPECT_EQ(net.lost(), 3u);
  EXPECT_EQ(net.traffic(idA).bytesSent,
            JoinMessage::kBytes + NotifyMessage::kBytes +
                ForceAddMessage::kBytes);
}

TEST(NetworkFaultTest, RpcFailProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 0.3;
  Network net(sim, cfg, Rng(3));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kCalls = 2000;
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    ok += net.exchange(idA, idB, PingRequest{8}).has_value() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ok) / kCalls, 0.7, 0.05);
}

TEST(NetworkFaultTest, FailedRpcChargesOnlyRequest) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  Network net(sim, cfg, Rng(4));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  EXPECT_FALSE(net.call(idA, idB, CvFetchRequest{8, 100}).has_value());
  EXPECT_EQ(net.traffic(idA).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);  // no response produced
}

TEST(NetworkFaultTest, TimeoutChargingIsPerRequestType) {
  // Every request type charges its own declared request leg on timeout —
  // the accounting lives with the type, verified across the closed set.
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  Network net(sim, cfg, Rng(8));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  EXPECT_FALSE(net.call(idA, idB, PingRequest{8}).has_value());
  EXPECT_FALSE(net.call(idA, idB, CvFetchRequest{8, 200}).has_value());
  EXPECT_FALSE(net.call(idA, idB, SwapRequest{{idA}, 8, 4}).has_value());
  EXPECT_FALSE(net.call(idA, idB, MonitorPingRequest{8}).has_value());
  // 8 (ping) + 8 (fetch ask) + 32 (4 swap entries) + 8 (monitor ping).
  EXPECT_EQ(net.traffic(idA).bytesSent, 56u);
  EXPECT_EQ(net.traffic(idA).messagesSent, 4u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);
}

TEST(NetworkFaultTest, RpcFailProbabilityAppliesToDeferredMode) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  cfg.deferredRpc = true;
  Network net(sim, cfg, Rng(9));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  bool fired = false, gotResponse = true;
  net.callAsync(idA, idB, PingRequest{8}, [&](auto r) {
    fired = true;
    gotResponse = r.has_value();
  });
  EXPECT_FALSE(fired);  // the failure surfaces only after the timeout
  sim.runUntil(kMinute);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(gotResponse);
  EXPECT_EQ(net.traffic(idA).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);
}

TEST(NetworkFaultTest, ZeroProbabilityIsFaultless) {
  Simulator sim;
  Network net(sim, NetworkConfig{}, Rng(5));
  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);
  for (int i = 0; i < 500; ++i) {
    net.send(idA, idB, TextMessage{"m", 1});
    EXPECT_TRUE(net.exchange(idA, idB, PingRequest{1}).has_value());
  }
  sim.runUntil(kSecond);
  EXPECT_EQ(b.received, 500);
}

// ---------------------------------------------------------------------------
// Cross-shard fault injection: the same fault model must hold when the
// endpoints live in different sub-worlds and the traffic rides the
// window-barrier hand-off layer.
// ---------------------------------------------------------------------------

// Two-shard world with one endpoint per shard; a registered as index 0
// (shard 0), b as index 1 (shard 1).
struct TwoShardWorld {
  explicit TwoShardWorld(NetworkConfig net, std::uint64_t seed = 11) {
    ShardedSimulator::Config cfg;
    cfg.shards = 2;
    cfg.net = net;
    cfg.netSeed = seed;
    world = std::make_unique<ShardedSimulator>(cfg);
    world->registerNode(idA);
    world->registerNode(idB);
    world->netOf(0).attach(idA, a);
    world->netOf(1).attach(idB, b);
    world->netOf(0).setUp(idA, true);
    world->netOf(1).setUp(idB, true);
  }

  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  CountingEndpoint a, b;
  std::unique_ptr<ShardedSimulator> world;
};

TEST(NetworkFaultTest, CrossShardDropProbabilityIsHonored) {
  NetworkConfig cfg;
  cfg.messageDropProbability = 0.5;
  cfg.deferredRpc = true;
  TwoShardWorld w(cfg);

  constexpr int kSends = 2000;
  w.world->simOf(0).at(0, [&] {
    for (int i = 0; i < kSends; ++i) {
      w.world->netOf(0).send(w.idA, w.idB, TextMessage{"m", 1});
    }
  });
  w.world->runUntil(kSecond);
  EXPECT_NEAR(static_cast<double>(w.b.received) / kSends, 0.5, 0.05);
  // Drops happen at the sender, before the hand-off: the aggregate lost
  // count plus deliveries covers every send, and every send was charged.
  EXPECT_EQ(w.world->lost() + static_cast<std::uint64_t>(w.b.received),
            static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(w.world->netOf(0).traffic(w.idA).bytesSent,
            static_cast<std::uint64_t>(kSends));
}

TEST(NetworkFaultTest, CrossShardLatencySpikeStillDeliversInWindowOrder) {
  // A pathological latency band (10 ms floor, 2 s ceiling) stresses the
  // barrier math: deliveries land many windows after their send, yet each
  // arrives inside [min, max] and none can arrive inside its send window.
  NetworkConfig cfg;
  cfg.minLatency = 10;
  cfg.maxLatency = 2000;
  cfg.deferredRpc = true;

  ShardedSimulator::Config worldCfg;
  worldCfg.shards = 2;
  worldCfg.net = cfg;
  worldCfg.netSeed = 23;
  ShardedSimulator world(worldCfg);
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  world.registerNode(idA);
  world.registerNode(idB);

  CountingEndpoint a;
  struct StampingEndpoint final : Endpoint {
    explicit StampingEndpoint(Simulator& sim) : sim(sim) {}
    void onMessage(const NodeId&, const Message&) override {
      arrivals.push_back(sim.now());
    }
    Simulator& sim;
    std::vector<SimTime> arrivals;
  } b(world.simOf(1));
  world.netOf(0).attach(idA, a);
  world.netOf(1).attach(idB, b);
  world.netOf(0).setUp(idA, true);
  world.netOf(1).setUp(idB, true);

  constexpr int kSends = 300;
  const SimTime sentAt = 5;
  world.simOf(0).at(sentAt, [&] {
    for (int i = 0; i < kSends; ++i) {
      world.netOf(0).send(idA, idB, TextMessage{"m", 1});
    }
  });
  world.runUntil(5 * kSecond);

  ASSERT_EQ(b.arrivals.size(), static_cast<std::size_t>(kSends));
  SimTime minSeen = b.arrivals.front(), maxSeen = b.arrivals.front();
  for (const SimTime t : b.arrivals) {
    EXPECT_GE(t, sentAt + cfg.minLatency);
    EXPECT_LE(t, sentAt + cfg.maxLatency);
    // Arrivals are handed to the destination in sorted (due, key) order,
    // so the observed stream is time-monotonic.
    minSeen = std::min(minSeen, t);
    maxSeen = std::max(maxSeen, t);
  }
  EXPECT_TRUE(std::is_sorted(b.arrivals.begin(), b.arrivals.end()));
  // The spike actually spread the batch across many windows.
  EXPECT_GT(maxSeen - minSeen, world.windowLength());
}

TEST(NetworkFaultTest, ChurnExactlyOnWindowBoundaryDropsInFlightMessage) {
  // The target leaves at exactly a window barrier (t = 10 = one window
  // length) while a message due at that same instant is in flight. The
  // lifecycle event is inserted at setup, the delivery at the barrier —
  // so the leave runs first and the message must count as lost.
  NetworkConfig cfg;
  cfg.minLatency = 10;
  cfg.maxLatency = 10;
  cfg.deferredRpc = true;
  TwoShardWorld w(cfg);
  const SimTime boundary = w.world->windowLength();  // 10 ms

  w.world->simOf(1).at(boundary, [&] { w.world->netOf(1).setUp(w.idB, false); });
  w.world->simOf(0).at(0, [&] {
    w.world->netOf(0).send(w.idA, w.idB, TextMessage{"m", 1});  // due at 10
  });
  // Stop just past the boundary so the second phase below can still be
  // scheduled AT its boundary (running to the far future first would clamp
  // those events to "now" and dodge the case under test).
  w.world->runUntil(boundary + 2);

  EXPECT_EQ(w.b.received, 0);
  EXPECT_EQ(w.world->lost(), 1u);

  // The node coming back up at the NEXT boundary receives traffic again.
  w.world->simOf(1).at(2 * boundary, [&] { w.world->netOf(1).setUp(w.idB, true); });
  w.world->simOf(0).at(2 * boundary, [&] {
    w.world->netOf(0).send(w.idA, w.idB, TextMessage{"m", 1});  // due at 30
  });
  w.world->runUntil(kSecond);
  EXPECT_EQ(w.b.received, 1);
}

TEST(NetworkFaultTest, ChurnAtBoundaryMidRpcSurfacesAsExactTimeout) {
  // The callee churns out at the barrier its request-leg would arrive on:
  // the serve finds it down, nothing travels back, and the caller learns
  // about it at exactly rpcTimeout — indistinguishable from a drop.
  NetworkConfig cfg;
  cfg.minLatency = 10;
  cfg.maxLatency = 10;
  cfg.deferredRpc = true;
  TwoShardWorld w(cfg);

  std::optional<SimTime> completedAt;
  bool gotResponse = true;
  w.world->simOf(1).at(10, [&] { w.world->netOf(1).setUp(w.idB, false); });
  w.world->simOf(0).at(0, [&] {
    w.world->netOf(0).callAsync(w.idA, w.idB, PingRequest{8},
                                [&](std::optional<RpcResponse> r) {
                                  completedAt = w.world->simOf(0).now();
                                  gotResponse = r.has_value();
                                });
  });
  w.world->runUntil(kSecond);

  ASSERT_TRUE(completedAt.has_value());
  EXPECT_FALSE(gotResponse);
  EXPECT_EQ(*completedAt, cfg.rpcTimeout);
  EXPECT_EQ(w.world->netOf(0).traffic(w.idA).bytesSent, 8u);  // request leg
  EXPECT_EQ(w.world->netOf(1).traffic(w.idB).bytesSent, 0u);  // never served
}

TEST(NetworkFaultTest, CrossShardRpcFailProbabilityIsHonored) {
  NetworkConfig cfg;
  cfg.rpcFailProbability = 0.3;
  cfg.deferredRpc = true;
  TwoShardWorld w(cfg);

  constexpr int kCalls = 600;
  int ok = 0, done = 0;
  // Space the calls out so each completes well before the next deadline.
  for (int i = 0; i < kCalls; ++i) {
    w.world->simOf(0).at(i * kSecond, [&] {
      w.world->netOf(0).callAsync(w.idA, w.idB, PingRequest{8},
                                  [&](std::optional<RpcResponse> r) {
                                    ++done;
                                    if (r) ++ok;
                                  });
    });
  }
  w.world->runUntil(kCalls * kSecond + kSecond);
  EXPECT_EQ(done, kCalls);
  EXPECT_NEAR(static_cast<double>(ok) / kCalls, 0.7, 0.06);
}

}  // namespace
}  // namespace avmon::sim

// ---------------------------------------------------------------------------
// Scheduled fault plans (sim/fault_plan.hpp) at scenario level: timed
// partitions, correlated bursts, and latency-regime windows + geo bands
// must be DETERMINISTIC — bit-identical metrics at every shard count and
// a pinned fingerprint per RPC lane, exactly like the unfaulted goldens
// in scenario_metrics_test.
// ---------------------------------------------------------------------------

#include "golden_hash.hpp"

namespace avmon::experiments {
namespace {

Scenario faultBase() {
  Scenario s;
  s.model = churn::Model::kSynth;
  s.stableSize = 120;
  s.horizon = 90 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 314;
  s.hashName = "splitmix64";
  return s;
}

struct FaultGolden {
  const char* name;
  Scenario scenario;
  std::uint64_t deferredSummary;
  std::uint64_t deferredPerNode;
  std::uint64_t instantSummary;
  std::uint64_t instantPerNode;
};

std::vector<FaultGolden> faultGoldens() {
  Scenario partition = faultBase();
  partition.faults.partitions.push_back({40 * kMinute, 50 * kMinute, 2});

  Scenario burst = faultBase();
  burst.faults.bursts.push_back({45 * kMinute, 5 * kMinute, 0.25});

  Scenario latency = faultBase();
  latency.faults.latencyWindows.push_back(
      {30 * kMinute, 40 * kMinute, 30, 300});
  latency.faults.geo.regions = 4;
  latency.faults.geo.intraMin = 5;
  latency.faults.geo.intraMax = 20;
  latency.faults.geo.interMin = 50;
  latency.faults.geo.interMax = 150;

  return {
      {"partition", partition, 0xd2cbe7810a2822cbULL, 0x2008125dcc567c76ULL,
       0x21f008f6f1d74afbULL, 0xc0d398fd09e4db52ULL},
      {"burst", burst, 0xa192b1754ee756adULL, 0xe9f8df8cd145201dULL,
       0xcccff51e1d7eb01eULL, 0xb4f697e692d21539ULL},
      {"latency", latency, 0xed7fa1fb97aca39cULL, 0x1f226a5d5a9dbeb5ULL,
       0x11cdfd3202b21409ULL, 0x15b5ec75f2f4505dULL},
  };
}

TEST(FaultPlanGoldenTest, DeferredLaneIsPinnedAndShardInvariant) {
  for (const FaultGolden& g : faultGoldens()) {
    for (const unsigned shards : {1u, 2u, 3u, 8u}) {
      Scenario s = g.scenario;
      s.shards = shards;
      ScenarioRunner runner(s);
      runner.run();
      EXPECT_EQ(summaryHash(runner), g.deferredSummary)
          << g.name << " S=" << shards;
      EXPECT_EQ(perNodeHash(runner), g.deferredPerNode)
          << g.name << " S=" << shards;
    }
  }
}

TEST(FaultPlanGoldenTest, InstantRpcLaneIsPinned) {
  for (const FaultGolden& g : faultGoldens()) {
    Scenario s = g.scenario;
    s.deferredRpc = false;
    ScenarioRunner runner(s);
    runner.run();
    EXPECT_EQ(summaryHash(runner), g.instantSummary) << g.name;
    EXPECT_EQ(perNodeHash(runner), g.instantPerNode) << g.name;
  }
}

TEST(FaultPlanGoldenTest, FaultPlansActuallyPerturbTheRun) {
  // The pins above would be vacuous if an armed plan collapsed into the
  // unfaulted run: each faulted fingerprint must differ from the
  // fault-free baseline of the same seed.
  ScenarioRunner baseline(faultBase());
  baseline.run();
  const std::uint64_t cleanSummary = summaryHash(baseline);
  for (const FaultGolden& g : faultGoldens()) {
    EXPECT_NE(g.deferredSummary, cleanSummary) << g.name;
  }
}

TEST(FaultPlanGoldenTest, PartitionWindowSeversCrossGroupTraffic) {
  // Behavioral sanity behind the partition pin: messages across the two
  // partition groups are lost during the window, so the faulted run must
  // lose strictly more than its unfaulted twin.
  ScenarioRunner clean(faultBase());
  clean.run();
  Scenario s = faultBase();
  s.faults.partitions.push_back({40 * kMinute, 50 * kMinute, 2});
  ScenarioRunner cut(s);
  cut.run();
  EXPECT_GT(cut.world().lost(), clean.world().lost());
}

}  // namespace
}  // namespace avmon::experiments
