// Fault-model tests for the simulated network: injected message drops and
// RPC timeouts behave statistically as configured and account bytes the
// way the bandwidth figures expect.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {
namespace {

class CountingEndpoint final : public Endpoint {
 public:
  void onMessage(const NodeId&, const std::any&) override { ++received; }
  int received = 0;
};

TEST(NetworkFaultTest, DropProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 0.5;
  Network net(sim, cfg, Rng(1));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    net.send(idA, idB, std::string("m"), 1);
  }
  sim.runUntil(kSecond);
  EXPECT_NEAR(static_cast<double>(b.received) / kSends, 0.5, 0.05);
  // Dropped messages still count as lost for diagnostics.
  EXPECT_EQ(net.lost() + static_cast<std::uint64_t>(b.received), kSends);
}

TEST(NetworkFaultTest, DroppedSendsStillChargeSender) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 1.0;
  Network net(sim, cfg, Rng(2));

  CountingEndpoint a;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.setUp(idA, true);
  net.send(idA, idB, std::string("m"), 42);
  EXPECT_EQ(net.traffic(idA).bytesSent, 42u);
}

TEST(NetworkFaultTest, RpcFailProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 0.3;
  Network net(sim, cfg, Rng(3));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kCalls = 2000;
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    ok += net.rpc(idA, idB, 8, 8) != nullptr ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ok) / kCalls, 0.7, 0.05);
}

TEST(NetworkFaultTest, FailedRpcChargesOnlyRequest) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  Network net(sim, cfg, Rng(4));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  EXPECT_EQ(net.rpc(idA, idB, 8, 100), nullptr);
  EXPECT_EQ(net.traffic(idA).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);  // no response produced
}

TEST(NetworkFaultTest, ZeroProbabilityIsFaultless) {
  Simulator sim;
  Network net(sim, NetworkConfig{}, Rng(5));
  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);
  for (int i = 0; i < 500; ++i) {
    net.send(idA, idB, std::string("m"), 1);
    EXPECT_NE(net.rpc(idA, idB, 1, 1), nullptr);
  }
  sim.runUntil(kSecond);
  EXPECT_EQ(b.received, 500);
}

}  // namespace
}  // namespace avmon::sim
