// Fault-model tests for the simulated network: injected message drops and
// RPC timeouts behave statistically as configured and account bytes the
// way the bandwidth figures expect — all through the typed message/RPC
// transport API.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon::sim {
namespace {

class CountingEndpoint final : public Endpoint {
 public:
  void onMessage(const NodeId&, const Message&) override { ++received; }
  int received = 0;
};

TEST(NetworkFaultTest, DropProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 0.5;
  Network net(sim, cfg, Rng(1));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    net.send(idA, idB, TextMessage{"m", 1});
  }
  sim.runUntil(kSecond);
  EXPECT_NEAR(static_cast<double>(b.received) / kSends, 0.5, 0.05);
  // Dropped messages still count as lost for diagnostics.
  EXPECT_EQ(net.lost() + static_cast<std::uint64_t>(b.received), kSends);
}

TEST(NetworkFaultTest, DroppedSendsStillChargeSender) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 1.0;
  Network net(sim, cfg, Rng(2));

  CountingEndpoint a;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.setUp(idA, true);
  net.send(idA, idB, TextMessage{"m", 42});
  EXPECT_EQ(net.traffic(idA).bytesSent, 42u);
}

TEST(NetworkFaultTest, DropProbabilityAppliesToEveryMessageType) {
  // The drop roll happens at the transport, before dispatch — a protocol
  // JOIN is as droppable as a harness payload.
  Simulator sim;
  NetworkConfig cfg;
  cfg.messageDropProbability = 1.0;
  Network net(sim, cfg, Rng(7));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);
  net.send(idA, idB, JoinMessage{idA, 3});
  net.send(idA, idB, NotifyMessage{idA, idB});
  net.send(idA, idB, ForceAddMessage{idA});
  sim.runUntil(kSecond);
  EXPECT_EQ(b.received, 0);
  EXPECT_EQ(net.lost(), 3u);
  EXPECT_EQ(net.traffic(idA).bytesSent,
            JoinMessage::kBytes + NotifyMessage::kBytes +
                ForceAddMessage::kBytes);
}

TEST(NetworkFaultTest, RpcFailProbabilityIsHonored) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 0.3;
  Network net(sim, cfg, Rng(3));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  constexpr int kCalls = 2000;
  int ok = 0;
  for (int i = 0; i < kCalls; ++i) {
    ok += net.exchange(idA, idB, PingRequest{8}).has_value() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(ok) / kCalls, 0.7, 0.05);
}

TEST(NetworkFaultTest, FailedRpcChargesOnlyRequest) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  Network net(sim, cfg, Rng(4));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  EXPECT_FALSE(net.call(idA, idB, CvFetchRequest{8, 100}).has_value());
  EXPECT_EQ(net.traffic(idA).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);  // no response produced
}

TEST(NetworkFaultTest, TimeoutChargingIsPerRequestType) {
  // Every request type charges its own declared request leg on timeout —
  // the accounting lives with the type, verified across the closed set.
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  Network net(sim, cfg, Rng(8));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  EXPECT_FALSE(net.call(idA, idB, PingRequest{8}).has_value());
  EXPECT_FALSE(net.call(idA, idB, CvFetchRequest{8, 200}).has_value());
  EXPECT_FALSE(net.call(idA, idB, SwapRequest{{idA}, 8, 4}).has_value());
  EXPECT_FALSE(net.call(idA, idB, MonitorPingRequest{8}).has_value());
  // 8 (ping) + 8 (fetch ask) + 32 (4 swap entries) + 8 (monitor ping).
  EXPECT_EQ(net.traffic(idA).bytesSent, 56u);
  EXPECT_EQ(net.traffic(idA).messagesSent, 4u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);
}

TEST(NetworkFaultTest, RpcFailProbabilityAppliesToDeferredMode) {
  Simulator sim;
  NetworkConfig cfg;
  cfg.rpcFailProbability = 1.0;
  cfg.deferredRpc = true;
  Network net(sim, cfg, Rng(9));

  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  bool fired = false, gotResponse = true;
  net.callAsync(idA, idB, PingRequest{8}, [&](auto r) {
    fired = true;
    gotResponse = r.has_value();
  });
  EXPECT_FALSE(fired);  // the failure surfaces only after the timeout
  sim.runUntil(kMinute);
  EXPECT_TRUE(fired);
  EXPECT_FALSE(gotResponse);
  EXPECT_EQ(net.traffic(idA).bytesSent, 8u);
  EXPECT_EQ(net.traffic(idB).bytesSent, 0u);
}

TEST(NetworkFaultTest, ZeroProbabilityIsFaultless) {
  Simulator sim;
  Network net(sim, NetworkConfig{}, Rng(5));
  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);
  for (int i = 0; i < 500; ++i) {
    net.send(idA, idB, TextMessage{"m", 1});
    EXPECT_TRUE(net.exchange(idA, idB, PingRequest{1}).has_value());
  }
  sim.runUntil(kSecond);
  EXPECT_EQ(b.received, 500);
}

}  // namespace
}  // namespace avmon::sim
