// BroadcastRunner integration tests: the AVCast baseline measured under
// the shared workloads — instant discovery, O(N) costs.
#include <gtest/gtest.h>

#include "experiments/broadcast_runner.hpp"

namespace avmon::experiments {
namespace {

BroadcastScenario smallScenario(churn::Model model) {
  BroadcastScenario s;
  s.model = model;
  s.stableSize = 100;
  s.horizon = 80 * kMinute;
  s.warmup = 30 * kMinute;
  s.controlFraction = 0.1;
  s.seed = 21;
  return s;
}

TEST(BroadcastRunnerTest, DiscoveryIsNearInstant) {
  BroadcastRunner runner(smallScenario(churn::Model::kStat));
  runner.run();
  const auto delays = runner.discoveryDelaysSeconds();
  ASSERT_FALSE(delays.empty());
  for (double d : delays) EXPECT_LT(d, 1.0);  // one broadcast latency
}

TEST(BroadcastRunnerTest, MemoryIsOrderN) {
  BroadcastRunner runner(smallScenario(churn::Model::kStat));
  runner.run();
  double sum = 0;
  const auto entries = runner.memoryEntries();
  ASSERT_FALSE(entries.empty());
  for (double e : entries) sum += e;
  // Full membership (~N) plus PS/TS.
  EXPECT_GT(sum / static_cast<double>(entries.size()), 90.0);
}

TEST(BroadcastRunnerTest, JoinCostIsOrderNBytes) {
  BroadcastRunner runner(smallScenario(churn::Model::kStat));
  runner.run();
  const auto cost = runner.bytesPerJoin();
  ASSERT_FALSE(cost.empty());
  double sum = 0, maxCost = 0;
  for (double c : cost) {
    sum += c;
    maxCost = std::max(maxCost, c);
  }
  // The initial population joins simultaneously (node i broadcasts to the
  // i-1 earlier joiners: mean ~N/2 messages x 10 B); control nodes joining
  // into the full system pay the full (N-1) x 10 B.
  EXPECT_GT(sum / static_cast<double>(cost.size()), 400.0);
  EXPECT_GT(maxCost, 1000.0);
}

TEST(BroadcastRunnerTest, SurvivesChurn) {
  BroadcastRunner runner(smallScenario(churn::Model::kSynth));
  runner.run();
  EXPECT_GT(runner.totalMessages(), 0u);
  // Rebroadcasting on every rejoin keeps working; control nodes discover.
  EXPECT_FALSE(runner.discoveryDelaysSeconds().empty());
}

TEST(BroadcastRunnerTest, RunTwiceThrows) {
  BroadcastRunner runner(smallScenario(churn::Model::kStat));
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
}

}  // namespace
}  // namespace avmon::experiments
