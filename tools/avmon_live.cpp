// avmon_live — multi-process loopback driver for the live-wire lane.
//
// Takes a `transport = udp` spec, regenerates the same availability
// schedule the simulated lane would run (churn::generate over the spec's
// model/seed), then launches one real avmon_node process per scheduled
// node on 127.0.0.1:(udp.port_base + index) and replays the schedule's
// joins and leaves over the out-of-band control plane:
//
//   1. spawn every node process; run a readiness barrier (ControlPing
//      retried until acked) so a slow fork never skews the clock;
//   2. broadcast ControlStart — every process anchors its wall-slaved
//      simulator clock within one ack round-trip of the driver's anchor;
//   3. walk the trace's session boundaries in scaled wall time, sending
//      ControlJoin (bootstrap contact drawn from the currently-alive set,
//      the paper's coarse-view join) and ControlLeave, each retried until
//      acked;
//   4. after the horizon the nodes stop on their own, write their per-node
//      metrics JSON, and exit; the driver reaps them (SIGTERM/SIGKILL for
//      stragglers) and aggregates the reports.
//
// --cross-validate then runs the *same scenario* through the in-process
// ScenarioRunner (transport forced back to sim) and asserts the loopback
// run is statistically consistent with the simulated lane: discovery
// fraction and mean availability |error| within the declared tolerances,
// and zero wire decode failures.
//
// Usage:
//   avmon_live --spec FILE [--json FILE] [--outdir DIR] [--node-bin PATH]
//              [--cross-validate] [--tol-discovery 0.12]
//              [--tol-availability 0.10] [--keep-outputs]
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "churn/churn_model.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "experiments/scenario.hpp"
#include "experiments/spec.hpp"
#include "net/live_transport.hpp"
#include "net/wall_clock.hpp"
#include "net/wire_codec.hpp"
#include "trace/availability_trace.hpp"

namespace {

using namespace avmon;
using experiments::Scenario;
using experiments::TransportKind;

constexpr std::uint32_t kLoopback = 0x7F000001;

[[noreturn]] void usageAndExit(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --spec FILE [options]\n"
      << "  --spec FILE          a transport = udp spec (see examples/specs/\n"
      << "                       live_*.spec); drives the whole cluster\n"
      << "  --json FILE          write the aggregated metrics JSON here\n"
      << "  --outdir DIR         per-node report directory (default\n"
      << "                       avmon_live_out; cleaned unless --keep-outputs)\n"
      << "  --node-bin PATH      avmon_node binary (default: next to this one)\n"
      << "  --cross-validate     also run the sim lane in-process and require\n"
      << "                       the loopback run to be statistically\n"
      << "                       consistent with it\n"
      << "  --tol-discovery D    max |discovery fraction delta| (default 0.12)\n"
      << "  --tol-availability A max |mean availability error delta|\n"
      << "                       (default 0.10)\n"
      << "  --keep-outputs       keep the per-node JSON files\n";
  std::exit(2);
}

// ---- scheduling ----

struct ReplayEvent {
  SimTime at = 0;
  std::uint32_t index = 0;
  bool join = false;
  bool firstJoin = false;
};

std::vector<ReplayEvent> buildSchedule(const trace::AvailabilityTrace& trace) {
  std::vector<ReplayEvent> events;
  for (std::size_t i = 0; i < trace.nodes().size(); ++i) {
    const trace::NodeTrace& nt = trace.nodes()[i];
    bool first = true;
    for (const trace::Interval& session : nt.sessions) {
      events.push_back({session.start, static_cast<std::uint32_t>(i), true,
                        first});
      first = false;
      if (session.end < trace.horizon()) {
        events.push_back(
            {session.end, static_cast<std::uint32_t>(i), false, false});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const ReplayEvent& a, const ReplayEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.join != b.join) return !a.join;  // leaves first
                     return a.index < b.index;
                   });
  return events;
}

// The measured set mirrors ScenarioRunner's MeasuredSet::kAuto resolution
// (experiments/scenario.hpp): control group where the model defines one,
// born-after-warmup for the birth/death models, everyone for the traces.
bool isMeasured(const Scenario& s, const trace::NodeTrace& nt) {
  using experiments::MeasuredSet;
  MeasuredSet m = s.measured;
  if (m == MeasuredSet::kAuto) {
    switch (s.model) {
      case churn::Model::kStat:
      case churn::Model::kSynth: m = MeasuredSet::kControlGroup; break;
      case churn::Model::kSynthBD:
      case churn::Model::kSynthBD2: m = MeasuredSet::kBornAfterWarmup; break;
      case churn::Model::kPlanetLab:
      case churn::Model::kOvernet: m = MeasuredSet::kAll; break;
    }
  }
  switch (m) {
    case experiments::MeasuredSet::kControlGroup: return nt.isControl;
    case experiments::MeasuredSet::kBornAfterWarmup:
      return nt.birth > s.warmup;
    case experiments::MeasuredSet::kAll: return true;
    case experiments::MeasuredSet::kAuto: break;  // resolved above
  }
  return true;
}

// ---- minimal scraping of the avmon_node report (a format we own) ----

std::optional<double> findNumber(const std::string& text,
                                 const std::string& key, std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  try {
    return std::stod(text.substr(at + needle.size()));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool findBool(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  return at != std::string::npos &&
         text.compare(at + needle.size(), 4, "true") == 0;
}

struct NodeReport {
  bool discovered = false;
  double discoveryDelayMs = -1;
  double memoryEntries = 0;
  double decodeFailures = 0;
  double bytesSent = 0;
  /// (target NodeId string, estimate) pairs from the report's targets[].
  std::vector<std::pair<std::string, double>> estimates;
};

std::optional<NodeReport> parseReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) return std::nullopt;

  NodeReport report;
  report.discovered = findBool(text, "discovered");
  report.discoveryDelayMs = findNumber(text, "discovery_delay_ms").value_or(-1);
  report.memoryEntries = findNumber(text, "memory_entries").value_or(0);
  report.decodeFailures = findNumber(text, "decode_failures").value_or(0);
  report.bytesSent = findNumber(text, "bytes_sent").value_or(0);

  std::size_t at = text.find("\"targets\": [");
  if (at != std::string::npos) {
    const std::string node = "{\"node\": \"";
    while ((at = text.find(node, at)) != std::string::npos) {
      const std::size_t idStart = at + node.size();
      const std::size_t idEnd = text.find('"', idStart);
      if (idEnd == std::string::npos) break;
      const auto estimate = findNumber(text, "estimate", idEnd);
      if (!estimate) break;
      report.estimates.emplace_back(text.substr(idStart, idEnd - idStart),
                                    *estimate);
      at = idEnd;
    }
  }
  return report;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

// ---- reliable control plane (driver side) ----

struct PendingControl {
  NodeId to;
  net::ControlCommand command;
  std::int64_t nextSendMs = 0;
  int sendsLeft = 50;
};

class ControlPlane {
 public:
  explicit ControlPlane(net::LiveTransport& transport) : transport_(transport) {
    transport_.setAckHandler([this](const NodeId&, std::uint64_t seq) {
      pending_.erase(seq);
    });
  }

  void send(const NodeId& to, const net::ControlCommand& command) {
    const std::uint64_t seq = nextSeq_++;
    transport_.sendControl(to, seq, command);
    PendingControl p;
    p.to = to;
    p.command = command;
    p.nextSendMs = net::wallNowMs() + kResendMs;
    pending_.emplace(seq, p);
  }

  /// Polls the socket and retransmits overdue commands. Returns false once
  /// any command has exhausted its sends (an unreachable node).
  bool pump(int waitMs) {
    transport_.poll(waitMs);
    const std::int64_t now = net::wallNowMs();
    for (auto& [seq, p] : pending_) {
      if (p.nextSendMs > now) continue;
      if (p.sendsLeft-- <= 0) return false;
      transport_.sendControl(p.to, seq, p.command);
      p.nextSendMs = now + kResendMs;
    }
    return true;
  }

  bool settled() const { return pending_.empty(); }

  /// Pumps until every outstanding command is acked or `deadlineMs` passes.
  bool settle(std::int64_t deadlineMs) {
    while (!settled()) {
      if (net::wallNowMs() > deadlineMs || !pump(5)) return false;
    }
    return true;
  }

 private:
  static constexpr std::int64_t kResendMs = 100;
  net::LiveTransport& transport_;
  std::uint64_t nextSeq_ = 1;
  std::map<std::uint64_t, PendingControl> pending_;
};

// ---- process management ----

std::string defaultNodeBinary(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  std::string self = len > 0 ? std::string(buf, static_cast<std::size_t>(len))
                             : std::string(argv0);
  const std::size_t slash = self.rfind('/');
  return (slash == std::string::npos ? std::string(".")
                                     : self.substr(0, slash)) +
         "/avmon_node";
}

pid_t spawnNode(const std::string& binary,
                const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execv(binary.c_str(), argv.data());
    std::perror("avmon_live: execv");
    ::_exit(127);
  }
  return pid;
}

}  // namespace

int main(int argc, char** argv) {
  std::string specPath, jsonPath, outdir = "avmon_live_out";
  std::string nodeBinary = defaultNodeBinary(argv[0]);
  bool crossValidate = false, keepOutputs = false;
  double tolDiscovery = 0.12, tolAvailability = 0.10;

  try {
    experiments::ArgParser args(argc, argv);
    while (args.next()) {
      const std::string& arg = args.flag();
      if (arg == "--spec") specPath = args.value();
      else if (arg == "--json") jsonPath = args.value();
      else if (arg == "--outdir") outdir = args.value();
      else if (arg == "--node-bin") nodeBinary = args.value();
      else if (arg == "--cross-validate") crossValidate = true;
      else if (arg == "--tol-discovery") tolDiscovery = args.valueDouble();
      else if (arg == "--tol-availability") tolAvailability = args.valueDouble();
      else if (arg == "--keep-outputs") keepOutputs = true;
      else args.failUnknown();
    }
    if (specPath.empty()) {
      throw experiments::UsageError("--spec is required");
    }

    std::ifstream specIn(specPath);
    if (!specIn) throw std::runtime_error("cannot read spec: " + specPath);
    std::ostringstream specBuffer;
    specBuffer << specIn.rdbuf();
    const Scenario scenario = Scenario::fromSpec(specBuffer.str());
    scenario.validate();
    if (scenario.transport != TransportKind::kUdp) {
      throw std::invalid_argument(
          "avmon_live drives the live lane only — this spec says "
          "transport = sim (or omits the key); run it through avmon_sim, or "
          "add transport = udp");
    }
    if (scenario.protocol != "avmon") {
      throw std::invalid_argument(
          "the live lane hosts AVMON nodes only (avmon_node); protocol = " +
          scenario.protocol + " runs in the simulated lane");
    }

    // The same schedule the simulated lane would generate for this spec.
    churn::WorkloadParams workload;
    workload.stableSize = scenario.stableSize;
    workload.horizon = scenario.horizon;
    workload.controlFraction = scenario.controlFraction;
    workload.controlJoinTime = scenario.warmup;
    workload.seed = scenario.seed;
    const trace::AvailabilityTrace trace =
        churn::generate(scenario.model, workload);
    const std::size_t effectiveN =
        churn::effectiveStableSize(scenario.model, workload);
    const std::size_t count = trace.nodes().size();
    if (scenario.udp.portBase + count + 1 > 0xFFFF) {
      throw std::invalid_argument(
          "udp.port_base + node count exceeds the port space — lower n or "
          "udp.port_base");
    }

    ::mkdir(outdir.c_str(), 0755);

    const auto liveIdOf = [&](std::uint32_t index) {
      return NodeId(kLoopback, static_cast<std::uint16_t>(
                                   scenario.udp.portBase + index));
    };
    const auto reportPathOf = [&](std::uint32_t index) {
      return outdir + "/node_" + std::to_string(index) + ".json";
    };

    // ---- phase 1: spawn ----
    std::cout << "spawning " << count << " node processes on 127.0.0.1:"
              << scenario.udp.portBase << "+\n";
    std::vector<pid_t> pids(count, -1);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::vector<std::string> nodeArgs = {
          "--index", std::to_string(i),
          "--n", std::to_string(effectiveN),
          "--port-base", std::to_string(scenario.udp.portBase),
          "--seed", std::to_string(scenario.seed),
          "--hash", scenario.hashName,
          "--time-scale", std::to_string(scenario.udp.timeScale),
          "--horizon-ms", std::to_string(scenario.horizon),
          "--retry-max", std::to_string(scenario.udp.retryMax),
          "--backoff-ms", std::to_string(scenario.udp.backoffMs),
          "--backoff-cap-ms", std::to_string(scenario.udp.backoffCapMs),
          "--metrics-out", reportPathOf(i)};
      if (scenario.configOverride) {
        nodeArgs.push_back("--cvs");
        nodeArgs.push_back(std::to_string(scenario.configOverride->cvs));
        nodeArgs.push_back("--k");
        nodeArgs.push_back(std::to_string(scenario.configOverride->k));
      }
      pids[i] = spawnNode(nodeBinary, nodeArgs);
      if (pids[i] < 0) throw std::runtime_error("fork failed");
    }

    net::LiveConfig driverConfig;
    driverConfig.retryMax = scenario.udp.retryMax;
    driverConfig.retryBaseMs = scenario.udp.backoffMs;
    driverConfig.retryCapMs = scenario.udp.backoffCapMs;
    net::LiveTransport transport(driverConfig);
    if (!transport.open(NodeId(
            kLoopback,
            static_cast<std::uint16_t>(scenario.udp.portBase - 1)))) {
      throw std::runtime_error("cannot bind the driver control port " +
                               std::to_string(scenario.udp.portBase - 1));
    }
    ControlPlane control(transport);

    // ---- phase 2: readiness barrier ----
    for (std::uint32_t i = 0; i < count; ++i) {
      control.send(liveIdOf(i), net::ControlPing{});
    }
    if (!control.settle(net::wallNowMs() + 30000)) {
      throw std::runtime_error(
          "readiness barrier failed: some nodes never acked ControlPing "
          "(check for port collisions under " + outdir + ")");
    }
    std::cout << "all " << count << " nodes ready\n";

    // ---- phase 3: anchor + replay ----
    const std::vector<ReplayEvent> schedule = buildSchedule(trace);
    const std::int64_t anchorWallMs = net::wallNowMs();
    for (std::uint32_t i = 0; i < count; ++i) {
      control.send(liveIdOf(i), net::ControlStart{});
    }

    Rng bootstrapRng(scenario.seed ^ 0x11BEED5ULL);
    std::vector<bool> alive(count, false);
    std::vector<std::uint32_t> aliveList;
    std::size_t nextEvent = 0;
    const std::int64_t horizonWallMs =
        anchorWallMs + static_cast<std::int64_t>(
                           static_cast<double>(scenario.horizon) /
                           scenario.udp.timeScale);
    while (nextEvent < schedule.size()) {
      const auto simNow = static_cast<SimTime>(
          static_cast<double>(net::wallNowMs() - anchorWallMs) *
          scenario.udp.timeScale);
      while (nextEvent < schedule.size() &&
             schedule[nextEvent].at <= simNow) {
        const ReplayEvent& e = schedule[nextEvent++];
        if (e.join) {
          // The paper's coarse-view join: bootstrap off any current member.
          NodeId contact = liveIdOf(e.index);  // self = "you are alone"
          if (!aliveList.empty()) {
            contact = liveIdOf(aliveList[bootstrapRng.below(
                aliveList.size())]);
          }
          control.send(liveIdOf(e.index),
                       net::ControlJoin{e.firstJoin, contact});
          if (!alive[e.index]) {
            alive[e.index] = true;
            aliveList.push_back(e.index);
          }
        } else {
          control.send(liveIdOf(e.index), net::ControlLeave{});
          if (alive[e.index]) {
            alive[e.index] = false;
            aliveList.erase(
                std::find(aliveList.begin(), aliveList.end(), e.index));
          }
        }
      }
      if (!control.pump(2)) {
        throw std::runtime_error("a node stopped acking control commands");
      }
    }
    if (!control.settle(horizonWallMs + 10000)) {
      throw std::runtime_error("schedule replay never fully acked");
    }
    std::cout << "replayed " << schedule.size() << " schedule events\n";

    // ---- phase 4: horizon + reap ----
    while (net::wallNowMs() < horizonWallMs) transport.poll(20);
    std::size_t exitedCleanly = 0;
    const std::int64_t reapDeadline = net::wallNowMs() + 15000;
    std::vector<bool> reaped(count, false);
    std::size_t remaining = count;
    bool killed = false;
    while (remaining > 0) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid > 0) {
        for (std::uint32_t i = 0; i < count; ++i) {
          if (pids[i] != pid || reaped[i]) continue;
          reaped[i] = true;
          remaining -= 1;
          if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            exitedCleanly += 1;
          }
          break;
        }
        continue;
      }
      if (net::wallNowMs() > reapDeadline) {
        if (killed) break;
        killed = true;
        for (std::uint32_t i = 0; i < count; ++i) {
          if (!reaped[i]) ::kill(pids[i], SIGKILL);
        }
        continue;
      }
      if (!killed && net::wallNowMs() > reapDeadline - 10000) {
        for (std::uint32_t i = 0; i < count; ++i) {
          if (!reaped[i]) ::kill(pids[i], SIGTERM);
        }
      }
      transport.poll(20);
    }
    std::cout << exitedCleanly << "/" << count << " nodes exited cleanly\n";

    // ---- phase 5: aggregate ----
    std::size_t reports = 0, measuredCount = 0, measuredDiscovered = 0;
    double decodeFailures = 0, bytesSent = 0;
    std::vector<double> delays, memory, availabilityErrors;
    std::map<std::string, std::uint32_t> indexOfId;
    for (std::uint32_t i = 0; i < count; ++i) {
      indexOfId[liveIdOf(i).toString()] = i;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      const auto report = parseReport(reportPathOf(i));
      if (!keepOutputs) std::remove(reportPathOf(i).c_str());
      if (!report) continue;
      reports += 1;
      decodeFailures += report->decodeFailures;
      bytesSent += report->bytesSent;
      memory.push_back(report->memoryEntries);
      if (isMeasured(scenario, trace.nodes()[i])) {
        measuredCount += 1;
        if (report->discovered) {
          measuredDiscovered += 1;
          delays.push_back(report->discoveryDelayMs);
        }
      }
      for (const auto& [idText, estimate] : report->estimates) {
        const auto it = indexOfId.find(idText);
        if (it == indexOfId.end()) continue;
        const trace::NodeTrace& nt = trace.nodes()[it->second];
        const double actual =
            nt.availability(nt.birth, static_cast<SimTime>(scenario.horizon));
        availabilityErrors.push_back(std::fabs(estimate - actual));
      }
    }
    if (!keepOutputs) ::rmdir(outdir.c_str());
    const double liveDiscovery =
        measuredCount == 0 ? 0.0
                           : static_cast<double>(measuredDiscovered) /
                                 static_cast<double>(measuredCount);
    const double liveAvailError = mean(availabilityErrors);

    std::cout << "live lane: discovery " << measuredDiscovered << "/"
              << measuredCount << " = " << liveDiscovery
              << ", mean availability |error| " << liveAvailError
              << " over " << availabilityErrors.size() << " estimates, "
              << static_cast<std::uint64_t>(decodeFailures)
              << " decode failures\n";

    // ---- phase 6: cross-validation against the simulated lane ----
    bool pass = true;
    double simDiscovery = 0.0, simAvailError = 0.0;
    if (crossValidate) {
      Scenario simScenario = scenario;
      simScenario.transport = TransportKind::kSim;
      simScenario.udp = experiments::UdpSpec{};
      experiments::ScenarioRunner runner(simScenario);
      runner.run();
      simDiscovery = runner.discoveredFraction(1);
      std::vector<double> simErrors;
      for (const auto& acc : runner.availabilityAccuracy(true)) {
        simErrors.push_back(std::fabs(acc.estimated - acc.actual));
      }
      simAvailError = mean(simErrors);

      const double discoveryDelta = std::fabs(liveDiscovery - simDiscovery);
      const double availDelta = std::fabs(liveAvailError - simAvailError);
      std::cout << "sim lane:  discovery " << simDiscovery
                << ", mean availability |error| " << simAvailError << "\n"
                << "deltas: discovery " << discoveryDelta << " (tolerance "
                << tolDiscovery << "), availability " << availDelta
                << " (tolerance " << tolAvailability << ")\n";
      if (discoveryDelta > tolDiscovery) {
        std::cerr << "FAIL: discovery fraction drifted beyond tolerance\n";
        pass = false;
      }
      if (availDelta > tolAvailability) {
        std::cerr << "FAIL: availability error drifted beyond tolerance\n";
        pass = false;
      }
      if (decodeFailures > 0) {
        std::cerr << "FAIL: wire decode failures on loopback must be zero\n";
        pass = false;
      }
      if (reports != count) {
        std::cerr << "FAIL: only " << reports << "/" << count
                  << " node reports were written\n";
        pass = false;
      }
      std::cout << (pass ? "cross-validation PASS\n"
                         : "cross-validation FAIL\n");
    }

    if (!jsonPath.empty()) {
      std::ofstream out(jsonPath);
      if (!out) throw std::runtime_error("cannot write " + jsonPath);
      out << "{\n"
          << "  \"spec\": \"" << specPath << "\",\n"
          << "  \"n_processes\": " << count << ",\n"
          << "  \"exited_cleanly\": " << exitedCleanly << ",\n"
          << "  \"reports\": " << reports << ",\n"
          << "  \"live\": {\"discovery_fraction\": " << liveDiscovery
          << ", \"mean_discovery_delay_ms\": " << mean(delays)
          << ", \"mean_availability_error\": " << liveAvailError
          << ", \"mean_memory_entries\": " << mean(memory)
          << ", \"decode_failures\": "
          << static_cast<std::uint64_t>(decodeFailures)
          << ", \"bytes_sent\": " << static_cast<std::uint64_t>(bytesSent)
          << "}";
      if (crossValidate) {
        out << ",\n  \"sim\": {\"discovery_fraction\": " << simDiscovery
            << ", \"mean_availability_error\": " << simAvailError << "},\n"
            << "  \"cross_validation\": {\"tolerance_discovery\": "
            << tolDiscovery << ", \"tolerance_availability\": "
            << tolAvailability << ", \"pass\": " << (pass ? "true" : "false")
            << "}";
      }
      out << "\n}\n";
      std::cout << "wrote " << jsonPath << "\n";
    }
    return pass ? 0 : 1;
  } catch (const experiments::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usageAndExit(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
