// avmon_sim — command-line scenario driver.
//
// Runs one AVMON scenario and prints a metric summary; optionally dumps
// per-node metric CSVs for plotting. All figure benches are fixed-recipe
// wrappers over the same runner; this tool is the free-form entry point.
//
// Usage:
//   avmon_sim [--model STAT|SYNTH|SYNTH-BD|SYNTH-BD2|PL|OV] [--n 1000]
//             [--minutes 90] [--warmup-min 30] [--seed 1] [--hash md5]
//             [--cvs 0(auto)] [--k 0(auto)] [--pr2] [--no-forgetful]
//             [--overreport 0.0] [--drop 0.0] [--csv PREFIX]
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "experiments/scenario.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table_printer.hpp"

namespace {

using namespace avmon;

[[noreturn]] void usageAndExit(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --model M        STAT|SYNTH|SYNTH-BD|SYNTH-BD2|PL|OV (default STAT)\n"
      << "  --n N            stable system size (default 1000; PL/OV fixed)\n"
      << "  --minutes M      measured minutes after warm-up (default 90)\n"
      << "  --warmup-min M   warm-up minutes (default 30)\n"
      << "  --seed S         RNG seed (default 1)\n"
      << "  --hash H         md5|sha1|splitmix64 (default md5)\n"
      << "  --cvs C          coarse view size (default: paper 4*N^0.25)\n"
      << "  --k K            pinging set size (default: log2 N)\n"
      << "  --pr2            enable the PR2 re-advertisement optimization\n"
      << "  --no-forgetful   disable forgetful pinging\n"
      << "  --overreport F   fraction of misreporting nodes (default 0)\n"
      << "  --drop P         one-way message drop probability (default 0)\n"
      << "  --shards S       sub-worlds run in parallel (default 1; 0 = one\n"
      << "                   per hardware thread; results are identical for\n"
      << "                   every shard count)\n"
      << "  --instant-rpc    collapsed-RTT RPC lane (forces --shards 1)\n"
      << "  --csv PREFIX     write PREFIX.{discovery,memory,bandwidth}.csv\n";
  std::exit(2);
}

churn::Model parseModel(const std::string& name) {
  if (name == "STAT") return churn::Model::kStat;
  if (name == "SYNTH") return churn::Model::kSynth;
  if (name == "SYNTH-BD") return churn::Model::kSynthBD;
  if (name == "SYNTH-BD2") return churn::Model::kSynthBD2;
  if (name == "PL") return churn::Model::kPlanetLab;
  if (name == "OV") return churn::Model::kOvernet;
  throw std::invalid_argument("unknown model: " + name);
}

void writeCsv(const std::string& path, const char* header,
              const std::vector<double>& values) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot write " + path);
  f << header << "\n";
  for (double v : values) f << v << "\n";
  std::cout << "wrote " << path << " (" << values.size() << " rows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Scenario scenario;
  scenario.hashName = "md5";
  long minutes = 90, warmupMin = 30;
  std::size_t cvsOverride = 0;
  unsigned kOverride = 0;
  std::string csvPrefix;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usageAndExit(argv[0]);
        return argv[++i];
      };
      if (arg == "--model") scenario.model = parseModel(next());
      else if (arg == "--n") scenario.stableSize = std::stoul(next());
      else if (arg == "--minutes") minutes = std::stol(next());
      else if (arg == "--warmup-min") warmupMin = std::stol(next());
      else if (arg == "--seed") scenario.seed = std::stoull(next());
      else if (arg == "--hash") scenario.hashName = next();
      else if (arg == "--cvs") cvsOverride = std::stoul(next());
      else if (arg == "--k") kOverride = static_cast<unsigned>(std::stoul(next()));
      else if (arg == "--pr2") scenario.pr2 = true;
      else if (arg == "--no-forgetful") scenario.forgetful = false;
      else if (arg == "--overreport") scenario.overreportFraction = std::stod(next());
      else if (arg == "--drop") scenario.messageDropProbability = std::stod(next());
      else if (arg == "--shards") scenario.shards = static_cast<unsigned>(std::stoul(next()));
      else if (arg == "--instant-rpc") { scenario.deferredRpc = false; scenario.shards = 1; }
      else if (arg == "--csv") csvPrefix = next();
      else usageAndExit(argv[0]);
    }

    scenario.warmup = warmupMin * kMinute;
    scenario.horizon = scenario.warmup + minutes * kMinute;
    if (cvsOverride != 0 || kOverride != 0) {
      churn::WorkloadParams wp;
      wp.stableSize = scenario.stableSize;
      AvmonConfig cfg = AvmonConfig::paperDefaults(
          churn::effectiveStableSize(scenario.model, wp));
      if (cvsOverride != 0) cfg.cvs = cvsOverride;
      if (kOverride != 0) cfg.k = kOverride;
      scenario.configOverride = cfg;
    }

    experiments::ScenarioRunner runner(scenario);
    runner.run();

    const auto& cfg = runner.config();
    std::cout << "model=" << churn::modelName(scenario.model)
              << " N=" << runner.effectiveN() << " K=" << cfg.k
              << " cvs=" << cfg.cvs << " hash=" << scenario.hashName
              << " seed=" << scenario.seed << "\n\n";

    const auto discovery = runner.discoveryDelaysSeconds(1);
    const auto memory = runner.memoryEntries(false);
    const auto bandwidth = runner.outgoingBytesPerSecond();

    stats::TablePrinter table("scenario summary");
    table.setHeader({"metric", "mean", "stddev", "p50", "p99", "n"});
    const auto addMetric = [&](const char* name,
                               const std::vector<double>& v) {
      stats::Summary s;
      for (double x : v) s.add(x);
      const stats::Cdf cdf(v);
      table.addRow({name, stats::TablePrinter::num(s.mean(), 2),
                    stats::TablePrinter::num(s.stddev(), 2),
                    stats::TablePrinter::num(cdf.percentile(0.5), 2),
                    stats::TablePrinter::num(cdf.percentile(0.99), 2),
                    std::to_string(s.count())});
    };
    addMetric("first-monitor discovery (s)", discovery);
    addMetric("memory entries", memory);
    addMetric("outgoing Bps", bandwidth);
    addMetric("computations/s", runner.computationsPerSecond());
    table.print(std::cout);
    std::cout << "discovered fraction (>=1 monitor): "
              << stats::TablePrinter::num(runner.discoveredFraction(1), 4)
              << "\n";

    if (!csvPrefix.empty()) {
      writeCsv(csvPrefix + ".discovery.csv", "discovery_seconds", discovery);
      writeCsv(csvPrefix + ".memory.csv", "memory_entries", memory);
      writeCsv(csvPrefix + ".bandwidth.csv", "outgoing_bps", bandwidth);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
