// avmon_sim — command-line scenario driver.
//
// Runs one scenario — or a declarative sweep — for any registered
// protocol and reports through the unified metrics sinks: a summary table
// (plus a cross-run comparison table for sweeps) on stdout, optional CSV
// files, optional JSON. All figure benches are fixed-recipe wrappers over
// the same runner; this tool is the free-form entry point.
//
// Usage:
//   avmon_sim --spec FILE [--csv PREFIX] [--json FILE]
//   avmon_sim [--protocol P] [--model M] [--n 1000] [--minutes 90]
//             [--warmup-min 30] [--seed 1] [--hash md5] [--cvs 0] [--k 0]
//             [--pr2] [--no-forgetful] [--overreport 0.0] [--drop 0.0]
//             [--shards 1] [--instant-rpc] [--stream-metrics]
//             [--metrics-window S] [--csv PREFIX] [--json FILE]
#include <cmath>
#include <iostream>
#include <string>

#include "experiments/metrics.hpp"
#include "experiments/parallel_runner.hpp"
#include "experiments/protocol_registry.hpp"
#include "experiments/scenario.hpp"
#include "experiments/spec.hpp"

namespace {

using namespace avmon;

[[noreturn]] void usageAndExit(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --spec FILE      run the scenario(s) a declarative spec file\n"
      << "                   describes (see examples/specs/); list-valued\n"
      << "                   keys sweep and print a comparison table.\n"
      << "                   Mutually exclusive with the scenario flags.\n"
      << "  --protocol P     " << experiments::ProtocolRegistry::instance()
                                     .namesJoined()
      << " (default avmon)\n"
      << "  --model M        STAT|SYNTH|SYNTH-BD|SYNTH-BD2|PL|OV (default STAT)\n"
      << "  --n N            stable system size (default 1000; PL/OV fixed)\n"
      << "  --minutes M      measured minutes after warm-up (default 90)\n"
      << "  --warmup-min M   warm-up minutes (default 30)\n"
      << "  --seed S         RNG seed (default 1)\n"
      << "  --hash H         md5|sha1|splitmix64 (default md5)\n"
      << "  --cvs C          coarse view size (default: paper 4*N^0.25)\n"
      << "  --k K            pinging set size (default: log2 N)\n"
      << "  --pr2            enable the PR2 re-advertisement optimization\n"
      << "  --no-forgetful   disable forgetful pinging\n"
      << "  --overreport F   fraction of misreporting nodes (default 0)\n"
      << "  --drop P         one-way message drop probability (default 0)\n"
      << "  --shards S       sub-worlds run in parallel (default 1; 0 = one\n"
      << "                   per hardware thread; results are identical for\n"
      << "                   every shard count)\n"
      << "  --instant-rpc    collapsed-RTT RPC lane (forces --shards 1)\n"
      << "  --stream-metrics collect metrics through the streaming reducer\n"
      << "                   pipeline (60 s windows unless --metrics-window;\n"
      << "                   summaries reproduce the scan lane exactly)\n"
      << "  --metrics-window S\n"
      << "                   streaming metric-window length in seconds\n"
      << "                   (implies --stream-metrics)\n"
      << "  --csv PREFIX     write PREFIX[.<run>].{discovery,memory,\n"
      << "                   bandwidth,pernode}.csv (+ .windows.csv when\n"
      << "                   streaming with windowed reducers)\n"
      << "  --json FILE      write summary statistics for every run as JSON\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  experiments::Scenario scenario;
  scenario.hashName = "md5";
  long minutes = 90, warmupMin = 30;
  std::size_t cvsOverride = 0;
  unsigned kOverride = 0;
  std::string specPath, csvPrefix, jsonPath;
  bool scenarioFlagSeen = false;
  bool streamMetrics = false;

  try {
    experiments::ArgParser args(argc, argv);
    while (args.next()) {
      const std::string& arg = args.flag();
      const bool scenarioFlag = arg != "--spec" && arg != "--csv" &&
                                arg != "--json";
      if (arg == "--spec") specPath = args.value();
      else if (arg == "--protocol") scenario.protocol = args.value();
      else if (arg == "--model") scenario.model = churn::modelFromName(args.value());
      else if (arg == "--n") scenario.stableSize = args.valueSize();
      else if (arg == "--minutes") minutes = args.valueLong();
      else if (arg == "--warmup-min") warmupMin = args.valueLong();
      else if (arg == "--seed") scenario.seed = args.valueU64();
      else if (arg == "--hash") scenario.hashName = args.value();
      else if (arg == "--cvs") cvsOverride = args.valueSize();
      else if (arg == "--k") kOverride = args.valueUnsigned();
      else if (arg == "--pr2") scenario.pr2 = true;
      else if (arg == "--no-forgetful") scenario.forgetful = false;
      else if (arg == "--overreport") scenario.overreportFraction = args.valueDouble();
      else if (arg == "--drop") scenario.messageDropProbability = args.valueDouble();
      else if (arg == "--shards") scenario.shards = args.valueUnsigned();
      else if (arg == "--instant-rpc") { scenario.deferredRpc = false; scenario.shards = 1; }
      else if (arg == "--stream-metrics") streamMetrics = true;
      else if (arg == "--metrics-window") { streamMetrics = true; scenario.metrics.window = static_cast<SimDuration>(std::llround(args.valueDouble() * kSecond)); }
      else if (arg == "--csv") csvPrefix = args.value();
      else if (arg == "--json") jsonPath = args.value();
      else args.failUnknown();
      scenarioFlagSeen = scenarioFlagSeen || scenarioFlag;
    }

    std::vector<experiments::Scenario> scenarios;
    if (!specPath.empty()) {
      if (scenarioFlagSeen) {
        throw std::invalid_argument(
            "--spec describes the whole scenario; scenario flags cannot be "
            "combined with it (put the knob in the spec file)");
      }
      const auto sweep = experiments::SweepSpec::parseFile(specPath);
      scenarios = sweep.expand();
    } else {
      scenario.warmup = warmupMin * kMinute;
      scenario.horizon = scenario.warmup + minutes * kMinute;
      scenario.configOverride = experiments::cvsKOverride(
          scenario.model, scenario.stableSize, cvsOverride, kOverride);
      if (streamMetrics && scenario.metrics.window == 0) {
        scenario.metrics.window = 60 * kSecond;
      }
      scenarios.push_back(scenario);
    }

    // Fail on a bad scenario before any world is built (validate is also
    // run by every ScenarioRunner; doing it here makes spec typos cheap).
    for (const experiments::Scenario& s : scenarios) s.validate();

    std::cout << (scenarios.size() == 1
                      ? "running 1 scenario\n"
                      : "running " + std::to_string(scenarios.size()) +
                            " scenarios\n");

    // Independent scenarios fan out across the worker pool; results come
    // back in input order regardless of thread count. map() tears each
    // world down as soon as its snapshot is harvested.
    const auto metricSets =
        experiments::ParallelScenarioRunner().map<experiments::MetricSet>(
            scenarios, [](experiments::ScenarioRunner& runner) {
              return experiments::collectMetrics(runner);
            });

    // File-backed sinks close before the stdout one: a reader that stops
    // consuming stdout (| head) must not prevent the artifacts from
    // being written.
    std::vector<std::unique_ptr<experiments::MetricsSink>> sinks;
    if (!csvPrefix.empty()) {
      sinks.push_back(std::make_unique<experiments::CsvSink>(csvPrefix));
    }
    if (!jsonPath.empty()) {
      sinks.push_back(std::make_unique<experiments::JsonSink>(jsonPath));
    }
    sinks.push_back(
        std::make_unique<experiments::SummaryTableSink>(std::cout));
    for (const auto& set : metricSets) {
      for (const auto& sink : sinks) sink->add(set);
    }
    for (const auto& sink : sinks) sink->close();
    if (!csvPrefix.empty()) {
      std::cout << "wrote CSV files under prefix " << csvPrefix << "\n";
    }
    if (!jsonPath.empty()) {
      std::cout << "wrote " << jsonPath << "\n";
    }
  } catch (const experiments::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usageAndExit(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
