// avmon_trace — availability-trace utility.
//
// Subcommands:
//   gen   --model M --n N --hours H --seed S --out FILE
//         Generates a synthetic availability trace and saves it as CSV
//         (the format loadCsvFile() reads back, so real converted traces
//         can be swapped in anywhere a model is accepted).
//   stats --in FILE
//         Prints population, stable size, availability, and churn stats.
#include <iostream>
#include <string>

#include "churn/churn_model.hpp"
#include "experiments/spec.hpp"
#include "stats/table_printer.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace avmon;

[[noreturn]] void usageAndExit(const char* argv0) {
  std::cerr << "usage:\n"
            << "  " << argv0
            << " gen --model STAT|SYNTH|SYNTH-BD|SYNTH-BD2|PL|OV"
               " [--n 1000] [--hours 48] [--seed 1] --out FILE\n"
            << "  " << argv0 << " stats --in FILE\n";
  std::exit(2);
}

int runGen(int argc, char** argv) {
  churn::Model model = churn::Model::kSynth;
  churn::WorkloadParams params;
  params.controlFraction = 0.0;
  long hours = 48;
  std::string out;

  experiments::ArgParser args(argc, argv, /*begin=*/2);
  while (args.next()) {
    const std::string& arg = args.flag();
    if (arg == "--model") model = churn::modelFromName(args.value());
    else if (arg == "--n") params.stableSize = args.valueSize();
    else if (arg == "--hours") hours = args.valueLong();
    else if (arg == "--seed") params.seed = args.valueU64();
    else if (arg == "--out") out = args.value();
    else args.failUnknown();
  }
  if (out.empty()) usageAndExit(argv[0]);
  params.horizon = hours * kHour;

  const auto trace = churn::generate(model, params);
  trace::saveCsvFile(trace, out);
  std::cout << "wrote " << out << ": " << trace.nodes().size() << " nodes, "
            << hours << " h horizon (" << churn::modelName(model) << ")\n";
  return 0;
}

int runStats(int argc, char** argv) {
  std::string in;
  experiments::ArgParser args(argc, argv, /*begin=*/2);
  while (args.next()) {
    if (args.flag() == "--in") in = args.value();
    else args.failUnknown();
  }
  if (in.empty()) usageAndExit(argv[0]);

  const auto trace = trace::loadCsvFile(in);
  const SimDuration h = trace.horizon();

  std::size_t deaths = 0, totalSessions = 0;
  SimDuration totalUp = 0;
  for (const auto& n : trace.nodes()) {
    deaths += n.death ? 1 : 0;
    totalSessions += n.sessions.size();
    totalUp += n.totalUpTime();
  }

  stats::TablePrinter table("trace stats: " + in);
  table.setHeader({"metric", "value"});
  table.addRow({"horizon (hours)", stats::TablePrinter::num(
                                       toSeconds(h) / 3600.0, 1)});
  table.addRow({"nodes ever born", std::to_string(trace.nodes().size())});
  table.addRow({"deaths", std::to_string(deaths)});
  table.addRow({"sessions", std::to_string(totalSessions)});
  table.addRow({"mean alive count",
                stats::TablePrinter::num(
                    trace.meanAliveCount(0, h, std::max<SimDuration>(
                                                   h / 100, kMinute)),
                    1)});
  table.addRow({"mean availability",
                stats::TablePrinter::num(trace.meanAvailability(0, h), 3)});
  table.addRow(
      {"mean session (hours)",
       stats::TablePrinter::num(
           totalSessions == 0
               ? 0.0
               : toSeconds(totalUp) / 3600.0 / static_cast<double>(totalSessions),
           2)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usageAndExit(argv[0]);
  try {
    const std::string cmd = argv[1];
    if (cmd == "gen") return runGen(argc, argv);
    if (cmd == "stats") return runStats(argc, argv);
    usageAndExit(argv[0]);
  } catch (const experiments::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usageAndExit(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
