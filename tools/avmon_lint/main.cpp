// Command-line driver for the determinism linter.
//
//   avmon_lint [--list-rules] [--root DIR]... [FILE]...
//
// Exit status: 0 when the scanned tree is clean (advisory-rule findings
// are printed but do not fail the run), 1 when blocking findings were
// reported, 2 on usage or I/O errors.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list-rules] [--root DIR]... [FILE]...\n"
               "  --root DIR    recursively scan every C++ file under DIR\n"
               "  --list-rules  print the rule catalog and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using avmon::lint::Linter;

  Linter linter;
  bool anyInput = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : avmon::lint::ruleCatalog()) {
        std::printf("%-18s %s%s\n", r.name, r.advisory ? "(advisory) " : "",
                    r.summary);
      }
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) return usage(argv[0]);
      std::string error;
      if (!linter.addTree(argv[++i], &error)) {
        std::fprintf(stderr, "avmon_lint: %s\n", error.c_str());
        return 2;
      }
      anyInput = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) return usage(argv[0]);
    std::FILE* f = std::fopen(arg.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "avmon_lint: cannot read %s\n", arg.c_str());
      return 2;
    }
    std::string content;
    char buf[4096];
    for (std::size_t got; (got = std::fread(buf, 1, sizeof buf, f)) > 0;) {
      content.append(buf, got);
    }
    std::fclose(f);
    linter.addSource(arg, std::move(content));
    anyInput = true;
  }
  if (!anyInput) return usage(argv[0]);

  const std::vector<avmon::lint::Finding> findings = linter.run();
  std::size_t blocking = 0;
  for (const auto& f : findings) {
    const bool advisory = avmon::lint::isAdvisoryRule(f.rule);
    if (!advisory) ++blocking;
    std::printf("%s%s\n", advisory ? "advisory: " : "",
                avmon::lint::formatFinding(f).c_str());
  }
  if (findings.empty()) {
    std::printf("avmon_lint: clean\n");
    return 0;
  }
  std::printf("avmon_lint: %zu finding(s), %zu blocking\n", findings.size(),
              blocking);
  return blocking == 0 ? 0 : 1;
}
