#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace avmon::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule names
// ---------------------------------------------------------------------------
constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kRandomDevice = "random-device";
constexpr const char* kCRand = "c-rand";
constexpr const char* kWallClock = "wall-clock";
constexpr const char* kGetenv = "getenv";
constexpr const char* kPtrKeyOrder = "ptr-key-order";
constexpr const char* kUnseededEngine = "unseeded-mt19937";
constexpr const char* kPerNodeAlloc = "per-node-alloc";
constexpr const char* kBadAllow = "bad-allow";
constexpr const char* kStaleAllow = "stale-allow";
constexpr const char* kScopedAllow = "scoped-allow";

// Directory-level policy for wall-clock suppressions: the simulated lane
// must stay wall-clock-free even *with* a reasoned annotation, so a
// wall-clock allow is sanctioned only inside the trees whose job is real
// time — the live-wire lane (src/net/ and its avmon_node / avmon_live
// process hosts) and the self-timing bench harness. Anywhere else the
// allow itself is the finding (`scoped-allow`): the annotation still
// suppresses the wall-clock hit, so every site stays reasoned, but the
// carve-out cannot silently leak into simulator code.
bool inWallClockAllowScope(const std::string& path) {
  static constexpr const char* kScopes[] = {
      "src/net/", "tools/avmon_node", "tools/avmon_live", "bench/"};
  for (const char* scope : kScopes) {
    if (path.find(scope) != std::string::npos) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------
enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

// One annotation parsed out of a comment. A malformed annotation
// (unparseable, unknown rule, or empty reason) never suppresses anything
// and is reported via the `bad-allow` meta rule instead.
struct Allow {
  int line = 0;
  std::string rule;
  std::string reason;
  bool malformed = false;
  std::string problem;  // set when malformed
  bool used = false;
};

struct LexedSource {
  std::string name;
  std::vector<Token> tokens;
  std::vector<Allow> allows;
  std::vector<std::string> quotedIncludes;
};

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trimCopy(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

// Parses every annotation occurrence inside one comment body. `startLine`
// is the line of the comment's first character; block comments may span
// lines, so each occurrence gets the line it actually sits on.
void scanCommentForAllows(const std::string& text, int startLine,
                          std::vector<Allow>& out) {
  const std::string marker = "lint:allow(";
  std::size_t pos = 0;
  for (;;) {
    const std::size_t hit = text.find(marker, pos);
    if (hit == std::string::npos) return;
    Allow a;
    a.line = startLine + static_cast<int>(
                             std::count(text.begin(),
                                        text.begin() + static_cast<long>(hit),
                                        '\n'));
    const std::size_t open = hit + marker.size();
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) {
      a.malformed = true;
      a.problem = "annotation is missing its closing ')'";
      out.push_back(std::move(a));
      return;
    }
    const std::string body = text.substr(open, close - open);
    const std::size_t comma = body.find(',');
    if (comma == std::string::npos) {
      a.malformed = true;
      a.problem = "annotation needs a reason: expected (rule, reason)";
    } else {
      a.rule = trimCopy(body.substr(0, comma));
      a.reason = trimCopy(body.substr(comma + 1));
      if (!isKnownRule(a.rule)) {
        a.malformed = true;
        a.problem = "unknown rule '" + a.rule + "'";
      } else if (a.reason.empty()) {
        a.malformed = true;
        a.problem = "empty reason for rule '" + a.rule + "'";
      }
    }
    out.push_back(std::move(a));
    pos = close + 1;
  }
}

// Extracts the path of a `#include "..."` directive, if present.
void scanDirectiveForInclude(const std::string& directive,
                             std::vector<std::string>& out) {
  if (directive.find("include") == std::string::npos) return;
  const std::size_t q1 = directive.find('"');
  if (q1 == std::string::npos) return;
  const std::size_t q2 = directive.find('"', q1 + 1);
  if (q2 == std::string::npos) return;
  out.push_back(directive.substr(q1 + 1, q2 - q1 - 1));
}

LexedSource lex(const std::string& name, const std::string& src) {
  LexedSource out;
  out.name = name;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool lineHasCode = false;  // a '#' only starts a directive before any code

  auto peek = [&](std::size_t off) -> char {
    return (i + off < n) ? src[i + off] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      lineHasCode = false;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      scanCommentForAllows(src.substr(i, j - i), line, out.allows);
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) ++j;
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      const std::string body = src.substr(i, end - i);
      scanCommentForAllows(body, line, out.allows);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = end;
      continue;
    }
    // Preprocessor directive: consume the logical line (with backslash
    // continuations), remembering quoted include paths for the cross-file
    // symbol pass.
    if (c == '#' && !lineHasCode) {
      std::string directive;
      std::size_t j = i;
      while (j < n) {
        if (src[j] == '\\' && j + 1 < n && src[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        if (src[j] == '\n') break;
        directive.push_back(src[j]);
        ++j;
      }
      scanDirectiveForInclude(directive, out.quotedIncludes);
      i = j;
      continue;
    }
    lineHasCode = true;
    // Raw string literal (plain R"delim(...)delim" form).
    if (c == 'R' && peek(1) == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim.push_back(src[j++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = src.find(closer, j);
      const std::size_t stop = (end == std::string::npos)
                                   ? n
                                   : end + closer.size();
      line += static_cast<int>(
          std::count(src.begin() + static_cast<long>(i),
                     src.begin() + static_cast<long>(stop), '\n'));
      i = stop;
      continue;
    }
    // String / character literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      i = (j < n) ? j + 1 : n;
      continue;
    }
    // Identifier.
    if (isIdentStart(c)) {
      std::size_t j = i + 1;
      while (j < n && isIdentChar(src[j])) ++j;
      out.tokens.push_back(
          Token{TokKind::kIdent, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Number (digit separators and exponent signs included).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (isIdentChar(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = src[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(
          Token{TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: '::' and '->' are single tokens so a lone ':' reliably
    // marks a range-for and 'std' qualification is easy to match.
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>')) {
      out.tokens.push_back(Token{TokKind::kPunct, src.substr(i, 2), line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Phase A: cross-file symbol collection
// ---------------------------------------------------------------------------
struct SymbolTables {
  std::set<std::string> unorderedAliases;  // using CvSet = std::unordered_...
  std::set<std::string> unorderedFns;      // functions returning unordered
  std::map<std::string, std::set<std::string>> varsByFile;
  // Function PARAMETER names: visible only inside the declaring file. A
  // signature in a header must not leak its parameter names into every
  // includer (a local vector named like a header's set parameter is fine).
  std::map<std::string, std::set<std::string>> paramsByFile;
};

bool isUnorderedTypeToken(const std::string& t) {
  return t == "unordered_map" || t == "unordered_set" ||
         t == "unordered_multimap" || t == "unordered_multiset";
}

// Finds the index just past the '>' matching a '<' at `open`. Returns
// std::string::npos-like failure as 0 when unbalanced.
std::size_t skipAngles(const std::vector<Token>& ts, std::size_t open) {
  int depth = 1;
  for (std::size_t k = open + 1; k < ts.size(); ++k) {
    if (ts[k].kind != TokKind::kPunct) continue;
    if (ts[k].text == "<") ++depth;
    if (ts[k].text == ">" && --depth == 0) return k + 1;
  }
  return 0;
}

void collectAliases(const LexedSource& f, SymbolTables& tables) {
  const auto& ts = f.tokens;
  for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
    if (ts[i].text != "using" || ts[i].kind != TokKind::kIdent) continue;
    if (ts[i + 1].kind != TokKind::kIdent || ts[i + 2].text != "=") continue;
    for (std::size_t k = i + 3; k < ts.size() && ts[k].text != ";"; ++k) {
      if (ts[k].kind == TokKind::kIdent && isUnorderedTypeToken(ts[k].text)) {
        tables.unorderedAliases.insert(ts[i + 1].text);
        break;
      }
    }
  }
}

void collectDeclarations(const LexedSource& f, SymbolTables& tables) {
  const auto& ts = f.tokens;
  auto& vars = tables.varsByFile[f.name];
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent) continue;
    const bool base = isUnorderedTypeToken(ts[i].text);
    const bool alias = tables.unorderedAliases.count(ts[i].text) > 0;
    if (!base && !alias) continue;
    std::size_t j = i + 1;
    if (j < ts.size() && ts[j].text == "<") {
      j = skipAngles(ts, j);
      if (j == 0) continue;
    } else if (base) {
      continue;  // bare unordered_map without template args: not a decl
    }
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" || ts[j].text == "const")) {
      ++j;
    }
    if (j + 1 >= ts.size() || ts[j].kind != TokKind::kIdent) continue;
    if (ts[j + 1].text == "(") {
      // `const std::unordered_set<Id>& pingingSet() const` — an accessor
      // whose call sites must be treated like the container itself.
      tables.unorderedFns.insert(ts[j].text);
    } else if (ts[j + 1].text == ")" || ts[j + 1].text == ",") {
      tables.paramsByFile[f.name].insert(ts[j].text);
    } else {
      vars.insert(ts[j].text);
    }
  }
}

// `auto& ps = node.pingingSet();` binds a name to an unordered container
// returned by a known accessor; record it so later iteration is caught.
void collectAutoBindings(const LexedSource& f, SymbolTables& tables) {
  const auto& ts = f.tokens;
  auto& vars = tables.varsByFile[f.name];
  for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent || ts[i].text != "auto") continue;
    std::size_t j = i + 1;
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" || ts[j].text == "const")) {
      ++j;
    }
    if (j + 1 >= ts.size() || ts[j].kind != TokKind::kIdent) continue;
    if (ts[j + 1].text != "=") continue;
    for (std::size_t k = j + 2; k + 1 < ts.size() && ts[k].text != ";"; ++k) {
      if (ts[k].kind == TokKind::kIdent &&
          tables.unorderedFns.count(ts[k].text) > 0 &&
          ts[k + 1].text == "(") {
        vars.insert(ts[j].text);
        break;
      }
    }
  }
}

// Resolves a quoted include path to a registered source name: exact match
// or path-suffix match ("avmon/node.hpp" -> ".../src/avmon/node.hpp").
const std::string* resolveInclude(
    const std::vector<LexedSource>& files, const std::string& path) {
  for (const auto& f : files) {
    if (f.name == path) return &f.name;
    if (f.name.size() > path.size() + 1 &&
        f.name.compare(f.name.size() - path.size(), path.size(), path) == 0 &&
        f.name[f.name.size() - path.size() - 1] == '/') {
      return &f.name;
    }
  }
  return nullptr;
}

// Variables visible to `file`: its own plus (transitively) those declared
// in project headers it includes. Scoping per file keeps an unordered
// member in one class from tainting a same-named vector elsewhere.
std::set<std::string> effectiveVars(const std::vector<LexedSource>& files,
                                    const SymbolTables& tables,
                                    std::size_t fileIndex) {
  std::set<std::string> vars;
  {
    const auto it = tables.paramsByFile.find(files[fileIndex].name);
    if (it != tables.paramsByFile.end()) {
      vars.insert(it->second.begin(), it->second.end());
    }
  }
  std::set<std::string> visited;
  std::vector<const LexedSource*> queue{&files[fileIndex]};
  while (!queue.empty()) {
    const LexedSource* f = queue.back();
    queue.pop_back();
    if (!visited.insert(f->name).second) continue;
    const auto it = tables.varsByFile.find(f->name);
    if (it != tables.varsByFile.end()) {
      vars.insert(it->second.begin(), it->second.end());
    }
    for (const auto& inc : f->quotedIncludes) {
      if (const std::string* resolved = resolveInclude(files, inc)) {
        for (const auto& g : files) {
          if (g.name == *resolved) {
            queue.push_back(&g);
            break;
          }
        }
      }
    }
  }
  return vars;
}

// ---------------------------------------------------------------------------
// Phase B: rules
// ---------------------------------------------------------------------------
class FileChecker {
 public:
  FileChecker(const std::vector<LexedSource>& files, SymbolTables& tables,
              std::size_t fileIndex, std::vector<Finding>& findings)
      : file_(files[fileIndex]),
        tables_(tables),
        vars_(effectiveVars(files, tables, fileIndex)),
        findings_(findings) {
    computeBodyMap();
  }

  void check() {
    const auto& ts = file_.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      checkRangeFor(i);
      checkBeginIteration(i);
      checkEntropyAndClock(i);
      checkPointerKeys(i);
      checkUnseededEngine(i);
      checkPerNodeAlloc(i);
    }
    reportAllowProblems();
  }

 private:
  const LexedSource& file_;
  SymbolTables& tables_;
  std::set<std::string> vars_;
  std::vector<Finding>& findings_;
  // inBody_[i]: token i sits inside a function (or lambda) body. Computed
  // by classifying each `{` from the tokens just before it; declarations
  // at class/namespace scope (members, return types, parameters) are
  // outside every body and so never trip the per-node-alloc rule.
  std::vector<char> inBody_;
  // Mutable view of this file's allows (used flags updated as rules fire).
  std::vector<Allow> allows_{file_.allows};

  const Token& tok(std::size_t i) const { return file_.tokens[i]; }
  std::size_t size() const { return file_.tokens.size(); }
  bool isPunct(std::size_t i, const char* p) const {
    return i < size() && tok(i).kind == TokKind::kPunct && tok(i).text == p;
  }
  bool isIdent(std::size_t i) const {
    return i < size() && tok(i).kind == TokKind::kIdent;
  }
  bool prevIsMemberAccess(std::size_t i) const {
    return i > 0 && (tok(i - 1).text == "." || tok(i - 1).text == "->");
  }
  // `long time() const` declares a member named like a C clock function; a
  // preceding identifier (the return type) marks a declaration, not a
  // call. `return time(...)` must still read as a call.
  bool prevIsDeclSpecifier(std::size_t i) const {
    if (i == 0 || !isIdent(i - 1)) return false;
    const std::string& p = tok(i - 1).text;
    return p != "return" && p != "co_return" && p != "co_yield" &&
           p != "co_await" && p != "else" && p != "do";
  }

  void report(int line, const char* rule, std::string message) {
    bool suppressed = false;
    for (auto& a : allows_) {
      if (a.malformed || a.rule != rule) continue;
      if (line == a.line || line == a.line + 1) {
        a.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) {
      findings_.push_back(Finding{file_.name, line, rule, std::move(message)});
    }
  }

  void reportAllowProblems() {
    for (const auto& a : allows_) {
      if (a.malformed) {
        findings_.push_back(Finding{file_.name, a.line, kBadAllow, a.problem});
      } else if (!a.used) {
        findings_.push_back(Finding{
            file_.name, a.line, kStaleAllow,
            "annotation for rule '" + a.rule +
                "' suppresses nothing on this or the next line"});
      } else if (a.rule == kWallClock &&
                 !inWallClockAllowScope(file_.name)) {
        findings_.push_back(Finding{
            file_.name, a.line, kScopedAllow,
            "wall-clock allows are sanctioned only under src/net/, "
            "tools/avmon_node, tools/avmon_live, and bench/ — the simulated "
            "lane stays wall-clock-free even with a reason; move the code "
            "into the live-wire lane or drive it from simulated time"});
      }
    }
  }

  bool isUnorderedLike(const std::string& t) const {
    return isUnorderedTypeToken(t) || tables_.unorderedAliases.count(t) > 0;
  }

  // Rule: range-for whose range expression names an unordered container
  // (variable, accessor call, or inline construction).
  void checkRangeFor(std::size_t i) {
    if (!isIdent(i) || tok(i).text != "for" || !isPunct(i + 1, "(")) return;
    std::size_t colon = 0;
    std::size_t close = 0;
    int depth = 1;
    for (std::size_t k = i + 2; k < size(); ++k) {
      if (tok(k).kind != TokKind::kPunct) continue;
      if (tok(k).text == "(") ++depth;
      if (tok(k).text == ")") {
        if (--depth == 0) {
          close = k;
          break;
        }
      }
      if (depth == 1 && tok(k).text == ":" && colon == 0) colon = k;
    }
    if (colon == 0 || close == 0) return;
    for (std::size_t k = colon + 1; k < close; ++k) {
      if (!isIdent(k)) continue;
      const std::string& t = tok(k).text;
      if (vars_.count(t) > 0) {
        report(tok(k).line, kUnorderedIter,
               "range-for over unordered container '" + t + "'");
        return;
      }
      if (tables_.unorderedFns.count(t) > 0 && isPunct(k + 1, "(")) {
        report(tok(k).line, kUnorderedIter,
               "range-for over unordered container returned by '" + t +
                   "()'");
        return;
      }
      if (isUnorderedLike(t)) {
        report(tok(k).line, kUnorderedIter,
               "range-for over an unordered container ('" + t + "')");
        return;
      }
    }
  }

  // Rule: explicit iterator walks — m.begin()/cbegin()/rbegin() on an
  // unordered variable or on an accessor's return value.
  void checkBeginIteration(std::size_t i) {
    if (!isPunct(i, ".") && !isPunct(i, "->")) return;
    if (!isIdent(i + 1) || !isPunct(i + 2, "(")) return;
    const std::string& fn = tok(i + 1).text;
    if (fn != "begin" && fn != "cbegin" && fn != "rbegin" && fn != "crbegin") {
      return;
    }
    if (i == 0) return;
    const Token& prev = tok(i - 1);
    if (prev.kind == TokKind::kIdent && vars_.count(prev.text) > 0) {
      report(tok(i + 1).line, kUnorderedIter,
             "iterator over unordered container '" + prev.text + "'");
      return;
    }
    if (prev.kind == TokKind::kPunct && prev.text == ")") {
      int depth = 1;
      for (std::size_t k = i - 1; k-- > 0;) {
        if (tok(k).kind != TokKind::kPunct) continue;
        if (tok(k).text == ")") ++depth;
        if (tok(k).text == "(" && --depth == 0) {
          if (k > 0 && isIdent(k - 1) &&
              tables_.unorderedFns.count(tok(k - 1).text) > 0) {
            report(tok(i + 1).line, kUnorderedIter,
                   "iterator over unordered container returned by '" +
                       tok(k - 1).text + "()'");
          }
          return;
        }
      }
    }
  }

  // Rules: random-device, c-rand, wall-clock, getenv.
  void checkEntropyAndClock(std::size_t i) {
    if (!isIdent(i)) return;
    const std::string& t = tok(i).text;
    if (t == "random_device") {
      report(tok(i).line, kRandomDevice,
             "std::random_device draws entropy from the host");
      return;
    }
    static const std::set<std::string> cRandNames = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
    if (cRandNames.count(t) > 0 && isPunct(i + 1, "(") &&
        !prevIsMemberAccess(i)) {
      report(tok(i).line, kCRand,
             "C PRNG '" + t + "' (global state, host-seeded)");
      return;
    }
    static const std::set<std::string> clockNames = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime",
        "strftime"};
    if (clockNames.count(t) > 0) {
      report(tok(i).line, kWallClock, "wall-clock source '" + t + "'");
      return;
    }
    if ((t == "time" || t == "clock") && isPunct(i + 1, "(") &&
        !prevIsMemberAccess(i) && !prevIsDeclSpecifier(i)) {
      report(tok(i).line, kWallClock, "wall-clock call '" + t + "()'");
      return;
    }
    static const std::set<std::string> envNames = {
        "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};
    if (envNames.count(t) > 0) {
      report(tok(i).line, kGetenv,
             "environment access '" + t + "' depends on the host");
    }
  }

  // Rule: std::map/std::set keyed by a pointer, or std::hash of a pointer
  // — iteration/order becomes a function of allocation addresses (ASLR).
  void checkPointerKeys(std::size_t i) {
    if (!isIdent(i) || tok(i).text != "std" || !isPunct(i + 1, "::")) return;
    if (!isIdent(i + 2) || !isPunct(i + 3, "<")) return;
    const std::string& container = tok(i + 2).text;
    const bool ordered = container == "map" || container == "set" ||
                         container == "multimap" || container == "multiset";
    const bool hash = container == "hash";
    if (!ordered && !hash) return;
    int depth = 1;
    for (std::size_t k = i + 4; k < size(); ++k) {
      if (tok(k).kind != TokKind::kPunct) continue;
      const std::string& p = tok(k).text;
      if (p == "<") ++depth;
      if (p == ">" && --depth == 0) break;
      // For the ordered containers only the KEY argument matters; stop at
      // the comma separating key from value/comparator.
      if (ordered && depth == 1 && p == ",") break;
      if (p == "*") {
        report(tok(i + 2).line, kPtrKeyOrder,
               hash ? "std::hash over a pointer type"
                    : "std::" + container + " keyed by a pointer type");
        return;
      }
    }
  }

  // Classifies every `{` as opening a function body or not, and marks the
  // tokens inside. A brace opens a body when the nearest interesting token
  // before it is `)` (function/ctor/catch — at namespace scope nothing
  // else ends in `)` before `{`) or `]` (parameterless lambda); `do`,
  // `else`, and `try` only occur inside bodies and inherit; declaration
  // keywords, `;`, `=`, `,`, `(`, and braces mean class/namespace/init
  // scope. Blocks nested inside a body stay inside it. Deliberately
  // approximate (a ctor whose init list ends in `}` reads as non-body and
  // under-reports) — per-node-alloc is advisory, so misses are cheap and
  // false alarms are not.
  void computeBodyMap() {
    inBody_.assign(size(), 0);
    std::vector<char> stack;
    static const std::set<std::string> nonBodyStops = {
        ";", "{", "}", "=", ",", "(",        "class",
        "struct", "union", "enum", "namespace", "export", "extern"};
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      if (t.kind == TokKind::kPunct && t.text == "}") {
        if (!stack.empty()) stack.pop_back();
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "{") {
        bool body = !stack.empty() && stack.back() != 0;
        if (!body) {
          for (std::size_t back = i; back > 0;) {
            --back;
            const std::string& p = tok(back).text;
            if (p == ")" || p == "]" || p == "do" || p == "else" ||
                p == "try") {
              body = true;
              break;
            }
            if (nonBodyStops.count(p) > 0) break;
            // Anything else (identifiers, `::`, `<`, `>`, `:`, `const`,
            // `noexcept`, `->`, ...) is part of a head we keep skipping.
          }
        }
        stack.push_back(body ? 1 : 0);
        continue;
      }
      inBody_[i] = (!stack.empty() && stack.back() != 0) ? 1 : 0;
    }
  }

  // Advisory rule: a function-local std associative container keyed by
  // NodeId. This is the shape of the O(N) scratch maps the memory diet
  // removed from the probe paths (per-node estimate maps, id->trace maps
  // rebuilt per scan); dense slot arrays (globalIndexOf) or the visit APIs
  // cover the same needs without the per-node allocation churn. Members,
  // parameters, and reference/pointer views are exempt.
  void checkPerNodeAlloc(std::size_t i) {
    if (!isIdent(i) || tok(i).text != "std" || !isPunct(i + 1, "::")) return;
    if (!isIdent(i + 2) || !isPunct(i + 3, "<")) return;
    static const std::set<std::string> assoc = {
        "map",           "multimap",           "set",
        "multiset",      "unordered_map",      "unordered_multimap",
        "unordered_set", "unordered_multiset"};
    if (assoc.count(tok(i + 2).text) == 0) return;
    if (i >= inBody_.size() || inBody_[i] == 0) return;
    // Key type: optional namespace qualifiers, then NodeId itself.
    std::size_t k = i + 4;
    while (isIdent(k) && isPunct(k + 1, "::")) k += 2;
    if (!isIdent(k) || tok(k).text != "NodeId") return;
    // Find the template close and exempt reference/pointer views.
    int depth = 1;
    std::size_t close = 0;
    for (std::size_t j = i + 4; j < size(); ++j) {
      if (tok(j).kind != TokKind::kPunct) continue;
      if (tok(j).text == "<") ++depth;
      if (tok(j).text == ">" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == 0) return;
    if (isPunct(close + 1, "&") || isPunct(close + 1, "*")) return;
    report(tok(i).line, kPerNodeAlloc,
           "function-local std::" + tok(i + 2).text +
               " keyed by NodeId: O(N) per-node scratch; prefer a dense "
               "slot array (globalIndexOf) or a visit API");
  }

  // Rule: default-constructed std <random> engines (seeded from a fixed
  // implementation default, which reads as seeded but is shared global
  // state and invites later 'fixes' via random_device).
  void checkUnseededEngine(std::size_t i) {
    if (!isIdent(i)) return;
    static const std::set<std::string> engines = {
        "mt19937",      "mt19937_64", "minstd_rand", "minstd_rand0",
        "default_random_engine",      "knuth_b",     "ranlux24",
        "ranlux48"};
    if (engines.count(tok(i).text) == 0) return;
    if (prevIsMemberAccess(i)) return;
    const std::string& engine = tok(i).text;
    std::size_t j = i + 1;
    if (isIdent(j)) {
      // `std::mt19937 gen;` / `gen()` / `gen{}`
      if (isPunct(j + 1, ";") ||
          (isPunct(j + 1, "(") && isPunct(j + 2, ")")) ||
          (isPunct(j + 1, "{") && isPunct(j + 2, "}"))) {
        report(tok(i).line, kUnseededEngine,
               "default-seeded std::" + engine + " '" + tok(j).text + "'");
      }
      return;
    }
    // Temporaries: `std::mt19937{}` / `std::mt19937()`.
    if ((isPunct(j, "{") && isPunct(j + 1, "}")) ||
        (isPunct(j, "(") && isPunct(j + 1, ")"))) {
      report(tok(i).line, kUnseededEngine,
             "default-seeded std::" + engine + " temporary");
    }
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------
const std::vector<RuleInfo>& ruleCatalog() {
  static const std::vector<RuleInfo> kRules = {
      {"unordered-iter",
       "iteration over std::unordered_map/unordered_set: order is a "
       "function of hashing and insertion history, not of the data"},
      {"random-device", "std::random_device draws entropy from the host"},
      {"c-rand", "C PRNG family (rand/srand/drand48/...): global state"},
      {"wall-clock",
       "wall-clock time source (time(), chrono clocks, gettimeofday, ...)"},
      {"getenv", "environment access makes behavior depend on the host"},
      {"ptr-key-order",
       "ordered container or std::hash keyed by pointer value "
       "(ASLR-dependent order)"},
      {"unseeded-mt19937", "default-constructed std <random> engine"},
      {"per-node-alloc",
       "function-local associative container keyed by NodeId: O(N) "
       "per-node scratch on what may be a probe path (advisory)",
       /*advisory=*/true},
      {"bad-allow", "malformed suppression annotation"},
      {"stale-allow", "suppression annotation that suppresses nothing"},
      {"scoped-allow",
       "wall-clock suppression outside its sanctioned trees (src/net/, "
       "tools/avmon_node, tools/avmon_live, bench/)"},
  };
  return kRules;
}

bool isKnownRule(const std::string& name) {
  for (const auto& r : ruleCatalog()) {
    if (name == r.name) return true;
  }
  return false;
}

bool isAdvisoryRule(const std::string& name) {
  for (const auto& r : ruleCatalog()) {
    if (name == r.name) return r.advisory;
  }
  return false;
}

std::string formatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

void Linter::addSource(std::string name, std::string content) {
  sources_.push_back(Source{std::move(name), std::move(content)});
}

bool Linter::addTree(const std::string& root, std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    if (error != nullptr) *error = root + " is not a readable directory";
    return false;
  }
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
        ext == ".cxx" || ext == ".hxx") {
      paths.push_back(it->path().generic_string());
    }
  }
  // Directory enumeration order is filesystem-dependent; sorting keeps the
  // report (and any downstream diffing) stable.
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      if (error != nullptr) *error = "cannot read " + p;
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    addSource(p, buf.str());
  }
  return true;
}

std::vector<Finding> Linter::run() {
  std::vector<LexedSource> files;
  files.reserve(sources_.size());
  for (const auto& s : sources_) files.push_back(lex(s.name, s.content));

  SymbolTables tables;
  for (const auto& f : files) collectAliases(f, tables);
  for (const auto& f : files) collectDeclarations(f, tables);
  for (const auto& f : files) collectAutoBindings(f, tables);

  std::vector<Finding> findings;
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileChecker(files, tables, i, findings).check();
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace avmon::lint
