// avmon_lint: a self-contained determinism checker for this repository.
//
// The reproduction's headline guarantee — metrics bit-identical across
// shard counts, RPC lanes, and thread counts — depends on source-level
// conventions (no hash-order iteration into metrics, no wall-clock reads,
// no host entropy). This tool turns those conventions into machine-checked
// rules with its own miniature C++ lexer; it needs no libclang and no
// compile database, so it runs as an ordinary tier-1 CTest suite.
//
// Rules (see ruleCatalog() for the authoritative list):
//   unordered-iter    range-for / begin() iteration over
//                     std::unordered_{map,set,multimap,multiset}
//   random-device     std::random_device (host entropy)
//   c-rand            C PRNG family: rand, srand, rand_r, drand48, ...
//   wall-clock        time(), chrono system/steady/high_resolution clocks,
//                     gettimeofday, clock_gettime, localtime, ...
//   getenv            environment access: getenv, setenv, putenv, ...
//   ptr-key-order     std::map/std::set keyed by a pointer type, or
//                     std::hash over a pointer type (ASLR-dependent order)
//   unseeded-mt19937  default-constructed std <random> engines
//   per-node-alloc    (advisory) function-local associative container
//                     keyed by NodeId — the O(N) probe-scratch pattern the
//                     million-node memory diet removed; prefer dense slot
//                     arrays or the visitMonitorsOf-style visit APIs
//
// Escape hatch: a line (or the line directly above) may carry a comment
// annotation of the form `lint:allow` + `(<rule>, <reason>)` which
// suppresses that rule on that line and the next. The annotation is
// itself checked: an unknown rule or empty reason reports `bad-allow`, and
// an annotation that suppresses nothing reports `stale-allow`, so the
// justifications cannot rot silently.
//
// Scope policy: wall-clock suppressions are additionally restricted by
// directory. Only the live-wire lane (src/net/, tools/avmon_node,
// tools/avmon_live) and the self-timing bench harness (bench/) may carry a
// reasoned wall-clock allow; a used wall-clock allow anywhere else reports
// `scoped-allow`, so the simulated lane stays wall-clock-free even with a
// justification attached.
#pragma once

#include <string>
#include <vector>

namespace avmon::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
  /// Advisory rules print in reports and honor lint:allow, but do not
  /// fail the CLI's exit status (exit 0 when only advisories remain).
  bool advisory = false;
};

/// The rule set, in stable catalog order (includes the two meta rules
/// `bad-allow` and `stale-allow`).
const std::vector<RuleInfo>& ruleCatalog();

bool isKnownRule(const std::string& name);
bool isAdvisoryRule(const std::string& name);

/// `file:line: [rule] message`
std::string formatFinding(const Finding& f);

/// Whole-program linter: register sources (or whole trees), then run().
/// Analysis is two-phase — a cross-file symbol pass first collects
/// unordered-container aliases, variables, and accessor functions, so a
/// range-for over `node.pingingSet()` is caught even when the unordered
/// type is spelled only in the header.
class Linter {
 public:
  /// Registers one in-memory source (fixture tests use this directly).
  void addSource(std::string name, std::string content);

  /// Recursively adds every C++ source/header under `root`, in sorted
  /// path order so reports are deterministic. Returns false (and sets
  /// *error) if the root cannot be read.
  bool addTree(const std::string& root, std::string* error = nullptr);

  /// Runs the analysis; findings are sorted by (file, line, rule).
  std::vector<Finding> run();

 private:
  struct Source {
    std::string name;
    std::string content;
  };
  std::vector<Source> sources_;
};

}  // namespace avmon::lint
