// avmon_node — one real AVMON node as an operating-system process.
//
// Hosts a single AvmonNode behind a net::LiveTransport bound to
// 127.0.0.1:(port_base + index) — in the live lane the NodeId IS the UDP
// socket address. Wall-clock time, scaled by --time-scale, drives the same
// simulator-scheduled protocol code as the simulated lane; joins/leaves
// arrive from the avmon_live driver over the control plane. On SIGTERM (or
// when the sim-time horizon elapses) the process writes its per-node
// metrics JSON to --metrics-out and exits 0.
//
// Usage:
//   avmon_node --index I --n N [--port-base 42000] [--seed 1]
//              [--cvs 0] [--k 0] [--hash splitmix64] [--time-scale 60]
//              [--horizon-ms 0] [--retry-max 4] [--backoff-ms 50]
//              [--backoff-cap-ms 800] [--metrics-out FILE]
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "avmon/config.hpp"
#include "common/node_id.hpp"
#include "experiments/spec.hpp"
#include "net/node_runtime.hpp"

namespace {

volatile std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

[[noreturn]] void usageAndExit(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --index I --n N [options]\n"
      << "  --index I         cluster position; binds port_base + I\n"
      << "  --n N             system size the config is derived for\n"
      << "  --port-base P     first node port (default 42000)\n"
      << "  --seed S          cluster seed; each index forks its own stream\n"
      << "  --cvs C           coarse-view override (0 = paper default)\n"
      << "  --k K             pinging-set override (0 = paper default)\n"
      << "  --hash H          md5|sha1|splitmix64 (default splitmix64)\n"
      << "  --time-scale X    simulated ms per wall ms (default 60)\n"
      << "  --horizon-ms T    stop after T sim ms (0 = run until SIGTERM)\n"
      << "  --retry-max R     RPC send attempts (default 4)\n"
      << "  --backoff-ms B    first-attempt timeout (default 50)\n"
      << "  --backoff-cap-ms C  backoff ceiling (default 800)\n"
      << "  --metrics-out F   final per-node JSON report (default stdout)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace avmon;

  std::uint32_t index = 0;
  std::size_t n = 0;
  std::uint16_t portBase = 42000;
  std::size_t cvs = 0;
  unsigned k = 0;
  net::NodeRuntimeOptions options;
  std::string metricsOut;

  try {
    experiments::ArgParser args(argc, argv);
    while (args.next()) {
      const std::string& arg = args.flag();
      if (arg == "--index") index = static_cast<std::uint32_t>(args.valueU64());
      else if (arg == "--n") n = args.valueSize();
      else if (arg == "--port-base") portBase = static_cast<std::uint16_t>(args.valueU64());
      else if (arg == "--seed") options.seed = args.valueU64();
      else if (arg == "--cvs") cvs = args.valueSize();
      else if (arg == "--k") k = args.valueUnsigned();
      else if (arg == "--hash") options.hashName = args.value();
      else if (arg == "--time-scale") options.timeScale = args.valueDouble();
      else if (arg == "--horizon-ms") options.horizon = static_cast<SimDuration>(args.valueU64());
      else if (arg == "--retry-max") options.live.retryMax = static_cast<std::uint32_t>(args.valueU64());
      else if (arg == "--backoff-ms") options.live.retryBaseMs = static_cast<std::int64_t>(args.valueU64());
      else if (arg == "--backoff-cap-ms") options.live.retryCapMs = static_cast<std::int64_t>(args.valueU64());
      else if (arg == "--metrics-out") metricsOut = args.value();
      else args.failUnknown();
    }
    if (n == 0) {
      throw experiments::UsageError("--n is required (config derivation)");
    }

    options.index = index;
    options.self = NodeId(0x7F000001, static_cast<std::uint16_t>(portBase + index));
    options.config = AvmonConfig::paperDefaults(n);
    if (cvs != 0) options.config.cvs = cvs;
    if (k != 0) options.config.k = k;
    options.config.validate();

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    net::NodeRuntime runtime(std::move(options));
    if (!runtime.open()) {
      std::cerr << "avmon_node: cannot bind "
                << NodeId(0x7F000001,
                          static_cast<std::uint16_t>(portBase + index))
                       .toString()
                << "\n";
      return 1;
    }
    const int rc = runtime.run(&gStop);

    if (metricsOut.empty()) {
      runtime.writeMetricsJson(std::cout);
    } else {
      std::ofstream out(metricsOut);
      if (!out) {
        std::cerr << "avmon_node: cannot write " << metricsOut << "\n";
        return 1;
      }
      runtime.writeMetricsJson(out);
    }
    return rc;
  } catch (const experiments::UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    usageAndExit(argv[0]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
