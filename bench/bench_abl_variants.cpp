// Ablation A2: the optimal cvs variants head-to-head. Measures the M/D/C
// tradeoff of Section 4.2 empirically: cvs = log N vs ∛(2N) (Optimal-MD)
// vs ⁴√N (Optimal-MDC) vs the evaluation's 4·⁴√N.
#include <iostream>

#include "analysis/formulas.hpp"
#include "common.hpp"

int main() {
  using namespace avmon;

  constexpr std::size_t kN = 2000;
  stats::TablePrinter table(
      "Ablation A2: measured M/D/C per cvs variant (STAT, N=2000)");
  table.setHeader({"variant", "cvs", "avg memory", "avg discovery s",
                   "discovered frac", "avg comps/s", "analytic E[D] rounds"});

  for (CvsVariant variant :
       {CvsVariant::kLogN, CvsVariant::kOptimalMD, CvsVariant::kOptimalMDC,
        CvsVariant::kPaperEval}) {
    auto scenario = benchx::figureScenario(churn::Model::kStat, kN, 60);
    scenario.configOverride = AvmonConfig::forVariant(variant, kN);
    experiments::ScenarioRunner runner(scenario);
    runner.run();

    const std::size_t cvs = runner.config().cvs;
    table.addRow(
        {variantName(variant), std::to_string(cvs),
         stats::TablePrinter::num(benchx::meanOf(runner.memoryEntries(true)), 1),
         stats::TablePrinter::num(
             benchx::meanOf(runner.discoveryDelaysSeconds(1)), 1),
         stats::TablePrinter::num(runner.discoveredFraction(1), 3),
         stats::TablePrinter::num(
             benchx::meanOf(runner.computationsPerSecond()), 2),
         stats::TablePrinter::num(
             analysis::expectedDiscoveryRounds(cvs, kN), 1)});
  }
  table.print(std::cout);
  std::cout << "Expected: larger cvs buys faster discovery at the cost of "
               "memory and computation — the Section 4.2 tradeoff.\n";
  return 0;
}
