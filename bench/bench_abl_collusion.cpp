// Ablation A5: empirical validation of the Section 4.3 collusion math,
// measured end-to-end through the experiment harness instead of a
// hand-rolled selector loop: every point is a declarative spec arming
// attack.collusion on a real AVMON deployment, and the adversary layer's
// victimOutcomes() (experiments/adversary.hpp) reports where coalition
// members actually landed.
//
// Per victim, P(pinging set stays colluder-free) tracks (1-K/N)^C; per
// run, P(no victim polluted at all) tracks probSystemCollusionFree with
// D = C*V directed colluder-victim pairs. Measured values sit slightly
// ABOVE the closed forms: a colluder only shows up in the simulated
// outcome once it has discovered the victim, so undiscovered assignments
// count as clean.
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/formulas.hpp"
#include "common.hpp"
#include "experiments/adversary.hpp"
#include "experiments/spec.hpp"

namespace {

std::string specFor(std::size_t n, unsigned colluders, unsigned victims,
                    const std::string& seeds) {
  std::ostringstream out;
  out << "protocol = avmon\n"
      << "model = STAT\n"
      << "n = " << n << "\n"
      << "horizon_min = 60\n"
      << "warmup_min = 15\n"
      << "seed = " << seeds << "\n"
      << "attack.collusion = " << colluders << "\n"
      << "attack.victims = " << victims << "\n";
  return out.str();
}

std::string seedList(unsigned count, unsigned base) {
  std::ostringstream out;
  for (unsigned i = 0; i < count; ++i) {
    if (i != 0) out << ", ";
    out << base + i;
  }
  return out.str();
}

}  // namespace

int main() {
  using namespace avmon;
  using namespace avmon::experiments;

  const auto start = benchx::wallClockNow();

  // --- Per-victim form: every victim is one Bernoulli sample ------------
  stats::TablePrinter table(
      "Ablation A5: probability a victim's PS stays colluder-free "
      "(victimOutcomes over spec-driven runs vs analytic (1-K/N)^C)");
  table.setHeader({"N", "K", "colluders C", "victims", "measured",
                   "analytic"});

  for (std::size_t n : {300u, 1000u}) {
    for (unsigned c : {3u, 10u}) {
      std::size_t clean = 0;
      std::size_t sampled = 0;
      unsigned k = 0;
      std::size_t effN = 0;
      const SweepSpec sweep =
          SweepSpec::parse(specFor(n, c, 40, seedList(4, 11)));
      for (const Scenario& scenario : sweep.expand()) {
        ScenarioRunner runner(scenario);
        runner.run();
        k = runner.config().k;
        effN = runner.effectiveN();
        for (const VictimOutcome& v : victimOutcomes(
                 runner.protocol(), runner.adversary(), runner.schedule())) {
          if (v.monitors == 0) continue;  // never discovered: no evidence
          ++sampled;
          clean += v.colludingMonitors == 0 ? 1 : 0;
        }
      }
      table.addRow(
          {std::to_string(effN), std::to_string(k), std::to_string(c),
           std::to_string(sampled),
           stats::TablePrinter::num(
               static_cast<double>(clean) / static_cast<double>(sampled), 4),
           stats::TablePrinter::num(analysis::probNoColluderInPS(effN, k, c),
                                    4)});
    }
  }
  table.print(std::cout);

  // --- System form: every run is one Bernoulli sample -------------------
  stats::TablePrinter sys(
      "System-wide: probability no coalition member pollutes ANY victim's "
      "PS, D = C*V pairs, vs probSystemCollusionFree");
  sys.setHeader(
      {"N", "K", "C", "V", "pairs D", "runs", "measured", "analytic"});
  for (unsigned c : {2u, 4u}) {
    constexpr unsigned kVictims = 8;
    constexpr unsigned kRuns = 30;
    std::size_t cleanRuns = 0;
    unsigned k = 0;
    std::size_t effN = 0;
    const SweepSpec sweep =
        SweepSpec::parse(specFor(300, c, kVictims, seedList(kRuns, 101)));
    for (const Scenario& scenario : sweep.expand()) {
      ScenarioRunner runner(scenario);
      runner.run();
      k = runner.config().k;
      effN = runner.effectiveN();
      bool polluted = false;
      for (const VictimOutcome& v : victimOutcomes(
               runner.protocol(), runner.adversary(), runner.schedule())) {
        polluted = polluted || v.colludingMonitors > 0;
      }
      cleanRuns += polluted ? 0 : 1;
    }
    const std::size_t pairs = static_cast<std::size_t>(c) * kVictims;
    sys.addRow({std::to_string(effN), std::to_string(k), std::to_string(c),
                std::to_string(kVictims), std::to_string(pairs),
                std::to_string(kRuns),
                stats::TablePrinter::num(
                    static_cast<double>(cleanRuns) / kRuns, 4),
                stats::TablePrinter::num(
                    analysis::probSystemCollusionFree(effN, k, pairs), 4)});
  }
  sys.print(std::cout);
  std::cout << "Expected: measured probabilities track the closed forms "
               "from above — colluders cannot place themselves into "
               "pinging sets, only land there by hash luck.\n"
            << "wall seconds: " << benchx::secondsSince(start) << "\n";
  return 0;
}
