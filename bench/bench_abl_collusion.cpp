// Ablation A5: empirical validation of the Section 4.3 collusion math.
// Plant C colluders per victim (and D system-wide colluding pairs) and
// measure how often any colluder actually lands in the victim's hash-
// selected pinging set, against the closed forms (1-K/N)^C and (1-K/N)^D.
#include <iostream>
#include <vector>

#include "analysis/formulas.hpp"
#include "avmon/config.hpp"
#include "avmon/monitor_selector.hpp"
#include "common.hpp"
#include "hash/hash_function.hpp"

int main() {
  using namespace avmon;

  hash::Md5HashFunction md5;

  stats::TablePrinter table(
      "Ablation A5: probability a victim's PS stays colluder-free "
      "(measured over victims vs analytic (1-K/N)^C)");
  table.setHeader({"N", "K", "colluders C", "measured", "analytic"});

  Rng rng(20070602);
  for (std::size_t n : {500u, 2000u, 10000u}) {
    const unsigned k = defaultK(n);
    HashMonitorSelector selector(md5, k, n);
    for (std::size_t c : {3u, 10u}) {
      // Every node is a victim; its colluders are c uniformly random
      // other nodes (the adversary cannot steer the hash, only choose
      // friends). Count victims with zero colluders in PS.
      std::size_t clean = 0;
      const std::size_t victims = std::min<std::size_t>(n, 2000);
      for (std::uint32_t v = 0; v < victims; ++v) {
        const NodeId victim = NodeId::fromIndex(v);
        bool polluted = false;
        for (std::size_t i = 0; i < c; ++i) {
          NodeId friendId;
          do {
            friendId = NodeId::fromIndex(
                static_cast<std::uint32_t>(rng.below(n)));
          } while (friendId == victim);
          if (selector.isMonitor(friendId, victim)) {
            polluted = true;
            break;
          }
        }
        clean += polluted ? 0 : 1;
      }
      table.addRow(
          {std::to_string(n), std::to_string(k), std::to_string(c),
           stats::TablePrinter::num(
               static_cast<double>(clean) / static_cast<double>(victims), 4),
           stats::TablePrinter::num(
               analysis::probNoColluderInPS(n, k, c), 4)});
    }
  }
  table.print(std::cout);

  stats::TablePrinter sys(
      "System-wide: probability no colludee-colluder pair pollutes any PS, "
      "D random pairs");
  sys.setHeader({"N", "K", "pairs D", "measured", "analytic"});
  for (std::size_t n : {2000u, 10000u}) {
    const unsigned k = defaultK(n);
    HashMonitorSelector selector(md5, k, n);
    for (std::size_t d : {10u, 100u}) {
      // Repeat trials: each trial plants D random directed colluding
      // pairs and checks if any satisfies the consistency condition.
      constexpr int kTrials = 400;
      int cleanTrials = 0;
      for (int t = 0; t < kTrials; ++t) {
        bool polluted = false;
        for (std::size_t i = 0; i < d && !polluted; ++i) {
          const auto a = static_cast<std::uint32_t>(rng.below(n));
          auto b = static_cast<std::uint32_t>(rng.below(n));
          if (b == a) b = (b + 1) % static_cast<std::uint32_t>(n);
          polluted = selector.isMonitor(NodeId::fromIndex(a),
                                        NodeId::fromIndex(b));
        }
        cleanTrials += polluted ? 0 : 1;
      }
      sys.addRow({std::to_string(n), std::to_string(k), std::to_string(d),
                  stats::TablePrinter::num(
                      static_cast<double>(cleanTrials) / kTrials, 4),
                  stats::TablePrinter::num(
                      analysis::probSystemCollusionFree(n, k, d), 4)});
    }
  }
  sys.print(std::cout);
  std::cout << "Expected: measured probabilities track the closed forms — "
               "colluders cannot place themselves into pinging sets.\n";
  return 0;
}
