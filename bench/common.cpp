#include "common.hpp"

#include <cstdlib>
#include <iostream>

namespace avmon::benchx {

bool fullScale() {
  // lint:allow(getenv, explicit operator knob selecting the paper's 48 h horizons; read once at startup, never inside a simulation)
  const char* scale = std::getenv("AVMON_BENCH_SCALE");
  return scale != nullptr && std::string(scale) == "full";
}

WallClock::time_point wallClockNow() { return WallClock::now(); }

double secondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(wallClockNow() - start).count();
}

experiments::Scenario figureScenario(churn::Model model, std::size_t n,
                                     int measureMinutes, std::uint64_t seed) {
  experiments::Scenario s;
  s.model = model;
  s.stableSize = n;
  if (fullScale()) {
    s.warmup = 1 * kHour;
    s.horizon = s.warmup + 48 * kHour;
  } else {
    s.warmup = 30 * kMinute;
    s.horizon = s.warmup + measureMinutes * kMinute;
  }
  s.controlFraction = 0.1;
  s.seed = seed;
  s.hashName = "splitmix64";  // counts are hash-agnostic; see bench_abl_hash
  return s;
}

double meanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

stats::Summary summarize(const std::vector<double>& v) {
  stats::Summary s;
  for (double x : v) s.add(x);
  return s;
}

void printCdfs(
    const std::string& title,
    const std::vector<std::pair<std::string, std::vector<double>>>& curves,
    std::size_t points) {
  stats::TablePrinter table(title);
  table.setHeader({"series", "x", "fraction <= x"});
  for (const auto& [label, samples] : curves) {
    const stats::Cdf cdf(samples);
    for (const auto& [x, f] : cdf.curve(points)) {
      table.addRow({label, stats::TablePrinter::num(x, 2),
                    stats::TablePrinter::num(f, 3)});
    }
  }
  table.print(std::cout);
}

std::string meanPlusMinus(const std::vector<double>& v, int precision) {
  const stats::Summary s = summarize(v);
  return stats::TablePrinter::num(s.mean(), precision) + " +/- " +
         stats::TablePrinter::num(s.stddev(), precision) +
         " (n=" + std::to_string(s.count()) + ")";
}

}  // namespace avmon::benchx
