// Figure 16: average memory entries vs N, SYNTH-BD vs SYNTH-BD2.
//
// Paper result: the extra garbage from doubled birth/death churn costs
// less than 10% additional memory entries.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 16: average memory entries, SYNTH-BD vs SYNTH-BD2");
  table.setHeader({"N", "SYNTH-BD avg", "SYNTH-BD2 avg", "increase %"});

  for (std::size_t n : {100u, 500u, 1000u, 2000u}) {
    double means[2] = {0, 0};
    int i = 0;
    for (churn::Model model :
         {churn::Model::kSynthBD, churn::Model::kSynthBD2}) {
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, 120));
      runner.run();
      means[i++] = benchx::meanOf(runner.memoryEntries(/*measuredOnly=*/false));
    }
    const double pct =
        means[0] > 0 ? 100.0 * (means[1] - means[0]) / means[0] : 0.0;
    table.addRow({std::to_string(n), stats::TablePrinter::num(means[0], 1),
                  stats::TablePrinter::num(means[1], 1),
                  stats::TablePrinter::num(pct, 1)});
  }
  table.print(std::cout);
  std::cout << "Paper shape: SYNTH-BD2 within ~10% of SYNTH-BD memory.\n";
  return 0;
}
