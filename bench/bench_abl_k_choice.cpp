// Ablation A7: choosing K (Section 4.3). Sweeps the pinging-set size and
// measures, against the closed forms: (a) the probability that a node has
// at least one monitor up at a random instant, for several availability
// regimes, and (b) the fraction of nodes able to satisfy an "l out of K"
// reporting policy under the hash selection.
#include <cmath>
#include <iostream>
#include <vector>

#include "analysis/formulas.hpp"
#include "avmon/monitor_selector.hpp"
#include "common.hpp"
#include "hash/hash_function.hpp"

int main() {
  using namespace avmon;

  hash::Md5HashFunction md5;
  constexpr std::size_t kN = 2000;

  // (a) Continuous monitoring: P(>=1 of K monitors up) vs availability.
  stats::TablePrinter cont(
      "Ablation A7a: P(at least one monitor up), analytic 1-(1-a)^K");
  cont.setHeader({"K", "a=0.3", "a=0.5", "a=0.8"});
  for (unsigned k : {4u, 8u, 11u, 16u, 22u}) {
    cont.addRow({std::to_string(k),
                 stats::TablePrinter::num(analysis::probSomeMonitorUp(k, 0.3), 4),
                 stats::TablePrinter::num(analysis::probSomeMonitorUp(k, 0.5), 4),
                 stats::TablePrinter::num(analysis::probSomeMonitorUp(k, 0.8), 4)});
  }
  cont.print(std::cout);

  // (b) l-out-of-K supportability: measured |PS| >= l fraction per K.
  stats::TablePrinter lofk(
      "Ablation A7b: fraction of nodes with |PS| >= l under hash "
      "selection (N=2000, full enumeration)");
  lofk.setHeader({"K", "l=1", "l=3", "l=5", "rule K=(l+1)log2N says l<="});

  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kN; ++i) ids.push_back(NodeId::fromIndex(i));

  for (unsigned k : {6u, 11u, 22u, 44u}) {
    HashMonitorSelector selector(md5, k, kN);
    std::size_t atLeast1 = 0, atLeast3 = 0, atLeast5 = 0;
    for (const NodeId& x : ids) {
      std::size_t ps = 0;
      for (const NodeId& y : ids) {
        if (x != y && selector.isMonitor(y, x)) ++ps;
      }
      atLeast1 += ps >= 1 ? 1 : 0;
      atLeast3 += ps >= 3 ? 1 : 0;
      atLeast5 += ps >= 5 ? 1 : 0;
    }
    const double n = static_cast<double>(kN);
    // Invert K = (l+1) log2 N to the largest supportable l for this K.
    const unsigned lMax = static_cast<unsigned>(
        k / std::log2(static_cast<double>(kN)) >= 1
            ? k / std::log2(static_cast<double>(kN)) - 1
            : 0);
    lofk.addRow({std::to_string(k),
                 stats::TablePrinter::num(atLeast1 / n, 4),
                 stats::TablePrinter::num(atLeast3 / n, 4),
                 stats::TablePrinter::num(atLeast5 / n, 4),
                 std::to_string(lMax)});
  }
  lofk.print(std::cout);
  std::cout << "Expected: K = log2 N keeps every node monitored w.h.p.; "
               "supporting l-out-of-K policies needs K = (l+1)*log2 N.\n";
  return 0;
}
