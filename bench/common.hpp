// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one paper artifact (a table or figure) and
// prints the same rows/series the paper reports. Simulated horizons default
// to a laptop-friendly scale — discovery and steady-state metrics converge
// within tens of simulated minutes — and can be raised to the paper's
// 48-hour runs with AVMON_BENCH_SCALE=full (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table_printer.hpp"

namespace avmon::benchx {

/// True when AVMON_BENCH_SCALE=full: run the paper's 48 h horizons.
bool fullScale();

/// The one sanctioned wall clock: benches time the HARNESS (events/sec,
/// wall seconds per figure), never simulation behavior — simulated time
/// comes from Simulator::now() alone. Funneling every real-clock read
/// through this alias keeps the rest of the tree free of clock calls.
// lint:allow(wall-clock, bench harness self-timing only; wall time is reported, never fed back into a simulation)
using WallClock = std::chrono::steady_clock;

/// Current harness timestamp (see WallClock).
WallClock::time_point wallClockNow();

/// Seconds elapsed since `start` on the harness clock.
double secondsSince(WallClock::time_point start);

/// Standard scenario for a figure bench: warm-up 30 min (1 h at full
/// scale), with `measureMinutes` of measured time after it (48 h at full
/// scale). Control group 10%, seed fixed for reproducibility.
experiments::Scenario figureScenario(churn::Model model, std::size_t n,
                                     int measureMinutes,
                                     std::uint64_t seed = 20070601);

/// Mean of a sample vector (0 when empty).
double meanOf(const std::vector<double>& v);

/// Summary (mean/stddev/count) of a sample vector.
stats::Summary summarize(const std::vector<double>& v);

/// Prints one CDF per labeled sample set, `points` rows each, under a
/// common title. Mirrors the multi-curve CDF figures.
void printCdfs(const std::string& title,
               const std::vector<std::pair<std::string, std::vector<double>>>&
                   curves,
               std::size_t points = 12);

/// Formats "mean ± stddev (n=count)".
std::string meanPlusMinus(const std::vector<double>& v, int precision = 2);

}  // namespace avmon::benchx
