// Microbenchmarks (google-benchmark) of the primitives the protocol's
// per-round cost is built from: hash digests, consistency checks, RNG,
// and event-queue operations. These back the paper's Section 4.1 CPU
// estimates (e.g. "1000 hash computations ... take about 0.375 ms").
#include <benchmark/benchmark.h>

#include "avmon/monitor_selector.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace avmon;

void BM_Md5PairDigest(benchmark::State& state) {
  hash::Md5HashFunction fn;
  const std::uint8_t pair[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn.digest64(pair));
  }
}
BENCHMARK(BM_Md5PairDigest);

void BM_Sha1PairDigest(benchmark::State& state) {
  hash::Sha1HashFunction fn;
  const std::uint8_t pair[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn.digest64(pair));
  }
}
BENCHMARK(BM_Sha1PairDigest);

void BM_SplitMixPairDigest(benchmark::State& state) {
  hash::SplitMix64HashFunction fn;
  const std::uint8_t pair[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn.digest64(pair));
  }
}
BENCHMARK(BM_SplitMixPairDigest);

void BM_ConsistencyCheck(benchmark::State& state) {
  hash::Md5HashFunction fn;
  HashMonitorSelector sel(fn, 20, 1000000);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sel.isMonitor(NodeId::fromIndex(i), NodeId::fromIndex(i + 1)));
    ++i;
  }
}
BENCHMARK(BM_ConsistencyCheck);

void BM_ConsistencyCheckRound(benchmark::State& state) {
  // One full Figure-2 cross-check at the paper's N=1M setting:
  // ~2·(cvs+2)² checks with cvs = 32 — the "0.375 ms per round" estimate.
  hash::Md5HashFunction fn;
  HashMonitorSelector sel(fn, 20, 1000000);
  const int cvs = 32;
  for (auto _ : state) {
    std::uint64_t matches = 0;
    for (int u = 0; u < cvs + 2; ++u) {
      for (int v = 0; v < cvs + 2; ++v) {
        if (u == v) continue;
        matches += sel.isMonitor(NodeId::fromIndex(u), NodeId::fromIndex(v));
        matches += sel.isMonitor(NodeId::fromIndex(v), NodeId::fromIndex(u));
      }
    }
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_ConsistencyCheckRound);

void BM_RngDraw(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngDraw);

void BM_RngBelow(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(27));
  }
}
BENCHMARK(BM_RngBelow);

void BM_EventQueueCycle(benchmark::State& state) {
  // Schedule-and-run throughput of the simulator core.
  sim::Simulator sim;
  for (auto _ : state) {
    sim.after(1, [] {});
    sim.step();
  }
  benchmark::DoNotOptimize(sim.executedEvents());
}
BENCHMARK(BM_EventQueueCycle);

}  // namespace

BENCHMARK_MAIN();
