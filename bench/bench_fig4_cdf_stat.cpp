// Figure 4: CDF of first-monitor discovery time in the STAT model, for
// N = 100 and N = 2000.
//
// Paper result: at least 96% of control nodes discover a monitor within
// 30 seconds for all N in 100..2000.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (std::size_t n : {100u, 2000u}) {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(churn::Model::kStat, n, 30));
    runner.run();
    curves.emplace_back("STAT, N=" + std::to_string(n),
                        runner.discoveryDelaysSeconds(1));

    const stats::Cdf cdf(runner.discoveryDelaysSeconds(1));
    std::cout << "STAT N=" << n << ": fraction discovered <=30s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(30.0), 3)
              << ", <=60s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(60.0), 3)
              << "\n";
  }
  benchx::printCdfs(
      "Figure 4: CDF of discovery time (seconds), STAT model", curves);
  std::cout << "Paper shape: >=96% of nodes discovered within 30 seconds.\n";
  return 0;
}
