// Figure 5: CDF of first-monitor discovery time in the SYNTH-BD model,
// for N = 100 and N = 2000 (measured over nodes born after warm-up).
//
// Paper result: at least 93.3% of nodes discovered within 60 seconds.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (std::size_t n : {100u, 2000u}) {
    // Births arrive over time, so give the BD model a longer measured
    // window to accumulate enough born-after-warm-up nodes.
    experiments::ScenarioRunner runner(
        benchx::figureScenario(churn::Model::kSynthBD, n, 90));
    runner.run();
    curves.emplace_back("SYNTH-BD, N=" + std::to_string(n),
                        runner.discoveryDelaysSeconds(1));

    const stats::Cdf cdf(runner.discoveryDelaysSeconds(1));
    std::cout << "SYNTH-BD N=" << n
              << ": measured born nodes = " << runner.measuredIds().size()
              << ", fraction discovered <=60s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(60.0), 3)
              << "\n";
  }
  benchx::printCdfs(
      "Figure 5: CDF of discovery time (seconds), SYNTH-BD model", curves);
  std::cout << "Paper shape: >=93.3% of nodes discovered within 60 seconds.\n";
  return 0;
}
