// Ablation A3: quantifies the paper's Section 1 critique of DHT-based
// monitor selection. Under identical churn, counts (a) monitor-set changes
// suffered by unrelated nodes (Consistency violations — each implies an
// availability-history transfer) and (b) co-occurrence correlation of
// monitor pairs across pinging sets (Randomness 3(b) violation). AVMON's
// hash-based selection incurs zero changes by construction.
#include <algorithm>
#include <iostream>
#include <unordered_set>
#include <vector>

#include "baselines/dht_ring.hpp"
#include "common.hpp"
#include "hash/hash_function.hpp"

int main() {
  using namespace avmon;

  constexpr std::size_t kN = 500;
  constexpr unsigned kK = 9;  // log2(500)
  hash::Md5HashFunction md5;
  baselines::DhtRing ring(md5, kK);
  HashMonitorSelector avmonSel(md5, kK, kN);

  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kN; ++i) {
    ids.push_back(NodeId::fromIndex(i));
    ring.join(ids.back());
  }

  // Watch 50 observer nodes while unrelated churn happens.
  std::vector<NodeId> observers(ids.begin(), ids.begin() + 50);
  std::vector<std::vector<NodeId>> dhtBefore;
  for (const NodeId& o : observers) dhtBefore.push_back(ring.replicaSet(o));

  // AVMON pinging sets (selection-level) for the same observers.
  const auto avmonPs = [&](const NodeId& o) {
    std::vector<NodeId> ps;
    for (const NodeId& y : ids) {
      if (y != o && avmonSel.isMonitor(y, o)) ps.push_back(y);
    }
    return ps;
  };
  std::vector<std::vector<NodeId>> avmonBefore;
  for (const NodeId& o : observers) avmonBefore.push_back(avmonPs(o));

  // Churn: 200 joins of fresh nodes and 200 leaves of existing ones.
  Rng rng(7);
  std::size_t dhtChanges = 0, avmonChanges = 0, churnEvents = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    ring.join(NodeId::fromIndex(kN + i));
    ring.leave(ids[50 + rng.index(kN - 50)]);
    churnEvents += 2;
    for (std::size_t o = 0; o < observers.size(); ++o) {
      auto now = ring.replicaSet(observers[o]);
      if (now != dhtBefore[o]) {
        ++dhtChanges;
        dhtBefore[o] = std::move(now);
      }
      // AVMON's relation between *existing* nodes is churn-independent:
      // recompute to prove it never changes.
      auto nowAvmon = avmonPs(observers[o]);
      if (nowAvmon != avmonBefore[o]) ++avmonChanges;
    }
  }

  // Correlation: how often do the first two monitors of a node co-occur in
  // another node's pinging set? Uncorrelated selection gives ~(K/N)^2.
  const auto cooccurrence = [&](auto psOf) {
    std::size_t cooccur = 0, trials = 0;
    for (std::size_t i = 0; i < 100; ++i) {
      const auto ps = psOf(ids[i]);
      if (ps.size() < 2) continue;
      for (std::size_t j = 0; j < 100; ++j) {
        if (j == i) continue;
        const auto other = psOf(ids[j]);
        const bool hasA =
            std::find(other.begin(), other.end(), ps[0]) != other.end();
        const bool hasB =
            std::find(other.begin(), other.end(), ps[1]) != other.end();
        ++trials;
        cooccur += (hasA && hasB) ? 1 : 0;
      }
    }
    return trials ? static_cast<double>(cooccur) / static_cast<double>(trials)
                  : 0.0;
  };
  const double dhtCo = cooccurrence(
      [&](const NodeId& x) { return ring.replicaSet(x); });
  const double avmonCo = cooccurrence(avmonPs);
  const double uncorrelated = (static_cast<double>(kK) / kN) *
                              (static_cast<double>(kK) / kN);

  stats::TablePrinter table(
      "Ablation A3: DHT replica-set selection vs AVMON hash selection "
      "(N=500, K=9, 400 churn events)");
  table.setHeader({"metric", "DHT ring", "AVMON", "uncorrelated ref"});
  table.addRow({"monitor-set changes (50 observers)",
                std::to_string(dhtChanges), std::to_string(avmonChanges),
                "0"});
  table.addRow({"changes per churn event per observer",
                stats::TablePrinter::num(
                    static_cast<double>(dhtChanges) /
                        static_cast<double>(churnEvents * observers.size()),
                    4),
                "0.0000", "0"});
  table.addRow({"monitor-pair co-occurrence rate",
                stats::TablePrinter::num(dhtCo, 4),
                stats::TablePrinter::num(avmonCo, 4),
                stats::TablePrinter::num(uncorrelated, 4)});
  table.print(std::cout);
  std::cout << "Expected: DHT selection churns monitor sets and correlates "
               "monitor pairs; AVMON shows zero changes and near-reference "
               "co-occurrence.\n";
  return 0;
}
