// Figure 17: ratio of estimated availability (fraction of monitoring
// pings answered, averaged over the node's PS) to actual availability,
// with and without the forgetful-pinging optimization, SYNTH model.
//
// Paper result: non-forgetful monitoring measures availability accurately;
// forgetful pinging introduces <5% average relative error (max 8%).
//
// Scale note: at laptop scale we run N=500 with an 8-hour window (long
// enough for several leave/rejoin cycles at 20%/hour churn — the paper's
// N=2000 over 48h is available via AVMON_BENCH_SCALE=full).
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 17: estimated-to-actual availability ratio, SYNTH model");
  table.setHeader({"variant", "avg ratio", "avg |rel err|", "max |rel err|",
                   "nodes"});

  for (bool forgetful : {true, false}) {
    auto scenario =
        benchx::figureScenario(churn::Model::kSynth,
                               benchx::fullScale() ? 2000 : 500, 12 * 60);
    scenario.forgetful = forgetful;
    experiments::ScenarioRunner runner(scenario);
    runner.run();

    stats::Summary ratio, err;
    double maxErr = 0;
    for (const auto& a : runner.availabilityAccuracy(/*measuredOnly=*/true)) {
      if (a.actual <= 0.05) continue;  // ratio undefined for ~never-up nodes
      ratio.add(a.estimated / a.actual);
      const double e = std::abs(a.estimated - a.actual) / a.actual;
      err.add(e);
      maxErr = std::max(maxErr, e);
    }
    table.addRow({forgetful ? "Forgetful ping" : "NON-Forgetful ping",
                  stats::TablePrinter::num(ratio.mean(), 3),
                  stats::TablePrinter::num(err.mean(), 3),
                  stats::TablePrinter::num(maxErr, 3),
                  std::to_string(ratio.count())});
  }
  table.print(std::cout);
  std::cout << "Paper shape: NON-forgetful ratio ~1.00; forgetful within a "
               "few percent (paper: <5% avg, 8% max).\n";
  return 0;
}
