// Figure 13: CDF of first-monitor discovery time under the PlanetLab-like
// (PL) and Overnet-like (OV) traces.
//
// Paper result: PL (N=239, K=8, cvs=16) discovers >98% of first monitors
// within about a minute of birth; OV (N=550, K=9, cvs=19) reaches 97.27%
// within 63 seconds.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (churn::Model model : {churn::Model::kPlanetLab, churn::Model::kOvernet}) {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(model, 0, 180));
    runner.run();

    std::vector<double> minutes;
    for (double s : runner.discoveryDelaysSeconds(1))
      minutes.push_back(s / 60.0);
    curves.emplace_back(churn::modelName(model), minutes);

    const stats::Cdf cdf(runner.discoveryDelaysSeconds(1));
    std::cout << churn::modelName(model)
              << ": N=" << runner.effectiveN()
              << " K=" << runner.config().k << " cvs=" << runner.config().cvs
              << "; measured nodes=" << runner.measuredIds().size()
              << "; discovered <=63s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(63.0), 4)
              << " of discoveries; overall discovered fraction = "
              << stats::TablePrinter::num(runner.discoveredFraction(1), 3)
              << "\n";
  }
  benchx::printCdfs(
      "Figure 13: CDF of discovery time of first monitors (minutes)", curves);
  std::cout << "Paper shape: ~97-98% of first monitors found within about "
               "one minute of birth for both traces.\n";
  return 0;
}
