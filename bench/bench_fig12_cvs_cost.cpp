// Figure 12: per-node memory entries and computations per second vs.
// coarse view size, STAT model, N in {500, 2000}.
//
// Paper result: for fixed cvs, N has no influence on either metric;
// memory grows linearly in cvs and computation quadratically.
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 12: memory entries and computations/s vs cvs, STAT model");
  table.setHeader({"N", "cvs", "avg memory entries", "avg comps/s",
                   "analytic 2cvs^2/60"});

  for (std::size_t n : {500u, 2000u}) {
    for (int multiplier : {4, 6, 8, 10}) {
      auto scenario = benchx::figureScenario(churn::Model::kStat, n, 45);
      AvmonConfig cfg = AvmonConfig::paperDefaults(n);
      cfg.cvs = static_cast<std::size_t>(std::llround(
          multiplier * std::pow(static_cast<double>(n), 0.25)));
      scenario.configOverride = cfg;

      experiments::ScenarioRunner runner(scenario);
      runner.run();

      const double cvs = static_cast<double>(cfg.cvs);
      table.addRow(
          {std::to_string(n), std::to_string(cfg.cvs),
           stats::TablePrinter::num(
               benchx::meanOf(runner.memoryEntries(true)), 1),
           stats::TablePrinter::num(
               benchx::meanOf(runner.computationsPerSecond()), 2),
           stats::TablePrinter::num(2.0 * cvs * cvs / 60.0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: for equal cvs the two N curves coincide; "
               "memory linear and computation quadratic in cvs.\n";
  return 0;
}
