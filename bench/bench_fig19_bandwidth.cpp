// Figure 19: CDF of per-node outgoing bandwidth (bytes/second) for STAT,
// STAT with the PR2 optimization, and the Overnet-like trace.
//
// Paper result: STAT keeps 88% of nodes below 10 Bps with a heavy tail
// that PR2 flattens (all below ~9 Bps); OV is more uniform, with 99.85%
// of nodes below 11 Bps.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;

  const auto report = [](const std::string& label,
                         const std::vector<double>& bps) {
    const stats::Cdf cdf(bps);
    std::cout << label << ": fraction below 10 Bps = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(10.0), 4)
              << ", p99 = " << stats::TablePrinter::num(cdf.percentile(0.99), 2)
              << " Bps, max = " << stats::TablePrinter::num(cdf.max(), 2)
              << " Bps\n";
  };

  for (bool pr2 : {false, true}) {
    auto scenario = benchx::figureScenario(churn::Model::kStat, 2000, 90);
    scenario.pr2 = pr2;
    experiments::ScenarioRunner runner(scenario);
    runner.run();
    const auto bps = runner.outgoingBytesPerSecond();
    const std::string label = pr2 ? "STAT-PR2, N=2000" : "STAT, N=2000";
    curves.emplace_back(label, bps);
    report(label, bps);

    // Tail diagnosis: what the heaviest sender is actually sending.
    const NodeId top = runner.maxBandwidthNode();
    const auto& node = runner.node(top);
    std::cout << "  heaviest sender " << top.toString()
              << ": notifies=" << node.metrics().notifiesSent
              << " cvFetches=" << node.metrics().cvFetches
              << " monitorPings=" << node.metrics().monitoringPingsSent
              << " |TS|=" << node.targetSet().size()
              << " |PS|=" << node.pingingSet().size() << "\n";
  }

  {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(churn::Model::kOvernet, 0, 180));
    runner.run();
    const auto bps = runner.outgoingBytesPerSecond();
    curves.emplace_back("OV", bps);
    report("OV", bps);
  }

  benchx::printCdfs(
      "Figure 19: CDF of per-node outgoing bandwidth (bytes per second)",
      curves);
  std::cout << "Paper shape: most nodes below ~10 Bps; PR2 trims the STAT "
               "tail; OV uniform.\n";
  return 0;
}
