// Figure 15: CDF of first-monitor discovery time, SYNTH-BD vs SYNTH-BD2
// (doubled birth/death rate), N = 2000.
//
// Paper result: no noticeable difference between the two models —
// AVMON discovery is churn-resistant.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (churn::Model model : {churn::Model::kSynthBD, churn::Model::kSynthBD2}) {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(model, 2000, 120));
    runner.run();

    std::vector<double> minutes;
    for (double s : runner.discoveryDelaysSeconds(1))
      minutes.push_back(s / 60.0);
    curves.emplace_back(churn::modelName(model) +
                            ", N_longterm=" +
                            std::to_string(runner.schedule().nodes().size()),
                        minutes);

    const stats::Cdf cdf(runner.discoveryDelaysSeconds(1));
    std::cout << churn::modelName(model) << ": discovered <=60s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(60.0), 3)
              << ", <=120s = "
              << stats::TablePrinter::num(cdf.fractionAtOrBelow(120.0), 3)
              << "\n";
  }
  benchx::printCdfs(
      "Figure 15: CDF of discovery time (minutes), SYNTH-BD vs SYNTH-BD2",
      curves);
  std::cout << "Paper shape: the two CDFs overlap — doubling birth/death "
               "churn does not slow discovery.\n";
  return 0;
}
