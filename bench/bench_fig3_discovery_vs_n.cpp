// Figure 3: average discovery time of the first monitor for control-group
// nodes, vs. system size N, for STAT / SYNTH / SYNTH-BD.
//
// Paper result: stays below 1 minute for all N in 100..2000; insensitive
// to join/leave churn, slightly higher with births/deaths.
#include <algorithm>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 3: average discovery time of first monitor (minutes)");
  table.setHeader({"model", "N", "avg minutes", "stddev", "nodes measured"});

  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    for (std::size_t n : {100u, 500u, 1000u, 2000u}) {
      // Birth/death models need a longer measured window to accumulate
      // born-after-warm-up nodes (births arrive at only 0.2N/day).
      const int window = model == churn::Model::kSynthBD ? 120 : 30;
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, window));
      runner.run();

      std::vector<double> minutes;
      for (double s : runner.discoveryDelaysSeconds(1))
        minutes.push_back(s / 60.0);
      // The paper drops the single largest outlier per setting (footnote 8).
      if (minutes.size() > 1) {
        minutes.erase(std::max_element(minutes.begin(), minutes.end()));
      }

      const auto summary = benchx::summarize(minutes);
      table.addRow({churn::modelName(model), std::to_string(n),
                    stats::TablePrinter::num(summary.mean(), 3),
                    stats::TablePrinter::num(summary.stddev(), 3),
                    std::to_string(summary.count())});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: all averages below ~1 minute; STAT ~= SYNTH; "
               "SYNTH-BD slightly higher.\n";
  return 0;
}
