// Ablation A6: the coarse-view reshuffle rule. Figure 2's union-sample
// rule copies entries, so pointer counts random-walk and static systems
// develop indegree skew — the heavy tail of the paper's Figure 19 STAT
// curve. A CYCLON-style swap (related work §2) conserves pointers. This
// bench compares discovery speed and the bandwidth tail under both rules.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Ablation A6: union-sample (paper) vs CYCLON-style swap "
      "(STAT, N=1000)");
  table.setHeader({"shuffle", "avg discovery s", "discovered frac",
                   "BW p50 Bps", "BW p99 Bps", "BW max Bps"});

  for (ShufflePolicy policy :
       {ShufflePolicy::kUnionSample, ShufflePolicy::kSwap}) {
    auto scenario = benchx::figureScenario(churn::Model::kStat, 1000, 90);
    AvmonConfig cfg = AvmonConfig::paperDefaults(1000);
    cfg.shuffle = policy;
    scenario.configOverride = cfg;
    experiments::ScenarioRunner runner(scenario);
    runner.run();

    const stats::Cdf bw(runner.outgoingBytesPerSecond());
    table.addRow({shufflePolicyName(policy),
                  stats::TablePrinter::num(
                      benchx::meanOf(runner.discoveryDelaysSeconds(1)), 2),
                  stats::TablePrinter::num(runner.discoveredFraction(1), 3),
                  stats::TablePrinter::num(bw.percentile(0.5), 2),
                  stats::TablePrinter::num(bw.percentile(0.99), 2),
                  stats::TablePrinter::num(bw.max(), 2)});
  }
  table.print(std::cout);
  std::cout << "Expected: comparable discovery; the swap rule flattens the "
               "bandwidth tail (no indegree drift to amplify fetch load).\n";
  return 0;
}
