// Figure 7: average consistency-condition computations per second per
// node vs. N, for STAT / SYNTH / SYNTH-BD.
//
// Paper result: sublinear growth in N (cvs = 4·⁴√N), per-minute overhead
// close to 2·cvs², and little influence from churn.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 7: average computations per second per node");
  table.setHeader({"model", "N", "cvs", "avg comps/s", "stddev",
                   "analytic 2cvs^2/60"});

  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    for (std::size_t n : {100u, 500u, 1000u, 2000u}) {
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, 45));
      runner.run();

      const auto summary = benchx::summarize(runner.computationsPerSecond());
      const double cvs = static_cast<double>(runner.config().cvs);
      table.addRow({churn::modelName(model), std::to_string(n),
                    std::to_string(runner.config().cvs),
                    stats::TablePrinter::num(summary.mean(), 2),
                    stats::TablePrinter::num(summary.stddev(), 2),
                    stats::TablePrinter::num(2.0 * cvs * cvs / 60.0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: sublinear in N; close to 2*cvs^2 checks per "
               "minute; churn-insensitive.\n";
  return 0;
}
