// Figure 6: average time to discover the first L monitors (L = 1, 2, 3)
// for each control node, N = 2000, all three synthetic models.
//
// Paper result: pinging-set nodes are discovered at roughly uniform time
// intervals; all three models behave similarly.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 6: average time to discovery of first L monitors (minutes), "
      "N=2000");
  table.setHeader({"model", "L", "avg minutes", "stddev", "nodes"});

  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(model, 2000, 45));
    runner.run();

    for (std::size_t l = 1; l <= 3; ++l) {
      std::vector<double> minutes;
      for (double s : runner.discoveryDelaysSeconds(l))
        minutes.push_back(s / 60.0);
      const auto summary = benchx::summarize(minutes);
      table.addRow({churn::modelName(model), std::to_string(l),
                    stats::TablePrinter::num(summary.mean(), 2),
                    stats::TablePrinter::num(summary.stddev(), 2),
                    std::to_string(summary.count())});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: roughly uniform spacing between successive "
               "monitor discoveries (L=1..3 within a few minutes).\n";
  return 0;
}
