// Figure 8: CDF across nodes of per-second consistency-condition
// computations, for N in {100, 2000} and all three synthetic models.
//
// Paper result: tight distributions (load balance), worst case ~1% CPU.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    for (std::size_t n : {100u, 2000u}) {
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, 45));
      runner.run();
      curves.emplace_back(
          churn::modelName(model) + ", N=" + std::to_string(n),
          runner.computationsPerSecond());
    }
  }
  benchx::printCdfs(
      "Figure 8: CDF of average computations per second across nodes",
      curves);
  std::cout << "Paper shape: narrow spread around 2*cvs^2/60 per node "
               "(load-balanced computation).\n";
  return 0;
}
