// Figure 18: average useless monitoring pings per minute (pings to nodes
// currently absent) vs N, with and without forgetful pinging, SYNTH model.
//
// Paper result: forgetful pinging reduces useless pings by an order of
// magnitude.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 18: average useless pings per minute per node, SYNTH model");
  table.setHeader({"N", "Forgetful", "Forgetful-EWMA", "NON-Forgetful",
                   "reduction x"});

  for (std::size_t n : {200u, 1000u, 2000u}) {
    double means[3] = {0, 0, 0};
    int i = 0;
    // Variants: forgetful (paper default), forgetful with the paper's
    // "exponentially averaged" ts(u) alternative, and no optimization.
    for (auto [forgetful, ewma] :
         {std::pair{true, false}, {true, true}, {false, false}}) {
      auto scenario = benchx::figureScenario(churn::Model::kSynth, n, 90);
      scenario.forgetful = forgetful;
      scenario.forgetfulEwma = ewma;
      experiments::ScenarioRunner runner(scenario);
      runner.run();
      means[i++] = benchx::meanOf(runner.uselessPingsPerMinute());
    }
    table.addRow(
        {std::to_string(n), stats::TablePrinter::num(means[0], 3),
         stats::TablePrinter::num(means[1], 3),
         stats::TablePrinter::num(means[2], 3),
         stats::TablePrinter::num(means[0] > 0 ? means[2] / means[0] : 0, 1)});
  }
  table.print(std::cout);
  std::cout << "Paper shape: forgetful pinging cuts useless pings by about "
               "an order of magnitude at every N.\n";
  return 0;
}
