// Table 1: memory/bandwidth (M), expected discovery time (D), and
// computation (C) of Broadcast vs. the AVMON variants — the paper's
// analytic rows plus a measured spot-check of the AVMON generic row.
#include <iostream>

#include "analysis/formulas.hpp"
#include "analysis/table1.hpp"
#include "avmon/config.hpp"
#include "common.hpp"
#include "experiments/scenario.hpp"

namespace {

using namespace avmon;

void printAnalytic(std::size_t n) {
  const std::size_t genericCvs = cvsForVariant(CvsVariant::kPaperEval, n);
  stats::TablePrinter table("Table 1 (analytic) at N=" + std::to_string(n) +
                            ", generic cvs=" + std::to_string(genericCvs));
  table.setHeader({"approach", "M (asym)", "D (asym)", "C (asym)",
                   "M entries", "E[D] rounds", "C per round"});
  for (const auto& row : analysis::table1(n, genericCvs)) {
    table.addRow({row.approach, row.memoryAsymptotic, row.discoveryAsymptotic,
                  row.computeAsymptotic,
                  stats::TablePrinter::num(row.memoryEntries, 0),
                  stats::TablePrinter::num(row.discoveryRounds, 1),
                  stats::TablePrinter::num(row.computationsPerRound, 0)});
  }
  table.print(std::cout);
}

void measuredBroadcast(std::size_t n) {
  // Measured Broadcast baseline under the same STAT workload: near-zero
  // discovery time, O(N) memory, O(N) bytes per join. Rides the shared
  // ScenarioRunner via the protocol registry; warmup = 0 keeps the t = 0
  // join broadcasts inside the traffic accounting.
  experiments::Scenario scenario;
  scenario.protocol = "broadcast";
  scenario.model = churn::Model::kStat;
  scenario.stableSize = n;
  scenario.warmup = 0;
  scenario.horizon = 45 * kMinute;
  scenario.seed = 20070601;
  scenario.hashName = "md5";
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  std::vector<double> bytesPerJoin;
  for (const auto& nt : runner.schedule().nodes()) {
    if (nt.sessions.empty()) continue;
    bytesPerJoin.push_back(
        static_cast<double>(runner.trafficOf(nt.id).bytesSent) /
        static_cast<double>(nt.sessions.size()));
  }

  stats::TablePrinter table("Table 1 (measured), Broadcast baseline, N=" +
                            std::to_string(n) + " (STAT)");
  table.setHeader({"metric", "analytic", "measured"});
  table.addRow({"memory entries", "O(N) ~ " + std::to_string(n),
                benchx::meanPlusMinus(runner.memoryEntries(false), 0)});
  table.addRow({"first-monitor discovery (s)", "~ broadcast latency",
                benchx::meanPlusMinus(runner.discoveryDelaysSeconds(1), 3)});
  table.addRow({"bytes per join", "O(N) ~ " + std::to_string(10 * n),
                benchx::meanPlusMinus(bytesPerJoin, 0)});
  table.print(std::cout);
}

void measuredSpotCheck(std::size_t n) {
  // Measured AVMON at the evaluation's settings: discovery time in rounds,
  // memory entries, and checks per round, next to the analytic row.
  auto scenario = benchx::figureScenario(churn::Model::kStat, n, 45);
  experiments::ScenarioRunner runner(scenario);
  runner.run();

  const auto& cfg = runner.config();
  const double periodSec = toSeconds(cfg.protocolPeriod);
  std::vector<double> discoveryRounds;
  for (double s : runner.discoveryDelaysSeconds(1))
    discoveryRounds.push_back(s / periodSec);

  std::vector<double> checksPerRound;
  for (double cps : runner.computationsPerSecond())
    checksPerRound.push_back(cps * periodSec);

  stats::TablePrinter table("Table 1 (measured spot-check), AVMON cvs=" +
                            std::to_string(cfg.cvs) + ", N=" +
                            std::to_string(n) + " (STAT)");
  table.setHeader({"metric", "analytic", "measured"});
  table.addRow({"memory entries (cvs+2K)",
                stats::TablePrinter::num(
                    static_cast<double>(cfg.cvs + 2 * cfg.k), 0),
                benchx::meanPlusMinus(runner.memoryEntries(false), 1)});
  table.addRow({"first-monitor discovery (rounds)",
                "<= " + stats::TablePrinter::num(
                            analysis::expectedDiscoveryRounds(cfg.cvs, n), 2),
                benchx::meanPlusMinus(discoveryRounds, 2)});
  table.addRow({"consistency checks per round",
                "~2(cvs+2)^2 = " +
                    stats::TablePrinter::num(
                        2.0 * static_cast<double>((cfg.cvs + 2) * (cfg.cvs + 2)), 0),
                benchx::meanPlusMinus(checksPerRound, 0)});
  table.print(std::cout);
}

}  // namespace

int main() {
  for (std::size_t n : {2000u, 1000000u}) printAnalytic(n);
  measuredSpotCheck(1000);
  measuredBroadcast(1000);
  return 0;
}
