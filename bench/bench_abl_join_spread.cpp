// Ablation A4: the joining sub-protocol (Figure 1). Measures, for a fresh
// node joining a warmed-up system: how many JOIN messages circulate, how
// many coarse views gain the joiner (target: ~cvs), how long dissemination
// takes (analysis: O(log cvs) forwarding hops, i.e. sub-second at network
// latency), and the duplicate-JOIN rate (analysis: o(1) expected
// duplicates when cvs = o(sqrt N)).
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/formulas.hpp"
#include "avmon/node.hpp"
#include "common.hpp"
#include "hash/hash_function.hpp"

namespace {

using namespace avmon;

struct SpreadResult {
  std::size_t cvs = 0;
  std::uint64_t joinMessages = 0;  ///< JOINs received system-wide
  std::uint64_t adds = 0;          ///< coarse views that gained the joiner
  std::uint64_t duplicates = 0;    ///< JOINs landing where joiner was known
  SimTime spreadMs = 0;            ///< time until the last JOIN was received
};

SpreadResult measure(std::size_t n, std::size_t cvs, std::uint64_t seed) {
  sim::Simulator sim;
  hash::SplitMix64HashFunction hashFn;
  AvmonConfig cfg = AvmonConfig::paperDefaults(n);
  cfg.cvs = cvs;
  HashMonitorSelector selector(hashFn, cfg.k, n);
  sim::Network net(sim, sim::NetworkConfig{}, Rng(seed));
  Rng root(seed + 1);

  std::vector<NodeId> alive;
  const auto bootstrap = [&](const NodeId& self) {
    for (int i = 0; i < 4; ++i) {
      if (alive.empty()) return NodeId{};
      const NodeId pick = alive[root.index(alive.size())];
      if (pick != self) return pick;
    }
    return NodeId{};
  };

  std::vector<std::unique_ptr<AvmonNode>> nodes;
  for (std::size_t i = 0; i <= n; ++i) {
    nodes.push_back(std::make_unique<AvmonNode>(
        NodeId::fromIndex(static_cast<std::uint32_t>(i)), cfg, selector, sim,
        net, bootstrap, root.fork()));
  }
  for (std::size_t i = 0; i < n; ++i) {
    nodes[i]->join(true);
    alive.push_back(nodes[i]->id());
  }
  sim.runUntil(30 * cfg.protocolPeriod);

  const auto totals = [&] {
    std::uint64_t received = 0, adds = 0;
    for (const auto& node : nodes) {
      received += node->metrics().joinsReceived;
      adds += node->metrics().joinAdds;
    }
    return std::pair{received, adds};
  };
  const auto [rxBefore, addsBefore] = totals();

  const SimTime joinAt = sim.now();
  nodes[n]->join(true);
  alive.push_back(nodes[n]->id());

  // Advance in 50 ms steps until no new JOIN has been received for 500 ms.
  SpreadResult r;
  r.cvs = cvs;
  std::uint64_t lastRx = rxBefore;
  SimTime lastGrowth = 0;
  for (SimTime t = 50; t <= 10 * kSecond; t += 50) {
    sim.runUntil(joinAt + t);
    const auto [rx, adds] = totals();
    if (rx > lastRx) {
      lastRx = rx;
      lastGrowth = t;
    } else if (t - lastGrowth > 500) {
      break;
    }
    r.joinMessages = rx - rxBefore;
    r.adds = adds - addsBefore;
  }
  r.duplicates = r.joinMessages - r.adds;
  r.spreadMs = lastGrowth;
  return r;
}

}  // namespace

int main() {
  constexpr std::size_t kN = 800;
  stats::TablePrinter table(
      "Ablation A4: JOIN dissemination for one fresh node (N=800, averaged "
      "fields per run)");
  table.setHeader({"cvs", "JOINs received", "CV adds", "duplicates",
                   "analytic E[dup]", "spread ms", "log2(cvs) hops"});

  for (std::size_t cvs : {8u, 16u, 24u, 32u}) {
    // Average three seeds to smooth the duplicate count.
    std::uint64_t msgs = 0, adds = 0, dups = 0;
    SimTime spread = 0;
    constexpr int kRuns = 3;
    for (int s = 0; s < kRuns; ++s) {
      const SpreadResult r = measure(kN, cvs, 100 + static_cast<std::uint64_t>(s));
      msgs += r.joinMessages;
      adds += r.adds;
      dups += r.duplicates;
      spread = std::max(spread, r.spreadMs);
    }
    table.addRow(
        {std::to_string(cvs), std::to_string(msgs / kRuns),
         std::to_string(adds / kRuns), std::to_string(dups / kRuns),
         avmon::stats::TablePrinter::num(
             avmon::analysis::expectedDuplicateJoins(cvs, kN), 2),
         std::to_string(spread),
         avmon::stats::TablePrinter::num(
             avmon::analysis::joinSpreadRounds(cvs), 1)});
  }
  table.print(std::cout);
  std::cout << "Expected: ~cvs coarse-view adds per join, duplicates near "
               "the o(1) bound, dissemination finishing within a few "
               "hundred ms (O(log cvs) forwarding hops x ~45 ms latency).\n";
  return 0;
}
