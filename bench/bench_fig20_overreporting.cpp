// Figure 20: effect of the overreporting attack. A fraction of nodes
// misreport 100% availability for every node they monitor; a node is
// "negatively affected" when its PS-averaged measured availability
// differs from its actual availability by more than 0.2.
//
// Paper result: across SYNTH, SYNTH-BD, PL, and OV, at most 3.5% of nodes
// are affected even with 20% of nodes misreporting.
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 20: fraction of nodes with >0.2 availability error vs "
      "fraction of misreporting nodes");
  table.setHeader({"model", "misreporting", "affected fraction", "nodes"});

  for (churn::Model model : {churn::Model::kSynth, churn::Model::kSynthBD,
                             churn::Model::kPlanetLab, churn::Model::kOvernet}) {
    for (double fraction : {0.0, 0.10, 0.20}) {
      auto scenario = benchx::figureScenario(model, 500, 90);
      scenario.overreportFraction = fraction;
      scenario.forgetful = false;  // isolate the attack from estimation bias
      experiments::ScenarioRunner runner(scenario);
      runner.run();

      const auto acc = runner.availabilityAccuracy(/*measuredOnly=*/false);
      std::size_t affected = 0;
      for (const auto& a : acc) {
        if (std::abs(a.estimated - a.actual) > 0.2) ++affected;
      }
      const double rate =
          acc.empty() ? 0.0
                      : static_cast<double>(affected) /
                            static_cast<double>(acc.size());
      table.addRow({churn::modelName(model),
                    stats::TablePrinter::num(fraction, 2),
                    stats::TablePrinter::num(rate, 4),
                    std::to_string(acc.size())});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: affected fraction grows slowly with attacker "
               "fraction and stays small (paper worst case 3.5%).\n";
  return 0;
}
