// Application bench: availability prediction on monitored histories — the
// "predict availability of individual nodes in the future" use the paper
// motivates via Mickens & Noble [9]. Ranks the predictor family on every
// churn model's ground-truth schedule.
#include <iostream>

#include "churn/churn_model.hpp"
#include "common.hpp"
#include "predict/evaluation.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Prediction: forecast accuracy (30-minute horizon) per churn model");
  table.setHeader({"model", "predictor", "accuracy", "predictions"});

  for (churn::Model model : {churn::Model::kSynth, churn::Model::kSynthBD,
                             churn::Model::kPlanetLab, churn::Model::kOvernet}) {
    churn::WorkloadParams params;
    params.stableSize = 200;
    params.horizon = 12 * kHour;
    params.controlFraction = 0.0;
    params.seed = 5;
    const auto trace = churn::generate(model, params);

    predict::EvalConfig cfg;
    cfg.samplePeriod = 5 * kMinute;
    cfg.horizon = 30 * kMinute;
    cfg.trainUntil = 2 * kHour;

    const auto scores = predict::evaluateAll(
        {"right-now", "saturating-counter", "history-counts", "linear-ewma"},
        trace, cfg);
    for (const auto& s : scores) {
      table.addRow({churn::modelName(model), s.predictor,
                    stats::TablePrinter::num(s.accuracy(), 4),
                    std::to_string(s.predictions)});
    }
  }
  table.print(std::cout);
  std::cout << "Expected: right-now/saturating-counter strong on sticky "
               "exponential churn; history-counts needed for diurnal "
               "patterns (not present in these memoryless models).\n";
  return 0;
}
