// Simulator-core microbenchmarks: the perf trajectory of the event loop.
//
// Measures the hot paths the calendar-queue overhaul targets and compares
// them against the scheduler it replaced (std::priority_queue of
// std::function events, reimplemented here as LegacySimulator so the
// baseline never bit-rots). Self-timed with std::chrono — no Google
// Benchmark dependency — and emits a machine-readable BENCH_simcore.json
// so every future PR can extend the trajectory.
//
// Usage: bench_sim_core [--preset smoke|full] [--out PATH] [--million]
//   smoke     ~1 s, for CI artifact jobs
//   full      ~20 s, the checked-in trajectory point (default)
//   --million additionally runs the N = 10^6 memory-diet scenario
//             (examples/specs/million_node.spec in-process; minutes of
//             wall time and ~3 GB of RSS) and appends its rows
//
// Hardware-dependent rows carry a machine-readable qualifier: on hosts
// with fewer than 4 hardware threads the sharded 4-shard speedup row is
// still emitted (the measurement is honest — pure barrier overhead) but
// tagged "note": "skipped_1core", which tells downstream trajectory
// checks to skip the >=1.5x @ >=4-core assertion rather than fail it.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include <thread>

#include <sys/resource.h>

#include "avmon/notify_dedup.hpp"
#include "common.hpp"
#include "common/rng.hpp"
#include "experiments/metrics.hpp"
#include "experiments/scenario.hpp"
#include "experiments/spec.hpp"
#include "golden_hash.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon {
namespace {

// ---------------------------------------------------------------------------
// The pre-overhaul scheduler, verbatim: one binary heap of (when, seq,
// std::function). Every schedule is a heap sift of 56-byte events plus (for
// any capture over std::function's ~16-byte SBO) a heap allocation.
// ---------------------------------------------------------------------------
class LegacySimulator {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  void at(SimTime when, Action action) {
    if (when < now_) when = now_;
    queue_.push(Event{when, nextSeq_++, std::move(action)});
  }

  void after(SimDuration delay, Action action) {
    at(now_ + delay, std::move(action));
  }

  void runUntil(SimTime until) {
    while (!queue_.empty() && queue_.top().when <= until) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = ev.when;
      ev.action();
    }
    if (now_ < until) now_ = until;
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
};

using avmon::benchx::secondsSince;
using avmon::benchx::wallClockNow;

// Best-of-N wrapper: scheduler microbenchmarks on a shared box are noisy,
// and the *capability* of each implementation is its fastest observed run.
template <class Fn>
double bestOf(int runs, Fn&& measure) {
  double best = 0.0;
  for (int i = 0; i < runs; ++i) best = std::max(best, measure());
  return best;
}

// ---------------------------------------------------------------------------
// Workload 1: schedule/fire churn. `pending` self-rescheduling events with
// latency-scale delays (the shape of one-way message delivery). This is the
// microbench the >=2x acceptance criterion applies to.
// ---------------------------------------------------------------------------

// Self-rescheduling event. The capture (three pointers) fits InlineAction's
// buffer but exceeds std::function's SBO — exactly like the network's
// delivery closures, which carry a Message on top.
template <class Sched>
struct ChurnEvent {
  Sched* sched;
  Rng* rng;
  std::uint64_t* fired;
  std::uint64_t pad = 0;  // round the capture up to delivery-closure scale

  void operator()() {
    ++*fired;
    sched->after(static_cast<SimDuration>(1 + (rng->operator()() & 127)),
                 ChurnEvent{sched, rng, fired, pad});
  }
};

template <class Sched>
double scheduleFireEventsPerSec(std::size_t pending, std::uint64_t target) {
  Sched sched;
  Rng rng(42);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    sched.at(static_cast<SimTime>(rng.below(128)),
             ChurnEvent<Sched>{&sched, &rng, &fired});
  }
  const auto start = wallClockNow();
  while (fired < target) {
    sched.runUntil(sched.now() + 1024);
  }
  return static_cast<double>(fired) / secondsSince(start);
}

// Workload 2: mixed tiers — 90% latency-scale delays, 10% minute-scale
// (periodic-timer shape). Exercises overflow promotion against the heap.
template <class Sched>
struct MixedEvent {
  Sched* sched;
  Rng* rng;
  std::uint64_t* fired;

  void operator()() {
    ++*fired;
    const std::uint64_t roll = rng->operator()();
    const SimDuration delay =
        (roll % 10 == 0) ? kMinute + static_cast<SimDuration>(roll & 1023)
                         : 1 + static_cast<SimDuration>(roll & 127);
    sched->after(delay, MixedEvent{sched, rng, fired});
  }
};

template <class Sched>
double mixedTierEventsPerSec(std::size_t pending, std::uint64_t target) {
  Sched sched;
  Rng rng(43);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < pending; ++i) {
    sched.at(static_cast<SimTime>(rng.below(128)),
             MixedEvent<Sched>{&sched, &rng, &fired});
  }
  const auto start = wallClockNow();
  while (fired < target) {
    sched.runUntil(sched.now() + 4096);
  }
  return static_cast<double>(fired) / secondsSince(start);
}

// ---------------------------------------------------------------------------
// Workload 3: network send throughput — full send -> latency -> deliver
// cycles through the dense-slot switchboard.
// ---------------------------------------------------------------------------
class CountingEndpoint final : public sim::Endpoint {
 public:
  void onMessage(const NodeId&, const sim::Message&) override { ++received; }
  std::uint64_t received = 0;
};

double sendThroughputPerSec(std::size_t nodes, std::uint64_t messages) {
  sim::Simulator simulator;
  sim::Network net(simulator, sim::NetworkConfig{}, Rng(7));
  std::vector<CountingEndpoint> endpoints(nodes);
  std::vector<NodeId> ids;
  ids.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    ids.push_back(NodeId::fromIndex(static_cast<std::uint32_t>(i)));
    net.attach(ids[i], endpoints[i]);
    net.setUp(ids[i], true);
  }

  Rng rng(8);
  const auto start = wallClockNow();
  std::uint64_t sent = 0;
  while (sent < messages) {
    // A burst of sends from random sources, then drain the deliveries.
    for (int burst = 0; burst < 1024 && sent < messages; ++burst, ++sent) {
      const NodeId& from = ids[rng.index(nodes)];
      const NodeId& to = ids[rng.index(nodes)];
      net.send(from, to, sim::NotifyMessage{from, to});
    }
    simulator.runUntil(simulator.now() + 100);
  }
  simulator.runUntil(simulator.now() + kSecond);
  return static_cast<double>(sent) / secondsSince(start);
}

// ---------------------------------------------------------------------------
// Workload 4: instantaneous RPC exchanges (the degenerate callAsync path
// every protocol tick rides).
// ---------------------------------------------------------------------------
double rpcExchangesPerSec(std::uint64_t calls) {
  sim::Simulator simulator;
  sim::Network net(simulator, sim::NetworkConfig{}, Rng(9));
  CountingEndpoint a, b;
  const NodeId idA = NodeId::fromIndex(1), idB = NodeId::fromIndex(2);
  net.attach(idA, a);
  net.attach(idB, b);
  net.setUp(idA, true);
  net.setUp(idB, true);

  std::uint64_t acked = 0;
  const auto start = wallClockNow();
  for (std::uint64_t i = 0; i < calls; ++i) {
    net.exchangeAsync(idA, idB, sim::PingRequest{8},
                      [&acked](std::optional<sim::PingResponse> pong) {
                        if (pong) ++acked;
                      });
  }
  const double elapsed = secondsSince(start);
  if (acked != calls) std::fprintf(stderr, "rpc bench: missing acks!\n");
  return static_cast<double>(calls) / elapsed;
}

// ---------------------------------------------------------------------------
// Workload 5: NOTIFY dedup cache under a churning key stream (80% recent
// repeats, 20% fresh keys) at a capacity far below the key population —
// the long-churn regime the generational eviction is for.
// ---------------------------------------------------------------------------
double dedupOpsPerSec(std::uint64_t ops, double* suppressedOut) {
  NotifyDedupCache cache(4096);
  Rng rng(10);
  std::uint64_t fresh = 0;
  std::uint64_t suppressed = 0;
  const auto start = wallClockNow();
  for (std::uint64_t i = 0; i < ops; ++i) {
    std::uint64_t key;
    if (rng.chance(0.8) && fresh > 0) {
      key = splitmix64Mix(fresh - 1 - (rng() % std::min<std::uint64_t>(
                                                  fresh, 1024)));
    } else {
      key = splitmix64Mix(fresh++);
    }
    if (!cache.insert(key)) ++suppressed;
  }
  const double elapsed = secondsSince(start);
  *suppressedOut =
      static_cast<double>(suppressed) / static_cast<double>(ops);
  return static_cast<double>(ops) / elapsed;
}

// ---------------------------------------------------------------------------
// Workload 6: sharded single-scenario execution. ONE large AVMON world —
// the thing the per-scenario pool cannot parallelize — run through the
// ShardedSimulator at S = 1 vs S = 4. The acceptance bar is >= 1.5x with
// 4 shards on >= 4 cores; shard counts never change the metrics (pinned
// by sharded_sim_test), so this measures pure wall-clock.
// ---------------------------------------------------------------------------
struct ShardedRun {
  double seconds = 0.0;
  double eventsPerSec = 0.0;
};

ShardedRun shardedScenarioRun(unsigned shards, std::size_t n,
                              SimDuration horizon) {
  experiments::Scenario s;
  s.model = churn::Model::kSynth;  // churn keeps join/NOTIFY traffic flowing
  s.stableSize = n;
  s.horizon = horizon;
  s.warmup = horizon / 4;
  s.seed = 77;
  s.hashName = "splitmix64";
  s.shards = shards;
  experiments::ScenarioRunner runner(s);
  const auto start = wallClockNow();
  runner.run();
  ShardedRun result;
  result.seconds = secondsSince(start);
  result.eventsPerSec =
      static_cast<double>(runner.world().executedEvents()) / result.seconds;
  return result;
}

// ---------------------------------------------------------------------------
// Workload 7: metric-collection lanes. The same large world run twice —
// once with the materialized end-of-run scan (collectMetrics walks every
// node into sample vectors and a per-node table) and once with the
// streaming reducer pipeline (summary reducer only, so nothing per-node is
// ever retained). Compared on collection wall time and retained
// metric-state bytes; the streamed lane must hold strictly less. Peak RSS
// is recorded after each lane (streamed first — getrusage's high-water
// mark is monotone, so the later materialized reading shows how much the
// per-node tables raised it).
// ---------------------------------------------------------------------------
struct CollectionRun {
  double runSeconds = 0.0;
  double collectSeconds = 0.0;
  std::size_t stateBytes = 0;
  double peakRssKb = 0.0;
};

CollectionRun metricCollectionRun(bool streamed, std::size_t n,
                                  SimDuration horizon) {
  experiments::Scenario s;
  s.model = churn::Model::kSynth;
  s.stableSize = n;
  s.horizon = horizon;
  s.warmup = horizon / 4;
  s.seed = 78;
  s.hashName = "splitmix64";
  s.shards = 4;
  if (streamed) {
    s.metrics.window = kMinute;
    s.metrics.reducers = {"summary"};  // summary-only: no windowed rows
  }
  experiments::ScenarioRunner runner(s);
  CollectionRun result;
  const auto runStart = wallClockNow();
  runner.run();
  result.runSeconds = secondsSince(runStart);
  const auto start = wallClockNow();
  const experiments::MetricSet set = experiments::collectMetrics(runner);
  result.collectSeconds = secondsSince(start);
  result.stateBytes = set.metricStateBytes;
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  result.peakRssKb = static_cast<double>(usage.ru_maxrss);
  return result;
}

struct Row {
  std::string name;
  double value;
  std::string unit;
  /// Optional qualifier emitted into the JSON (e.g. "skipped_1core" on a
  /// speedup row measured without enough hardware threads, or the golden
  /// fingerprint of the million-node run).
  std::string note{};
};

// ---------------------------------------------------------------------------
// Workload 8 (--million): the ROADMAP million-node scenario — N = 10^6
// through the memory diet (SoA node state, compact histories, streamed
// metrics, sharded execution). Mirrors examples/specs/million_node.spec
// exactly; the smoke-scale twin of that spec is pinned by soa_state_test,
// and this run reports the full-scale golden fingerprint in its row note.
// ---------------------------------------------------------------------------
struct MillionRun {
  double seconds = 0.0;
  double eventsPerSec = 0.0;
  double peakRssKb = 0.0;
  std::uint64_t fingerprint = 0;
};

MillionRun millionNodeRun(std::size_t n) {
  experiments::Scenario s;
  s.model = churn::Model::kStat;
  s.stableSize = n;
  s.horizon = 3 * kMinute;
  s.warmup = 1 * kMinute;
  s.seed = 1000003;
  s.hashName = "splitmix64";
  s.configOverride = experiments::cvsKOverride(s.model, n, /*cvs=*/4, /*k=*/1);
  s.shards = 4;
  s.history = "compact";
  s.metrics.window = kMinute;
  s.metrics.reducers = {"summary"};
  experiments::ScenarioRunner runner(s);
  MillionRun result;
  const auto start = wallClockNow();
  runner.run();
  result.seconds = secondsSince(start);
  result.eventsPerSec =
      static_cast<double>(runner.world().executedEvents()) / result.seconds;
  result.fingerprint = experiments::summaryHash(runner);
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  result.peakRssKb = static_cast<double>(usage.ru_maxrss);
  return result;
}

}  // namespace
}  // namespace avmon

int main(int argc, char** argv) {
  using namespace avmon;

  std::string preset = "full";
  std::string outPath = "BENCH_simcore.json";
  bool million = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--preset" && i + 1 < argc) {
      preset = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else if (arg == "--million") {
      million = true;
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--preset smoke|full] [--out PATH] [--million]\n"
          "  smoke     ~1 s, for CI artifact jobs\n"
          "  full      ~20 s, the checked-in trajectory point (default)\n"
          "  --million append the N = 10^6 memory-diet rows (minutes, ~3 GB)\n"
          "hardware-dependent rows (sharded 4-shard speedup) are tagged\n"
          "\"note\": \"skipped_1core\" on <4-thread hosts: recorded, but the\n"
          ">=1.5x assertion is skipped instead of failed\n",
          argv[0]);
      return 2;
    }
  }
  if (preset != "smoke" && preset != "full") {
    std::fprintf(stderr, "unknown preset '%s' (smoke|full)\n",
                 preset.c_str());
    return 2;
  }
  const bool smoke = preset == "smoke";

  // Smoke shortens the measurement, not the workload shape: the pending-
  // event population sets the heap depth the baseline pays, so shrinking
  // it would understate the comparison.
  const std::size_t pending = 10'000;
  const std::uint64_t fireTarget = smoke ? 200'000 : 2'000'000;
  const std::uint64_t sendTarget = smoke ? 100'000 : 1'000'000;
  const std::uint64_t rpcTarget = smoke ? 200'000 : 2'000'000;
  const std::uint64_t dedupTarget = smoke ? 500'000 : 5'000'000;

  std::vector<Row> rows;

  const int reps = smoke ? 2 : 3;
  const double calendarEps = bestOf(reps, [&] {
    return scheduleFireEventsPerSec<sim::Simulator>(pending, fireTarget);
  });
  const double legacyEps = bestOf(reps, [&] {
    return scheduleFireEventsPerSec<LegacySimulator>(pending, fireTarget);
  });
  const double speedup = calendarEps / legacyEps;
  rows.push_back({"schedule_fire_calendar", calendarEps, "events/sec"});
  rows.push_back({"schedule_fire_priority_queue", legacyEps, "events/sec"});
  rows.push_back({"schedule_fire_speedup", speedup, "x"});
  rows.push_back(
      {"schedule_fire_latency", 1e9 / calendarEps, "ns/event"});

  const double calendarMixed = bestOf(reps, [&] {
    return mixedTierEventsPerSec<sim::Simulator>(pending, fireTarget);
  });
  const double legacyMixed = bestOf(reps, [&] {
    return mixedTierEventsPerSec<LegacySimulator>(pending, fireTarget);
  });
  rows.push_back({"mixed_tier_calendar", calendarMixed, "events/sec"});
  rows.push_back({"mixed_tier_priority_queue", legacyMixed, "events/sec"});
  rows.push_back({"mixed_tier_speedup", calendarMixed / legacyMixed, "x"});

  rows.push_back(
      {"send_throughput", sendThroughputPerSec(1000, sendTarget),
       "msgs/sec"});
  rows.push_back({"rpc_exchange", rpcExchangesPerSec(rpcTarget),
                  "calls/sec"});

  double suppressedFraction = 0.0;
  rows.push_back(
      {"notify_dedup", dedupOpsPerSec(dedupTarget, &suppressedFraction),
       "ops/sec"});
  rows.push_back(
      {"notify_dedup_suppressed", suppressedFraction, "fraction"});

  // Sharded single-scenario section. Smoke shrinks the world, not the
  // structure, so the JSON shape is identical across presets.
  const std::size_t shardedN = smoke ? 600 : 2000;
  const SimDuration shardedHorizon = smoke ? 8 * kMinute : 20 * kMinute;
  const ShardedRun oneShard = shardedScenarioRun(1, shardedN, shardedHorizon);
  const ShardedRun fourShards = shardedScenarioRun(4, shardedN, shardedHorizon);
  const double shardedSpeedup = oneShard.seconds / fourShards.seconds;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  rows.push_back({"sharded_scenario_1shard", oneShard.eventsPerSec,
                  "events/sec"});
  rows.push_back({"sharded_scenario_4shards", fourShards.eventsPerSec,
                  "events/sec"});
  Row speedupRow{"sharded_scenario_speedup_4shards", shardedSpeedup, "x"};
  // The >=1.5x bar needs the 4 shards on 4 real threads; on a smaller
  // host the measurement is still recorded but marked so downstream
  // trajectory checks skip the assertion instead of failing on hardware.
  if (cores < 4) speedupRow.note = "skipped_1core";
  rows.push_back(std::move(speedupRow));
  rows.push_back({"sharded_hw_threads", static_cast<double>(cores),
                  "threads"});
  if (cores < 4) {
    std::printf(
        "NOTE: only %u hardware thread(s); the >=1.5x sharded target "
        "applies to >=4-core hosts (row marked skipped_1core)\n",
        cores);
  } else if (shardedSpeedup < 1.5) {
    std::printf(
        "WARNING: sharded 4-shard speedup %.2fx below the 1.5x target\n",
        shardedSpeedup);
  }

  // Metric-collection lanes (streamed first; see the workload comment for
  // why the RSS readings are order-sensitive).
  const CollectionRun streamedLane =
      metricCollectionRun(/*streamed=*/true, shardedN, shardedHorizon);
  const CollectionRun materializedLane =
      metricCollectionRun(/*streamed=*/false, shardedN, shardedHorizon);
  rows.push_back({"metrics_streamed_collect_ms",
                  streamedLane.collectSeconds * 1e3, "ms"});
  rows.push_back({"metrics_materialized_collect_ms",
                  materializedLane.collectSeconds * 1e3, "ms"});
  rows.push_back({"metrics_streamed_state_bytes",
                  static_cast<double>(streamedLane.stateBytes), "bytes"});
  rows.push_back({"metrics_materialized_state_bytes",
                  static_cast<double>(materializedLane.stateBytes), "bytes"});
  rows.push_back({"metrics_state_ratio",
                  static_cast<double>(materializedLane.stateBytes) /
                      static_cast<double>(streamedLane.stateBytes),
                  "x"});
  rows.push_back({"metrics_streamed_run_overhead",
                  streamedLane.runSeconds / materializedLane.runSeconds,
                  "x"});
  rows.push_back({"metrics_peak_rss_after_streamed_kb",
                  streamedLane.peakRssKb, "kb"});
  rows.push_back({"metrics_peak_rss_after_materialized_kb",
                  materializedLane.peakRssKb, "kb"});
  if (streamedLane.stateBytes >= materializedLane.stateBytes) {
    std::printf(
        "WARNING: streamed metric state (%zu B) not below materialized "
        "(%zu B)\n",
        streamedLane.stateBytes, materializedLane.stateBytes);
  }

  if (million) {
    // Run last: getrusage's high-water mark is monotone, so everything
    // before this point is guaranteed smaller than the million-node peak.
    const std::size_t millionN = 1'000'000;
    const MillionRun run = millionNodeRun(millionN);
    char fingerprint[32];
    std::snprintf(fingerprint, sizeof fingerprint, "0x%016llx",
                  static_cast<unsigned long long>(run.fingerprint));
    rows.push_back({"million_node_events_per_sec", run.eventsPerSec,
                    "events/sec", fingerprint});
    rows.push_back({"million_node_wall", run.seconds, "sec"});
    rows.push_back({"million_node_peak_rss_kb", run.peakRssKb, "kb"});
    rows.push_back({"million_node_peak_rss_bytes_per_node",
                    run.peakRssKb * 1024.0 / static_cast<double>(millionN),
                    "bytes/node"});
    std::printf("million-node golden fingerprint: %s\n", fingerprint);
  }

  std::printf("# bench_sim_core (%s preset)\n", preset.c_str());
  for (const Row& row : rows) {
    if (row.unit == "x" || row.unit == "fraction") {
      std::printf("%-32s %14.2f %s\n", row.name.c_str(), row.value,
                  row.unit.c_str());
    } else {
      std::printf("%-32s %14.0f %s\n", row.name.c_str(), row.value,
                  row.unit.c_str());
    }
  }
  if (speedup < 2.0) {
    std::printf("WARNING: schedule/fire speedup %.2fx below the 2x target\n",
                speedup);
  }

  if (std::FILE* out = std::fopen(outPath.c_str(), "w")) {
    std::fprintf(out, "{\n  \"bench\": \"bench_sim_core\",\n");
    std::fprintf(out, "  \"preset\": \"%s\",\n", preset.c_str());
    std::fprintf(out, "  \"results\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].note.empty()) {
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"value\": %.1f, \"unit\": "
                     "\"%s\"}%s\n",
                     rows[i].name.c_str(), rows[i].value,
                     rows[i].unit.c_str(), i + 1 < rows.size() ? "," : "");
      } else {
        std::fprintf(out,
                     "    {\"name\": \"%s\", \"value\": %.1f, \"unit\": "
                     "\"%s\", \"note\": \"%s\"}%s\n",
                     rows[i].name.c_str(), rows[i].value,
                     rows[i].unit.c_str(), rows[i].note.c_str(),
                     i + 1 < rows.size() ? "," : "");
      }
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", outPath.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", outPath.c_str());
    return 1;
  }
  return 0;
}
