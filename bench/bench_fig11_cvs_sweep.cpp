// Figure 11: average discovery time (with stddev) vs. coarse view size,
// STAT model, N in {500, 1000, 2000}, cvs in {4,6,8,10}·⁴√N.
//
// Paper result: discovery time falls as cvs grows, with a knee at
// cvs = 8·⁴√N beyond which further increases buy little.
#include <cmath>
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 11: average discovery time (seconds) vs cvs, STAT model");
  table.setHeader({"N", "cvs multiplier", "cvs", "avg seconds", "stddev"});

  for (std::size_t n : {500u, 1000u, 2000u}) {
    for (int multiplier : {4, 6, 8, 10}) {
      auto scenario = benchx::figureScenario(churn::Model::kStat, n, 30);
      AvmonConfig cfg = AvmonConfig::paperDefaults(n);
      cfg.cvs = static_cast<std::size_t>(std::llround(
          multiplier * std::pow(static_cast<double>(n), 0.25)));
      scenario.configOverride = cfg;

      experiments::ScenarioRunner runner(scenario);
      runner.run();

      const auto summary =
          benchx::summarize(runner.discoveryDelaysSeconds(1));
      table.addRow({std::to_string(n), std::to_string(multiplier) + "*N^0.25",
                    std::to_string(cfg.cvs),
                    stats::TablePrinter::num(summary.mean(), 2),
                    stats::TablePrinter::num(summary.stddev(), 2)});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: decreasing in cvs with a knee near 8*N^0.25.\n";
  return 0;
}
