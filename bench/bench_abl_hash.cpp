// Ablation A1: hash-function choice. The consistency condition only needs
// a well-mixing, agreed-upon H; this bench shows MD5, SHA-1, and the fast
// splitmix64 mixer produce the same protocol behaviour (discovery time,
// pinging-set size, check rate) — justifying the benches' use of
// splitmix64 for speed while the library defaults to MD5.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Ablation A1: protocol metrics under different hash functions "
      "(STAT, N=500)");
  table.setHeader({"hash", "avg discovery s", "avg |PS|", "avg |TS|",
                   "avg comps/s", "avg memory"});

  for (const char* hashName : {"md5", "sha1", "splitmix64"}) {
    auto scenario = benchx::figureScenario(churn::Model::kStat, 500, 45);
    scenario.hashName = hashName;
    experiments::ScenarioRunner runner(scenario);
    runner.run();

    stats::Summary ps, ts;
    for (const auto& nt : runner.schedule().nodes()) {
      const auto& node = runner.node(nt.id);
      if (node.memoryEntries() == 0) continue;
      ps.add(static_cast<double>(node.pingingSet().size()));
      ts.add(static_cast<double>(node.targetSet().size()));
    }

    table.addRow({hashName,
                  stats::TablePrinter::num(
                      benchx::meanOf(runner.discoveryDelaysSeconds(1)), 2),
                  stats::TablePrinter::num(ps.mean(), 2),
                  stats::TablePrinter::num(ts.mean(), 2),
                  stats::TablePrinter::num(
                      benchx::meanOf(runner.computationsPerSecond()), 2),
                  stats::TablePrinter::num(
                      benchx::meanOf(runner.memoryEntries(false)), 1)});
  }
  table.print(std::cout);
  std::cout << "Expected: rows statistically indistinguishable — the "
               "selection scheme is hash-agnostic given good mixing.\n";
  return 0;
}
