// Figure 9: average per-node memory entries (|PS| + |TS| + |CV|) vs. N,
// for STAT / SYNTH / SYNTH-BD.
//
// Paper result: close to the expected cvs + 2K entries (e.g. 49 at
// N=2000); churned models slightly above due to PS/TS garbage.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  stats::TablePrinter table(
      "Figure 9: average memory entries per node (|PS|+|TS|+|CV|)");
  table.setHeader(
      {"model", "N", "avg entries", "stddev", "expected cvs+2K"});

  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    for (std::size_t n : {100u, 500u, 1000u, 2000u}) {
      // Longer window so the churned models accumulate garbage entries.
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, 60));
      runner.run();

      const auto summary =
          benchx::summarize(runner.memoryEntries(/*measuredOnly=*/true));
      const auto& cfg = runner.config();
      table.addRow(
          {churn::modelName(model), std::to_string(n),
           stats::TablePrinter::num(summary.mean(), 1),
           stats::TablePrinter::num(summary.stddev(), 1),
           std::to_string(cfg.cvs + 2 * cfg.k)});
    }
  }
  table.print(std::cout);
  std::cout << "Paper shape: STAT at or below cvs+2K; SYNTH/SYNTH-BD "
               "slightly above (dead-node garbage in PS/TS).\n";
  return 0;
}
