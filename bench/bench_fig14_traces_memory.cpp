// Figure 14: CDF of per-node memory entries under the PL and OV traces.
//
// Paper result: memory uniformly distributed; OV sits above its expected
// 19 + 2·9 = 37 entries because births/deaths leave PS/TS garbage, but no
// node exceeded 81 entries; PL peaked at 44.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (churn::Model model : {churn::Model::kPlanetLab, churn::Model::kOvernet}) {
    experiments::ScenarioRunner runner(
        benchx::figureScenario(model, 0, 180));
    runner.run();

    const auto entries = runner.memoryEntries(/*measuredOnly=*/false);
    curves.emplace_back(churn::modelName(model), entries);

    const auto summary = benchx::summarize(entries);
    const auto& cfg = runner.config();
    std::cout << churn::modelName(model) << ": expected cvs+2K = "
              << cfg.cvs + 2 * cfg.k
              << ", mean = " << stats::TablePrinter::num(summary.mean(), 1)
              << ", max = " << stats::TablePrinter::num(summary.max(), 0)
              << "\n";
  }
  benchx::printCdfs("Figure 14: CDF of memory entries per node (PL, OV)",
                    curves);
  std::cout << "Paper shape: OV above its expected 37 entries due to "
               "birth/death garbage but bounded; PL tight around 32.\n";
  return 0;
}
