// Figure 10: CDF across nodes of memory entries (|PS|+|TS|+|CV|), for
// N in {100, 2000} and all three synthetic models.
//
// Paper result: memory usage is uniformly distributed across nodes and
// minimally influenced by churn.
#include <iostream>

#include "common.hpp"

int main() {
  using namespace avmon;

  std::vector<std::pair<std::string, std::vector<double>>> curves;
  for (churn::Model model : {churn::Model::kStat, churn::Model::kSynth,
                             churn::Model::kSynthBD}) {
    for (std::size_t n : {100u, 2000u}) {
      experiments::ScenarioRunner runner(
          benchx::figureScenario(model, n, 90));
      runner.run();
      curves.emplace_back(
          churn::modelName(model) + ", N=" + std::to_string(n),
          runner.memoryEntries(/*measuredOnly=*/false));
    }
  }
  benchx::printCdfs(
      "Figure 10: CDF of memory entries per node (|PS|+|TS|+|CV|)", curves);
  std::cout << "Paper shape: tight CDFs around cvs+2K; churn shifts the "
               "curves only slightly right.\n";
  return 0;
}
