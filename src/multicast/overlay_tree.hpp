// Availability-aware overlay multicast trees.
//
// AVCast (Pongthawornkamol & Gupta, SRDS 2006 — the paper's reference
// [11], and the origin of AVMON's selection scheme) implements
// availability-dependent reliability for multicast receivers: receivers
// attach under parents chosen by availability so that the delivery
// probability of the root-to-leaf path meets a reliability predicate.
// This module builds such trees from AVMON-monitored availabilities and
// computes the per-receiver delivery probabilities.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/node_id.hpp"
#include "common/rng.hpp"

namespace avmon::multicast {

/// A prospective tree member with its monitored availability.
struct Member {
  NodeId id;
  double availability = 0.0;
};

/// Parent-selection policies at attach time.
enum class ParentPolicy {
  kRandom,         ///< uniform over current members (availability-agnostic)
  kMostAvailable,  ///< best availability among `fanout` sampled candidates
  kBestPath,       ///< best root-to-candidate delivery probability among samples
};

std::string policyName(ParentPolicy p);

/// A rooted overlay multicast tree over a member set.
class OverlayTree {
 public:
  /// Builds a tree: the first member of `members` is the root (source);
  /// the rest attach in order, choosing among `fanout` randomly sampled
  /// existing members per the policy. `maxChildren` caps node degree
  /// (candidates at capacity are skipped; 0 = unbounded).
  static OverlayTree build(const std::vector<Member>& members,
                           ParentPolicy policy, std::size_t fanout, Rng& rng,
                           std::size_t maxChildren = 0);

  std::size_t size() const noexcept { return members_.size(); }
  const NodeId& root() const noexcept { return members_.front().id; }

  /// Parent of a member (nullopt for the root or unknown ids).
  std::optional<NodeId> parent(const NodeId& id) const;

  /// Number of children of a member.
  std::size_t childCount(const NodeId& id) const;

  /// Tree depth of a member (root = 0); nullopt for unknown ids.
  std::optional<std::size_t> depth(const NodeId& id) const;

  /// Probability that a message from the root reaches this member: the
  /// product of the availabilities of all strict ancestors (the member
  /// must merely be up to count as delivered, per AVCast's receiver-side
  /// accounting, so its own availability is excluded).
  double deliveryProbability(const NodeId& id) const;

  /// Mean deliveryProbability over all non-root members.
  double meanDeliveryProbability() const;

  /// Fraction of non-root members whose delivery probability meets
  /// `reliability` — the AVCast-style reliability predicate.
  double fractionMeeting(double reliability) const;

 private:
  struct Entry {
    Member member;
    std::optional<std::size_t> parentIndex;
    std::size_t depth = 0;
    std::size_t children = 0;
    double pathProbability = 1.0;  ///< product of strict ancestors' availability
  };

  std::vector<Entry> entries_;
  std::vector<Member> members_;
  std::unordered_map<NodeId, std::size_t> index_;
};

}  // namespace avmon::multicast
