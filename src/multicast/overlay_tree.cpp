#include "multicast/overlay_tree.hpp"

#include <stdexcept>

namespace avmon::multicast {

std::string policyName(ParentPolicy p) {
  switch (p) {
    case ParentPolicy::kRandom: return "random";
    case ParentPolicy::kMostAvailable: return "most-available";
    case ParentPolicy::kBestPath: return "best-path";
  }
  throw std::logic_error("unreachable: bad ParentPolicy");
}

OverlayTree OverlayTree::build(const std::vector<Member>& members,
                               ParentPolicy policy, std::size_t fanout,
                               Rng& rng, std::size_t maxChildren) {
  if (members.empty())
    throw std::invalid_argument("OverlayTree: need at least a root");
  if (fanout == 0)
    throw std::invalid_argument("OverlayTree: fanout must be >= 1");

  OverlayTree tree;
  tree.members_ = members;
  tree.entries_.reserve(members.size());

  // Root.
  Entry root;
  root.member = members.front();
  tree.entries_.push_back(root);
  tree.index_[members.front().id] = 0;

  for (std::size_t i = 1; i < members.size(); ++i) {
    // Sample `fanout` attach candidates among current members, skipping
    // full ones; fall back to a linear scan if sampling only found full
    // candidates (keeps the tree connected under tight degree caps).
    std::optional<std::size_t> chosen;
    for (std::size_t attempt = 0; attempt < fanout; ++attempt) {
      const std::size_t cand = rng.index(tree.entries_.size());
      const Entry& e = tree.entries_[cand];
      if (maxChildren != 0 && e.children >= maxChildren) continue;
      if (!chosen) {
        chosen = cand;
        continue;
      }
      const Entry& best = tree.entries_[*chosen];
      switch (policy) {
        case ParentPolicy::kRandom:
          break;  // first sampled non-full candidate wins
        case ParentPolicy::kMostAvailable:
          if (e.member.availability > best.member.availability) chosen = cand;
          break;
        case ParentPolicy::kBestPath:
          if (e.pathProbability * e.member.availability >
              best.pathProbability * best.member.availability)
            chosen = cand;
          break;
      }
    }
    if (!chosen) {
      for (std::size_t cand = 0; cand < tree.entries_.size(); ++cand) {
        if (maxChildren == 0 || tree.entries_[cand].children < maxChildren) {
          chosen = cand;
          break;
        }
      }
    }
    if (!chosen)
      throw std::logic_error("OverlayTree: no attachable parent found");

    Entry e;
    e.member = members[i];
    e.parentIndex = *chosen;
    Entry& parent = tree.entries_[*chosen];
    e.depth = parent.depth + 1;
    e.pathProbability = parent.pathProbability * parent.member.availability;
    parent.children += 1;
    tree.index_[members[i].id] = tree.entries_.size();
    tree.entries_.push_back(e);
  }
  return tree;
}

std::optional<NodeId> OverlayTree::parent(const NodeId& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  const Entry& e = entries_[it->second];
  if (!e.parentIndex) return std::nullopt;
  return entries_[*e.parentIndex].member.id;
}

std::size_t OverlayTree::childCount(const NodeId& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : entries_[it->second].children;
}

std::optional<std::size_t> OverlayTree::depth(const NodeId& id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].depth;
}

double OverlayTree::deliveryProbability(const NodeId& id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0.0 : entries_[it->second].pathProbability;
}

double OverlayTree::meanDeliveryProbability() const {
  if (entries_.size() <= 1) return 1.0;
  double sum = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    sum += entries_[i].pathProbability;
  return sum / static_cast<double>(entries_.size() - 1);
}

double OverlayTree::fractionMeeting(double reliability) const {
  if (entries_.size() <= 1) return 1.0;
  std::size_t meeting = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i)
    meeting += entries_[i].pathProbability >= reliability ? 1 : 0;
  return static_cast<double>(meeting) /
         static_cast<double>(entries_.size() - 1);
}

}  // namespace avmon::multicast
