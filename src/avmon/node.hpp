// AvmonNode: one protocol participant.
//
// Implements the three AVMON sub-protocols of paper Section 3:
//   * the (re)joining sub-protocol (Figure 1) — weighted JOIN spreading
//     over a random spanning graph so an expected cvs coarse views point
//     at the joiner;
//   * coarse-view maintenance and monitor discovery (Figure 2) — per
//     protocol period: ping one random CV entry (drop if unresponsive),
//     fetch a random alive CV member's view, check the consistency
//     condition over all cross pairs, NOTIFY matches, reshuffle;
//   * availability monitoring (Section 3.3) — per monitoring period, ping
//     every TS member, record the outcome in a per-target availability
//     history, with the forgetful-pinging decay for long-dead targets and
//     the optional PR2 re-advertisement optimization.
//
// The node is deliberately ignorant of the simulation: it talks to a
// sim::Transport (the simulated Network or the live UDP lane), a Simulator
// clock, a MonitorSelector, and a bootstrap oracle (the "pick a random
// node" of Figure 1, which in a deployment is a rendezvous/bootstrap
// service and in our harness is the scenario runner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "avmon/config.hpp"
#include "avmon/messages.hpp"
#include "avmon/monitor_selector.hpp"
#include "avmon/node_state.hpp"
#include "avmon/notify_dedup.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "history/availability_history.hpp"
#include "sim/simulator.hpp"
#include "sim/transport.hpp"

namespace avmon {

/// Returns a random *alive* contact other than the argument, or nil if the
/// caller is alone. Models the bootstrap service every P2P join needs.
using BootstrapFn = std::function<NodeId(const NodeId& self)>;

/// Per-node protocol counters, all cumulative since construction.
struct NodeMetrics {
  std::uint64_t hashChecks = 0;       ///< consistency-condition evaluations
  std::uint64_t notifiesSent = 0;
  std::uint64_t joinsForwarded = 0;
  std::uint64_t joinsReceived = 0;    ///< JOIN messages with positive weight
  std::uint64_t joinAdds = 0;         ///< JOINs that added a new CV entry
  std::uint64_t cvFetches = 0;
  std::uint64_t monitoringPingsSent = 0;
  std::uint64_t uselessPings = 0;     ///< monitoring pings that got no answer
  std::uint64_t forgetfulSuppressed = 0;  ///< pings skipped by forgetful decay
};

/// Everything a monitor keeps about one target in TS (persistent storage).
struct TargetRecord {
  std::unique_ptr<history::AvailabilityHistory> history;
  SimTime downSince = -1;          ///< -1 while target responsive
  SimTime sessionStart = -1;       ///< start of current observed up-session
  SimDuration lastSessionLength = 0;  ///< ts(u) for forgetful pinging
  double ewmaSessionLength = 0.0;  ///< smoothed ts(u), if configured
};

class AvmonNode final : public sim::Endpoint {
 public:
  /// Shared-config constructor: every node of a scenario points at ONE
  /// immutable AvmonConfig (the million-node memory diet — a per-node copy
  /// costs ~150 B each). The config must already be validate()d.
  AvmonNode(NodeId id, std::shared_ptr<const AvmonConfig> config,
            const MonitorSelector& selector, sim::Simulator& sim,
            sim::Transport& net, BootstrapFn bootstrap, Rng rng);

  /// Convenience for tests and one-off nodes: wraps the value in a private
  /// shared config.
  AvmonNode(NodeId id, AvmonConfig config, const MonitorSelector& selector,
            sim::Simulator& sim, sim::Transport& net, BootstrapFn bootstrap,
            Rng rng);

  AvmonNode(const AvmonNode&) = delete;
  AvmonNode& operator=(const AvmonNode&) = delete;

  // ---- lifecycle (driven by the churn player / application) ----

  /// Brings the node up and runs the joining sub-protocol. `firstJoin`
  /// selects the full JOIN weight (birth) vs. the downtime-pro-rated weight
  /// (rejoin). Also starts the periodic protocol and monitoring timers.
  void join(bool firstJoin);

  /// Takes the node down (leave or crash — indistinguishable). Coarse view
  /// is retained in persistent storage but timers stop; PS/TS persist.
  void leave();

  bool isAlive() const noexcept { return alive_; }

  // ---- observable state ----

  const NodeId& id() const noexcept { return id_; }
  const AvmonConfig& config() const noexcept { return *config_; }

  /// Binds this node to row `slot` of a struct-of-arrays probe table (see
  /// node_state.hpp) and publishes the current state into it. The table
  /// must outlive the node and already cover `slot`.
  void bindStateSlot(soa::NodeStateTable* table, std::uint32_t slot);
  std::uint32_t stateSlot() const noexcept { return soaSlot_; }
  const std::vector<NodeId>& coarseView() const noexcept { return cv_; }
  const std::unordered_set<NodeId>& pingingSet() const noexcept { return ps_; }
  const std::unordered_map<NodeId, TargetRecord>& targetSet() const noexcept {
    return ts_;
  }
  const NodeMetrics& metrics() const noexcept { return metrics_; }

  /// Entries currently held by the NOTIFY dedup cache (both generations).
  /// Bounded by AvmonConfig::notifyDedupMax and cleared on leave().
  std::size_t notifyDedupCacheSize() const noexcept {
    return notifiedPairs_.size();
  }

  /// |CV| + |PS| + |TS|: the paper's per-node memory metric.
  std::size_t memoryEntries() const noexcept {
    return cv_.size() + ps_.size() + ts_.size();
  }

  /// Time of the k-th monitor discovery (k counted from 1) measured from
  /// this node's first join, or nullopt if fewer than k monitors have been
  /// discovered. Feeds the paper's discovery-time figures.
  std::optional<SimDuration> discoveryDelay(std::size_t k) const;

  /// The "l out of K" reporting policy (Section 3.3): this node's choice
  /// of up to `l` of its own monitors. A consumer verifies each against
  /// the selection scheme before trusting it.
  std::vector<NodeId> reportMonitors(std::size_t l) const;

  /// This monitor's availability estimate for `target`, or nullopt if the
  /// target is not in TS. Honest nodes report the history estimate;
  /// overreporters (see setOverreporting) claim 100%.
  std::optional<double> availabilityEstimateOf(const NodeId& target) const;

  /// Makes this node misreport 100% availability for everything it
  /// monitors — the attack of the paper's Figure 20.
  void setOverreporting(bool on) noexcept { overreporting_ = on; }

  /// Enlists this node in a collusion coalition (paper Section 4.3): it
  /// claims 100% availability for any monitored target in `victims`.
  /// Forged NOTIFYs would be caught by receivers' re-verification, so the
  /// coalition's only leverage is lying about targets the selection hash
  /// legitimately assigned to it. Pass nullptr to leave the coalition.
  void setCollusion(
      std::shared_ptr<const std::unordered_set<NodeId>> victims) noexcept {
    collusionVictims_ = std::move(victims);
  }

  /// Makes this node wipe its persistent storage (CV, PS, TS) on every
  /// leave(), violating the Section 3.3 persistence assumption — the
  /// "forgetful node" failure mode the robustness scenarios measure.
  void setAmnesia(bool on) noexcept { amnesiac_ = on; }

  // ---- Endpoint (transport-facing side of the protocol) ----

  /// One-way delivery: exhaustive dispatch over the closed Message variant
  /// to the JOIN / NOTIFY / force-add handlers.
  void onMessage(const NodeId& from, const sim::Message& message) override;

  /// RPC target side: answers liveness pings, serves coarse-view fetches,
  /// performs the CYCLON-style half-view swap, and records monitoring-ping
  /// arrivals for PR2. Exhaustive over the closed RpcRequest variant.
  sim::RpcResponse onRpc(const NodeId& from,
                         const sim::RpcRequest& request) override;

 private:
  // One protocol-period step of Figure 2.
  void protocolTick();
  // One monitoring-period step of Section 3.3.
  void monitoringTick();

  void handleJoin(const JoinMessage& msg);
  void handleNotify(const NotifyMessage& msg);
  void handleForceAdd(const ForceAddMessage& msg);

  // Adds `id` to the coarse view if absent (evicting a random victim when
  // full). Never adds self. Returns true if added.
  bool addToCoarseView(const NodeId& id);

  // Counts one protocol-level consistency evaluation and returns the
  // verdict "u monitors v".
  bool checkCondition(const NodeId& u, const NodeId& v);

  // Cross-checks all (u,v) pairs of Figure 2 between our view and the
  // fetched view `other` (views already extended with {self, w}).
  void discoverPairs(const std::vector<NodeId>& mine,
                     const std::vector<NodeId>& theirs);

  // Reshuffle step: new CV = cvs random distinct entries of old ∪ fetched ∪ {w}.
  void reshuffleCoarseView(const std::vector<NodeId>& fetched, const NodeId& w);

  // CYCLON-style alternative: trade half our entries for half of w's via a
  // SwapRequest exchange.
  void reshuffleBySwap(const NodeId& w);

  // RPC target side of the swap: absorbs `offered`, hands back an
  // equal-sized random slice of its own view. Pointer-conserving up to
  // duplicate collapses.
  std::vector<NodeId> acceptExchange(const NodeId& from,
                                     const std::vector<NodeId>& offered);

  // Records a monitoring-ping arrival (PR2 baseline).
  void acceptMonitoringPing();

  // Removes and returns up to `count` random entries from the coarse view.
  std::vector<NodeId> takeRandomEntries(std::size_t count);

  // Sends one monitoring ping and records the outcome.
  void pingTarget(const NodeId& target, TargetRecord& rec);

  // Copies the probe-hot scalars into the bound NodeStateTable row (no-op
  // when unbound). Called at the end of every externally driven mutation
  // so the row is exact whenever the world is quiescent.
  void publishState();

  NodeId id_;
  std::shared_ptr<const AvmonConfig> config_;
  const MonitorSelector& selector_;
  sim::Simulator& sim_;
  sim::Transport& net_;
  BootstrapFn bootstrap_;
  Rng rng_;

  bool alive_ = false;
  std::uint64_t epoch_ = 0;  ///< invalidates timers from previous sessions
  SimTime lastLeaveTime_ = -1;
  SimTime firstJoinTime_ = -1;
  SimTime sessionStartTime_ = -1;

  // The coarse view is a plain vector: membership checks scan it linearly
  // (|CV| <= cvs, a handful to ~130 entries), which beats the hash-set
  // mirror it used to carry — that mirror cost ~50 heap bytes per entry
  // per node, the single biggest per-node line item at million-node scale.
  std::vector<NodeId> cv_;
  std::unordered_set<NodeId> ps_;
  std::unordered_map<NodeId, TargetRecord> ts_;

  std::vector<SimTime> psDiscoveryTimes_;  // absolute time of k-th PS entry
  SimTime lastMonitoringPingReceived_ = -1;
  NotifyDedupCache notifiedPairs_;  // generational NOTIFY dedup cache

  // Struct-of-arrays probe mirror (see node_state.hpp); null until the
  // owning protocol binds a row.
  soa::NodeStateTable* soa_ = nullptr;
  std::uint32_t soaSlot_ = 0;

  bool overreporting_ = false;
  // Non-null while colluding: the shared victim set this node lies about.
  std::shared_ptr<const std::unordered_set<NodeId>> collusionVictims_;
  bool amnesiac_ = false;
  NodeMetrics metrics_;
};

}  // namespace avmon
