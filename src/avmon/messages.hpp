// Wire messages of the AVMON protocol.
//
// Since the typed-transport redesign the wire format is a closed sum type
// owned by the transport layer: every one-way payload is an alternative of
// `sim::Message` (a std::variant, see sim/message.hpp) and every
// synchronous exchange is a `sim::RpcRequest`/`sim::RpcResponse` pair
// (sim/rpc.hpp). Receiver dispatch is an exhaustive std::visit, so an
// unhandled message type is a compile error, and wire-size accounting
// (8 B per ping, 8 B per coarse-view entry, 6 B ids — the paper's Section
// 5.1 numbers) lives on the types themselves.
//
// This header re-exports the protocol's own messages into namespace avmon
// so protocol code reads as in the paper: JOIN (Figure 1), NOTIFY
// (Figure 2), and the PR2 force-add (Section 5.4). To add a protocol
// message, add the struct to sim/message.hpp's variant and alias it here.
#pragma once

#include "sim/message.hpp"
#include "sim/rpc.hpp"

namespace avmon {

/// Figure 1: JOIN(x, c) — origin x asks receivers to add it to their
/// coarse views and split-forward the remaining weight.
using JoinMessage = sim::JoinMessage;

/// Figure 2: NOTIFY(u, v) — some node discovered that u ∈ PS(v), i.e. u
/// should monitor v. Sent to both u and v, who re-verify before acting.
using NotifyMessage = sim::NotifyMessage;

/// Section 5.4 "PR2": a node that went unpinged for two monitoring periods
/// forces itself back into the coarse views of its own CV members.
using ForceAddMessage = sim::ForceAddMessage;

}  // namespace avmon
