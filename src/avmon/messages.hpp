// Wire messages of the AVMON protocol (carried as std::any payloads over
// the simulated network). Sizes below follow the paper's accounting: 8 B
// per ping, 8 B per coarse-view entry, and ids are 6 B on the wire.
#pragma once

#include "common/node_id.hpp"

namespace avmon {

/// Figure 1: JOIN(x, c) — origin x asks receivers to add it to their
/// coarse views and split-forward the remaining weight.
struct JoinMessage {
  NodeId origin;
  int weight = 0;

  static constexpr std::size_t kBytes = 12;  // 6 B id + 4 B weight + header
};

/// Figure 2: NOTIFY(u, v) — some node discovered that u ∈ PS(v), i.e. u
/// should monitor v. Sent to both u and v, who re-verify before acting.
struct NotifyMessage {
  NodeId monitor;  ///< u: the node that satisfies the consistency condition
  NodeId target;   ///< v: the node to be monitored

  static constexpr std::size_t kBytes = 16;  // two 6 B ids + header
};

/// Section 5.4 "PR2": a node that went unpinged for two monitoring periods
/// forces itself back into the coarse views of its own CV members.
struct ForceAddMessage {
  NodeId origin;

  static constexpr std::size_t kBytes = 10;  // 6 B id + header
};

}  // namespace avmon
