#include "avmon/monitor_selector.hpp"

#include <array>
#include <stdexcept>

namespace avmon {
namespace {

std::uint64_t packId(const NodeId& id) noexcept {
  return (static_cast<std::uint64_t>(id.ip()) << 16) | id.port();
}

// splitmix-style combine of the two 48-bit identities; the memo table size
// is a power of two, so only well-mixed bits may index it. Lookup and
// rehash must agree on this function bit-for-bit.
std::uint64_t mixPair(std::uint64_t observer, std::uint64_t target) noexcept {
  std::uint64_t h = observer * 0x9E3779B97F4A7C15ULL ^ target;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 31);
}

}  // namespace

HashMonitorSelector::HashMonitorSelector(const hash::HashFunction& hash,
                                         unsigned k, std::size_t systemSize)
    : hash_(hash), k_(k), systemSize_(systemSize) {
  if (k_ < 1) throw std::invalid_argument("HashMonitorSelector: K must be >= 1");
  if (systemSize_ < 2)
    throw std::invalid_argument("HashMonitorSelector: N must be >= 2");
  threshold_ =
      static_cast<double>(k_) / static_cast<double>(systemSize_);
}

double HashMonitorSelector::hashPoint(const NodeId& observer,
                                      const NodeId& target) const {
  // 12-byte message: observer id then target id, matching the paper's
  // H(y, x) with y the (candidate) monitor.
  std::array<std::uint8_t, 2 * NodeId::kWireSize> buf;
  const auto yb = observer.toBytes();
  const auto xb = target.toBytes();
  std::copy(yb.begin(), yb.end(), buf.begin());
  std::copy(xb.begin(), xb.end(), buf.begin() + NodeId::kWireSize);
  return hash_.normalized(buf);
}

bool HashMonitorSelector::isMonitor(const NodeId& observer,
                                    const NodeId& target) const {
  if (observer == target) return false;
  return hashPoint(observer, target) <= threshold_;
}

std::string HashMonitorSelector::describe() const {
  return "hash(" + hash_.name() + "), K=" + std::to_string(k_) +
         ", N=" + std::to_string(systemSize_);
}

bool MemoizedMonitorSelector::isMonitor(const NodeId& observer,
                                        const NodeId& target) const {
  const std::uint64_t obs = packId(observer);
  const std::uint64_t tgt = packId(target);
  const std::uint64_t h = mixPair(obs, tgt);

  const std::size_t mask = slots_.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (slots_[i].targetBits != 0) {
    if (slots_[i].observer == obs &&
        (slots_[i].targetBits & kIdMask) == tgt) {
      return (slots_[i].targetBits & kVerdictBit) != 0;
    }
    i = (i + 1) & mask;
  }

  const bool verdict = inner_.isMonitor(observer, target);
  if (count_ * 2 >= slots_.size()) {
    if (slots_.size() >= kMaxSlots) return verdict;  // cache full: passthrough
    grow();
    i = static_cast<std::size_t>(h) & (slots_.size() - 1);
    while (slots_[i].targetBits != 0) i = (i + 1) & (slots_.size() - 1);
  }
  slots_[i] = Slot{obs, kOccupiedBit | (verdict ? kVerdictBit : 0) | tgt};
  ++count_;
  return verdict;
}

void MemoizedMonitorSelector::grow() const {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& slot : old) {
    if (slot.targetBits == 0) continue;
    const std::uint64_t h = mixPair(slot.observer, slot.targetBits & kIdMask);
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i].targetBits != 0) i = (i + 1) & mask;
    slots_[i] = slot;
  }
}

}  // namespace avmon
