#include "avmon/monitor_selector.hpp"

#include <array>
#include <stdexcept>

namespace avmon {
namespace {

std::uint64_t packId(const NodeId& id) noexcept {
  return (static_cast<std::uint64_t>(id.ip()) << 16) | id.port();
}

}  // namespace

HashMonitorSelector::HashMonitorSelector(const hash::HashFunction& hash,
                                         unsigned k, std::size_t systemSize)
    : hash_(hash), k_(k), systemSize_(systemSize) {
  if (k_ < 1) throw std::invalid_argument("HashMonitorSelector: K must be >= 1");
  if (systemSize_ < 2)
    throw std::invalid_argument("HashMonitorSelector: N must be >= 2");
  threshold_ =
      static_cast<double>(k_) / static_cast<double>(systemSize_);
}

double HashMonitorSelector::hashPoint(const NodeId& observer,
                                      const NodeId& target) const {
  // 12-byte message: observer id then target id, matching the paper's
  // H(y, x) with y the (candidate) monitor.
  std::array<std::uint8_t, 2 * NodeId::kWireSize> buf;
  const auto yb = observer.toBytes();
  const auto xb = target.toBytes();
  std::copy(yb.begin(), yb.end(), buf.begin());
  std::copy(xb.begin(), xb.end(), buf.begin() + NodeId::kWireSize);
  return hash_.normalized(buf);
}

bool HashMonitorSelector::isMonitor(const NodeId& observer,
                                    const NodeId& target) const {
  if (observer == target) return false;
  return hashPoint(observer, target) <= threshold_;
}

std::string HashMonitorSelector::describe() const {
  return "hash(" + hash_.name() + "), K=" + std::to_string(k_) +
         ", N=" + std::to_string(systemSize_);
}

bool MemoizedMonitorSelector::isMonitor(const NodeId& observer,
                                        const NodeId& target) const {
  const auto key = std::make_pair(packId(observer), packId(target));
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const bool verdict = inner_.isMonitor(observer, target);
  cache_.emplace(key, verdict);
  return verdict;
}

}  // namespace avmon
