#include "avmon/node.hpp"

#include <algorithm>
#include <utility>

namespace avmon {
namespace {

// Open-addressing membership set for the per-fetch pair-dedup pass: the
// keys are already well-mixed 64-bit values, so a masked linear probe
// replaces the node-allocating unordered_set in the hottest protocol loop.
// One instance per thread, recycled across every node's ticks.
class FlatSeenSet {
 public:
  /// Clears the set and sizes it for up to `expected` insertions at a load
  /// factor <= 0.5. Steady state reuses the same storage.
  void beginRound(std::size_t expected) {
    std::size_t want = 64;
    while (want < expected * 2) want <<= 1;
    if (want > slots_.size()) {
      slots_.assign(want, 0);
    } else {
      std::fill(slots_.begin(), slots_.end(), 0);
    }
    hasZero_ = false;
  }

  /// Returns true if `key` was newly inserted, false if already present —
  /// the unordered_set::insert(...).second contract.
  bool insert(std::uint64_t key) {
    if (key == 0) {  // 0 marks empty slots; track it out of band
      const bool fresh = !hasZero_;
      hasZero_ = true;
      return fresh;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(key) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    return true;
  }

 private:
  std::vector<std::uint64_t> slots_;
  bool hasZero_ = false;
};

thread_local FlatSeenSet seenPairsScratch;

// Per-thread scratch for the tick-level view juggling. Each buffer is
// fully assign()ed before every use, so sharing one instance across all
// nodes on a thread is safe — and drops three vectors (~72 B plus their
// heap blocks) from every node, which mattered once nodes number millions.
thread_local std::vector<NodeId> mineScratch;
thread_local std::vector<NodeId> theirsScratch;
thread_local std::vector<NodeId> poolScratch;

}  // namespace

AvmonNode::AvmonNode(NodeId id, std::shared_ptr<const AvmonConfig> config,
                     const MonitorSelector& selector, sim::Simulator& sim,
                     sim::Transport& net, BootstrapFn bootstrap, Rng rng)
    : id_(id),
      config_(std::move(config)),
      selector_(selector),
      sim_(sim),
      net_(net),
      bootstrap_(std::move(bootstrap)),
      rng_(std::move(rng)),
      notifiedPairs_(config_->notifyDedupMax) {
  config_->validate();
  net_.attach(id_, *this);
  // Determinism sentinel: this node's stream is owned by its home shard
  // (inherited from the simulator it lives on; unbound in plain runs).
  AVMON_DET_BIND_LIKE(rng_.detTag, sim_.detTag);
}

AvmonNode::AvmonNode(NodeId id, AvmonConfig config,
                     const MonitorSelector& selector, sim::Simulator& sim,
                     sim::Transport& net, BootstrapFn bootstrap, Rng rng)
    : AvmonNode(id, std::make_shared<const AvmonConfig>(std::move(config)),
                selector, sim, net, std::move(bootstrap), std::move(rng)) {}

void AvmonNode::bindStateSlot(soa::NodeStateTable* table, std::uint32_t slot) {
  soa_ = table;
  soaSlot_ = slot;
  publishState();
}

void AvmonNode::publishState() {
  if (soa_ == nullptr) return;
  const std::uint32_t s = soaSlot_;
  soa_->alive[s] = alive_ ? 1 : 0;
  soa_->cvSize[s] = static_cast<std::uint32_t>(cv_.size());
  soa_->psSize[s] = static_cast<std::uint32_t>(ps_.size());
  soa_->tsSize[s] = static_cast<std::uint32_t>(ts_.size());
  soa_->hashChecks[s] = metrics_.hashChecks;
  soa_->uselessPings[s] = metrics_.uselessPings;
  soa_->firstJoin[s] = firstJoinTime_;
  soa_->firstDiscovery[s] =
      psDiscoveryTimes_.empty() ? -1 : psDiscoveryTimes_.front();
  soa_->lastPingReceived[s] = lastMonitoringPingReceived_;
}

// ---------------------------------------------------------------- lifecycle

void AvmonNode::join(bool firstJoin) {
  if (alive_) return;
  alive_ = true;
  ++epoch_;
  net_.setUp(id_, true);
  sessionStartTime_ = sim_.now();
  if (firstJoinTime_ < 0) firstJoinTime_ = sim_.now();

  // Figure 1: pick a random node; send JOIN with weight cvs on birth, or
  // min(cvs, downtime in protocol periods) on rejoin; inherit its view.
  int weight = static_cast<int>(config_->cvs);
  if (!firstJoin && lastLeaveTime_ >= 0) {
    const auto periodsDown = static_cast<int>(
        (sim_.now() - lastLeaveTime_) / config_->protocolPeriod);
    weight = std::min(weight, std::max(periodsDown, 1));
  }

  const NodeId contact = bootstrap_ ? bootstrap_(id_) : NodeId{};
  if (!contact.isNil()) {
    net_.send(id_, contact, JoinMessage{id_, weight});

    // "Inherit view from this random node": fetch its coarse view to seed
    // ours (charged like a regular view fetch). Like every completion
    // handler below, the epoch guard makes a deferred response landing
    // after leave()/rejoin a no-op; in the instantaneous mode the handler
    // runs inline and the guard always passes.
    const std::uint64_t epochAtSend = epoch_;
    net_.exchangeAsync(
        id_, contact,
        sim::CvFetchRequest{config_->pingBytes,
                            config_->bytesPerEntry * config_->cvs},
        [this, contact,
         epochAtSend](std::optional<sim::CvFetchResponse> fetch) {
          if (!alive_ || epoch_ != epochAtSend) return;
          if (!fetch) return;
          std::vector<NodeId> seed = std::move(fetch->view);
          seed.push_back(contact);
          rng_.shuffle(seed);
          for (const NodeId& n : seed) addToCoarseView(n);
          publishState();
        });
  }

  // Start the two periodic tasks with a random phase so nodes run
  // asynchronously (paper: periods fixed, execution unsynchronized).
  const std::uint64_t epochAtStart = epoch_;
  sim_.every(sim_.now() + static_cast<SimDuration>(
                              rng_.below(static_cast<std::uint64_t>(
                                  config_->protocolPeriod))),
             config_->protocolPeriod, [this, epochAtStart] {
               if (!alive_ || epoch_ != epochAtStart) return false;
               protocolTick();
               return true;
             });
  sim_.every(sim_.now() + static_cast<SimDuration>(
                              rng_.below(static_cast<std::uint64_t>(
                                  config_->monitoringPeriod))),
             config_->monitoringPeriod, [this, epochAtStart] {
               if (!alive_ || epoch_ != epochAtStart) return false;
               monitoringTick();
               return true;
             });
  publishState();
}

void AvmonNode::leave() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;  // cancels the periodic timers at their next firing
  lastLeaveTime_ = sim_.now();
  net_.setUp(id_, false);
  // Per-session state: CV/PS/TS live in persistent storage (paper Section
  // 3.3) and survive the downtime, but the NOTIFY dedup cache and the PR2
  // last-ping baseline describe the session that just ended and must not
  // leak into the next one.
  notifiedPairs_.clear();
  lastMonitoringPingReceived_ = -1;
  sessionStartTime_ = -1;
  if (amnesiac_) {
    // Forgetful failure mode (setAmnesia): the persistent storage the
    // paper assumes survives downtime is lost with the session. Discovery
    // timestamps stay — they describe events that did happen.
    cv_.clear();
    ps_.clear();
    ts_.clear();
  }
  publishState();
}

// -------------------------------------------------------------- coarse view

bool AvmonNode::addToCoarseView(const NodeId& id) {
  // Membership by linear scan: |CV| <= cvs, and the vector's one cache
  // line or two beat the hash-set mirror this used to consult.
  if (id == id_ || id.isNil() ||
      std::find(cv_.begin(), cv_.end(), id) != cv_.end()) {
    return false;
  }
  if (cv_.size() >= config_->cvs) {
    // Evict a uniformly random entry to stay within the cvs bound while
    // keeping the view a random subset.
    const std::size_t victim = rng_.index(cv_.size());
    cv_[victim] = id;
  } else {
    cv_.push_back(id);
  }
  return true;
}

// ----------------------------------------------------------------- messages

void AvmonNode::onMessage(const NodeId& /*from*/, const sim::Message& message) {
  if (!alive_) return;
  // Exhaustive over the closed wire format: a new Message alternative does
  // not compile until this dispatch decides what AVMON does with it.
  std::visit(
      sim::Overloaded{
          [this](const JoinMessage& m) { handleJoin(m); },
          [this](const NotifyMessage& m) { handleNotify(m); },
          [this](const ForceAddMessage& m) { handleForceAdd(m); },
          [](const sim::PresenceMessage&) {},  // baseline schemes' traffic:
          [](const sim::RegisterMessage&) {},  // not part of this protocol
          [](const sim::TextMessage&) {},      // harness-only payload
      },
      message);
  publishState();
}

sim::RpcResponse AvmonNode::onRpc(const NodeId& from,
                                  const sim::RpcRequest& request) {
  sim::RpcResponse response = std::visit(
      sim::Overloaded{
          [](const sim::PingRequest&) -> sim::RpcResponse {
            // Figure 2 step 1: answering at all is the liveness proof.
            return sim::PingResponse{};
          },
          [this](const sim::CvFetchRequest&) -> sim::RpcResponse {
            return sim::CvFetchResponse{cv_};
          },
          [&](const sim::SwapRequest& req) -> sim::RpcResponse {
            return sim::SwapResponse{acceptExchange(from, req.offered)};
          },
          [this](const sim::MonitorPingRequest&) -> sim::RpcResponse {
            acceptMonitoringPing();
            return sim::MonitorPingResponse{true};
          },
      },
      request);
  publishState();
  return response;
}

void AvmonNode::handleJoin(const JoinMessage& msg) {
  // Figure 1, receiver side.
  int weight = msg.weight;
  if (weight <= 0 || msg.origin == id_) return;
  ++metrics_.joinsReceived;
  if (std::find(cv_.begin(), cv_.end(), msg.origin) == cv_.end()) {
    addToCoarseView(msg.origin);
    ++metrics_.joinAdds;
    --weight;
  }
  if (weight <= 0 || cv_.empty()) return;

  const int low = weight / 2;
  const int high = weight - low;
  if (high > 0) {
    net_.send(id_, cv_[rng_.index(cv_.size())], JoinMessage{msg.origin, high});
    ++metrics_.joinsForwarded;
  }
  if (low > 0) {
    net_.send(id_, cv_[rng_.index(cv_.size())], JoinMessage{msg.origin, low});
    ++metrics_.joinsForwarded;
  }
}

void AvmonNode::handleNotify(const NotifyMessage& msg) {
  // Section 3.3: re-check the consistency condition before trusting the
  // notification (a selfish node could forge NOTIFYs for its colluders).
  if (msg.target == id_ && msg.monitor != id_) {
    if (!ps_.count(msg.monitor) && checkCondition(msg.monitor, id_)) {
      ps_.insert(msg.monitor);
      psDiscoveryTimes_.push_back(sim_.now());
    }
  }
  if (msg.monitor == id_ && msg.target != id_) {
    if (!ts_.count(msg.target) && checkCondition(id_, msg.target)) {
      TargetRecord rec;
      rec.history = history::makeHistory(config_->historyStyle,
                                         config_->historyParam);
      ts_.emplace(msg.target, std::move(rec));
    }
  }
}

void AvmonNode::handleForceAdd(const ForceAddMessage& msg) {
  addToCoarseView(msg.origin);
}

// ------------------------------------------------------------ protocol tick

bool AvmonNode::checkCondition(const NodeId& u, const NodeId& v) {
  ++metrics_.hashChecks;
  return selector_.isMonitor(u, v);
}

void AvmonNode::discoverPairs(const std::vector<NodeId>& mine,
                              const std::vector<NodeId>& theirs) {
  // Check every ordered cross pair (u,v), u≠v, in both directions, sending
  // NOTIFY(u,v) to u and v whenever "u monitors v" holds. Duplicate pairs
  // (nodes present in both views) are filtered via a scratch set so each
  // unordered pair is evaluated once per fetch, in both orientations.
  FlatSeenSet& seen = seenPairsScratch;
  seen.beginRound(mine.size() * theirs.size());
  const auto pairKey = [](const NodeId& a, const NodeId& b) {
    const std::uint64_t x = (static_cast<std::uint64_t>(a.ip()) << 16) | a.port();
    const std::uint64_t y = (static_cast<std::uint64_t>(b.ip()) << 16) | b.port();
    return splitmix64Mix(std::min(x, y)) ^ std::max(x, y);
  };

  for (const NodeId& u : mine) {
    for (const NodeId& v : theirs) {
      if (u == v) continue;
      if (!seen.insert(pairKey(u, v))) continue;
      for (const auto& [mon, tgt] : {std::pair{u, v}, std::pair{v, u}}) {
        if (checkCondition(mon, tgt)) {
          if (config_->notifyDedup) {
            // Bounded generational cache (NotifyDedupCache): a false
            // return means this node already told both parties within the
            // last two epochs; the occasional re-NOTIFY after an epoch
            // ages out is idempotent at the receiver.
            const std::uint64_t dedupKey =
                splitmix64Mix(pairKey(mon, tgt)) ^ std::hash<NodeId>{}(mon);
            if (!notifiedPairs_.insert(dedupKey)) {
              continue;
            }
          }
          net_.send(id_, mon, NotifyMessage{mon, tgt});
          net_.send(id_, tgt, NotifyMessage{mon, tgt});
          metrics_.notifiesSent += 2;
        }
      }
    }
  }
}

void AvmonNode::reshuffleCoarseView(const std::vector<NodeId>& fetched,
                                    const NodeId& w) {
  std::vector<NodeId>& pool = poolScratch;
  pool.assign(cv_.begin(), cv_.end());
  pool.insert(pool.end(), fetched.begin(), fetched.end());
  pool.push_back(w);

  rng_.shuffle(pool);
  cv_.clear();
  for (const NodeId& n : pool) {
    if (cv_.size() >= config_->cvs) break;
    if (n == id_ || n.isNil() ||
        std::find(cv_.begin(), cv_.end(), n) != cv_.end()) {
      continue;
    }
    cv_.push_back(n);
  }
}

void AvmonNode::protocolTick() {
  // Step 1: liveness-probe one random coarse view entry. The probe is
  // fire-and-forget: with deferred RPCs the tick proceeds while it is in
  // flight, and the unresponsive entry is dropped when the timeout lands.
  const std::uint64_t epochAtTick = epoch_;
  if (!cv_.empty()) {
    const NodeId z = cv_[rng_.index(cv_.size())];
    net_.exchangeAsync(id_, z, sim::PingRequest{config_->pingBytes},
                       [this, z,
                        epochAtTick](std::optional<sim::PingResponse> pong) {
                         if (!alive_ || epoch_ != epochAtTick) return;
                         if (pong) return;
                         const auto it = std::find(cv_.begin(), cv_.end(), z);
                         if (it != cv_.end()) cv_.erase(it);
                         publishState();
                       });
  }

  // PR2 (Section 5.4): if nobody has monitoring-pinged us for two
  // successive periods, re-advertise ourselves to our CV members. This is
  // how indegree-starved nodes (never discovered, so never pinged) pull
  // themselves back into circulation; the baseline is the session start so
  // a freshly joined node waits two full periods before crying.
  const SimTime pingBaseline =
      std::max(lastMonitoringPingReceived_, sessionStartTime_);
  if (config_->pr2 &&
      sim_.now() - pingBaseline > 2 * config_->monitoringPeriod) {
    for (const NodeId& n : cv_) {
      net_.send(id_, n, ForceAddMessage{id_});
    }
  }

  // Step 2: fetch the coarse view of a random alive member w.
  if (cv_.empty()) return;
  const NodeId w = cv_[rng_.index(cv_.size())];
  net_.exchangeAsync(
      id_, w,
      sim::CvFetchRequest{config_->pingBytes,
                          config_->bytesPerEntry * (cv_.size() + 1)},
      [this, w, epochAtTick](std::optional<sim::CvFetchResponse> fetch) {
        if (!alive_ || epoch_ != epochAtTick) return;
        if (!fetch) return;  // w was down; try again next period
        ++metrics_.cvFetches;

        const std::vector<NodeId> fetched = std::move(fetch->view);

        // Step 3: consistency checks over (CV(x) ∪ {x,w}) × (CV(w) ∪ {x,w}).
        mineScratch.assign(cv_.begin(), cv_.end());
        mineScratch.push_back(id_);
        if (std::find(cv_.begin(), cv_.end(), w) == cv_.end()) {
          mineScratch.push_back(w);
        }
        theirsScratch.assign(fetched.begin(), fetched.end());
        theirsScratch.push_back(id_);
        theirsScratch.push_back(w);
        discoverPairs(mineScratch, theirsScratch);

        // Step 4: reshuffle the coarse view.
        if (config_->shuffle == ShufflePolicy::kSwap) {
          reshuffleBySwap(w);
        } else {
          reshuffleCoarseView(fetched, w);
        }
        publishState();
      });
  publishState();
}

std::vector<NodeId> AvmonNode::takeRandomEntries(std::size_t count) {
  std::vector<NodeId> taken;
  taken.reserve(std::min(count, cv_.size()));
  while (taken.size() < count && !cv_.empty()) {
    const std::size_t idx = rng_.index(cv_.size());
    taken.push_back(cv_[idx]);
    cv_[idx] = cv_.back();
    cv_.pop_back();
  }
  return taken;
}

void AvmonNode::reshuffleBySwap(const NodeId& w) {
  const std::size_t half = std::max<std::size_t>(1, cv_.size() / 2);
  std::vector<NodeId> offer = takeRandomEntries(half);
  // Build the request before the call: it copies `offer`, which the
  // completion handler then owns (argument evaluation order would
  // otherwise be free to move `offer` out before the request reads it).
  sim::SwapRequest request{offer, config_->bytesPerEntry, half};
  net_.exchangeAsync(
      id_, w, std::move(request),
      // No epoch guard here, deliberately: the handler only touches the
      // coarse view, which is persistent storage that survives leave()
      // (paper Section 3.3). A deferred settlement landing after a
      // leave/rejoin must still complete the trade — restore the offer on
      // timeout, merge the peer's half on success — or the view would
      // permanently leak the in-flight entries.
      [this, w, offer = std::move(offer)](
          std::optional<sim::SwapResponse> swap) {
        if (!swap) {
          // Timed out (w answered the fetch moments ago, so this is an
          // injected fault or a deferred-mode deadline). The offer never
          // left — put the entries back rather than leak view slots.
          for (const NodeId& n : offer) addToCoarseView(n);
          publishState();
          return;
        }
        for (const NodeId& n : swap->given) addToCoarseView(n);
        // Like CYCLON, the initiator also refreshes its pointer to the peer.
        addToCoarseView(w);
        publishState();
      });
}

std::vector<NodeId> AvmonNode::acceptExchange(
    const NodeId& /*from*/, const std::vector<NodeId>& offered) {
  std::vector<NodeId> given = takeRandomEntries(offered.size());
  for (const NodeId& n : offered) addToCoarseView(n);
  return given;
}

// ---------------------------------------------------------------- monitoring

void AvmonNode::pingTarget(const NodeId& target, TargetRecord& rec) {
  ++metrics_.monitoringPingsSent;
  // `rec` lives in ts_, whose entries are never erased and whose mapped
  // values are address-stable across rehashes, so the deferred handler may
  // safely outlive this tick.
  const std::uint64_t epochAtSend = epoch_;
  net_.exchangeAsync(
      id_, target, sim::MonitorPingRequest{config_->pingBytes},
      [this, &rec, epochAtSend](std::optional<sim::MonitorPingResponse> ack) {
        if (!alive_ || epoch_ != epochAtSend) return;
        const SimTime now = sim_.now();
        const bool up = ack && ack->acknowledged;
        rec.history->record(now, up);

        if (up) {
          if (rec.downSince >= 0 || rec.sessionStart < 0) rec.sessionStart = now;
          rec.downSince = -1;
        } else {
          ++metrics_.uselessPings;
          if (rec.downSince < 0) {
            // Transition up -> down: close the observed session, remember ts(u).
            if (rec.sessionStart >= 0) {
              rec.lastSessionLength = std::max<SimDuration>(
                  now - rec.sessionStart, config_->monitoringPeriod);
              const double alpha = config_->forgetful.ewmaAlpha;
              rec.ewmaSessionLength =
                  rec.ewmaSessionLength <= 0
                      ? static_cast<double>(rec.lastSessionLength)
                      : alpha * static_cast<double>(rec.lastSessionLength) +
                            (1.0 - alpha) * rec.ewmaSessionLength;
            }
            rec.downSince = now;
          }
        }
        publishState();
      });
}

void AvmonNode::monitoringTick() {
  const SimTime now = sim_.now();
  // lint:allow(unordered-iter, ts_ hash order is a pure function of this node's insertion history on a fixed stdlib; the golden fingerprints pin exactly this ping/draw order, so converting it would change every pinned metric)
  for (auto& [target, rec] : ts_) {
    const bool longDead =
        config_->forgetful.enabled && rec.downSince >= 0 &&
        (now - rec.downSince) > config_->forgetful.tau;
    if (longDead) {
      // Forgetful pinging: ping with probability c·ts/(ts + t) so the
      // target still receives an expected c pings from each monitor
      // between two successive joins.
      const double observed =
          config_->forgetful.ewmaSessionLength && rec.ewmaSessionLength > 0
              ? rec.ewmaSessionLength
              : static_cast<double>(rec.lastSessionLength);
      const double ts =
          std::max(observed, static_cast<double>(config_->monitoringPeriod));
      const double t = static_cast<double>(now - rec.downSince);
      if (!rng_.chance(config_->forgetful.c * ts / (ts + t))) {
        ++metrics_.forgetfulSuppressed;
        continue;
      }
    }
    pingTarget(target, rec);
  }
  publishState();
}

void AvmonNode::acceptMonitoringPing() {
  lastMonitoringPingReceived_ = sim_.now();
}

// ------------------------------------------------------------------- queries

std::optional<SimDuration> AvmonNode::discoveryDelay(std::size_t k) const {
  if (k == 0 || k > psDiscoveryTimes_.size() || firstJoinTime_ < 0)
    return std::nullopt;
  return psDiscoveryTimes_[k - 1] - firstJoinTime_;
}

std::vector<NodeId> AvmonNode::reportMonitors(std::size_t l) const {
  std::vector<NodeId> out;
  out.reserve(std::min(l, ps_.size()));
  // lint:allow(unordered-iter, which l monitors get reported is pinned by the golden fingerprints; ps_ hash order is deterministic for a fixed insertion history and stdlib)
  for (const NodeId& m : ps_) {
    if (out.size() >= l) break;
    out.push_back(m);
  }
  return out;
}

std::optional<double> AvmonNode::availabilityEstimateOf(
    const NodeId& target) const {
  const auto it = ts_.find(target);
  if (it == ts_.end()) return std::nullopt;
  if (overreporting_) return 1.0;
  if (collusionVictims_ != nullptr && collusionVictims_->count(target) != 0) {
    return 1.0;  // coalition lie for targeted victims (Section 4.3)
  }
  return it->second.history->estimate();
}

}  // namespace avmon
