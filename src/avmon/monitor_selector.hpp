// Monitor selection: who is allowed to monitor whom.
//
// AVMON's discovery protocol works with *any* consistent and verifiable
// selection scheme (paper Section 3.2); the scheme itself is pluggable
// behind MonitorSelector. The paper's concrete scheme (Section 3.1,
// borrowed from AVCast) is the hash condition
//
//     y ∈ PS(x)  ⇔  H(y ‖ x) ≤ K/N
//
// over the 6-byte wire encodings of the two node ids, giving an expected
// K monitors per node, chosen consistently, verifiably, and uniformly at
// random.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "hash/hash_function.hpp"

namespace avmon {

/// Decides the monitoring relation. Implementations must be deterministic
/// (same answer forever — the Consistency property) and computable by any
/// third party from the two ids alone (the Verifiability property).
class MonitorSelector {
 public:
  virtual ~MonitorSelector() = default;

  /// True iff `observer` ∈ PS(`target`), i.e. observer monitors target.
  /// Never true when observer == target (self-monitoring is the
  /// self-reporting anti-pattern AVMON exists to avoid).
  virtual bool isMonitor(const NodeId& observer, const NodeId& target) const = 0;

  /// For reports.
  virtual std::string describe() const = 0;
};

/// The paper's hash-based selection scheme.
class HashMonitorSelector final : public MonitorSelector {
 public:
  /// `k` is the expected pinging-set size (paper: K = log2 N);
  /// `systemSize` is the a-priori stable size N. Requires k >= 1,
  /// systemSize >= 2, hash outliving this object.
  HashMonitorSelector(const hash::HashFunction& hash, unsigned k,
                      std::size_t systemSize);

  bool isMonitor(const NodeId& observer, const NodeId& target) const override;
  std::string describe() const override;

  unsigned k() const noexcept { return k_; }
  std::size_t systemSize() const noexcept { return systemSize_; }

  /// The normalized hash H(observer ‖ target) in [0,1) — exposed so tests
  /// can validate uniformity and the threshold comparison.
  double hashPoint(const NodeId& observer, const NodeId& target) const;

  /// The decision threshold K/N.
  double threshold() const noexcept { return threshold_; }

 private:
  const hash::HashFunction& hash_;
  unsigned k_;
  std::size_t systemSize_;
  double threshold_;
};

/// Memoizing decorator: caches pair verdicts so repeated consistency checks
/// across millions of simulated rounds don't recompute the hash. A selector
/// is a pure function of the two ids, so memoization cannot change any
/// verdict; protocol-level computation metrics are counted by the *nodes*
/// per check performed, so it is invisible to the measured results too.
/// This is the hottest lookup in a simulated run (a 600-node scenario asks
/// ~10^8 times about ~10^5 distinct pairs), so the cache is a flat
/// open-addressing table — one probe, no allocation per pair — bounded by
/// kMaxSlots; once full, further distinct pairs are computed directly.
/// Not thread-safe: share one per single-threaded simulation world (each
/// ParallelScenarioRunner worker owns its own).
class MemoizedMonitorSelector final : public MonitorSelector {
 public:
  explicit MemoizedMonitorSelector(const MonitorSelector& inner)
      : inner_(inner), slots_(kInitialSlots) {}

  bool isMonitor(const NodeId& observer, const NodeId& target) const override;
  std::string describe() const override {
    return inner_.describe() + " (memoized)";
  }

  std::size_t cacheSize() const noexcept { return count_; }

 private:
  // One 16-byte slot: the packed observer id, and the packed target id
  // with an occupancy marker and the cached verdict in its free high bits
  // (ids occupy 48 bits).
  struct Slot {
    std::uint64_t observer = 0;
    std::uint64_t targetBits = 0;  // kOccupiedBit | verdict<<48 | target
  };
  static constexpr std::uint64_t kOccupiedBit = 1ULL << 63;
  static constexpr std::uint64_t kVerdictBit = 1ULL << 48;
  static constexpr std::uint64_t kIdMask = (1ULL << 48) - 1;
  static constexpr std::size_t kInitialSlots = 1u << 12;
  static constexpr std::size_t kMaxSlots = 1u << 21;  // 32 MiB ceiling

  void grow() const;

  const MonitorSelector& inner_;
  mutable std::vector<Slot> slots_;
  mutable std::size_t count_ = 0;
};

}  // namespace avmon
