// Monitor selection: who is allowed to monitor whom.
//
// AVMON's discovery protocol works with *any* consistent and verifiable
// selection scheme (paper Section 3.2); the scheme itself is pluggable
// behind MonitorSelector. The paper's concrete scheme (Section 3.1,
// borrowed from AVCast) is the hash condition
//
//     y ∈ PS(x)  ⇔  H(y ‖ x) ≤ K/N
//
// over the 6-byte wire encodings of the two node ids, giving an expected
// K monitors per node, chosen consistently, verifiably, and uniformly at
// random.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/node_id.hpp"
#include "hash/hash_function.hpp"

namespace avmon {

/// Decides the monitoring relation. Implementations must be deterministic
/// (same answer forever — the Consistency property) and computable by any
/// third party from the two ids alone (the Verifiability property).
class MonitorSelector {
 public:
  virtual ~MonitorSelector() = default;

  /// True iff `observer` ∈ PS(`target`), i.e. observer monitors target.
  /// Never true when observer == target (self-monitoring is the
  /// self-reporting anti-pattern AVMON exists to avoid).
  virtual bool isMonitor(const NodeId& observer, const NodeId& target) const = 0;

  /// For reports.
  virtual std::string describe() const = 0;
};

/// The paper's hash-based selection scheme.
class HashMonitorSelector final : public MonitorSelector {
 public:
  /// `k` is the expected pinging-set size (paper: K = log2 N);
  /// `systemSize` is the a-priori stable size N. Requires k >= 1,
  /// systemSize >= 2, hash outliving this object.
  HashMonitorSelector(const hash::HashFunction& hash, unsigned k,
                      std::size_t systemSize);

  bool isMonitor(const NodeId& observer, const NodeId& target) const override;
  std::string describe() const override;

  unsigned k() const noexcept { return k_; }
  std::size_t systemSize() const noexcept { return systemSize_; }

  /// The normalized hash H(observer ‖ target) in [0,1) — exposed so tests
  /// can validate uniformity and the threshold comparison.
  double hashPoint(const NodeId& observer, const NodeId& target) const;

  /// The decision threshold K/N.
  double threshold() const noexcept { return threshold_; }

 private:
  const hash::HashFunction& hash_;
  unsigned k_;
  std::size_t systemSize_;
  double threshold_;
};

/// Memoizing decorator: caches pair verdicts so repeated consistency checks
/// across millions of simulated rounds don't recompute MD5. Protocol-level
/// computation metrics are counted by the *nodes* per check performed, so
/// memoization is invisible to the measured results. Not thread-safe (the
/// simulator is single-threaded).
class MemoizedMonitorSelector final : public MonitorSelector {
 public:
  explicit MemoizedMonitorSelector(const MonitorSelector& inner)
      : inner_(inner) {}

  bool isMonitor(const NodeId& observer, const NodeId& target) const override;
  std::string describe() const override {
    return inner_.describe() + " (memoized)";
  }

  std::size_t cacheSize() const noexcept { return cache_.size(); }

 private:
  struct PairHash {
    std::size_t operator()(
        const std::pair<std::uint64_t, std::uint64_t>& p) const noexcept {
      // splitmix-style combine of the two 48-bit identities.
      std::uint64_t x = p.first * 0x9E3779B97F4A7C15ULL ^ p.second;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  const MonitorSelector& inner_;
  mutable std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, bool,
                             PairHash>
      cache_;
};

}  // namespace avmon
