// AVMON protocol configuration and the optimal coarse-view-size variants.
//
// The coarse view size cvs controls the tradeoff analyzed in paper
// Section 4.2: memory/bandwidth M = O(cvs), expected discovery time
// D ≈ N/cvs², computation C = O(cvs²) per round. The derived optima:
//
//   Optimal-MD   cvs = ∛(2N)   minimizes M + D
//   Optimal-MDC  cvs = ⁴√N     minimizes M + C + D
//   Optimal-DC   cvs = ⁴√N     minimizes C + D (same optimum as MDC)
//
// The paper's experiments run cvs = 4·⁴√N ("a factor of 4 above
// cvs_Optimal-MDC for performance reasons"), K = log2(N), 1-minute protocol
// and monitoring periods, and forgetful pinging with τ = 2 min, c = 1.
#pragma once

#include <cstddef>
#include <string>

#include "common/time.hpp"

namespace avmon {

/// Which analytic cvs rule to apply.
enum class CvsVariant {
  kLogN,       ///< cvs = log2 N (Table 1 row 3)
  kOptimalMD,  ///< cvs = ∛(2N)
  kOptimalMDC, ///< cvs = ⁴√N
  kOptimalDC,  ///< cvs = ⁴√N (same as MDC)
  kPaperEval,  ///< cvs = 4·⁴√N (the evaluation's default setting)
};

/// Name for reports ("logN", "MD", "MDC", "DC", "4*MDC").
std::string variantName(CvsVariant v);

/// How a node rebuilds its coarse view after fetching CV(w) (Figure 2's
/// last step vs. the CYCLON-style alternative from related work §2).
enum class ShufflePolicy {
  /// The paper's rule: CV(x) := cvs random entries of CV(x) ∪ CV(w) ∪ {w}.
  /// Simple, but *copies* entries: pointer counts random-walk, so static
  /// systems slowly develop indegree skew (the Figure-19 STAT tail).
  kUnionSample,
  /// CYCLON-style swap: x and w exchange half their views; pointers are
  /// conserved (moved, never copied), so indegree stays balanced.
  kSwap,
};

std::string shufflePolicyName(ShufflePolicy p);

/// Computes cvs for a variant at system size n (rounded, min 2).
std::size_t cvsForVariant(CvsVariant v, std::size_t n);

/// Default K = log2(N) rounded, min 1 (paper Section 5 setting 3).
unsigned defaultK(std::size_t n);

/// Forgetful-pinging knobs (paper Section 3.3).
struct ForgetfulConfig {
  bool enabled = true;
  SimDuration tau = 2 * kMinute;  ///< downtime threshold before decaying
  double c = 1.0;                 ///< expected pings per PS member between joins
  /// Use an exponentially averaged session length as ts(u) instead of the
  /// last observed one (the paper's "alternatively, this could be
  /// exponentially averaged"). Smooths one-off long sessions.
  bool ewmaSessionLength = false;
  double ewmaAlpha = 0.5;  ///< weight of the newest session in the average
};

/// Full per-node protocol configuration.
struct AvmonConfig {
  std::size_t systemSize = 1000;       ///< N, the a-priori stable size
  unsigned k = 10;                     ///< expected pinging-set size K
  std::size_t cvs = 23;                ///< max coarse view entries
  SimDuration protocolPeriod = kMinute;    ///< T (Figure 2 cadence)
  SimDuration monitoringPeriod = kMinute;  ///< TA (monitoring ping cadence)
  ForgetfulConfig forgetful;
  bool pr2 = false;  ///< Section 5.4 "PR2" re-advertisement optimization

  /// Coarse-view reshuffle rule (see ShufflePolicy).
  ShufflePolicy shuffle = ShufflePolicy::kUnionSample;

  /// Suppress repeated NOTIFYs for pairs this node has already reported.
  /// Figure 2 as written re-notifies every match on every fetch; NOTIFY is
  /// idempotent at the receiver, so any real implementation remembers what
  /// it already sent. Disable to measure the naive protocol.
  bool notifyDedup = true;

  /// Upper bound on the NOTIFY dedup cache (entries). When full, the cache
  /// resets and the node may re-send a few NOTIFYs (idempotent at the
  /// receiver) — a bounded-memory trade long-churn runs need. Must be >= 1
  /// when notifyDedup is on.
  std::size_t notifyDedupMax = 1u << 16;

  /// Message-size accounting, paper Section 5.1: 8 B per coarse view entry
  /// and 8 B per ping message.
  std::size_t bytesPerEntry = 8;
  std::size_t pingBytes = 8;

  /// Availability-history store a monitor keeps per target (Section 1's
  /// orthogonal "raw, aged, recent" choice, plus the bounded-memory
  /// "compact" run-length store million-node scenarios require). Styles as
  /// accepted by history::makeHistory; param 0 = the style's default knob.
  std::string historyStyle = "raw";
  double historyParam = 0.0;

  /// Builds the paper's default evaluation configuration for size n:
  /// cvs = 4·⁴√N, K = log2 N, T = TA = 1 min, forgetful(τ=2min, c=1).
  static AvmonConfig paperDefaults(std::size_t n);

  /// Builds a configuration using a specific analytic variant for cvs.
  static AvmonConfig forVariant(CvsVariant v, std::size_t n);

  /// Throws std::invalid_argument if any field is out of range.
  void validate() const;
};

}  // namespace avmon
