#include "avmon/config.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace avmon {

std::string shufflePolicyName(ShufflePolicy p) {
  switch (p) {
    case ShufflePolicy::kUnionSample: return "union-sample";
    case ShufflePolicy::kSwap: return "swap";
  }
  throw std::logic_error("unreachable: bad ShufflePolicy");
}

std::string variantName(CvsVariant v) {
  switch (v) {
    case CvsVariant::kLogN: return "logN";
    case CvsVariant::kOptimalMD: return "MD";
    case CvsVariant::kOptimalMDC: return "MDC";
    case CvsVariant::kOptimalDC: return "DC";
    case CvsVariant::kPaperEval: return "4*MDC";
  }
  throw std::logic_error("unreachable: bad CvsVariant");
}

std::size_t cvsForVariant(CvsVariant v, std::size_t n) {
  const double nd = static_cast<double>(n);
  double cvs = 0;
  switch (v) {
    case CvsVariant::kLogN:
      cvs = std::log2(nd);
      break;
    case CvsVariant::kOptimalMD:
      cvs = std::cbrt(2.0 * nd);
      break;
    case CvsVariant::kOptimalMDC:
    case CvsVariant::kOptimalDC:
      cvs = std::pow(nd, 0.25);
      break;
    case CvsVariant::kPaperEval:
      cvs = 4.0 * std::pow(nd, 0.25);
      break;
  }
  return std::max<std::size_t>(2, static_cast<std::size_t>(std::llround(cvs)));
}

unsigned defaultK(std::size_t n) {
  return std::max(1u, static_cast<unsigned>(
                          std::llround(std::log2(static_cast<double>(n)))));
}

AvmonConfig AvmonConfig::paperDefaults(std::size_t n) {
  return forVariant(CvsVariant::kPaperEval, n);
}

AvmonConfig AvmonConfig::forVariant(CvsVariant v, std::size_t n) {
  AvmonConfig cfg;
  cfg.systemSize = n;
  cfg.k = defaultK(n);
  cfg.cvs = cvsForVariant(v, n);
  cfg.protocolPeriod = kMinute;
  cfg.monitoringPeriod = kMinute;
  cfg.forgetful = ForgetfulConfig{};
  cfg.validate();
  return cfg;
}

void AvmonConfig::validate() const {
  if (systemSize < 2)
    throw std::invalid_argument("AvmonConfig: systemSize must be >= 2");
  if (k < 1) throw std::invalid_argument("AvmonConfig: k must be >= 1");
  if (cvs < 1) throw std::invalid_argument("AvmonConfig: cvs must be >= 1");
  if (protocolPeriod <= 0)
    throw std::invalid_argument("AvmonConfig: protocolPeriod must be > 0");
  if (monitoringPeriod <= 0)
    throw std::invalid_argument("AvmonConfig: monitoringPeriod must be > 0");
  if (forgetful.tau < 0)
    throw std::invalid_argument("AvmonConfig: forgetful.tau must be >= 0");
  if (forgetful.c <= 0)
    throw std::invalid_argument("AvmonConfig: forgetful.c must be > 0");
  if (forgetful.ewmaAlpha <= 0.0 || forgetful.ewmaAlpha > 1.0)
    throw std::invalid_argument(
        "AvmonConfig: forgetful.ewmaAlpha must be in (0,1]");
  if (bytesPerEntry == 0 || pingBytes == 0)
    throw std::invalid_argument("AvmonConfig: byte sizes must be > 0");
  if (notifyDedup && notifyDedupMax == 0)
    throw std::invalid_argument(
        "AvmonConfig: notifyDedupMax must be >= 1 when notifyDedup is on");
  if (historyStyle != "raw" && historyStyle != "recent" &&
      historyStyle != "aged" && historyStyle != "compact")
    throw std::invalid_argument("AvmonConfig: unknown historyStyle '" +
                                historyStyle + "'");
  if (historyParam < 0.0)
    throw std::invalid_argument("AvmonConfig: historyParam must be >= 0");
}

}  // namespace avmon
