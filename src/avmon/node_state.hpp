// Struct-of-arrays mirror of the hot per-node probe fields.
//
// The metric probes (Protocol::memoryEntries / hashChecks / uselessPings /
// discoveryDelay / isMonitoring) are answered thousands to millions of
// times per run — per window barrier in the streamed lane, per node in the
// materialized scans. Answering them from the full AvmonNode means a hash
// lookup plus size() reads across three scattered unordered containers per
// probe; at million-node scale that walk dominates the metric path and
// drags every node's cold cache lines back in.
//
// NodeStateTable keeps just the probe-visible scalars in parallel dense
// arrays indexed by the node's global world slot (== trace position, PR 3
// addressing). AvmonNode publishes into its row at the end of every
// externally driven mutation (message, RPC, tick, timer completion), so
// the row is exact whenever the world is quiescent — which is the only
// time probes run (window barriers, post-horizon scans). The full
// AvmonNode remains the authority for protocol logic; the table is a
// read-optimized projection, ~50 bytes per node.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace avmon::soa {

/// Parallel per-slot arrays of the probe-hot node state. A row is all the
/// fields at one index; -1 marks "never" for the time-valued columns.
struct NodeStateTable {
  std::vector<std::uint8_t> alive;
  std::vector<std::uint32_t> cvSize;
  std::vector<std::uint32_t> psSize;
  std::vector<std::uint32_t> tsSize;
  std::vector<std::uint64_t> hashChecks;
  std::vector<std::uint64_t> uselessPings;
  std::vector<SimTime> firstJoin;        ///< first join() instant, -1 never
  std::vector<SimTime> firstDiscovery;   ///< first PS entry instant, -1 never
  std::vector<SimTime> lastPingReceived; ///< PR2 baseline, -1 never

  void resize(std::size_t n) {
    alive.assign(n, 0);
    cvSize.assign(n, 0);
    psSize.assign(n, 0);
    tsSize.assign(n, 0);
    hashChecks.assign(n, 0);
    uselessPings.assign(n, 0);
    firstJoin.assign(n, -1);
    firstDiscovery.assign(n, -1);
    lastPingReceived.assign(n, -1);
  }

  std::size_t size() const noexcept { return alive.size(); }
};

}  // namespace avmon::soa
