// Bounded NOTIFY-deduplication cache with generational eviction.
//
// A node remembers which (monitor, target) pairs it has already NOTIFYed so
// steady-state rounds stop re-sending idempotent notifications. The memory
// bound used to be enforced by clearing the whole set when it filled —
// which briefly forgets *everything*, including the hot pairs rediscovered
// on every fetch, causing a burst of redundant NOTIFYs after each reset.
//
// The generational (two-epoch) scheme keeps two sets: lookups consult both,
// inserts go to the current epoch, a hit found only in the previous epoch
// re-registers the key in the current one (so a pair that keeps being
// rediscovered keeps being remembered), and when the current epoch reaches
// half the configured bound the previous epoch is discarded and the
// current one takes its place. Only pairs that stayed cold for a full
// epoch age out; the hot set is never dropped en masse. Total footprint
// never exceeds the bound.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>

namespace avmon {

class NotifyDedupCache {
 public:
  /// `maxEntries` bounds current + previous epoch together (>= 1).
  explicit NotifyDedupCache(std::size_t maxEntries = 1)
      : epochCapacity_(maxEntries / 2 > 0 ? maxEntries / 2 : 1) {}

  /// Records `key` as notified. Returns true if the key was new (the
  /// caller should send), false if it was already cached (suppress).
  /// Either way the key ends up in the current epoch, so hot keys survive
  /// the next rotation instead of aging out with the cold ones.
  bool insert(std::uint64_t key) {
    if (current_.count(key) != 0) return false;
    const bool fresh = previous_.count(key) == 0;
    current_.insert(key);
    if (current_.size() >= epochCapacity_) {
      // Rotate: the previous epoch ages out wholesale, the current one
      // becomes the read-only previous. Swapping (rather than moving)
      // recycles the retired set's bucket storage for the next epoch.
      std::swap(previous_, current_);
      current_.clear();
    }
    return fresh;
  }

  bool contains(std::uint64_t key) const {
    return current_.count(key) != 0 || previous_.count(key) != 0;
  }

  /// Drops both epochs (a node clears its cache on leave()). Keeps bucket
  /// storage, so a rejoining node's session starts allocation-free.
  void clear() {
    current_.clear();
    previous_.clear();
  }

  std::size_t size() const noexcept {
    return current_.size() + previous_.size();
  }

 private:
  std::size_t epochCapacity_;
  std::unordered_set<std::uint64_t> current_;
  std::unordered_set<std::uint64_t> previous_;
};

}  // namespace avmon
