// Closed-form results of paper Section 4, as executable formulas.
//
// These back three things: (1) the Table 1 reproduction, (2) analytic-vs-
// measured comparisons in the benches, and (3) property tests asserting
// the optimality derivations (e.g. that cvs = ∛(2N) really minimizes the
// Optimal-MD objective over the integer neighborhood).
#pragma once

#include <cstddef>

namespace avmon::analysis {

/// Probability that one full protocol period (N coarse-view fetches) checks
/// a given node pair at least once: 1 - e^(-cvs²/N)  (Section 4.1).
double pairCheckProbabilityPerRound(std::size_t cvs, std::size_t n);

/// Expected discovery time in protocol periods: E[D] <= 1/(1-e^(-cvs²/N)).
double expectedDiscoveryRounds(std::size_t cvs, std::size_t n);

/// The asymptotic simplification E[D] ≈ N/cvs² (valid for cvs = o(√N)).
double expectedDiscoveryRoundsApprox(std::size_t cvs, std::size_t n);

/// JOIN spread time bound: O(log cvs) rounds (Section 4.1). Returns
/// log2(cvs), the bound's leading term.
double joinSpreadRounds(std::size_t cvs);

/// Expected number of duplicate JOIN receivers per period: <= 2·cvs²/N,
/// which is o(1) when cvs = o(√N).
double expectedDuplicateJoins(std::size_t cvs, std::size_t n);

/// Rounds T* after which a dead coarse-view entry is deleted w.h.p. 1-1/N:
/// T* = cvs · ln(N) (Section 4.1, "Effect of Dead Nodes").
double deadEntryDeletionRounds(std::size_t cvs, std::size_t n);

/// The Optimal-MD objective f(cvs) = cvs + 1/(1-e^(-cvs²/N)) (Section 4.2).
double objectiveMD(std::size_t cvs, std::size_t n);

/// The Optimal-MDC objective g(cvs) = cvs + cvs² + 1/(1-e^(-cvs²/N)).
double objectiveMDC(std::size_t cvs, std::size_t n);

/// Optimal coarse-view sizes (Section 4.2): ∛(2N), ⁴√N, ⁴√N.
std::size_t cvsOptimalMD(std::size_t n);
std::size_t cvsOptimalMDC(std::size_t n);
std::size_t cvsOptimalDC(std::size_t n);

/// Probability that at least one of the K monitors of a node is up, for
/// system-wide average availability a: 1 - (1-a)^K  (Section 4.3).
double probSomeMonitorUp(unsigned k, double availability);

/// K needed so every node w.h.p. keeps >= l monitors: K = (l+1)·log(N)
/// (Section 4.3, "l out of K" policies).
unsigned kForLOutOfK(std::size_t n, unsigned l);

/// Probability that none of C colluders of a node lands in its pinging
/// set: (1 - K/N)^C  (Section 4.3, collusion resilience).
double probNoColluderInPS(std::size_t n, unsigned k, std::size_t colluders);

/// System-wide version: probability no colludee-colluder pair (D total
/// relationships) appears in any PS: (1 - K/N)^D.
double probSystemCollusionFree(std::size_t n, unsigned k,
                               std::size_t totalColludingPairs);

}  // namespace avmon::analysis
