// Table 1 of the paper: asymptotic and concrete M/D/C comparison of the
// Broadcast baseline and the AVMON variants.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace avmon::analysis {

/// One row: an approach and its three costs, both as the paper's
/// asymptotic strings and as concrete values at a given N.
struct Table1Row {
  std::string approach;
  std::string memoryAsymptotic;     ///< memory & per-round bandwidth (M)
  std::string discoveryAsymptotic;  ///< expected discovery time (D)
  std::string computeAsymptotic;    ///< computations per round (C)
  double memoryEntries = 0;         ///< concrete M at the chosen N
  double discoveryRounds = 0;       ///< concrete E[D] at the chosen N
  double computationsPerRound = 0;  ///< concrete C at the chosen N
};

/// Builds the five rows of Table 1 evaluated at system size n:
/// Broadcast, AVMON generic (cvs given), cvs=log N, Optimal-MD, Optimal-MDC/DC.
std::vector<Table1Row> table1(std::size_t n, std::size_t genericCvs);

}  // namespace avmon::analysis
