#include "analysis/table1.hpp"

#include <cmath>

#include "analysis/formulas.hpp"
#include "avmon/config.hpp"

namespace avmon::analysis {
namespace {

Table1Row avmonRow(const std::string& name, std::size_t cvs, std::size_t n,
                   const std::string& mAsym, const std::string& dAsym,
                   const std::string& cAsym) {
  Table1Row row;
  row.approach = name;
  row.memoryAsymptotic = mAsym;
  row.discoveryAsymptotic = dAsym;
  row.computeAsymptotic = cAsym;
  row.memoryEntries = static_cast<double>(cvs);
  row.discoveryRounds = expectedDiscoveryRounds(cvs, n);
  // Figure-2 cross-check: both orientations over ~(cvs+2)² pairs; we report
  // the paper's leading term cvs².
  row.computationsPerRound = static_cast<double>(cvs) * static_cast<double>(cvs);
  return row;
}

}  // namespace

std::vector<Table1Row> table1(std::size_t n, std::size_t genericCvs) {
  std::vector<Table1Row> rows;

  Table1Row broadcast;
  broadcast.approach = "Broadcast (AVCast)";
  broadcast.memoryAsymptotic = "O(N)";
  broadcast.discoveryAsymptotic = "O(log N)";
  broadcast.computeAsymptotic = "one-time";
  broadcast.memoryEntries = static_cast<double>(n);
  broadcast.discoveryRounds = std::log2(static_cast<double>(n));
  broadcast.computationsPerRound = 0;  // join-time only
  rows.push_back(broadcast);

  rows.push_back(avmonRow("AVMON generic cvs", genericCvs, n, "O(cvs)",
                          "1/(1-e^{-cvs^2/N})", "O(cvs^2)"));
  rows.push_back(avmonRow("AVMON cvs=log N",
                          cvsForVariant(CvsVariant::kLogN, n), n, "O(log N)",
                          "N/log^2 N", "O(log^2 N)"));
  rows.push_back(avmonRow("AVMON Optimal-MD", cvsOptimalMD(n), n,
                          "O((2N)^{1/3})", "(2N)^{1/3}", "O((2N)^{2/3})"));
  rows.push_back(avmonRow("AVMON Optimal-MDC/DC", cvsOptimalMDC(n), n,
                          "O(N^{1/4})", "sqrt(N)", "O(sqrt(N))"));
  return rows;
}

}  // namespace avmon::analysis
