#include "analysis/formulas.hpp"

#include <algorithm>
#include <cmath>

namespace avmon::analysis {

double pairCheckProbabilityPerRound(std::size_t cvs, std::size_t n) {
  const double c = static_cast<double>(cvs);
  const double nn = static_cast<double>(n);
  return 1.0 - std::exp(-(c * c) / nn);
}

double expectedDiscoveryRounds(std::size_t cvs, std::size_t n) {
  return 1.0 / pairCheckProbabilityPerRound(cvs, n);
}

double expectedDiscoveryRoundsApprox(std::size_t cvs, std::size_t n) {
  const double c = static_cast<double>(cvs);
  return static_cast<double>(n) / (c * c);
}

double joinSpreadRounds(std::size_t cvs) {
  return std::log2(std::max<std::size_t>(2, cvs));
}

double expectedDuplicateJoins(std::size_t cvs, std::size_t n) {
  const double c = static_cast<double>(cvs);
  return 2.0 * c * c / static_cast<double>(n);
}

double deadEntryDeletionRounds(std::size_t cvs, std::size_t n) {
  return static_cast<double>(cvs) * std::log(static_cast<double>(n));
}

double objectiveMD(std::size_t cvs, std::size_t n) {
  return static_cast<double>(cvs) + expectedDiscoveryRounds(cvs, n);
}

double objectiveMDC(std::size_t cvs, std::size_t n) {
  const double c = static_cast<double>(cvs);
  return c + c * c + expectedDiscoveryRounds(cvs, n);
}

std::size_t cvsOptimalMD(std::size_t n) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::llround(std::cbrt(2.0 * static_cast<double>(n)))));
}

std::size_t cvsOptimalMDC(std::size_t n) {
  return std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::llround(std::pow(static_cast<double>(n), 0.25))));
}

std::size_t cvsOptimalDC(std::size_t n) { return cvsOptimalMDC(n); }

double probSomeMonitorUp(unsigned k, double availability) {
  return 1.0 - std::pow(1.0 - availability, static_cast<double>(k));
}

unsigned kForLOutOfK(std::size_t n, unsigned l) {
  const double k = (static_cast<double>(l) + 1.0) *
                   std::log2(static_cast<double>(std::max<std::size_t>(2, n)));
  return std::max(1u, static_cast<unsigned>(std::llround(k)));
}

double probNoColluderInPS(std::size_t n, unsigned k, std::size_t colluders) {
  const double ratio =
      static_cast<double>(k) / static_cast<double>(n);
  return std::pow(1.0 - ratio, static_cast<double>(colluders));
}

double probSystemCollusionFree(std::size_t n, unsigned k,
                               std::size_t totalColludingPairs) {
  return probNoColluderInPS(n, k, totalColludingPairs);
}

}  // namespace avmon::analysis
