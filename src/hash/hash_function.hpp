// Pluggable hash functions for the consistency condition.
//
// The monitor selection scheme (paper Section 3.1) needs a deterministic
// function H : bytes -> [0,1) that every node computes identically. The
// paper uses the first 64 bits of MD5; SHA-1 is named as an alternative.
// We expose both plus a fast non-cryptographic mixer (splitmix64) as an
// ablation (bench_abl_hash): verifiability only requires agreement on H,
// so a faster mixer trades collusion-grinding resistance for CPU.
#pragma once

#include <cstdint>
#include <memory>
#include "common/byte_span.hpp"
#include <string>

namespace avmon::hash {

/// Uniform 64-bit hash of a byte string; the basis of the consistency
/// condition. Implementations must be deterministic and stateless.
class HashFunction {
 public:
  virtual ~HashFunction() = default;

  /// First 64 bits of the digest, interpreted big-endian.
  virtual std::uint64_t digest64(ByteSpan data) const = 0;

  /// Human-readable name for reports ("md5", "sha1", "splitmix64").
  virtual std::string name() const = 0;

  /// digest64 normalized to the real interval [0, 1).
  double normalized(ByteSpan data) const {
    // 2^-64 scaling; the result is < 1 since digest64 < 2^64.
    return static_cast<double>(digest64(data)) * 0x1.0p-64;
  }
};

/// MD5-backed hash (the paper's default).
class Md5HashFunction final : public HashFunction {
 public:
  std::uint64_t digest64(ByteSpan data) const override;
  std::string name() const override { return "md5"; }
};

/// SHA-1-backed hash (the paper's named alternative).
class Sha1HashFunction final : public HashFunction {
 public:
  std::uint64_t digest64(ByteSpan data) const override;
  std::string name() const override { return "sha1"; }
};

/// splitmix64 over a 64-bit fold of the input: ~100x faster than MD5, good
/// avalanche, but not preimage-resistant. Ablation only.
class SplitMix64HashFunction final : public HashFunction {
 public:
  std::uint64_t digest64(ByteSpan data) const override;
  std::string name() const override { return "splitmix64"; }
};

/// Factory by name; throws std::invalid_argument on unknown names.
std::unique_ptr<HashFunction> makeHashFunction(const std::string& name);

/// True if makeHashFunction(name) would succeed — validation without the
/// construction cost (or the exception).
bool isKnownHashName(const std::string& name);

}  // namespace avmon::hash
