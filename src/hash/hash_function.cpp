#include "hash/hash_function.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "hash/md5.hpp"
#include "hash/sha1.hpp"

namespace avmon::hash {
namespace {

std::uint64_t first64BigEndian(const std::uint8_t* d) noexcept {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | d[i];
  return x;
}

}  // namespace

std::uint64_t Md5HashFunction::digest64(
    ByteSpan data) const {
  const Md5::Digest d = Md5::digest(data);
  return first64BigEndian(d.data());
}

std::uint64_t Sha1HashFunction::digest64(
    ByteSpan data) const {
  const Sha1::Digest d = Sha1::digest(data);
  return first64BigEndian(d.data());
}

std::uint64_t SplitMix64HashFunction::digest64(
    ByteSpan data) const {
  // Fold bytes into the state with a multiply between words, then finish
  // with the splitmix64 finalizer. Equivalent structure to FNV-then-mix.
  std::uint64_t acc = 0x243F6A8885A308D3ULL;  // pi fractional bits
  for (std::uint8_t b : data) {
    acc = (acc ^ b) * 0x100000001B3ULL;
  }
  return splitmix64Mix(acc);
}

std::unique_ptr<HashFunction> makeHashFunction(const std::string& name) {
  if (name == "md5") return std::make_unique<Md5HashFunction>();
  if (name == "sha1") return std::make_unique<Sha1HashFunction>();
  if (name == "splitmix64") return std::make_unique<SplitMix64HashFunction>();
  throw std::invalid_argument("unknown hash function: " + name);
}

bool isKnownHashName(const std::string& name) {
  return name == "md5" || name == "sha1" || name == "splitmix64";
}

}  // namespace avmon::hash
