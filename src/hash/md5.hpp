// MD5 message digest, implemented from RFC 1321.
//
// The paper's consistency condition hashes <IP,port> pairs with libSSL's
// MD5 and keeps the first 64 bits (Section 5, default setting 4). We
// implement MD5 from scratch to stay dependency-free; test vectors from
// RFC 1321 Appendix A.5 are checked in tests/hash_test.cpp.
//
// MD5 is used here as a *mixing* function for monitor selection, not for
// security against preimage attacks; the verifiability property only needs
// all parties to agree on H.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include "common/byte_span.hpp"
#include <string>

namespace avmon::hash {

/// Incremental MD5 context (init / update / final), RFC 1321.
class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Md5() noexcept { reset(); }

  /// Re-initializes to the empty-message state.
  void reset() noexcept;

  /// Absorbs more message bytes.
  void update(ByteSpan data) noexcept;

  /// Pads, finalizes, and returns the 128-bit digest. The context must be
  /// reset() before reuse.
  Digest finalize() noexcept;

  /// One-shot convenience.
  static Digest digest(ByteSpan data) noexcept;

  /// Renders a digest as lowercase hex (for tests and debugging).
  static std::string toHex(const Digest& d);

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::uint32_t state_[4];
  std::uint64_t bitCount_;
  std::uint8_t buffer_[64];
  std::size_t bufferLen_;
};

}  // namespace avmon::hash
