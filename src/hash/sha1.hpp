// SHA-1 message digest, implemented from RFC 3174.
//
// The paper notes MD-5 *or* SHA-1 can implement the consistency condition
// (Section 3.1); we provide both so the hash choice is an ablation axis
// (bench_abl_hash). Like MD5, SHA-1 is used as a mixer, not for security.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include "common/byte_span.hpp"
#include <string>

namespace avmon::hash {

/// Incremental SHA-1 context (init / update / final), RFC 3174.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() noexcept { reset(); }

  /// Re-initializes to the empty-message state.
  void reset() noexcept;

  /// Absorbs more message bytes.
  void update(ByteSpan data) noexcept;

  /// Pads, finalizes, and returns the 160-bit digest.
  Digest finalize() noexcept;

  /// One-shot convenience.
  static Digest digest(ByteSpan data) noexcept;

  /// Renders a digest as lowercase hex.
  static std::string toHex(const Digest& d);

 private:
  void processBlock(const std::uint8_t* block) noexcept;

  std::uint32_t state_[5];
  std::uint64_t bitCount_;
  std::uint8_t buffer_[64];
  std::size_t bufferLen_;
};

}  // namespace avmon::hash
