#include "hash/sha1.hpp"

#include <cstring>

namespace avmon::hash {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int c) noexcept {
  return (x << c) | (x >> (32 - c));
}

}  // namespace

void Sha1::reset() noexcept {
  state_[0] = 0x67452301;
  state_[1] = 0xEFCDAB89;
  state_[2] = 0x98BADCFE;
  state_[3] = 0x10325476;
  state_[4] = 0xC3D2E1F0;
  bitCount_ = 0;
  bufferLen_ = 0;
}

void Sha1::processBlock(const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
           (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i)
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteSpan data) noexcept {
  bitCount_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;

  if (bufferLen_ > 0) {
    const std::size_t need = 64 - bufferLen_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + bufferLen_, data.data(), take);
    bufferLen_ += take;
    offset = take;
    if (bufferLen_ == 64) {
      processBlock(buffer_);
      bufferLen_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    processBlock(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    bufferLen_ = data.size() - offset;
    std::memcpy(buffer_, data.data() + offset, bufferLen_);
  }
}

Sha1::Digest Sha1::finalize() noexcept {
  const std::uint64_t bits = bitCount_;
  std::uint8_t pad[72] = {0x80};
  const std::size_t padLen =
      (bufferLen_ < 56) ? (56 - bufferLen_) : (120 - bufferLen_);
  update({pad, padLen});

  // Length is appended big-endian in SHA-1 (unlike MD5).
  std::uint8_t lenBytes[8];
  for (int i = 0; i < 8; ++i)
    lenBytes[i] = static_cast<std::uint8_t>(bits >> (8 * (7 - i)));
  update({lenBytes, 8});

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Sha1::Digest Sha1::digest(ByteSpan data) noexcept {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finalize();
}

std::string Sha1::toHex(const Digest& d) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(d.size() * 2);
  for (std::uint8_t byte : d) {
    s.push_back(kHex[byte >> 4]);
    s.push_back(kHex[byte & 0xF]);
  }
  return s;
}

}  // namespace avmon::hash
