#include "experiments/metrics.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/format_double.hpp"
#include "experiments/adversary.hpp"
#include "experiments/protocol.hpp"
#include "experiments/streaming/collector.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table_printer.hpp"

namespace avmon::experiments {

namespace {

struct MetricStats {
  double mean = 0.0, stddev = 0.0, p50 = 0.0, p99 = 0.0;
  std::size_t count = 0;
};

MetricStats statsOf(const std::vector<double>& samples) {
  MetricStats out;
  stats::Summary summary;
  for (double x : samples) summary.add(x);
  const stats::Cdf cdf(samples);
  out.mean = summary.mean();
  out.stddev = summary.stddev();
  out.p50 = cdf.percentile(0.5);
  out.p99 = cdf.percentile(0.99);
  out.count = summary.count();
  return out;
}

MetricStats statsOf(const streaming::StreamedMetric& m) {
  MetricStats out;
  out.mean = m.stats.mean();
  out.stddev = m.stats.stddev();
  out.p50 = m.sketch.quantile(0.5);
  out.p99 = m.sketch.quantile(0.99);
  out.count = m.stats.count();
  return out;
}

/// The rows every table-shaped backend reports, in one place so the
/// summary and comparison views can never drift apart. Each row knows both
/// lanes: the materialized sample vector and the streamed summary metric.
struct NamedMetric {
  const char* name;
  const std::vector<double> MetricSet::*samples;
  const streaming::StreamedMetric streaming::StreamedSummary::*streamed;
};

constexpr NamedMetric kMetrics[] = {
    {"first-monitor discovery (s)", &MetricSet::discoverySeconds,
     &streaming::StreamedSummary::discoverySeconds},
    {"memory entries", &MetricSet::memoryEntries,
     &streaming::StreamedSummary::memoryEntries},
    {"outgoing Bps", &MetricSet::outgoingBytesPerSecond,
     &streaming::StreamedSummary::outgoingBytesPerSecond},
    {"useless pings/min", &MetricSet::uselessPingsPerMinute,
     &streaming::StreamedSummary::uselessPingsPerMinute},
    {"computations/s", &MetricSet::computationsPerSecond,
     &streaming::StreamedSummary::computationsPerSecond},
};

MetricStats statsFor(const MetricSet& set, const NamedMetric& metric) {
  return set.streamed ? statsOf((*set.streamed).*(metric.streamed))
                      : statsOf(set.*(metric.samples));
}

void writeTextFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("metrics sink: cannot open " + path +
                             " for writing");
  }
  f << content;
  f.flush();
  f.close();
  // A full disk or vanished directory must be an error, not a silently
  // truncated file — this is the failure the old avmon_sim CSV writer
  // swallowed in the ofstream destructor.
  if (f.fail()) {
    throw std::runtime_error("metrics sink: write to " + path +
                             " failed (file may be truncated)");
  }
}

std::string csvOfSamples(const char* header,
                         const std::vector<double>& values) {
  std::ostringstream out;
  out << header << "\n";
  for (double v : values) out << v << "\n";
  return out.str();
}

void appendJsonStats(std::ostringstream& out, const char* key,
                     const MetricStats& s) {
  // Shortest round-tripping decimals (common/format_double.hpp): the JSON
  // artifact reparses to exactly the doubles the run produced.
  out << "    \"" << key << "\": {\"mean\": " << formatDouble(s.mean)
      << ", \"stddev\": " << formatDouble(s.stddev)
      << ", \"p50\": " << formatDouble(s.p50)
      << ", \"p99\": " << formatDouble(s.p99) << ", \"count\": " << s.count
      << "}";
}

// "0.5" -> "q0_5": a configured quantile's JSON key.
std::string quantileKeyOf(double phi) {
  std::string key = "q" + formatDouble(phi);
  for (char& c : key) {
    if (c == '.') c = '_';
  }
  return key;
}

std::string jsonKeyOf(const char* name) {
  // "first-monitor discovery (s)" -> "first_monitor_discovery_s"
  std::string key;
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      key += c;
    } else if (c >= 'A' && c <= 'Z') {
      key += static_cast<char>(c - 'A' + 'a');
    } else if (!key.empty() && key.back() != '_') {
      key += '_';
    }
  }
  while (!key.empty() && key.back() == '_') key.pop_back();
  return key;
}

}  // namespace

std::string MetricSet::label() const {
  std::ostringstream out;
  out << protocol << " " << model << " N=" << effectiveN << " seed=" << seed;
  if (dropProbability > 0) out << " drop=" << dropProbability;
  if (rpcFailProbability > 0) out << " rpcfail=" << rpcFailProbability;
  if (collusion > 0) out << " C=" << collusion;
  if (overreportFraction > 0) out << " over=" << overreportFraction;
  if (forgetfulFraction > 0) out << " forget=" << forgetfulFraction;
  return out.str();
}

std::string MetricSet::fileLabel() const {
  std::ostringstream out;
  out << protocol << "-" << model << "-n" << effectiveN << "-s" << seed;
  if (dropProbability > 0) out << "-d" << dropProbability;
  if (rpcFailProbability > 0) out << "-rf" << rpcFailProbability;
  if (collusion > 0) out << "-c" << collusion;
  if (overreportFraction > 0) out << "-ov" << overreportFraction;
  if (forgetfulFraction > 0) out << "-fg" << forgetfulFraction;
  std::string s = out.str();
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return s;
}

std::optional<double> MetricSet::accuracyMeanAbsError() const {
  if (streamed) {
    const streaming::OnlineStats& stats = streamed->accuracyAbsError.stats;
    if (stats.count() == 0) return std::nullopt;
    return stats.mean();
  }
  if (accuracy.empty()) return std::nullopt;
  double sum = 0.0;
  for (const AvailabilityAccuracy& a : accuracy) {
    sum += std::fabs(a.estimated - a.actual);
  }
  return sum / static_cast<double>(accuracy.size());
}

std::size_t MetricSet::accuracyNodeCount() const {
  if (streamed) {
    return static_cast<std::size_t>(streamed->accuracyAbsError.stats.count());
  }
  return accuracy.size();
}

MetricSet collectMetrics(const ScenarioRunner& runner) {
  const Scenario& s = runner.scenario();
  MetricSet out;
  out.protocol = s.protocol;
  out.model = churn::modelName(s.model);
  out.hashName = s.hashName;
  out.effectiveN = runner.effectiveN();
  out.seed = s.seed;
  out.shards = s.shards;
  out.horizonSeconds = toSeconds(s.horizon);
  out.warmupSeconds = toSeconds(s.warmup);
  out.dropProbability = s.messageDropProbability;
  out.rpcFailProbability = s.rpcFailProbability;
  out.collusion = s.attack.collusion;
  out.overreportFraction = s.overreportFraction;
  out.forgetfulFraction = s.attack.forgetfulFraction;

  // Graceful-degradation probes: evaluated against the protocol's final
  // state on BOTH lanes (the resolved victim list is tiny, so this is not
  // an O(N) materialization).
  const ResolvedAdversary& adversary = runner.adversary();
  if (!adversary.victims.empty()) {
    const std::vector<VictimOutcome> outcomes =
        victimOutcomes(runner.protocol(), adversary, runner.schedule());
    double errSum = 0.0;
    std::size_t reporting = 0;
    for (const VictimOutcome& o : outcomes) {
      ++out.victimCount;
      if (o.eclipsed) ++out.eclipsedCount;
      if (o.estimateAbsError) {
        errSum += *o.estimateAbsError;
        ++reporting;
      }
    }
    if (reporting > 0) {
      out.victimMeanAbsError = errSum / static_cast<double>(reporting);
    }
  }

  if (const streaming::StreamingCollector* collector =
          runner.streamingCollector()) {
    // Streamed lane: the per-shard reducers already hold everything the
    // sinks need. No sample vector or per-node table is materialized — the
    // snapshot's metric state is O(reducers x sketch bins), not O(N).
    out.streamed = collector->summary();
    out.windows = collector->windows();
    out.streamedQuantiles = s.metrics.quantiles;
    out.discoveredFraction = out.streamed->discoveredFraction();
    out.metricStateBytes = collector->stateBytes();
    return out;
  }

  out.discoverySeconds = runner.discoveryDelaysSeconds(1);
  out.discoveredFraction = runner.discoveredFraction(1);
  out.memoryEntries = runner.memoryEntries(/*measuredOnly=*/false);
  out.outgoingBytesPerSecond = runner.outgoingBytesPerSecond();
  out.uselessPingsPerMinute = runner.uselessPingsPerMinute();
  out.computationsPerSecond = runner.computationsPerSecond();
  out.accuracy = runner.availabilityAccuracy(/*measuredOnly=*/true);

  const Protocol& protocol = runner.protocol();
  for (const trace::NodeTrace& nt : runner.schedule().nodes()) {
    MetricSet::PerNodeRow row;
    row.id = nt.id;
    const sim::TrafficCounters traffic = runner.trafficOf(nt.id);
    row.bytesSent = traffic.bytesSent;
    row.messagesSent = traffic.messagesSent;
    row.memoryEntries = protocol.memoryEntries(nt.id);
    row.hashChecks = protocol.hashChecks(nt.id);
    row.uselessPings = protocol.uselessPings(nt.id);
    if (const auto d = protocol.discoveryDelay(nt.id, 1)) {
      row.discoverySeconds = toSeconds(*d);
    }
    out.perNode.push_back(row);
  }
  out.metricStateBytes =
      (out.discoverySeconds.size() + out.memoryEntries.size() +
       out.outgoingBytesPerSecond.size() + out.uselessPingsPerMinute.size() +
       out.computationsPerSecond.size()) *
          sizeof(double) +
      out.accuracy.size() * sizeof(AvailabilityAccuracy) +
      out.perNode.size() * sizeof(MetricSet::PerNodeRow);
  return out;
}

// ---- SummaryTableSink ----

void SummaryTableSink::add(const MetricSet& metrics) {
  sets_.push_back(metrics);
}

void SummaryTableSink::close() {
  std::ostream& out = *out_;
  for (const MetricSet& set : sets_) {
    stats::TablePrinter table("scenario summary: " + set.label());
    table.setHeader({"metric", "mean", "stddev", "p50", "p99", "n"});
    for (const NamedMetric& metric : kMetrics) {
      const MetricStats s = statsFor(set, metric);
      table.addRow({metric.name, stats::TablePrinter::num(s.mean, 2),
                    stats::TablePrinter::num(s.stddev, 2),
                    stats::TablePrinter::num(s.p50, 2),
                    stats::TablePrinter::num(s.p99, 2),
                    std::to_string(s.count)});
    }
    table.print(out);
    out << "discovered fraction (>=1 monitor): "
        << stats::TablePrinter::num(set.discoveredFraction, 4) << "\n";
    if (const auto err = set.accuracyMeanAbsError()) {
      out << "availability estimate mean |error|: "
          << stats::TablePrinter::num(*err, 4) << " ("
          << set.accuracyNodeCount() << " nodes)\n";
    } else {
      out << "availability estimate mean |error|: n/a\n";
    }
    if (set.victimCount > 0) {
      out << "collusion victims eclipsed: " << set.eclipsedCount << "/"
          << set.victimCount << "\n";
      out << "victim estimate mean |error|: "
          << (set.victimMeanAbsError
                  ? stats::TablePrinter::num(*set.victimMeanAbsError, 4)
                  : std::string("n/a"))
          << "\n";
    }
    if (set.streamed) {
      out << "metrics lane: streamed (" << set.windows.size()
          << " windows, " << set.metricStateBytes << " state bytes)\n";
    }
    out << "\n";
  }

  // Two or more runs: the head-to-head view, one column per run. This is
  // the paper's comparison-table shape (Table 1 measured, not analytic).
  if (sets_.size() >= 2) {
    stats::TablePrinter table("protocol comparison (column = run)");
    std::vector<std::string> header = {"metric"};
    for (const MetricSet& set : sets_) header.push_back(set.label());
    table.setHeader(std::move(header));
    for (const NamedMetric& metric : kMetrics) {
      for (const char* stat : {"mean", "p99"}) {
        std::vector<std::string> row = {std::string(metric.name) + " " + stat};
        for (const MetricSet& set : sets_) {
          const MetricStats s = statsFor(set, metric);
          row.push_back(stats::TablePrinter::num(
              std::string(stat) == "mean" ? s.mean : s.p99, 2));
        }
        table.addRow(std::move(row));
      }
    }
    std::vector<std::string> discovered = {"discovered fraction"};
    std::vector<std::string> accuracyRow = {"estimate mean |error|"};
    for (const MetricSet& set : sets_) {
      discovered.push_back(
          stats::TablePrinter::num(set.discoveredFraction, 4));
      const auto err = set.accuracyMeanAbsError();
      accuracyRow.push_back(err ? stats::TablePrinter::num(*err, 4)
                                : std::string("n/a"));
    }
    table.addRow(std::move(discovered));
    table.addRow(std::move(accuracyRow));
    // Degradation rows appear only when some run faced an adversary: the
    // side-by-side then reads as "how much worse under attack".
    bool anyVictims = false;
    for (const MetricSet& set : sets_) anyVictims |= set.victimCount > 0;
    if (anyVictims) {
      std::vector<std::string> eclipsedRow = {"victims eclipsed"};
      std::vector<std::string> victimErrRow = {"victim mean |error|"};
      for (const MetricSet& set : sets_) {
        eclipsedRow.push_back(set.victimCount > 0
                                  ? std::to_string(set.eclipsedCount) + "/" +
                                        std::to_string(set.victimCount)
                                  : std::string("n/a"));
        victimErrRow.push_back(
            set.victimMeanAbsError
                ? stats::TablePrinter::num(*set.victimMeanAbsError, 4)
                : std::string("n/a"));
      }
      table.addRow(std::move(eclipsedRow));
      table.addRow(std::move(victimErrRow));
    }
    table.print(out);
  }

  out.flush();
  if (!out) {
    throw std::runtime_error("metrics sink: summary output stream failed");
  }
}

// ---- CsvSink ----

void CsvSink::add(const MetricSet& metrics) { sets_.push_back(metrics); }

void CsvSink::close() {
  for (const MetricSet& set : sets_) {
    // Single-run sweeps keep the historical avmon_sim file names; multi-
    // run sweeps get one set of files per run, keyed by its label.
    const std::string base =
        sets_.size() == 1 ? prefix_ : prefix_ + "." + set.fileLabel();

    const auto emit = [&](const std::string& suffix,
                          const std::string& content) {
      const std::string path = base + suffix;
      writeTextFile(path, content);
      written_.push_back(path);
    };

    emit(".discovery.csv",
         csvOfSamples("discovery_seconds", set.discoverySeconds));
    emit(".memory.csv", csvOfSamples("memory_entries", set.memoryEntries));
    emit(".bandwidth.csv",
         csvOfSamples("outgoing_bps", set.outgoingBytesPerSecond));

    std::ostringstream perNode;
    perNode << "node,bytes_sent,messages_sent,memory_entries,hash_checks,"
               "useless_pings,discovery_seconds\n";
    for (const MetricSet::PerNodeRow& row : set.perNode) {
      perNode << row.id.toString() << "," << row.bytesSent << ","
              << row.messagesSent << "," << row.memoryEntries << ","
              << row.hashChecks << "," << row.uselessPings << ","
              << row.discoverySeconds << "\n";
    }
    emit(".pernode.csv", perNode.str());

    // Windowed time-series from the streaming pipeline: one row per metric
    // window, columns in reducer-registration order (fixed per run).
    if (!set.windows.empty()) {
      std::ostringstream windowsCsv;
      windowsCsv << "window_start_s,window_end_s";
      for (const auto& [name, value] : set.windows.front().columns) {
        (void)value;
        windowsCsv << "," << name;
      }
      windowsCsv << "\n";
      for (const streaming::WindowRow& row : set.windows) {
        windowsCsv << formatDouble(toSeconds(row.windowStart)) << ","
                   << formatDouble(toSeconds(row.windowEnd));
        for (const auto& [name, value] : row.columns) {
          (void)name;
          windowsCsv << "," << formatDouble(value);
        }
        windowsCsv << "\n";
      }
      emit(".windows.csv", windowsCsv.str());
    }
  }
}

// ---- JsonSink ----

void JsonSink::add(const MetricSet& metrics) { sets_.push_back(metrics); }

void JsonSink::close() {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    const MetricSet& set = sets_[i];
    out << "  {\n";
    out << "    \"protocol\": \"" << set.protocol << "\",\n";
    out << "    \"model\": \"" << set.model << "\",\n";
    out << "    \"hash\": \"" << set.hashName << "\",\n";
    out << "    \"n\": " << set.effectiveN << ",\n";
    out << "    \"seed\": " << set.seed << ",\n";
    out << "    \"shards\": " << set.shards << ",\n";
    out << "    \"horizon_seconds\": " << formatDouble(set.horizonSeconds)
        << ",\n";
    out << "    \"warmup_seconds\": " << formatDouble(set.warmupSeconds)
        << ",\n";
    out << "    \"drop_probability\": " << formatDouble(set.dropProbability)
        << ",\n";
    out << "    \"rpc_fail_probability\": "
        << formatDouble(set.rpcFailProbability) << ",\n";
    out << "    \"collusion\": " << set.collusion << ",\n";
    out << "    \"overreport_fraction\": "
        << formatDouble(set.overreportFraction) << ",\n";
    out << "    \"forgetful_fraction\": "
        << formatDouble(set.forgetfulFraction) << ",\n";
    out << "    \"victims\": " << set.victimCount << ",\n";
    out << "    \"victims_eclipsed\": " << set.eclipsedCount << ",\n";
    out << "    \"victim_mean_abs_error\": "
        << (set.victimMeanAbsError ? formatDouble(*set.victimMeanAbsError)
                                   : std::string("null"))
        << ",\n";
    for (const NamedMetric& metric : kMetrics) {
      appendJsonStats(out, jsonKeyOf(metric.name).c_str(),
                      statsFor(set, metric));
      out << ",\n";
    }
    if (set.streamed) {
      out << "    \"streamed\": true,\n";
      out << "    \"metric_state_bytes\": " << set.metricStateBytes << ",\n";
      // The configured quantiles for every summary metric, straight from
      // each sketch (p50/p99 above are the fixed table columns).
      out << "    \"quantiles\": {";
      bool firstMetric = true;
      for (const NamedMetric& metric : kMetrics) {
        const streaming::StreamedMetric& m =
            (*set.streamed).*(metric.streamed);
        out << (firstMetric ? "" : ", ") << "\"" << jsonKeyOf(metric.name)
            << "\": {";
        for (std::size_t q = 0; q < set.streamedQuantiles.size(); ++q) {
          const double phi = set.streamedQuantiles[q];
          out << (q == 0 ? "" : ", ") << "\"" << quantileKeyOf(phi)
              << "\": " << formatDouble(m.sketch.quantile(phi));
        }
        out << "}";
        firstMetric = false;
      }
      out << "},\n";
      out << "    \"windows\": [";
      for (std::size_t w = 0; w < set.windows.size(); ++w) {
        const streaming::WindowRow& row = set.windows[w];
        out << (w == 0 ? "" : ", ") << "{\"window_start_s\": "
            << formatDouble(toSeconds(row.windowStart))
            << ", \"window_end_s\": " << formatDouble(toSeconds(row.windowEnd));
        for (const auto& [name, value] : row.columns) {
          out << ", \"" << name << "\": " << formatDouble(value);
        }
        out << "}";
      }
      out << "],\n";
    }
    out << "    \"discovered_fraction\": "
        << formatDouble(set.discoveredFraction) << ",\n";
    const auto accuracyErr = set.accuracyMeanAbsError();
    out << "    \"accuracy_mean_abs_error\": "
        << (accuracyErr ? formatDouble(*accuracyErr) : std::string("null"))
        << ",\n";
    out << "    \"accuracy_nodes\": " << set.accuracyNodeCount() << "\n";
    out << "  }" << (i + 1 < sets_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  writeTextFile(path_, out.str());
}

}  // namespace avmon::experiments
