#include "experiments/metrics.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "experiments/protocol.hpp"
#include "stats/cdf.hpp"
#include "stats/summary.hpp"
#include "stats/table_printer.hpp"

namespace avmon::experiments {

namespace {

struct MetricStats {
  double mean = 0.0, stddev = 0.0, p50 = 0.0, p99 = 0.0;
  std::size_t count = 0;
};

MetricStats statsOf(const std::vector<double>& samples) {
  MetricStats out;
  stats::Summary summary;
  for (double x : samples) summary.add(x);
  const stats::Cdf cdf(samples);
  out.mean = summary.mean();
  out.stddev = summary.stddev();
  out.p50 = cdf.percentile(0.5);
  out.p99 = cdf.percentile(0.99);
  out.count = summary.count();
  return out;
}

/// The rows every table-shaped backend reports, in one place so the
/// summary and comparison views can never drift apart.
struct NamedMetric {
  const char* name;
  const std::vector<double> MetricSet::*samples;
};

constexpr NamedMetric kMetrics[] = {
    {"first-monitor discovery (s)", &MetricSet::discoverySeconds},
    {"memory entries", &MetricSet::memoryEntries},
    {"outgoing Bps", &MetricSet::outgoingBytesPerSecond},
    {"useless pings/min", &MetricSet::uselessPingsPerMinute},
    {"computations/s", &MetricSet::computationsPerSecond},
};

void writeTextFile(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("metrics sink: cannot open " + path +
                             " for writing");
  }
  f << content;
  f.flush();
  f.close();
  // A full disk or vanished directory must be an error, not a silently
  // truncated file — this is the failure the old avmon_sim CSV writer
  // swallowed in the ofstream destructor.
  if (f.fail()) {
    throw std::runtime_error("metrics sink: write to " + path +
                             " failed (file may be truncated)");
  }
}

std::string csvOfSamples(const char* header,
                         const std::vector<double>& values) {
  std::ostringstream out;
  out << header << "\n";
  for (double v : values) out << v << "\n";
  return out.str();
}

void appendJsonStats(std::ostringstream& out, const char* key,
                     const MetricStats& s) {
  out << "    \"" << key << "\": {\"mean\": " << s.mean
      << ", \"stddev\": " << s.stddev << ", \"p50\": " << s.p50
      << ", \"p99\": " << s.p99 << ", \"count\": " << s.count << "}";
}

std::string jsonKeyOf(const char* name) {
  // "first-monitor discovery (s)" -> "first_monitor_discovery_s"
  std::string key;
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      key += c;
    } else if (c >= 'A' && c <= 'Z') {
      key += static_cast<char>(c - 'A' + 'a');
    } else if (!key.empty() && key.back() != '_') {
      key += '_';
    }
  }
  while (!key.empty() && key.back() == '_') key.pop_back();
  return key;
}

}  // namespace

std::string MetricSet::label() const {
  std::ostringstream out;
  out << protocol << " " << model << " N=" << effectiveN << " seed=" << seed;
  if (dropProbability > 0) out << " drop=" << dropProbability;
  if (rpcFailProbability > 0) out << " rpcfail=" << rpcFailProbability;
  return out.str();
}

std::string MetricSet::fileLabel() const {
  std::ostringstream out;
  out << protocol << "-" << model << "-n" << effectiveN << "-s" << seed;
  if (dropProbability > 0) out << "-d" << dropProbability;
  if (rpcFailProbability > 0) out << "-rf" << rpcFailProbability;
  std::string s = out.str();
  for (char& c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!ok) c = '_';
  }
  return s;
}

double MetricSet::accuracyMeanAbsError() const {
  if (accuracy.empty()) return 0.0;
  double sum = 0.0;
  for (const AvailabilityAccuracy& a : accuracy) {
    sum += std::fabs(a.estimated - a.actual);
  }
  return sum / static_cast<double>(accuracy.size());
}

MetricSet collectMetrics(const ScenarioRunner& runner) {
  const Scenario& s = runner.scenario();
  MetricSet out;
  out.protocol = s.protocol;
  out.model = churn::modelName(s.model);
  out.hashName = s.hashName;
  out.effectiveN = runner.effectiveN();
  out.seed = s.seed;
  out.shards = s.shards;
  out.horizonSeconds = toSeconds(s.horizon);
  out.warmupSeconds = toSeconds(s.warmup);
  out.dropProbability = s.messageDropProbability;
  out.rpcFailProbability = s.rpcFailProbability;

  out.discoverySeconds = runner.discoveryDelaysSeconds(1);
  out.discoveredFraction = runner.discoveredFraction(1);
  out.memoryEntries = runner.memoryEntries(/*measuredOnly=*/false);
  out.outgoingBytesPerSecond = runner.outgoingBytesPerSecond();
  out.uselessPingsPerMinute = runner.uselessPingsPerMinute();
  out.computationsPerSecond = runner.computationsPerSecond();
  out.accuracy = runner.availabilityAccuracy(/*measuredOnly=*/true);

  const Protocol& protocol = runner.protocol();
  for (const trace::NodeTrace& nt : runner.schedule().nodes()) {
    MetricSet::PerNodeRow row;
    row.id = nt.id;
    const sim::TrafficCounters traffic = runner.trafficOf(nt.id);
    row.bytesSent = traffic.bytesSent;
    row.messagesSent = traffic.messagesSent;
    row.memoryEntries = protocol.memoryEntries(nt.id);
    row.hashChecks = protocol.hashChecks(nt.id);
    row.uselessPings = protocol.uselessPings(nt.id);
    if (const auto d = protocol.discoveryDelay(nt.id, 1)) {
      row.discoverySeconds = toSeconds(*d);
    }
    out.perNode.push_back(row);
  }
  return out;
}

// ---- SummaryTableSink ----

void SummaryTableSink::add(const MetricSet& metrics) {
  sets_.push_back(metrics);
}

void SummaryTableSink::close() {
  std::ostream& out = *out_;
  for (const MetricSet& set : sets_) {
    stats::TablePrinter table("scenario summary: " + set.label());
    table.setHeader({"metric", "mean", "stddev", "p50", "p99", "n"});
    for (const NamedMetric& metric : kMetrics) {
      const MetricStats s = statsOf(set.*(metric.samples));
      table.addRow({metric.name, stats::TablePrinter::num(s.mean, 2),
                    stats::TablePrinter::num(s.stddev, 2),
                    stats::TablePrinter::num(s.p50, 2),
                    stats::TablePrinter::num(s.p99, 2),
                    std::to_string(s.count)});
    }
    table.print(out);
    out << "discovered fraction (>=1 monitor): "
        << stats::TablePrinter::num(set.discoveredFraction, 4) << "\n";
    if (!set.accuracy.empty()) {
      out << "availability estimate mean |error|: "
          << stats::TablePrinter::num(set.accuracyMeanAbsError(), 4) << " ("
          << set.accuracy.size() << " nodes)\n";
    }
    out << "\n";
  }

  // Two or more runs: the head-to-head view, one column per run. This is
  // the paper's comparison-table shape (Table 1 measured, not analytic).
  if (sets_.size() >= 2) {
    stats::TablePrinter table("protocol comparison (column = run)");
    std::vector<std::string> header = {"metric"};
    for (const MetricSet& set : sets_) header.push_back(set.label());
    table.setHeader(std::move(header));
    for (const NamedMetric& metric : kMetrics) {
      for (const char* stat : {"mean", "p99"}) {
        std::vector<std::string> row = {std::string(metric.name) + " " + stat};
        for (const MetricSet& set : sets_) {
          const MetricStats s = statsOf(set.*(metric.samples));
          row.push_back(stats::TablePrinter::num(
              std::string(stat) == "mean" ? s.mean : s.p99, 2));
        }
        table.addRow(std::move(row));
      }
    }
    std::vector<std::string> discovered = {"discovered fraction"};
    std::vector<std::string> accuracyRow = {"estimate mean |error|"};
    for (const MetricSet& set : sets_) {
      discovered.push_back(
          stats::TablePrinter::num(set.discoveredFraction, 4));
      accuracyRow.push_back(
          set.accuracy.empty()
              ? std::string("-")
              : stats::TablePrinter::num(set.accuracyMeanAbsError(), 4));
    }
    table.addRow(std::move(discovered));
    table.addRow(std::move(accuracyRow));
    table.print(out);
  }

  out.flush();
  if (!out) {
    throw std::runtime_error("metrics sink: summary output stream failed");
  }
}

// ---- CsvSink ----

void CsvSink::add(const MetricSet& metrics) { sets_.push_back(metrics); }

void CsvSink::close() {
  for (const MetricSet& set : sets_) {
    // Single-run sweeps keep the historical avmon_sim file names; multi-
    // run sweeps get one set of files per run, keyed by its label.
    const std::string base =
        sets_.size() == 1 ? prefix_ : prefix_ + "." + set.fileLabel();

    const auto emit = [&](const std::string& suffix,
                          const std::string& content) {
      const std::string path = base + suffix;
      writeTextFile(path, content);
      written_.push_back(path);
    };

    emit(".discovery.csv",
         csvOfSamples("discovery_seconds", set.discoverySeconds));
    emit(".memory.csv", csvOfSamples("memory_entries", set.memoryEntries));
    emit(".bandwidth.csv",
         csvOfSamples("outgoing_bps", set.outgoingBytesPerSecond));

    std::ostringstream perNode;
    perNode << "node,bytes_sent,messages_sent,memory_entries,hash_checks,"
               "useless_pings,discovery_seconds\n";
    for (const MetricSet::PerNodeRow& row : set.perNode) {
      perNode << row.id.toString() << "," << row.bytesSent << ","
              << row.messagesSent << "," << row.memoryEntries << ","
              << row.hashChecks << "," << row.uselessPings << ","
              << row.discoverySeconds << "\n";
    }
    emit(".pernode.csv", perNode.str());
  }
}

// ---- JsonSink ----

void JsonSink::add(const MetricSet& metrics) { sets_.push_back(metrics); }

void JsonSink::close() {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < sets_.size(); ++i) {
    const MetricSet& set = sets_[i];
    out << "  {\n";
    out << "    \"protocol\": \"" << set.protocol << "\",\n";
    out << "    \"model\": \"" << set.model << "\",\n";
    out << "    \"hash\": \"" << set.hashName << "\",\n";
    out << "    \"n\": " << set.effectiveN << ",\n";
    out << "    \"seed\": " << set.seed << ",\n";
    out << "    \"shards\": " << set.shards << ",\n";
    out << "    \"horizon_seconds\": " << set.horizonSeconds << ",\n";
    out << "    \"warmup_seconds\": " << set.warmupSeconds << ",\n";
    out << "    \"drop_probability\": " << set.dropProbability << ",\n";
    out << "    \"rpc_fail_probability\": " << set.rpcFailProbability
        << ",\n";
    for (const NamedMetric& metric : kMetrics) {
      appendJsonStats(out, jsonKeyOf(metric.name).c_str(),
                      statsOf(set.*(metric.samples)));
      out << ",\n";
    }
    out << "    \"discovered_fraction\": " << set.discoveredFraction << ",\n";
    out << "    \"accuracy_mean_abs_error\": " << set.accuracyMeanAbsError()
        << ",\n";
    out << "    \"accuracy_nodes\": " << set.accuracy.size() << "\n";
    out << "  }" << (i + 1 < sets_.size() ? "," : "") << "\n";
  }
  out << "]\n";
  writeTextFile(path_, out.str());
}

}  // namespace avmon::experiments
