// Adversary layer: deterministic resolution of a scenario's attack spec
// into concrete hostile cohorts, plus the post-run resilience probes the
// harness, the streaming `resilience` reducer, tests, and benches share.
//
// Threat model (paper Section 4.3, Figure 20):
//  * Collusion coalition — `attack.collusion` nodes that answer
//    availability probes falsely (100%) for a set of `attack.victims`
//    targeted nodes. AVMON's defense is structural: a colluder can only
//    influence a victim's record if it *legitimately* satisfies the
//    consistency condition (forged NOTIFYs are re-verified by receivers,
//    avmon/node.cpp handleNotify), so a victim is "eclipsed" exactly when
//    every monitor the selection hash assigned to it happens to be a
//    colluder — the event the closed-form probSystemCollusionFree
//    (analysis/formulas.hpp) bounds.
//  * Forgetful cohort — `attack.forgetful` fraction of nodes that wipe
//    their persistent storage (CV/PS/TS) on every leave, violating the
//    Section 3.3 persistence assumption.
//  * Over-reporting cohort — the existing Scenario::overreportFraction,
//    sweepable via the `attack.overreport` spec axis.
//
// Determinism: cohorts are drawn from private streams derived from
// (scenario seed XOR role salt) — never from the runner's root stream — so
// arming an attack does not shift a single draw of the underlying world,
// and the same spec resolves to the same cohorts at every shard count.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/node_id.hpp"
#include "experiments/scenario.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::experiments {

class Protocol;  // experiments/protocol.hpp

/// The scenario's attack spec resolved against a concrete trace: who
/// colludes, who is targeted, who forgets. Owned by the ScenarioRunner;
/// protocols receive a pointer through the ProtocolContext and tag their
/// participants accordingly.
struct ResolvedAdversary {
  std::vector<NodeId> colluders;  ///< coalition, in selection order
  std::vector<NodeId> victims;    ///< targeted nodes, in selection order
  std::vector<NodeId> amnesiacs;  ///< forgetful cohort, in trace order

  std::unordered_set<NodeId> colluderSet;
  std::unordered_set<NodeId> amnesiacSet;
  /// Shared with every colluding AvmonNode (AvmonNode::setCollusion):
  /// the targets they lie about.
  std::shared_ptr<const std::unordered_set<NodeId>> victimSet;

  bool enabled() const noexcept {
    return !colluders.empty() || !amnesiacs.empty();
  }
  bool isColluder(const NodeId& id) const {
    return colluderSet.count(id) != 0;
  }
  bool isVictim(const NodeId& id) const {
    return victimSet != nullptr && victimSet->count(id) != 0;
  }
  bool isAmnesiac(const NodeId& id) const {
    return amnesiacSet.count(id) != 0;
  }
};

/// Resolves the scenario's attack keys against the trace. Coalition and
/// victims are disjoint uniform picks; the forgetful cohort is a per-node
/// Bernoulli pass in trace order. All randomness comes from streams keyed
/// (seed XOR role salt) — the root stream is untouched.
ResolvedAdversary resolveAdversary(const Scenario& scenario,
                                   const trace::AvailabilityTrace& trace);

/// Applies the plan's correlated failure bursts to the trace in place:
/// for each burst a contiguous cluster covering `fraction` of the nodes
/// (offset drawn from a seed-derived stream) has every session clipped
/// out of [at, at + duration) — members die at the burst and rejoin with
/// their next surviving session, so ground truth, bootstrap picks, and
/// accuracy all see the same event. Idempotent for an empty burst list.
void applyBursts(trace::AvailabilityTrace& trace,
                 const std::vector<sim::BurstSpec>& bursts,
                 std::uint64_t seed);

/// Monitor-averaged estimate vs. window-aligned ground truth for one
/// trace node — the one definition of "availability accuracy", shared by
/// ScenarioRunner::availabilityAccuracy, the streaming collector, and the
/// resilience probes. nullopt when no monitor reports an estimate.
std::optional<AvailabilityAccuracy> alignedAccuracyOf(
    const Protocol& protocol, const trace::NodeTrace& nt);

/// Post-run outcome for one targeted victim.
struct VictimOutcome {
  NodeId id;
  std::size_t monitors = 0;           ///< discovered monitors
  std::size_t colludingMonitors = 0;  ///< of which coalition members
  /// Every discovered monitor is a colluder (and there is at least one):
  /// the victim's availability record is fully adversary-controlled.
  bool eclipsed = false;
  /// |monitor-averaged estimate - aligned ground truth|, when any monitor
  /// reports.
  std::optional<double> estimateAbsError;
};

/// Evaluates every victim against the protocol's post-run state, in the
/// adversary's victim order.
std::vector<VictimOutcome> victimOutcomes(
    const Protocol& protocol, const ResolvedAdversary& adversary,
    const trace::AvailabilityTrace& trace);

}  // namespace avmon::experiments
