// OnlineStats: mergeable count/mean/min/max/variance over a sample stream.
//
// Summation order is FIXED BY CONSTRUCTION, not by convention: both the
// sum and the sum of squares live in ExactSum superaccumulators, so every
// derived figure (mean, variance, stddev) is a deterministic function of
// the sample MULTISET alone. add() in any order, merge() in any tree
// shape — shard-partitioned streams reproduce the single-stream result
// bit-for-bit, which is what lets the sharded suite pin streamed
// summaries across S ∈ {1, 2, 3, 8}.
//
// Definitions (documented because they differ from stats::Summary's
// sequential Welford recurrence in rounding, not in the quantity):
//   mean     = round(exact Σx) / n                (one rounding, then /)
//   variance = (Σx² - (Σx)²/n) / (n - 1)          (sample variance; the
//              squares x·x are IEEE products, identical on every shard)
// min/max are exact and order-free by nature.
#pragma once

#include <cstddef>
#include <cstdint>

#include "experiments/streaming/exact_sum.hpp"

namespace avmon::experiments::streaming {

class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double min() const noexcept;  ///< 0 when empty (matches Summary)
  double max() const noexcept;
  double mean() const noexcept;
  double variance() const noexcept;  ///< sample variance; 0 for n < 2
  double stddev() const noexcept;
  double sum() const noexcept { return sum_.value(); }

  bool operator==(const OnlineStats& other) const noexcept {
    return count_ == other.count_ && min_ == other.min_ &&
           max_ == other.max_ && sum_ == other.sum_ &&
           sumSquares_ == other.sumSquares_;
  }

  static constexpr std::size_t stateBytes() noexcept {
    return sizeof(OnlineStats);
  }

 private:
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  ExactSum sum_;
  ExactSum sumSquares_;
};

}  // namespace avmon::experiments::streaming
