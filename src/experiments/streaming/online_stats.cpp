#include "experiments/streaming/online_stats.hpp"

#include <algorithm>
#include <cmath>

namespace avmon::experiments::streaming {

void OnlineStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_.add(x);
  sumSquares_.add(x * x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_.merge(other.sum_);
  sumSquares_.merge(other.sumSquares_);
}

double OnlineStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double OnlineStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double OnlineStats::mean() const noexcept {
  if (count_ == 0) return 0.0;
  return sum_.value() / static_cast<double>(count_);
}

double OnlineStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double s = sum_.value();
  const double var = (sumSquares_.value() - (s * s) / n) / (n - 1.0);
  // The algebraic form can dip infinitesimally negative for constant-ish
  // streams; clamp so stddev never NaNs.
  return var > 0.0 ? var : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace avmon::experiments::streaming
