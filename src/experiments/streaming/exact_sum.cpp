#include "experiments/streaming/exact_sum.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace avmon::experiments::streaming {

namespace {

// Decomposes a finite nonzero double into (sign, mantissa, exponent) with
// value = ±mantissa * 2^exponent, mantissa < 2^53. Bit fiddling instead of
// frexp so subnormals need no special case.
struct Decomposed {
  bool negative;
  std::uint64_t mantissa;
  int exponent;
};

Decomposed decompose(double x) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &x, sizeof bits);
  const bool negative = (bits >> 63) != 0;
  const int biased = static_cast<int>((bits >> 52) & 0x7FF);
  const std::uint64_t frac = bits & 0xFFFFFFFFFFFFFull;
  if (biased == 0) {
    return {negative, frac, -1074};  // subnormal: no implicit bit
  }
  return {negative, frac | (1ull << 52), biased - 1075};
}

}  // namespace

void ExactSum::addMagnitude(std::uint64_t mantissa, int exponent) noexcept {
  const int bitPos = exponent + kOffsetBits;
  const int limb = bitPos >> 6;
  const int shift = bitPos & 63;
  // The 53-bit mantissa shifted left by up to 63 bits spans at most two
  // limbs' worth of nonzero chunk plus a carry into the third.
  const std::uint64_t lo = mantissa << shift;
  const std::uint64_t hi = shift == 0 ? 0 : (mantissa >> (64 - shift));
  std::uint64_t carry = 0;
  {
    const std::uint64_t before = limbs_[limb];
    limbs_[limb] = before + lo;
    carry = limbs_[limb] < before ? 1 : 0;
  }
  {
    const std::uint64_t before = limbs_[limb + 1];
    const std::uint64_t add = hi + carry;  // hi < 2^63, carry <= 1: no wrap
    limbs_[limb + 1] = before + add;
    carry = limbs_[limb + 1] < before ? 1 : 0;
  }
  for (int i = limb + 2; carry != 0 && i < kLimbs; ++i) {
    carry = ++limbs_[i] == 0 ? 1 : 0;
  }
}

void ExactSum::subMagnitude(std::uint64_t mantissa, int exponent) noexcept {
  const int bitPos = exponent + kOffsetBits;
  const int limb = bitPos >> 6;
  const int shift = bitPos & 63;
  const std::uint64_t lo = mantissa << shift;
  const std::uint64_t hi = shift == 0 ? 0 : (mantissa >> (64 - shift));
  std::uint64_t borrow = 0;
  {
    const std::uint64_t before = limbs_[limb];
    limbs_[limb] = before - lo;
    borrow = before < lo ? 1 : 0;
  }
  {
    const std::uint64_t before = limbs_[limb + 1];
    const std::uint64_t sub = hi + borrow;  // hi < 2^63, borrow <= 1: no wrap
    limbs_[limb + 1] = before - sub;
    borrow = before < sub ? 1 : 0;
  }
  for (int i = limb + 2; borrow != 0 && i < kLimbs; ++i) {
    borrow = limbs_[i]-- == 0 ? 1 : 0;
  }
}

void ExactSum::add(double x) noexcept {
  if (!std::isfinite(x)) {
    nonFinite_ = true;
    return;
  }
  if (x == 0.0) return;
  const Decomposed d = decompose(x);
  if (d.negative) {
    subMagnitude(d.mantissa, d.exponent);
  } else {
    addMagnitude(d.mantissa, d.exponent);
  }
}

void ExactSum::merge(const ExactSum& other) noexcept {
  // Two's-complement limb-wise addition; wraparound at the top limb cannot
  // happen (the headroom limbs bound |sum| far below 2^(64 * kLimbs - 1)).
  std::uint64_t carry = 0;
  for (int i = 0; i < kLimbs; ++i) {
    const std::uint64_t before = limbs_[i];
    limbs_[i] = before + other.limbs_[i] + carry;
    carry = (limbs_[i] < before || (carry != 0 && limbs_[i] == before)) ? 1 : 0;
  }
  nonFinite_ = nonFinite_ || other.nonFinite_;
}

double ExactSum::value() const noexcept {
  if (nonFinite_) return std::numeric_limits<double>::quiet_NaN();

  // Sign-magnitude view of the two's-complement accumulator.
  const bool negative = (limbs_[kLimbs - 1] >> 63) != 0;
  std::array<std::uint64_t, kLimbs> mag = limbs_;
  if (negative) {
    std::uint64_t carry = 1;
    for (int i = 0; i < kLimbs; ++i) {
      mag[i] = ~mag[i] + carry;
      carry = (carry != 0 && mag[i] == 0) ? 1 : 0;
    }
  }

  // Highest set bit.
  int top = kLimbs - 1;
  while (top >= 0 && mag[top] == 0) --top;
  if (top < 0) return 0.0;
  int highBit = 63;
  while ((mag[top] >> highBit) == 0) --highBit;
  const int h = top * 64 + highBit;  // global bit position of the msb

  // Extract the top 53 bits as the mantissa, plus round and sticky bits.
  const auto bitAt = [&](int pos) -> std::uint64_t {
    if (pos < 0) return 0;
    return (mag[pos >> 6] >> (pos & 63)) & 1u;
  };
  std::uint64_t mantissa = 0;
  for (int pos = h; pos > h - 53; --pos) {
    mantissa = (mantissa << 1) | bitAt(pos);
  }
  const std::uint64_t roundBit = bitAt(h - 53);
  bool sticky = false;
  for (int pos = h - 54; pos >= 0 && !sticky; --pos) {
    // Whole-limb check once aligned, bit check at the ragged edge.
    if ((pos & 63) == 63) {
      for (int i = pos >> 6; i >= 0 && !sticky; --i) sticky = mag[i] != 0;
      break;
    }
    sticky = bitAt(pos) != 0;
  }

  int exponent = h - kOffsetBits - 52;  // value = mantissa * 2^exponent
  if (roundBit != 0 && (sticky || (mantissa & 1) != 0)) {
    if (++mantissa == (1ull << 53)) {
      mantissa >>= 1;
      ++exponent;
    }
  }
  // Inputs are finite doubles, so no set bit lies below 2^-1074 and the
  // magnitude never needs a subnormal second rounding here in practice;
  // std::ldexp performs the final (sub)normal placement correctly either
  // way, and overflow saturates to ±inf as IEEE addition would.
  const double magnitude =
      std::ldexp(static_cast<double>(mantissa), exponent);
  return negative ? -magnitude : magnitude;
}

}  // namespace avmon::experiments::streaming
