// Name -> Reducer factory table, mirroring ProtocolRegistry: one registry
// serves the whole process, Scenario::validate() resolves reducer names
// through it, the StreamingCollector instantiates through it, and tools
// enumerate it for --help / spec error messages. The four built-ins
// ("summary", "traffic", "discovery", "resilience") are pre-registered;
// tests and downstream code can add more.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiments/streaming/reducer.hpp"

namespace avmon::experiments::streaming {

/// How a registered reducer is created, plus the metadata tools print and
/// Scenario::validate() checks.
struct ReducerFactory {
  std::string name;         ///< registry key, also Scenario metrics.reducers
  std::string description;  ///< one-liner for --help and spec errors
  /// True when the reducer contributes windowed time-series columns (the
  /// collector skips the per-window root merge entirely when a scenario
  /// registers none — summary-only runs pay no per-window cost).
  bool windowed = false;
  std::function<std::unique_ptr<Reducer>()> make;
};

class ReducerRegistry {
 public:
  /// The process-wide registry with the built-ins pre-registered:
  /// summary, traffic, discovery, resilience.
  static ReducerRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on a duplicate or
  /// empty name, or a missing make function.
  void add(ReducerFactory factory);

  /// Factory for `name`, or nullptr when unknown.
  const ReducerFactory* find(const std::string& name) const;

  /// Instantiates `name`; throws std::invalid_argument listing the known
  /// reducers when the name is unknown.
  std::unique_ptr<Reducer> create(const std::string& name) const;

  /// Registered names in registration order (built-ins first).
  std::vector<std::string> names() const;

  /// "summary, traffic, ..." — for error messages and usage text.
  std::string namesJoined() const;

 private:
  ReducerRegistry();

  std::vector<ReducerFactory> factories_;
};

}  // namespace avmon::experiments::streaming
