// Reducer: the pluggable unit of the streaming metrics pipeline.
//
// Where the materialized lane scans the whole world at the end of a run
// (collectMetrics walks every node into MetricSet sample vectors), the
// streaming lane SUBSCRIBES: one Reducer instance lives inside every
// ShardedSimulator shard, fed two probe streams by the StreamingCollector:
//
//   onWindow(WindowProbe)  at every metric-window barrier, with the owning
//                          shard's aggregate deltas for the closed window
//                          (bytes, messages, first-monitor discoveries);
//   onNode(NodeProbe)      once per participant at the final barrier, with
//                          the node's per-metric samples under exactly the
//                          materialized lane's qualification rules.
//
// Aggregation is hierarchical: after each window the collector merges the
// shard instances into a root copy IN SHARD-INDEX ORDER and asks it for
// that window's time-series columns; at the horizon the same merge
// produces the final StreamedSummary. Reducer state must therefore be
// mergeable with an ASSOCIATIVE, PARTITION-INDEPENDENT merge — build it
// from the sketch library (ExactSum/OnlineStats/QuantileSketch) and
// integer counters, never from a bare floating accumulator, and the
// streamed output reproduces S = 1 bit-for-bit at every shard count (the
// same discipline the sharded simulator pins for the protocols).
//
// Determinism rules for new reducers (enforced by review + avmon_lint):
//   * no unordered-container iteration without a fixed order or a
//     reasoned `lint:allow` — use std::map/vectors like the built-ins;
//   * no wall clock, no private RNG seeds;
//   * onWindow/onNode run on shard worker threads: touch only this
//     instance's state (the collector hands each shard its own instance).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/node_id.hpp"
#include "common/time.hpp"
#include "experiments/streaming/online_stats.hpp"
#include "experiments/streaming/quantile_sketch.hpp"

namespace avmon::experiments::streaming {

/// One shard's aggregate deltas for one closed metric window. Every field
/// is a sum of per-node integer counters, so totals across shards are
/// independent of the partition.
struct WindowProbe {
  std::size_t shard = 0;
  SimTime windowStart = 0;  ///< exclusive
  SimTime windowEnd = 0;    ///< inclusive
  std::uint64_t bytesSentDelta = 0;
  std::uint64_t messagesSentDelta = 0;
  /// Measured nodes whose FIRST monitor discovery instant fell inside
  /// (windowStart, windowEnd].
  std::uint64_t discoveries = 0;
  /// Collusion-attack victims homed in this shard with >= 1 discovered
  /// monitor at the barrier, and those whose monitors are ALL coalition
  /// members. Gauges, not deltas — each victim lives in exactly one shard,
  /// so the cross-shard sum is the system-wide count. Always 0 when the
  /// scenario arms no attack.
  std::uint64_t victimsMonitored = 0;
  std::uint64_t victimsEclipsed = 0;
};

/// One participant's end-of-run samples. Each optional is engaged exactly
/// when the materialized lane would have pushed a sample for that metric
/// (ScenarioRunner::sampleRowOf documents the shared rules), so streamed
/// count/min/max/mean agree with the sample vectors exactly.
struct NodeProbe {
  NodeId id;
  bool measured = false;
  bool joined = false;  ///< measured node that joined (discovery denominator)
  std::optional<double> discoverySeconds;
  std::optional<double> memoryEntries;
  std::optional<double> outgoingBytesPerSecond;
  std::optional<double> uselessPingsPerMinute;
  std::optional<double> computationsPerSecond;
  std::optional<double> accuracyAbsError;
  /// Targeted by the scenario's collusion attack (false when none armed).
  bool victim = false;
  /// Victim whose every discovered monitor is a coalition member (and it
  /// has at least one) — its availability record is adversary-controlled.
  bool eclipsed = false;
  /// |estimated - actual| for victims regardless of measured-set
  /// membership (accuracyAbsError above stays measured-set-only so the
  /// summary metric is unchanged by the attack's victim draw).
  std::optional<double> victimAbsError;
};

/// One merged time-series row: the window plus named columns contributed
/// by each windowed reducer in registration order (fixed, so CSV/JSON
/// column order is deterministic).
struct WindowRow {
  SimTime windowStart = 0;
  SimTime windowEnd = 0;
  std::vector<std::pair<std::string, double>> columns;
};

/// One summary metric: full order-free moments plus a quantile sketch.
struct StreamedMetric {
  OnlineStats stats;
  QuantileSketch sketch;

  void add(double x) {
    stats.add(x);
    sketch.add(x);
  }
  void merge(const StreamedMetric& other) {
    stats.merge(other.stats);
    sketch.merge(other.sketch);
  }
  bool operator==(const StreamedMetric& other) const noexcept {
    return stats == other.stats && sketch == other.sketch;
  }
  std::size_t stateBytes() const noexcept {
    return sizeof(OnlineStats) + sketch.stateBytes();
  }
};

/// The MetricSet-compatible end-of-run summary the "summary" reducer
/// fills: one StreamedMetric per paper metric plus the discovery and
/// accuracy aggregates. O(reducers), never O(N).
struct StreamedSummary {
  StreamedMetric discoverySeconds;
  StreamedMetric memoryEntries;
  StreamedMetric outgoingBytesPerSecond;
  StreamedMetric uselessPingsPerMinute;
  StreamedMetric computationsPerSecond;
  /// Mean |estimated - actual| feeds accuracyMeanAbsError; count is the
  /// reporting-node count the sinks print.
  StreamedMetric accuracyAbsError;
  std::uint64_t joined = 0;  ///< measured nodes that ever joined
  std::uint64_t found = 0;   ///< of those, discovered >= 1 monitor

  /// Resilience under attack (the "resilience" reducer; all zero when the
  /// scenario arms no adversary).
  StreamedMetric victimAbsError;  ///< |est - actual| over reporting victims
  std::uint64_t victims = 0;      ///< targeted participants
  std::uint64_t eclipsed = 0;     ///< of those, fully coalition-eclipsed

  double discoveredFraction() const noexcept {
    return joined == 0
               ? 0.0
               : static_cast<double>(found) / static_cast<double>(joined);
  }
};

/// One pluggable online reduction. Lifetime: the registry's make() builds
/// the root prototype; fork() clones an EMPTY instance per shard; the
/// collector feeds shard instances, merges them into root copies, and
/// calls the emit hooks on the merged result only.
class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Registry key ("summary", "traffic", "discovery", ...).
  virtual std::string name() const = 0;

  /// A fresh, empty instance of the same concrete type.
  virtual std::unique_ptr<Reducer> fork() const = 0;

  // ---- per-shard ingest (shard worker thread, own instance only) ----
  virtual void onWindow(const WindowProbe& probe) { (void)probe; }
  virtual void onNode(const NodeProbe& probe) { (void)probe; }

  /// Merges `other` (same concrete type) into this instance. The
  /// collector merges shard instances in shard-index order; the merge
  /// must be associative and partition-independent (see header comment).
  virtual void mergeFrom(const Reducer& other) = 0;

  // ---- root-side emission (coordinator thread, merged copies) ----

  /// Appends this reducer's columns for the window just closed. Called on
  /// a root merge of the shard instances; windowed reducers override.
  virtual void emitWindowColumns(WindowRow& row) const { (void)row; }

  /// Clears window-scoped state on the shard instances after the root
  /// consumed it (run-scoped state — cumulative counters, summary
  /// sketches — stays).
  virtual void resetWindow() {}

  /// Contributes to the final summary. Called once, on the root merge at
  /// the horizon.
  virtual void finish(StreamedSummary& out) const { (void)out; }

  /// Retained bytes of reducer state (metric-state accounting for the
  /// streamed-vs-materialized bench comparison).
  virtual std::size_t stateBytes() const = 0;
};

/// Built-in reducer factories (reducer.cpp); pre-registered by
/// ReducerRegistry, exposed for direct use in tests.
std::unique_ptr<Reducer> makeSummaryReducer();
std::unique_ptr<Reducer> makeTrafficReducer();
std::unique_ptr<Reducer> makeDiscoveryReducer();
std::unique_ptr<Reducer> makeResilienceReducer();

}  // namespace avmon::experiments::streaming
