#include "experiments/streaming/collector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "experiments/adversary.hpp"
#include "experiments/protocol.hpp"
#include "experiments/scenario.hpp"
#include "experiments/streaming/reducer_registry.hpp"
#include "sim/sharded_simulator.hpp"

namespace avmon::experiments::streaming {

StreamingCollector::StreamingCollector(
    const ScenarioRunner& runner, const std::vector<std::string>& reducerNames)
    : runner_(&runner) {
  const ReducerRegistry& registry = ReducerRegistry::instance();
  names_ = reducerNames.empty() ? registry.names() : reducerNames;
  for (const std::string& name : names_) {
    const ReducerFactory* factory = registry.find(name);
    if (factory == nullptr) {
      throw std::invalid_argument(
          "StreamingCollector: unknown reducer '" + name +
          "' — known reducers: " + registry.namesJoined());
    }
    prototypes_.push_back(factory->make());
    windowed_.push_back(factory->windowed);
    anyWindowed_ = anyWindowed_ || factory->windowed;
  }

  const sim::ShardedSimulator& world = runner.world();
  banks_.resize(world.shardCount());
  for (ShardBank& bank : banks_) {
    bank.reducers.reserve(prototypes_.size());
    for (const auto& prototype : prototypes_) {
      bank.reducers.push_back(prototype->fork());
    }
  }

  measuredBySlot_.assign(runner.schedule().nodes().size(), 0);
  for (const NodeId& id : runner.measuredIds()) {
    measuredBySlot_[world.globalIndexOf(id)] = 1;
  }

  // Partition the participant population by home shard so the final node
  // scan runs where each node lives. Every protocol builds one participant
  // per trace node, so the measured set is a subset of this visit.
  runner.protocol().forEachNode([&](const NodeId& id) {
    ShardBank& bank = banks_[world.shardOf(id)];
    bank.participants.push_back(id);
    if (isMeasured(id)) bank.measuredHome.push_back(id);
  });

  // Collusion victims, partitioned the same way, so the resilience
  // reducer's barrier gauges are computed on each victim's home thread.
  for (const NodeId& id : runner.adversary().victims) {
    banks_[world.shardOf(id)].victimsHome.push_back(id);
  }
}

void StreamingCollector::onWindowBarrier(sim::ShardedSimulator& world,
                                         SimTime boundary) {
  const Protocol& protocol = runner_->protocol();
  world.visitShards([&](std::size_t s) {
    ShardBank& bank = banks_[s];
    WindowProbe probe;
    probe.shard = s;
    probe.windowStart = lastBoundary_;
    probe.windowEnd = boundary;
    // Aggregate counters are differenced, not scanned: O(1) per shard per
    // window. The warm-up resetTraffic zeroes the totals mid-window, so a
    // "backwards" total means this window's delta restarts at the reset.
    const sim::TrafficCounters totals = world.netOf(s).totalTraffic();
    probe.bytesSentDelta = totals.bytesSent >= bank.lastTotals.bytesSent
                               ? totals.bytesSent - bank.lastTotals.bytesSent
                               : totals.bytesSent;
    probe.messagesSentDelta =
        totals.messagesSent >= bank.lastTotals.messagesSent
            ? totals.messagesSent - bank.lastTotals.messagesSent
            : totals.messagesSent;
    bank.lastTotals = totals;
    // A recorded first-monitor delay implies the discovery already happened
    // (<= boundary), so the running count minus the last barrier's count is
    // exactly the discoveries inside (lastBoundary, boundary].
    std::size_t discovered = 0;
    for (const NodeId& id : bank.measuredHome) {
      if (protocol.discoveryDelay(id, 1)) ++discovered;
    }
    probe.discoveries =
        static_cast<std::uint64_t>(discovered - bank.discoveredSoFar);
    bank.discoveredSoFar = discovered;
    // Eclipse gauges over the victims homed here (the victim list is tiny
    // — the attack spec's victim count — so this stays O(1)-ish).
    const ResolvedAdversary& adversary = runner_->adversary();
    for (const NodeId& id : bank.victimsHome) {
      std::size_t monitors = 0, colluding = 0;
      protocol.visitMonitorsOf(id, [&](const NodeId& m) {
        ++monitors;
        if (adversary.isColluder(m)) ++colluding;
      });
      if (monitors > 0) {
        ++probe.victimsMonitored;
        if (colluding == monitors) ++probe.victimsEclipsed;
      }
    }
    for (auto& reducer : bank.reducers) reducer->onWindow(probe);
  });

  WindowRow row;
  row.windowStart = lastBoundary_;
  row.windowEnd = boundary;
  for (std::size_t i = 0; i < prototypes_.size(); ++i) {
    if (!windowed_[i]) continue;
    mergedRoot(i)->emitWindowColumns(row);
    for (ShardBank& bank : banks_) bank.reducers[i]->resetWindow();
  }
  windows_.push_back(std::move(row));
  lastBoundary_ = boundary;
}

void StreamingCollector::finish(sim::ShardedSimulator& world,
                                SimTime horizon) {
  if (finished_) {
    throw std::logic_error("StreamingCollector::finish called twice");
  }
  if (anyWindowed_ && lastBoundary_ < horizon) {
    onWindowBarrier(world, horizon);  // final (possibly shorter) window
  }
  world.visitShards([&](std::size_t s) {
    ShardBank& bank = banks_[s];
    for (const NodeId& id : bank.participants) {
      const NodeProbe probe = probeOf(id);
      for (auto& reducer : bank.reducers) reducer->onNode(probe);
    }
  });
  for (std::size_t i = 0; i < prototypes_.size(); ++i) {
    mergedRoot(i)->finish(summary_);
  }
  finished_ = true;
}

bool StreamingCollector::isMeasured(const NodeId& id) const {
  const std::size_t slot = runner_->world().globalIndexOf(id);
  return slot < measuredBySlot_.size() && measuredBySlot_[slot] != 0;
}

NodeProbe StreamingCollector::probeOf(const NodeId& id) const {
  const Protocol& protocol = runner_->protocol();
  const Scenario& scenario = runner_->scenario();
  NodeProbe probe;
  probe.id = id;
  probe.measured = isMeasured(id);
  const trace::NodeTrace* nt = runner_->traceOf(id);

  if (probe.measured) {
    probe.joined = nt != nullptr && nt->firstJoin().has_value();
    if (const auto d = protocol.discoveryDelay(id, 1)) {
      probe.discoverySeconds = toSeconds(*d);
    }
    if (nt != nullptr) {
      const double upSeconds = toSeconds(nt->totalUpTime());
      if (upSeconds >= 1.0) {
        probe.computationsPerSecond =
            static_cast<double>(protocol.hashChecks(id)) / upSeconds;
      }
    }
  }

  if (const std::size_t entries = protocol.memoryEntries(id); entries != 0) {
    probe.memoryEntries = static_cast<double>(entries);
  }

  const SimTime from = scenario.warmup;
  const SimTime to = scenario.horizon;
  double upSeconds, windowSeconds;
  if (nt != nullptr) {
    upSeconds = nt->availability(from, to) * toSeconds(to - from);
    windowSeconds = toSeconds(to - std::max(from, nt->birth));
  } else {
    upSeconds = toSeconds(to - from);
    windowSeconds = upSeconds;
  }
  if (upSeconds >= toSeconds(runner_->config().protocolPeriod)) {
    probe.outgoingBytesPerSecond =
        static_cast<double>(runner_->trafficOf(id).bytesSent) / windowSeconds;
  }

  if (protocol.isMonitoring(id)) {
    const double upMinutes = nt != nullptr ? toMinutes(nt->totalUpTime())
                                           : toMinutes(scenario.horizon);
    if (upMinutes >= 1.0) {
      probe.uselessPingsPerMinute =
          static_cast<double>(protocol.uselessPings(id)) / upMinutes;
    }
  }

  // The one shared accuracy definition (experiments/adversary.cpp) — the
  // materialized lane uses the same function, so the lanes stay
  // sample-for-sample identical.
  if (probe.measured && nt != nullptr) {
    if (const auto acc = alignedAccuracyOf(protocol, *nt)) {
      probe.accuracyAbsError = std::fabs(acc->estimated - acc->actual);
    }
  }

  const ResolvedAdversary& adversary = runner_->adversary();
  probe.victim = adversary.isVictim(id);
  if (probe.victim) {
    std::size_t monitors = 0, colluding = 0;
    protocol.visitMonitorsOf(id, [&](const NodeId& m) {
      ++monitors;
      if (adversary.isColluder(m)) ++colluding;
    });
    probe.eclipsed = monitors > 0 && colluding == monitors;
    if (nt != nullptr) {
      if (const auto acc = alignedAccuracyOf(protocol, *nt)) {
        probe.victimAbsError = std::fabs(acc->estimated - acc->actual);
      }
    }
  }
  return probe;
}

std::unique_ptr<Reducer> StreamingCollector::mergedRoot(std::size_t i) const {
  std::unique_ptr<Reducer> root = prototypes_[i]->fork();
  for (const ShardBank& bank : banks_) root->mergeFrom(*bank.reducers[i]);
  return root;
}

const StreamedSummary& StreamingCollector::summary() const {
  if (!finished_) {
    throw std::logic_error(
        "StreamingCollector::summary read before finish()");
  }
  return summary_;
}

std::size_t StreamingCollector::stateBytes() const {
  std::size_t bytes = 0;
  for (const auto& prototype : prototypes_) bytes += prototype->stateBytes();
  for (const ShardBank& bank : banks_) {
    for (const auto& reducer : bank.reducers) bytes += reducer->stateBytes();
  }
  for (const WindowRow& row : windows_) {
    bytes += sizeof(WindowRow) +
             row.columns.size() * sizeof(std::pair<std::string, double>);
  }
  return bytes;
}

}  // namespace avmon::experiments::streaming
