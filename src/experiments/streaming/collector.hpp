// StreamingCollector: drives the reducer banks against a running scenario.
//
// One bank of reducer instances lives in every ShardedSimulator shard (the
// hierarchical half of the pipeline). The collector feeds them through
// ShardedSimulator::visitShards, so each bank is only ever touched by the
// worker thread that owns its shard:
//
//   onWindowBarrier(b)  at every metric-window boundary the runner aligned
//                       to the sharding-window grid: each shard differences
//                       its network's aggregate counters and discovery
//                       count against the previous barrier and feeds its
//                       bank a WindowProbe; the coordinator then merges the
//                       banks (shard-index order) into a root copy, emits
//                       one WindowRow, and resets window-scoped state.
//   finish(horizon)     once: each shard probes the participants it owns
//                       into NodeProbes (exactly the materialized lane's
//                       qualification rules), then the root merge fills the
//                       final StreamedSummary.
//
// Peak metric state is O(shards x reducers x sketch size) + the windowed
// rows — never O(N): no sample vector or per-node table is materialized
// anywhere on this path, which is the bench-pinned memory win.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/node_id.hpp"
#include "common/time.hpp"
#include "experiments/streaming/reducer.hpp"
#include "sim/network.hpp"

namespace avmon::sim {
class ShardedSimulator;
}

namespace avmon::experiments {
class ScenarioRunner;
}

namespace avmon::experiments::streaming {

class StreamingCollector {
 public:
  /// Resolves `reducerNames` (empty = every registered reducer) against the
  /// ReducerRegistry and forks one bank per shard of `runner`'s world.
  /// Throws std::invalid_argument for unknown names. The runner must
  /// outlive the collector; its protocol must already be built.
  StreamingCollector(const ScenarioRunner& runner,
                     const std::vector<std::string>& reducerNames);

  StreamingCollector(const StreamingCollector&) = delete;
  StreamingCollector& operator=(const StreamingCollector&) = delete;

  /// True if any resolved reducer produces windowed columns — when false
  /// the runner skips intermediate barriers entirely (summary-only runs
  /// stream at zero window cost).
  bool anyWindowed() const noexcept { return anyWindowed_; }

  /// Reducer names in emission order (fixed at construction).
  const std::vector<std::string>& reducerNames() const noexcept {
    return names_;
  }

  /// Closes the metric window (lastBoundary, boundary]. `world` must be
  /// quiescent with every shard clock at `boundary` — the runner guarantees
  /// this by aligning boundaries to full sharding windows.
  void onWindowBarrier(sim::ShardedSimulator& world, SimTime boundary);

  /// Closes the final partial window (if any reducer is windowed), runs the
  /// per-shard node scan, and merges the banks into the final summary.
  void finish(sim::ShardedSimulator& world, SimTime horizon);

  const std::vector<WindowRow>& windows() const noexcept { return windows_; }

  /// Valid after finish(); throws std::logic_error before.
  const StreamedSummary& summary() const;

  /// Retained metric-state bytes across every bank, prototype, and window
  /// row — the streamed side of the streamed-vs-materialized bench.
  std::size_t stateBytes() const;

 private:
  struct ShardBank {
    std::vector<std::unique_ptr<Reducer>> reducers;  ///< parallel to names_
    sim::TrafficCounters lastTotals;  ///< network totals at the last barrier
    std::vector<NodeId> participants;  ///< forEachNode order, home-shard cut
    std::vector<NodeId> measuredHome;  ///< measured nodes homed here
    std::vector<NodeId> victimsHome;   ///< collusion victims homed here
    std::size_t discoveredSoFar = 0;   ///< measured nodes discovered by now
  };

  /// One participant's end-of-run samples under the materialized lane's
  /// exact qualification rules (see ScenarioRunner's probe methods — the
  /// property suite pins the two lanes sample-for-sample).
  NodeProbe probeOf(const NodeId& id) const;

  /// Fresh root = fold of every shard's instance i, in shard-index order.
  std::unique_ptr<Reducer> mergedRoot(std::size_t i) const;

  /// Measured-set membership via the dense slot bitmap below.
  bool isMeasured(const NodeId& id) const;

  const ScenarioRunner* runner_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Reducer>> prototypes_;
  std::vector<bool> windowed_;
  bool anyWindowed_ = false;
  std::vector<ShardBank> banks_;
  // Measured-set membership, one byte per global world slot (== trace
  // position). Replaces the old NodeId hash set — ground-truth lookups go
  // through ScenarioRunner::traceOf, so the collector holds no per-node
  // hash container at all (the million-node memory diet).
  std::vector<std::uint8_t> measuredBySlot_;
  SimTime lastBoundary_ = 0;
  std::vector<WindowRow> windows_;
  StreamedSummary summary_;
  bool finished_ = false;
};

}  // namespace avmon::experiments::streaming
