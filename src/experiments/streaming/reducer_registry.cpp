#include "experiments/streaming/reducer_registry.hpp"

#include <stdexcept>

namespace avmon::experiments::streaming {

ReducerRegistry::ReducerRegistry() {
  add({"summary",
       "MetricSet-compatible end-of-run summary (stats + quantile sketches)",
       /*windowed=*/false, [] { return makeSummaryReducer(); }});
  add({"traffic", "windowed outgoing bytes/messages time-series",
       /*windowed=*/true, [] { return makeTrafficReducer(); }});
  add({"discovery", "windowed first-monitor discovery counts",
       /*windowed=*/true, [] { return makeDiscoveryReducer(); }});
  add({"resilience",
       "victim eclipse gauges and accuracy under the scenario's adversary",
       /*windowed=*/true, [] { return makeResilienceReducer(); }});
}

ReducerRegistry& ReducerRegistry::instance() {
  static ReducerRegistry registry;
  return registry;
}

void ReducerRegistry::add(ReducerFactory factory) {
  if (factory.name.empty()) {
    throw std::invalid_argument("ReducerRegistry: factory name is empty");
  }
  if (find(factory.name) != nullptr) {
    throw std::invalid_argument("ReducerRegistry: duplicate reducer '" +
                                factory.name + "'");
  }
  if (!factory.make) {
    throw std::invalid_argument("ReducerRegistry: reducer '" + factory.name +
                                "' has no make function");
  }
  factories_.push_back(std::move(factory));
}

const ReducerFactory* ReducerRegistry::find(const std::string& name) const {
  for (const ReducerFactory& factory : factories_) {
    if (factory.name == name) return &factory;
  }
  return nullptr;
}

std::unique_ptr<Reducer> ReducerRegistry::create(
    const std::string& name) const {
  const ReducerFactory* factory = find(name);
  if (factory == nullptr) {
    throw std::invalid_argument("ReducerRegistry: unknown reducer '" + name +
                                "' — known reducers: " + namesJoined());
  }
  return factory->make();
}

std::vector<std::string> ReducerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const ReducerFactory& factory : factories_) out.push_back(factory.name);
  return out;
}

std::string ReducerRegistry::namesJoined() const {
  std::string out;
  for (const ReducerFactory& factory : factories_) {
    if (!out.empty()) out += ", ";
    out += factory.name;
  }
  return out;
}

}  // namespace avmon::experiments::streaming
