#include "experiments/streaming/quantile_sketch.hpp"

#include <algorithm>
#include <cmath>

namespace avmon::experiments::streaming {

void QuantileSketch::bump(Bins& bins, std::int32_t bin, std::uint64_t n) {
  const auto it = std::lower_bound(
      bins.begin(), bins.end(), bin,
      [](const auto& entry, std::int32_t key) { return entry.first < key; });
  if (it != bins.end() && it->first == bin) {
    it->second += n;
  } else {
    bins.insert(it, {bin, n});
  }
}

std::int32_t QuantileSketch::binOf(double magnitude) noexcept {
  int e = 0;
  const double m = std::frexp(magnitude, &e);  // m in [0.5, 1), exact
  // (2m - 1) * kSubBins is exact: 2m - 1 is a Sterbenz-exact difference in
  // [0, 1) and kSubBins is a power of two — so the sub-bin is a pure
  // function of the value's bits, never of rounding mode or platform.
  const auto sub = static_cast<std::int32_t>((2.0 * m - 1.0) * kSubBins);
  return static_cast<std::int32_t>(e) * static_cast<std::int32_t>(kSubBins) +
         sub;
}

double QuantileSketch::binMid(std::int32_t bin) noexcept {
  const auto subBins = static_cast<std::int32_t>(kSubBins);
  std::int32_t e = bin / subBins;
  std::int32_t sub = bin % subBins;
  if (sub < 0) {  // floor division for negative exponents
    sub += subBins;
    e -= 1;
  }
  const double mantissa =
      1.0 + (static_cast<double>(sub) + 0.5) / static_cast<double>(kSubBins);
  return std::ldexp(mantissa, e - 1);
}

void QuantileSketch::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  if (x == 0.0) {
    ++zeroCount_;
  } else if (x > 0.0) {
    bump(positive_, binOf(x), 1);
  } else {
    bump(negative_, binOf(-x), 1);
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  zeroCount_ += other.zeroCount_;
  for (const auto& [bin, n] : other.positive_) bump(positive_, bin, n);
  for (const auto& [bin, n] : other.negative_) bump(negative_, bin, n);
}

double QuantileSketch::quantile(double phi) const noexcept {
  if (count_ == 0) return 0.0;
  // Same rank convention as stats::Cdf::percentile: 1-indexed ceil rank,
  // clamped into [1, n].
  std::uint64_t rank = 0;
  if (phi > 0.0) {
    rank = static_cast<std::uint64_t>(
        std::ceil(phi * static_cast<double>(count_)));
  }
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;

  const auto clamped = [&](double v) noexcept {
    if (v < min_) return min_;
    if (v > max_) return max_;
    return v;
  };

  std::uint64_t cumulative = 0;
  // Ascending value order: most-negative first (descending magnitude bin),
  // then zero, then positives ascending.
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    cumulative += it->second;
    if (cumulative >= rank) return clamped(-binMid(it->first));
  }
  cumulative += zeroCount_;
  if (cumulative >= rank) return clamped(0.0);
  for (const auto& [bin, n] : positive_) {
    cumulative += n;
    if (cumulative >= rank) return clamped(binMid(bin));
  }
  return max_;  // unreachable when counts are consistent
}

std::size_t QuantileSketch::stateBytes() const noexcept {
  // Flat storage: retained bytes are the vectors' capacity, nothing else.
  // An estimate for the bench's accounting, not an allocator audit.
  return sizeof(QuantileSketch) +
         (positive_.capacity() + negative_.capacity()) *
             sizeof(Bins::value_type);
}

}  // namespace avmon::experiments::streaming
