// Mergeable quantile sketch: fixed-bin logarithmic histogram.
//
// Bins are FIXED functions of the value alone (no data-driven compaction,
// no randomness): a positive x falls in the bin indexed by its binary
// exponent times kSubBins plus a linear sub-bin of its mantissa. Bin
// counts are integers, so add/merge are exactly associative and
// commutative — any shard partition of a sample stream merges (in any
// order, though the collector merges in shard-index order) to the
// identical sketch, bit for bit. This is the deterministic alternative to
// KLL: KLL's accuracy is rank-uniform but its compaction is sampling-
// based; the log-histogram gives up rank-uniformity for a guaranteed
// RELATIVE value error and perfect partition invariance.
//
// Error bound (documented, property-tested): quantile(phi) returns a
// value v with |v - q| <= q / kSubBins for the true sample quantile
// q > 0 (same ceil-rank definition as stats::Cdf::percentile), i.e. a
// relative error of at most 1/kSubBins ≈ 3.1% at the default 32 sub-bins
// per octave. Zero and negative samples sit in their own exact/mirrored
// bins; results are clamped to the exact observed [min, max].
//
// Memory: one (bin index, count) entry per distinct occupied bin — in
// practice tens of entries, bounded by kSubBins per octave of dynamic
// range. Storage is a flat sorted vector probed by binary search: at these
// sizes that beats the old std::map (one ~48-byte red-black node plus an
// allocation per bin; the sketch is forked per shard per reducer, so node
// churn multiplied). Iteration stays ascending-by-bin, so results are
// bit-identical to the map layout and avmon_lint-clean.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace avmon::experiments::streaming {

class QuantileSketch {
 public:
  /// Sub-bins per power of two. 32 bounds the relative value error by
  /// 1/32; doubling it halves the error and (at most) doubles the bins.
  static constexpr std::uint32_t kSubBins = 32;

  void add(double x) noexcept;
  void merge(const QuantileSketch& other);

  /// Value at quantile phi with the same rank convention as
  /// stats::Cdf::percentile: rank = ceil(phi * n) clamped to [1, n];
  /// 0 when empty. Accurate to the relative bound above.
  double quantile(double phi) const noexcept;

  std::uint64_t count() const noexcept { return count_; }

  bool operator==(const QuantileSketch& other) const noexcept {
    return count_ == other.count_ && zeroCount_ == other.zeroCount_ &&
           positive_ == other.positive_ && negative_ == other.negative_ &&
           min_ == other.min_ && max_ == other.max_;
  }

  /// Retained bytes (for the bench's metric-state accounting).
  std::size_t stateBytes() const noexcept;

 private:
  /// (bin index, sample count), kept sorted ascending by bin.
  using Bins = std::vector<std::pair<std::int32_t, std::uint64_t>>;

  static std::int32_t binOf(double magnitude) noexcept;
  static double binMid(std::int32_t bin) noexcept;
  /// += n on `bin`'s count, inserting the bin at its sorted position.
  static void bump(Bins& bins, std::int32_t bin, std::uint64_t n);

  // Sorted (bin, count) entries; negative values are binned by magnitude
  // in their own mirrored histogram.
  Bins positive_;
  Bins negative_;
  std::uint64_t zeroCount_ = 0;
  std::uint64_t count_ = 0;
  double min_ = 0.0;  ///< exact observed extrema (valid when count_ > 0)
  double max_ = 0.0;
};

}  // namespace avmon::experiments::streaming
