// Built-in reducers. Each is a worked example of the determinism rules in
// reducer.hpp: state is integer counters and sketch-library types only, so
// merges are exact and partition-independent by construction.
#include "experiments/streaming/reducer.hpp"

#include "common/time.hpp"

namespace avmon::experiments::streaming {

namespace {

/// "summary": the MetricSet-compatible end-of-run reduction — one
/// StreamedMetric per paper metric, fed by the final node scan. Registers
/// no windowed columns, so summary-only scenarios pay nothing per window.
class SummaryReducer final : public Reducer {
 public:
  std::string name() const override { return "summary"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<SummaryReducer>();
  }

  void onNode(const NodeProbe& probe) override {
    if (probe.discoverySeconds) agg_.discoverySeconds.add(*probe.discoverySeconds);
    if (probe.memoryEntries) agg_.memoryEntries.add(*probe.memoryEntries);
    if (probe.outgoingBytesPerSecond) {
      agg_.outgoingBytesPerSecond.add(*probe.outgoingBytesPerSecond);
    }
    if (probe.uselessPingsPerMinute) {
      agg_.uselessPingsPerMinute.add(*probe.uselessPingsPerMinute);
    }
    if (probe.computationsPerSecond) {
      agg_.computationsPerSecond.add(*probe.computationsPerSecond);
    }
    if (probe.accuracyAbsError) agg_.accuracyAbsError.add(*probe.accuracyAbsError);
    if (probe.joined) {
      ++agg_.joined;
      if (probe.discoverySeconds) ++agg_.found;
    }
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const SummaryReducer&>(other);
    agg_.discoverySeconds.merge(o.agg_.discoverySeconds);
    agg_.memoryEntries.merge(o.agg_.memoryEntries);
    agg_.outgoingBytesPerSecond.merge(o.agg_.outgoingBytesPerSecond);
    agg_.uselessPingsPerMinute.merge(o.agg_.uselessPingsPerMinute);
    agg_.computationsPerSecond.merge(o.agg_.computationsPerSecond);
    agg_.accuracyAbsError.merge(o.agg_.accuracyAbsError);
    agg_.joined += o.agg_.joined;
    agg_.found += o.agg_.found;
  }

  void finish(StreamedSummary& out) const override {
    // Field-wise, not whole-struct: the resilience reducer owns the
    // victim fields of the same summary, and finish order (the scenario's
    // reducer list) must not decide whose fields survive.
    out.discoverySeconds = agg_.discoverySeconds;
    out.memoryEntries = agg_.memoryEntries;
    out.outgoingBytesPerSecond = agg_.outgoingBytesPerSecond;
    out.uselessPingsPerMinute = agg_.uselessPingsPerMinute;
    out.computationsPerSecond = agg_.computationsPerSecond;
    out.accuracyAbsError = agg_.accuracyAbsError;
    out.joined = agg_.joined;
    out.found = agg_.found;
  }

  std::size_t stateBytes() const override {
    return sizeof(*this) - sizeof(StreamedSummary) +
           agg_.discoverySeconds.stateBytes() + agg_.memoryEntries.stateBytes() +
           agg_.outgoingBytesPerSecond.stateBytes() +
           agg_.uselessPingsPerMinute.stateBytes() +
           agg_.computationsPerSecond.stateBytes() +
           agg_.accuracyAbsError.stateBytes() + 2 * sizeof(std::uint64_t);
  }

 private:
  StreamedSummary agg_;
};

/// "traffic": windowed outgoing bytes/messages (per-shard network totals,
/// differenced at barriers) — the paper's bandwidth metric as a
/// time-series instead of one end-of-run distribution.
class TrafficReducer final : public Reducer {
 public:
  std::string name() const override { return "traffic"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<TrafficReducer>();
  }

  void onWindow(const WindowProbe& probe) override {
    windowBytes_ += probe.bytesSentDelta;
    windowMessages_ += probe.messagesSentDelta;
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const TrafficReducer&>(other);
    windowBytes_ += o.windowBytes_;
    windowMessages_ += o.windowMessages_;
  }

  void emitWindowColumns(WindowRow& row) const override {
    const double seconds = toSeconds(row.windowEnd - row.windowStart);
    row.columns.emplace_back("traffic_bytes",
                             static_cast<double>(windowBytes_));
    row.columns.emplace_back("traffic_messages",
                             static_cast<double>(windowMessages_));
    row.columns.emplace_back(
        "traffic_bytes_per_sec",
        seconds > 0.0 ? static_cast<double>(windowBytes_) / seconds : 0.0);
  }

  void resetWindow() override {
    windowBytes_ = 0;
    windowMessages_ = 0;
  }

  std::size_t stateBytes() const override { return sizeof(*this); }

 private:
  std::uint64_t windowBytes_ = 0;
  std::uint64_t windowMessages_ = 0;
};

/// "discovery": windowed first-monitor discoveries over the measured set
/// (per window and cumulative) — the discovery-delay CDF's time axis,
/// observable while the run is still going.
class DiscoveryReducer final : public Reducer {
 public:
  std::string name() const override { return "discovery"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<DiscoveryReducer>();
  }

  void onWindow(const WindowProbe& probe) override {
    windowDiscoveries_ += probe.discoveries;
    totalDiscoveries_ += probe.discoveries;
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const DiscoveryReducer&>(other);
    windowDiscoveries_ += o.windowDiscoveries_;
    totalDiscoveries_ += o.totalDiscoveries_;
  }

  void emitWindowColumns(WindowRow& row) const override {
    row.columns.emplace_back("discoveries",
                             static_cast<double>(windowDiscoveries_));
    row.columns.emplace_back("discovered_total",
                             static_cast<double>(totalDiscoveries_));
  }

  void resetWindow() override { windowDiscoveries_ = 0; }

  std::size_t stateBytes() const override { return sizeof(*this); }

 private:
  std::uint64_t windowDiscoveries_ = 0;
  std::uint64_t totalDiscoveries_ = 0;
};

/// "resilience": graceful degradation under the scenario's adversary —
/// windowed eclipse gauges over the collusion victims plus the end-of-run
/// victim accuracy distribution. Emits all-zero columns (and an empty
/// summary metric) when no attack is armed, so it is safe to run always.
class ResilienceReducer final : public Reducer {
 public:
  std::string name() const override { return "resilience"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<ResilienceReducer>();
  }

  void onWindow(const WindowProbe& probe) override {
    windowVictimsMonitored_ += probe.victimsMonitored;
    windowVictimsEclipsed_ += probe.victimsEclipsed;
  }

  void onNode(const NodeProbe& probe) override {
    if (!probe.victim) return;
    ++victims_;
    if (probe.eclipsed) ++eclipsed_;
    if (probe.victimAbsError) victimAbsError_.add(*probe.victimAbsError);
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const ResilienceReducer&>(other);
    windowVictimsMonitored_ += o.windowVictimsMonitored_;
    windowVictimsEclipsed_ += o.windowVictimsEclipsed_;
    victims_ += o.victims_;
    eclipsed_ += o.eclipsed_;
    victimAbsError_.merge(o.victimAbsError_);
  }

  void emitWindowColumns(WindowRow& row) const override {
    row.columns.emplace_back("victims_monitored",
                             static_cast<double>(windowVictimsMonitored_));
    row.columns.emplace_back("victims_eclipsed",
                             static_cast<double>(windowVictimsEclipsed_));
  }

  void resetWindow() override {
    windowVictimsMonitored_ = 0;
    windowVictimsEclipsed_ = 0;
  }

  void finish(StreamedSummary& out) const override {
    out.victims = victims_;
    out.eclipsed = eclipsed_;
    out.victimAbsError = victimAbsError_;
  }

  std::size_t stateBytes() const override {
    return sizeof(*this) - sizeof(StreamedMetric) +
           victimAbsError_.stateBytes();
  }

 private:
  std::uint64_t windowVictimsMonitored_ = 0;
  std::uint64_t windowVictimsEclipsed_ = 0;
  std::uint64_t victims_ = 0;
  std::uint64_t eclipsed_ = 0;
  StreamedMetric victimAbsError_;
};

}  // namespace

std::unique_ptr<Reducer> makeSummaryReducer() {
  return std::make_unique<SummaryReducer>();
}
std::unique_ptr<Reducer> makeTrafficReducer() {
  return std::make_unique<TrafficReducer>();
}
std::unique_ptr<Reducer> makeDiscoveryReducer() {
  return std::make_unique<DiscoveryReducer>();
}
std::unique_ptr<Reducer> makeResilienceReducer() {
  return std::make_unique<ResilienceReducer>();
}

}  // namespace avmon::experiments::streaming
