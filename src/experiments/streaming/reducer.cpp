// Built-in reducers. Each is a worked example of the determinism rules in
// reducer.hpp: state is integer counters and sketch-library types only, so
// merges are exact and partition-independent by construction.
#include "experiments/streaming/reducer.hpp"

#include "common/time.hpp"

namespace avmon::experiments::streaming {

namespace {

/// "summary": the MetricSet-compatible end-of-run reduction — one
/// StreamedMetric per paper metric, fed by the final node scan. Registers
/// no windowed columns, so summary-only scenarios pay nothing per window.
class SummaryReducer final : public Reducer {
 public:
  std::string name() const override { return "summary"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<SummaryReducer>();
  }

  void onNode(const NodeProbe& probe) override {
    if (probe.discoverySeconds) agg_.discoverySeconds.add(*probe.discoverySeconds);
    if (probe.memoryEntries) agg_.memoryEntries.add(*probe.memoryEntries);
    if (probe.outgoingBytesPerSecond) {
      agg_.outgoingBytesPerSecond.add(*probe.outgoingBytesPerSecond);
    }
    if (probe.uselessPingsPerMinute) {
      agg_.uselessPingsPerMinute.add(*probe.uselessPingsPerMinute);
    }
    if (probe.computationsPerSecond) {
      agg_.computationsPerSecond.add(*probe.computationsPerSecond);
    }
    if (probe.accuracyAbsError) agg_.accuracyAbsError.add(*probe.accuracyAbsError);
    if (probe.joined) {
      ++agg_.joined;
      if (probe.discoverySeconds) ++agg_.found;
    }
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const SummaryReducer&>(other);
    agg_.discoverySeconds.merge(o.agg_.discoverySeconds);
    agg_.memoryEntries.merge(o.agg_.memoryEntries);
    agg_.outgoingBytesPerSecond.merge(o.agg_.outgoingBytesPerSecond);
    agg_.uselessPingsPerMinute.merge(o.agg_.uselessPingsPerMinute);
    agg_.computationsPerSecond.merge(o.agg_.computationsPerSecond);
    agg_.accuracyAbsError.merge(o.agg_.accuracyAbsError);
    agg_.joined += o.agg_.joined;
    agg_.found += o.agg_.found;
  }

  void finish(StreamedSummary& out) const override { out = agg_; }

  std::size_t stateBytes() const override {
    return sizeof(*this) - sizeof(StreamedSummary) +
           agg_.discoverySeconds.stateBytes() + agg_.memoryEntries.stateBytes() +
           agg_.outgoingBytesPerSecond.stateBytes() +
           agg_.uselessPingsPerMinute.stateBytes() +
           agg_.computationsPerSecond.stateBytes() +
           agg_.accuracyAbsError.stateBytes() + 2 * sizeof(std::uint64_t);
  }

 private:
  StreamedSummary agg_;
};

/// "traffic": windowed outgoing bytes/messages (per-shard network totals,
/// differenced at barriers) — the paper's bandwidth metric as a
/// time-series instead of one end-of-run distribution.
class TrafficReducer final : public Reducer {
 public:
  std::string name() const override { return "traffic"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<TrafficReducer>();
  }

  void onWindow(const WindowProbe& probe) override {
    windowBytes_ += probe.bytesSentDelta;
    windowMessages_ += probe.messagesSentDelta;
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const TrafficReducer&>(other);
    windowBytes_ += o.windowBytes_;
    windowMessages_ += o.windowMessages_;
  }

  void emitWindowColumns(WindowRow& row) const override {
    const double seconds = toSeconds(row.windowEnd - row.windowStart);
    row.columns.emplace_back("traffic_bytes",
                             static_cast<double>(windowBytes_));
    row.columns.emplace_back("traffic_messages",
                             static_cast<double>(windowMessages_));
    row.columns.emplace_back(
        "traffic_bytes_per_sec",
        seconds > 0.0 ? static_cast<double>(windowBytes_) / seconds : 0.0);
  }

  void resetWindow() override {
    windowBytes_ = 0;
    windowMessages_ = 0;
  }

  std::size_t stateBytes() const override { return sizeof(*this); }

 private:
  std::uint64_t windowBytes_ = 0;
  std::uint64_t windowMessages_ = 0;
};

/// "discovery": windowed first-monitor discoveries over the measured set
/// (per window and cumulative) — the discovery-delay CDF's time axis,
/// observable while the run is still going.
class DiscoveryReducer final : public Reducer {
 public:
  std::string name() const override { return "discovery"; }

  std::unique_ptr<Reducer> fork() const override {
    return std::make_unique<DiscoveryReducer>();
  }

  void onWindow(const WindowProbe& probe) override {
    windowDiscoveries_ += probe.discoveries;
    totalDiscoveries_ += probe.discoveries;
  }

  void mergeFrom(const Reducer& other) override {
    const auto& o = dynamic_cast<const DiscoveryReducer&>(other);
    windowDiscoveries_ += o.windowDiscoveries_;
    totalDiscoveries_ += o.totalDiscoveries_;
  }

  void emitWindowColumns(WindowRow& row) const override {
    row.columns.emplace_back("discoveries",
                             static_cast<double>(windowDiscoveries_));
    row.columns.emplace_back("discovered_total",
                             static_cast<double>(totalDiscoveries_));
  }

  void resetWindow() override { windowDiscoveries_ = 0; }

  std::size_t stateBytes() const override { return sizeof(*this); }

 private:
  std::uint64_t windowDiscoveries_ = 0;
  std::uint64_t totalDiscoveries_ = 0;
};

}  // namespace

std::unique_ptr<Reducer> makeSummaryReducer() {
  return std::make_unique<SummaryReducer>();
}
std::unique_ptr<Reducer> makeTrafficReducer() {
  return std::make_unique<TrafficReducer>();
}
std::unique_ptr<Reducer> makeDiscoveryReducer() {
  return std::make_unique<DiscoveryReducer>();
}

}  // namespace avmon::experiments::streaming
