// Order- and partition-independent exact summation of doubles.
//
// The streaming pipeline's core determinism problem: per-shard reducers
// see DIFFERENT sub-multisets of the same samples depending on the shard
// count (round-robin partitioning interleaves them), so any accumulator
// whose result depends on addition order — a plain `double sum`, Kahan,
// Welford — would make the merged mean differ between S = 1 and S = 8 in
// the last bits. ExactSum removes order from the algebra instead of
// constraining it: every finite double is added EXACTLY into a wide
// fixed-point accumulator (a superaccumulator spanning the full double
// exponent range), so the accumulated value is the true real-number sum
// and any grouping/ordering of adds and merges yields identical bits.
//
//   ExactSum a; a.add(x1); a.add(x2); ...            // any order
//   ExactSum b = shard sums merged in any tree shape  // any partition
//   a.value() == b.value()  (bitwise, by construction)
//
// value() rounds the exact sum to the nearest double (ties to even).
// Cost: ~280 bytes of state and a few limb operations per add — trivial
// next to a protocol probe, and reducers keep O(1) of them.
#pragma once

#include <array>
#include <cstdint>

namespace avmon::experiments::streaming {

class ExactSum {
 public:
  /// Adds a finite double exactly. Non-finite inputs poison the sum
  /// (value() returns NaN) — metrics never produce them, but a poisoned
  /// sum must not masquerade as a number.
  void add(double x) noexcept;

  /// Merges another accumulator (exact, associative, commutative).
  void merge(const ExactSum& other) noexcept;

  /// The exact sum rounded once to the nearest double (ties to even).
  double value() const noexcept;

  bool nonFinite() const noexcept { return nonFinite_; }

  /// Exact equality of accumulated state (not just of rounded values).
  bool operator==(const ExactSum& other) const noexcept {
    return limbs_ == other.limbs_ && nonFinite_ == other.nonFinite_;
  }

 private:
  // Two's-complement fixed point, little-endian 64-bit limbs. Bit 0 of
  // limb 0 has weight 2^-kOffsetBits; the span covers every finite double
  // (lsb 2^-1074, msb < 2^1024) plus 2^64-fold carry headroom, so no add
  // or merge sequence can overflow the top limb.
  static constexpr int kLimbs = 35;
  static constexpr int kOffsetBits = 1088;  // 17 * 64, below the min subnormal

  void addMagnitude(std::uint64_t mantissa, int exponent) noexcept;
  void subMagnitude(std::uint64_t mantissa, int exponent) noexcept;

  std::array<std::uint64_t, kLimbs> limbs_{};
  bool nonFinite_ = false;
};

}  // namespace avmon::experiments::streaming
