// Protocol plug-in API: the seam between the experiment harness and the
// monitoring scheme it measures.
//
// ScenarioRunner owns everything protocol-independent — the availability
// schedule, the sharded world, the trace player, the measured set, and the
// metric *definitions* (what a discovery delay or a bandwidth sample is).
// A Protocol owns everything scheme-specific: how participants are built,
// what a lifecycle transition means, and how each metric probe is answered
// (AVMON answers from AvmonNode state; the central baseline answers from
// its server's member table; the DHT baseline answers from the ring).
//
// Registering a scheme in the ProtocolRegistry (protocol_registry.hpp) is
// all it takes to run it under every workload, sweep, and metrics sink the
// harness supports — the paper's head-to-head comparisons (AVMON vs. the
// four Section-1 baselines) all ride this one interface.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"

namespace avmon::experiments {

struct ResolvedAdversary;  // experiments/adversary.hpp

/// Everything the harness hands a protocol to build its participants.
/// References stay valid for the protocol's lifetime (the runner owns both
/// sides). AVMON draws node RNGs from rootRng; protocols that need
/// randomness must draw from it too, never from a private seed, so a
/// scenario's seed controls the whole experiment.
struct ProtocolContext {
  const Scenario& scenario;
  std::size_t effectiveN;
  /// Shared experiment knobs (periods, K, message byte sizes) resolved for
  /// effectiveN — paper defaults unless the scenario overrides them.
  const AvmonConfig& config;
  sim::ShardedSimulator& world;
  const trace::AvailabilityTrace& trace;
  const hash::HashFunction& hashFn;
  const HashMonitorSelector& selector;
  /// One memoized selector per shard (thread-private verdict caches).
  const std::vector<std::unique_ptr<MemoizedMonitorSelector>>& memoSelectors;
  Rng& rootRng;
  /// Resolved hostile cohorts, or nullptr when the scenario arms no attack
  /// (experiments/adversary.hpp). Every scheme faces the same adversary:
  /// protocols tag their participants from it during build(); schemes
  /// whose trust model the cohorts cannot corrupt may ignore it.
  const ResolvedAdversary* adversary = nullptr;
};

/// A monitor's availability estimate of one target, together with the
/// observation window it was measured over. The harness compares
/// `estimated` against the trace's ground-truth availability over exactly
/// [windowStart, windowEnd] — aligning the windows is what keeps the
/// accuracy metric unbiased on short runs (see ScenarioRunner docs).
struct EstimateSample {
  double estimated = 0.0;
  SimTime windowStart = 0;
  SimTime windowEnd = 0;
};

/// One pluggable monitoring scheme. Lifetime: built by a ProtocolFactory,
/// populated once via build(), driven by lifecycle callbacks during the
/// run, then queried through the metric probes after the horizon.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Registry key ("avmon", "broadcast", "central", ...).
  virtual std::string name() const = 0;

  /// Builds one participant per trace node into the world (endpoints
  /// attached to their home shard's network, timers into its simulator).
  /// Called exactly once, by the ScenarioRunner constructor, after every
  /// trace node is registered with the sharded world.
  virtual void build(const ProtocolContext& ctx) = 0;

  // ---- lifecycle (the churn player, via the runner) ----

  virtual void onJoin(const NodeId& id, bool firstJoin) = 0;
  virtual void onLeave(const NodeId& id) = 0;
  /// Deaths are silent in the paper's system model; most schemes ignore
  /// them (the node simply never rejoins).
  virtual void onDeath(const NodeId& id) { (void)id; }

  // ---- metric probes (valid after the run) ----

  /// Visits every participant in a deterministic, protocol-chosen storage
  /// order. Unordered aggregate metrics (memory, bandwidth, useless
  /// pings) are reported in this order, so it must be reproducible across
  /// identically seeded runs. May include participants that are not trace
  /// nodes (e.g. the central baseline's server).
  virtual void forEachNode(
      const std::function<void(const NodeId&)>& fn) const = 0;

  /// Delay from `id`'s first join to the discovery of its k-th monitor
  /// (k counted from 1); nullopt if fewer than k were ever discovered.
  virtual std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                                    std::size_t k) const = 0;

  /// Entries of monitoring state held by `id` (the paper's per-node
  /// memory metric; what counts as an entry is the scheme's own honest
  /// accounting — |CV|+|PS|+|TS| for AVMON, full membership for
  /// broadcast, the member table for the central server).
  virtual std::size_t memoryEntries(const NodeId& id) const = 0;

  /// Consistency-condition evaluations performed by `id` (0 for schemes
  /// without a selection hash).
  virtual std::uint64_t hashChecks(const NodeId& id) const {
    (void)id;
    return 0;
  }

  /// Monitoring pings `id` sent to absent targets.
  virtual std::uint64_t uselessPings(const NodeId& id) const {
    (void)id;
    return 0;
  }

  /// True if `id` monitors at least one target — the denominator filter
  /// of the useless-pings metric.
  virtual bool isMonitoring(const NodeId& id) const {
    (void)id;
    return false;
  }

  /// Current monitors of `id` (its pinging set) in protocol storage
  /// order; empty for schemes where nobody (or only `id` itself) would
  /// answer.
  virtual std::vector<NodeId> monitorsOf(const NodeId& id) const {
    (void)id;
    return {};
  }

  /// Visits `id`'s current monitors in exactly the order monitorsOf()
  /// returns them, without materializing a vector — the allocation-free
  /// path the per-node accuracy probes walk at million-node scale. The
  /// default forwards to monitorsOf(); schemes with large monitor sets
  /// should override both consistently.
  virtual void visitMonitorsOf(
      const NodeId& id, const std::function<void(const NodeId&)>& fn) const {
    for (const NodeId& m : monitorsOf(id)) fn(m);
  }

  /// `monitor`'s availability estimate of `target`, or nullopt when the
  /// monitor holds no statistically meaningful estimate (not a monitor,
  /// no samples, too few samples — the scheme's own threshold).
  virtual std::optional<EstimateSample> estimate(const NodeId& monitor,
                                                 const NodeId& target) const {
    (void)monitor;
    (void)target;
    return std::nullopt;
  }

  // ---- AVMON escape hatch ----

  /// Direct AvmonNode access backing ScenarioRunner::node() — the probe
  /// surface tests, benches, and ablations use for AVMON-specific state.
  /// Every other protocol returns nullptr (the runner turns that into an
  /// actionable error).
  virtual const AvmonNode* avmonNode(const NodeId& id) const {
    (void)id;
    return nullptr;
  }
  virtual AvmonNode* mutableAvmonNode(const NodeId& id) {
    (void)id;
    return nullptr;
  }
};

}  // namespace avmon::experiments
