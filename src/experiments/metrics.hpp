// Unified metrics sink: one snapshot type (MetricSet) for everything a
// completed scenario reports, and pluggable backends (MetricsSink) that
// consume snapshots — a summary/comparison table, per-node CSVs, JSON.
//
// Every protocol the registry knows produces the same MetricSet through
// the same ScenarioRunner code path, so cross-protocol comparison tables
// (the paper's Sections 5–6 head-to-heads) fall out of feeding several
// snapshots to one sink; no per-scheme reporting code exists anywhere.
//
// Sink contract: add() each completed run's snapshot, then close() once.
// close() performs (or finishes) the writes and THROWS std::runtime_error
// if any backing stream failed — a full disk truncating a CSV is an error,
// never a silently shorter file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiments/scenario.hpp"
#include "experiments/streaming/reducer.hpp"

namespace avmon::experiments {

/// Snapshot of everything one completed scenario run reports.
struct MetricSet {
  // ---- provenance (which run produced this) ----
  std::string protocol;
  std::string model;
  std::string hashName;
  std::size_t effectiveN = 0;
  std::uint64_t seed = 0;
  unsigned shards = 1;
  double horizonSeconds = 0.0;
  double warmupSeconds = 0.0;
  /// Fault-injection axes — part of the run's identity (a drop sweep must
  /// not collapse onto one label).
  double dropProbability = 0.0;
  double rpcFailProbability = 0.0;
  /// Adversary axes (all zero when the run armed no attack).
  std::uint32_t collusion = 0;       ///< coalition size C
  double overreportFraction = 0.0;   ///< over-reporting cohort fraction
  double forgetfulFraction = 0.0;    ///< storage-wiping cohort fraction

  // ---- summary sample vectors (one sample per qualifying node) ----
  std::vector<double> discoverySeconds;  ///< first-monitor delay, measured set
  double discoveredFraction = 0.0;       ///< >= 1 monitor, measured set
  std::vector<double> memoryEntries;     ///< per node with any state
  std::vector<double> outgoingBytesPerSecond;
  std::vector<double> uselessPingsPerMinute;
  std::vector<double> computationsPerSecond;
  std::vector<AvailabilityAccuracy> accuracy;  ///< measured set

  // ---- graceful-degradation results (collusion attacks only) ----
  /// Resolved victim count, victims whose every monitor is a coalition
  /// member, and the mean |estimated - actual| over reporting victims —
  /// the simulated counterpart of Section 4.3's eclipse probability.
  std::size_t victimCount = 0;
  std::size_t eclipsedCount = 0;
  std::optional<double> victimMeanAbsError;

  /// One row per trace node, in schedule order (plotting / debugging).
  struct PerNodeRow {
    NodeId id;
    std::uint64_t bytesSent = 0;
    std::uint64_t messagesSent = 0;
    std::size_t memoryEntries = 0;
    std::uint64_t hashChecks = 0;
    std::uint64_t uselessPings = 0;
    double discoverySeconds = -1.0;  ///< -1 = never discovered a monitor
  };
  std::vector<PerNodeRow> perNode;

  // ---- streamed lane (engaged when the scenario enabled streaming) ----
  /// Final summary from the streaming pipeline. When engaged, the sample
  /// vectors and perNode above are left EMPTY — the streamed path never
  /// materializes per-node tables — and every table-shaped sink reads its
  /// statistics from here instead.
  std::optional<streaming::StreamedSummary> streamed;
  /// Windowed time-series rows (empty unless a windowed reducer ran).
  std::vector<streaming::WindowRow> windows;
  /// Quantiles the scenario asked the streamed summary to report.
  std::vector<double> streamedQuantiles;
  /// Retained metric-state bytes of whichever lane produced this set —
  /// the number the streamed-vs-materialized bench compares.
  std::size_t metricStateBytes = 0;

  /// "protocol model N=.. seed=.." — how sinks caption this run.
  std::string label() const;
  /// label() restricted to filesystem-safe characters, for file suffixes.
  std::string fileLabel() const;
  /// Mean |estimated - actual| over the accuracy data of whichever lane
  /// ran; nullopt when no node reported (sinks render "n/a").
  std::optional<double> accuracyMeanAbsError() const;
  /// Nodes contributing to the accuracy metric (either lane).
  std::size_t accuracyNodeCount() const;
};

/// Snapshots a completed (run()) ScenarioRunner.
MetricSet collectMetrics(const ScenarioRunner& runner);

/// Backend interface; see the contract above.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void add(const MetricSet& metrics) = 0;
  virtual void close() = 0;
};

/// Human-readable tables on an ostream: one summary table per run, plus —
/// when two or more runs were added — a side-by-side comparison table
/// (runs as columns, metrics as rows).
class SummaryTableSink final : public MetricsSink {
 public:
  /// `out` must outlive the sink.
  explicit SummaryTableSink(std::ostream& out) : out_(&out) {}

  void add(const MetricSet& metrics) override;
  void close() override;

 private:
  std::ostream* out_;
  std::vector<MetricSet> sets_;
};

/// Per-metric CSV files: PREFIX[.<run>].{discovery,memory,bandwidth,
/// pernode}.csv — the run infix appears only when several runs are added.
class CsvSink final : public MetricsSink {
 public:
  explicit CsvSink(std::string prefix) : prefix_(std::move(prefix)) {}

  void add(const MetricSet& metrics) override;
  void close() override;

  /// Paths written by close() (for logs and tests).
  const std::vector<std::string>& writtenFiles() const noexcept {
    return written_;
  }

 private:
  std::string prefix_;
  std::vector<MetricSet> sets_;
  std::vector<std::string> written_;
};

/// One JSON document holding every added run (summary statistics, not the
/// raw sample vectors) — the machine-readable artifact CI uploads.
class JsonSink final : public MetricsSink {
 public:
  explicit JsonSink(std::string path) : path_(std::move(path)) {}

  void add(const MetricSet& metrics) override;
  void close() override;

 private:
  std::string path_;
  std::vector<MetricSet> sets_;
};

}  // namespace avmon::experiments
