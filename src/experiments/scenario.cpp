#include "experiments/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "experiments/adversary.hpp"
#include "experiments/protocol.hpp"
#include "experiments/protocol_registry.hpp"
#include "experiments/streaming/collector.hpp"
#include "experiments/streaming/reducer_registry.hpp"

namespace avmon::experiments {

namespace {

// The shard count a scenario actually runs with (0 = hardware width).
// Resolved before validation so shards = 0 cannot smuggle instantaneous
// RPC into a multi-shard world on a multi-core host.
unsigned resolveShards(unsigned shards) {
  return shards != 0 ? shards
                     : std::max(1u, std::thread::hardware_concurrency());
}

void requireUnit(double value, const char* what) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("Scenario: ") + what +
                                " must be in [0, 1]");
  }
}

}  // namespace

void Scenario::validate() const {
  const ProtocolFactory* factory = ProtocolRegistry::instance().find(protocol);
  if (factory == nullptr) {
    throw std::invalid_argument(
        "Scenario: unknown protocol '" + protocol + "' — known protocols: " +
        ProtocolRegistry::instance().namesJoined());
  }
  const bool traceModel = model == churn::Model::kPlanetLab ||
                          model == churn::Model::kOvernet;
  if (!traceModel && stableSize == 0) {
    throw std::invalid_argument(
        "Scenario: stableSize must be nonzero for model " +
        churn::modelName(model) + " (only PL/OV fix their own N)");
  }
  if (horizon <= 0) {
    throw std::invalid_argument(
        "Scenario: horizon must be a positive duration");
  }
  if (warmup < 0 || warmup >= horizon) {
    throw std::invalid_argument(
        "Scenario: warmup must satisfy 0 <= warmup < horizon (got warmup = " +
        std::to_string(warmup) + " ms, horizon = " + std::to_string(horizon) +
        " ms)");
  }
  if (!hash::isKnownHashName(hashName)) {
    throw std::invalid_argument(
        "Scenario: unknown hash '" + hashName +
        "' — known hashes: md5, sha1, splitmix64");
  }
  requireUnit(controlFraction, "controlFraction");
  requireUnit(overreportFraction, "overreportFraction");
  requireUnit(messageDropProbability, "messageDropProbability");
  requireUnit(rpcFailProbability, "rpcFailProbability");

  faults.validate();
  requireUnit(attack.forgetfulFraction, "attack.forgetful");
  if (attack.victims > 0 && attack.collusion == 0) {
    throw std::invalid_argument(
        "Scenario: attack.victims names targets for a collusion coalition — "
        "set attack.collusion > 0 as well");
  }
  if (notifyDedupMax.has_value() && *notifyDedupMax == 0) {
    throw std::invalid_argument(
        "Scenario: notify_dedup_max must be >= 1 (the cache needs room for "
        "at least one pair)");
  }
  if (history.has_value() && *history != "raw" && *history != "recent" &&
      *history != "aged" && *history != "compact") {
    throw std::invalid_argument(
        "Scenario: unknown history '" + *history +
        "' — known histories: raw, recent, aged, compact");
  }
  if (historyParam.has_value() && *historyParam < 0) {
    throw std::invalid_argument("Scenario: history_param must be >= 0");
  }

  const unsigned effectiveShards = resolveShards(shards);
  if (!deferredRpc && effectiveShards > 1) {
    throw std::invalid_argument(
        "Scenario: instantaneous RPC (deferredRpc = false) cannot cross a "
        "shard boundary — use shards = 1 for the collapsed-RTT lane");
  }
  if (factory->maxShards != 0 && effectiveShards > factory->maxShards) {
    throw std::invalid_argument(
        "Scenario: protocol '" + protocol + "' keeps shared global state and "
        "runs on at most " + std::to_string(factory->maxShards) +
        " shard(s) — got shards = " + std::to_string(effectiveShards));
  }
  if (transport == TransportKind::kSim) {
    // A sim spec carrying non-default udp.* keys is almost certainly a
    // live spec missing `transport = udp`; refuse the dead configuration.
    if (udp != UdpSpec{}) {
      throw std::invalid_argument(
          "Scenario: udp.* keys are set but transport = sim — the simulated "
          "lane never reads them; set transport = udp (or drop the keys)");
    }
  } else {
    if (udp.portBase < 1024) {
      throw std::invalid_argument(
          "Scenario: udp.port_base must be >= 1024 (unprivileged range; the "
          "driver binds port_base - 1)");
    }
    if (udp.retryMax == 0) {
      throw std::invalid_argument(
          "Scenario: udp.retry_max must be >= 1 (every RPC needs at least "
          "one send attempt)");
    }
    if (udp.backoffMs == 0 || udp.backoffCapMs < udp.backoffMs) {
      throw std::invalid_argument(
          "Scenario: udp backoff ladder needs 0 < udp.backoff_ms <= "
          "udp.backoff_cap_ms");
    }
    if (!(udp.timeScale > 0.0)) {
      throw std::invalid_argument(
          "Scenario: udp.time_scale must be > 0 (simulated ms per wall ms)");
    }
    if (shards > 1) {
      throw std::invalid_argument(
          "Scenario: the live lane runs one process per node — sharding is a "
          "sim-lane concept; use shards = 1 with transport = udp");
    }
  }
  if (metrics.window < 0) {
    throw std::invalid_argument(
        "Scenario: metrics.window must be >= 0 (0 disables streaming)");
  }
  for (const std::string& name : metrics.reducers) {
    if (streaming::ReducerRegistry::instance().find(name) == nullptr) {
      throw std::invalid_argument(
          "Scenario: unknown reducer '" + name + "' — known reducers: " +
          streaming::ReducerRegistry::instance().namesJoined());
    }
  }
  for (const double q : metrics.quantiles) {
    if (!(q > 0.0 && q < 1.0)) {
      throw std::invalid_argument(
          "Scenario: metrics.quantiles entries must be in (0, 1), got " +
          std::to_string(q));
    }
  }
}

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : scenario_(std::move(scenario)), rootRng_(scenario_.seed) {
  scenario_.validate();
  if (scenario_.transport != TransportKind::kSim) {
    throw std::invalid_argument(
        "ScenarioRunner executes the simulated lane only — run "
        "transport = udp specs through tools/avmon_live instead");
  }

  churn::WorkloadParams workload;
  workload.stableSize = scenario_.stableSize;
  workload.horizon = scenario_.horizon;
  workload.controlFraction = scenario_.controlFraction;
  workload.controlJoinTime = scenario_.warmup;
  workload.seed = scenario_.seed;

  effectiveN_ = churn::effectiveStableSize(scenario_.model, workload);
  config_ = scenario_.configOverride.value_or(
      AvmonConfig::paperDefaults(effectiveN_));
  config_.pr2 = scenario_.pr2;
  config_.forgetful.enabled = scenario_.forgetful;
  config_.forgetful.ewmaSessionLength = scenario_.forgetfulEwma;
  if (scenario_.shuffle.has_value()) config_.shuffle = *scenario_.shuffle;
  if (scenario_.notifyDedupMax.has_value())
    config_.notifyDedupMax = *scenario_.notifyDedupMax;
  if (scenario_.history.has_value()) config_.historyStyle = *scenario_.history;
  if (scenario_.historyParam.has_value())
    config_.historyParam = *scenario_.historyParam;
  config_.validate();

  const unsigned effectiveShards = resolveShards(scenario_.shards);

  protocol_ = ProtocolRegistry::instance().create(scenario_.protocol);

  hashFn_ = hash::makeHashFunction(scenario_.hashName);
  selector_ = std::make_unique<HashMonitorSelector>(*hashFn_, config_.k,
                                                    effectiveN_);

  // The schedule exists before the world does: correlated bursts rewrite
  // it, the fault plan binds to its population, and the adversary cohorts
  // resolve against it. churn::generate draws only from workload.seed and
  // the burst/adversary streams are private (seed XOR role salt), so the
  // root stream still forks in exactly the order it always did — netSeed
  // below stays its first draw.
  trace_ = churn::generate(scenario_.model, workload);
  applyBursts(trace_, scenario_.faults.bursts, scenario_.seed);
  faultPlan_ = scenario_.faults;
  faultPlan_.bindPopulation(static_cast<std::uint32_t>(trace_.nodes().size()));
  adversary_ =
      std::make_unique<ResolvedAdversary>(resolveAdversary(scenario_, trace_));

  sim::ShardedSimulator::Config worldConfig;
  worldConfig.shards = effectiveShards;
  worldConfig.net.messageDropProbability = scenario_.messageDropProbability;
  worldConfig.net.rpcFailProbability = scenario_.rpcFailProbability;
  worldConfig.net.deferredRpc = scenario_.deferredRpc;
  if (!faultPlan_.empty()) {
    // A latency window or geo band may dip below the flat band's minimum;
    // the conservative sharding window must follow it down.
    worldConfig.lookahead = faultPlan_.lookaheadFloor(worldConfig.net.minLatency);
  }
  // One draw from the root stream seeds every shard network identically;
  // per-node latency/fault streams derive from (seed, node id), so the
  // shard count never shifts anyone's randomness.
  worldConfig.netSeed = rootRng_.fork()();
  world_ = std::make_unique<sim::ShardedSimulator>(worldConfig);
  if (!faultPlan_.empty()) world_->setFaultPlan(&faultPlan_);

  for (std::size_t s = 0; s < world_->shardCount(); ++s) {
    memoSelectors_.push_back(
        std::make_unique<MemoizedMonitorSelector>(*selector_));
  }

  player_ = std::make_unique<churn::TracePlayer>(world_->simOf(0), trace_);

  // Register the whole population first: global indices follow trace order
  // (partition-independent), and every id must be known to the router
  // before its endpoint attaches.
  traceBySlot_.reserve(trace_.nodes().size());
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    world_->registerNode(nt.id);
    traceBySlot_.push_back(&nt);
  }

  // The protocol populates the world: one participant per trace node,
  // every scheme-owned RNG stream forked from the root stream so the
  // scenario seed governs the whole experiment.
  const ProtocolContext ctx{scenario_,  effectiveN_,    config_,
                            *world_,    trace_,         *hashFn_,
                            *selector_, memoSelectors_, rootRng_,
                            adversary_.get()};
  protocol_->build(ctx);

  buildMeasuredSet();

  if (scenario_.metrics.enabled()) {
    collector_ = std::make_unique<streaming::StreamingCollector>(
        *this, scenario_.metrics.reducers);
  }
}

ScenarioRunner::~ScenarioRunner() = default;

const ResolvedAdversary& ScenarioRunner::adversary() const noexcept {
  return *adversary_;
}

void ScenarioRunner::buildMeasuredSet() {
  MeasuredSet mode = scenario_.measured;
  if (mode == MeasuredSet::kAuto) {
    switch (scenario_.model) {
      case churn::Model::kStat:
      case churn::Model::kSynth:
        mode = MeasuredSet::kControlGroup;
        break;
      case churn::Model::kSynthBD:
      case churn::Model::kSynthBD2:
        mode = MeasuredSet::kBornAfterWarmup;
        break;
      case churn::Model::kPlanetLab:
      case churn::Model::kOvernet:
        mode = MeasuredSet::kAll;
        break;
    }
  }
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    const bool in = mode == MeasuredSet::kAll ||
                    (mode == MeasuredSet::kControlGroup && nt.isControl) ||
                    (mode == MeasuredSet::kBornAfterWarmup &&
                     nt.birth >= scenario_.warmup);
    if (in) measured_.push_back(nt.id);
  }
}

void ScenarioRunner::onJoin(const NodeId& id, bool firstJoin) {
  protocol_->onJoin(id, firstJoin);
}

void ScenarioRunner::onLeave(const NodeId& id) { protocol_->onLeave(id); }

void ScenarioRunner::onDeath(const NodeId& id) {
  // Deaths are silent (Section 3 system model): the node simply never
  // rejoins. Schemes may record them for bookkeeping; none tears down —
  // TS/PS garbage is the point of the forgetful-pinging experiments.
  protocol_->onDeath(id);
}

void ScenarioRunner::run() {
  if (ran_) throw std::logic_error("ScenarioRunner::run called twice");
  ran_ = true;
  player_->schedule(*this, [this](const NodeId& id) -> sim::Simulator& {
    return world_->simFor(id);
  });
  // Scope bandwidth measurement to the post-warm-up window (each shard
  // resets its own counters at its local warm-up instant). warmup = 0
  // means "no warm-up": there is no window boundary to reset at, and a
  // reset event would race the t = 0 joins scheduled above it.
  if (scenario_.warmup > 0) {
    for (std::size_t s = 0; s < world_->shardCount(); ++s) {
      sim::Network* net = &world_->netOf(s);
      world_->simOf(s).at(scenario_.warmup, [net] { net->resetTraffic(); });
    }
  }
  if (collector_ != nullptr && collector_->anyWindowed()) {
    // Streamed lane with windowed reducers: stop at metric-window
    // boundaries to take barrier probes. Each nominal boundary (a multiple
    // of metrics.window) is aligned UP to the end of the sharding window
    // containing it, so no runUntil call ever splits a sharding window —
    // a split would divide one hand-off batch across two barrier drains
    // and reorder same-due insertions, diverging from the uninterrupted
    // run. Aligned this way, execution is bit-identical to a single
    // runUntil(horizon) and streamed metrics equal materialized ones.
    const SimDuration shardWindow = world_->windowLength();
    SimTime lastAligned = -1;
    for (SimTime nominal = scenario_.metrics.window;
         nominal < scenario_.horizon; nominal += scenario_.metrics.window) {
      const SimTime aligned =
          (nominal / shardWindow) * shardWindow + shardWindow - 1;
      if (aligned <= lastAligned) continue;  // window shorter than the grid
      if (aligned >= scenario_.horizon) break;
      world_->runUntil(aligned);
      collector_->onWindowBarrier(*world_, aligned);
      lastAligned = aligned;
    }
  }
  world_->runUntil(scenario_.horizon);
  if (collector_ != nullptr) {
    collector_->finish(*world_, scenario_.horizon);
  }
}

sim::TrafficCounters ScenarioRunner::trafficOf(const NodeId& id) const {
  return world_->netFor(id).traffic(id);
}

const trace::NodeTrace* ScenarioRunner::traceOf(const NodeId& id) const {
  // Trace nodes registered first, so their global slots are exactly
  // [0, traceBySlot_.size()); anything past that is a scheme-owned extra
  // participant with no ground truth.
  const std::size_t slot = world_->globalIndexOf(id);
  return slot < traceBySlot_.size() ? traceBySlot_[slot] : nullptr;
}

std::vector<double> ScenarioRunner::discoveryDelaysSeconds(std::size_t k) const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    if (const auto d = protocol_->discoveryDelay(id, k))
      out.push_back(toSeconds(*d));
  }
  return out;
}

double ScenarioRunner::discoveredFraction(std::size_t k) const {
  // Denominator: measured nodes that actually joined during the run (the
  // paper counts born nodes; a node whose first session never started
  // cannot be discovered and isn't part of the population).
  std::size_t joined = 0, found = 0;
  for (const NodeId& id : measured_) {
    if (!traceOf(id)->firstJoin()) continue;
    ++joined;
    if (protocol_->discoveryDelay(id, k)) ++found;
  }
  return joined == 0
             ? 0.0
             : static_cast<double>(found) / static_cast<double>(joined);
}

std::vector<double> ScenarioRunner::computationsPerSecond() const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    const double upSeconds = toSeconds(traceOf(id)->totalUpTime());
    if (upSeconds < 1.0) continue;
    out.push_back(static_cast<double>(protocol_->hashChecks(id)) / upSeconds);
  }
  return out;
}

std::vector<double> ScenarioRunner::memoryEntries(bool measuredOnly) const {
  std::vector<double> out;
  const auto collect = [&](const NodeId& id) {
    // Nodes that never joined have nothing; skip to avoid a wall of zeros.
    const std::size_t entries = protocol_->memoryEntries(id);
    if (entries == 0) return;
    out.push_back(static_cast<double>(entries));
  };
  if (measuredOnly) {
    for (const NodeId& id : measured_) collect(id);
  } else {
    protocol_->forEachNode(collect);
  }
  return out;
}

std::vector<double> ScenarioRunner::outgoingBytesPerSecond() const {
  std::vector<double> out;
  const SimTime from = scenario_.warmup;
  const SimTime to = scenario_.horizon;
  protocol_->forEachNode([&](const NodeId& id) {
    const trace::NodeTrace* nt = traceOf(id);
    double upSeconds, windowSeconds;
    if (nt != nullptr) {
      upSeconds = nt->availability(from, to) * toSeconds(to - from);
      // The paper normalizes by wall-clock time, not up-time (nodes spend
      // nothing while down); nodes born mid-window get their shorter window.
      windowSeconds = toSeconds(to - std::max(from, nt->birth));
    } else {
      // Scheme-owned participant outside the trace (e.g. the central
      // server): always up, measured over the whole window.
      upSeconds = toSeconds(to - from);
      windowSeconds = upSeconds;
    }
    if (upSeconds < toSeconds(config_.protocolPeriod)) return;
    out.push_back(static_cast<double>(trafficOf(id).bytesSent) /
                  windowSeconds);
  });
  return out;
}

std::vector<double> ScenarioRunner::uselessPingsPerMinute() const {
  std::vector<double> out;
  protocol_->forEachNode([&](const NodeId& id) {
    if (!protocol_->isMonitoring(id)) return;
    const trace::NodeTrace* nt = traceOf(id);
    const double upMinutes = nt != nullptr ? toMinutes(nt->totalUpTime())
                                           : toMinutes(scenario_.horizon);
    if (upMinutes < 1.0) return;
    out.push_back(static_cast<double>(protocol_->uselessPings(id)) /
                  upMinutes);
  });
  return out;
}

std::vector<AvailabilityAccuracy> ScenarioRunner::availabilityAccuracy(
    bool measuredOnly) const {
  std::vector<AvailabilityAccuracy> out;
  // The one shared definition of window-aligned accuracy lives in
  // experiments/adversary.cpp (alignedAccuracyOf) — the streaming
  // collector and the resilience probes use the same function.
  const auto evaluate = [&](const NodeId& id) {
    const trace::NodeTrace* nt = traceOf(id);
    if (nt == nullptr) return;  // no ground truth off-trace
    if (const auto acc = alignedAccuracyOf(*protocol_, *nt)) out.push_back(*acc);
  };

  if (measuredOnly) {
    for (const NodeId& id : measured_) evaluate(id);
  } else {
    protocol_->forEachNode(evaluate);
  }
  return out;
}

NodeId ScenarioRunner::maxBandwidthNode() const {
  NodeId best;
  std::uint64_t bestBytes = 0;
  protocol_->forEachNode([&](const NodeId& id) {
    const std::uint64_t bytes = trafficOf(id).bytesSent;
    if (bytes > bestBytes) {
      bestBytes = bytes;
      best = id;
    }
  });
  return best;
}

const AvmonNode& ScenarioRunner::node(const NodeId& id) const {
  const AvmonNode* n = protocol_->avmonNode(id);
  if (n == nullptr) {
    if (scenario_.protocol != "avmon") {
      throw std::logic_error(
          "ScenarioRunner::node(): protocol '" + scenario_.protocol +
          "' has no AvmonNode — query the Protocol probes instead");
    }
    throw std::out_of_range("ScenarioRunner::node(): unknown node " +
                            id.toString());
  }
  return *n;
}

AvmonNode& ScenarioRunner::mutableNode(const NodeId& id) {
  AvmonNode* n = protocol_->mutableAvmonNode(id);
  if (n == nullptr) {
    if (scenario_.protocol != "avmon") {
      throw std::logic_error(
          "ScenarioRunner::mutableNode(): protocol '" + scenario_.protocol +
          "' has no AvmonNode — query the Protocol probes instead");
    }
    throw std::out_of_range("ScenarioRunner::mutableNode(): unknown node " +
                            id.toString());
  }
  return *n;
}

}  // namespace avmon::experiments
