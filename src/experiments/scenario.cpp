#include "experiments/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace avmon::experiments {

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : scenario_(std::move(scenario)), rootRng_(scenario_.seed) {
  churn::WorkloadParams workload;
  workload.stableSize = scenario_.stableSize;
  workload.horizon = scenario_.horizon;
  workload.controlFraction = scenario_.controlFraction;
  workload.controlJoinTime = scenario_.warmup;
  workload.seed = scenario_.seed;

  effectiveN_ = churn::effectiveStableSize(scenario_.model, workload);
  config_ = scenario_.configOverride.value_or(
      AvmonConfig::paperDefaults(effectiveN_));
  config_.pr2 = scenario_.pr2;
  config_.forgetful.enabled = scenario_.forgetful;
  config_.forgetful.ewmaSessionLength = scenario_.forgetfulEwma;
  config_.validate();

  // Resolve the auto shard count BEFORE validating: shards = 0 expands to
  // the hardware width, which must not smuggle instantaneous RPC into a
  // multi-shard world on a multi-core host.
  const unsigned effectiveShards =
      scenario_.shards != 0 ? scenario_.shards
                            : std::max(1u, std::thread::hardware_concurrency());
  if (!scenario_.deferredRpc && effectiveShards > 1) {
    throw std::invalid_argument(
        "Scenario: instantaneous RPC (deferredRpc = false) cannot cross a "
        "shard boundary — use shards = 1 for the collapsed-RTT lane");
  }

  hashFn_ = hash::makeHashFunction(scenario_.hashName);
  selector_ = std::make_unique<HashMonitorSelector>(*hashFn_, config_.k,
                                                    effectiveN_);

  sim::ShardedSimulator::Config worldConfig;
  worldConfig.shards = effectiveShards;
  worldConfig.net.messageDropProbability = scenario_.messageDropProbability;
  worldConfig.net.rpcFailProbability = scenario_.rpcFailProbability;
  worldConfig.net.deferredRpc = scenario_.deferredRpc;
  // One draw from the root stream seeds every shard network identically;
  // per-node latency/fault streams derive from (seed, node id), so the
  // shard count never shifts anyone's randomness.
  worldConfig.netSeed = rootRng_.fork()();
  world_ = std::make_unique<sim::ShardedSimulator>(worldConfig);

  for (std::size_t s = 0; s < world_->shardCount(); ++s) {
    memoSelectors_.push_back(
        std::make_unique<MemoizedMonitorSelector>(*selector_));
  }

  trace_ = churn::generate(scenario_.model, workload);
  player_ = std::make_unique<churn::TracePlayer>(world_->simOf(0), trace_);

  // Register the whole population first: global indices follow trace order
  // (partition-independent), and every id must be known to the router
  // before its endpoint attaches.
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    world_->registerNode(nt.id);
  }

  precomputeBootstrapPicks();

  // One protocol node per scheduled node, all constructed up front (they
  // start down; the trace player brings them up). Each node lives in its
  // home shard's sub-world and checks the consistency condition through
  // that shard's memo.
  std::uint32_t index = 0;
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    const std::size_t shard = world_->shardOfIndex(index);
    const auto bootstrap = [this, index](const NodeId&) {
      return nextBootstrapPick(index);
    };
    auto node = std::make_unique<AvmonNode>(
        nt.id, config_, *memoSelectors_[shard], world_->simOf(shard),
        world_->netOf(shard), bootstrap, rootRng_.fork());
    traceByNode_[nt.id] = &nt;
    nodes_.emplace(nt.id, std::move(node));
    ++index;
  }

  // Overreporting attackers (Figure 20): a uniformly random fraction.
  if (scenario_.overreportFraction > 0) {
    for (auto& [id, node] : nodes_) {
      if (rootRng_.chance(scenario_.overreportFraction))
        node->setOverreporting(true);
    }
  }

  buildMeasuredSet();
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::buildMeasuredSet() {
  MeasuredSet mode = scenario_.measured;
  if (mode == MeasuredSet::kAuto) {
    switch (scenario_.model) {
      case churn::Model::kStat:
      case churn::Model::kSynth:
        mode = MeasuredSet::kControlGroup;
        break;
      case churn::Model::kSynthBD:
      case churn::Model::kSynthBD2:
        mode = MeasuredSet::kBornAfterWarmup;
        break;
      case churn::Model::kPlanetLab:
      case churn::Model::kOvernet:
        mode = MeasuredSet::kAll;
        break;
    }
  }
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    const bool in = mode == MeasuredSet::kAll ||
                    (mode == MeasuredSet::kControlGroup && nt.isControl) ||
                    (mode == MeasuredSet::kBornAfterWarmup &&
                     nt.birth >= scenario_.warmup);
    if (in) measured_.push_back(nt.id);
  }
}

void ScenarioRunner::precomputeBootstrapPicks() {
  // The alive set at any instant is fully determined by the availability
  // trace, so the bootstrap oracle ("a random alive node other than the
  // joiner") can be evaluated up front: replay the trace's transitions in
  // a canonical order and bank one pick per session start. At run time a
  // join just consumes its node's next pick — no global alive list exists,
  // which is what lets joins on different shards proceed without sharing
  // (and keeps the draws shard-count-invariant).
  Rng bootRng = rootRng_.fork();
  const auto& nodes = trace_.nodes();
  bootstrapPicks_.assign(nodes.size(), {});
  bootstrapCursor_.assign(nodes.size(), 0);

  struct Transition {
    SimTime t;
    std::uint32_t node;
    std::uint32_t session;
    bool join;
  };
  std::vector<Transition> transitions;
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    const auto& sessions = nodes[i].sessions;
    for (std::uint32_t j = 0; j < sessions.size(); ++j) {
      transitions.push_back({sessions[j].start, i, j, true});
      transitions.push_back({sessions[j].end, i, j, false});
    }
  }
  // Canonical order: time, then trace position, then session, join before
  // the (zero-length-session) leave at the same instant.
  std::sort(transitions.begin(), transitions.end(),
            [](const Transition& a, const Transition& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.node != b.node) return a.node < b.node;
              if (a.session != b.session) return a.session < b.session;
              return a.join && !b.join;
            });

  std::vector<NodeId> alive;
  std::unordered_map<NodeId, std::size_t> alivePos;
  for (const Transition& tr : transitions) {
    const NodeId id = nodes[tr.node].id;
    if (tr.join) {
      // Pick before the joiner becomes visible; a few draws are enough to
      // dodge self, and a lone first node genuinely has nobody to call.
      NodeId pick{};
      if (!alive.empty()) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          const NodeId candidate = alive[bootRng.index(alive.size())];
          if (candidate != id) {
            pick = candidate;
            break;
          }
        }
      }
      bootstrapPicks_[tr.node].push_back(pick);
      if (!alivePos.count(id)) {
        alivePos[id] = alive.size();
        alive.push_back(id);
      }
    } else if (const auto it = alivePos.find(id); it != alivePos.end()) {
      const std::size_t pos = it->second;
      alive[pos] = alive.back();
      alivePos[alive[pos]] = pos;
      alive.pop_back();
      alivePos.erase(id);
    }
  }
}

NodeId ScenarioRunner::nextBootstrapPick(std::uint32_t nodeIndex) {
  const auto& picks = bootstrapPicks_[nodeIndex];
  std::size_t& cursor = bootstrapCursor_[nodeIndex];
  if (cursor >= picks.size()) return NodeId{};  // more joins than sessions?
  return picks[cursor++];
}

void ScenarioRunner::onJoin(const NodeId& id, bool firstJoin) {
  nodes_.at(id)->join(firstJoin);
}

void ScenarioRunner::onLeave(const NodeId& id) {
  nodes_.at(id)->leave();
}

void ScenarioRunner::onDeath(const NodeId& /*id*/) {
  // Deaths are silent (Section 3 system model): the node simply never
  // rejoins. Nothing to tear down — TS/PS garbage is the point of the
  // forgetful-pinging experiments.
}

void ScenarioRunner::run() {
  if (ran_) throw std::logic_error("ScenarioRunner::run called twice");
  ran_ = true;
  player_->schedule(*this, [this](const NodeId& id) -> sim::Simulator& {
    return world_->simFor(id);
  });
  // Scope bandwidth measurement to the post-warm-up window (each shard
  // resets its own counters at its local warm-up instant).
  for (std::size_t s = 0; s < world_->shardCount(); ++s) {
    sim::Network* net = &world_->netOf(s);
    world_->simOf(s).at(scenario_.warmup, [net] { net->resetTraffic(); });
  }
  world_->runUntil(scenario_.horizon);
}

sim::TrafficCounters ScenarioRunner::trafficOf(const NodeId& id) const {
  return world_->netFor(id).traffic(id);
}

std::vector<double> ScenarioRunner::discoveryDelaysSeconds(std::size_t k) const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    if (const auto d = nodes_.at(id)->discoveryDelay(k))
      out.push_back(toSeconds(*d));
  }
  return out;
}

double ScenarioRunner::discoveredFraction(std::size_t k) const {
  // Denominator: measured nodes that actually joined during the run (the
  // paper counts born nodes; a node whose first session never started
  // cannot be discovered and isn't part of the population).
  std::size_t joined = 0, found = 0;
  for (const NodeId& id : measured_) {
    if (!traceByNode_.at(id)->firstJoin()) continue;
    ++joined;
    if (nodes_.at(id)->discoveryDelay(k)) ++found;
  }
  return joined == 0
             ? 0.0
             : static_cast<double>(found) / static_cast<double>(joined);
}

std::vector<double> ScenarioRunner::computationsPerSecond() const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    const double upSeconds = toSeconds(traceByNode_.at(id)->totalUpTime());
    if (upSeconds < 1.0) continue;
    out.push_back(static_cast<double>(nodes_.at(id)->metrics().hashChecks) /
                  upSeconds);
  }
  return out;
}

std::vector<double> ScenarioRunner::memoryEntries(bool measuredOnly) const {
  std::vector<double> out;
  const auto collect = [&](const NodeId& id) {
    // Nodes that never joined have nothing; skip to avoid a wall of zeros.
    const auto& node = *nodes_.at(id);
    if (node.memoryEntries() == 0) return;
    out.push_back(static_cast<double>(node.memoryEntries()));
  };
  if (measuredOnly) {
    for (const NodeId& id : measured_) collect(id);
  } else {
    for (const auto& [id, node] : nodes_) collect(id);
  }
  return out;
}

std::vector<double> ScenarioRunner::outgoingBytesPerSecond() const {
  std::vector<double> out;
  const SimTime from = scenario_.warmup;
  const SimTime to = scenario_.horizon;
  for (const auto& [id, node] : nodes_) {
    const trace::NodeTrace* nt = traceByNode_.at(id);
    const double upSeconds =
        nt->availability(from, to) * toSeconds(to - from);
    if (upSeconds < toSeconds(config_.protocolPeriod)) continue;
    // The paper normalizes by wall-clock time, not up-time (nodes spend
    // nothing while down); nodes born mid-window get their shorter window.
    const double windowSeconds = toSeconds(to - std::max(from, nt->birth));
    out.push_back(static_cast<double>(trafficOf(id).bytesSent) /
                  windowSeconds);
  }
  return out;
}

std::vector<double> ScenarioRunner::uselessPingsPerMinute() const {
  std::vector<double> out;
  for (const auto& [id, node] : nodes_) {
    if (node->targetSet().empty()) continue;
    const double upMinutes = toMinutes(traceByNode_.at(id)->totalUpTime());
    if (upMinutes < 1.0) continue;
    out.push_back(static_cast<double>(node->metrics().uselessPings) /
                  upMinutes);
  }
  return out;
}

std::vector<AvailabilityAccuracy> ScenarioRunner::availabilityAccuracy(
    bool measuredOnly) const {
  std::vector<AvailabilityAccuracy> out;
  const auto evaluate = [&](const NodeId& id) {
    const auto& target = *nodes_.at(id);
    const trace::NodeTrace* nt = traceByNode_.at(id);
    const auto firstJoin = nt->firstJoin();
    if (!firstJoin) return;

    AvailabilityAccuracy acc;
    acc.id = id;
    double estSum = 0.0;
    double actualSum = 0.0;
    for (const NodeId& monitorId : target.pingingSet()) {
      const auto monIt = nodes_.find(monitorId);
      if (monIt == nodes_.end()) continue;
      const auto est = monIt->second->availabilityEstimateOf(id);
      if (!est) continue;
      // Ground truth aligned to this monitor's observation window: its
      // sample stream starts at discovery, which is correlated with the
      // target's up periods, so comparing against availability from the
      // target's first join would bias the ratio upward on short runs.
      const auto& ts = monIt->second->targetSet();
      const auto recIt = ts.find(id);
      if (recIt == ts.end()) continue;
      const history::AvailabilityHistory& hist = *recIt->second.history;
      const auto span = hist.sampleSpan();
      // Monitors with a handful of samples carry no statistical weight
      // (the paper's 48 h runs give every monitor thousands of pings).
      if (!span || hist.sampleCount() < 10) continue;
      estSum += *est;
      // Window end matters too: a monitor that left before the horizon
      // stopped sampling then, so truth is measured over its sample span.
      actualSum += nt->availability(
          span->first, std::min(span->last + config_.monitoringPeriod,
                                scenario_.horizon));
      ++acc.reporters;
    }
    if (acc.reporters == 0) return;
    acc.estimated = estSum / static_cast<double>(acc.reporters);
    acc.actual = actualSum / static_cast<double>(acc.reporters);
    out.push_back(acc);
  };

  if (measuredOnly) {
    for (const NodeId& id : measured_) evaluate(id);
  } else {
    for (const auto& [id, node] : nodes_) evaluate(id);
  }
  return out;
}

NodeId ScenarioRunner::maxBandwidthNode() const {
  NodeId best;
  std::uint64_t bestBytes = 0;
  for (const auto& [id, node] : nodes_) {
    const std::uint64_t bytes = trafficOf(id).bytesSent;
    if (bytes > bestBytes) {
      bestBytes = bytes;
      best = id;
    }
  }
  return best;
}

const AvmonNode& ScenarioRunner::node(const NodeId& id) const {
  return *nodes_.at(id);
}

AvmonNode& ScenarioRunner::mutableNode(const NodeId& id) {
  return *nodes_.at(id);
}

}  // namespace avmon::experiments
