#include "experiments/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace avmon::experiments {

ScenarioRunner::ScenarioRunner(Scenario scenario)
    : scenario_(std::move(scenario)), rootRng_(scenario_.seed) {
  churn::WorkloadParams workload;
  workload.stableSize = scenario_.stableSize;
  workload.horizon = scenario_.horizon;
  workload.controlFraction = scenario_.controlFraction;
  workload.controlJoinTime = scenario_.warmup;
  workload.seed = scenario_.seed;

  effectiveN_ = churn::effectiveStableSize(scenario_.model, workload);
  config_ = scenario_.configOverride.value_or(
      AvmonConfig::paperDefaults(effectiveN_));
  config_.pr2 = scenario_.pr2;
  config_.forgetful.enabled = scenario_.forgetful;
  config_.forgetful.ewmaSessionLength = scenario_.forgetfulEwma;
  config_.validate();

  hashFn_ = hash::makeHashFunction(scenario_.hashName);
  selector_ = std::make_unique<HashMonitorSelector>(*hashFn_, config_.k,
                                                    effectiveN_);
  memoSelector_ = std::make_unique<MemoizedMonitorSelector>(*selector_);

  sim::NetworkConfig netConfig;
  netConfig.messageDropProbability = scenario_.messageDropProbability;
  netConfig.rpcFailProbability = scenario_.rpcFailProbability;
  net_ = std::make_unique<sim::Network>(sim_, netConfig, rootRng_.fork());

  trace_ = churn::generate(scenario_.model, workload);
  player_ = std::make_unique<churn::TracePlayer>(sim_, trace_);

  // One protocol node per scheduled node, all constructed up front (they
  // start down; the trace player brings them up).
  const auto bootstrap = [this](const NodeId& self) {
    return pickBootstrap(self);
  };
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    auto node = std::make_unique<AvmonNode>(nt.id, config_, *memoSelector_,
                                            sim_, *net_, bootstrap,
                                            rootRng_.fork());
    traceByNode_[nt.id] = &nt;
    nodes_.emplace(nt.id, std::move(node));
  }

  // Overreporting attackers (Figure 20): a uniformly random fraction.
  if (scenario_.overreportFraction > 0) {
    for (auto& [id, node] : nodes_) {
      if (rootRng_.chance(scenario_.overreportFraction))
        node->setOverreporting(true);
    }
  }

  buildMeasuredSet();
}

ScenarioRunner::~ScenarioRunner() = default;

void ScenarioRunner::buildMeasuredSet() {
  MeasuredSet mode = scenario_.measured;
  if (mode == MeasuredSet::kAuto) {
    switch (scenario_.model) {
      case churn::Model::kStat:
      case churn::Model::kSynth:
        mode = MeasuredSet::kControlGroup;
        break;
      case churn::Model::kSynthBD:
      case churn::Model::kSynthBD2:
        mode = MeasuredSet::kBornAfterWarmup;
        break;
      case churn::Model::kPlanetLab:
      case churn::Model::kOvernet:
        mode = MeasuredSet::kAll;
        break;
    }
  }
  for (const trace::NodeTrace& nt : trace_.nodes()) {
    const bool in = mode == MeasuredSet::kAll ||
                    (mode == MeasuredSet::kControlGroup && nt.isControl) ||
                    (mode == MeasuredSet::kBornAfterWarmup &&
                     nt.birth >= scenario_.warmup);
    if (in) measured_.push_back(nt.id);
  }
}

NodeId ScenarioRunner::pickBootstrap(const NodeId& self) {
  if (alive_.empty()) return NodeId{};
  // A couple of draws are enough to dodge `self`; if the caller is the
  // only alive node there is genuinely nobody to contact.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const NodeId pick = alive_[rootRng_.index(alive_.size())];
    if (pick != self) return pick;
  }
  return NodeId{};
}

void ScenarioRunner::onJoin(const NodeId& id, bool firstJoin) {
  auto& node = nodes_.at(id);
  node->join(firstJoin);
  if (!alivePos_.count(id)) {
    alivePos_[id] = alive_.size();
    alive_.push_back(id);
  }
}

void ScenarioRunner::onLeave(const NodeId& id) {
  nodes_.at(id)->leave();
  if (const auto it = alivePos_.find(id); it != alivePos_.end()) {
    const std::size_t pos = it->second;
    alive_[pos] = alive_.back();
    alivePos_[alive_[pos]] = pos;
    alive_.pop_back();
    alivePos_.erase(it);
  }
}

void ScenarioRunner::onDeath(const NodeId& /*id*/) {
  // Deaths are silent (Section 3 system model): the node simply never
  // rejoins. Nothing to tear down — TS/PS garbage is the point of the
  // forgetful-pinging experiments.
}

void ScenarioRunner::run() {
  if (ran_) throw std::logic_error("ScenarioRunner::run called twice");
  ran_ = true;
  player_->schedule(*this);
  // Scope bandwidth measurement to the post-warm-up window.
  sim_.at(scenario_.warmup, [this] { net_->resetTraffic(); });
  sim_.runUntil(scenario_.horizon);
}

std::vector<double> ScenarioRunner::discoveryDelaysSeconds(std::size_t k) const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    if (const auto d = nodes_.at(id)->discoveryDelay(k))
      out.push_back(toSeconds(*d));
  }
  return out;
}

double ScenarioRunner::discoveredFraction(std::size_t k) const {
  // Denominator: measured nodes that actually joined during the run (the
  // paper counts born nodes; a node whose first session never started
  // cannot be discovered and isn't part of the population).
  std::size_t joined = 0, found = 0;
  for (const NodeId& id : measured_) {
    if (!traceByNode_.at(id)->firstJoin()) continue;
    ++joined;
    if (nodes_.at(id)->discoveryDelay(k)) ++found;
  }
  return joined == 0
             ? 0.0
             : static_cast<double>(found) / static_cast<double>(joined);
}

std::vector<double> ScenarioRunner::computationsPerSecond() const {
  std::vector<double> out;
  out.reserve(measured_.size());
  for (const NodeId& id : measured_) {
    const double upSeconds = toSeconds(traceByNode_.at(id)->totalUpTime());
    if (upSeconds < 1.0) continue;
    out.push_back(static_cast<double>(nodes_.at(id)->metrics().hashChecks) /
                  upSeconds);
  }
  return out;
}

std::vector<double> ScenarioRunner::memoryEntries(bool measuredOnly) const {
  std::vector<double> out;
  const auto collect = [&](const NodeId& id) {
    // Nodes that never joined have nothing; skip to avoid a wall of zeros.
    const auto& node = *nodes_.at(id);
    if (node.memoryEntries() == 0) return;
    out.push_back(static_cast<double>(node.memoryEntries()));
  };
  if (measuredOnly) {
    for (const NodeId& id : measured_) collect(id);
  } else {
    for (const auto& [id, node] : nodes_) collect(id);
  }
  return out;
}

std::vector<double> ScenarioRunner::outgoingBytesPerSecond() const {
  std::vector<double> out;
  const SimTime from = scenario_.warmup;
  const SimTime to = scenario_.horizon;
  for (const auto& [id, node] : nodes_) {
    const trace::NodeTrace* nt = traceByNode_.at(id);
    const double upSeconds =
        nt->availability(from, to) * toSeconds(to - from);
    if (upSeconds < toSeconds(config_.protocolPeriod)) continue;
    // The paper normalizes by wall-clock time, not up-time (nodes spend
    // nothing while down); nodes born mid-window get their shorter window.
    const double windowSeconds = toSeconds(to - std::max(from, nt->birth));
    out.push_back(static_cast<double>(net_->traffic(id).bytesSent) /
                  windowSeconds);
  }
  return out;
}

std::vector<double> ScenarioRunner::uselessPingsPerMinute() const {
  std::vector<double> out;
  for (const auto& [id, node] : nodes_) {
    if (node->targetSet().empty()) continue;
    const double upMinutes = toMinutes(traceByNode_.at(id)->totalUpTime());
    if (upMinutes < 1.0) continue;
    out.push_back(static_cast<double>(node->metrics().uselessPings) /
                  upMinutes);
  }
  return out;
}

std::vector<AvailabilityAccuracy> ScenarioRunner::availabilityAccuracy(
    bool measuredOnly) const {
  std::vector<AvailabilityAccuracy> out;
  const auto evaluate = [&](const NodeId& id) {
    const auto& target = *nodes_.at(id);
    const trace::NodeTrace* nt = traceByNode_.at(id);
    const auto firstJoin = nt->firstJoin();
    if (!firstJoin) return;

    AvailabilityAccuracy acc;
    acc.id = id;
    double estSum = 0.0;
    double actualSum = 0.0;
    for (const NodeId& monitorId : target.pingingSet()) {
      const auto monIt = nodes_.find(monitorId);
      if (monIt == nodes_.end()) continue;
      const auto est = monIt->second->availabilityEstimateOf(id);
      if (!est) continue;
      // Ground truth aligned to this monitor's observation window: its
      // sample stream starts at discovery, which is correlated with the
      // target's up periods, so comparing against availability from the
      // target's first join would bias the ratio upward on short runs.
      const auto& ts = monIt->second->targetSet();
      const auto recIt = ts.find(id);
      if (recIt == ts.end()) continue;
      const history::AvailabilityHistory& hist = *recIt->second.history;
      const auto span = hist.sampleSpan();
      // Monitors with a handful of samples carry no statistical weight
      // (the paper's 48 h runs give every monitor thousands of pings).
      if (!span || hist.sampleCount() < 10) continue;
      estSum += *est;
      // Window end matters too: a monitor that left before the horizon
      // stopped sampling then, so truth is measured over its sample span.
      actualSum += nt->availability(
          span->first, std::min(span->last + config_.monitoringPeriod,
                                scenario_.horizon));
      ++acc.reporters;
    }
    if (acc.reporters == 0) return;
    acc.estimated = estSum / static_cast<double>(acc.reporters);
    acc.actual = actualSum / static_cast<double>(acc.reporters);
    out.push_back(acc);
  };

  if (measuredOnly) {
    for (const NodeId& id : measured_) evaluate(id);
  } else {
    for (const auto& [id, node] : nodes_) evaluate(id);
  }
  return out;
}

NodeId ScenarioRunner::maxBandwidthNode() const {
  NodeId best;
  std::uint64_t bestBytes = 0;
  for (const auto& [id, node] : nodes_) {
    const std::uint64_t bytes = net_->traffic(id).bytesSent;
    if (bytes > bestBytes) {
      bestBytes = bytes;
      best = id;
    }
  }
  return best;
}

const AvmonNode& ScenarioRunner::node(const NodeId& id) const {
  return *nodes_.at(id);
}

AvmonNode& ScenarioRunner::mutableNode(const NodeId& id) {
  return *nodes_.at(id);
}

}  // namespace avmon::experiments
