#include "experiments/broadcast_runner.hpp"

#include <stdexcept>

#include "avmon/config.hpp"

namespace avmon::experiments {

BroadcastRunner::BroadcastRunner(BroadcastScenario scenario)
    : scenario_(std::move(scenario)), rootRng_(scenario_.seed) {
  churn::WorkloadParams workload;
  workload.stableSize = scenario_.stableSize;
  workload.horizon = scenario_.horizon;
  workload.controlFraction = scenario_.controlFraction;
  workload.controlJoinTime = scenario_.warmup;
  workload.seed = scenario_.seed;

  effectiveN_ = churn::effectiveStableSize(scenario_.model, workload);
  hashFn_ = hash::makeHashFunction(scenario_.hashName);
  selector_ = std::make_unique<HashMonitorSelector>(
      *hashFn_, defaultK(effectiveN_), effectiveN_);
  net_ = std::make_unique<sim::Network>(sim_, sim::NetworkConfig{},
                                        rootRng_.fork());

  trace_ = churn::generate(scenario_.model, workload);
  player_ = std::make_unique<churn::TracePlayer>(sim_, trace_);

  // The directory is the full alive membership — exactly the complete
  // membership graph the Broadcast scheme maintains anyway.
  const auto directory = [this] {
    std::vector<NodeId> alive;
    alive.reserve(nodes_.size());
    for (const auto& [id, node] : nodes_) {
      if (node->isAlive()) alive.push_back(id);
    }
    return alive;
  };

  for (const trace::NodeTrace& nt : trace_.nodes()) {
    nodes_.emplace(nt.id, std::make_unique<baselines::BroadcastNode>(
                              nt.id, *selector_, sim_, *net_, directory));
    if (nt.isControl) controlIds_.push_back(nt.id);
  }
  if (controlIds_.empty()) {
    // Models without an explicit control group: measure nodes born after
    // the warm-up, mirroring ScenarioRunner's convention.
    for (const trace::NodeTrace& nt : trace_.nodes()) {
      if (nt.birth >= scenario_.warmup) controlIds_.push_back(nt.id);
    }
  }
}

BroadcastRunner::~BroadcastRunner() = default;

void BroadcastRunner::run() {
  if (ran_) throw std::logic_error("BroadcastRunner::run called twice");
  ran_ = true;
  player_->schedule(*this);
  sim_.runUntil(scenario_.horizon);
}

void BroadcastRunner::onJoin(const NodeId& id, bool /*firstJoin*/) {
  nodes_.at(id)->join();
  ++joinCounts_[id];
}

void BroadcastRunner::onLeave(const NodeId& id) { nodes_.at(id)->leave(); }

void BroadcastRunner::onDeath(const NodeId& /*id*/) {}

std::vector<double> BroadcastRunner::discoveryDelaysSeconds() const {
  std::vector<double> out;
  for (const NodeId& id : controlIds_) {
    if (const auto d = nodes_.at(id)->firstMonitorDelay()) {
      out.push_back(toSeconds(*d));
    }
  }
  return out;
}

std::vector<double> BroadcastRunner::memoryEntries() const {
  std::vector<double> out;
  for (const auto& [id, node] : nodes_) {
    if (node->memoryEntries() == 0) continue;
    out.push_back(static_cast<double>(node->memoryEntries()));
  }
  return out;
}

std::vector<double> BroadcastRunner::bytesPerJoin() const {
  std::vector<double> out;
  for (const auto& [id, joins] : joinCounts_) {
    if (joins == 0) continue;
    out.push_back(static_cast<double>(net_->traffic(id).bytesSent) /
                  static_cast<double>(joins));
  }
  return out;
}

std::uint64_t BroadcastRunner::totalMessages() const {
  std::uint64_t total = 0;
  for (const auto& [id, node] : nodes_) {
    total += net_->traffic(id).messagesSent;
  }
  return total;
}

}  // namespace avmon::experiments
