// The self-reporting baseline as a pluggable Protocol (paper Section 1,
// existing approach (1)): PS(x) = {x}. Each node tracks its own up-time
// and reports whatever it likes — Scenario::overreportFraction selects
// the selfish liars. Next to AVMON's Figure-20 row in the comparison
// table this quantifies how completely self-reporting fails against the
// selfish-node threat model: discovery is free, memory is one entry, and
// the accuracy column is exactly as wrong as the liars want it to be.
//
// No messages, no network traffic — the scheme's costs really are zero;
// its broken trust model is what the accuracy metric exposes.
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/self_report.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

class SelfReportProtocol final : public Protocol {
 public:
  std::string name() const override { return "self_report"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;
  std::optional<EstimateSample> estimate(const NodeId& monitor,
                                         const NodeId& target) const override;

 private:
  SimTime horizon_ = 0;
  sim::Simulator* sim_ = nullptr;

  std::vector<NodeId> order_;  // trace order
  std::unordered_map<NodeId, baselines::SelfReportNode> nodes_;
};

}  // namespace avmon::experiments
