#include "experiments/protocols/avmon_protocol.hpp"

#include <algorithm>

#include "experiments/adversary.hpp"

namespace avmon::experiments {

void AvmonProtocol::build(const ProtocolContext& ctx) {
  monitoringPeriod_ = ctx.config.monitoringPeriod;
  horizon_ = ctx.scenario.horizon;

  precomputeBootstrapPicks(ctx);

  // One protocol node per scheduled node, all constructed up front (they
  // start down; the trace player brings them up). Each node lives in its
  // home shard's sub-world and checks the consistency condition through
  // that shard's memo. Every node shares one immutable config — a copy
  // per node is ~150 B nobody reads twice.
  const auto sharedConfig = std::make_shared<const AvmonConfig>(ctx.config);
  state_.resize(ctx.trace.nodes().size());
  std::uint32_t index = 0;
  for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
    const std::size_t shard = ctx.world.shardOfIndex(index);
    const auto bootstrap = [this, index](const NodeId&) {
      return nextBootstrapPick(index);
    };
    auto node = std::make_unique<AvmonNode>(
        nt.id, sharedConfig, *ctx.memoSelectors[shard], ctx.world.simOf(shard),
        ctx.world.netOf(shard), bootstrap, ctx.rootRng.fork());
    node->bindStateSlot(&state_, index);
    nodes_.emplace(nt.id, std::move(node));
    ++index;
  }

  // Overreporting attackers (Figure 20): a uniformly random fraction.
  // Marking follows the trace's canonical node order, not container hash
  // order, so which nodes turn hostile is a function of the seed alone.
  if (ctx.scenario.overreportFraction > 0) {
    for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
      if (ctx.rootRng.chance(ctx.scenario.overreportFraction))
        nodes_.at(nt.id)->setOverreporting(true);
    }
  }

  // Adversary cohorts (Section 4.3): membership was resolved from private
  // seed-derived streams, so tagging here draws nothing from rootRng and
  // the underlying world is bit-identical with the attack on or off.
  if (ctx.adversary != nullptr && ctx.adversary->enabled()) {
    for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
      AvmonNode& node = *nodes_.at(nt.id);
      if (ctx.adversary->isColluder(nt.id))
        node.setCollusion(ctx.adversary->victimSet);
      if (ctx.adversary->isAmnesiac(nt.id)) node.setAmnesia(true);
    }
  }
}

void AvmonProtocol::precomputeBootstrapPicks(const ProtocolContext& ctx) {
  // The alive set at any instant is fully determined by the availability
  // trace, so the bootstrap oracle ("a random alive node other than the
  // joiner") can be evaluated up front: replay the trace's transitions in
  // a canonical order and bank one pick per session start. At run time a
  // join just consumes its node's next pick — no global alive list exists,
  // which is what lets joins on different shards proceed without sharing
  // (and keeps the draws shard-count-invariant).
  Rng bootRng = ctx.rootRng.fork();
  const auto& nodes = ctx.trace.nodes();

  // One pick per session, banked into a flat arena sliced by pickOffsets_
  // (node i's picks live at [pickOffsets_[i], pickOffsets_[i+1])).
  pickOffsets_.assign(nodes.size() + 1, 0);
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    pickOffsets_[i + 1] =
        pickOffsets_[i] + static_cast<std::uint32_t>(nodes[i].sessions.size());
  }
  bootstrapPicks_.assign(pickOffsets_.back(), NodeId{});
  bootstrapCursor_.assign(nodes.size(), 0);

  struct Transition {
    SimTime t;
    std::uint32_t node;
    std::uint32_t session;
    bool join;
  };
  std::vector<Transition> transitions;
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    const auto& sessions = nodes[i].sessions;
    for (std::uint32_t j = 0; j < sessions.size(); ++j) {
      transitions.push_back({sessions[j].start, i, j, true});
      transitions.push_back({sessions[j].end, i, j, false});
    }
  }
  // Canonical order: time, then trace position, then session, join before
  // the (zero-length-session) leave at the same instant.
  std::sort(transitions.begin(), transitions.end(),
            [](const Transition& a, const Transition& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.node != b.node) return a.node < b.node;
              if (a.session != b.session) return a.session < b.session;
              return a.join && !b.join;
            });

  std::vector<NodeId> alive;
  // lint:allow(per-node-alloc, one-shot bootstrap precomputation at build(); freed before the run starts)
  std::unordered_map<NodeId, std::size_t> alivePos;
  for (const Transition& tr : transitions) {
    const NodeId id = nodes[tr.node].id;
    if (tr.join) {
      // Pick before the joiner becomes visible; a few draws are enough to
      // dodge self, and a lone first node genuinely has nobody to call.
      NodeId pick{};
      if (!alive.empty()) {
        for (int attempt = 0; attempt < 4; ++attempt) {
          const NodeId candidate = alive[bootRng.index(alive.size())];
          if (candidate != id) {
            pick = candidate;
            break;
          }
        }
      }
      bootstrapPicks_[pickOffsets_[tr.node] + tr.session] = pick;
      if (!alivePos.count(id)) {
        alivePos[id] = alive.size();
        alive.push_back(id);
      }
    } else if (const auto it = alivePos.find(id); it != alivePos.end()) {
      const std::size_t pos = it->second;
      alive[pos] = alive.back();
      alivePos[alive[pos]] = pos;
      alive.pop_back();
      alivePos.erase(id);
    }
  }
}

NodeId AvmonProtocol::nextBootstrapPick(std::uint32_t nodeIndex) {
  const std::uint32_t begin = pickOffsets_[nodeIndex];
  const std::uint32_t end = pickOffsets_[nodeIndex + 1];
  std::uint32_t& cursor = bootstrapCursor_[nodeIndex];
  if (begin + cursor >= end) return NodeId{};  // more joins than sessions?
  return bootstrapPicks_[begin + cursor++];
}

void AvmonProtocol::onJoin(const NodeId& id, bool firstJoin) {
  nodes_.at(id)->join(firstJoin);
}

void AvmonProtocol::onLeave(const NodeId& id) { nodes_.at(id)->leave(); }

void AvmonProtocol::forEachNode(
    const std::function<void(const NodeId&)>& fn) const {
  // lint:allow(unordered-iter, visit order feeds float accumulation and CSV row order that the golden fingerprints pin; hash order is deterministic for the fixed insertion history in build())
  for (const auto& [id, node] : nodes_) fn(id);
}

std::optional<SimDuration> AvmonProtocol::discoveryDelay(
    const NodeId& id, std::size_t k) const {
  if (k == 1) {
    // Fast path off the struct-of-arrays row — the k = 1 delay is probed
    // per measured node per window barrier in the streamed lane.
    const std::uint32_t slot = slotOf(id);
    const SimTime joined = state_.firstJoin[slot];
    const SimTime found = state_.firstDiscovery[slot];
    if (joined < 0 || found < 0) return std::nullopt;
    return found - joined;
  }
  return nodes_.at(id)->discoveryDelay(k);
}

std::size_t AvmonProtocol::memoryEntries(const NodeId& id) const {
  const std::uint32_t slot = slotOf(id);
  return static_cast<std::size_t>(state_.cvSize[slot]) + state_.psSize[slot] +
         state_.tsSize[slot];
}

std::uint64_t AvmonProtocol::hashChecks(const NodeId& id) const {
  return state_.hashChecks[slotOf(id)];
}

std::uint64_t AvmonProtocol::uselessPings(const NodeId& id) const {
  return state_.uselessPings[slotOf(id)];
}

bool AvmonProtocol::isMonitoring(const NodeId& id) const {
  return state_.tsSize[slotOf(id)] != 0;
}

std::vector<NodeId> AvmonProtocol::monitorsOf(const NodeId& id) const {
  const auto& ps = nodes_.at(id)->pingingSet();
  // lint:allow(unordered-iter, the accuracy sampler's monitor visit order is pinned by the golden fingerprints; sorting here would reorder its draws)
  return std::vector<NodeId>(ps.begin(), ps.end());
}

void AvmonProtocol::visitMonitorsOf(
    const NodeId& id, const std::function<void(const NodeId&)>& fn) const {
  // Same order as monitorsOf(), minus the vector materialization.
  // lint:allow(unordered-iter, must visit in exactly the monitorsOf order the golden fingerprints pin)
  for (const NodeId& m : nodes_.at(id)->pingingSet()) fn(m);
}

std::optional<EstimateSample> AvmonProtocol::estimate(
    const NodeId& monitor, const NodeId& target) const {
  const auto monIt = nodes_.find(monitor);
  if (monIt == nodes_.end()) return std::nullopt;
  const auto est = monIt->second->availabilityEstimateOf(target);
  if (!est) return std::nullopt;
  // Window aligned to this monitor's observation stream: its samples
  // start at discovery (correlated with the target's up periods), so
  // comparing truth over any other window would bias the accuracy ratio.
  const auto& ts = monIt->second->targetSet();
  const auto recIt = ts.find(target);
  if (recIt == ts.end()) return std::nullopt;
  const history::AvailabilityHistory& hist = *recIt->second.history;
  const auto span = hist.sampleSpan();
  // Monitors with a handful of samples carry no statistical weight
  // (the paper's 48 h runs give every monitor thousands of pings).
  if (!span || hist.sampleCount() < 10) return std::nullopt;
  EstimateSample sample;
  sample.estimated = *est;
  sample.windowStart = span->first;
  // Window end matters too: a monitor that left before the horizon
  // stopped sampling then, so truth is measured over its sample span.
  sample.windowEnd = std::min(span->last + monitoringPeriod_, horizon_);
  return sample;
}

const AvmonNode* AvmonProtocol::avmonNode(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

AvmonNode* AvmonProtocol::mutableAvmonNode(const NodeId& id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

}  // namespace avmon::experiments
