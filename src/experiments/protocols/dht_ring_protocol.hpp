// The DHT replica-set baseline as a pluggable Protocol (paper Section 1,
// existing approach (3), "akin to Total Recall"): PS(x) = the K alive
// nodes whose hashed ids follow hash(x) clockwise on a consistent-hash
// ring. The selection layer is modeled omnisciently (baselines::DhtRing
// carries no message protocol), so bandwidth is honestly zero; what the
// comparison table exposes is the scheme's *churn behaviour* — monitor
// sets that mutate under unrelated joins (the paper's Consistency
// violation), measured here as k-th-monitor discovery times tracked
// across every ring transition.
//
// Single-shard: one globally shared ring.
#pragma once

#include <unordered_map>
#include <vector>

#include "baselines/dht_ring.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

class DhtRingProtocol final : public Protocol {
 public:
  std::string name() const override { return "dht_ring"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;

 private:
  // Re-evaluates alive nodes' pinging-set sizes after a ring transition
  // and records first-reach times per discovery level.
  void recordDiscoveries();

  struct NodeState {
    bool alive = false;
    SimTime firstJoin = -1;
    std::vector<SimTime> psDiscoveryTimes;  // absolute time of k-th entry
  };

  unsigned k_ = 0;
  SimTime horizon_ = 0;
  sim::Simulator* sim_ = nullptr;

  std::unique_ptr<baselines::DhtRing> ring_;
  std::vector<NodeId> order_;  // trace order
  std::unordered_map<NodeId, NodeState> states_;

  // Nodes still below k_ recorded discovery levels: lets the per-join
  // rescan stop the moment the whole population is fully discovered
  // (immediately, in low-churn runs).
  std::size_t undiscovered_ = 0;

  // Post-run memory probe support: how many alive nodes' pinging sets
  // each node sits in, built lazily in ONE pass over the final ring
  // (memoryEntries is queried ~2N times; recomputing the reverse relation
  // per query would be O(N^2 K log N)).
  mutable std::unordered_map<NodeId, std::size_t> targetCounts_;
  mutable bool targetCountsValid_ = false;
};

}  // namespace avmon::experiments
