// The AVCast-style Broadcast baseline as a pluggable Protocol (paper
// Table 1): every (re)joining node broadcasts its presence to the full
// membership, so discovery is near-instant but joins cost O(N) messages
// and every node stores O(N) membership. Replaces the retired ad-hoc
// BroadcastRunner — the scheme now rides the same ScenarioRunner, traces,
// and MetricSet as AVMON, so Table-1 comparisons are one sweep.
//
// Single-shard: the scheme's membership directory is a shared alive list
// (exactly the complete membership graph AVCast maintains anyway).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/broadcast.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

class BroadcastProtocol final : public Protocol {
 public:
  std::string name() const override { return "broadcast"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::uint64_t hashChecks(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;

 private:
  // Alive list in trace order: deterministic directory snapshots (an
  // unordered map would make broadcast order depend on hash layout).
  std::vector<NodeId> order_;
  std::vector<bool> alive_;
  std::unordered_map<NodeId, std::size_t> indexOf_;

  std::unordered_map<NodeId, std::unique_ptr<baselines::BroadcastNode>>
      nodes_;
};

}  // namespace avmon::experiments
