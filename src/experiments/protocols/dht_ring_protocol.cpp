#include "experiments/protocols/dht_ring_protocol.hpp"

namespace avmon::experiments {

void DhtRingProtocol::build(const ProtocolContext& ctx) {
  k_ = ctx.config.k;
  horizon_ = ctx.scenario.horizon;
  sim_ = &ctx.world.simOf(0);
  ring_ = std::make_unique<baselines::DhtRing>(ctx.hashFn, k_);

  for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
    order_.push_back(nt.id);
    states_.emplace(nt.id, NodeState{});
  }
  undiscovered_ = order_.size();
}

void DhtRingProtocol::onJoin(const NodeId& id, bool /*firstJoin*/) {
  NodeState& state = states_.at(id);
  state.alive = true;
  if (state.firstJoin < 0) state.firstJoin = sim_->now();
  ring_->join(id);
  // A join can grow any alive node's pinging set (the newcomer lands
  // somewhere on the ring); a leave can only shrink or rotate sets, so
  // discovery levels are re-evaluated on joins alone.
  recordDiscoveries();
}

void DhtRingProtocol::onLeave(const NodeId& id) {
  // The trace closes every open session exactly at the horizon, and a
  // session's node counts as up AT its end instant (ground-truth
  // availability includes it). Processing those teardown leaves would
  // empty the ring at the very moment the memory metrics are read, so —
  // unlike mid-run churn — they are ignored: the final ring is the alive
  // set just before the horizon. (AVMON needs no such guard; its PS/TS
  // persist leaves by design.)
  if (sim_->now() >= horizon_) return;
  states_.at(id).alive = false;
  ring_->leave(id);
  targetCountsValid_ = false;
}

void DhtRingProtocol::recordDiscoveries() {
  targetCountsValid_ = false;
  if (undiscovered_ == 0) return;  // steady state: nothing left to record
  const SimTime now = sim_->now();
  for (const NodeId& id : order_) {
    NodeState& state = states_.at(id);
    if (!state.alive || state.psDiscoveryTimes.size() >= k_) continue;
    const std::size_t size = ring_->replicaSet(id).size();
    while (state.psDiscoveryTimes.size() < size &&
           state.psDiscoveryTimes.size() < k_) {
      state.psDiscoveryTimes.push_back(now);
    }
    if (state.psDiscoveryTimes.size() >= k_) --undiscovered_;
  }
}

void DhtRingProtocol::forEachNode(
    const std::function<void(const NodeId&)>& fn) const {
  for (const NodeId& id : order_) fn(id);
}

std::optional<SimDuration> DhtRingProtocol::discoveryDelay(
    const NodeId& id, std::size_t k) const {
  const NodeState& state = states_.at(id);
  if (k == 0 || state.psDiscoveryTimes.size() < k || state.firstJoin < 0)
    return std::nullopt;
  return state.psDiscoveryTimes[k - 1] - state.firstJoin;
}

std::size_t DhtRingProtocol::memoryEntries(const NodeId& id) const {
  const NodeState& state = states_.at(id);
  if (state.firstJoin < 0) return 0;
  // The scheme's per-node state at the horizon: its replica set (the K
  // successors it would ping) plus one entry per node it currently sits
  // in the replica set of. The reverse relation is built once per ring
  // version for the whole population (the metric snapshot probes every
  // node; one O(N K log N) pass instead of one per query).
  if (!targetCountsValid_) {
    targetCounts_.clear();
    for (const NodeId& other : order_) {
      if (!states_.at(other).alive) continue;
      for (const NodeId& m : ring_->replicaSet(other)) ++targetCounts_[m];
    }
    targetCountsValid_ = true;
  }
  const auto it = targetCounts_.find(id);
  const std::size_t targets = it == targetCounts_.end() ? 0 : it->second;
  return ring_->replicaSet(id).size() + targets;
}

std::vector<NodeId> DhtRingProtocol::monitorsOf(const NodeId& id) const {
  return ring_->replicaSet(id);
}

}  // namespace avmon::experiments
