// The central-monitor baseline as a pluggable Protocol (paper Section 1,
// existing approach (2)): PS(x) = {server} for every x. One designated
// always-up host (outside the churn trace) pings every registered member
// each monitoring period. Running it through ScenarioRunner quantifies
// the load-imbalance failure the paper motivates: the server's memory and
// bandwidth rows of the comparison table grow as O(N) while every member
// pays O(1).
//
// Single-shard: the server is one globally shared endpoint.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/central.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

class CentralProtocol final : public Protocol {
 public:
  /// The server's synthetic address: outside NodeId::fromIndex's 10.x.y.z
  /// range, so it can never collide with a trace node.
  static const NodeId kServerId;

  std::string name() const override { return "central"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::uint64_t uselessPings(const NodeId& id) const override;
  bool isMonitoring(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;
  std::optional<EstimateSample> estimate(const NodeId& monitor,
                                         const NodeId& target) const override;

 private:
  SimDuration monitoringPeriod_ = 0;
  SimTime horizon_ = 0;
  sim::Simulator* sim_ = nullptr;  // shard 0's clock (single-shard scheme)

  std::unique_ptr<baselines::CentralServer> server_;
  std::vector<NodeId> order_;  // trace order, server last
  std::unordered_map<NodeId, std::unique_ptr<baselines::CentralMember>>
      members_;
  std::unordered_map<NodeId, SimTime> firstJoinAt_;
};

}  // namespace avmon::experiments
