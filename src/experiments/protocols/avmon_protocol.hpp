// AVMON as a pluggable Protocol: one AvmonNode per trace node, built into
// the sharded world with trace-precomputed bootstrap picks (the property
// that keeps every shard count bit-identical — see ScenarioRunner docs).
//
// This is a mechanical extraction of the protocol-specific half of the
// pre-plug-in ScenarioRunner. The RNG draw order (network seed, bootstrap
// stream, per-node streams, overreporter selection) and every container
// iteration order are preserved exactly, which is what keeps the pinned
// golden metric fingerprints valid across the API redesign.
//
// Memory layout (million-node diet): all nodes share ONE immutable
// AvmonConfig; bootstrap picks live in one flat arena instead of a vector
// per node; and the probe-hot per-node scalars are mirrored into a
// struct-of-arrays NodeStateTable indexed by global world slot, which is
// what the metric probes read — the full AvmonNode is only consulted for
// protocol logic (estimates, monitor sets, generic-k discovery).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "avmon/node_state.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

class AvmonProtocol final : public Protocol {
 public:
  std::string name() const override { return "avmon"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::uint64_t hashChecks(const NodeId& id) const override;
  std::uint64_t uselessPings(const NodeId& id) const override;
  bool isMonitoring(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;
  void visitMonitorsOf(
      const NodeId& id,
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<EstimateSample> estimate(const NodeId& monitor,
                                         const NodeId& target) const override;

  const AvmonNode* avmonNode(const NodeId& id) const override;
  AvmonNode* mutableAvmonNode(const NodeId& id) override;

  /// The struct-of-arrays probe mirror (soa_state_test cross-checks it
  /// against the object layout).
  const soa::NodeStateTable& stateTable() const noexcept { return state_; }

 private:
  void precomputeBootstrapPicks(const ProtocolContext& ctx);
  NodeId nextBootstrapPick(std::uint32_t nodeIndex);

  /// Global world slot of `id` (== trace position; nodes are built in
  /// trace order, which is also world registration order).
  std::uint32_t slotOf(const NodeId& id) const {
    return nodes_.at(id)->stateSlot();
  }

  // Harness facts the probes need after build() returned.
  SimDuration monitoringPeriod_ = 0;
  SimTime horizon_ = 0;

  std::unordered_map<NodeId, std::unique_ptr<AvmonNode>> nodes_;

  // Probe-hot per-node scalars, one row per trace slot (see node_state.hpp).
  soa::NodeStateTable state_;

  // Bootstrap picks, precomputed from the trace (the alive set at any
  // instant is trace-determined, not protocol-determined). Node i's j-th
  // join consumes the j-th pick of its [pickOffsets_[i], pickOffsets_[i+1])
  // arena slice; the cursor is only ever touched by i's home shard, so
  // joins on different shards need no shared alive list. One flat arena +
  // offsets replaces the old vector-per-node layout (24 B + an allocation
  // per node).
  std::vector<NodeId> bootstrapPicks_;
  std::vector<std::uint32_t> pickOffsets_;
  std::vector<std::uint32_t> bootstrapCursor_;
};

}  // namespace avmon::experiments
