// AVMON as a pluggable Protocol: one AvmonNode per trace node, built into
// the sharded world with trace-precomputed bootstrap picks (the property
// that keeps every shard count bit-identical — see ScenarioRunner docs).
//
// This is a mechanical extraction of the protocol-specific half of the
// pre-plug-in ScenarioRunner. The RNG draw order (network seed, bootstrap
// stream, per-node streams, overreporter selection) and every container
// iteration order are preserved exactly, which is what keeps the pinned
// golden metric fingerprints valid across the API redesign.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "experiments/protocol.hpp"

namespace avmon::experiments {

class AvmonProtocol final : public Protocol {
 public:
  std::string name() const override { return "avmon"; }

  void build(const ProtocolContext& ctx) override;

  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;

  void forEachNode(
      const std::function<void(const NodeId&)>& fn) const override;
  std::optional<SimDuration> discoveryDelay(const NodeId& id,
                                            std::size_t k) const override;
  std::size_t memoryEntries(const NodeId& id) const override;
  std::uint64_t hashChecks(const NodeId& id) const override;
  std::uint64_t uselessPings(const NodeId& id) const override;
  bool isMonitoring(const NodeId& id) const override;
  std::vector<NodeId> monitorsOf(const NodeId& id) const override;
  std::optional<EstimateSample> estimate(const NodeId& monitor,
                                         const NodeId& target) const override;

  const AvmonNode* avmonNode(const NodeId& id) const override;
  AvmonNode* mutableAvmonNode(const NodeId& id) override;

 private:
  void precomputeBootstrapPicks(const ProtocolContext& ctx);
  NodeId nextBootstrapPick(std::uint32_t nodeIndex);

  // Harness facts the probes need after build() returned.
  SimDuration monitoringPeriod_ = 0;
  SimTime horizon_ = 0;

  std::unordered_map<NodeId, std::unique_ptr<AvmonNode>> nodes_;

  // Bootstrap picks, precomputed from the trace (the alive set at any
  // instant is trace-determined, not protocol-determined). Node i's j-th
  // join consumes picks_[i][j]; the cursor is only ever touched by i's
  // home shard, so joins on different shards need no shared alive list.
  std::vector<std::vector<NodeId>> bootstrapPicks_;
  std::vector<std::size_t> bootstrapCursor_;
};

}  // namespace avmon::experiments
