#include "experiments/protocols/central_protocol.hpp"

#include <algorithm>

namespace avmon::experiments {

// 192.0.2.1:9 — TEST-NET, far outside the simulation's 10.x.y.z block.
const NodeId CentralProtocol::kServerId = NodeId(0xC0000201u, 9);

void CentralProtocol::build(const ProtocolContext& ctx) {
  monitoringPeriod_ = ctx.config.monitoringPeriod;
  horizon_ = ctx.scenario.horizon;
  sim_ = &ctx.world.simOf(0);

  // The server is a real network participant (its O(N) ping load is the
  // point of the comparison), so it registers with the world like any
  // trace node — just after them, and outside the churn schedule.
  ctx.world.registerNode(kServerId);
  server_ = std::make_unique<baselines::CentralServer>(
      kServerId, ctx.world.simOf(0), ctx.world.netOf(0),
      ctx.config.monitoringPeriod, ctx.config.pingBytes);
  server_->start();

  for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
    order_.push_back(nt.id);
    members_.emplace(nt.id, std::make_unique<baselines::CentralMember>(
                                nt.id, kServerId, ctx.world.netOf(0)));
  }
  order_.push_back(kServerId);
}

void CentralProtocol::onJoin(const NodeId& id, bool /*firstJoin*/) {
  firstJoinAt_.try_emplace(id, sim_->now());
  members_.at(id)->join();
}

void CentralProtocol::onLeave(const NodeId& id) {
  // Horizon-instant leaves are the trace's session teardown, not churn:
  // the trace counts the node as up AT the horizon, and the server's
  // minute-aligned ping loop would otherwise race those leaves at the
  // final tick and record one spurious down sample per member. Mid-run
  // leaves are real and processed normally.
  if (sim_->now() >= horizon_) return;
  members_.at(id)->leave();
}

void CentralProtocol::forEachNode(
    const std::function<void(const NodeId&)>& fn) const {
  for (const NodeId& id : order_) fn(id);
}

std::optional<SimDuration> CentralProtocol::discoveryDelay(
    const NodeId& id, std::size_t k) const {
  // PS(x) = {server}: there is exactly one monitor to discover, and it
  // knows the member once the registration message lands.
  if (k != 1 || id == kServerId) return std::nullopt;
  const auto registered = server_->registeredAt(id);
  const auto joined = firstJoinAt_.find(id);
  if (!registered || joined == firstJoinAt_.end()) return std::nullopt;
  return *registered - joined->second;
}

std::size_t CentralProtocol::memoryEntries(const NodeId& id) const {
  // The server's member table is the scheme's O(N) memory; each member
  // that ever joined holds one entry (the server's address).
  if (id == kServerId) return server_->memberCount();
  return firstJoinAt_.count(id) ? 1 : 0;
}

std::uint64_t CentralProtocol::uselessPings(const NodeId& id) const {
  return id == kServerId ? server_->uselessPings() : 0;
}

bool CentralProtocol::isMonitoring(const NodeId& id) const {
  return id == kServerId && server_->memberCount() > 0;
}

std::vector<NodeId> CentralProtocol::monitorsOf(const NodeId& id) const {
  if (id == kServerId || !server_->registeredAt(id)) return {};
  return {kServerId};
}

std::optional<EstimateSample> CentralProtocol::estimate(
    const NodeId& monitor, const NodeId& target) const {
  if (monitor != kServerId) return std::nullopt;
  const history::RawHistory* hist = server_->historyOf(target);
  if (hist == nullptr) return std::nullopt;
  const auto span = hist->sampleSpan();
  // Same statistical-weight threshold as the AVMON probe.
  if (!span || hist->sampleCount() < 10) return std::nullopt;
  EstimateSample sample;
  sample.estimated = hist->estimate();
  sample.windowStart = span->first;
  sample.windowEnd = std::min(span->last + monitoringPeriod_, horizon_);
  return sample;
}

}  // namespace avmon::experiments
