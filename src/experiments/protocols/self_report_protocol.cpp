#include "experiments/protocols/self_report_protocol.hpp"

#include "experiments/adversary.hpp"

namespace avmon::experiments {

void SelfReportProtocol::build(const ProtocolContext& ctx) {
  horizon_ = ctx.scenario.horizon;
  sim_ = &ctx.world.simOf(0);

  for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
    order_.push_back(nt.id);
    nodes_.emplace(nt.id, baselines::SelfReportNode(nt.id));
  }

  // The scenario's overreport fraction maps onto the scheme's own threat
  // model: a selfish node simply reports 100%.
  if (ctx.scenario.overreportFraction > 0) {
    for (const NodeId& id : order_) {
      if (ctx.rootRng.chance(ctx.scenario.overreportFraction))
        nodes_.at(id).setSelfish(true);
    }
  }

  // Under self-reporting every node vouches for itself, so a coalition's
  // lie degenerates to plain selfishness — the same adversary budget hits
  // this baseline as selfish colluders (victims are irrelevant here).
  if (ctx.adversary != nullptr) {
    for (const NodeId& id : order_) {
      if (ctx.adversary->isColluder(id)) nodes_.at(id).setSelfish(true);
    }
  }
}

void SelfReportProtocol::onJoin(const NodeId& id, bool /*firstJoin*/) {
  nodes_.at(id).join(sim_->now());
}

void SelfReportProtocol::onLeave(const NodeId& id) {
  nodes_.at(id).leave(sim_->now());
}

void SelfReportProtocol::forEachNode(
    const std::function<void(const NodeId&)>& fn) const {
  for (const NodeId& id : order_) fn(id);
}

std::optional<SimDuration> SelfReportProtocol::discoveryDelay(
    const NodeId& id, std::size_t k) const {
  // A node is its own (only) monitor the instant it first joins.
  if (k != 1 || !nodes_.at(id).firstJoinTime()) return std::nullopt;
  return SimDuration{0};
}

std::size_t SelfReportProtocol::memoryEntries(const NodeId& id) const {
  // One entry: the node's own up-time accumulator.
  return nodes_.at(id).firstJoinTime() ? 1 : 0;
}

std::vector<NodeId> SelfReportProtocol::monitorsOf(const NodeId& id) const {
  if (!nodes_.at(id).firstJoinTime()) return {};
  return {id};
}

std::optional<EstimateSample> SelfReportProtocol::estimate(
    const NodeId& monitor, const NodeId& target) const {
  if (monitor != target) return std::nullopt;
  const auto it = nodes_.find(monitor);
  if (it == nodes_.end()) return std::nullopt;
  const auto firstJoin = it->second.firstJoinTime();
  if (!firstJoin) return std::nullopt;
  EstimateSample sample;
  // Honest nodes report their true up fraction since first join — which
  // matches the trace's ground truth over the same window exactly;
  // selfish nodes report 1.0 and the accuracy table shows the gap.
  sample.estimated = it->second.reportedAvailability(horizon_);
  sample.windowStart = *firstJoin;
  sample.windowEnd = horizon_;
  return sample;
}

}  // namespace avmon::experiments
