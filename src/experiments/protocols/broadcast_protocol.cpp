#include "experiments/protocols/broadcast_protocol.hpp"

namespace avmon::experiments {

void BroadcastProtocol::build(const ProtocolContext& ctx) {
  const auto directory = [this] {
    std::vector<NodeId> aliveIds;
    aliveIds.reserve(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (alive_[i]) aliveIds.push_back(order_[i]);
    }
    return aliveIds;
  };

  for (const trace::NodeTrace& nt : ctx.trace.nodes()) {
    indexOf_[nt.id] = order_.size();
    order_.push_back(nt.id);
    alive_.push_back(false);
    nodes_.emplace(nt.id, std::make_unique<baselines::BroadcastNode>(
                              nt.id, *ctx.memoSelectors[0], ctx.world.simOf(0),
                              ctx.world.netOf(0), directory));
  }
}

void BroadcastProtocol::onJoin(const NodeId& id, bool /*firstJoin*/) {
  alive_[indexOf_.at(id)] = true;
  nodes_.at(id)->join();
}

void BroadcastProtocol::onLeave(const NodeId& id) {
  alive_[indexOf_.at(id)] = false;
  nodes_.at(id)->leave();
}

void BroadcastProtocol::forEachNode(
    const std::function<void(const NodeId&)>& fn) const {
  for (const NodeId& id : order_) fn(id);
}

std::optional<SimDuration> BroadcastProtocol::discoveryDelay(
    const NodeId& id, std::size_t k) const {
  return nodes_.at(id)->discoveryDelay(k);
}

std::size_t BroadcastProtocol::memoryEntries(const NodeId& id) const {
  return nodes_.at(id)->memoryEntries();
}

std::uint64_t BroadcastProtocol::hashChecks(const NodeId& id) const {
  return nodes_.at(id)->hashChecks();
}

std::vector<NodeId> BroadcastProtocol::monitorsOf(const NodeId& id) const {
  const auto& ps = nodes_.at(id)->pingingSet();
  // lint:allow(unordered-iter, the accuracy sampler's monitor visit order is part of the pinned metric stream; hash order is deterministic for a fixed insertion history)
  return std::vector<NodeId>(ps.begin(), ps.end());
}

}  // namespace avmon::experiments
