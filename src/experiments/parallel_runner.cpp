#include "experiments/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "experiments/protocol_registry.hpp"

namespace avmon::experiments {

Scenario ParallelScenarioRunner::applyShards(Scenario scenario) const {
  if (shardsPerScenario_ == 0) return scenario;
  unsigned shards = shardsPerScenario_;
  // Clamp to the protocol's shard ceiling so one override works across a
  // mixed AVMON-vs-baselines sweep (unknown protocols pass through; the
  // runner's validate() reports them with the full name list).
  if (const ProtocolFactory* factory =
          ProtocolRegistry::instance().find(scenario.protocol)) {
    if (factory->maxShards != 0) {
      shards = std::min(shards, factory->maxShards);
    }
  }
  scenario.shards = shards;
  return scenario;
}

unsigned defaultWorkerThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallelForIndex(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)>& job) {
  if (count == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads == 0 ? defaultWorkerThreads() : threads,
                            count));
  if (workers <= 1) {
    // Serial fast path: no pool, exceptions propagate directly.
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread creation failed mid-spawn (e.g. EAGAIN at the host's thread
    // limit). Park the remaining work and join what did start, so the
    // error propagates instead of ~thread() calling std::terminate.
    next.store(count, std::memory_order_relaxed);
    for (std::thread& t : pool) t.join();
    throw;
  }
  for (std::thread& t : pool) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

std::vector<std::unique_ptr<ScenarioRunner>> ParallelScenarioRunner::runAll(
    const std::vector<Scenario>& scenarios) const {
  std::vector<std::unique_ptr<ScenarioRunner>> runners(scenarios.size());
  parallelForIndex(scenarios.size(), threads_, [&](std::size_t i) {
    auto runner = std::make_unique<ScenarioRunner>(applyShards(scenarios[i]));
    runner->run();
    runners[i] = std::move(runner);
  });
  return runners;
}

}  // namespace avmon::experiments
