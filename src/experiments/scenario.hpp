// Scenario runner: the one harness behind every experiment.
//
// Builds a complete simulated deployment — availability schedule from a
// churn model, a network, one protocol participant per scheduled node —
// plays the schedule, and exposes exactly the metrics the paper's figures
// report: discovery times, per-node memory entries, consistency-check
// rates, outgoing bandwidth, useless pings, and estimated-vs-real
// availability.
//
// The monitoring scheme is pluggable: Scenario::protocol names an entry in
// the ProtocolRegistry (AVMON plus the paper's four Section-1 baselines),
// and the harness drives whichever Protocol it resolves to — so AVMON and
// every baseline produce the same MetricSet through the same code path,
// which is what makes the paper's head-to-head tables (Sections 5–6) one
// sweep instead of per-scheme harnesses.
//
// Measurement conventions (Section 5.1 of the paper):
//  * a warm-up period runs first; bandwidth counters reset when it ends;
//  * the "measured set" is the control group where the model defines one
//    (STAT/SYNTH), nodes born after warm-up for the birth/death models,
//    and every node for the trace-driven models (PL/OV);
//  * discovery time of the k-th monitor is measured from a node's first
//    join to the instant its pinging set reached size k.
//
// Execution: every scenario runs inside a sim::ShardedSimulator —
// Scenario::shards sub-worlds in lock-stepped windows (shards = 1, the
// default, is the degenerate single sub-world). Shard counts change wall
// clock only, never metrics; see sharded_simulator.hpp for the model.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "avmon/config.hpp"
#include "avmon/monitor_selector.hpp"
#include "avmon/node.hpp"
#include "churn/churn_model.hpp"
#include "churn/trace_player.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/fault_plan.hpp"
#include "sim/network.hpp"
#include "sim/sharded_simulator.hpp"
#include "sim/simulator.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::experiments {

class Protocol;            // experiments/protocol.hpp
struct ResolvedAdversary;  // experiments/adversary.hpp

namespace streaming {
class StreamingCollector;  // experiments/streaming/collector.hpp
}

/// Streaming-metrics configuration (experiments/streaming). Off by
/// default: the materialized end-of-run scan stays the primary lane, and
/// every default-path golden fingerprint is untouched.
struct StreamingMetricsSpec {
  /// Metric-window length; 0 disables streaming. The runner aligns each
  /// nominal boundary UP to the sharding-window grid, so a streamed run's
  /// event execution is bit-identical to an uninterrupted one and the
  /// streamed metrics reproduce the materialized ones exactly.
  SimDuration window = 0;
  /// ReducerRegistry names to run; empty = every registered reducer.
  std::vector<std::string> reducers;
  /// Quantiles the streamed summary reports (each in (0, 1)).
  std::vector<double> quantiles{0.5, 0.99};

  bool enabled() const noexcept { return window > 0; }
};

/// Adversary cohorts (spec keys attack.*; paper Section 4.3). Cohort
/// membership is resolved against the concrete trace at runner
/// construction — see experiments/adversary.hpp — from seed-derived
/// streams that never touch the runner's root stream, so arming an attack
/// leaves the underlying world bit-identical.
struct AttackSpec {
  /// Collusion coalition size C: that many nodes report 100% availability
  /// for the targeted victims. 0 disables the attack.
  std::uint32_t collusion = 0;
  /// Targeted nodes the coalition lies about; 0 with collusion > 0 means
  /// one victim. Both clamp to what the population can supply.
  std::uint32_t victims = 0;
  /// Fraction of nodes that wipe persistent storage (CV/PS/TS) on every
  /// leave, violating the Section 3.3 persistence assumption.
  double forgetfulFraction = 0.0;

  bool enabled() const noexcept {
    return collusion > 0 || forgetfulFraction > 0.0;
  }
};

/// Which lane executes the scenario: the deterministic discrete-event
/// simulator (ScenarioRunner) or the live-wire loopback cluster of real
/// UDP processes (tools/avmon_live). The sim lane is the default and the
/// only one ScenarioRunner accepts; kUdp specs are driver input.
enum class TransportKind {
  kSim,  ///< in-process sim::Network (default; every golden runs here)
  kUdp,  ///< net::LiveTransport over loopback sockets, one process per node
};

/// Live-lane knobs (spec keys udp.*). Meaningful only under
/// transport = udp; validate() rejects non-default values under kSim so a
/// spec cannot silently carry dead configuration.
struct UdpSpec {
  /// First UDP port: node i binds 127.0.0.1:(portBase + i), the driver
  /// takes portBase - 1.
  std::uint16_t portBase = 42000;
  /// RPC retry ladder (net::LiveConfig): total send attempts, initial
  /// per-attempt timeout, and the doubling cap.
  std::uint32_t retryMax = 4;
  std::uint32_t backoffMs = 50;
  std::uint32_t backoffCapMs = 800;
  /// Simulated milliseconds per wall millisecond: every node process
  /// wall-slaves its simulator clock at this rate so a 40-minute horizon
  /// replays in 40 s of wall time at the default 60x.
  double timeScale = 60.0;

  bool operator==(const UdpSpec& other) const {
    return portBase == other.portBase && retryMax == other.retryMax &&
           backoffMs == other.backoffMs &&
           backoffCapMs == other.backoffCapMs && timeScale == other.timeScale;
  }
  bool operator!=(const UdpSpec& other) const { return !(*this == other); }
};

/// Which nodes the metrics cover.
enum class MeasuredSet {
  kAuto,             ///< per-model default described above
  kControlGroup,     ///< nodes flagged isControl in the trace
  kBornAfterWarmup,  ///< nodes whose birth is after the warm-up
  kAll,              ///< every node in the trace
};

/// Full experiment description. Declarative: a Scenario round-trips
/// through the key=value spec grammar (fromSpec/toSpec, experiments/
/// spec.hpp), so workloads are text files, not code.
struct Scenario {
  /// Monitoring scheme, by ProtocolRegistry name ("avmon", "broadcast",
  /// "central", "dht_ring", "self_report").
  std::string protocol = "avmon";

  churn::Model model = churn::Model::kStat;
  std::size_t stableSize = 1000;    ///< N (ignored by PL/OV)
  SimDuration horizon = 2 * kHour;  ///< total simulated time
  SimTime warmup = 1 * kHour;       ///< warm-up end = control join time
  double controlFraction = 0.1;     ///< control group size (STAT/SYNTH)
  std::uint64_t seed = 1;

  /// Hash behind the consistency condition. Benches default to the fast
  /// splitmix64 mixer: the metrics count *how many* condition checks the
  /// protocol performs, and the selection distribution is uniform for any
  /// well-mixing hash, so figures are unchanged (verified by
  /// bench_abl_hash); MD5 is the paper-faithful default elsewhere.
  std::string hashName = "splitmix64";

  /// Protocol settings; defaults to AvmonConfig::paperDefaults(N).
  std::optional<AvmonConfig> configOverride;
  bool pr2 = false;
  bool forgetful = true;
  /// Use the exponentially averaged session length in forgetful pinging.
  bool forgetfulEwma = false;

  /// Fraction of nodes misreporting 100% availability for all their
  /// targets (Figure 20's attack; the self-report baseline maps it to its
  /// selfish nodes).
  double overreportFraction = 0.0;

  /// Failure injection (resilience testing; the paper assumes a reliable
  /// network, so both default to 0).
  double messageDropProbability = 0.0;
  double rpcFailProbability = 0.0;

  /// Scheduled faults (spec keys faults.*): timed partitions, correlated
  /// failure bursts, latency-regime windows, geo-clustered bands. Empty by
  /// default — an empty plan is bit-identical to no plan at all.
  sim::FaultPlan faults;

  /// Adversary cohorts (spec keys attack.*).
  AttackSpec attack;

  /// Deep AvmonConfig knobs surfaced as spec keys. Unset keeps whatever
  /// the resolved config (paper defaults or configOverride) says; set,
  /// they override it just before validation.
  std::optional<avmon::ShufflePolicy> shuffle;  ///< spec key `shuffle`
  std::optional<std::uint32_t> notifyDedupMax;  ///< spec key `notify_dedup_max`
  /// Availability-history implementation behind every AVMON target record
  /// ("raw", "recent", "aged", "compact"; spec keys `history` /
  /// `history_param`). "compact" is the million-node run-length layout —
  /// see history/availability_history.hpp.
  std::optional<std::string> history;
  std::optional<double> historyParam;

  MeasuredSet measured = MeasuredSet::kAuto;

  /// Execution lane (spec key `transport`, values sim|udp). ScenarioRunner
  /// refuses kUdp — live specs are executed by tools/avmon_live, which
  /// spawns one avmon_node process per scheduled node.
  TransportKind transport = TransportKind::kSim;
  /// Live-lane knobs (spec keys udp.*); defaults under kSim only.
  UdpSpec udp;

  /// Shards the node population is partitioned across (sim::ShardedSimulator).
  /// 1 = single sub-world (still windowed, so its metrics are bit-identical
  /// to any other shard count); 0 = one shard per hardware thread. The
  /// shard count never changes results, only wall-clock time.
  unsigned shards = 1;

  /// Model both RPC legs with latency as simulator events (the harness
  /// default). Required whenever shards > 1 — an instantaneous RPC cannot
  /// cross a shard boundary. Turning it off keeps the paper's collapsed-RTT
  /// accounting as a single-shard lane.
  bool deferredRpc = true;

  /// Streaming metrics pipeline (spec keys metrics.window /
  /// metrics.reducers / metrics.quantiles; avmon_sim --stream-metrics).
  StreamingMetricsSpec metrics;

  /// Checks every cross-field invariant (known protocol and hash, nonzero
  /// N/horizon, warmup < horizon, shard/RPC-lane compatibility, protocol
  /// shard limits, probability ranges) and throws std::invalid_argument
  /// with an actionable message on the first violation. ScenarioRunner
  /// validates on construction; tools validate right after parsing so a
  /// bad spec fails before any world is built.
  void validate() const;

  /// Parses the key=value spec grammar (see experiments/spec.hpp for the
  /// key list). Throws std::invalid_argument on unknown keys or malformed
  /// values. fromSpec(s.toSpec()) reproduces s exactly.
  static Scenario fromSpec(const std::string& text);

  /// Canonical spec serialization: fixed key order, one key per line.
  /// parse -> serialize -> parse is a fixed point.
  std::string toSpec() const;
};

/// Estimated-vs-actual availability for one node (Figures 17 and 20).
struct AvailabilityAccuracy {
  NodeId id;
  double estimated = 0.0;  ///< mean over the node's PS members' histories
  double actual = 0.0;     ///< ground truth from the availability trace
  std::size_t reporters = 0;
};

/// Builds, runs, and reports one scenario.
class ScenarioRunner final : public churn::LifecycleListener {
 public:
  explicit ScenarioRunner(Scenario scenario);
  ~ScenarioRunner() override;

  ScenarioRunner(const ScenarioRunner&) = delete;
  ScenarioRunner& operator=(const ScenarioRunner&) = delete;

  /// Runs the full scenario to its horizon. Call once.
  void run();

  // ---- results (valid after run()) ----

  const Scenario& scenario() const noexcept { return scenario_; }
  const trace::AvailabilityTrace& schedule() const noexcept { return trace_; }
  const AvmonConfig& config() const noexcept { return config_; }
  std::size_t effectiveN() const noexcept { return effectiveN_; }

  /// The scheme under measurement (probe surface for tests).
  const Protocol& protocol() const noexcept { return *protocol_; }

  /// The scenario's attack spec resolved against the trace (empty cohorts
  /// when no attack keys are set). Valid from construction.
  const ResolvedAdversary& adversary() const noexcept;

  /// Ids in the measured set (see MeasuredSet).
  const std::vector<NodeId>& measuredIds() const noexcept { return measured_; }

  /// Discovery delay (seconds) of each measured node's k-th monitor;
  /// nodes that never discovered k monitors are omitted.
  std::vector<double> discoveryDelaysSeconds(std::size_t k = 1) const;

  /// Fraction of measured nodes that discovered >= k monitors.
  double discoveredFraction(std::size_t k = 1) const;

  /// Consistency-condition evaluations per second of up-time, per measured
  /// node (the paper's computation metric).
  std::vector<double> computationsPerSecond() const;

  /// Per-node monitoring-state entries at the end of the run (|CV|+|PS|+
  /// |TS| for AVMON; each scheme's own honest accounting otherwise).
  std::vector<double> memoryEntries(bool measuredOnly) const;

  /// Outgoing bytes per second over the post-warm-up window, per node that
  /// was up for at least one protocol period of that window.
  std::vector<double> outgoingBytesPerSecond() const;

  /// Monitoring pings sent to absent targets, per minute of up-time, per
  /// node that monitors at least one target.
  std::vector<double> uselessPingsPerMinute() const;

  /// Estimated (monitor-averaged) vs. actual availability for each node in
  /// the chosen set that has at least one reporting monitor.
  std::vector<AvailabilityAccuracy> availabilityAccuracy(bool measuredOnly) const;

  /// Id of the node with the highest outgoing byte count (nil if none) —
  /// used by bandwidth benches to explain distribution tails.
  NodeId maxBandwidthNode() const;

  /// Direct node access for custom probes (tests, examples, ablations).
  /// AVMON scenarios only: throws std::logic_error for other protocols
  /// (use protocol() probes instead) and std::out_of_range for unknown ids.
  const AvmonNode& node(const NodeId& id) const;
  AvmonNode& mutableNode(const NodeId& id);

  /// The sharded world the scenario runs in (always present; a plain run
  /// is the one-shard case). Exposes per-shard simulators/networks and the
  /// window/hand-off counters for tests and benches.
  const sim::ShardedSimulator& world() const noexcept { return *world_; }

  /// Outgoing-traffic counters for `id`, read from its home shard.
  sim::TrafficCounters trafficOf(const NodeId& id) const;

  /// Ground-truth schedule of `id`, or nullptr for scheme-owned
  /// participants outside the trace (e.g. the central baseline's server).
  /// O(1): a dense vector indexed by the world's global slot (== trace
  /// position), not a per-node hash map — the probe paths at million-node
  /// scale lean on this.
  const trace::NodeTrace* traceOf(const NodeId& id) const;

  /// The streaming pipeline, when the scenario enabled it
  /// (scenario.metrics.window > 0); nullptr otherwise. Windows and the
  /// streamed summary are valid after run().
  const streaming::StreamingCollector* streamingCollector() const noexcept {
    return collector_.get();
  }

  // ---- LifecycleListener ----
  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;
  void onDeath(const NodeId& id) override;

 private:
  void buildMeasuredSet();

  Scenario scenario_;
  std::size_t effectiveN_;
  AvmonConfig config_;

  Rng rootRng_;
  // The scenario's fault plan, bound to the trace population and wired
  // into every shard network. Must outlive world_ (declared before it).
  sim::FaultPlan faultPlan_;
  std::unique_ptr<ResolvedAdversary> adversary_;
  std::unique_ptr<sim::ShardedSimulator> world_;
  std::unique_ptr<hash::HashFunction> hashFn_;
  std::unique_ptr<HashMonitorSelector> selector_;
  // Nodes check the consistency condition through per-shard memos:
  // verdicts are identical (the selector is a pure function) but the
  // ~10^8 repeated checks of a long run become single table probes. One
  // memo per shard keeps the caches thread-private.
  std::vector<std::unique_ptr<MemoizedMonitorSelector>> memoSelectors_;

  trace::AvailabilityTrace trace_;
  std::unique_ptr<churn::TracePlayer> player_;

  std::unique_ptr<Protocol> protocol_;

  // Trace record per global world slot (slot i == trace position i; see
  // the registration loop). Dense: 8 bytes per node, no hash buckets.
  std::vector<const trace::NodeTrace*> traceBySlot_;

  std::vector<NodeId> measured_;
  std::unique_ptr<streaming::StreamingCollector> collector_;
  bool ran_ = false;
};

}  // namespace avmon::experiments
