// Declarative scenario specs: scenarios are data, not C++.
//
// Grammar — one `key = value` pair per line, `#` starts a comment:
//
//     # AVMON vs. the baselines under SYNTH churn, 3 seeds
//     protocol = avmon, broadcast, central     # list keys sweep
//     model    = SYNTH
//     n        = 150
//     seed     = 1, 2, 3
//     horizon_min = 80
//     warmup_min  = 30
//
// Scalar keys (applied to every expanded scenario): horizon_min or
// horizon_ms, warmup_min or warmup_ms, control_fraction, hash, cvs, k
// (0 = paper default), pr2, forgetful, forgetful_ewma, overreport,
// rpc_fail, measured (auto|control|born_after_warmup|all), shards,
// deferred_rpc, shuffle (union-sample|swap), notify_dedup_max,
// history (raw|recent|aged|compact) with history_param (style-specific
// knob; compact: max run-length runs per target),
// metrics.window (seconds; 0 = no streaming), metrics.reducers (comma
// list of ReducerRegistry names; applies as one value, not a sweep axis),
// metrics.quantiles (comma list in (0,1)).
//
// Fault-injection and adversary keys (sim/fault_plan.hpp and
// experiments/adversary.hpp; times in seconds, latencies in ms,
// `;`-separated entries, `:`-separated fields):
//     faults.partition = t0:t1:groups [; ...]
//     faults.burst     = t:duration:fraction [; ...]
//     faults.latency   = t0:t1:min_ms:max_ms [; ...]
//     faults.geo       = regions:intra_min:intra_max:inter_min:inter_max
//     attack.collusion = C          # coalition size
//     attack.victims   = V          # targets (default 1 when C > 0)
//     attack.forgetful = fraction   # storage-wiping cohort
// List keys (comma-separated, cross-producted in
// protocol > model > n > seed > drop > attack.overreport order):
// protocol, model, n, seed, drop, attack.overreport (sweepable alias of
// the scalar `overreport`; naming both is an error).  A spec whose lists
// are all singletons is exactly one Scenario — Scenario::fromSpec /
// toSpec round-trip through this grammar, and `avmon_sim --spec file`
// replaces flag soup with a text file.
//
// This header also hosts the small argv reader both command-line tools
// share, so flag parsing lives in one place.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/format_double.hpp"
#include "experiments/scenario.hpp"

namespace avmon::experiments {

/// A parsed sweep: one base scenario plus the axes to cross-product.
struct SweepSpec {
  Scenario base;  ///< scalar keys applied to every point

  // Sweep axes; parse() fills absent axes with the base's single value,
  // so expand() is always the full cross product of six lists.
  std::vector<std::string> protocols;
  std::vector<churn::Model> models;
  std::vector<std::size_t> sizes;
  std::vector<std::uint64_t> seeds;
  std::vector<double> drops;        ///< messageDropProbability axis
  std::vector<double> overreports;  ///< attack.overreport axis

  /// Parses spec text; throws std::invalid_argument naming the offending
  /// line on unknown keys, duplicates, or malformed values.
  static SweepSpec parse(const std::string& text);

  /// Reads and parses a spec file; throws std::runtime_error if the file
  /// cannot be read.
  static SweepSpec parseFile(const std::string& path);

  /// Number of scenarios expand() will produce.
  std::size_t pointCount() const;

  /// The cross product, in deterministic nested order: protocol
  /// (outermost), model, n, seed, drop, attack.overreport (innermost).
  /// Same spec, same expansion — sweeps are reproducible by construction.
  std::vector<Scenario> expand() const;
};

/// Shortest round-tripping decimal formatter (what toSpec() emits, so
/// specs stay human-readable AND parse -> serialize -> parse is a fixed
/// point). The one implementation lives in common/format_double.hpp and is
/// shared with the JSON and windowed-metrics writers; re-exported here for
/// the spec grammar's historical callers.
using avmon::formatDouble;

/// The ONE implementation of the cvs/k override semantics shared by the
/// avmon_sim flags and the spec grammar (the tested guarantee that --spec
/// reproduces the flag invocation depends on these never diverging):
/// nonzero pins the knob, everything else keeps paper defaults for the
/// model's effective size at `n`; nullopt when both knobs are 0 (auto).
std::optional<AvmonConfig> cvsKOverride(churn::Model model, std::size_t n,
                                        std::size_t cvs, unsigned k);

/// Malformed command line (unknown flag, missing value): tools catch this
/// separately to print usage and exit 2, while semantic errors (bad model
/// name, unreadable spec) stay std::invalid_argument/runtime_error and
/// exit 1 with a plain message.
struct UsageError : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};

/// Tiny shared argv cursor behind every tool's flag loop: `--key value`
/// and bare `--flag` styles, typed value accessors, uniform errors
/// (UsageError, which tools turn into usage text).
class ArgParser {
 public:
  ArgParser(int argc, char** argv, int begin = 1)
      : argc_(argc), argv_(argv), next_(begin) {}

  /// Advances to the next flag; false when arguments are exhausted.
  bool next();

  /// The current flag, including its leading dashes.
  const std::string& flag() const noexcept { return flag_; }

  /// Consumes and returns the current flag's value; throws if absent.
  std::string value();

  std::uint64_t valueU64();
  std::size_t valueSize();
  unsigned valueUnsigned();
  long valueLong();
  double valueDouble();

  /// Throws "unknown option: <flag>" — the tools' catch-all else branch.
  [[noreturn]] void failUnknown() const;

 private:
  int argc_;
  char** argv_;
  int next_;
  std::string flag_;
};

}  // namespace avmon::experiments
