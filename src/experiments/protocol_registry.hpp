// Name -> Protocol factory table. One registry serves the whole process:
// Scenario::validate() resolves protocol names through it, ScenarioRunner
// instantiates through it, and the tools enumerate it for --help / spec
// error messages. The five built-in schemes (AVMON and the paper's four
// Section-1 baselines) are pre-registered; tests and downstream code can
// add more.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "experiments/protocol.hpp"

namespace avmon::experiments {

/// How a registered scheme is created, plus the metadata the tools print
/// and Scenario::validate() checks.
struct ProtocolFactory {
  std::string name;         ///< registry key, also Scenario::protocol
  std::string description;  ///< one-liner for --help and spec errors
  /// Most shards the scheme can run across; 0 = unlimited. Baselines
  /// built around shared global state (a membership directory, a central
  /// server, one hash ring) are inherently single-shard — enforced by
  /// Scenario::validate(), not silently clamped.
  unsigned maxShards = 1;
  std::function<std::unique_ptr<Protocol>()> make;
};

class ProtocolRegistry {
 public:
  /// The process-wide registry with the built-ins pre-registered:
  /// avmon, broadcast, central, dht_ring, self_report.
  static ProtocolRegistry& instance();

  /// Registers a factory; throws std::invalid_argument on a duplicate or
  /// empty name.
  void add(ProtocolFactory factory);

  /// Factory for `name`, or nullptr when unknown.
  const ProtocolFactory* find(const std::string& name) const;

  /// Instantiates `name`; throws std::invalid_argument listing the known
  /// protocols when the name is unknown.
  std::unique_ptr<Protocol> create(const std::string& name) const;

  /// Registered names in registration order (built-ins first).
  std::vector<std::string> names() const;

  /// "avmon, broadcast, ..." — for error messages and usage text.
  std::string namesJoined() const;

 private:
  ProtocolRegistry();

  std::vector<ProtocolFactory> factories_;
};

}  // namespace avmon::experiments
