#include "experiments/protocol_registry.hpp"

#include <stdexcept>

#include "experiments/protocols/avmon_protocol.hpp"
#include "experiments/protocols/broadcast_protocol.hpp"
#include "experiments/protocols/central_protocol.hpp"
#include "experiments/protocols/dht_ring_protocol.hpp"
#include "experiments/protocols/self_report_protocol.hpp"

namespace avmon::experiments {

ProtocolRegistry::ProtocolRegistry() {
  add({"avmon",
       "AVMON: consistent & verifiable availability monitoring overlay",
       /*maxShards=*/0, [] { return std::make_unique<AvmonProtocol>(); }});
  add({"broadcast",
       "AVCast-style presence broadcast: instant discovery, O(N) cost",
       /*maxShards=*/1, [] { return std::make_unique<BroadcastProtocol>(); }});
  add({"central",
       "central monitor: one server pings everyone, O(N) load imbalance",
       /*maxShards=*/1, [] { return std::make_unique<CentralProtocol>(); }});
  add({"dht_ring",
       "DHT replica sets: K ring successors, churn-unstable selection",
       /*maxShards=*/1, [] { return std::make_unique<DhtRingProtocol>(); }});
  add({"self_report",
       "self-reporting: PS(x) = {x}, trivially gamed by selfish nodes",
       /*maxShards=*/1,
       [] { return std::make_unique<SelfReportProtocol>(); }});
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::add(ProtocolFactory factory) {
  if (factory.name.empty()) {
    throw std::invalid_argument("ProtocolRegistry: factory name is empty");
  }
  if (find(factory.name) != nullptr) {
    throw std::invalid_argument("ProtocolRegistry: duplicate protocol '" +
                                factory.name + "'");
  }
  if (!factory.make) {
    throw std::invalid_argument("ProtocolRegistry: protocol '" +
                                factory.name + "' has no make function");
  }
  factories_.push_back(std::move(factory));
}

const ProtocolFactory* ProtocolRegistry::find(const std::string& name) const {
  for (const ProtocolFactory& factory : factories_) {
    if (factory.name == name) return &factory;
  }
  return nullptr;
}

std::unique_ptr<Protocol> ProtocolRegistry::create(
    const std::string& name) const {
  const ProtocolFactory* factory = find(name);
  if (factory == nullptr) {
    throw std::invalid_argument("ProtocolRegistry: unknown protocol '" +
                                name + "' — known protocols: " +
                                namesJoined());
  }
  return factory->make();
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const ProtocolFactory& factory : factories_) out.push_back(factory.name);
  return out;
}

std::string ProtocolRegistry::namesJoined() const {
  std::string out;
  for (const ProtocolFactory& factory : factories_) {
    if (!out.empty()) out += ", ";
    out += factory.name;
  }
  return out;
}

}  // namespace avmon::experiments
