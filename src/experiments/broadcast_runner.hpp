// Broadcast-baseline scenario runner: drives the AVCast-style Broadcast
// scheme (baselines::BroadcastNode) over the same availability schedules
// as ScenarioRunner, measuring the Table-1 quantities — O(N) memory and
// join bandwidth against near-instant discovery — so the analytic
// comparison can be backed by side-by-side measurements.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "avmon/monitor_selector.hpp"
#include "baselines/broadcast.hpp"
#include "churn/churn_model.hpp"
#include "churn/trace_player.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::experiments {

/// Workload description for a Broadcast run (a subset of Scenario: the
/// Broadcast scheme has no protocol knobs beyond K).
struct BroadcastScenario {
  churn::Model model = churn::Model::kStat;
  std::size_t stableSize = 1000;
  SimDuration horizon = 2 * kHour;
  SimTime warmup = 1 * kHour;
  double controlFraction = 0.1;
  std::uint64_t seed = 1;
  std::string hashName = "md5";
};

/// Builds, runs, and reports one Broadcast-baseline scenario.
class BroadcastRunner final : public churn::LifecycleListener {
 public:
  explicit BroadcastRunner(BroadcastScenario scenario);
  ~BroadcastRunner() override;

  BroadcastRunner(const BroadcastRunner&) = delete;
  BroadcastRunner& operator=(const BroadcastRunner&) = delete;

  void run();

  // ---- results ----

  std::size_t effectiveN() const noexcept { return effectiveN_; }

  /// Discovery delay (seconds) of the first monitor, per control node.
  std::vector<double> discoveryDelaysSeconds() const;

  /// |membership| + |PS| + |TS| per node — the O(N) memory of Table 1.
  std::vector<double> memoryEntries() const;

  /// Outgoing bytes per join event, per node that joined at least once:
  /// the O(N)-messages join cost.
  std::vector<double> bytesPerJoin() const;

  /// Total presence messages sent system-wide.
  std::uint64_t totalMessages() const;

  // ---- LifecycleListener ----
  void onJoin(const NodeId& id, bool firstJoin) override;
  void onLeave(const NodeId& id) override;
  void onDeath(const NodeId& id) override;

 private:
  BroadcastScenario scenario_;
  std::size_t effectiveN_;

  Rng rootRng_;
  sim::Simulator sim_;
  std::unique_ptr<hash::HashFunction> hashFn_;
  std::unique_ptr<HashMonitorSelector> selector_;
  std::unique_ptr<sim::Network> net_;

  trace::AvailabilityTrace trace_;
  std::unique_ptr<churn::TracePlayer> player_;

  std::unordered_map<NodeId, std::unique_ptr<baselines::BroadcastNode>> nodes_;
  std::unordered_map<NodeId, std::size_t> joinCounts_;
  std::vector<NodeId> controlIds_;
  bool ran_ = false;
};

}  // namespace avmon::experiments
