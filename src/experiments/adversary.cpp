#include "experiments/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "common/rng.hpp"
#include "experiments/protocol.hpp"

namespace avmon::experiments {

namespace {

// Role salts ("colluder", "amnesia", "burst" in ASCII): each cohort draws
// from its own stream, so arming one attack never shifts another's picks.
constexpr std::uint64_t kCollusionSalt = 0x636f6c6c75646572ULL;
constexpr std::uint64_t kAmnesiaSalt = 0x00616d6e65736961ULL;
constexpr std::uint64_t kBurstSalt = 0x0000006275727374ULL;

}  // namespace

ResolvedAdversary resolveAdversary(const Scenario& scenario,
                                   const trace::AvailabilityTrace& trace) {
  ResolvedAdversary out;
  const std::vector<trace::NodeTrace>& nodes = trace.nodes();
  const std::size_t n = nodes.size();

  if (scenario.attack.collusion > 0 && n > 1) {
    Rng rng(splitmix64Mix(scenario.seed ^ kCollusionSalt));
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.shuffle(order);
    // Victims first, then the coalition, from one shuffled pass — the two
    // cohorts are disjoint by construction. attack.victims = 0 means one
    // targeted node; both clamp to what the population can supply.
    const std::size_t victimCount = std::min<std::size_t>(
        std::max<std::uint32_t>(1, scenario.attack.victims), n - 1);
    const std::size_t coalitionSize =
        std::min<std::size_t>(scenario.attack.collusion, n - victimCount);
    // lint:allow(per-node-alloc, built once at resolve time and bounded by the attack's victim count, not N)
    auto victimSet = std::make_shared<std::unordered_set<NodeId>>();
    for (std::size_t i = 0; i < victimCount; ++i) {
      out.victims.push_back(nodes[order[i]].id);
      victimSet->insert(nodes[order[i]].id);
    }
    for (std::size_t i = victimCount; i < victimCount + coalitionSize; ++i) {
      out.colluders.push_back(nodes[order[i]].id);
      out.colluderSet.insert(nodes[order[i]].id);
    }
    out.victimSet = std::move(victimSet);
  }

  if (scenario.attack.forgetfulFraction > 0.0) {
    Rng rng(splitmix64Mix(scenario.seed ^ kAmnesiaSalt));
    for (const trace::NodeTrace& nt : nodes) {
      if (rng.chance(scenario.attack.forgetfulFraction)) {
        out.amnesiacs.push_back(nt.id);
        out.amnesiacSet.insert(nt.id);
      }
    }
  }

  return out;
}

void applyBursts(trace::AvailabilityTrace& trace,
                 const std::vector<sim::BurstSpec>& bursts,
                 std::uint64_t seed) {
  if (bursts.empty()) return;
  std::vector<trace::NodeTrace>& nodes = trace.nodes();
  const std::size_t n = nodes.size();
  if (n == 0) return;
  Rng rng(splitmix64Mix(seed ^ kBurstSalt));

  for (const sim::BurstSpec& burst : bursts) {
    const SimTime from = burst.at;
    const SimTime to = burst.at + burst.duration;
    const std::size_t count = std::min<std::size_t>(
        n, static_cast<std::size_t>(
               std::ceil(burst.fraction * static_cast<double>(n))));
    if (count == 0) continue;
    // A contiguous cluster (wrapping) starting at a random offset —
    // correlated failure, not i.i.d. churn.
    const std::size_t start = rng.index(n);
    for (std::size_t k = 0; k < count; ++k) {
      trace::NodeTrace& nt = nodes[(start + k) % n];
      std::vector<trace::Interval> clipped;
      clipped.reserve(nt.sessions.size() + 1);
      for (const trace::Interval& s : nt.sessions) {
        if (s.end <= from || s.start >= to) {
          clipped.push_back(s);  // untouched by the burst
          continue;
        }
        // The member dies at the burst instant and rejoins when it ends
        // (bounded by its own session): [s.start, from) and [to, s.end).
        if (s.start < from) clipped.push_back({s.start, from});
        if (s.end > to) clipped.push_back({to, s.end});
      }
      nt.sessions = std::move(clipped);
    }
  }
}

std::optional<AvailabilityAccuracy> alignedAccuracyOf(
    const Protocol& protocol, const trace::NodeTrace& nt) {
  if (!nt.firstJoin()) return std::nullopt;
  AvailabilityAccuracy acc;
  acc.id = nt.id;
  double estSum = 0.0;
  double actualSum = 0.0;
  // visitMonitorsOf promises exactly the monitorsOf order without the
  // vector copy — this probe runs once per node per run, so the copies
  // were the accuracy scan's O(N) allocation churn at million-node scale.
  protocol.visitMonitorsOf(nt.id, [&](const NodeId& monitorId) {
    const auto sample = protocol.estimate(monitorId, nt.id);
    if (!sample) return;
    estSum += sample->estimated;
    // Ground truth aligned to this monitor's observation window (see
    // Protocol::estimate): truth over any other window would bias the
    // ratio on short runs.
    actualSum += nt.availability(sample->windowStart, sample->windowEnd);
    ++acc.reporters;
  });
  if (acc.reporters == 0) return std::nullopt;
  acc.estimated = estSum / static_cast<double>(acc.reporters);
  acc.actual = actualSum / static_cast<double>(acc.reporters);
  return acc;
}

std::vector<VictimOutcome> victimOutcomes(
    const Protocol& protocol, const ResolvedAdversary& adversary,
    const trace::AvailabilityTrace& trace) {
  std::vector<VictimOutcome> out;
  if (adversary.victims.empty()) return out;
  // lint:allow(per-node-alloc, bounded by the attack's victim count and built once per report, not per probe)
  std::unordered_map<NodeId, const trace::NodeTrace*> byId;
  for (const trace::NodeTrace& nt : trace.nodes()) {
    if (adversary.isVictim(nt.id)) byId.emplace(nt.id, &nt);
  }
  out.reserve(adversary.victims.size());
  for (const NodeId& id : adversary.victims) {
    VictimOutcome o;
    o.id = id;
    protocol.visitMonitorsOf(id, [&](const NodeId& monitor) {
      ++o.monitors;
      if (adversary.isColluder(monitor)) ++o.colludingMonitors;
    });
    o.eclipsed = o.monitors > 0 && o.colludingMonitors == o.monitors;
    if (const auto it = byId.find(id); it != byId.end()) {
      if (const auto acc = alignedAccuracyOf(protocol, *it->second)) {
        o.estimateAbsError = std::fabs(acc->estimated - acc->actual);
      }
    }
    out.push_back(o);
  }
  return out;
}

}  // namespace avmon::experiments
