#include "experiments/spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace avmon::experiments {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

std::vector<std::string> splitList(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) out.push_back(trim(item));
  if (out.empty()) out.push_back("");
  return out;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("spec line " + std::to_string(line) + ": " +
                              what);
}

bool parseBool(const std::string& v, std::size_t line) {
  if (v == "true" || v == "1" || v == "on" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "off" || v == "no") return false;
  fail(line, "expected a boolean (true/false), got '" + v + "'");
}

std::uint64_t parseU64(const std::string& v, std::size_t line) {
  try {
    std::size_t used = 0;
    const unsigned long long x = std::stoull(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return x;
  } catch (const std::exception&) {
    fail(line, "expected an unsigned integer, got '" + v + "'");
  }
}

double parseDouble(const std::string& v, std::size_t line) {
  try {
    std::size_t used = 0;
    const double x = std::stod(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return x;
  } catch (const std::exception&) {
    fail(line, "expected a number, got '" + v + "'");
  }
}

// Splits a multi-entry value on `sep`, trimming each piece. Unlike
// splitList, an empty value yields no entries.
std::vector<std::string> splitEntries(const std::string& value, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, sep)) {
    const std::string t = trim(item);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

// Splits one colon-separated fault entry into exactly `count` fields.
std::vector<std::string> splitFields(const std::string& entry,
                                     std::size_t count, std::size_t line,
                                     const char* shape) {
  const std::vector<std::string> fields = splitEntries(entry, ':');
  if (fields.size() != count) {
    fail(line, std::string("expected '") + shape + "', got '" + entry + "'");
  }
  return fields;
}

// Fault-plan times are written in seconds (the spec's human unit);
// internally everything is SimTime milliseconds.
SimTime parseSeconds(const std::string& v, std::size_t line) {
  const double seconds = parseDouble(v, line);
  if (seconds < 0) fail(line, "expected a non-negative time in seconds");
  return static_cast<SimTime>(std::llround(seconds * kSecond));
}

avmon::ShufflePolicy parseShuffle(const std::string& v, std::size_t line) {
  if (v == "union-sample" || v == "union_sample")
    return avmon::ShufflePolicy::kUnionSample;
  if (v == "swap") return avmon::ShufflePolicy::kSwap;
  fail(line, "expected shuffle = union-sample|swap, got '" + v + "'");
}

MeasuredSet parseMeasured(const std::string& v, std::size_t line) {
  if (v == "auto") return MeasuredSet::kAuto;
  if (v == "control") return MeasuredSet::kControlGroup;
  if (v == "born_after_warmup") return MeasuredSet::kBornAfterWarmup;
  if (v == "all") return MeasuredSet::kAll;
  fail(line, "expected measured = auto|control|born_after_warmup|all, got '" +
                 v + "'");
}

TransportKind parseTransport(const std::string& v, std::size_t line) {
  if (v == "sim") return TransportKind::kSim;
  if (v == "udp") return TransportKind::kUdp;
  fail(line, "expected transport = sim|udp, got '" + v + "'");
}

const char* transportName(TransportKind t) {
  switch (t) {
    case TransportKind::kSim: return "sim";
    case TransportKind::kUdp: return "udp";
  }
  return "sim";
}

const char* measuredName(MeasuredSet m) {
  switch (m) {
    case MeasuredSet::kAuto: return "auto";
    case MeasuredSet::kControlGroup: return "control";
    case MeasuredSet::kBornAfterWarmup: return "born_after_warmup";
    case MeasuredSet::kAll: return "all";
  }
  return "auto";
}

}  // namespace

std::optional<AvmonConfig> cvsKOverride(churn::Model model, std::size_t n,
                                        std::size_t cvs, unsigned k) {
  if (cvs == 0 && k == 0) return std::nullopt;
  churn::WorkloadParams wp;
  wp.stableSize = n;
  AvmonConfig cfg =
      AvmonConfig::paperDefaults(churn::effectiveStableSize(model, wp));
  if (cvs != 0) cfg.cvs = cvs;
  if (k != 0) cfg.k = k;
  return cfg;
}

SweepSpec SweepSpec::parse(const std::string& text) {
  SweepSpec spec;
  Scenario& base = spec.base;
  std::vector<std::string> seen;

  std::size_t cvs = 0;
  unsigned k = 0;
  bool horizonSet = false, warmupSet = false;

  std::istringstream in(text);
  std::string rawLine;
  std::size_t lineNo = 0;
  while (std::getline(in, rawLine)) {
    ++lineNo;
    const std::size_t comment = rawLine.find('#');
    if (comment != std::string::npos) rawLine.resize(comment);
    const std::string line = trim(rawLine);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      fail(lineNo, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(lineNo, "empty key");
    for (const std::string& prior : seen) {
      if (prior == key) fail(lineNo, "duplicate key '" + key + "'");
    }
    seen.push_back(key);

    if (key == "protocol") {
      for (const std::string& v : splitList(value)) {
        if (v.empty()) fail(lineNo, "empty protocol name");
        spec.protocols.push_back(v);
      }
    } else if (key == "model") {
      for (const std::string& v : splitList(value)) {
        try {
          spec.models.push_back(churn::modelFromName(v));
        } catch (const std::invalid_argument& e) {
          fail(lineNo, e.what());
        }
      }
    } else if (key == "n") {
      for (const std::string& v : splitList(value)) {
        spec.sizes.push_back(
            static_cast<std::size_t>(parseU64(v, lineNo)));
      }
    } else if (key == "seed") {
      for (const std::string& v : splitList(value)) {
        spec.seeds.push_back(parseU64(v, lineNo));
      }
    } else if (key == "drop") {
      for (const std::string& v : splitList(value)) {
        spec.drops.push_back(parseDouble(v, lineNo));
      }
    } else if (key == "horizon_min") {
      base.horizon = static_cast<SimDuration>(parseU64(value, lineNo)) *
                     kMinute;
      horizonSet = true;
    } else if (key == "horizon_ms") {
      base.horizon = static_cast<SimDuration>(parseU64(value, lineNo));
      horizonSet = true;
    } else if (key == "warmup_min") {
      base.warmup = static_cast<SimTime>(parseU64(value, lineNo)) * kMinute;
      warmupSet = true;
    } else if (key == "warmup_ms") {
      base.warmup = static_cast<SimTime>(parseU64(value, lineNo));
      warmupSet = true;
    } else if (key == "control_fraction") {
      base.controlFraction = parseDouble(value, lineNo);
    } else if (key == "hash") {
      base.hashName = value;
    } else if (key == "cvs") {
      cvs = static_cast<std::size_t>(parseU64(value, lineNo));
    } else if (key == "k") {
      k = static_cast<unsigned>(parseU64(value, lineNo));
    } else if (key == "pr2") {
      base.pr2 = parseBool(value, lineNo);
    } else if (key == "forgetful") {
      base.forgetful = parseBool(value, lineNo);
    } else if (key == "forgetful_ewma") {
      base.forgetfulEwma = parseBool(value, lineNo);
    } else if (key == "overreport") {
      base.overreportFraction = parseDouble(value, lineNo);
    } else if (key == "rpc_fail") {
      base.rpcFailProbability = parseDouble(value, lineNo);
    } else if (key == "measured") {
      base.measured = parseMeasured(value, lineNo);
    } else if (key == "shards") {
      base.shards = static_cast<unsigned>(parseU64(value, lineNo));
    } else if (key == "deferred_rpc") {
      base.deferredRpc = parseBool(value, lineNo);
    } else if (key == "shuffle") {
      base.shuffle = parseShuffle(value, lineNo);
    } else if (key == "notify_dedup_max") {
      base.notifyDedupMax = static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "history") {
      if (value.empty()) fail(lineNo, "empty history name");
      base.history = value;
    } else if (key == "history_param") {
      base.historyParam = parseDouble(value, lineNo);
    } else if (key == "faults.partition") {
      for (const std::string& entry : splitEntries(value, ';')) {
        const auto f = splitFields(entry, 3, lineNo, "t0:t1:groups");
        sim::PartitionWindow w;
        w.start = parseSeconds(f[0], lineNo);
        w.end = parseSeconds(f[1], lineNo);
        w.groups = static_cast<std::uint32_t>(parseU64(f[2], lineNo));
        base.faults.partitions.push_back(w);
      }
    } else if (key == "faults.burst") {
      for (const std::string& entry : splitEntries(value, ';')) {
        const auto f = splitFields(entry, 3, lineNo, "t:duration:fraction");
        sim::BurstSpec b;
        b.at = parseSeconds(f[0], lineNo);
        b.duration = parseSeconds(f[1], lineNo);
        b.fraction = parseDouble(f[2], lineNo);
        base.faults.bursts.push_back(b);
      }
    } else if (key == "faults.latency") {
      for (const std::string& entry : splitEntries(value, ';')) {
        const auto f = splitFields(entry, 4, lineNo, "t0:t1:min_ms:max_ms");
        sim::LatencyWindow w;
        w.start = parseSeconds(f[0], lineNo);
        w.end = parseSeconds(f[1], lineNo);
        w.minLatency = static_cast<SimDuration>(parseU64(f[2], lineNo));
        w.maxLatency = static_cast<SimDuration>(parseU64(f[3], lineNo));
        base.faults.latencyWindows.push_back(w);
      }
    } else if (key == "faults.geo") {
      const auto f = splitFields(
          value, 5, lineNo, "regions:intra_min_ms:intra_max_ms:inter_min_ms:inter_max_ms");
      base.faults.geo.regions = static_cast<std::uint32_t>(parseU64(f[0], lineNo));
      base.faults.geo.intraMin = static_cast<SimDuration>(parseU64(f[1], lineNo));
      base.faults.geo.intraMax = static_cast<SimDuration>(parseU64(f[2], lineNo));
      base.faults.geo.interMin = static_cast<SimDuration>(parseU64(f[3], lineNo));
      base.faults.geo.interMax = static_cast<SimDuration>(parseU64(f[4], lineNo));
    } else if (key == "attack.collusion") {
      base.attack.collusion = static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "attack.victims") {
      base.attack.victims = static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "attack.forgetful") {
      base.attack.forgetfulFraction = parseDouble(value, lineNo);
    } else if (key == "attack.overreport") {
      for (const std::string& v : splitList(value)) {
        spec.overreports.push_back(parseDouble(v, lineNo));
      }
    } else if (key == "transport") {
      base.transport = parseTransport(value, lineNo);
    } else if (key == "udp.port_base") {
      const std::uint64_t port = parseU64(value, lineNo);
      if (port > 0xFFFF) fail(lineNo, "udp.port_base must fit a UDP port");
      base.udp.portBase = static_cast<std::uint16_t>(port);
    } else if (key == "udp.retry_max") {
      base.udp.retryMax = static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "udp.backoff_ms") {
      base.udp.backoffMs = static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "udp.backoff_cap_ms") {
      base.udp.backoffCapMs =
          static_cast<std::uint32_t>(parseU64(value, lineNo));
    } else if (key == "udp.time_scale") {
      base.udp.timeScale = parseDouble(value, lineNo);
    } else if (key == "metrics.window") {
      const double seconds = parseDouble(value, lineNo);
      if (seconds < 0) fail(lineNo, "metrics.window must be >= 0 seconds");
      base.metrics.window =
          static_cast<SimDuration>(std::llround(seconds * kSecond));
    } else if (key == "metrics.reducers") {
      for (const std::string& v : splitList(value)) {
        if (v.empty()) fail(lineNo, "empty reducer name");
        base.metrics.reducers.push_back(v);
      }
    } else if (key == "metrics.quantiles") {
      base.metrics.quantiles.clear();
      for (const std::string& v : splitList(value)) {
        base.metrics.quantiles.push_back(parseDouble(v, lineNo));
      }
    } else {
      fail(lineNo, "unknown key '" + key + "'");
    }
  }

  if (horizonSet && !warmupSet && base.warmup >= base.horizon) {
    // A spec that shortens the horizon below the default warm-up almost
    // certainly forgot warmup_min; say so instead of failing validation
    // with the defaults' numbers.
    throw std::invalid_argument(
        "spec: horizon is shorter than the default 60 min warm-up — set "
        "warmup_min (or warmup_ms) too");
  }

  // The scalar `overreport` and the sweep axis `attack.overreport` both
  // set overreportFraction — a spec naming both is ambiguous.
  if (!spec.overreports.empty()) {
    for (const std::string& prior : seen) {
      if (prior == "overreport") {
        throw std::invalid_argument(
            "spec: 'overreport' (scalar) and 'attack.overreport' (sweep "
            "axis) both set the over-reporting fraction — use one");
      }
    }
  }

  // Absent axes are singletons of the base's value: expand() is always the
  // full six-way cross product.
  if (spec.protocols.empty()) spec.protocols.push_back(base.protocol);
  if (spec.models.empty()) spec.models.push_back(base.model);
  if (spec.sizes.empty()) spec.sizes.push_back(base.stableSize);
  if (spec.seeds.empty()) spec.seeds.push_back(base.seed);
  if (spec.drops.empty()) spec.drops.push_back(base.messageDropProbability);
  if (spec.overreports.empty())
    spec.overreports.push_back(base.overreportFraction);

  // cvs/k overrides mirror the avmon_sim flags: nonzero pins the value,
  // everything else keeps paper defaults for the (largest) swept size.
  // The override is resolved per expanded scenario in expand() so each
  // size gets its own paper baseline.
  spec.base.configOverride.reset();
  if (cvs != 0 || k != 0) {
    // Stash the raw overrides in a config built later; encode via the
    // first size now and fix up per point in expand().
    AvmonConfig cfg;  // placeholder; expand() rebuilds per size
    cfg.cvs = cvs;
    cfg.k = k;
    spec.base.configOverride = cfg;
  }

  return spec;
}

SweepSpec SweepSpec::parseFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot read spec file: " + path);
  std::ostringstream buffer;
  buffer << f.rdbuf();
  return parse(buffer.str());
}

std::size_t SweepSpec::pointCount() const {
  return protocols.size() * models.size() * sizes.size() * seeds.size() *
         drops.size() * overreports.size();
}

std::vector<Scenario> SweepSpec::expand() const {
  std::vector<Scenario> out;
  out.reserve(pointCount());
  for (const std::string& protocol : protocols) {
    for (const churn::Model model : models) {
      for (const std::size_t n : sizes) {
        for (const std::uint64_t seed : seeds) {
          for (const double drop : drops) {
            for (const double overreport : overreports) {
              Scenario s = base;
              s.protocol = protocol;
              s.model = model;
              s.stableSize = n;
              s.seed = seed;
              s.messageDropProbability = drop;
              s.overreportFraction = overreport;
              if (base.configOverride) {
                // Re-derive per point: each swept size gets its own paper
                // baseline with the spec's nonzero knobs pinned.
                s.configOverride = cvsKOverride(model, n,
                                                base.configOverride->cvs,
                                                base.configOverride->k);
              }
              out.push_back(std::move(s));
            }
          }
        }
      }
    }
  }
  return out;
}

Scenario Scenario::fromSpec(const std::string& text) {
  const SweepSpec spec = SweepSpec::parse(text);
  if (spec.pointCount() != 1) {
    throw std::invalid_argument(
        "Scenario::fromSpec: spec expands to " +
        std::to_string(spec.pointCount()) +
        " scenarios (list-valued keys) — use SweepSpec::parse for sweeps");
  }
  return spec.expand().front();
}

std::string Scenario::toSpec() const {
  std::ostringstream out;
  out << "protocol = " << protocol << "\n";
  out << "model = " << churn::modelName(model) << "\n";
  out << "n = " << stableSize << "\n";
  if (horizon % kMinute == 0) {
    out << "horizon_min = " << horizon / kMinute << "\n";
  } else {
    out << "horizon_ms = " << horizon << "\n";
  }
  if (warmup % kMinute == 0) {
    out << "warmup_min = " << warmup / kMinute << "\n";
  } else {
    out << "warmup_ms = " << warmup << "\n";
  }
  out << "control_fraction = " << formatDouble(controlFraction) << "\n";
  out << "seed = " << seed << "\n";
  out << "hash = " << hashName << "\n";
  // The spec grammar represents the cvs/k overrides (the avmon_sim knobs);
  // 0 = paper default. Other AvmonConfig fields are not spec-addressable.
  out << "cvs = " << (configOverride ? configOverride->cvs : 0) << "\n";
  out << "k = " << (configOverride ? configOverride->k : 0) << "\n";
  out << "pr2 = " << (pr2 ? "true" : "false") << "\n";
  out << "forgetful = " << (forgetful ? "true" : "false") << "\n";
  out << "forgetful_ewma = " << (forgetfulEwma ? "true" : "false") << "\n";
  out << "overreport = " << formatDouble(overreportFraction) << "\n";
  out << "drop = " << formatDouble(messageDropProbability) << "\n";
  out << "rpc_fail = " << formatDouble(rpcFailProbability) << "\n";
  out << "measured = " << measuredName(measured) << "\n";
  out << "shards = " << shards << "\n";
  out << "deferred_rpc = " << (deferredRpc ? "true" : "false") << "\n";
  // The transport/udp.* keys are emitted only when they differ from the
  // sim-lane defaults, so every pre-live spec's canonical form is
  // byte-unchanged.
  if (transport != TransportKind::kSim) {
    out << "transport = " << transportName(transport) << "\n";
  }
  if (udp.portBase != UdpSpec{}.portBase) {
    out << "udp.port_base = " << udp.portBase << "\n";
  }
  if (udp.retryMax != UdpSpec{}.retryMax) {
    out << "udp.retry_max = " << udp.retryMax << "\n";
  }
  if (udp.backoffMs != UdpSpec{}.backoffMs) {
    out << "udp.backoff_ms = " << udp.backoffMs << "\n";
  }
  if (udp.backoffCapMs != UdpSpec{}.backoffCapMs) {
    out << "udp.backoff_cap_ms = " << udp.backoffCapMs << "\n";
  }
  if (udp.timeScale != UdpSpec{}.timeScale) {
    out << "udp.time_scale = " << formatDouble(udp.timeScale) << "\n";
  }
  // Streaming keys are emitted only when they differ from the defaults, so
  // every pre-streaming spec (and its canonical form) is byte-unchanged.
  if (metrics.window > 0) {
    out << "metrics.window = " << formatDouble(toSeconds(metrics.window))
        << "\n";
  }
  if (!metrics.reducers.empty()) {
    out << "metrics.reducers = ";
    for (std::size_t i = 0; i < metrics.reducers.size(); ++i) {
      out << (i == 0 ? "" : ", ") << metrics.reducers[i];
    }
    out << "\n";
  }
  if (metrics.quantiles != StreamingMetricsSpec{}.quantiles) {
    out << "metrics.quantiles = ";
    for (std::size_t i = 0; i < metrics.quantiles.size(); ++i) {
      out << (i == 0 ? "" : ", ") << formatDouble(metrics.quantiles[i]);
    }
    out << "\n";
  }
  // Fault/attack/deep-knob keys are likewise emitted only when armed, so
  // every pre-existing spec's canonical form is byte-unchanged.
  if (shuffle.has_value()) {
    out << "shuffle = " << avmon::shufflePolicyName(*shuffle) << "\n";
  }
  if (notifyDedupMax.has_value()) {
    out << "notify_dedup_max = " << *notifyDedupMax << "\n";
  }
  if (history.has_value()) {
    out << "history = " << *history << "\n";
  }
  if (historyParam.has_value()) {
    out << "history_param = " << formatDouble(*historyParam) << "\n";
  }
  if (!faults.partitions.empty()) {
    out << "faults.partition = ";
    for (std::size_t i = 0; i < faults.partitions.size(); ++i) {
      const sim::PartitionWindow& w = faults.partitions[i];
      out << (i == 0 ? "" : "; ") << formatDouble(toSeconds(w.start)) << ":"
          << formatDouble(toSeconds(w.end)) << ":" << w.groups;
    }
    out << "\n";
  }
  if (!faults.bursts.empty()) {
    out << "faults.burst = ";
    for (std::size_t i = 0; i < faults.bursts.size(); ++i) {
      const sim::BurstSpec& b = faults.bursts[i];
      out << (i == 0 ? "" : "; ") << formatDouble(toSeconds(b.at)) << ":"
          << formatDouble(toSeconds(b.duration)) << ":"
          << formatDouble(b.fraction);
    }
    out << "\n";
  }
  if (!faults.latencyWindows.empty()) {
    out << "faults.latency = ";
    for (std::size_t i = 0; i < faults.latencyWindows.size(); ++i) {
      const sim::LatencyWindow& w = faults.latencyWindows[i];
      out << (i == 0 ? "" : "; ") << formatDouble(toSeconds(w.start)) << ":"
          << formatDouble(toSeconds(w.end)) << ":" << w.minLatency << ":"
          << w.maxLatency;
    }
    out << "\n";
  }
  if (faults.geo.regions != 0) {
    out << "faults.geo = " << faults.geo.regions << ":" << faults.geo.intraMin
        << ":" << faults.geo.intraMax << ":" << faults.geo.interMin << ":"
        << faults.geo.interMax << "\n";
  }
  if (attack.collusion != 0) {
    out << "attack.collusion = " << attack.collusion << "\n";
  }
  if (attack.victims != 0) {
    out << "attack.victims = " << attack.victims << "\n";
  }
  if (attack.forgetfulFraction != 0.0) {
    out << "attack.forgetful = " << formatDouble(attack.forgetfulFraction)
        << "\n";
  }
  return out.str();
}

// ---- ArgParser ----

bool ArgParser::next() {
  if (next_ >= argc_) return false;
  flag_ = argv_[next_++];
  return true;
}

std::string ArgParser::value() {
  if (next_ >= argc_) {
    throw UsageError("missing value for " + flag_);
  }
  return argv_[next_++];
}

std::uint64_t ArgParser::valueU64() {
  const std::string v = value();
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw UsageError("bad value for " + flag_ + ": " + v);
  }
}

std::size_t ArgParser::valueSize() {
  return static_cast<std::size_t>(valueU64());
}

unsigned ArgParser::valueUnsigned() {
  return static_cast<unsigned>(valueU64());
}

long ArgParser::valueLong() {
  const std::string v = value();
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    throw UsageError("bad value for " + flag_ + ": " + v);
  }
}

double ArgParser::valueDouble() {
  const std::string v = value();
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw UsageError("bad value for " + flag_ + ": " + v);
  }
}

void ArgParser::failUnknown() const {
  throw UsageError("unknown option: " + flag_);
}

}  // namespace avmon::experiments
