// Parallel scenario harness: fans independent scenario runs across a
// std::thread pool.
//
// A ScenarioRunner is a self-contained world — it owns its Simulator,
// Network, RNG streams, and nodes, and the tree keeps no mutable global
// state — so independent repetitions, seeds, and sweep points can run
// concurrently with zero sharing. Workers pull run indices from an atomic
// counter (cheap dynamic load balancing: scenario cost varies wildly with
// N and horizon) and write each result into its input slot, so the merged
// output is always in input order, independent of thread count and
// scheduling — a 16-thread sweep returns bit-identical results to a serial
// one.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "experiments/scenario.hpp"

namespace avmon::experiments {

/// Worker count used when a caller passes threads = 0: the hardware
/// concurrency, at least 1.
unsigned defaultWorkerThreads();

/// Runs `job(i)` for every i in [0, count) on up to `threads` workers
/// (0 = defaultWorkerThreads(); the pool never exceeds `count`). Blocks
/// until all jobs finish. If jobs throw, the first exception (in worker
/// encounter order) is rethrown after the pool drains; the remaining jobs
/// still run.
void parallelForIndex(std::size_t count, unsigned threads,
                      const std::function<void(std::size_t)>& job);

/// Fans complete scenario runs out across a worker pool.
class ParallelScenarioRunner {
 public:
  /// `threads` = 0 uses defaultWorkerThreads(). `shardsPerScenario`
  /// overrides Scenario::shards for every run when non-zero — the knob a
  /// sweep uses to shard each world without editing its scenarios. Shard
  /// counts never change results (ShardedSimulator's invariance
  /// guarantee), so the override is safe on any workload: scenarios whose
  /// protocol cannot shard that wide (the single-shard baselines) are
  /// clamped to their protocol's limit rather than rejected. Pool threads
  /// × shards is the total concurrency, so oversubscribe deliberately.
  explicit ParallelScenarioRunner(unsigned threads = 0,
                                  unsigned shardsPerScenario = 0)
      : threads_(threads), shardsPerScenario_(shardsPerScenario) {}

  /// Builds and runs every scenario to its horizon, each on its own
  /// worker-owned Simulator + Network + RNG, and returns the completed
  /// runners in input order (ready for metric queries).
  std::vector<std::unique_ptr<ScenarioRunner>> runAll(
      const std::vector<Scenario>& scenarios) const;

  /// Like runAll, but hands each completed runner to `collect` and keeps
  /// only the collected results (in input order) — the worlds themselves
  /// are torn down as soon as they are harvested, which matters for wide
  /// sweeps where holding every node table alive would dominate memory.
  template <class Result>
  std::vector<Result> map(
      const std::vector<Scenario>& scenarios,
      const std::function<Result(ScenarioRunner&)>& collect) const {
    // Workers collect into optional slots, not the result vector itself:
    // std::vector<Result> elements are not guaranteed independently
    // addressable for every Result (vector<bool> packs bits), and
    // distinct optionals are always race-free to write concurrently.
    std::vector<std::optional<Result>> slots(scenarios.size());
    parallelForIndex(scenarios.size(), threads_, [&](std::size_t i) {
      ScenarioRunner runner(applyShards(scenarios[i]));
      runner.run();
      slots[i].emplace(collect(runner));
    });
    std::vector<Result> results;
    results.reserve(slots.size());
    for (std::optional<Result>& slot : slots) {
      results.push_back(std::move(*slot));
    }
    return results;
  }

  unsigned threads() const noexcept { return threads_; }
  unsigned shardsPerScenario() const noexcept { return shardsPerScenario_; }

 private:
  Scenario applyShards(Scenario scenario) const;

  unsigned threads_;
  unsigned shardsPerScenario_ = 0;
};

}  // namespace avmon::experiments
