// Central-monitor baseline: PS(x) = {server} for every x (paper Section 1,
// existing approach (2)). A single designated host pings every member each
// monitoring period. Demonstrates the load-imbalance and scalability
// failure the paper motivates: the server's bandwidth and memory grow as
// O(N) while everyone else pays O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/node_id.hpp"
#include "common/time.hpp"
#include "history/availability_history.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon::baselines {

/// Join registration sent to the central server (an alternative of the
/// closed sim::Message wire format, aliased here for the scheme using it).
using RegisterMessage = sim::RegisterMessage;

/// The central monitor. Members register on join; the server pings every
/// registered member once per monitoring period and keeps a RawHistory per
/// member.
class CentralServer final : public sim::Endpoint {
 public:
  CentralServer(NodeId id, sim::Simulator& sim, sim::Network& net,
                SimDuration monitoringPeriod, std::size_t pingBytes = 8);

  CentralServer(const CentralServer&) = delete;
  CentralServer& operator=(const CentralServer&) = delete;

  /// Brings the server up and starts its ping loop.
  void start();

  const NodeId& id() const noexcept { return id_; }
  std::size_t memberCount() const noexcept { return members_.size(); }

  /// The server's availability estimate for a member (0 if unknown).
  double estimateOf(const NodeId& member) const;

  /// The server's ping history for a member (null if never registered) —
  /// the probe surface the experiment harness reads estimates and
  /// observation windows from.
  const history::RawHistory* historyOf(const NodeId& member) const;

  /// When the member's registration first reached the server, if ever —
  /// the instant the scheme's only monitor learned of it (its discovery).
  std::optional<SimTime> registeredAt(const NodeId& member) const;

  /// Pings sent in total — the server's O(N)-per-period load.
  std::uint64_t pingsSent() const noexcept { return pingsSent_; }

  /// Pings that got no answer (member down or departed): the central
  /// scheme keeps pinging every registrant forever, so long-dead members
  /// cost it bandwidth the same way AVMON's non-forgetful pinging does.
  std::uint64_t uselessPings() const noexcept { return uselessPings_; }

  void onMessage(const NodeId& from, const sim::Message& message) override;

 private:
  void tick();

  NodeId id_;
  sim::Simulator& sim_;
  sim::Network& net_;
  SimDuration monitoringPeriod_;
  std::size_t pingBytes_;
  bool started_ = false;

  std::unordered_map<NodeId, history::RawHistory> members_;
  // Registration order; tick() pings in this order so the scheme's traffic
  // is independent of container hashing.
  std::vector<NodeId> memberOrder_;
  std::unordered_map<NodeId, SimTime> registeredAt_;
  std::uint64_t pingsSent_ = 0;
  std::uint64_t uselessPings_ = 0;
};

/// A member of the centrally monitored system: registers with the server
/// whenever it joins, and answers the server's pings via Endpoint's
/// default onRpc (a liveness acknowledgement is all the scheme needs).
class CentralMember final : public sim::Endpoint {
 public:
  CentralMember(NodeId id, NodeId server, sim::Network& net);

  void join();
  void leave();
  const NodeId& id() const noexcept { return id_; }

  void onMessage(const NodeId& from, const sim::Message& message) override;

 private:
  NodeId id_;
  NodeId server_;
  sim::Network& net_;
  bool alive_ = false;
};

}  // namespace avmon::baselines
