// Broadcast baseline: the discovery scheme of AVCast [11], which the paper
// compares against in Table 1.
//
// Every (re)joining node broadcasts its presence to every node in the
// system. Each receiver checks the consistency condition against the
// joiner in both directions and installs any monitoring relation
// immediately. Discovery is near-instant (one broadcast latency) but the
// join costs O(N) messages and every node needs a full membership list —
// exactly the M = O(N) row of Table 1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "avmon/monitor_selector.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace avmon::baselines {

/// Returns the full current membership (alive nodes). Models the complete
/// membership graph AVCast maintains at each node.
using DirectoryFn = std::function<std::vector<NodeId>()>;

/// Presence announcement broadcast on join (an alternative of the closed
/// sim::Message wire format, aliased here for the scheme that speaks it).
using PresenceMessage = sim::PresenceMessage;

/// One participant of the Broadcast scheme.
class BroadcastNode final : public sim::Endpoint {
 public:
  BroadcastNode(NodeId id, const MonitorSelector& selector,
                sim::Simulator& sim, sim::Network& net, DirectoryFn directory);

  BroadcastNode(const BroadcastNode&) = delete;
  BroadcastNode& operator=(const BroadcastNode&) = delete;

  /// Joins: broadcasts presence to every member the directory reports.
  void join();
  void leave();
  bool isAlive() const noexcept { return alive_; }

  const NodeId& id() const noexcept { return id_; }
  const std::unordered_set<NodeId>& pingingSet() const noexcept { return ps_; }
  const std::unordered_set<NodeId>& targetSet() const noexcept { return ts_; }
  const std::unordered_set<NodeId>& membership() const noexcept {
    return members_;
  }

  /// |membership| + |PS| + |TS|: memory entries, comparable to AVMON's.
  std::size_t memoryEntries() const noexcept {
    return members_.size() + ps_.size() + ts_.size();
  }

  std::uint64_t hashChecks() const noexcept { return hashChecks_; }

  /// Delay from this node's first join to its first PS entry, if any.
  std::optional<SimDuration> firstMonitorDelay() const;

  /// Delay from the first join to the k-th PS entry (k from 1), nullopt if
  /// fewer than k monitors were ever discovered — the same k-th-monitor
  /// convention ScenarioRunner measures AVMON with.
  std::optional<SimDuration> discoveryDelay(std::size_t k) const;

  void onMessage(const NodeId& from, const sim::Message& message) override;

 private:
  void considerPeer(const NodeId& peer);

  NodeId id_;
  const MonitorSelector& selector_;
  sim::Simulator& sim_;
  sim::Network& net_;
  DirectoryFn directory_;

  bool alive_ = false;
  SimTime firstJoinTime_ = -1;
  std::vector<SimTime> psDiscoveryTimes_;  // absolute time of k-th PS entry

  std::unordered_set<NodeId> members_;
  std::unordered_set<NodeId> ps_;
  std::unordered_set<NodeId> ts_;
  std::uint64_t hashChecks_ = 0;
};

}  // namespace avmon::baselines
