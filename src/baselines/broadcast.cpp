#include "baselines/broadcast.hpp"

namespace avmon::baselines {

BroadcastNode::BroadcastNode(NodeId id, const MonitorSelector& selector,
                             sim::Simulator& sim, sim::Network& net,
                             DirectoryFn directory)
    : id_(id),
      selector_(selector),
      sim_(sim),
      net_(net),
      directory_(std::move(directory)) {
  net_.attach(id_, *this);
}

void BroadcastNode::join() {
  if (alive_) return;
  alive_ = true;
  net_.setUp(id_, true);
  if (firstJoinTime_ < 0) firstJoinTime_ = sim_.now();

  // O(N) join cost: announce to everyone, and learn everyone.
  for (const NodeId& peer : directory_()) {
    if (peer == id_) continue;
    members_.insert(peer);
    net_.send(id_, peer, PresenceMessage{id_});
    considerPeer(peer);
  }
}

void BroadcastNode::leave() {
  if (!alive_) return;
  alive_ = false;
  net_.setUp(id_, false);
}

void BroadcastNode::considerPeer(const NodeId& peer) {
  // Both orientations of the consistency condition against the peer.
  ++hashChecks_;
  if (selector_.isMonitor(peer, id_) && ps_.insert(peer).second) {
    psDiscoveryTimes_.push_back(sim_.now());
  }
  ++hashChecks_;
  if (selector_.isMonitor(id_, peer)) ts_.insert(peer);
}

void BroadcastNode::onMessage(const NodeId& /*from*/,
                              const sim::Message& message) {
  if (!alive_) return;
  // This scheme only speaks presence announcements; other alternatives of
  // the closed wire format are not its protocol and fall to the catch-all.
  std::visit(sim::Overloaded{
                 [this](const PresenceMessage& presence) {
                   if (presence.origin == id_) return;
                   members_.insert(presence.origin);
                   considerPeer(presence.origin);
                 },
                 [](const auto&) {},
             },
             message);
}

std::optional<SimDuration> BroadcastNode::firstMonitorDelay() const {
  return discoveryDelay(1);
}

std::optional<SimDuration> BroadcastNode::discoveryDelay(std::size_t k) const {
  if (k == 0 || psDiscoveryTimes_.size() < k || firstJoinTime_ < 0)
    return std::nullopt;
  return psDiscoveryTimes_[k - 1] - firstJoinTime_;
}

}  // namespace avmon::baselines
