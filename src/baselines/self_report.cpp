#include "baselines/self_report.hpp"

namespace avmon::baselines {

void SelfReportNode::join(SimTime now) {
  if (up_) return;
  up_ = true;
  sessionStart_ = now;
  if (firstJoin_ < 0) firstJoin_ = now;
}

void SelfReportNode::leave(SimTime now) {
  if (!up_) return;
  up_ = false;
  accumulatedUp_ += now - sessionStart_;
}

double SelfReportNode::trueAvailability(SimTime now) const {
  if (firstJoin_ < 0 || now <= firstJoin_) return 0.0;
  SimDuration up = accumulatedUp_;
  if (up_) up += now - sessionStart_;
  return static_cast<double>(up) / static_cast<double>(now - firstJoin_);
}

}  // namespace avmon::baselines
