// Self-reporting baseline: PS(x) = {x} (paper Section 1, existing approach
// (1)). Each node tracks and reports its own availability — so a selfish
// node can report any value it likes. Included to quantify, next to
// AVMON's overreporting experiment, how completely self-reporting fails
// against the selfish-node model.
#pragma once

#include <optional>

#include "common/node_id.hpp"
#include "common/time.hpp"

namespace avmon::baselines {

/// Tracks true up-time locally and reports either the truth or a lie.
class SelfReportNode {
 public:
  explicit SelfReportNode(NodeId id) : id_(id) {}

  const NodeId& id() const noexcept { return id_; }

  /// Lifecycle, driven by the churn player.
  void join(SimTime now);
  void leave(SimTime now);

  /// True availability measured by the node itself over its lifetime
  /// (fraction of time up since first join). `now` caps the open session.
  double trueAvailability(SimTime now) const;

  /// What the node tells the world. Honest nodes return trueAvailability;
  /// selfish nodes return whatever they want (the paper's threat model).
  double reportedAvailability(SimTime now) const {
    return selfish_ ? 1.0 : trueAvailability(now);
  }

  void setSelfish(bool on) noexcept { selfish_ = on; }
  bool isSelfish() const noexcept { return selfish_; }

  /// Instant of the node's very first join, if it ever joined — the start
  /// of its self-observation window.
  std::optional<SimTime> firstJoinTime() const {
    if (firstJoin_ < 0) return std::nullopt;
    return firstJoin_;
  }

 private:
  NodeId id_;
  bool selfish_ = false;
  bool up_ = false;
  SimTime firstJoin_ = -1;
  SimTime sessionStart_ = -1;
  SimDuration accumulatedUp_ = 0;
};

}  // namespace avmon::baselines
