// DHT-based baseline: replica-set monitor selection on a consistent-hash
// ring (paper Section 1, existing approach (3), "akin to Total Recall").
//
// PS(x) = the K alive nodes whose hashed ids follow hash(x) clockwise on
// the ring. The paper argues this violates Consistency (a newly joined
// node landing near hash(x) displaces an existing monitor) and Randomness
// condition 3(b) (two monitors of x hash nearby, so they co-occur in many
// other pinging sets). This class models the *selection* layer omnisciently
// (no message protocol) — exactly what the consistency/correlation
// ablation (bench_abl_dht_consistency) needs to quantify those violations.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/node_id.hpp"
#include "hash/hash_function.hpp"

namespace avmon::baselines {

/// Consistent-hash ring over alive nodes with replica-set pinging sets.
class DhtRing {
 public:
  /// `k` monitors per node; `hash` must outlive the ring.
  DhtRing(const hash::HashFunction& hash, unsigned k);

  /// Adds a node to the ring (idempotent).
  void join(const NodeId& id);

  /// Removes a node from the ring (idempotent).
  void leave(const NodeId& id);

  std::size_t size() const noexcept { return byPoint_.size(); }

  /// Ring position of an id in [0, 1) — exposed for tests.
  double point(const NodeId& id) const;

  /// Current PS(x): the K alive nodes clockwise from hash(x), excluding x
  /// itself. Fewer than K if the ring is small.
  std::vector<NodeId> replicaSet(const NodeId& x) const;

 private:
  const hash::HashFunction& hash_;
  unsigned k_;
  // Ring index: hash point -> node. A std::map gives us clockwise
  // successor queries via lower_bound with wraparound.
  std::map<std::uint64_t, NodeId> byPoint_;
  std::unordered_set<NodeId> members_;
};

}  // namespace avmon::baselines
