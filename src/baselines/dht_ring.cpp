#include "baselines/dht_ring.hpp"

namespace avmon::baselines {
namespace {

std::uint64_t ringPoint(const hash::HashFunction& hash, const NodeId& id) {
  const auto bytes = id.toBytes();
  return hash.digest64(bytes);
}

}  // namespace

DhtRing::DhtRing(const hash::HashFunction& hash, unsigned k)
    : hash_(hash), k_(k) {}

void DhtRing::join(const NodeId& id) {
  if (!members_.insert(id).second) return;
  byPoint_.emplace(ringPoint(hash_, id), id);
}

void DhtRing::leave(const NodeId& id) {
  if (members_.erase(id) == 0) return;
  byPoint_.erase(ringPoint(hash_, id));
}

double DhtRing::point(const NodeId& id) const {
  return static_cast<double>(ringPoint(hash_, id)) * 0x1.0p-64;
}

std::vector<NodeId> DhtRing::replicaSet(const NodeId& x) const {
  std::vector<NodeId> ps;
  if (byPoint_.empty()) return ps;
  ps.reserve(k_);

  auto it = byPoint_.lower_bound(ringPoint(hash_, x));
  // Walk clockwise (with wraparound) collecting the first K others.
  for (std::size_t steps = 0; steps < byPoint_.size() && ps.size() < k_;
       ++steps) {
    if (it == byPoint_.end()) it = byPoint_.begin();
    if (it->second != x) ps.push_back(it->second);
    ++it;
  }
  return ps;
}

}  // namespace avmon::baselines
