#include "baselines/central.hpp"

namespace avmon::baselines {

CentralServer::CentralServer(NodeId id, sim::Simulator& sim, sim::Network& net,
                             SimDuration monitoringPeriod,
                             std::size_t pingBytes)
    : id_(id),
      sim_(sim),
      net_(net),
      monitoringPeriod_(monitoringPeriod),
      pingBytes_(pingBytes) {
  net_.attach(id_, *this);
}

void CentralServer::start() {
  if (started_) return;
  started_ = true;
  net_.setUp(id_, true);
  sim_.every(sim_.now() + monitoringPeriod_, monitoringPeriod_, [this] {
    tick();
    return true;
  });
}

void CentralServer::tick() {
  for (auto& [member, hist] : members_) {
    ++pingsSent_;
    auto* ep = net_.rpc(id_, member, pingBytes_, pingBytes_);
    hist.record(sim_.now(), ep != nullptr);
  }
}

double CentralServer::estimateOf(const NodeId& member) const {
  const auto it = members_.find(member);
  return it == members_.end() ? 0.0 : it->second.estimate();
}

void CentralServer::onMessage(const NodeId& /*from*/, const std::any& payload) {
  if (const auto* reg = std::any_cast<RegisterMessage>(&payload)) {
    members_.try_emplace(reg->origin);
  }
}

CentralMember::CentralMember(NodeId id, NodeId server, sim::Network& net)
    : id_(id), server_(server), net_(net) {
  net_.attach(id_, *this);
}

void CentralMember::join() {
  if (alive_) return;
  alive_ = true;
  net_.setUp(id_, true);
  net_.send(id_, server_, RegisterMessage{id_}, RegisterMessage::kBytes);
}

void CentralMember::leave() {
  if (!alive_) return;
  alive_ = false;
  net_.setUp(id_, false);
}

void CentralMember::onMessage(const NodeId&, const std::any&) {
  // Members only answer pings, which the network models as RPC liveness.
}

}  // namespace avmon::baselines
