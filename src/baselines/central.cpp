#include "baselines/central.hpp"

namespace avmon::baselines {

CentralServer::CentralServer(NodeId id, sim::Simulator& sim, sim::Network& net,
                             SimDuration monitoringPeriod,
                             std::size_t pingBytes)
    : id_(id),
      sim_(sim),
      net_(net),
      monitoringPeriod_(monitoringPeriod),
      pingBytes_(pingBytes) {
  net_.attach(id_, *this);
}

void CentralServer::start() {
  if (started_) return;
  started_ = true;
  net_.setUp(id_, true);
  sim_.every(sim_.now() + monitoringPeriod_, monitoringPeriod_, [this] {
    tick();
    return true;
  });
}

void CentralServer::tick() {
  // Ping in registration order, not container hash order: the ping
  // sequence is observable behavior (traffic counters, history sample
  // timestamps), so it must be a function of what the members did.
  for (const NodeId& member : memberOrder_) {
    history::RawHistory& hist = members_.at(member);
    ++pingsSent_;
    const bool up =
        net_.exchange(id_, member, sim::PingRequest{pingBytes_}).has_value();
    if (!up) ++uselessPings_;
    hist.record(sim_.now(), up);
  }
}

double CentralServer::estimateOf(const NodeId& member) const {
  const auto it = members_.find(member);
  return it == members_.end() ? 0.0 : it->second.estimate();
}

const history::RawHistory* CentralServer::historyOf(
    const NodeId& member) const {
  const auto it = members_.find(member);
  return it == members_.end() ? nullptr : &it->second;
}

std::optional<SimTime> CentralServer::registeredAt(const NodeId& member) const {
  const auto it = registeredAt_.find(member);
  if (it == registeredAt_.end()) return std::nullopt;
  return it->second;
}

void CentralServer::onMessage(const NodeId& /*from*/,
                              const sim::Message& message) {
  std::visit(sim::Overloaded{
                 [this](const RegisterMessage& reg) {
                   if (members_.try_emplace(reg.origin).second) {
                     memberOrder_.push_back(reg.origin);
                   }
                   registeredAt_.try_emplace(reg.origin, sim_.now());
                 },
                 [](const auto&) {},  // not this scheme's traffic
             },
             message);
}

CentralMember::CentralMember(NodeId id, NodeId server, sim::Network& net)
    : id_(id), server_(server), net_(net) {
  net_.attach(id_, *this);
}

void CentralMember::join() {
  if (alive_) return;
  alive_ = true;
  net_.setUp(id_, true);
  net_.send(id_, server_, RegisterMessage{id_});
}

void CentralMember::leave() {
  if (!alive_) return;
  alive_ = false;
  net_.setUp(id_, false);
}

void CentralMember::onMessage(const NodeId&, const sim::Message&) {
  // Members receive no one-way traffic; they answer the server's pings
  // through Endpoint's default onRpc liveness acknowledgement.
}

}  // namespace avmon::baselines
