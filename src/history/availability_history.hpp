// Availability-history maintenance (the paper's sub-problem II).
//
// "Any existing technique for availability history maintenance, such as
// raw, aged, recent, etc., can be used orthogonally with any availability
// monitoring overlay" (Section 1). These stores are what a monitor keeps
// per target in its persistent storage; AVMON feeds them one sample per
// monitoring ping (up = ping answered).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace avmon::history {

/// One availability observation: the target's state at a ping instant.
struct Sample {
  SimTime when = 0;
  bool up = false;
};

/// Arrival times of the earliest and latest samples a store still covers.
struct SampleSpan {
  SimTime first = 0;
  SimTime last = 0;
};

/// Per-target availability store kept by a monitor.
class AvailabilityHistory {
 public:
  virtual ~AvailabilityHistory() = default;

  /// Records the outcome of one monitoring ping.
  virtual void record(SimTime when, bool up) = 0;

  /// Current availability estimate in [0,1]; 0 if no samples yet.
  virtual double estimate() const = 0;

  /// Number of samples the estimate is based on.
  virtual std::size_t sampleCount() const = 0;

  /// Observation window the estimate covers — the arrival times of the
  /// first and last samples it is based on — or nullopt before the first
  /// sample. Lets consumers align ground truth with a monitor's window
  /// without knowing (or downcasting to) the concrete store.
  virtual std::optional<SampleSpan> sampleSpan() const = 0;

  /// Store style name ("raw", "recent", "aged").
  virtual std::string name() const = 0;
};

/// Raw: remembers every sample; estimate is the all-time up fraction.
/// Memory grows with observation length — the most faithful store, and the
/// baseline the paper's availability-estimation experiment implies
/// ("fraction of monitoring pings ... which receive a response back").
class RawHistory final : public AvailabilityHistory {
 public:
  void record(SimTime when, bool up) override;
  double estimate() const override;
  std::size_t sampleCount() const override { return samples_.size(); }
  std::optional<SampleSpan> sampleSpan() const override;
  std::string name() const override { return "raw"; }

  /// Full sample log (read-only), e.g. for offline prediction models.
  const std::vector<Sample>& samples() const noexcept { return samples_; }

  /// Up fraction within [from, to); 0 if no samples in the window.
  double estimateWindow(SimTime from, SimTime to) const;

 private:
  std::vector<Sample> samples_;
  std::size_t upCount_ = 0;
};

/// Recent: sliding window over the last `capacity` samples.
class RecentHistory final : public AvailabilityHistory {
 public:
  explicit RecentHistory(std::size_t capacity);

  void record(SimTime when, bool up) override;
  double estimate() const override;
  std::size_t sampleCount() const override { return window_.size(); }
  std::optional<SampleSpan> sampleSpan() const override;
  std::string name() const override { return "recent"; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<Sample> window_;
  std::size_t upCount_ = 0;
};

/// Aged: exponentially weighted moving average; newer samples dominate
/// with decay factor `alpha` (weight of each new sample).
class AgedHistory final : public AvailabilityHistory {
 public:
  /// Requires 0 < alpha <= 1.
  explicit AgedHistory(double alpha);

  void record(SimTime when, bool up) override;
  double estimate() const override { return count_ == 0 ? 0.0 : ewma_; }
  std::size_t sampleCount() const override { return count_; }
  std::optional<SampleSpan> sampleSpan() const override;
  std::string name() const override { return "aged"; }

  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double ewma_ = 0.0;
  std::size_t count_ = 0;
  SimTime firstWhen_ = 0;
  SimTime lastWhen_ = 0;
};

/// Compact: run-length windows with a fixed run budget — the memory-diet
/// store for million-node scenarios. Consecutive same-state samples
/// collapse into one run; when the run table exceeds its budget the two
/// OLDEST runs coalesce into one coarse (mixed up/down) run, so recent
/// structure stays fine-grained while ancient history blurs. The headline
/// estimate is maintained as plain up/total counters, so it is EXACTLY
/// RawHistory's all-time up fraction regardless of coarsening — only the
/// per-run time structure is lossy. Worst-case footprint is
/// maxRuns * sizeof(Run) instead of one Sample per ping.
class CompactHistory final : public AvailabilityHistory {
 public:
  /// One maximal span of samples; `up == total` or `up == 0` until the run
  /// has been coarsened by a merge.
  struct Run {
    SimTime first = 0;
    SimTime last = 0;
    std::uint32_t total = 0;
    std::uint32_t up = 0;
  };

  /// Requires maxRuns >= 2 (a merge needs two victims).
  explicit CompactHistory(std::size_t maxRuns = kDefaultMaxRuns);

  void record(SimTime when, bool up) override;
  double estimate() const override;
  std::size_t sampleCount() const override { return count_; }
  std::optional<SampleSpan> sampleSpan() const override;
  std::string name() const override { return "compact"; }

  /// Retained run table, oldest first (tests / coarse window queries).
  const std::vector<Run>& runs() const noexcept { return runs_; }
  std::size_t maxRuns() const noexcept { return maxRuns_; }

  static constexpr std::size_t kDefaultMaxRuns = 32;

 private:
  std::size_t maxRuns_;
  std::vector<Run> runs_;
  std::size_t count_ = 0;
  std::size_t upCount_ = 0;
  SimTime firstWhen_ = 0;
  SimTime lastWhen_ = 0;
};

/// Factory by style name ("raw" | "recent" | "aged" | "compact"); throws
/// std::invalid_argument otherwise. `recent` uses a 512-sample window,
/// `aged` uses alpha = 0.05, and `compact` keeps 32 runs unless configured
/// via the optional parameter.
std::unique_ptr<AvailabilityHistory> makeHistory(const std::string& style,
                                                 double param = 0.0);

}  // namespace avmon::history
