#include "history/availability_history.hpp"

#include <algorithm>
#include <stdexcept>

namespace avmon::history {

void RawHistory::record(SimTime when, bool up) {
  samples_.push_back({when, up});
  if (up) ++upCount_;
}

double RawHistory::estimate() const {
  if (samples_.empty()) return 0.0;
  return static_cast<double>(upCount_) / static_cast<double>(samples_.size());
}

std::optional<SampleSpan> RawHistory::sampleSpan() const {
  if (samples_.empty()) return std::nullopt;
  return SampleSpan{samples_.front().when, samples_.back().when};
}

double RawHistory::estimateWindow(SimTime from, SimTime to) const {
  // Samples are recorded in time order, so the window is a contiguous run.
  const auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), from,
      [](const Sample& s, SimTime t) { return s.when < t; });
  const auto hi = std::lower_bound(
      lo, samples_.end(), to,
      [](const Sample& s, SimTime t) { return s.when < t; });
  if (lo == hi) return 0.0;
  std::size_t up = 0;
  for (auto it = lo; it != hi; ++it) up += it->up ? 1 : 0;
  return static_cast<double>(up) / static_cast<double>(hi - lo);
}

RecentHistory::RecentHistory(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("RecentHistory capacity 0");
}

void RecentHistory::record(SimTime when, bool up) {
  window_.push_back({when, up});
  if (up) ++upCount_;
  if (window_.size() > capacity_) {
    if (window_.front().up) --upCount_;
    window_.pop_front();
  }
}

double RecentHistory::estimate() const {
  if (window_.empty()) return 0.0;
  return static_cast<double>(upCount_) / static_cast<double>(window_.size());
}

std::optional<SampleSpan> RecentHistory::sampleSpan() const {
  // Only the retained window: evicted samples no longer back the estimate.
  if (window_.empty()) return std::nullopt;
  return SampleSpan{window_.front().when, window_.back().when};
}

AgedHistory::AgedHistory(double alpha) : alpha_(alpha) {
  if (alpha_ <= 0.0 || alpha_ > 1.0)
    throw std::invalid_argument("AgedHistory alpha must be in (0,1]");
}

void AgedHistory::record(SimTime when, bool up) {
  const double x = up ? 1.0 : 0.0;
  ewma_ = count_ == 0 ? x : alpha_ * x + (1.0 - alpha_) * ewma_;
  if (count_ == 0) firstWhen_ = when;
  lastWhen_ = when;
  ++count_;
}

std::optional<SampleSpan> AgedHistory::sampleSpan() const {
  // Every sample ever recorded still carries (decayed) weight.
  if (count_ == 0) return std::nullopt;
  return SampleSpan{firstWhen_, lastWhen_};
}

CompactHistory::CompactHistory(std::size_t maxRuns) : maxRuns_(maxRuns) {
  if (maxRuns_ < 2)
    throw std::invalid_argument("CompactHistory maxRuns must be >= 2");
}

void CompactHistory::record(SimTime when, bool up) {
  if (count_ == 0) firstWhen_ = when;
  lastWhen_ = when;
  ++count_;
  if (up) ++upCount_;

  // Extend the newest run only while it is still pure and the sample
  // matches its state; otherwise open a new run.
  if (!runs_.empty()) {
    Run& tail = runs_.back();
    const bool pureUp = tail.up == tail.total;
    const bool pureDown = tail.up == 0;
    if ((up && pureUp) || (!up && pureDown)) {
      tail.last = when;
      ++tail.total;
      if (up) ++tail.up;
      return;
    }
  }
  runs_.push_back(Run{when, when, 1, up ? 1u : 0u});
  if (runs_.size() > maxRuns_) {
    // Coarsen the oldest structure: fold runs_[1] into runs_[0]. The
    // merged run is generally mixed, so it can never be extended again.
    runs_[0].last = runs_[1].last;
    runs_[0].total += runs_[1].total;
    runs_[0].up += runs_[1].up;
    runs_.erase(runs_.begin() + 1);
  }
}

double CompactHistory::estimate() const {
  // Same division as RawHistory::estimate — counter-backed, so coarsening
  // the run table never perturbs the headline estimate.
  if (count_ == 0) return 0.0;
  return static_cast<double>(upCount_) / static_cast<double>(count_);
}

std::optional<SampleSpan> CompactHistory::sampleSpan() const {
  if (count_ == 0) return std::nullopt;
  return SampleSpan{firstWhen_, lastWhen_};
}

std::unique_ptr<AvailabilityHistory> makeHistory(const std::string& style,
                                                 double param) {
  if (style == "raw") return std::make_unique<RawHistory>();
  if (style == "recent") {
    const std::size_t cap =
        param > 0 ? static_cast<std::size_t>(param) : 512;
    return std::make_unique<RecentHistory>(cap);
  }
  if (style == "aged") {
    const double alpha = param > 0 ? param : 0.05;
    return std::make_unique<AgedHistory>(alpha);
  }
  if (style == "compact") {
    const std::size_t runs = param > 0 ? static_cast<std::size_t>(param)
                                       : CompactHistory::kDefaultMaxRuns;
    return std::make_unique<CompactHistory>(runs);
  }
  throw std::invalid_argument("unknown history style: " + style);
}

}  // namespace avmon::history
