#include "predict/evaluation.hpp"

namespace avmon::predict {

Score evaluate(Predictor& predictor, const trace::NodeTrace& node,
               SimTime traceEnd, const EvalConfig& config) {
  Score score;
  score.predictor = predictor.name();
  for (SimTime t = config.start; t + config.horizon < traceEnd;
       t += config.samplePeriod) {
    predictor.observe(t, node.upAt(t));
    if (t < config.trainUntil) continue;
    const bool forecast = predictor.predictUp(t + config.horizon);
    const bool truth = node.upAt(t + config.horizon);
    ++score.predictions;
    score.correct += forecast == truth ? 1 : 0;
  }
  return score;
}

std::vector<Score> evaluateAll(const std::vector<std::string>& names,
                               const trace::AvailabilityTrace& trace,
                               const EvalConfig& config) {
  std::vector<Score> totals;
  totals.reserve(names.size());
  for (const std::string& name : names) {
    Score total;
    total.predictor = name;
    for (const trace::NodeTrace& node : trace.nodes()) {
      const auto predictor = makePredictor(name);
      EvalConfig perNode = config;
      perNode.start = std::max(config.start, node.birth);
      const Score s = evaluate(*predictor, node, trace.horizon(), perNode);
      total.predictions += s.predictions;
      total.correct += s.correct;
    }
    totals.push_back(total);
  }
  return totals;
}

}  // namespace avmon::predict
