#include "predict/predictors.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace avmon::predict {

void RightNowPredictor::observe(SimTime /*when*/, bool up) {
  lastUp_ = up;
  hasSample_ = true;
}

SaturatingCounterPredictor::SaturatingCounterPredictor(unsigned bits) {
  if (bits < 1 || bits > 16)
    throw std::invalid_argument("SaturatingCounter bits must be in [1,16]");
  max_ = (1u << bits) - 1;
  counter_ = max_ / 2;  // start undecided
}

void SaturatingCounterPredictor::observe(SimTime /*when*/, bool up) {
  if (up) {
    counter_ = std::min(counter_ + 1, max_);
  } else if (counter_ > 0) {
    --counter_;
  }
}

bool SaturatingCounterPredictor::predictUp(SimTime /*at*/) const {
  return counter_ > max_ / 2;
}

double SaturatingCounterPredictor::confidence(SimTime /*at*/) const {
  // Distance from the midpoint, normalized to [0.5, 1].
  const double mid = static_cast<double>(max_) / 2.0;
  const double dist = std::abs(static_cast<double>(counter_) - mid) / mid;
  return 0.5 + 0.5 * dist;
}

HistoryCountsPredictor::HistoryCountsPredictor(SimDuration slotLength)
    : slotLength_(slotLength) {
  if (slotLength_ <= 0 || slotLength_ > kDay)
    throw std::invalid_argument(
        "HistoryCounts slot length must be in (0, 1 day]");
  slots_.resize(static_cast<std::size_t>((kDay + slotLength_ - 1) / slotLength_));
}

std::size_t HistoryCountsPredictor::slotOf(SimTime t) const noexcept {
  const SimTime inDay = ((t % kDay) + kDay) % kDay;
  return std::min(static_cast<std::size_t>(inDay / slotLength_),
                  slots_.size() - 1);
}

void HistoryCountsPredictor::observe(SimTime when, bool up) {
  Slot& slot = slots_[slotOf(when)];
  slot.total += 1;
  slot.up += up ? 1 : 0;
}

bool HistoryCountsPredictor::predictUp(SimTime at) const {
  const Slot& slot = slots_[slotOf(at)];
  if (slot.total == 0) return false;  // no evidence: conservative
  return 2 * slot.up >= slot.total;
}

double HistoryCountsPredictor::confidence(SimTime at) const {
  const Slot& slot = slots_[slotOf(at)];
  if (slot.total == 0) return 0.5;
  const double p =
      static_cast<double>(slot.up) / static_cast<double>(slot.total);
  return 0.5 + std::abs(p - 0.5);
}

LinearEwmaPredictor::LinearEwmaPredictor(double alpha) : alpha_(alpha) {
  if (alpha_ <= 0.0 || alpha_ > 1.0)
    throw std::invalid_argument("LinearEwma alpha must be in (0,1]");
}

void LinearEwmaPredictor::observe(SimTime /*when*/, bool up) {
  const double x = up ? 1.0 : 0.0;
  ewma_ = hasSample_ ? alpha_ * x + (1.0 - alpha_) * ewma_ : x;
  hasSample_ = true;
}

double LinearEwmaPredictor::confidence(SimTime /*at*/) const {
  return 0.5 + std::abs(ewma_ - 0.5);
}

std::unique_ptr<Predictor> makePredictor(const std::string& name) {
  if (name == "right-now") return std::make_unique<RightNowPredictor>();
  if (name == "saturating-counter")
    return std::make_unique<SaturatingCounterPredictor>();
  if (name == "history-counts")
    return std::make_unique<HistoryCountsPredictor>();
  if (name == "linear-ewma") return std::make_unique<LinearEwmaPredictor>();
  throw std::invalid_argument("unknown predictor: " + name);
}

void replay(Predictor& predictor, const history::RawHistory& history) {
  for (const history::Sample& s : history.samples()) {
    predictor.observe(s.when, s.up);
  }
}

}  // namespace avmon::predict
