// Availability prediction on top of monitored histories.
//
// The paper motivates AVMON with availability-aware strategies, including
// "availability histories of nodes can even be used to predict
// availability of individual nodes in the future" (Mickens & Noble,
// NSDI 2006 — reference [9]). This module implements the standard
// predictor family from that line of work, consuming the sample streams
// AVMON monitors record (history::RawHistory):
//
//   RightNow        — predict the current state persists.
//   SaturatingCounter — an n-bit saturating up/down counter (branch-
//                     predictor style): robust to noise, slow to flip.
//   HistoryCounts   — per-slot-of-day frequency table: captures diurnal
//                     patterns (a node up every evening).
//   LinearEwma      — exponentially weighted up-fraction thresholded.
//
// All predictors answer one question: will the node be up at (now + h)?
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "history/availability_history.hpp"

namespace avmon::predict {

/// Online binary availability predictor. Feed samples in time order via
/// observe(); query the forecast for a horizon with predictUp().
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Consumes one monitored sample (ping outcome at `when`).
  virtual void observe(SimTime when, bool up) = 0;

  /// Forecast: will the node be up at time `at`? Implementations may use
  /// `at` (e.g. time-of-day structure) or ignore it.
  virtual bool predictUp(SimTime at) const = 0;

  /// Confidence in [0,1] for the predictUp() answer (0.5 = coin flip).
  virtual double confidence(SimTime at) const = 0;

  virtual std::string name() const = 0;
};

/// Predicts that whatever state was last observed will persist.
class RightNowPredictor final : public Predictor {
 public:
  void observe(SimTime when, bool up) override;
  bool predictUp(SimTime /*at*/) const override { return lastUp_; }
  double confidence(SimTime) const override { return hasSample_ ? 0.7 : 0.5; }
  std::string name() const override { return "right-now"; }

 private:
  bool lastUp_ = false;
  bool hasSample_ = false;
};

/// n-bit saturating counter: increments on up samples, decrements on down;
/// predicts up when the counter is in the upper half of its range.
class SaturatingCounterPredictor final : public Predictor {
 public:
  /// `bits` in [1, 16]; 2 bits is the classic branch-predictor setting.
  explicit SaturatingCounterPredictor(unsigned bits = 2);

  void observe(SimTime when, bool up) override;
  bool predictUp(SimTime at) const override;
  double confidence(SimTime at) const override;
  std::string name() const override { return "saturating-counter"; }

  unsigned counter() const noexcept { return counter_; }
  unsigned max() const noexcept { return max_; }

 private:
  unsigned max_;
  unsigned counter_;
};

/// Slot-of-day frequency table: divides the day into fixed slots and
/// tracks the up fraction seen in each; predicts by the slot of the query
/// time. Captures diurnal availability (office machines, home PCs).
class HistoryCountsPredictor final : public Predictor {
 public:
  /// `slotLength` must divide a day evenly for sensible slotting
  /// (validated: > 0 and <= 1 day).
  explicit HistoryCountsPredictor(SimDuration slotLength = kHour);

  void observe(SimTime when, bool up) override;
  bool predictUp(SimTime at) const override;
  double confidence(SimTime at) const override;
  std::string name() const override { return "history-counts"; }

 private:
  struct Slot {
    std::uint64_t up = 0;
    std::uint64_t total = 0;
  };
  std::size_t slotOf(SimTime t) const noexcept;

  SimDuration slotLength_;
  std::vector<Slot> slots_;
};

/// EWMA of the up indicator, thresholded at 1/2.
class LinearEwmaPredictor final : public Predictor {
 public:
  explicit LinearEwmaPredictor(double alpha = 0.1);

  void observe(SimTime when, bool up) override;
  bool predictUp(SimTime /*at*/) const override { return ewma_ >= 0.5; }
  double confidence(SimTime at) const override;
  std::string name() const override { return "linear-ewma"; }

 private:
  double alpha_;
  double ewma_ = 0.5;
  bool hasSample_ = false;
};

/// Factory: "right-now" | "saturating-counter" | "history-counts" |
/// "linear-ewma". Throws std::invalid_argument on unknown names.
std::unique_ptr<Predictor> makePredictor(const std::string& name);

/// Convenience: replays a recorded history into a fresh predictor.
void replay(Predictor& predictor, const history::RawHistory& history);

}  // namespace avmon::predict
