// Offline evaluation of availability predictors against ground truth.
//
// Walks a node's true availability schedule, feeds each predictor the
// samples a monitor would have seen up to time t, asks for a forecast at
// t + horizon, and scores it against the trace. Used by tests and by the
// prediction ablation bench to rank predictor families per workload.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "predict/predictors.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::predict {

/// Accuracy of one predictor on one node.
struct Score {
  std::string predictor;
  std::size_t predictions = 0;
  std::size_t correct = 0;

  double accuracy() const noexcept {
    return predictions == 0
               ? 0.0
               : static_cast<double>(correct) / static_cast<double>(predictions);
  }
};

/// Evaluation settings.
struct EvalConfig {
  SimDuration samplePeriod = kMinute;  ///< monitoring ping cadence
  SimDuration horizon = 30 * kMinute;  ///< how far ahead to forecast
  SimTime start = 0;                   ///< first sample time
  SimTime trainUntil = 0;  ///< score only predictions made after this
};

/// Scores `predictor` on `node`'s schedule: at every sample instant t the
/// predictor observes the true state, then (for t >= trainUntil) forecasts
/// the state at t + horizon; the forecast is scored against the trace.
Score evaluate(Predictor& predictor, const trace::NodeTrace& node,
               SimTime traceEnd, const EvalConfig& config);

/// Evaluates a fresh instance of every named predictor over all nodes of
/// a trace, aggregating per predictor.
std::vector<Score> evaluateAll(const std::vector<std::string>& names,
                               const trace::AvailabilityTrace& trace,
                               const EvalConfig& config);

}  // namespace avmon::predict
