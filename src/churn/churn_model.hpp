// Named churn models: one enum covering all five availability models of
// the paper's evaluation plus the doubled-churn SYNTH-BD2 (Section 5.3).
// Bench binaries and tests select workloads by this enum so experiment
// code never duplicates generator parameter plumbing.
#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::churn {

enum class Model {
  kStat,       ///< static, no churn
  kSynth,      ///< Poisson join/leave at 20%/hour
  kSynthBD,    ///< SYNTH + births/deaths at 20%/day
  kSynthBD2,   ///< SYNTH + births/deaths at 40%/day
  kPlanetLab,  ///< PlanetLab-like trace (fixed N=239)
  kOvernet,    ///< Overnet-like trace (fixed stable N=550)
};

/// Paper-facing label ("STAT", "SYNTH", "SYNTH-BD", "SYNTH-BD2", "PL", "OV").
std::string modelName(Model m);

/// Inverse of modelName; throws std::invalid_argument on unknown names.
/// The one model parser behind the tools' flags and the spec grammar.
Model modelFromName(const std::string& name);

/// Workload knobs shared by all models. `stableSize` is ignored by the
/// fixed-size trace models (PL and OV).
struct WorkloadParams {
  std::size_t stableSize = 1000;
  SimDuration horizon = 4 * kHour;
  /// Control-group fraction for STAT/SYNTH (the paper uses 10%); the BD
  /// models measure nodes born after warm-up instead.
  double controlFraction = 0.1;
  SimTime controlJoinTime = 1 * kHour;
  std::uint64_t seed = 1;
};

/// Generates the availability schedule for the given model.
trace::AvailabilityTrace generate(Model m, const WorkloadParams& params);

/// The stable system size N the protocol should be configured with for
/// this model (PL: 239, OV: 550, otherwise params.stableSize).
std::size_t effectiveStableSize(Model m, const WorkloadParams& params);

}  // namespace avmon::churn
