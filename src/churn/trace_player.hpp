// Replays an availability trace as simulator events.
//
// The player turns each node's schedule into join/leave/death callbacks at
// the right simulated instants. Protocol-independent: the listener decides
// what joining means (flip network liveness, run the AVMON join
// sub-protocol, ...). Deaths are reported to the listener for bookkeeping
// but are invisible to protocol nodes — the paper's deaths are silent.
#pragma once

#include <functional>

#include "common/node_id.hpp"
#include "common/time.hpp"
#include "sim/simulator.hpp"
#include "trace/availability_trace.hpp"

namespace avmon::churn {

/// Receives lifecycle transitions as the trace unfolds.
class LifecycleListener {
 public:
  virtual ~LifecycleListener() = default;

  /// The node comes up. `firstJoin` is true for its very first session
  /// (i.e., right after birth) — the paper's join sub-protocol sends a
  /// full-weight JOIN then, and a reduced-weight JOIN on rejoins.
  virtual void onJoin(const NodeId& id, bool firstJoin) = 0;

  /// The node goes down (leave or crash; indistinguishable on the wire).
  virtual void onLeave(const NodeId& id) = 0;

  /// The node has left for good. Silent: only measurement code may look.
  virtual void onDeath(const NodeId& id) = 0;
};

/// Schedules every transition of `trace` onto `sim`, targeting `listener`.
///
/// The player must outlive the simulation run (scheduled closures reference
/// it). Call schedule() exactly once, before running the simulator.
class TracePlayer {
 public:
  TracePlayer(sim::Simulator& sim, const trace::AvailabilityTrace& trace)
      : sim_(sim), trace_(trace) {}

  TracePlayer(const TracePlayer&) = delete;
  TracePlayer& operator=(const TracePlayer&) = delete;

  /// Enqueues all join/leave/death events. Transitions at identical times
  /// are delivered in node order (deterministic).
  void schedule(LifecycleListener& listener);

  /// Sharded form: like schedule(), but each node's transitions go to the
  /// simulator `simFor` returns for that node (its home shard). Insertion
  /// stays in trace order per simulator, so same-time transitions of the
  /// same node keep their relative order on any shard layout.
  void schedule(LifecycleListener& listener,
                const std::function<sim::Simulator&(const NodeId&)>& simFor);

 private:
  sim::Simulator& sim_;
  const trace::AvailabilityTrace& trace_;
};

}  // namespace avmon::churn
