#include "churn/churn_model.hpp"

#include <stdexcept>

#include "trace/generators.hpp"

namespace avmon::churn {

std::string modelName(Model m) {
  switch (m) {
    case Model::kStat: return "STAT";
    case Model::kSynth: return "SYNTH";
    case Model::kSynthBD: return "SYNTH-BD";
    case Model::kSynthBD2: return "SYNTH-BD2";
    case Model::kPlanetLab: return "PL";
    case Model::kOvernet: return "OV";
  }
  throw std::logic_error("unreachable: bad Model");
}

Model modelFromName(const std::string& name) {
  if (name == "STAT") return Model::kStat;
  if (name == "SYNTH") return Model::kSynth;
  if (name == "SYNTH-BD") return Model::kSynthBD;
  if (name == "SYNTH-BD2") return Model::kSynthBD2;
  if (name == "PL") return Model::kPlanetLab;
  if (name == "OV") return Model::kOvernet;
  throw std::invalid_argument(
      "unknown model: " + name +
      " (expected STAT|SYNTH|SYNTH-BD|SYNTH-BD2|PL|OV)");
}

trace::AvailabilityTrace generate(Model m, const WorkloadParams& params) {
  switch (m) {
    case Model::kStat: {
      trace::SynthParams p;
      p.stableSize = params.stableSize;
      p.horizon = params.horizon;
      p.controlFraction = params.controlFraction;
      p.controlJoinTime = params.controlJoinTime;
      p.seed = params.seed;
      return trace::generateStat(p);
    }
    case Model::kSynth:
    case Model::kSynthBD:
    case Model::kSynthBD2: {
      trace::SynthParams p;
      p.stableSize = params.stableSize;
      p.churnPerHour = 0.2;
      p.birthDeathPerDay = m == Model::kSynth     ? 0.0
                           : m == Model::kSynthBD ? 0.2
                                                  : 0.4;
      p.horizon = params.horizon;
      // The BD models' control group is implicit (nodes born after
      // warm-up, Section 5.1), so no explicit control nodes there.
      p.controlFraction = m == Model::kSynth ? params.controlFraction : 0.0;
      p.controlJoinTime = params.controlJoinTime;
      p.seed = params.seed;
      return trace::generateSynth(p);
    }
    case Model::kPlanetLab: {
      trace::PlanetLabParams p;
      p.horizon = params.horizon;
      p.seed = params.seed;
      return trace::generatePlanetLabLike(p);
    }
    case Model::kOvernet: {
      trace::OvernetParams p;
      p.horizon = params.horizon;
      p.seed = params.seed;
      return trace::generateOvernetLike(p);
    }
  }
  throw std::logic_error("unreachable: bad Model");
}

std::size_t effectiveStableSize(Model m, const WorkloadParams& params) {
  switch (m) {
    case Model::kPlanetLab: return 239;
    case Model::kOvernet: return 550;
    default: return params.stableSize;
  }
}

}  // namespace avmon::churn
