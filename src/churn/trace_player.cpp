#include "churn/trace_player.hpp"

namespace avmon::churn {

void TracePlayer::schedule(LifecycleListener& listener) {
  schedule(listener, [this](const NodeId&) -> sim::Simulator& { return sim_; });
}

void TracePlayer::schedule(
    LifecycleListener& listener,
    const std::function<sim::Simulator&(const NodeId&)>& simFor) {
  for (const trace::NodeTrace& node : trace_.nodes()) {
    const NodeId id = node.id;
    sim::Simulator& sim = simFor(id);
    for (std::size_t i = 0; i < node.sessions.size(); ++i) {
      const trace::Interval& s = node.sessions[i];
      const bool firstJoin = (i == 0);
      sim.at(s.start,
             [&listener, id, firstJoin] { listener.onJoin(id, firstJoin); });
      // A session ending at the horizon is still "up at the end" — emit the
      // leave anyway; runners usually stop measuring before the horizon.
      sim.at(s.end, [&listener, id] { listener.onLeave(id); });
    }
    if (node.death) {
      sim.at(*node.death, [&listener, id] { listener.onDeath(id); });
    }
  }
}

}  // namespace avmon::churn
