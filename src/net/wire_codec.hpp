// Canonical wire codec for the live-wire lane: every closed-variant
// alternative the simulated transport carries (`sim::Message`,
// `sim::RpcRequest`, `sim::RpcResponse`) serialized to a versioned,
// length-prefixed, checksummed binary frame that fits one UDP datagram.
//
// Frame layout (all multi-byte integers big-endian):
//
//   offset  size  field
//        0     2  magic "AV"
//        2     1  wire version (kWireVersion)
//        3     1  frame kind (FrameKind)
//        4     2  payload length L (bytes after the 24-byte header)
//        6     4  FNV-1a 32 checksum over bytes [10, 24 + L)
//       10     6  sender NodeId (IPv4 + port, NodeId::toBytes order)
//       16     8  call id (RPC correlation / control sequence; 0 for
//                 one-way messages)
//       24     L  payload: 1 tag byte + the alternative's fields
//
// Decoding is total and tolerant: any violation — short buffer, bad magic,
// foreign version, length/checksum mismatch, unknown kind or tag,
// truncated or trailing payload bytes — returns nullopt, never UB. A
// *future* alternative (unknown tag under a known kind) is therefore
// dropped cleanly by old receivers, which is the forward-compatibility
// contract the version byte backs up.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "common/node_id.hpp"
#include "sim/message.hpp"
#include "sim/rpc.hpp"

namespace avmon::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 24;
/// Hard frame ceiling: one loopback-safe datagram, far below any MTU
/// fragmentation risk. Encoders assert against it; oversized views are a
/// protocol bug (budgeted responses are bounded by cvs entries).
inline constexpr std::size_t kMaxFrameBytes = 1400;

enum class FrameKind : std::uint8_t {
  kOneWay = 1,       ///< sim::Message
  kRpcRequest = 2,   ///< sim::RpcRequest, callId correlates the response
  kRpcResponse = 3,  ///< sim::RpcResponse, echoes the request's callId
  kControl = 4,      ///< driver → node lifecycle command, callId is a seq
  kControlAck = 5,   ///< node → driver, echoes the control seq
};

// ---- control plane (driver → node, out-of-band of the protocol) ----

/// "Come up and run the joining sub-protocol" — carries the bootstrap
/// contact the paper's rendezvous service would provide. `bootstrap ==`
/// the receiver itself means "you are alone" (the first joiner).
struct ControlJoin {
  bool firstJoin = true;
  NodeId bootstrap;
};

/// "Go down" (leave or simulated crash — indistinguishable, as in the sim).
struct ControlLeave {};

/// Liveness probe for the driver's readiness barrier; acked like every
/// control frame, no state change.
struct ControlPing {};

/// "Anchor your clock now": the node starts its scaled sim clock (and the
/// horizon countdown) on receipt, so every process measures the run from
/// the same instant regardless of spawn staggering.
struct ControlStart {};

using ControlCommand =
    std::variant<ControlJoin, ControlLeave, ControlPing, ControlStart>;

/// A successfully decoded frame. Exactly one of the four optionals is
/// engaged, matching `kind` (kControlAck engages none — the ack is just
/// the echoed callId).
struct Frame {
  FrameKind kind = FrameKind::kOneWay;
  NodeId sender;
  std::uint64_t callId = 0;
  std::optional<sim::Message> message;
  std::optional<sim::RpcRequest> request;
  std::optional<sim::RpcResponse> response;
  std::optional<ControlCommand> control;
};

std::vector<std::uint8_t> encodeMessage(const NodeId& sender,
                                        const sim::Message& message);
std::vector<std::uint8_t> encodeRequest(const NodeId& sender,
                                        std::uint64_t callId,
                                        const sim::RpcRequest& request);
std::vector<std::uint8_t> encodeResponse(const NodeId& sender,
                                         std::uint64_t callId,
                                         const sim::RpcResponse& response);
std::vector<std::uint8_t> encodeControl(const NodeId& sender,
                                        std::uint64_t seq,
                                        const ControlCommand& command);
std::vector<std::uint8_t> encodeControlAck(const NodeId& sender,
                                           std::uint64_t seq);

/// Decodes one datagram-sized buffer into a frame, or nullopt on any
/// malformation (see the header comment for the full rejection list).
std::optional<Frame> decodeFrame(const std::uint8_t* data, std::size_t size);

}  // namespace avmon::net
