// Thin RAII wrapper over a non-blocking IPv4 UDP socket — the only file
// that talks to the BSD socket API. In the live-wire lane a NodeId *is* a
// socket address (IPv4 + port), so send/receive take NodeIds directly and
// no peer table exists anywhere above this layer.
#pragma once

#include <cstdint>
#include <optional>

#include "common/node_id.hpp"

namespace avmon::net {

/// One received datagram's metadata; the bytes land in the caller's buffer.
struct DatagramInfo {
  std::size_t size = 0;
  NodeId source;  ///< source IPv4 + port, i.e. the peer's NodeId
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Binds to `local` (ip in NodeId host order; port 0 picks an ephemeral
  /// port) and switches the socket non-blocking. Returns false and stays
  /// closed on any failure (port in use, out of descriptors).
  bool open(const NodeId& local);

  bool isOpen() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// The bound address, with the kernel-assigned port when 0 was asked.
  const NodeId& local() const noexcept { return local_; }

  /// Sends one datagram to `to`. Returns false on any send error (buffer
  /// full, unreachable) — the live lane treats that like a dropped packet,
  /// which retries/timeouts already cover.
  bool sendTo(const NodeId& to, const std::uint8_t* data, std::size_t size);

  /// Non-blocking receive of one datagram into `buf`; nullopt when nothing
  /// is queued. Datagrams longer than `cap` are truncated by the kernel and
  /// surface as oversized frames the codec rejects.
  std::optional<DatagramInfo> recvFrom(std::uint8_t* buf, std::size_t cap);

  /// Blocks up to `timeoutMs` (0 = poll, <0 = forever) until the socket is
  /// readable. Returns true if readable.
  bool waitReadable(int timeoutMs) const;

  void close();

 private:
  int fd_ = -1;
  NodeId local_;
};

}  // namespace avmon::net
