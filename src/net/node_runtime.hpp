// NodeRuntime: hosts one real AvmonNode behind a LiveTransport, driven by
// wall-clock timers in place of simulator events.
//
// The protocol code still schedules its periodic work on a sim::Simulator
// — the runtime *wall-slaves* that simulator: simulated time advances as
// (elapsed wall time) × timeScale, so a 1-minute protocol period fires
// every wholeSecond at the default 60× compression and the same sim-time
// horizons the spec grammar names run in minutes of wall time. Incoming
// frames dispatch between timer firings from the same single-threaded
// event loop, so protocol code remains free of locks.
//
// Lifecycle is driven by the avmon_live driver over the out-of-band
// control plane: ControlStart anchors the clock, ControlJoin/ControlLeave
// replay the churn schedule, SIGTERM (a flag the owner passes in) ends the
// run and the owner emits writeMetricsJson()'s per-node report.
#pragma once

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "avmon/config.hpp"
#include "avmon/monitor_selector.hpp"
#include "avmon/node.hpp"
#include "common/node_id.hpp"
#include "common/rng.hpp"
#include "hash/hash_function.hpp"
#include "net/live_transport.hpp"
#include "sim/simulator.hpp"

namespace avmon::net {

struct NodeRuntimeOptions {
  NodeId self;
  std::uint32_t index = 0;  ///< position in the cluster (seeding, reports)
  AvmonConfig config;       ///< already validate()d
  std::string hashName = "splitmix64";
  double timeScale = 60.0;  ///< simulated ms per wall ms
  SimDuration horizon = 0;  ///< stop after this much sim time; 0 = SIGTERM
  LiveConfig live;
  std::uint64_t seed = 1;
};

class NodeRuntime {
 public:
  explicit NodeRuntime(NodeRuntimeOptions options);

  /// Binds the socket under options.self. False on bind failure.
  bool open();

  /// Runs the event loop until the horizon elapses (in scaled sim time,
  /// counted from the ControlStart anchor) or `*stop` becomes nonzero.
  /// Returns 0 on a clean horizon/SIGTERM exit.
  int run(const volatile std::sig_atomic_t* stop);

  /// The per-node final report: protocol counters, wire counters,
  /// discovery delay, and per-target availability estimates, as one JSON
  /// object. The driver aggregates these into the MetricsSink summary.
  void writeMetricsJson(std::ostream& out) const;

  const AvmonNode& node() const noexcept { return *node_; }
  LiveTransport& transport() noexcept { return transport_; }

 private:
  void handleControl(const NodeId& from, const ControlCommand& command);

  NodeRuntimeOptions options_;
  sim::Simulator sim_;
  LiveTransport transport_;
  std::unique_ptr<hash::HashFunction> hashFn_;
  std::unique_ptr<HashMonitorSelector> selector_;
  std::unique_ptr<AvmonNode> node_;

  bool started_ = false;
  std::int64_t anchorWallMs_ = 0;
  NodeId pendingBootstrap_;
};

}  // namespace avmon::net
