#include "net/node_runtime.hpp"

#include <algorithm>
#include <ostream>
#include <vector>

#include "net/wall_clock.hpp"

namespace avmon::net {
namespace {

/// Per-node deterministic seed: splitmix64 over (cluster seed, index) so
/// every process derives an independent stream without coordination.
std::uint64_t nodeSeed(std::uint64_t seed, std::uint32_t index) {
  std::uint64_t x = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

NodeRuntime::NodeRuntime(NodeRuntimeOptions options)
    : options_(std::move(options)),
      transport_(options_.live),
      hashFn_(hash::makeHashFunction(options_.hashName)),
      selector_(std::make_unique<HashMonitorSelector>(
          *hashFn_, options_.config.k, options_.config.systemSize)) {}

bool NodeRuntime::open() {
  if (!transport_.open(options_.self)) return false;
  node_ = std::make_unique<AvmonNode>(
      options_.self, options_.config, *selector_, sim_, transport_,
      [this](const NodeId& self) {
        // The driver's ControlJoin carries the bootstrap contact; the
        // contact being ourselves encodes "you are alone".
        return pendingBootstrap_ == self ? NodeId{} : pendingBootstrap_;
      },
      Rng(nodeSeed(options_.seed, options_.index)));
  transport_.setControlHandler(
      [this](const NodeId& from, const ControlCommand& command) {
        handleControl(from, command);
      });
  return true;
}

void NodeRuntime::handleControl(const NodeId& from,
                                const ControlCommand& command) {
  (void)from;
  std::visit(sim::Overloaded{
                 [this](const ControlJoin& c) {
                   if (!started_) {  // defensive: join implies start
                     started_ = true;
                     anchorWallMs_ = wallNowMs();
                   }
                   if (!node_->isAlive()) {
                     pendingBootstrap_ = c.bootstrap;
                     node_->join(c.firstJoin);
                   }
                 },
                 [this](const ControlLeave&) {
                   if (node_->isAlive()) node_->leave();
                 },
                 [](const ControlPing&) {},  // readiness probe; ack is enough
                 [this](const ControlStart&) {
                   if (!started_) {
                     started_ = true;
                     anchorWallMs_ = wallNowMs();
                   }
                 },
             },
             command);
}

int NodeRuntime::run(const volatile std::sig_atomic_t* stop) {
  // Phase 0: answer the readiness barrier until the driver anchors us.
  while (*stop == 0 && !started_) transport_.poll(20);

  while (*stop == 0) {
    const std::int64_t now = wallNowMs();
    auto target = static_cast<SimTime>(
        static_cast<double>(now - anchorWallMs_) * options_.timeScale);
    const bool done = options_.horizon > 0 && target >= options_.horizon;
    if (done) target = options_.horizon;
    sim_.runUntil(target);
    if (done) break;

    // Sleep until the next sim event is due in wall terms, the next RPC
    // retry deadline, or a 20 ms heartbeat — whichever is first.
    std::int64_t wait = 20;
    const SimTime next = sim_.nextEventTime();
    if (next != sim::Simulator::kNoPendingEvent) {
      const auto dueWall =
          anchorWallMs_ +
          static_cast<std::int64_t>(static_cast<double>(next) /
                                    options_.timeScale) -
          now;
      wait = std::min(wait, std::max<std::int64_t>(dueWall, 0));
    }
    const std::int64_t deadline = transport_.msUntilDeadline(now);
    if (deadline >= 0) wait = std::min(wait, deadline);
    transport_.poll(static_cast<int>(wait));
  }
  return 0;
}

void NodeRuntime::writeMetricsJson(std::ostream& out) const {
  const auto& m = node_->metrics();
  const auto& c = transport_.counters();
  const auto& t = transport_.traffic();
  const auto delay = node_->discoveryDelay(1);

  out << "{\n";
  out << "  \"node\": \"" << options_.self.toString() << "\",\n";
  out << "  \"index\": " << options_.index << ",\n";
  out << "  \"sim_now_ms\": " << sim_.now() << ",\n";
  out << "  \"alive\": " << (node_->isAlive() ? "true" : "false") << ",\n";
  out << "  \"discovered\": " << (delay ? "true" : "false") << ",\n";
  out << "  \"discovery_delay_ms\": " << (delay ? *delay : -1) << ",\n";
  out << "  \"memory_entries\": " << node_->memoryEntries() << ",\n";
  out << "  \"metrics\": {"
      << "\"hash_checks\": " << m.hashChecks
      << ", \"notifies_sent\": " << m.notifiesSent
      << ", \"joins_received\": " << m.joinsReceived
      << ", \"cv_fetches\": " << m.cvFetches
      << ", \"monitoring_pings_sent\": " << m.monitoringPingsSent
      << ", \"useless_pings\": " << m.uselessPings << "},\n";
  out << "  \"transport\": {"
      << "\"datagrams_sent\": " << c.datagramsSent
      << ", \"datagrams_received\": " << c.datagramsReceived
      << ", \"decode_failures\": " << c.decodeFailures
      << ", \"send_errors\": " << c.sendErrors
      << ", \"rpc_calls\": " << c.rpcCalls
      << ", \"rpc_retries\": " << c.rpcRetries
      << ", \"rpc_timeouts\": " << c.rpcTimeouts
      << ", \"rpc_served\": " << c.rpcServed
      << ", \"duplicate_requests\": " << c.duplicateRequests << "},\n";
  out << "  \"traffic\": {\"bytes_sent\": " << t.bytesSent
      << ", \"messages_sent\": " << t.messagesSent << "},\n";

  // Per-target availability estimates, emitted in NodeId order so the
  // report is deterministic for a given end state.
  std::vector<NodeId> targets;
  targets.reserve(node_->targetSet().size());
  // lint:allow(unordered-iter, key harvest only — the keys are sorted before anything order-sensitive happens)
  for (const auto& entry : node_->targetSet()) targets.push_back(entry.first);
  std::sort(targets.begin(), targets.end());
  out << "  \"targets\": [";
  bool firstTarget = true;
  for (const NodeId& target : targets) {
    const auto estimate = node_->availabilityEstimateOf(target);
    if (!estimate) continue;
    if (!firstTarget) out << ", ";
    firstTarget = false;
    out << "{\"node\": \"" << target.toString() << "\", \"estimate\": "
        << *estimate << "}";
  }
  out << "]\n";
  out << "}\n";
}

}  // namespace avmon::net
