#include "net/wire_codec.hpp"

#include <array>
#include <cassert>
#include <cstring>
#include <string>
#include <utility>

namespace avmon::net {
namespace {

// Payload tags. Tag values are wire contract: append-only, never reuse.
constexpr std::uint8_t kTagJoin = 1;
constexpr std::uint8_t kTagNotify = 2;
constexpr std::uint8_t kTagForceAdd = 3;
constexpr std::uint8_t kTagPresence = 4;
constexpr std::uint8_t kTagRegister = 5;
constexpr std::uint8_t kTagText = 6;

constexpr std::uint8_t kTagPing = 1;
constexpr std::uint8_t kTagCvFetch = 2;
constexpr std::uint8_t kTagSwap = 3;
constexpr std::uint8_t kTagMonitorPing = 4;

constexpr std::uint8_t kTagCtlJoin = 1;
constexpr std::uint8_t kTagCtlLeave = 2;
constexpr std::uint8_t kTagCtlPing = 3;
constexpr std::uint8_t kTagCtlStart = 4;

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = 0x811C9DC5u;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

// ---- writer ----

class Writer {
 public:
  explicit Writer(FrameKind kind, const NodeId& sender, std::uint64_t callId) {
    buf_.reserve(64);
    buf_.push_back('A');
    buf_.push_back('V');
    buf_.push_back(kWireVersion);
    buf_.push_back(static_cast<std::uint8_t>(kind));
    u16(0);  // payload length, patched in finish()
    u32(0);  // checksum, patched in finish()
    id(sender);
    u64(callId);
    assert(buf_.size() == kHeaderBytes);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void id(const NodeId& node) {
    const auto bytes = node.toBytes();
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void ids(const std::vector<NodeId>& nodes) {
    assert(nodes.size() <= 0xFFFF);
    u16(static_cast<std::uint16_t>(nodes.size()));
    for (const auto& n : nodes) id(n);
  }
  /// A declared byte budget (std::size_t in the structs, u32 on the wire).
  void size(std::size_t v) {
    assert(v <= 0xFFFFFFFFu);
    u32(static_cast<std::uint32_t>(v));
  }
  void text(const std::string& s) {
    assert(s.size() <= 0xFFFF);
    u16(static_cast<std::uint16_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  std::vector<std::uint8_t> finish() {
    const std::size_t payload = buf_.size() - kHeaderBytes;
    assert(payload <= 0xFFFF && buf_.size() <= kMaxFrameBytes &&
           "wire frame exceeds the single-datagram ceiling");
    buf_[4] = static_cast<std::uint8_t>(payload >> 8);
    buf_[5] = static_cast<std::uint8_t>(payload);
    const std::uint32_t sum = fnv1a32(buf_.data() + 10, buf_.size() - 10);
    buf_[6] = static_cast<std::uint8_t>(sum >> 24);
    buf_[7] = static_cast<std::uint8_t>(sum >> 16);
    buf_[8] = static_cast<std::uint8_t>(sum >> 8);
    buf_[9] = static_cast<std::uint8_t>(sum);
    return std::move(buf_);
  }

 private:
  std::vector<std::uint8_t> buf_;
};

// ---- bounds-checked reader ----

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::size_t sizeField() { return static_cast<std::size_t>(u32()); }

  NodeId id() {
    if (!need(NodeId::kWireSize)) return NodeId{};
    std::array<std::uint8_t, NodeId::kWireSize> raw{};
    std::memcpy(raw.data(), data_ + pos_, NodeId::kWireSize);
    pos_ += NodeId::kWireSize;
    return NodeId::fromBytes(raw);
  }

  std::vector<NodeId> ids() {
    const std::uint16_t count = u16();
    // Reject counts the remaining bytes cannot possibly hold before
    // allocating anything (a garbage count must not drive a huge reserve).
    if (!ok_ || remaining() < std::size_t{count} * NodeId::kWireSize) {
      ok_ = false;
      return {};
    }
    std::vector<NodeId> out;
    out.reserve(count);
    for (std::uint16_t i = 0; i < count && ok_; ++i) out.push_back(id());
    return out;
  }

  std::string text() {
    const std::uint16_t len = u16();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return out;
  }

 private:
  bool need(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::optional<sim::Message> decodeMessage(Reader& r) {
  switch (r.u8()) {
    case kTagJoin: {
      sim::JoinMessage m;
      m.origin = r.id();
      m.weight = r.i32();
      return sim::Message(m);
    }
    case kTagNotify: {
      sim::NotifyMessage m;
      m.monitor = r.id();
      m.target = r.id();
      return sim::Message(m);
    }
    case kTagForceAdd:
      return sim::Message(sim::ForceAddMessage{r.id()});
    case kTagPresence:
      return sim::Message(sim::PresenceMessage{r.id()});
    case kTagRegister:
      return sim::Message(sim::RegisterMessage{r.id()});
    case kTagText: {
      sim::TextMessage m;
      m.bytes = r.sizeField();
      m.text = r.text();
      return sim::Message(std::move(m));
    }
    default:
      return std::nullopt;  // future alternative: tolerated, dropped
  }
}

std::optional<sim::RpcRequest> decodeRequest(Reader& r) {
  switch (r.u8()) {
    case kTagPing: {
      sim::PingRequest q;
      q.pingBytes = r.sizeField();
      return sim::RpcRequest(q);
    }
    case kTagCvFetch: {
      sim::CvFetchRequest q;
      q.pingBytes = r.sizeField();
      q.responseBudgetBytes = r.sizeField();
      return sim::RpcRequest(q);
    }
    case kTagSwap: {
      sim::SwapRequest q;
      q.entryBytes = r.sizeField();
      q.budgetEntries = r.sizeField();
      q.offered = r.ids();
      return sim::RpcRequest(std::move(q));
    }
    case kTagMonitorPing: {
      sim::MonitorPingRequest q;
      q.pingBytes = r.sizeField();
      return sim::RpcRequest(q);
    }
    default:
      return std::nullopt;
  }
}

std::optional<sim::RpcResponse> decodeResponse(Reader& r) {
  switch (r.u8()) {
    case kTagPing:
      return sim::RpcResponse(sim::PingResponse{});
    case kTagCvFetch: {
      sim::CvFetchResponse p;
      p.view = r.ids();
      return sim::RpcResponse(std::move(p));
    }
    case kTagSwap: {
      sim::SwapResponse p;
      p.given = r.ids();
      return sim::RpcResponse(std::move(p));
    }
    case kTagMonitorPing: {
      sim::MonitorPingResponse p;
      p.acknowledged = r.u8() != 0;
      return sim::RpcResponse(p);
    }
    default:
      return std::nullopt;
  }
}

std::optional<ControlCommand> decodeControl(Reader& r) {
  switch (r.u8()) {
    case kTagCtlJoin: {
      ControlJoin c;
      c.firstJoin = r.u8() != 0;
      c.bootstrap = r.id();
      return ControlCommand(c);
    }
    case kTagCtlLeave:
      return ControlCommand(ControlLeave{});
    case kTagCtlPing:
      return ControlCommand(ControlPing{});
    case kTagCtlStart:
      return ControlCommand(ControlStart{});
    default:
      return std::nullopt;
  }
}

}  // namespace

std::vector<std::uint8_t> encodeMessage(const NodeId& sender,
                                        const sim::Message& message) {
  Writer w(FrameKind::kOneWay, sender, 0);
  std::visit(sim::Overloaded{
                 [&](const sim::JoinMessage& m) {
                   w.u8(kTagJoin);
                   w.id(m.origin);
                   w.i32(m.weight);
                 },
                 [&](const sim::NotifyMessage& m) {
                   w.u8(kTagNotify);
                   w.id(m.monitor);
                   w.id(m.target);
                 },
                 [&](const sim::ForceAddMessage& m) {
                   w.u8(kTagForceAdd);
                   w.id(m.origin);
                 },
                 [&](const sim::PresenceMessage& m) {
                   w.u8(kTagPresence);
                   w.id(m.origin);
                 },
                 [&](const sim::RegisterMessage& m) {
                   w.u8(kTagRegister);
                   w.id(m.origin);
                 },
                 [&](const sim::TextMessage& m) {
                   w.u8(kTagText);
                   w.size(m.bytes);
                   w.text(m.text);
                 },
             },
             message);
  return w.finish();
}

std::vector<std::uint8_t> encodeRequest(const NodeId& sender,
                                        std::uint64_t callId,
                                        const sim::RpcRequest& request) {
  Writer w(FrameKind::kRpcRequest, sender, callId);
  std::visit(sim::Overloaded{
                 [&](const sim::PingRequest& q) {
                   w.u8(kTagPing);
                   w.size(q.pingBytes);
                 },
                 [&](const sim::CvFetchRequest& q) {
                   w.u8(kTagCvFetch);
                   w.size(q.pingBytes);
                   w.size(q.responseBudgetBytes);
                 },
                 [&](const sim::SwapRequest& q) {
                   w.u8(kTagSwap);
                   w.size(q.entryBytes);
                   w.size(q.budgetEntries);
                   w.ids(q.offered);
                 },
                 [&](const sim::MonitorPingRequest& q) {
                   w.u8(kTagMonitorPing);
                   w.size(q.pingBytes);
                 },
             },
             request);
  return w.finish();
}

std::vector<std::uint8_t> encodeResponse(const NodeId& sender,
                                         std::uint64_t callId,
                                         const sim::RpcResponse& response) {
  Writer w(FrameKind::kRpcResponse, sender, callId);
  std::visit(sim::Overloaded{
                 [&](const sim::PingResponse&) { w.u8(kTagPing); },
                 [&](const sim::CvFetchResponse& p) {
                   w.u8(kTagCvFetch);
                   w.ids(p.view);
                 },
                 [&](const sim::SwapResponse& p) {
                   w.u8(kTagSwap);
                   w.ids(p.given);
                 },
                 [&](const sim::MonitorPingResponse& p) {
                   w.u8(kTagMonitorPing);
                   w.u8(p.acknowledged ? 1 : 0);
                 },
             },
             response);
  return w.finish();
}

std::vector<std::uint8_t> encodeControl(const NodeId& sender,
                                        std::uint64_t seq,
                                        const ControlCommand& command) {
  Writer w(FrameKind::kControl, sender, seq);
  std::visit(sim::Overloaded{
                 [&](const ControlJoin& c) {
                   w.u8(kTagCtlJoin);
                   w.u8(c.firstJoin ? 1 : 0);
                   w.id(c.bootstrap);
                 },
                 [&](const ControlLeave&) { w.u8(kTagCtlLeave); },
                 [&](const ControlPing&) { w.u8(kTagCtlPing); },
                 [&](const ControlStart&) { w.u8(kTagCtlStart); },
             },
             command);
  return w.finish();
}

std::vector<std::uint8_t> encodeControlAck(const NodeId& sender,
                                           std::uint64_t seq) {
  Writer w(FrameKind::kControlAck, sender, seq);
  return w.finish();
}

std::optional<Frame> decodeFrame(const std::uint8_t* data, std::size_t size) {
  if (size < kHeaderBytes || size > kMaxFrameBytes) return std::nullopt;
  if (data[0] != 'A' || data[1] != 'V') return std::nullopt;
  if (data[2] != kWireVersion) return std::nullopt;
  const std::size_t payload =
      (static_cast<std::size_t>(data[4]) << 8) | data[5];
  if (size != kHeaderBytes + payload) return std::nullopt;
  const std::uint32_t declared = (static_cast<std::uint32_t>(data[6]) << 24) |
                                 (static_cast<std::uint32_t>(data[7]) << 16) |
                                 (static_cast<std::uint32_t>(data[8]) << 8) |
                                 data[9];
  if (declared != fnv1a32(data + 10, size - 10)) return std::nullopt;

  Frame frame;
  Reader header(data + 10, kHeaderBytes - 10);
  frame.sender = header.id();
  frame.callId = header.u64();

  Reader r(data + kHeaderBytes, payload);
  switch (data[3]) {
    case static_cast<std::uint8_t>(FrameKind::kOneWay): {
      frame.kind = FrameKind::kOneWay;
      frame.message = decodeMessage(r);
      if (!frame.message) return std::nullopt;
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kRpcRequest): {
      frame.kind = FrameKind::kRpcRequest;
      frame.request = decodeRequest(r);
      if (!frame.request) return std::nullopt;
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kRpcResponse): {
      frame.kind = FrameKind::kRpcResponse;
      frame.response = decodeResponse(r);
      if (!frame.response) return std::nullopt;
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kControl): {
      frame.kind = FrameKind::kControl;
      frame.control = decodeControl(r);
      if (!frame.control) return std::nullopt;
      break;
    }
    case static_cast<std::uint8_t>(FrameKind::kControlAck):
      frame.kind = FrameKind::kControlAck;
      break;
    default:
      return std::nullopt;  // unknown kind
  }
  // Truncated fields or trailing garbage inside the payload both reject.
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return frame;
}

}  // namespace avmon::net
