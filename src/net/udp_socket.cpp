#include "net/udp_socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace avmon::net {
namespace {

sockaddr_in toSockaddr(const NodeId& id) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(id.ip());
  addr.sin_port = htons(id.port());
  return addr;
}

NodeId fromSockaddr(const sockaddr_in& addr) {
  return NodeId(ntohl(addr.sin_addr.s_addr), ntohs(addr.sin_port));
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

bool UdpSocket::open(const NodeId& local) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;

  const sockaddr_in addr = toSockaddr(local);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close();
    return false;
  }

  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    close();
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close();
    return false;
  }
  local_ = NodeId(local.ip(), ntohs(bound.sin_port));
  return true;
}

bool UdpSocket::sendTo(const NodeId& to, const std::uint8_t* data,
                       std::size_t size) {
  if (fd_ < 0) return false;
  const sockaddr_in addr = toSockaddr(to);
  const auto sent =
      ::sendto(fd_, data, size, 0, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr));
  return sent >= 0 && static_cast<std::size_t>(sent) == size;
}

std::optional<DatagramInfo> UdpSocket::recvFrom(std::uint8_t* buf,
                                                std::size_t cap) {
  if (fd_ < 0) return std::nullopt;
  sockaddr_in src{};
  socklen_t len = sizeof(src);
  const auto got = ::recvfrom(fd_, buf, cap, 0,
                              reinterpret_cast<sockaddr*>(&src), &len);
  if (got < 0) return std::nullopt;  // EWOULDBLOCK or transient error
  DatagramInfo info;
  info.size = static_cast<std::size_t>(got);
  info.source = fromSockaddr(src);
  return info;
}

bool UdpSocket::waitReadable(int timeoutMs) const {
  if (fd_ < 0) return false;
  pollfd p{};
  p.fd = fd_;
  p.events = POLLIN;
  return ::poll(&p, 1, timeoutMs) > 0 && (p.revents & POLLIN) != 0;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  local_ = NodeId{};
}

}  // namespace avmon::net
